file(REMOVE_RECURSE
  "CMakeFiles/core_candidate_gen_test.dir/core_candidate_gen_test.cc.o"
  "CMakeFiles/core_candidate_gen_test.dir/core_candidate_gen_test.cc.o.d"
  "core_candidate_gen_test"
  "core_candidate_gen_test.pdb"
  "core_candidate_gen_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_candidate_gen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
