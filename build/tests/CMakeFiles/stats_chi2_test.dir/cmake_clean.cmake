file(REMOVE_RECURSE
  "CMakeFiles/stats_chi2_test.dir/stats_chi2_test.cc.o"
  "CMakeFiles/stats_chi2_test.dir/stats_chi2_test.cc.o.d"
  "stats_chi2_test"
  "stats_chi2_test.pdb"
  "stats_chi2_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_chi2_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
