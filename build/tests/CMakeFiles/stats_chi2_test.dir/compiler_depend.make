# Empty compiler generated dependencies file for stats_chi2_test.
# This may be replaced when dependencies are built.
