# Empty dependencies file for util_bitset_test.
# This may be replaced when dependencies are built.
