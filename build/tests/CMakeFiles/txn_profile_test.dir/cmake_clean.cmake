file(REMOVE_RECURSE
  "CMakeFiles/txn_profile_test.dir/txn_profile_test.cc.o"
  "CMakeFiles/txn_profile_test.dir/txn_profile_test.cc.o.d"
  "txn_profile_test"
  "txn_profile_test.pdb"
  "txn_profile_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/txn_profile_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
