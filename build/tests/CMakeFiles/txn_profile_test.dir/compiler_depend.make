# Empty compiler generated dependencies file for txn_profile_test.
# This may be replaced when dependencies are built.
