file(REMOVE_RECURSE
  "CMakeFiles/core_explore_test.dir/core_explore_test.cc.o"
  "CMakeFiles/core_explore_test.dir/core_explore_test.cc.o.d"
  "core_explore_test"
  "core_explore_test.pdb"
  "core_explore_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_explore_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
