file(REMOVE_RECURSE
  "CMakeFiles/core_itemset_test.dir/core_itemset_test.cc.o"
  "CMakeFiles/core_itemset_test.dir/core_itemset_test.cc.o.d"
  "core_itemset_test"
  "core_itemset_test.pdb"
  "core_itemset_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_itemset_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
