file(REMOVE_RECURSE
  "CMakeFiles/core_bms_test.dir/core_bms_test.cc.o"
  "CMakeFiles/core_bms_test.dir/core_bms_test.cc.o.d"
  "core_bms_test"
  "core_bms_test.pdb"
  "core_bms_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_bms_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
