# Empty compiler generated dependencies file for core_bms_test.
# This may be replaced when dependencies are built.
