file(REMOVE_RECURSE
  "CMakeFiles/core_judge_test.dir/core_judge_test.cc.o"
  "CMakeFiles/core_judge_test.dir/core_judge_test.cc.o.d"
  "core_judge_test"
  "core_judge_test.pdb"
  "core_judge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_judge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
