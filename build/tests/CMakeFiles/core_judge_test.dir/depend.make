# Empty dependencies file for core_judge_test.
# This may be replaced when dependencies are built.
