# Empty dependencies file for stats_contingency_test.
# This may be replaced when dependencies are built.
