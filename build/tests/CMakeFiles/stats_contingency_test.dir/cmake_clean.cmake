file(REMOVE_RECURSE
  "CMakeFiles/stats_contingency_test.dir/stats_contingency_test.cc.o"
  "CMakeFiles/stats_contingency_test.dir/stats_contingency_test.cc.o.d"
  "stats_contingency_test"
  "stats_contingency_test.pdb"
  "stats_contingency_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_contingency_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
