file(REMOVE_RECURSE
  "CMakeFiles/stats_gamma_test.dir/stats_gamma_test.cc.o"
  "CMakeFiles/stats_gamma_test.dir/stats_gamma_test.cc.o.d"
  "stats_gamma_test"
  "stats_gamma_test.pdb"
  "stats_gamma_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_gamma_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
