# Empty compiler generated dependencies file for stats_fisher_test.
# This may be replaced when dependencies are built.
