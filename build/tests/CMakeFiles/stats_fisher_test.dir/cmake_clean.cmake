file(REMOVE_RECURSE
  "CMakeFiles/stats_fisher_test.dir/stats_fisher_test.cc.o"
  "CMakeFiles/stats_fisher_test.dir/stats_fisher_test.cc.o.d"
  "stats_fisher_test"
  "stats_fisher_test.pdb"
  "stats_fisher_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_fisher_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
