file(REMOVE_RECURSE
  "CMakeFiles/core_sampling_test.dir/core_sampling_test.cc.o"
  "CMakeFiles/core_sampling_test.dir/core_sampling_test.cc.o.d"
  "core_sampling_test"
  "core_sampling_test.pdb"
  "core_sampling_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_sampling_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
