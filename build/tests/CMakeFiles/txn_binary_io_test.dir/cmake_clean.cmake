file(REMOVE_RECURSE
  "CMakeFiles/txn_binary_io_test.dir/txn_binary_io_test.cc.o"
  "CMakeFiles/txn_binary_io_test.dir/txn_binary_io_test.cc.o.d"
  "txn_binary_io_test"
  "txn_binary_io_test.pdb"
  "txn_binary_io_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/txn_binary_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
