# Empty dependencies file for txn_binary_io_test.
# This may be replaced when dependencies are built.
