# Empty compiler generated dependencies file for planted_rules.
# This may be replaced when dependencies are built.
