file(REMOVE_RECURSE
  "CMakeFiles/planted_rules.dir/planted_rules.cpp.o"
  "CMakeFiles/planted_rules.dir/planted_rules.cpp.o.d"
  "planted_rules"
  "planted_rules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/planted_rules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
