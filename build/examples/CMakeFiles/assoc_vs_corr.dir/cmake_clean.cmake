file(REMOVE_RECURSE
  "CMakeFiles/assoc_vs_corr.dir/assoc_vs_corr.cpp.o"
  "CMakeFiles/assoc_vs_corr.dir/assoc_vs_corr.cpp.o.d"
  "assoc_vs_corr"
  "assoc_vs_corr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/assoc_vs_corr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
