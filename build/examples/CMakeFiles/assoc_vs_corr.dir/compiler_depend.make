# Empty compiler generated dependencies file for assoc_vs_corr.
# This may be replaced when dependencies are built.
