# Empty compiler generated dependencies file for selectivity_study.
# This may be replaced when dependencies are built.
