# Empty compiler generated dependencies file for ccsmine_cli.
# This may be replaced when dependencies are built.
