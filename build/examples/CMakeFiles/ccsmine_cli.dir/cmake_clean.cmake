file(REMOVE_RECURSE
  "CMakeFiles/ccsmine_cli.dir/ccsmine_cli.cpp.o"
  "CMakeFiles/ccsmine_cli.dir/ccsmine_cli.cpp.o.d"
  "ccsmine_cli"
  "ccsmine_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccsmine_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
