# Empty dependencies file for fig1_2_am_succinct.
# This may be replaced when dependencies are built.
