file(REMOVE_RECURSE
  "../bench/fig1_2_am_succinct"
  "../bench/fig1_2_am_succinct.pdb"
  "CMakeFiles/fig1_2_am_succinct.dir/fig1_2_am_succinct.cc.o"
  "CMakeFiles/fig1_2_am_succinct.dir/fig1_2_am_succinct.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_2_am_succinct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
