file(REMOVE_RECURSE
  "../bench/frequent_engines"
  "../bench/frequent_engines.pdb"
  "CMakeFiles/frequent_engines.dir/frequent_engines.cc.o"
  "CMakeFiles/frequent_engines.dir/frequent_engines.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frequent_engines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
