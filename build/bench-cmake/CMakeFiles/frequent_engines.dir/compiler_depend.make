# Empty compiler generated dependencies file for frequent_engines.
# This may be replaced when dependencies are built.
