file(REMOVE_RECURSE
  "../bench/fig3_4_am_nonsuccinct"
  "../bench/fig3_4_am_nonsuccinct.pdb"
  "CMakeFiles/fig3_4_am_nonsuccinct.dir/fig3_4_am_nonsuccinct.cc.o"
  "CMakeFiles/fig3_4_am_nonsuccinct.dir/fig3_4_am_nonsuccinct.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_4_am_nonsuccinct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
