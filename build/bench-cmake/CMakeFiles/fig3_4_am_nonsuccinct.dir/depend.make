# Empty dependencies file for fig3_4_am_nonsuccinct.
# This may be replaced when dependencies are built.
