
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig3_4_am_nonsuccinct.cc" "bench-cmake/CMakeFiles/fig3_4_am_nonsuccinct.dir/fig3_4_am_nonsuccinct.cc.o" "gcc" "bench-cmake/CMakeFiles/fig3_4_am_nonsuccinct.dir/fig3_4_am_nonsuccinct.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench-cmake/CMakeFiles/ccs_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/ccs_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/assoc/CMakeFiles/ccs_assoc.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/ccs_query.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ccs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/ccs_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/constraints/CMakeFiles/ccs_constraints.dir/DependInfo.cmake"
  "/root/repo/build/src/txn/CMakeFiles/ccs_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ccs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
