# Empty dependencies file for ccs_bench_common.
# This may be replaced when dependencies are built.
