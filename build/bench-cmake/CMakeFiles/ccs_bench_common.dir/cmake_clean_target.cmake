file(REMOVE_RECURSE
  "libccs_bench_common.a"
)
