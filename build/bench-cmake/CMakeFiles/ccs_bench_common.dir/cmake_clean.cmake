file(REMOVE_RECURSE
  "CMakeFiles/ccs_bench_common.dir/common.cc.o"
  "CMakeFiles/ccs_bench_common.dir/common.cc.o.d"
  "libccs_bench_common.a"
  "libccs_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccs_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
