# Empty dependencies file for cap_comparison.
# This may be replaced when dependencies are built.
