file(REMOVE_RECURSE
  "../bench/cap_comparison"
  "../bench/cap_comparison.pdb"
  "CMakeFiles/cap_comparison.dir/cap_comparison.cc.o"
  "CMakeFiles/cap_comparison.dir/cap_comparison.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cap_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
