file(REMOVE_RECURSE
  "../bench/fig7_8_mono_minvalid"
  "../bench/fig7_8_mono_minvalid.pdb"
  "CMakeFiles/fig7_8_mono_minvalid.dir/fig7_8_mono_minvalid.cc.o"
  "CMakeFiles/fig7_8_mono_minvalid.dir/fig7_8_mono_minvalid.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_8_mono_minvalid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
