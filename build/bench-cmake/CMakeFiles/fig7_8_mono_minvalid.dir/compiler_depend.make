# Empty compiler generated dependencies file for fig7_8_mono_minvalid.
# This may be replaced when dependencies are built.
