file(REMOVE_RECURSE
  "../bench/fig5_6_mono_validmin"
  "../bench/fig5_6_mono_validmin.pdb"
  "CMakeFiles/fig5_6_mono_validmin.dir/fig5_6_mono_validmin.cc.o"
  "CMakeFiles/fig5_6_mono_validmin.dir/fig5_6_mono_validmin.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_6_mono_validmin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
