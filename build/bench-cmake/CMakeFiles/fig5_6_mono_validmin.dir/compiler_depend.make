# Empty compiler generated dependencies file for fig5_6_mono_validmin.
# This may be replaced when dependencies are built.
