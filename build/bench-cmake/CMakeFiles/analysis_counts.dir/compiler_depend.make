# Empty compiler generated dependencies file for analysis_counts.
# This may be replaced when dependencies are built.
