file(REMOVE_RECURSE
  "../bench/analysis_counts"
  "../bench/analysis_counts.pdb"
  "CMakeFiles/analysis_counts.dir/analysis_counts.cc.o"
  "CMakeFiles/analysis_counts.dir/analysis_counts.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_counts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
