file(REMOVE_RECURSE
  "CMakeFiles/ccs_txn.dir/binary_io.cc.o"
  "CMakeFiles/ccs_txn.dir/binary_io.cc.o.d"
  "CMakeFiles/ccs_txn.dir/catalog.cc.o"
  "CMakeFiles/ccs_txn.dir/catalog.cc.o.d"
  "CMakeFiles/ccs_txn.dir/database.cc.o"
  "CMakeFiles/ccs_txn.dir/database.cc.o.d"
  "CMakeFiles/ccs_txn.dir/io.cc.o"
  "CMakeFiles/ccs_txn.dir/io.cc.o.d"
  "CMakeFiles/ccs_txn.dir/profile.cc.o"
  "CMakeFiles/ccs_txn.dir/profile.cc.o.d"
  "libccs_txn.a"
  "libccs_txn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccs_txn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
