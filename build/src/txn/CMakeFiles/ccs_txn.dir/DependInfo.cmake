
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/txn/binary_io.cc" "src/txn/CMakeFiles/ccs_txn.dir/binary_io.cc.o" "gcc" "src/txn/CMakeFiles/ccs_txn.dir/binary_io.cc.o.d"
  "/root/repo/src/txn/catalog.cc" "src/txn/CMakeFiles/ccs_txn.dir/catalog.cc.o" "gcc" "src/txn/CMakeFiles/ccs_txn.dir/catalog.cc.o.d"
  "/root/repo/src/txn/database.cc" "src/txn/CMakeFiles/ccs_txn.dir/database.cc.o" "gcc" "src/txn/CMakeFiles/ccs_txn.dir/database.cc.o.d"
  "/root/repo/src/txn/io.cc" "src/txn/CMakeFiles/ccs_txn.dir/io.cc.o" "gcc" "src/txn/CMakeFiles/ccs_txn.dir/io.cc.o.d"
  "/root/repo/src/txn/profile.cc" "src/txn/CMakeFiles/ccs_txn.dir/profile.cc.o" "gcc" "src/txn/CMakeFiles/ccs_txn.dir/profile.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ccs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
