# Empty dependencies file for ccs_txn.
# This may be replaced when dependencies are built.
