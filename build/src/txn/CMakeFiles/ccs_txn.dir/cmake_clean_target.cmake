file(REMOVE_RECURSE
  "libccs_txn.a"
)
