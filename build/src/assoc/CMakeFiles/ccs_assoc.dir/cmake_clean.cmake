file(REMOVE_RECURSE
  "CMakeFiles/ccs_assoc.dir/apriori.cc.o"
  "CMakeFiles/ccs_assoc.dir/apriori.cc.o.d"
  "CMakeFiles/ccs_assoc.dir/constrained_apriori.cc.o"
  "CMakeFiles/ccs_assoc.dir/constrained_apriori.cc.o.d"
  "CMakeFiles/ccs_assoc.dir/eclat.cc.o"
  "CMakeFiles/ccs_assoc.dir/eclat.cc.o.d"
  "CMakeFiles/ccs_assoc.dir/fpgrowth.cc.o"
  "CMakeFiles/ccs_assoc.dir/fpgrowth.cc.o.d"
  "CMakeFiles/ccs_assoc.dir/rules.cc.o"
  "CMakeFiles/ccs_assoc.dir/rules.cc.o.d"
  "libccs_assoc.a"
  "libccs_assoc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccs_assoc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
