
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/assoc/apriori.cc" "src/assoc/CMakeFiles/ccs_assoc.dir/apriori.cc.o" "gcc" "src/assoc/CMakeFiles/ccs_assoc.dir/apriori.cc.o.d"
  "/root/repo/src/assoc/constrained_apriori.cc" "src/assoc/CMakeFiles/ccs_assoc.dir/constrained_apriori.cc.o" "gcc" "src/assoc/CMakeFiles/ccs_assoc.dir/constrained_apriori.cc.o.d"
  "/root/repo/src/assoc/eclat.cc" "src/assoc/CMakeFiles/ccs_assoc.dir/eclat.cc.o" "gcc" "src/assoc/CMakeFiles/ccs_assoc.dir/eclat.cc.o.d"
  "/root/repo/src/assoc/fpgrowth.cc" "src/assoc/CMakeFiles/ccs_assoc.dir/fpgrowth.cc.o" "gcc" "src/assoc/CMakeFiles/ccs_assoc.dir/fpgrowth.cc.o.d"
  "/root/repo/src/assoc/rules.cc" "src/assoc/CMakeFiles/ccs_assoc.dir/rules.cc.o" "gcc" "src/assoc/CMakeFiles/ccs_assoc.dir/rules.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/constraints/CMakeFiles/ccs_constraints.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ccs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/txn/CMakeFiles/ccs_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ccs_util.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/ccs_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
