file(REMOVE_RECURSE
  "libccs_assoc.a"
)
