# Empty dependencies file for ccs_assoc.
# This may be replaced when dependencies are built.
