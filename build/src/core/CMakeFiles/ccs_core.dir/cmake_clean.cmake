file(REMOVE_RECURSE
  "CMakeFiles/ccs_core.dir/bms.cc.o"
  "CMakeFiles/ccs_core.dir/bms.cc.o.d"
  "CMakeFiles/ccs_core.dir/bms_plus.cc.o"
  "CMakeFiles/ccs_core.dir/bms_plus.cc.o.d"
  "CMakeFiles/ccs_core.dir/bms_plus_plus.cc.o"
  "CMakeFiles/ccs_core.dir/bms_plus_plus.cc.o.d"
  "CMakeFiles/ccs_core.dir/bms_star.cc.o"
  "CMakeFiles/ccs_core.dir/bms_star.cc.o.d"
  "CMakeFiles/ccs_core.dir/bms_star_star.cc.o"
  "CMakeFiles/ccs_core.dir/bms_star_star.cc.o.d"
  "CMakeFiles/ccs_core.dir/candidate_gen.cc.o"
  "CMakeFiles/ccs_core.dir/candidate_gen.cc.o.d"
  "CMakeFiles/ccs_core.dir/ct_builder.cc.o"
  "CMakeFiles/ccs_core.dir/ct_builder.cc.o.d"
  "CMakeFiles/ccs_core.dir/explore.cc.o"
  "CMakeFiles/ccs_core.dir/explore.cc.o.d"
  "CMakeFiles/ccs_core.dir/itemset.cc.o"
  "CMakeFiles/ccs_core.dir/itemset.cc.o.d"
  "CMakeFiles/ccs_core.dir/judge.cc.o"
  "CMakeFiles/ccs_core.dir/judge.cc.o.d"
  "CMakeFiles/ccs_core.dir/miner.cc.o"
  "CMakeFiles/ccs_core.dir/miner.cc.o.d"
  "CMakeFiles/ccs_core.dir/oracle.cc.o"
  "CMakeFiles/ccs_core.dir/oracle.cc.o.d"
  "CMakeFiles/ccs_core.dir/report.cc.o"
  "CMakeFiles/ccs_core.dir/report.cc.o.d"
  "CMakeFiles/ccs_core.dir/result.cc.o"
  "CMakeFiles/ccs_core.dir/result.cc.o.d"
  "CMakeFiles/ccs_core.dir/sampling.cc.o"
  "CMakeFiles/ccs_core.dir/sampling.cc.o.d"
  "libccs_core.a"
  "libccs_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccs_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
