
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/bms.cc" "src/core/CMakeFiles/ccs_core.dir/bms.cc.o" "gcc" "src/core/CMakeFiles/ccs_core.dir/bms.cc.o.d"
  "/root/repo/src/core/bms_plus.cc" "src/core/CMakeFiles/ccs_core.dir/bms_plus.cc.o" "gcc" "src/core/CMakeFiles/ccs_core.dir/bms_plus.cc.o.d"
  "/root/repo/src/core/bms_plus_plus.cc" "src/core/CMakeFiles/ccs_core.dir/bms_plus_plus.cc.o" "gcc" "src/core/CMakeFiles/ccs_core.dir/bms_plus_plus.cc.o.d"
  "/root/repo/src/core/bms_star.cc" "src/core/CMakeFiles/ccs_core.dir/bms_star.cc.o" "gcc" "src/core/CMakeFiles/ccs_core.dir/bms_star.cc.o.d"
  "/root/repo/src/core/bms_star_star.cc" "src/core/CMakeFiles/ccs_core.dir/bms_star_star.cc.o" "gcc" "src/core/CMakeFiles/ccs_core.dir/bms_star_star.cc.o.d"
  "/root/repo/src/core/candidate_gen.cc" "src/core/CMakeFiles/ccs_core.dir/candidate_gen.cc.o" "gcc" "src/core/CMakeFiles/ccs_core.dir/candidate_gen.cc.o.d"
  "/root/repo/src/core/ct_builder.cc" "src/core/CMakeFiles/ccs_core.dir/ct_builder.cc.o" "gcc" "src/core/CMakeFiles/ccs_core.dir/ct_builder.cc.o.d"
  "/root/repo/src/core/explore.cc" "src/core/CMakeFiles/ccs_core.dir/explore.cc.o" "gcc" "src/core/CMakeFiles/ccs_core.dir/explore.cc.o.d"
  "/root/repo/src/core/itemset.cc" "src/core/CMakeFiles/ccs_core.dir/itemset.cc.o" "gcc" "src/core/CMakeFiles/ccs_core.dir/itemset.cc.o.d"
  "/root/repo/src/core/judge.cc" "src/core/CMakeFiles/ccs_core.dir/judge.cc.o" "gcc" "src/core/CMakeFiles/ccs_core.dir/judge.cc.o.d"
  "/root/repo/src/core/miner.cc" "src/core/CMakeFiles/ccs_core.dir/miner.cc.o" "gcc" "src/core/CMakeFiles/ccs_core.dir/miner.cc.o.d"
  "/root/repo/src/core/oracle.cc" "src/core/CMakeFiles/ccs_core.dir/oracle.cc.o" "gcc" "src/core/CMakeFiles/ccs_core.dir/oracle.cc.o.d"
  "/root/repo/src/core/report.cc" "src/core/CMakeFiles/ccs_core.dir/report.cc.o" "gcc" "src/core/CMakeFiles/ccs_core.dir/report.cc.o.d"
  "/root/repo/src/core/result.cc" "src/core/CMakeFiles/ccs_core.dir/result.cc.o" "gcc" "src/core/CMakeFiles/ccs_core.dir/result.cc.o.d"
  "/root/repo/src/core/sampling.cc" "src/core/CMakeFiles/ccs_core.dir/sampling.cc.o" "gcc" "src/core/CMakeFiles/ccs_core.dir/sampling.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/constraints/CMakeFiles/ccs_constraints.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/ccs_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/txn/CMakeFiles/ccs_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ccs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
