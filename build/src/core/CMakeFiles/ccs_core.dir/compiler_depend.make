# Empty compiler generated dependencies file for ccs_core.
# This may be replaced when dependencies are built.
