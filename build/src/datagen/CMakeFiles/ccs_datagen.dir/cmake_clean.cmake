file(REMOVE_RECURSE
  "CMakeFiles/ccs_datagen.dir/catalog_generator.cc.o"
  "CMakeFiles/ccs_datagen.dir/catalog_generator.cc.o.d"
  "CMakeFiles/ccs_datagen.dir/ibm_generator.cc.o"
  "CMakeFiles/ccs_datagen.dir/ibm_generator.cc.o.d"
  "CMakeFiles/ccs_datagen.dir/rule_generator.cc.o"
  "CMakeFiles/ccs_datagen.dir/rule_generator.cc.o.d"
  "CMakeFiles/ccs_datagen.dir/zipf_generator.cc.o"
  "CMakeFiles/ccs_datagen.dir/zipf_generator.cc.o.d"
  "libccs_datagen.a"
  "libccs_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccs_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
