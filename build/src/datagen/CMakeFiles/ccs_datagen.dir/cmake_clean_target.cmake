file(REMOVE_RECURSE
  "libccs_datagen.a"
)
