
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datagen/catalog_generator.cc" "src/datagen/CMakeFiles/ccs_datagen.dir/catalog_generator.cc.o" "gcc" "src/datagen/CMakeFiles/ccs_datagen.dir/catalog_generator.cc.o.d"
  "/root/repo/src/datagen/ibm_generator.cc" "src/datagen/CMakeFiles/ccs_datagen.dir/ibm_generator.cc.o" "gcc" "src/datagen/CMakeFiles/ccs_datagen.dir/ibm_generator.cc.o.d"
  "/root/repo/src/datagen/rule_generator.cc" "src/datagen/CMakeFiles/ccs_datagen.dir/rule_generator.cc.o" "gcc" "src/datagen/CMakeFiles/ccs_datagen.dir/rule_generator.cc.o.d"
  "/root/repo/src/datagen/zipf_generator.cc" "src/datagen/CMakeFiles/ccs_datagen.dir/zipf_generator.cc.o" "gcc" "src/datagen/CMakeFiles/ccs_datagen.dir/zipf_generator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/txn/CMakeFiles/ccs_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ccs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
