# Empty compiler generated dependencies file for ccs_datagen.
# This may be replaced when dependencies are built.
