# Empty compiler generated dependencies file for ccs_stats.
# This may be replaced when dependencies are built.
