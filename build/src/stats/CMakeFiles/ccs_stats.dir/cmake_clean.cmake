file(REMOVE_RECURSE
  "CMakeFiles/ccs_stats.dir/chi_squared.cc.o"
  "CMakeFiles/ccs_stats.dir/chi_squared.cc.o.d"
  "CMakeFiles/ccs_stats.dir/contingency.cc.o"
  "CMakeFiles/ccs_stats.dir/contingency.cc.o.d"
  "CMakeFiles/ccs_stats.dir/fisher.cc.o"
  "CMakeFiles/ccs_stats.dir/fisher.cc.o.d"
  "CMakeFiles/ccs_stats.dir/gamma.cc.o"
  "CMakeFiles/ccs_stats.dir/gamma.cc.o.d"
  "libccs_stats.a"
  "libccs_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccs_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
