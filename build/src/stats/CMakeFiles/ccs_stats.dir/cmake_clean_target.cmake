file(REMOVE_RECURSE
  "libccs_stats.a"
)
