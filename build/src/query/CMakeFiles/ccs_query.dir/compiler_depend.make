# Empty compiler generated dependencies file for ccs_query.
# This may be replaced when dependencies are built.
