file(REMOVE_RECURSE
  "CMakeFiles/ccs_query.dir/parser.cc.o"
  "CMakeFiles/ccs_query.dir/parser.cc.o.d"
  "CMakeFiles/ccs_query.dir/query.cc.o"
  "CMakeFiles/ccs_query.dir/query.cc.o.d"
  "libccs_query.a"
  "libccs_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccs_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
