file(REMOVE_RECURSE
  "libccs_query.a"
)
