file(REMOVE_RECURSE
  "CMakeFiles/ccs_util.dir/bitset.cc.o"
  "CMakeFiles/ccs_util.dir/bitset.cc.o.d"
  "CMakeFiles/ccs_util.dir/csv.cc.o"
  "CMakeFiles/ccs_util.dir/csv.cc.o.d"
  "CMakeFiles/ccs_util.dir/rng.cc.o"
  "CMakeFiles/ccs_util.dir/rng.cc.o.d"
  "libccs_util.a"
  "libccs_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccs_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
