# Empty dependencies file for ccs_constraints.
# This may be replaced when dependencies are built.
