file(REMOVE_RECURSE
  "CMakeFiles/ccs_constraints.dir/agg_constraint.cc.o"
  "CMakeFiles/ccs_constraints.dir/agg_constraint.cc.o.d"
  "CMakeFiles/ccs_constraints.dir/constraint.cc.o"
  "CMakeFiles/ccs_constraints.dir/constraint.cc.o.d"
  "CMakeFiles/ccs_constraints.dir/constraint_set.cc.o"
  "CMakeFiles/ccs_constraints.dir/constraint_set.cc.o.d"
  "CMakeFiles/ccs_constraints.dir/set_constraint.cc.o"
  "CMakeFiles/ccs_constraints.dir/set_constraint.cc.o.d"
  "libccs_constraints.a"
  "libccs_constraints.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccs_constraints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
