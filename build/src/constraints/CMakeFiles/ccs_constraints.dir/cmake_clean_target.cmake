file(REMOVE_RECURSE
  "libccs_constraints.a"
)
