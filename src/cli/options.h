#ifndef CCS_CLI_OPTIONS_H_
#define CCS_CLI_OPTIONS_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "core/engine_options.h"
#include "core/result.h"
#include "core/run_control.h"
#include "txn/catalog.h"
#include "txn/database.h"
#include "util/status.h"

// The flags layer shared by the one-shot CLI (examples/ccsmine_cli) and
// the resident service (src/service/ccsmined). Both front ends parse
// --threads / --timeout-ms / --max-tables / --metrics-out / --trace-out
// and the dataset flags through these helpers, so a daemon started with
// the same flags as a one-shot invocation sees byte-identical data and
// run limits — which is what lets scripts/service_smoke.py diff their
// answers exactly (DESIGN.md §12).

namespace ccs {
namespace cli {

// Flags common to every mining front end.
struct CommonOptions {
  std::size_t threads = 1;      // --threads: executor width, 0 = hardware
  std::uint64_t timeout_ms = 0;  // --timeout-ms: 0 = no deadline
  std::uint64_t max_tables = 0;  // --max-tables: 0 = no table budget
  std::string metrics_out;       // --metrics-out: result metrics as JSON
  std::string trace_out;         // --trace-out: span log as JSON (enables
                                 // tracing)
};

// Dataset selection: load from files or generate.
struct DataOptions {
  std::string generate = "ibm";  // --generate ibm|rules|zipf
  std::string baskets_file;      // --baskets-file (with --catalog-file)
  std::string catalog_file;      // --catalog-file
  std::size_t baskets = 10000;   // --baskets
  std::size_t items = 100;       // --items
  std::uint64_t seed = 42;       // --seed
};

enum class FlagStatus {
  kHandled,       // argv[*i] consumed (plus its value, if any)
  kNotHandled,    // not a flag of this group; *i unchanged
  kMissingValue,  // recognized flag at end of argv with no value
};

// Tries argv[*i] against the group's flags; on kHandled, *i has advanced
// past any consumed value (matching the `for (int i = ...; ++i)` loop
// idiom of the front ends).
FlagStatus ParseCommonFlag(int argc, char** argv, int* i,
                           CommonOptions* out);
FlagStatus ParseDataFlag(int argc, char** argv, int* i, DataOptions* out);

struct LoadedData {
  TransactionDatabase db;
  ItemCatalog catalog;
};

// Loads --baskets-file/--catalog-file when given, otherwise generates the
// configured dataset. Deterministic: the same DataOptions always produce
// the same database (generators are seeded; loaders are pure), which both
// front ends rely on for answer diffing. The returned database is
// finalized. Errors: kInvalidArgument for an unknown generator or a
// missing catalog file, loader statuses pass through.
[[nodiscard]] StatusOr<LoadedData> LoadOrGenerate(const DataOptions& data);

// Stamps --timeout-ms / --max-tables onto a RunControl.
void ApplyRunControl(const CommonOptions& options, RunControl* control);

// Writes result.metrics / result.trace as JSON to the configured paths
// (no-ops for empty paths). kDataLoss on a failed write.
[[nodiscard]] Status WriteTelemetry(const MiningResult& result,
                                    const CommonOptions& options);

}  // namespace cli
}  // namespace ccs

#endif  // CCS_CLI_OPTIONS_H_
