#include "cli/options.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "datagen/catalog_generator.h"
#include "datagen/ibm_generator.h"
#include "datagen/rule_generator.h"
#include "datagen/zipf_generator.h"
#include "txn/io.h"

namespace ccs {
namespace cli {

namespace {

const char* NextValue(int argc, char** argv, int* i) {
  return *i + 1 < argc ? argv[++*i] : nullptr;
}

bool WriteTextFile(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace

FlagStatus ParseCommonFlag(int argc, char** argv, int* i,
                           CommonOptions* out) {
  const std::string flag = argv[*i];
  if (flag != "--threads" && flag != "--timeout-ms" &&
      flag != "--max-tables" && flag != "--metrics-out" &&
      flag != "--trace-out") {
    return FlagStatus::kNotHandled;
  }
  const char* value = NextValue(argc, argv, i);
  if (value == nullptr) return FlagStatus::kMissingValue;
  if (flag == "--threads") {
    out->threads = std::strtoul(value, nullptr, 10);
  } else if (flag == "--timeout-ms") {
    out->timeout_ms = std::strtoull(value, nullptr, 10);
  } else if (flag == "--max-tables") {
    out->max_tables = std::strtoull(value, nullptr, 10);
  } else if (flag == "--metrics-out") {
    out->metrics_out = value;
  } else {
    out->trace_out = value;
  }
  return FlagStatus::kHandled;
}

FlagStatus ParseDataFlag(int argc, char** argv, int* i, DataOptions* out) {
  const std::string flag = argv[*i];
  if (flag != "--generate" && flag != "--baskets" && flag != "--items" &&
      flag != "--seed" && flag != "--baskets-file" &&
      flag != "--catalog-file") {
    return FlagStatus::kNotHandled;
  }
  const char* value = NextValue(argc, argv, i);
  if (value == nullptr) return FlagStatus::kMissingValue;
  if (flag == "--generate") {
    out->generate = value;
  } else if (flag == "--baskets") {
    out->baskets = std::strtoul(value, nullptr, 10);
  } else if (flag == "--items") {
    out->items = std::strtoul(value, nullptr, 10);
  } else if (flag == "--seed") {
    out->seed = std::strtoull(value, nullptr, 10);
  } else if (flag == "--baskets-file") {
    out->baskets_file = value;
  } else {
    out->catalog_file = value;
  }
  return FlagStatus::kHandled;
}

StatusOr<LoadedData> LoadOrGenerate(const DataOptions& data) {
  if (!data.baskets_file.empty()) {
    if (data.catalog_file.empty()) {
      return InvalidArgumentError("--baskets-file requires --catalog-file");
    }
    CCS_ASSIGN_OR_RETURN(ItemCatalog catalog,
                         LoadCatalogFromFile(data.catalog_file));
    CCS_ASSIGN_OR_RETURN(
        TransactionDatabase db,
        LoadBasketsFromFile(data.baskets_file, catalog.num_items()));
    return LoadedData{std::move(db), std::move(catalog)};
  }
  if (data.generate == "ibm") {
    IbmGeneratorConfig config;
    config.num_transactions = data.baskets;
    config.num_items = data.items;
    config.avg_transaction_size = 10.0;
    config.avg_pattern_size = 4.0;
    config.num_patterns = data.items / 2;
    config.seed = data.seed;
    return LoadedData{IbmGenerator(config).Generate(),
                      MakeLinearPriceCatalog(data.items)};
  }
  if (data.generate == "rules") {
    RuleGeneratorConfig config;
    config.num_transactions = data.baskets;
    config.num_items = data.items;
    config.avg_transaction_size = 10.0;
    config.seed = data.seed;
    return LoadedData{RuleGenerator(config).Generate(),
                      MakeLinearPriceCatalog(data.items)};
  }
  if (data.generate == "zipf") {
    ZipfGeneratorConfig config;
    config.num_transactions = data.baskets;
    config.num_items = data.items;
    config.avg_transaction_size = 10.0;
    config.num_groups = data.items / 20;
    config.seed = data.seed;
    return LoadedData{ZipfGenerator(config).Generate(),
                      MakeLinearPriceCatalog(data.items)};
  }
  return InvalidArgumentError("unknown generator '" + data.generate + "'");
}

void ApplyRunControl(const CommonOptions& options, RunControl* control) {
  control->timeout = std::chrono::milliseconds(options.timeout_ms);
  control->max_tables_built = options.max_tables;
}

Status WriteTelemetry(const MiningResult& result,
                      const CommonOptions& options) {
  if (!options.metrics_out.empty() &&
      !WriteTextFile(options.metrics_out, result.metrics.ToJson() + "\n")) {
    return DataLossError("cannot write " + options.metrics_out);
  }
  if (!options.trace_out.empty() &&
      !WriteTextFile(options.trace_out, result.trace.ToJson() + "\n")) {
    return DataLossError("cannot write " + options.trace_out);
  }
  return OkStatus();
}

}  // namespace cli
}  // namespace ccs
