#include "client/client.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <thread>
#include <utility>

#include "service/framed_reader.h"
#include "util/check.h"

namespace ccs {
namespace client {
namespace {

// Closes the attempt's fd on every exit path.
class FdCloser {
 public:
  explicit FdCloser(int fd) : fd_(fd) {}
  ~FdCloser() {
    if (fd_ >= 0) ::close(fd_);
  }
  FdCloser(const FdCloser&) = delete;
  FdCloser& operator=(const FdCloser&) = delete;

 private:
  int fd_;
};

std::uint64_t SplitMix64(std::uint64_t* state) {
  std::uint64_t z = (*state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

// True once `frame` holds a complete END-framed response: a final
// "END\n" line of its own (possibly the only line).
bool FrameComplete(const std::string& frame) {
  static constexpr char kEnd[] = "END\n";
  static constexpr std::size_t kEndLen = sizeof(kEnd) - 1;
  if (frame.size() < kEndLen) return false;
  if (frame.compare(frame.size() - kEndLen, kEndLen, kEnd) != 0) return false;
  return frame.size() == kEndLen ||
         frame[frame.size() - kEndLen - 1] == '\n';
}

// "ERR CODE message" → Status{CODE, message}; decoding goes through
// StatusCodeFromName so this file never needs to spell out the peer's
// code set (see the client-retry-only-unavailable lint rule).
Status DecodeErrorHeader(const std::string& header) {
  std::string rest = header.substr(4);  // past "ERR "
  const std::size_t space = rest.find(' ');
  std::string code_name = rest.substr(0, space);
  std::string message =
      space == std::string::npos ? std::string() : rest.substr(space + 1);
  return Status(StatusCodeFromName(code_name), std::move(message));
}

// Receives one complete END-framed response. Transport failures
// (reset, EOF mid-frame) mean the daemon went away before answering —
// the restart window — so they decode to kUnavailable and stay
// retryable; a response_deadline hit does not (the daemon may still be
// working, and re-issuing an expensive request on a deadline is how
// retry storms start).
Status ReadFrame(int fd, const ClientOptions& options,
                 const service::ServiceClock& clock, std::string* frame) {
  frame->clear();
  const auto start = clock.Now();
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) (void)::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  char chunk[4096];
  while (true) {
    if (FrameComplete(*frame)) return OkStatus();
    if (options.response_deadline.count() > 0 &&
        clock.Now() - start >= options.response_deadline) {
      return DeadlineExceededError("response deadline exceeded");
    }
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = POLLIN;
    pfd.revents = 0;
    const int ready = ::poll(&pfd, 1,
                             static_cast<int>(options.poll_interval.count()));
    if (ready < 0 && errno != EINTR) {
      return UnavailableError(std::string("poll: ") + std::strerror(errno));  // NOLINT(concurrency-mt-unsafe)
    }
    if (ready <= 0) continue;
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n > 0) {
      frame->append(chunk, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) {
      return UnavailableError("connection closed before a complete frame");
    }
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
    return UnavailableError(std::string("recv: ") + std::strerror(errno));  // NOLINT(concurrency-mt-unsafe)
  }
}

// Splits a complete frame into Response fields; the final "END" line is
// dropped from the body.
Response ParseFrame(std::string frame) {
  Response response;
  std::vector<std::string> lines;
  std::size_t begin = 0;
  while (begin < frame.size()) {
    const std::size_t newline = frame.find('\n', begin);
    CCS_CHECK(newline != std::string::npos);  // FrameComplete guarantees it
    lines.push_back(frame.substr(begin, newline - begin));
    begin = newline + 1;
  }
  CCS_CHECK(!lines.empty() && lines.back() == "END");
  lines.pop_back();
  if (!lines.empty()) {
    response.header = lines.front();
    response.body.assign(lines.begin() + 1, lines.end());
  }
  response.frame = std::move(frame);
  return response;
}

}  // namespace

std::chrono::milliseconds BackoffDelay(const BackoffPolicy& policy,
                                       std::size_t retry_index,
                                       std::uint64_t* rng_state) {
  std::int64_t base = policy.initial.count();
  const std::int64_t cap = std::max<std::int64_t>(policy.cap.count(), 0);
  for (std::size_t i = 0; i < retry_index && base < cap; ++i) base *= 2;
  base = std::min(base, cap);
  if (base <= 0) return std::chrono::milliseconds(0);
  // Jitter into [base/2, base]: enough spread to decorrelate a client
  // fleet, while keeping a floor so retries are never immediate.
  const std::int64_t floor = base / 2;
  const std::uint64_t span = static_cast<std::uint64_t>(base - floor) + 1;
  const std::int64_t jitter =
      floor + static_cast<std::int64_t>(SplitMix64(rng_state) % span);
  return std::chrono::milliseconds(jitter);
}

Client::Client(ClientOptions options, const service::ServiceClock* clock,
               Sleeper sleeper)
    : options_(std::move(options)),
      clock_(clock != nullptr ? clock : &service::DefaultServiceClock()),
      sleeper_(std::move(sleeper)),
      rng_state_(options_.backoff.seed) {}

StatusOr<Response> Client::Attempt(const std::string& line) {
  ++stats_.attempts;
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return UnavailableError(std::string("socket: ") + std::strerror(errno));  // NOLINT(concurrency-mt-unsafe)
  }
  FdCloser closer(fd);

  struct sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  if (options_.socket_path.size() >= sizeof(addr.sun_path)) {
    return InvalidArgumentError("socket path too long: " +
                                options_.socket_path);
  }
  std::memcpy(addr.sun_path, options_.socket_path.c_str(),
              options_.socket_path.size() + 1);
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    // A refused or missing socket is the daemon's restart window —
    // transient by definition, so retryable.
    return UnavailableError(std::string("connect: ") + std::strerror(errno));  // NOLINT(concurrency-mt-unsafe)
  }

  service::WriteOptions write_options;
  write_options.write_deadline = options_.send_deadline;
  write_options.poll_interval = options_.poll_interval;
  const Status sent =
      service::WriteAll(fd, line + "\n", write_options, clock_);
  if (!sent.ok()) {
    // The request never completed its trip to the daemon; mining is
    // read-only, so re-sending it is safe.
    return UnavailableError("send failed: " + sent.ToString());
  }

  std::string frame;
  CCS_RETURN_IF_ERROR(ReadFrame(fd, options_, *clock_, &frame));
  Response response = ParseFrame(std::move(frame));
  if (response.header.rfind("ERR ", 0) == 0) {
    return DecodeErrorHeader(response.header);
  }
  return response;
}

StatusOr<Response> Client::Request(const std::string& line) {
  const std::size_t max_attempts =
      std::max<std::size_t>(options_.backoff.max_attempts, 1);
  for (std::size_t attempt = 1;; ++attempt) {
    StatusOr<Response> result = Attempt(line);
    if (result.ok()) {
      result->attempts = attempt;
      return result;
    }
    if (result.status().code() != StatusCode::kUnavailable ||
        attempt >= max_attempts) {
      return result;
    }
    const std::chrono::milliseconds delay =
        BackoffDelay(options_.backoff, attempt - 1, &rng_state_);
    ++stats_.retries;
    if (sleeper_) {
      sleeper_(delay);
    } else if (delay.count() > 0) {
      std::this_thread::sleep_for(delay);
    }
  }
}

}  // namespace client
}  // namespace ccs
