#ifndef CCS_CLIENT_CLIENT_H_
#define CCS_CLIENT_CLIENT_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "service/clock.h"
#include "util/status.h"

// ccs::client — the sanctioned way to talk to a ccsmined daemon
// (DESIGN.md §13). One call = one request line in, one END-framed
// response out, with:
//
//   * a per-attempt response deadline (no hanging on a wedged daemon),
//   * jittered-exponential backoff retry of *transient* failures only.
//
// The retryability contract (util/status.h): kUnavailable — and ONLY
// kUnavailable — is safe to retry. The daemon answers kUnavailable when
// admission or its connection-slot table is saturated, and this library
// additionally maps "no daemon there right now" transport failures
// (connect refused / socket file missing / connection severed before a
// complete frame) to kUnavailable, because they are the wire's way of
// saying the same thing during a restart. Every other code — including
// kDeadlineExceeded — comes straight back to the caller: the request may
// be expensive, wrong, or half-done, and blind re-issue is how retry
// storms start. scripts/ccs_lint.py rule `client-retry-only-unavailable`
// pins this: src/client may not mention any StatusCode but kUnavailable.
//
// Determinism: backoff delays are computed from a splitmix64 stream
// seeded by BackoffPolicy::seed, and time/sleep are injectable, so tests
// assert the exact retry schedule.

namespace ccs {
namespace client {

struct BackoffPolicy {
  // Total tries, including the first. 1 disables retry.
  std::size_t max_attempts = 5;
  // Delay before retry k (0-based) is jittered within
  // [base/2, base] where base = min(cap, initial << k).
  std::chrono::milliseconds initial{20};
  std::chrono::milliseconds cap{1000};
  // Seed of the jitter stream; fixed seed → reproducible schedule.
  std::uint64_t seed = 0x9e3779b97f4a7c15ull;
};

struct ClientOptions {
  std::string socket_path;
  // Budget per attempt for receiving the complete response frame.
  std::chrono::milliseconds response_deadline{60000};
  // Budget per attempt for flushing the request line.
  std::chrono::milliseconds send_deadline{10000};
  // Real-time granularity of deadline re-checks while waiting on the fd.
  std::chrono::milliseconds poll_interval{20};
  BackoffPolicy backoff;
};

// One parsed END-framed response.
struct Response {
  std::string header;             // first line, always "OK ..."
  std::vector<std::string> body;  // lines between header and "END"
  std::string frame;              // raw bytes, "END\n" included
  std::size_t attempts = 0;       // tries this answer cost (>= 1)
};

// The jittered backoff before 0-based retry `retry_index`; advances
// *rng_state (splitmix64). Exposed so tests can pin the exact schedule.
std::chrono::milliseconds BackoffDelay(const BackoffPolicy& policy,
                                       std::size_t retry_index,
                                       std::uint64_t* rng_state);

// A connected-per-request client. Not thread-safe; create one per
// thread (they are cheap — no persistent connection).
class Client {
 public:
  using Sleeper = std::function<void(std::chrono::milliseconds)>;

  // `clock` is borrowed (nullptr: process SystemClock). `sleeper`
  // replaces the real between-retry sleep in tests; the default really
  // sleeps.
  explicit Client(ClientOptions options,
                  const service::ServiceClock* clock = nullptr,
                  Sleeper sleeper = Sleeper());

  // Sends one request line (no trailing '\n') and returns the complete
  // response frame. "ERR CODE message" frames come back as Status{CODE}.
  // kUnavailable (from a frame or a transport failure) is retried under
  // the backoff policy; exhausting max_attempts returns the last
  // kUnavailable.
  [[nodiscard]] StatusOr<Response> Request(const std::string& line);

  // Telemetry across this client's lifetime.
  struct Stats {
    std::uint64_t attempts = 0;  // connection attempts made
    std::uint64_t retries = 0;   // backoff sleeps taken
  };
  Stats stats() const { return stats_; }

 private:
  [[nodiscard]] StatusOr<Response> Attempt(const std::string& line);

  const ClientOptions options_;
  const service::ServiceClock* const clock_;
  const Sleeper sleeper_;
  std::uint64_t rng_state_;
  Stats stats_;
};

}  // namespace client
}  // namespace ccs

#endif  // CCS_CLIENT_CLIENT_H_
