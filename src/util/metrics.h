#ifndef CCS_UTIL_METRICS_H_
#define CCS_UTIL_METRICS_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace ccs {

// How a metric's aggregated total behaves across executor schedules. The
// registry itself only guarantees order-independent aggregation (sums and
// maxes commute); the stability tag is the *instrumentation site's* promise
// about the multiset of updates, and the metrics-identity test suite holds
// every kDeterministic metric to it (DESIGN.md §10).
enum class MetricStability : std::uint8_t {
  // Aggregated total is bit-identical for any thread count and schedule
  // (at a fixed CT-cache mode unless the site documents otherwise).
  kDeterministic,
  // Total depends on which worker drew which unit of work (per-thread
  // splits, cache hit/miss outcomes).
  kScheduleDependent,
  // Wall-clock derived; never compared for equality.
  kTiming,
};

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };

// Stable lower-case names ("deterministic", "counter", ...).
const char* MetricStabilityName(MetricStability stability);
const char* MetricKindName(MetricKind kind);

// One counter or gauge in a snapshot, with its per-shard breakdown.
struct MetricScalar {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  MetricStability stability = MetricStability::kDeterministic;
  // Counter: sum over shards. Gauge: max over shards.
  std::uint64_t value = 0;
  std::vector<std::uint64_t> shards;
};

// One histogram in a snapshot. A value v lands in the first bucket i with
// v <= bounds[i]; values above every bound land in the final overflow
// bucket, so buckets.size() == bounds.size() + 1.
struct HistogramSnapshot {
  std::string name;
  MetricStability stability = MetricStability::kDeterministic;
  std::vector<std::uint64_t> bounds;
  std::vector<std::uint64_t> buckets;
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;  // 0 when count == 0
  std::uint64_t max = 0;
};

// Point-in-time aggregate of a MetricsRegistry, sorted by name. Plain data:
// safe to copy into MiningResult and compare across runs.
struct MetricsSnapshot {
  bool enabled = false;
  std::vector<MetricScalar> scalars;
  std::vector<HistogramSnapshot> histograms;

  const MetricScalar* FindScalar(std::string_view name) const;
  const HistogramSnapshot* FindHistogram(std::string_view name) const;
  // Aggregated value of a scalar, 0 when absent.
  std::uint64_t Value(std::string_view name) const;

  std::string ToJson() const;
  // Multi-line human-readable dump (one metric per line).
  std::string ToString() const;
};

// A registry of named counters, gauges and histograms with per-shard
// storage, built for the mining engine's one-orchestrator/N-workers shape:
//
//  - Registration (Counter/Gauge/Histogram) and Snapshot run only on the
//    orchestrating thread, outside any parallel region. Re-registering a
//    name returns the existing id (kind and stability must match), so
//    independent components can share a metric.
//  - Add/GaugeMax/Observe are lock-free and allocation-free: shard s's
//    cells are written only through shard index s, and the executor hands
//    each worker a distinct thread index, so concurrent updates never touch
//    the same memory location. Shard rows are cache-line padded.
//  - Aggregation is order-independent: counters and histogram buckets sum
//    over shards, gauges take the shard max. Totals of kDeterministic
//    metrics are therefore identical at any thread count provided the
//    instrumentation site emits a schedule-independent multiset of updates.
//
// `enabled == false` is the CCS_METRICS kill switch: updates early-return
// and Snapshot reports enabled=false with all-zero values, so callers never
// need to null-check.
class MetricsRegistry {
 public:
  using Id = std::size_t;

  explicit MetricsRegistry(std::size_t num_shards = 1, bool enabled = true);

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  bool enabled() const { return enabled_; }
  std::size_t num_shards() const { return num_shards_; }

  // Serial-only registration. Ids are dense and stable for the registry's
  // lifetime.
  Id Counter(const std::string& name, MetricStability stability);
  Id Gauge(const std::string& name, MetricStability stability);
  Id Histogram(const std::string& name, MetricStability stability,
               std::vector<std::uint64_t> bounds);

  // Shard-safe updates; noexcept so instrumentation may run in destructors
  // (including during exception unwinding).
  void Add(Id id, std::size_t shard, std::uint64_t delta) noexcept;
  // Raises the shard's gauge cell to at least `value`.
  void GaugeMax(Id id, std::size_t shard, std::uint64_t value) noexcept;
  void Observe(Id id, std::size_t shard, std::uint64_t value) noexcept;

  // Aggregates for tests and in-process consumers (serial-only).
  std::uint64_t Total(Id id) const;
  std::uint64_t ShardValue(Id id, std::size_t shard) const;

  MetricsSnapshot Snapshot() const;

 private:
  struct Slot {
    std::string name;
    MetricKind kind = MetricKind::kCounter;
    MetricStability stability = MetricStability::kDeterministic;
    // num_shards_ rows of `stride` words each. Counter/gauge: cell 0 holds
    // the shard value. Histogram: cells [0, buckets) hold bucket counts,
    // then count, sum, min (UINT64_MAX when empty), max.
    std::size_t stride = 0;
    std::vector<std::uint64_t> cells;
    std::vector<std::uint64_t> bounds;  // histograms only
  };

  Id Register(const std::string& name, MetricKind kind,
              MetricStability stability, std::vector<std::uint64_t> bounds);

  bool enabled_;
  std::size_t num_shards_;
  std::vector<Slot> slots_;
  std::unordered_map<std::string, Id> by_name_;
};

// The CCS_METRICS environment kill switch: false iff CCS_METRICS == "0".
bool MetricsEnabledFromEnv(bool fallback);

}  // namespace ccs

#endif  // CCS_UTIL_METRICS_H_
