#include "util/check.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace ccs::internal {
namespace {

void DefaultFailureSink(const char* message) {
  std::fputs(message, stderr);
  std::fflush(stderr);
}

std::atomic<FailureSink> g_failure_sink{&DefaultFailureSink};

}  // namespace

FailureSink SetFailureSink(FailureSink sink) {
  return g_failure_sink.exchange(sink != nullptr ? sink
                                                 : &DefaultFailureSink);
}

void CheckFailed(const char* file, int line, const char* condition) {
  char message[512];
  std::snprintf(message, sizeof(message),
                "CCS_CHECK failed at %s:%d: %s\n", file, line, condition);
  g_failure_sink.load()(message);
  std::abort();
}

}  // namespace ccs::internal
