#ifndef CCS_UTIL_BITSET_H_
#define CCS_UTIL_BITSET_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/check.h"

namespace ccs {

// A fixed-size dynamic bitset used as the vertical (tid-set) representation
// of item columns: bit t is set iff transaction t contains the item.
//
// The hot operations for contingency-table construction are the bulk word
// combinators AssignAnd / AssignAndNot and Count (popcount). All bulk
// operations require operands of identical size.
class DynamicBitset {
 public:
  using Word = std::uint64_t;
  static constexpr std::size_t kBitsPerWord = 64;

  DynamicBitset() = default;
  // Creates a bitset with `num_bits` bits, all zero.
  explicit DynamicBitset(std::size_t num_bits) { Resize(num_bits); }

  DynamicBitset(const DynamicBitset&) = default;
  DynamicBitset& operator=(const DynamicBitset&) = default;
  DynamicBitset(DynamicBitset&&) = default;
  DynamicBitset& operator=(DynamicBitset&&) = default;

  // Resizes to `num_bits`; newly added bits are zero. Shrinking clears the
  // now-out-of-range bits so Count() stays consistent.
  void Resize(std::size_t num_bits);

  std::size_t size() const { return num_bits_; }
  bool empty() const { return num_bits_ == 0; }

  bool Test(std::size_t pos) const {
    CCS_DCHECK(pos < num_bits_);
    return (words_[pos / kBitsPerWord] >> (pos % kBitsPerWord)) & 1u;
  }

  void Set(std::size_t pos) {
    CCS_DCHECK(pos < num_bits_);
    words_[pos / kBitsPerWord] |= Word{1} << (pos % kBitsPerWord);
  }

  void Reset(std::size_t pos) {
    CCS_DCHECK(pos < num_bits_);
    words_[pos / kBitsPerWord] &= ~(Word{1} << (pos % kBitsPerWord));
  }

  void SetAll();
  void ResetAll();

  // Number of set bits.
  std::size_t Count() const;

  // True iff no bit is set.
  bool None() const;

  // this := a & b. Operands must have the same size as *this was resized to;
  // *this is resized to match `a`.
  void AssignAnd(const DynamicBitset& a, const DynamicBitset& b);

  // this := a & ~b.
  void AssignAndNot(const DynamicBitset& a, const DynamicBitset& b);

  // this := a & b, returning the popcount of the result — one pass instead
  // of AssignAnd + Count. Used when the intersection is both materialized
  // (for further reuse) and counted, e.g. the intersection-cache fill path.
  std::uint64_t AssignAndCount(const DynamicBitset& a, const DynamicBitset& b);

  // this := ~a (within a's size; trailing bits stay zero).
  void AssignComplement(const DynamicBitset& a);

  // this &= other.
  void AndWith(const DynamicBitset& other);

  // this |= other.
  void OrWith(const DynamicBitset& other);

  // Popcount of (a & b) without materializing the intersection.
  static std::size_t CountAnd(const DynamicBitset& a, const DynamicBitset& b);

  // Popcount of (a & ~b).
  static std::size_t CountAndNot(const DynamicBitset& a,
                                 const DynamicBitset& b);

  friend bool operator==(const DynamicBitset& a, const DynamicBitset& b) {
    return a.num_bits_ == b.num_bits_ && a.words_ == b.words_;
  }

  // Raw word access for tight loops (e.g. per-transaction mask extraction).
  const std::vector<Word>& words() const { return words_; }
  std::size_t num_words() const { return words_.size(); }

  // Mutable raw word access for the vectorized kernel (core/simd_kernel.*),
  // which combines whole words in place. Callers must preserve the
  // trailing-bits-zero invariant: bits past size() in the last word stay
  // zero (AND/AND-NOT of operands that honor it honor it automatically).
  // Everything else should go through the typed operations above — they
  // are the scalar reference the kernel is differentially tested against.
  Word* mutable_word_data() { return words_.data(); }

 private:
  // Zeroes bits past num_bits_ in the last word.
  void ClearTrailingBits();

  std::size_t num_bits_ = 0;
  std::vector<Word> words_;
};

}  // namespace ccs

#endif  // CCS_UTIL_BITSET_H_
