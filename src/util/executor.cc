#include "util/executor.h"

#include <algorithm>

namespace ccs {

std::size_t ParallelExecutor::HardwareThreads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<std::size_t>(n);
}

ParallelExecutor::ParallelExecutor(std::size_t num_threads)
    : num_threads_(num_threads == 0 ? HardwareThreads() : num_threads) {
  workers_.reserve(num_threads_ - 1);
  for (std::size_t t = 1; t < num_threads_; ++t) {
    workers_.emplace_back([this, t] { WorkerLoop(t); });
  }
}

ParallelExecutor::~ParallelExecutor() {
  {
    std::lock_guard<RankedMutex> lock(mutex_);
    shutdown_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ParallelExecutor::SetMetrics(MetricsRegistry* metrics) {
  std::lock_guard<RankedMutex> lock(mutex_);
  metrics_ = metrics;
  if (metrics_ != nullptr) {
    loops_id_ =
        metrics_->Counter("executor.loops", MetricStability::kDeterministic);
    chunks_id_ = metrics_->Counter("executor.chunks",
                                   MetricStability::kScheduleDependent);
  }
}

void ParallelExecutor::ParallelFor(std::size_t n, const Body& body) {
  if (n == 0) return;
  if (metrics_ != nullptr) metrics_->Add(loops_id_, 0, 1);
  if (num_threads_ == 1 || n == 1) {
    // The inline serial path is one implicit chunk on the calling thread.
    if (metrics_ != nullptr) metrics_->Add(chunks_id_, 0, 1);
    for (std::size_t i = 0; i < n; ++i) body(0, i);
    return;
  }
  {
    std::lock_guard<RankedMutex> lock(mutex_);
    body_ = &body;
    n_ = n;
    // Chunks several times smaller than a per-thread share keep the tail
    // balanced when per-element cost varies (table size grows with level).
    grain_ = std::max<std::size_t>(1, n / (num_threads_ * 8));
    cursor_.store(0, std::memory_order_relaxed);
    first_error_ = nullptr;
    abort_.store(false, std::memory_order_relaxed);
    active_workers_ = num_threads_ - 1;
    ++generation_;
  }
  start_cv_.notify_all();
  RunChunks(0);
  std::unique_lock<RankedMutex> lock(mutex_);
  done_cv_.wait(lock, [this] { return active_workers_ == 0; });
  body_ = nullptr;
  if (first_error_ != nullptr) {
    std::exception_ptr error = first_error_;
    first_error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void ParallelExecutor::WorkerLoop(std::size_t thread_index) {
  std::uint64_t seen_generation = 0;
  for (;;) {
    {
      std::unique_lock<RankedMutex> lock(mutex_);
      start_cv_.wait(lock, [this, seen_generation] {
        return shutdown_ || generation_ != seen_generation;
      });
      if (shutdown_) return;
      seen_generation = generation_;
    }
    RunChunks(thread_index);
    {
      std::lock_guard<RankedMutex> lock(mutex_);
      if (--active_workers_ == 0) done_cv_.notify_one();
    }
  }
}

void ParallelExecutor::RunChunks(std::size_t thread_index) {
  const Body& body = *body_;
  const std::size_t n = n_;
  const std::size_t grain = grain_;
  for (;;) {
    if (abort_.load(std::memory_order_relaxed)) return;
    const std::size_t begin =
        cursor_.fetch_add(grain, std::memory_order_relaxed);
    if (begin >= n) return;
    if (metrics_ != nullptr) metrics_->Add(chunks_id_, thread_index, 1);
    const std::size_t end = std::min(begin + grain, n);
    try {
      for (std::size_t i = begin; i < end; ++i) body(thread_index, i);
    } catch (...) {
      {
        std::lock_guard<RankedMutex> lock(mutex_);
        if (first_error_ == nullptr) {
          first_error_ = std::current_exception();
        }
      }
      abort_.store(true, std::memory_order_relaxed);
      return;
    }
  }
}

}  // namespace ccs
