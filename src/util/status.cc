#include "util/status.h"

namespace ccs {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kDataLoss:
      return "DATA_LOSS";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case StatusCode::kCancelled:
      return "CANCELLED";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
  }
  return "UNKNOWN";
}

StatusCode StatusCodeFromName(std::string_view name) {
  static constexpr StatusCode kAll[] = {
      StatusCode::kOk,           StatusCode::kInvalidArgument,
      StatusCode::kNotFound,     StatusCode::kDataLoss,
      StatusCode::kFailedPrecondition, StatusCode::kResourceExhausted,
      StatusCode::kDeadlineExceeded,   StatusCode::kCancelled,
      StatusCode::kInternal,     StatusCode::kUnavailable,
  };
  for (const StatusCode code : kAll) {
    if (name == StatusCodeName(code)) return code;
  }
  return StatusCode::kInternal;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace ccs
