#ifndef CCS_UTIL_THREAD_ANNOTATIONS_H_
#define CCS_UTIL_THREAD_ANNOTATIONS_H_

// Clang thread-safety-analysis attributes behind CCS_-prefixed macros, in
// the spirit of absl/base/thread_annotations.h. Under Clang with
// -Wthread-safety (the -DCCS_LINT=ON build flavor) these let the compiler
// reject unlocked access to guarded state at build time; under any other
// compiler they expand to nothing, so annotated headers stay portable.
//
// Conventions (DESIGN.md §11):
//  - Every std::mutex member is either the capability for at least one
//    CCS_GUARDED_BY field or carries a comment saying what it orders. The
//    ccs-lint `mutex-guarded-by` rule enforces the annotation's presence
//    even on non-Clang toolchains.
//  - Data published under a mutex but intentionally read outside it after
//    a synchronizing handshake (the executor's loop-publication protocol)
//    is NOT annotated GUARDED_BY; the publication protocol is documented at
//    the field instead. Annotations state what the analysis can prove, not
//    what we wish were true.
//  - CCS_NO_THREAD_SAFETY_ANALYSIS is a last resort and needs a comment
//    justifying why the analysis cannot see the synchronization.

#if defined(__clang__) && !defined(SWIG)
#define CCS_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define CCS_THREAD_ANNOTATION_(x)  // no-op
#endif

// Documents that a field is protected by the given capability (mutex).
#define CCS_GUARDED_BY(x) CCS_THREAD_ANNOTATION_(guarded_by(x))

// Documents that the *pointee* of a pointer field is protected.
#define CCS_PT_GUARDED_BY(x) CCS_THREAD_ANNOTATION_(pt_guarded_by(x))

// Declares that a function may be called only while holding the capability.
#define CCS_REQUIRES(...) \
  CCS_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

// Declares that a function may be called only while NOT holding it.
#define CCS_EXCLUDES(...) \
  CCS_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

// Acquire/release annotations for functions that lock on behalf of the
// caller (RAII wrappers, scoped capabilities). The _SHARED forms annotate
// reader-side acquisition of a shared capability (RankedSharedMutex); the
// TRY_ forms take the success value first, like absl's.
#define CCS_ACQUIRE(...) \
  CCS_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define CCS_RELEASE(...) \
  CCS_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define CCS_ACQUIRE_SHARED(...) \
  CCS_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))
#define CCS_RELEASE_SHARED(...) \
  CCS_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))
#define CCS_TRY_ACQUIRE(...) \
  CCS_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))
#define CCS_TRY_ACQUIRE_SHARED(...) \
  CCS_THREAD_ANNOTATION_(try_acquire_shared_capability(__VA_ARGS__))

// Marks a class as a capability (lock-like type) for the analysis.
#define CCS_CAPABILITY(x) CCS_THREAD_ANNOTATION_(capability(x))
#define CCS_SCOPED_CAPABILITY CCS_THREAD_ANNOTATION_(scoped_lockable)

// Return-value annotation: the function returns a reference to the mutex
// that guards the named data.
#define CCS_LOCK_RETURNED(x) CCS_THREAD_ANNOTATION_(lock_returned(x))

// Escape hatch: disables the analysis for one function. Every use must
// carry a justification comment (see header block).
#define CCS_NO_THREAD_SAFETY_ANALYSIS \
  CCS_THREAD_ANNOTATION_(no_thread_safety_analysis)

#endif  // CCS_UTIL_THREAD_ANNOTATIONS_H_
