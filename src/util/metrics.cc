#include "util/metrics.h"

#include <algorithm>
#include <cstdlib>
#include <limits>
#include <sstream>

#include "util/check.h"

namespace ccs {

namespace {

// 64-byte rows keep one shard's hot cell from false-sharing its neighbor.
constexpr std::size_t kPadWords = 8;

constexpr std::uint64_t kEmptyMin = std::numeric_limits<std::uint64_t>::max();

std::size_t RoundUpToPad(std::size_t words) {
  return ((words + kPadWords - 1) / kPadWords) * kPadWords;
}

// Histogram per-shard cell layout, after the bucket counts.
enum HistCell : std::size_t { kCount = 0, kSum = 1, kMin = 2, kMax = 3 };

void AppendJsonString(std::ostringstream& out, std::string_view s) {
  out << '"';
  for (char c : s) {
    if (c == '"' || c == '\\') out << '\\';
    out << c;
  }
  out << '"';
}

}  // namespace

const char* MetricStabilityName(MetricStability stability) {
  switch (stability) {
    case MetricStability::kDeterministic:
      return "deterministic";
    case MetricStability::kScheduleDependent:
      return "schedule_dependent";
    case MetricStability::kTiming:
      return "timing";
  }
  return "unknown";
}

const char* MetricKindName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "unknown";
}

const MetricScalar* MetricsSnapshot::FindScalar(std::string_view name) const {
  for (const MetricScalar& s : scalars) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

const HistogramSnapshot* MetricsSnapshot::FindHistogram(
    std::string_view name) const {
  for (const HistogramSnapshot& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

std::uint64_t MetricsSnapshot::Value(std::string_view name) const {
  const MetricScalar* s = FindScalar(name);
  return s != nullptr ? s->value : 0;
}

std::string MetricsSnapshot::ToJson() const {
  std::ostringstream out;
  out << "{\"enabled\": " << (enabled ? "true" : "false")
      << ", \"scalars\": [";
  for (std::size_t i = 0; i < scalars.size(); ++i) {
    const MetricScalar& s = scalars[i];
    if (i > 0) out << ", ";
    out << "{\"name\": ";
    AppendJsonString(out, s.name);
    out << ", \"kind\": \"" << MetricKindName(s.kind) << "\", \"stability\": \""
        << MetricStabilityName(s.stability) << "\", \"value\": " << s.value
        << ", \"shards\": [";
    for (std::size_t t = 0; t < s.shards.size(); ++t) {
      if (t > 0) out << ", ";
      out << s.shards[t];
    }
    out << "]}";
  }
  out << "], \"histograms\": [";
  for (std::size_t i = 0; i < histograms.size(); ++i) {
    const HistogramSnapshot& h = histograms[i];
    if (i > 0) out << ", ";
    out << "{\"name\": ";
    AppendJsonString(out, h.name);
    out << ", \"stability\": \"" << MetricStabilityName(h.stability)
        << "\", \"bounds\": [";
    for (std::size_t b = 0; b < h.bounds.size(); ++b) {
      if (b > 0) out << ", ";
      out << h.bounds[b];
    }
    out << "], \"buckets\": [";
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      if (b > 0) out << ", ";
      out << h.buckets[b];
    }
    out << "], \"count\": " << h.count << ", \"sum\": " << h.sum
        << ", \"min\": " << h.min << ", \"max\": " << h.max << "}";
  }
  out << "]}";
  return out.str();
}

std::string MetricsSnapshot::ToString() const {
  std::ostringstream out;
  out << "metrics (" << (enabled ? "enabled" : "disabled") << ")\n";
  for (const MetricScalar& s : scalars) {
    out << "  " << s.name << " = " << s.value << "  [" << MetricKindName(s.kind)
        << ", " << MetricStabilityName(s.stability) << "]\n";
  }
  for (const HistogramSnapshot& h : histograms) {
    out << "  " << h.name << ": count=" << h.count << " sum=" << h.sum
        << " min=" << h.min << " max=" << h.max << "  [histogram, "
        << MetricStabilityName(h.stability) << "]\n";
  }
  return out.str();
}

MetricsRegistry::MetricsRegistry(std::size_t num_shards, bool enabled)
    : enabled_(enabled), num_shards_(num_shards == 0 ? 1 : num_shards) {}

MetricsRegistry::Id MetricsRegistry::Register(
    const std::string& name, MetricKind kind, MetricStability stability,
    std::vector<std::uint64_t> bounds) {
  const auto it = by_name_.find(name);
  if (it != by_name_.end()) {
    const Slot& slot = slots_[it->second];
    CCS_CHECK(slot.kind == kind);
    CCS_CHECK(slot.stability == stability);
    CCS_CHECK(slot.bounds == bounds);
    return it->second;
  }
  CCS_CHECK(std::is_sorted(bounds.begin(), bounds.end()));
  Slot slot;
  slot.name = name;
  slot.kind = kind;
  slot.stability = stability;
  if (kind == MetricKind::kHistogram) {
    const std::size_t buckets = bounds.size() + 1;
    slot.stride = RoundUpToPad(buckets + 4);
    slot.bounds = std::move(bounds);
  } else {
    slot.stride = kPadWords;
  }
  slot.cells.assign(num_shards_ * slot.stride, 0);
  if (kind == MetricKind::kHistogram) {
    const std::size_t buckets = slot.bounds.size() + 1;
    for (std::size_t t = 0; t < num_shards_; ++t) {
      slot.cells[t * slot.stride + buckets + kMin] = kEmptyMin;
    }
  }
  const Id id = slots_.size();
  slots_.push_back(std::move(slot));
  by_name_.emplace(name, id);
  return id;
}

MetricsRegistry::Id MetricsRegistry::Counter(const std::string& name,
                                             MetricStability stability) {
  return Register(name, MetricKind::kCounter, stability, {});
}

MetricsRegistry::Id MetricsRegistry::Gauge(const std::string& name,
                                           MetricStability stability) {
  return Register(name, MetricKind::kGauge, stability, {});
}

MetricsRegistry::Id MetricsRegistry::Histogram(
    const std::string& name, MetricStability stability,
    std::vector<std::uint64_t> bounds) {
  return Register(name, MetricKind::kHistogram, stability, std::move(bounds));
}

void MetricsRegistry::Add(Id id, std::size_t shard,
                          std::uint64_t delta) noexcept {
  if (!enabled_) return;
  Slot& slot = slots_[id];
  slot.cells[shard * slot.stride] += delta;
}

void MetricsRegistry::GaugeMax(Id id, std::size_t shard,
                               std::uint64_t value) noexcept {
  if (!enabled_) return;
  Slot& slot = slots_[id];
  std::uint64_t& cell = slot.cells[shard * slot.stride];
  if (value > cell) cell = value;
}

void MetricsRegistry::Observe(Id id, std::size_t shard,
                              std::uint64_t value) noexcept {
  if (!enabled_) return;
  Slot& slot = slots_[id];
  const std::size_t buckets = slot.bounds.size() + 1;
  std::uint64_t* row = slot.cells.data() + shard * slot.stride;
  // First bucket whose bound admits the value; past-the-end = overflow.
  std::size_t bucket = 0;
  while (bucket < slot.bounds.size() && value > slot.bounds[bucket]) ++bucket;
  row[bucket] += 1;
  row[buckets + kCount] += 1;
  row[buckets + kSum] += value;
  if (value < row[buckets + kMin]) row[buckets + kMin] = value;
  if (value > row[buckets + kMax]) row[buckets + kMax] = value;
}

std::uint64_t MetricsRegistry::Total(Id id) const {
  const Slot& slot = slots_[id];
  CCS_CHECK(slot.kind != MetricKind::kHistogram);
  std::uint64_t total = 0;
  for (std::size_t t = 0; t < num_shards_; ++t) {
    const std::uint64_t cell = slot.cells[t * slot.stride];
    if (slot.kind == MetricKind::kGauge) {
      total = std::max(total, cell);
    } else {
      total += cell;
    }
  }
  return total;
}

std::uint64_t MetricsRegistry::ShardValue(Id id, std::size_t shard) const {
  const Slot& slot = slots_[id];
  CCS_CHECK(slot.kind != MetricKind::kHistogram);
  return slot.cells[shard * slot.stride];
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snapshot;
  snapshot.enabled = enabled_;
  for (Id id = 0; id < slots_.size(); ++id) {
    const Slot& slot = slots_[id];
    if (slot.kind == MetricKind::kHistogram) {
      HistogramSnapshot h;
      h.name = slot.name;
      h.stability = slot.stability;
      h.bounds = slot.bounds;
      const std::size_t buckets = slot.bounds.size() + 1;
      h.buckets.assign(buckets, 0);
      std::uint64_t min = kEmptyMin;
      for (std::size_t t = 0; t < num_shards_; ++t) {
        const std::uint64_t* row = slot.cells.data() + t * slot.stride;
        for (std::size_t b = 0; b < buckets; ++b) h.buckets[b] += row[b];
        h.count += row[buckets + kCount];
        h.sum += row[buckets + kSum];
        min = std::min(min, row[buckets + kMin]);
        h.max = std::max(h.max, row[buckets + kMax]);
      }
      h.min = h.count > 0 ? min : 0;
      snapshot.histograms.push_back(std::move(h));
    } else {
      MetricScalar s;
      s.name = slot.name;
      s.kind = slot.kind;
      s.stability = slot.stability;
      s.shards.reserve(num_shards_);
      for (std::size_t t = 0; t < num_shards_; ++t) {
        s.shards.push_back(slot.cells[t * slot.stride]);
      }
      s.value = Total(id);
      snapshot.scalars.push_back(std::move(s));
    }
  }
  const auto by_name = [](const auto& a, const auto& b) {
    return a.name < b.name;
  };
  std::sort(snapshot.scalars.begin(), snapshot.scalars.end(), by_name);
  std::sort(snapshot.histograms.begin(), snapshot.histograms.end(), by_name);
  return snapshot;
}

bool MetricsEnabledFromEnv(bool fallback) {
  const char* env = std::getenv("CCS_METRICS");  // NOLINT(concurrency-mt-unsafe)
  if (env == nullptr) return fallback;
  return std::string(env) != "0";
}

}  // namespace ccs
