#ifndef CCS_UTIL_EXECUTOR_POOL_H_
#define CCS_UTIL_EXECUTOR_POOL_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "util/executor.h"
#include "util/lock_rank.h"
#include "util/thread_annotations.h"

namespace ccs {

// Leases ParallelExecutors to concurrent mining sessions (DESIGN.md §12).
//
// A ParallelExecutor runs one loop at a time, so "a process-wide shared
// executor" cannot literally be one object: two sessions running
// concurrently need two executors. The pool makes that sharing explicit —
// Acquire hands out an exclusive lease on an executor of the requested
// width, and returning the lease parks the executor (threads alive) in a
// bounded per-width idle cache instead of tearing it down. Steady-state
// service traffic therefore pays thread creation once per (width,
// concurrency level), not once per request, while burst traffic beyond the
// idle bound degrades to construct/destroy rather than queuing here —
// admission control is the service layer's job, not the pool's.
//
// Thread-safe. Leases themselves are single-owner and move-only, exactly
// like the exclusive access they represent.
class ExecutorPool {
 public:
  struct Options {
    // Idle executors cached per width; returns beyond this are destroyed.
    std::size_t max_idle_per_width = 4;
  };

  // Default options; defined out of line because a nested struct's default
  // member initializer cannot back a default argument inside the enclosing
  // class.
  ExecutorPool();
  explicit ExecutorPool(Options options) : options_(options) {}

  ExecutorPool(const ExecutorPool&) = delete;
  ExecutorPool& operator=(const ExecutorPool&) = delete;

  // Exclusive ownership of one executor for one run; returns it to the
  // pool on destruction. Default-constructed leases are empty (!valid()).
  class Lease {
   public:
    Lease() = default;
    Lease(Lease&& other) noexcept
        : pool_(other.pool_), executor_(std::move(other.executor_)) {
      other.pool_ = nullptr;
    }
    Lease& operator=(Lease&& other) noexcept {
      if (this != &other) {
        Reset();
        pool_ = other.pool_;
        executor_ = std::move(other.executor_);
        other.pool_ = nullptr;
      }
      return *this;
    }
    ~Lease() { Reset(); }

    bool valid() const { return executor_ != nullptr; }
    ParallelExecutor& operator*() const { return *executor_; }
    ParallelExecutor* operator->() const { return executor_.get(); }

   private:
    friend class ExecutorPool;
    Lease(ExecutorPool* pool, std::unique_ptr<ParallelExecutor> executor)
        : pool_(pool), executor_(std::move(executor)) {}

    void Reset() {
      if (executor_ != nullptr) pool_->Release(std::move(executor_));
      pool_ = nullptr;
    }

    ExecutorPool* pool_ = nullptr;
    std::unique_ptr<ParallelExecutor> executor_;
  };

  // An executor with exactly `num_threads` threads (0 = one per hardware
  // thread), reusing an idle one of that width when available. Never
  // blocks; the pool must outlive every lease it hands out.
  Lease Acquire(std::size_t num_threads) CCS_EXCLUDES(mutex_);

  // Telemetry for tests and the service's stats endpoint.
  std::size_t idle_count() const CCS_EXCLUDES(mutex_);
  std::uint64_t created() const CCS_EXCLUDES(mutex_);
  std::uint64_t reused() const CCS_EXCLUDES(mutex_);

 private:
  void Release(std::unique_ptr<ParallelExecutor> executor)
      CCS_EXCLUDES(mutex_);

  const Options options_;
  // kExecutorPool: acquired during a run's setup (under the service's
  // stream lock on the TICK path) and above the executors it caches.
  mutable RankedMutex mutex_{LockRank::kExecutorPool};
  std::unordered_map<std::size_t,
                     std::vector<std::unique_ptr<ParallelExecutor>>>
      idle_ CCS_GUARDED_BY(mutex_);
  std::uint64_t created_ CCS_GUARDED_BY(mutex_) = 0;
  std::uint64_t reused_ CCS_GUARDED_BY(mutex_) = 0;
};

// The process-wide pool shared by every MiningSession that does not bring
// its own (DESIGN.md §12). Constructed on first use, never destroyed —
// leases may be in flight at exit.
ExecutorPool& ProcessExecutorPool();

}  // namespace ccs

#endif  // CCS_UTIL_EXECUTOR_POOL_H_
