#ifndef CCS_UTIL_STOPWATCH_H_
#define CCS_UTIL_STOPWATCH_H_

#include <chrono>

namespace ccs {

// Monotonic wall-clock stopwatch for the benchmark harness. The paper
// reports CPU seconds; on the dedicated single-core benchmark machine
// wall-clock of a CPU-bound single-threaded run is the same quantity.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace ccs

#endif  // CCS_UTIL_STOPWATCH_H_
