#ifndef CCS_UTIL_STATUS_H_
#define CCS_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <string_view>
#include <utility>

#include "util/check.h"

// Status / StatusOr<T> in the spirit of absl: the return-value error channel
// for fallible surfaces (file loading, query parsing, finalization). The
// convention split is:
//
//  * CCS_CHECK — programming-contract violations (indexing past the end,
//    finalizing twice). These stay aborts.
//  * Status   — bad *input* (corrupt file, malformed query, resource
//    exhaustion). These must come back to the caller, who may be a server
//    that cannot afford to die.
//
// The library still does not use exceptions at its API boundary; internally
// the parallel executor transports worker exceptions to the calling thread,
// where MiningEngine::Run converts them into Termination::kError + Status
// (see core/engine.h).

namespace ccs {

enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kDataLoss,
  kFailedPrecondition,
  kResourceExhausted,
  kDeadlineExceeded,
  kCancelled,
  kInternal,
  // Transient overload: the service's admission controller refused the
  // request (queue full) — safe to retry with backoff, unlike
  // kResourceExhausted which reports an exhausted budget.
  kUnavailable,
};

// Stable upper-case name, e.g. "INVALID_ARGUMENT".
const char* StatusCodeName(StatusCode code);

// Inverse of StatusCodeName, for decoding codes off the wire. Unknown
// names map to kInternal — a peer speaking an unrecognized code is a
// protocol-level surprise, and kInternal is never retried, which is the
// safe default under the retryability contract (only kUnavailable is).
StatusCode StatusCodeFromName(std::string_view name);

// [[nodiscard]] at class scope makes *every* function returning Status by
// value warn on a discarded result — the compiler-enforced half of the
// "errors must come back to the caller" contract (DESIGN.md §11). Use
// `(void)expr;` with a comment, or a CCS_CHECK on the result, at the rare
// call site that really means to drop one.
class [[nodiscard]] Status {
 public:
  // OK.
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "CODE_NAME: message" ("OK" for an ok status).
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

[[nodiscard]] inline Status OkStatus() { return Status(); }
[[nodiscard]] inline Status InvalidArgumentError(std::string message) {
  return Status(StatusCode::kInvalidArgument, std::move(message));
}
[[nodiscard]] inline Status NotFoundError(std::string message) {
  return Status(StatusCode::kNotFound, std::move(message));
}
[[nodiscard]] inline Status DataLossError(std::string message) {
  return Status(StatusCode::kDataLoss, std::move(message));
}
[[nodiscard]] inline Status FailedPreconditionError(std::string message) {
  return Status(StatusCode::kFailedPrecondition, std::move(message));
}
[[nodiscard]] inline Status ResourceExhaustedError(std::string message) {
  return Status(StatusCode::kResourceExhausted, std::move(message));
}
[[nodiscard]] inline Status DeadlineExceededError(std::string message) {
  return Status(StatusCode::kDeadlineExceeded, std::move(message));
}
[[nodiscard]] inline Status CancelledError(std::string message) {
  return Status(StatusCode::kCancelled, std::move(message));
}
[[nodiscard]] inline Status InternalError(std::string message) {
  return Status(StatusCode::kInternal, std::move(message));
}
[[nodiscard]] inline Status UnavailableError(std::string message) {
  return Status(StatusCode::kUnavailable, std::move(message));
}

// A Status or a value. Accessing value() on a non-ok StatusOr is a
// contract violation (CCS_CHECK). [[nodiscard]] for the same reason as
// Status: silently dropping one loses either the value or the error.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  // Non-ok status required; wrapping OkStatus() without a value is a
  // contract violation.
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    CCS_CHECK(!status_.ok());
  }
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  T& value() & {
    CCS_CHECK(ok());
    return *value_;
  }
  const T& value() const& {
    CCS_CHECK(ok());
    return *value_;
  }
  T&& value() && {
    CCS_CHECK(ok());
    return *std::move(value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace ccs

// Propagates a non-ok Status out of the enclosing function.
#define CCS_RETURN_IF_ERROR(expr)              \
  do {                                         \
    ::ccs::Status ccs_status_tmp_ = (expr);    \
    if (!ccs_status_tmp_.ok()) {               \
      return ccs_status_tmp_;                  \
    }                                          \
  } while (false)

#define CCS_STATUS_CONCAT_INNER_(a, b) a##b
#define CCS_STATUS_CONCAT_(a, b) CCS_STATUS_CONCAT_INNER_(a, b)

// CCS_ASSIGN_OR_RETURN(auto db, LoadBaskets(in)): moves the value into the
// declaration, or returns the StatusOr's status.
#define CCS_ASSIGN_OR_RETURN(lhs, rexpr)                             \
  CCS_ASSIGN_OR_RETURN_IMPL_(                                        \
      CCS_STATUS_CONCAT_(ccs_status_or_, __LINE__), lhs, rexpr)
#define CCS_ASSIGN_OR_RETURN_IMPL_(statusor, lhs, rexpr) \
  auto statusor = (rexpr);                               \
  if (!statusor.ok()) {                                  \
    return statusor.status();                            \
  }                                                      \
  lhs = std::move(statusor).value()

#endif  // CCS_UTIL_STATUS_H_
