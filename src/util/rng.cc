#include "util/rng.h"

#include <cmath>

namespace ccs {
namespace {

std::uint64_t SplitMix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void Rng::Seed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(sm);
  has_spare_gaussian_ = false;
}

std::uint64_t Rng::NextU64() {
  const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::NextBounded(std::uint64_t bound) {
  CCS_DCHECK(bound > 0);
  // Lemire multiply-shift with rejection to remove modulo bias.
  std::uint64_t x = NextU64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = NextU64();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::NextInt(std::int64_t lo, std::int64_t hi) {
  CCS_DCHECK(lo <= hi);
  const auto span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  return lo + static_cast<std::int64_t>(NextBounded(span));
}

double Rng::NextDouble() {
  // 53 high bits -> uniform in [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::NextDouble(double lo, double hi) {
  CCS_DCHECK(lo <= hi);
  return lo + (hi - lo) * NextDouble();
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

std::uint32_t Rng::NextPoisson(double mean) {
  CCS_DCHECK(mean > 0.0);
  if (mean < 30.0) {
    const double limit = std::exp(-mean);
    double prod = NextDouble();
    std::uint32_t n = 0;
    while (prod > limit) {
      prod *= NextDouble();
      ++n;
    }
    return n;
  }
  // Normal approximation with continuity correction; adequate for the
  // synthetic-data use cases (basket/itemset sizes).
  const double v = NextGaussian(mean, std::sqrt(mean)) + 0.5;
  return v <= 0.0 ? 0u : static_cast<std::uint32_t>(v);
}

double Rng::NextGaussian() {
  if (has_spare_gaussian_) {
    has_spare_gaussian_ = false;
    return spare_gaussian_;
  }
  double u;
  double v;
  double s;
  do {
    u = 2.0 * NextDouble() - 1.0;
    v = 2.0 * NextDouble() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_gaussian_ = v * factor;
  has_spare_gaussian_ = true;
  return u * factor;
}

double Rng::NextExponential(double mean) {
  CCS_DCHECK(mean > 0.0);
  double u = NextDouble();
  // Avoid log(0).
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

}  // namespace ccs
