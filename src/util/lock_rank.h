#ifndef CCS_UTIL_LOCK_RANK_H_
#define CCS_UTIL_LOCK_RANK_H_

#include <mutex>
#include <shared_mutex>

#include "util/thread_annotations.h"

// Runtime lock-rank enforcement (DESIGN.md §16). Every long-lived mutex in
// the service/executor surface is a RankedMutex carrying a LockRank from
// the central hierarchy below. Debug and sanitizer builds keep a
// thread-local stack of held ranks and report any acquisition that does
// not *strictly descend* the hierarchy — the classic lock-ordering
// discipline under which a cycle (and therefore a deadlock) is impossible.
// The check fires on the ACQUISITION ORDER, before blocking on the
// underlying mutex, so a latent ABBA inversion is reported deterministically
// on its first occurrence on any schedule, not only on the schedule where
// the two threads actually interleave into the deadlock.
//
// Release builds compile the bookkeeping out entirely: RankedMutex is a
// std::mutex plus one stored enum, and lock() is exactly std::mutex::lock().
//
// scripts/ccs_analyze.py closes the static half of the loop: the
// `ranked-mutex-required` rule keeps raw std::mutex members out of
// src/service, src/util, and src/stream, and `lock-rank-order` extracts the
// static acquire graph from guard sites and rejects cycles and both-order
// pairs at lint time, before any test runs.

// CCS_LOCK_RANK_CHECKS: 1 = bookkeeping + enforcement on, 0 = zero-cost
// pass-through. Defaults on exactly when assertions are on (!NDEBUG); the
// sanitizer build flavors force it on from CMake so TSan/ASan runs always
// exercise the checker even though they build RelWithDebInfo.
#if !defined(CCS_LOCK_RANK_CHECKS)
#if defined(NDEBUG)
#define CCS_LOCK_RANK_CHECKS 0
#else
#define CCS_LOCK_RANK_CHECKS 1
#endif
#endif

namespace ccs {

// The global lock hierarchy, highest rank first. A thread may acquire a
// mutex only while every mutex it already holds has a STRICTLY HIGHER
// rank; same-rank nesting is a violation too (no mutex pair in the tree
// shares a rank today, and same-rank nesting is how "harmless" sibling
// locks grow into cycles). Gaps between values leave room for new domains
// (ROADMAP item 1's shard locks) without renumbering.
//
// See DESIGN.md §16 for the owner/what-it-protects table.
enum class LockRank : int {
  kServiceStream = 90,  // MiningService::stream_mu_ (APPEND/TICK timeline)
  kServiceHandle = 80,  // MiningService::handle_mu_ (current DatabaseHandle)
  kAdmission = 70,      // AdmissionController::mutex_
  kMemo = 60,           // MemoCache::mutex_
  kExecutorPool = 50,   // ExecutorPool::mutex_ (idle cache)
  kExecutor = 40,       // ParallelExecutor::mutex_ (loop handshake)
  kFault = 30,          // FaultInjector::mutex_ (rule table)
  kClock = 20,          // ManualClock::mutex_ (read under kAdmission)
};

// Human-readable name for violation reports ("kAdmission(70)").
const char* LockRankName(LockRank rank);

inline constexpr bool kLockRankChecksEnabled = CCS_LOCK_RANK_CHECKS != 0;

namespace lock_rank_internal {

// Receives one fully formatted violation line. The default handler routes
// through CCS_CHECK's failure path and aborts; tests install a capturing
// handler (which may return — the acquisition then proceeds, so a test can
// observe the report without dying and without deadlocking).
using ViolationHandler = void (*)(const char* message);

// Installs a handler, returning the previous one; nullptr restores the
// default aborting handler. Not thread-safe against concurrent violations;
// meant for test setup.
ViolationHandler SetViolationHandler(ViolationHandler handler);

// Records an acquisition on this thread, reporting a violation when `rank`
// does not strictly descend below every rank already held. Called BEFORE
// the underlying mutex blocks (see header block).
void NoteAcquire(LockRank rank);

// Forgets one held instance of `rank` (the most recently acquired one —
// releases need not be LIFO; ParallelFor unlocks out of scope order on the
// error path).
void NoteRelease(LockRank rank);

// Ranks currently held by this thread; 0 when the checker is compiled out.
int HeldCount();

}  // namespace lock_rank_internal

// Drop-in std::mutex with a rank. Meets Lockable, so std::lock_guard,
// std::unique_lock, and std::condition_variable_any work unchanged; it is
// also a Clang thread-safety capability, so existing CCS_GUARDED_BY
// annotations keep their meaning.
class CCS_CAPABILITY("mutex") RankedMutex {
 public:
  explicit RankedMutex(LockRank rank) : rank_(rank) {}

  RankedMutex(const RankedMutex&) = delete;
  RankedMutex& operator=(const RankedMutex&) = delete;

  void lock() CCS_ACQUIRE() {
    if constexpr (kLockRankChecksEnabled) {
      lock_rank_internal::NoteAcquire(rank_);
    }
    mu_.lock();
  }
  void unlock() CCS_RELEASE() {
    mu_.unlock();
    if constexpr (kLockRankChecksEnabled) {
      lock_rank_internal::NoteRelease(rank_);
    }
  }
  bool try_lock() CCS_TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
    // A successful try_lock cannot deadlock, but it still participates in
    // the discipline: anything acquired under it must descend from here.
    if constexpr (kLockRankChecksEnabled) {
      lock_rank_internal::NoteAcquire(rank_);
    }
    return true;
  }

  LockRank rank() const { return rank_; }

 private:
  const LockRank rank_;
  std::mutex mu_;
};

// std::shared_mutex counterpart. Shared (reader) acquisitions obey the
// same ordering: readers block writers, so a reader acquired against the
// hierarchy deadlocks exactly like a writer would.
class CCS_CAPABILITY("shared_mutex") RankedSharedMutex {
 public:
  explicit RankedSharedMutex(LockRank rank) : rank_(rank) {}

  RankedSharedMutex(const RankedSharedMutex&) = delete;
  RankedSharedMutex& operator=(const RankedSharedMutex&) = delete;

  void lock() CCS_ACQUIRE() {
    if constexpr (kLockRankChecksEnabled) {
      lock_rank_internal::NoteAcquire(rank_);
    }
    mu_.lock();
  }
  void unlock() CCS_RELEASE() {
    mu_.unlock();
    if constexpr (kLockRankChecksEnabled) {
      lock_rank_internal::NoteRelease(rank_);
    }
  }
  bool try_lock() CCS_TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
    if constexpr (kLockRankChecksEnabled) {
      lock_rank_internal::NoteAcquire(rank_);
    }
    return true;
  }

  void lock_shared() CCS_ACQUIRE_SHARED() {
    if constexpr (kLockRankChecksEnabled) {
      lock_rank_internal::NoteAcquire(rank_);
    }
    mu_.lock_shared();
  }
  void unlock_shared() CCS_RELEASE_SHARED() {
    mu_.unlock_shared();
    if constexpr (kLockRankChecksEnabled) {
      lock_rank_internal::NoteRelease(rank_);
    }
  }
  bool try_lock_shared() CCS_TRY_ACQUIRE_SHARED(true) {
    if (!mu_.try_lock_shared()) return false;
    if constexpr (kLockRankChecksEnabled) {
      lock_rank_internal::NoteAcquire(rank_);
    }
    return true;
  }

  LockRank rank() const { return rank_; }

 private:
  const LockRank rank_;
  std::shared_mutex mu_;
};

}  // namespace ccs

#endif  // CCS_UTIL_LOCK_RANK_H_
