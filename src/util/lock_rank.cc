#include "util/lock_rank.h"

#include <atomic>
#include <cstdio>

#include "util/check.h"

namespace ccs {

const char* LockRankName(LockRank rank) {
  switch (rank) {
    case LockRank::kServiceStream:
      return "kServiceStream(90)";
    case LockRank::kServiceHandle:
      return "kServiceHandle(80)";
    case LockRank::kAdmission:
      return "kAdmission(70)";
    case LockRank::kMemo:
      return "kMemo(60)";
    case LockRank::kExecutorPool:
      return "kExecutorPool(50)";
    case LockRank::kExecutor:
      return "kExecutor(40)";
    case LockRank::kFault:
      return "kFault(30)";
    case LockRank::kClock:
      return "kClock(20)";
  }
  return "<unknown rank>";
}

namespace lock_rank_internal {
namespace {

// Deep enough for every real chain (the longest today is
// kServiceStream > kServiceHandle at depth 2) plus generous test headroom.
constexpr int kMaxHeld = 16;

struct HeldStack {
  LockRank ranks[kMaxHeld];
  int depth = 0;
};

thread_local HeldStack tls_held;

void DefaultHandler(const char* message) {
  // Route through the CCS_CHECK failure path: one stderr line (flushed —
  // see util/check.h on why), observable via SetFailureSink, then abort.
  internal::CheckFailed("lock_rank", 0, message);
}

std::atomic<ViolationHandler> g_handler{&DefaultHandler};

void ReportViolation(LockRank held, LockRank acquiring) {
  char message[160];
  std::snprintf(message, sizeof(message),
                "lock-rank violation: acquiring %s while holding %s "
                "(acquisitions must strictly descend the LockRank "
                "hierarchy)",
                LockRankName(acquiring), LockRankName(held));
  g_handler.load(std::memory_order_acquire)(message);
}

}  // namespace

ViolationHandler SetViolationHandler(ViolationHandler handler) {
  return g_handler.exchange(handler != nullptr ? handler : &DefaultHandler,
                            std::memory_order_acq_rel);
}

void NoteAcquire(LockRank rank) {
  HeldStack& held = tls_held;
  if (held.depth > 0) {
    const LockRank top = held.ranks[held.depth - 1];
    if (static_cast<int>(rank) >= static_cast<int>(top)) {
      // A capturing (test) handler may return; the acquisition then
      // proceeds and is recorded so release bookkeeping stays balanced.
      ReportViolation(top, rank);
    }
  }
  CCS_CHECK(held.depth < kMaxHeld);
  held.ranks[held.depth++] = rank;
}

void NoteRelease(LockRank rank) {
  HeldStack& held = tls_held;
  // Releases need not be LIFO; drop the most recent instance of `rank`.
  for (int i = held.depth - 1; i >= 0; --i) {
    if (held.ranks[i] != rank) continue;
    for (int j = i; j + 1 < held.depth; ++j) {
      held.ranks[j] = held.ranks[j + 1];
    }
    --held.depth;
    return;
  }
  // Releasing a rank never noted means lock/unlock calls are mismatched.
  char message[120];
  std::snprintf(message, sizeof(message),
                "lock-rank violation: releasing %s which this thread does "
                "not hold (mismatched lock/unlock)",
                LockRankName(rank));
  g_handler.load(std::memory_order_acquire)(message);
}

int HeldCount() { return tls_held.depth; }

}  // namespace lock_rank_internal
}  // namespace ccs
