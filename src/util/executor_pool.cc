#include "util/executor_pool.h"

#include <utility>

namespace ccs {

ExecutorPool::ExecutorPool() : ExecutorPool(Options()) {}

ExecutorPool::Lease ExecutorPool::Acquire(std::size_t num_threads) {
  const std::size_t width =
      num_threads != 0 ? num_threads : ParallelExecutor::HardwareThreads();
  {
    const std::lock_guard<RankedMutex> lock(mutex_);
    const auto it = idle_.find(width);
    if (it != idle_.end() && !it->second.empty()) {
      std::unique_ptr<ParallelExecutor> executor =
          std::move(it->second.back());
      it->second.pop_back();
      ++reused_;
      return Lease(this, std::move(executor));
    }
    ++created_;
  }
  // Thread construction happens outside the lock: it is the slow path, and
  // concurrent cold acquires should not serialize on it.
  return Lease(this, std::make_unique<ParallelExecutor>(width));
}

void ExecutorPool::Release(std::unique_ptr<ParallelExecutor> executor) {
  const std::size_t width = executor->num_threads();
  const std::lock_guard<RankedMutex> lock(mutex_);
  std::vector<std::unique_ptr<ParallelExecutor>>& bucket = idle_[width];
  if (bucket.size() < options_.max_idle_per_width) {
    bucket.push_back(std::move(executor));
  }
  // else: executor destroyed on scope exit, joining its threads — keeping
  // the idle cache bounded is worth the occasional teardown.
}

std::size_t ExecutorPool::idle_count() const {
  const std::lock_guard<RankedMutex> lock(mutex_);
  std::size_t total = 0;
  for (const auto& [width, bucket] : idle_) total += bucket.size();
  return total;
}

std::uint64_t ExecutorPool::created() const {
  const std::lock_guard<RankedMutex> lock(mutex_);
  return created_;
}

std::uint64_t ExecutorPool::reused() const {
  const std::lock_guard<RankedMutex> lock(mutex_);
  return reused_;
}

ExecutorPool& ProcessExecutorPool() {
  static ExecutorPool* pool = new ExecutorPool();
  return *pool;
}

}  // namespace ccs
