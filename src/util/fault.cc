#include "util/fault.h"

#include <cstdio>
#include <cstdlib>

namespace ccs {
namespace {

// splitmix64 step: cheap, stateful, deterministic per rule.
std::uint64_t NextRandom(std::uint64_t* state) {
  std::uint64_t z = (*state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

// ':'-separated fields of one clause: site[:nth=N | :prob=P[:seed=S]].
std::vector<std::string_view> SplitFields(std::string_view clause) {
  std::vector<std::string_view> fields;
  std::size_t start = 0;
  while (start <= clause.size()) {
    std::size_t colon = clause.find(':', start);
    if (colon == std::string_view::npos) colon = clause.size();
    fields.push_back(clause.substr(start, colon - start));
    start = colon + 1;
  }
  return fields;
}

}  // namespace

std::atomic<bool> FaultInjector::enabled_{false};

FaultInjector& FaultInjector::Global() {
  static FaultInjector* injector = new FaultInjector();
  return *injector;
}

Status FaultInjector::Configure(std::string_view spec) {
  std::vector<Rule> rules;
  std::size_t start = 0;
  while (start <= spec.size()) {
    std::size_t semi = spec.find(';', start);
    if (semi == std::string_view::npos) semi = spec.size();
    const std::string_view clause = spec.substr(start, semi - start);
    start = semi + 1;
    if (clause.empty()) continue;

    const std::vector<std::string_view> fields = SplitFields(clause);
    Rule rule;
    rule.site = std::string(fields[0]);
    if (rule.site.empty()) {
      return InvalidArgumentError("fault spec clause with empty site: '" +
                                  std::string(clause) + "'");
    }
    bool have_trigger = false;
    for (std::size_t i = 1; i < fields.size(); ++i) {
      const std::string_view field = fields[i];
      const std::size_t eq = field.find('=');
      if (eq == std::string_view::npos) {
        return InvalidArgumentError("expected key=value in fault spec: '" +
                                    std::string(field) + "'");
      }
      const std::string_view key = field.substr(0, eq);
      const std::string value(field.substr(eq + 1));
      char* end = nullptr;
      if (key == "nth") {
        rule.nth = std::strtoull(value.c_str(), &end, 10);
        if (end == value.c_str() || *end != '\0' || rule.nth == 0) {
          return InvalidArgumentError("bad nth '" + value +
                                      "' in fault spec (want an integer "
                                      ">= 1)");
        }
        have_trigger = true;
      } else if (key == "prob") {
        rule.probability = std::strtod(value.c_str(), &end);
        if (end == value.c_str() || *end != '\0' ||
            rule.probability < 0.0 || rule.probability > 1.0) {
          return InvalidArgumentError("bad prob '" + value +
                                      "' in fault spec (want [0, 1])");
        }
        have_trigger = true;
      } else if (key == "seed") {
        rule.rng_state = std::strtoull(value.c_str(), &end, 10);
        if (end == value.c_str() || *end != '\0') {
          return InvalidArgumentError("bad seed '" + value +
                                      "' in fault spec");
        }
      } else {
        return InvalidArgumentError("unknown key '" + std::string(key) +
                                    "' in fault spec");
      }
    }
    if (!have_trigger) {
      return InvalidArgumentError("fault site '" + rule.site +
                                  "' needs nth=N or prob=P");
    }
    rules.push_back(std::move(rule));
  }

  std::lock_guard<RankedMutex> lock(mutex_);
  rules_ = std::move(rules);
  enabled_.store(!rules_.empty(), std::memory_order_relaxed);
  return OkStatus();
}

void FaultInjector::ConfigureFromEnv() {
  const char* spec = std::getenv("CCS_FAULT");  // NOLINT(concurrency-mt-unsafe)
  if (spec == nullptr || spec[0] == '\0') return;
  const Status status = Configure(spec);
  if (!status.ok()) {
    std::fprintf(stderr, "CCS_FAULT ignored: %s\n",
                 status.ToString().c_str());
  }
}

void FaultInjector::Disable() {
  std::lock_guard<RankedMutex> lock(mutex_);
  rules_.clear();
  enabled_.store(false, std::memory_order_relaxed);
}

bool FaultInjector::ShouldFail(std::string_view site) {
  std::lock_guard<RankedMutex> lock(mutex_);
  bool fire = false;
  for (Rule& rule : rules_) {
    if (rule.site != site) continue;
    ++rule.call_count;
    if (rule.nth > 0) {
      if (!rule.fired && rule.call_count == rule.nth) {
        rule.fired = true;
        fire = true;
      }
    } else if (rule.probability > 0.0) {
      const double draw =
          static_cast<double>(NextRandom(&rule.rng_state) >> 11) *
          (1.0 / 9007199254740992.0);  // 2^53
      if (draw < rule.probability) fire = true;
    }
  }
  return fire;
}

std::uint64_t FaultInjector::calls(std::string_view site) const {
  std::lock_guard<RankedMutex> lock(mutex_);
  std::uint64_t n = 0;
  for (const Rule& rule : rules_) {
    if (rule.site == site) n = rule.call_count > n ? rule.call_count : n;
  }
  return n;
}

namespace {

// Applies CCS_FAULT before main(). Fault points are never evaluated during
// static initialization, so cross-TU init order is irrelevant here.
const bool g_fault_env_applied = [] {
  FaultInjector::Global().ConfigureFromEnv();
  return true;
}();

}  // namespace

}  // namespace ccs
