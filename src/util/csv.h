#ifndef CCS_UTIL_CSV_H_
#define CCS_UTIL_CSV_H_

#include <cstdint>
#include <string>
#include <vector>

namespace ccs {

// Minimal CSV table builder used by the benchmark harness to dump the data
// series behind each reproduced figure. Values are formatted on append; the
// table can be rendered to a CSV string, written to a file, or printed as an
// aligned text table for terminal output.
class CsvTable {
 public:
  explicit CsvTable(std::vector<std::string> header);

  // Starts a new row. Subsequent Add* calls append cells to it.
  void BeginRow();
  void AddCell(const std::string& value);
  void AddCell(std::int64_t value);
  void AddCell(std::uint64_t value);
  // Doubles are formatted with up to `precision` significant decimals.
  void AddCell(double value, int precision = 3);

  // Convenience: appends a whole row; must match the header width.
  void AddRow(std::vector<std::string> cells);

  std::size_t num_rows() const { return rows_.size(); }
  const std::vector<std::string>& header() const { return header_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

  // RFC-4180-ish CSV (cells containing comma/quote/newline are quoted).
  std::string ToCsv() const;

  // Fixed-width text rendering for terminal output.
  std::string ToAlignedText() const;

  // Writes ToCsv() to `path`. Returns false on I/O failure.
  bool WriteFile(const std::string& path) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ccs

#endif  // CCS_UTIL_CSV_H_
