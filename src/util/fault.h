#ifndef CCS_UTIL_FAULT_H_
#define CCS_UTIL_FAULT_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "util/lock_rank.h"
#include "util/status.h"
#include "util/thread_annotations.h"

// Fault-injection harness for exercising the run-hardening paths end to
// end. Production code marks fault sites with CCS_FAULT_POINT("site")
// (throwing sites: table building, per-run allocation) or
// ShouldInjectFault("site") (non-throwing sites: I/O loaders, which return
// a Status instead). With no configuration the hot-path cost is a single
// relaxed atomic load.
//
// Configuration comes from the CCS_FAULT environment variable (read once at
// process start) or programmatically via Configure() in tests:
//
//   CCS_FAULT="ct_build:nth=3"            fail the 3rd ct_build call
//   CCS_FAULT="io:prob=0.01:seed=7"       fail each io call with p=0.01
//   CCS_FAULT="alloc:nth=1;io:nth=2"      multiple sites, ';'-separated
//
// Known sites: ct_build (ContingencyTableBuilder::Build), alloc
// (EvalWorkers construction), io (binary and text loaders), and the
// service layer's non-throwing sites — svc_accept (post-accept resource
// failure, connection shed), svc_read (mid-frame disconnect in
// FramedReader), svc_write (failed send in WriteAll), svc_memo (memo
// unavailable for one request; the degraded path mines without the
// cache). Unknown site names are accepted — they simply never fire — so
// specs stay forward compatible.
namespace ccs {

// Thrown by CCS_FAULT_POINT when a configured fault fires. MiningEngine
// surfaces it as Termination::kError.
class FaultInjectedError : public std::runtime_error {
 public:
  explicit FaultInjectedError(const std::string& site)
      : std::runtime_error("injected fault at site '" + site + "'"),
        site_(site) {}
  const std::string& site() const { return site_; }

 private:
  std::string site_;
};

class FaultInjector {
 public:
  // Process-wide injector; CCS_FAULT is applied to it before main().
  static FaultInjector& Global();

  // True when any rule is armed anywhere — the hot-path early-out.
  static bool Enabled() {
    return enabled_.load(std::memory_order_relaxed);
  }

  // Parses and installs a spec (grammar above), replacing any previous
  // rules. An empty spec disarms. Thread-safe.
  [[nodiscard]] Status Configure(std::string_view spec)
      CCS_EXCLUDES(mutex_);

  // Reads CCS_FAULT; a malformed value is reported to stderr and ignored
  // (a bad env var must not take the process down — that is the point).
  void ConfigureFromEnv();

  // Removes all rules and disarms the hot path.
  void Disable() CCS_EXCLUDES(mutex_);

  // True when the fault at `site` fires for this call. Counts every call
  // per site (see calls()).
  bool ShouldFail(std::string_view site) CCS_EXCLUDES(mutex_);

  // Calls observed at a site since the last Configure/Disable.
  std::uint64_t calls(std::string_view site) const CCS_EXCLUDES(mutex_);

 private:
  struct Rule {
    std::string site;
    // nth > 0: fire exactly on the nth call (1-based), once.
    std::uint64_t nth = 0;
    // nth == 0: fire each call with this probability (deterministic LCG).
    double probability = 0.0;
    std::uint64_t rng_state = 0x9e3779b97f4a7c15ull;
    std::uint64_t call_count = 0;
    bool fired = false;
  };

  // mutex_ guards the rule table; the lock-free fast path is the static
  // enabled_ flag below, checked before ever touching the rules. kFault:
  // fault points fire from nearly anywhere, so this ranks below every
  // other lock (only the clock is lower).
  mutable RankedMutex mutex_{LockRank::kFault};
  std::vector<Rule> rules_ CCS_GUARDED_BY(mutex_);

  static std::atomic<bool> enabled_;
};

// Non-throwing form for Status-returning call sites.
inline bool ShouldInjectFault(const char* site) {
  return FaultInjector::Enabled() &&
         FaultInjector::Global().ShouldFail(site);
}

}  // namespace ccs

// Throwing fault site; zero-cost (one relaxed load) when disarmed.
#define CCS_FAULT_POINT(site)                                      \
  do {                                                             \
    if (::ccs::FaultInjector::Enabled() &&                         \
        ::ccs::FaultInjector::Global().ShouldFail(site)) {         \
      throw ::ccs::FaultInjectedError(site);                       \
    }                                                              \
  } while (false)

#endif  // CCS_UTIL_FAULT_H_
