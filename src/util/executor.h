#ifndef CCS_UTIL_EXECUTOR_H_
#define CCS_UTIL_EXECUTOR_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "util/lock_rank.h"
#include "util/metrics.h"
#include "util/thread_annotations.h"

namespace ccs {

// Fixed-size thread pool with a chunked parallel-for, sized once at
// construction and reused across loops (the mining engines call into it
// once per lattice level).
//
// Determinism contract: ParallelFor partitions [0, n) into contiguous
// chunks that threads claim from an atomic cursor. The body receives the
// claiming thread's index (for per-thread scratch state) and the element
// index; writing results through the element index into a pre-sized array
// makes the output independent of the thread schedule. Nothing about
// *which* thread evaluates an element is deterministic — only the index
// space is.
//
// With num_threads == 1 no worker threads are created and ParallelFor runs
// the body inline, so a single-threaded executor is exactly the serial
// code path.
class ParallelExecutor {
 public:
  // body(thread, index): thread in [0, num_threads()), index in [0, n).
  using Body = std::function<void(std::size_t, std::size_t)>;

  // num_threads == 0 picks one thread per hardware thread.
  explicit ParallelExecutor(std::size_t num_threads = 1);
  ~ParallelExecutor();

  ParallelExecutor(const ParallelExecutor&) = delete;
  ParallelExecutor& operator=(const ParallelExecutor&) = delete;

  std::size_t num_threads() const { return num_threads_; }

  // Runs body(thread, i) for every i in [0, n); returns when all calls
  // have finished. The calling thread participates as thread 0. The body
  // must not re-enter ParallelFor on this executor.
  //
  // Exception safety: a body may throw. The first exception (in claim
  // order across threads) is captured, the remaining work is abandoned
  // (workers stop claiming chunks and park for the next loop), and the
  // exception is rethrown on the calling thread once every worker has
  // quiesced. The pool stays usable for subsequent ParallelFor calls.
  // Side effects of body calls that ran before the abandonment are
  // unspecified — callers must discard any partially written outputs.
  void ParallelFor(std::size_t n, const Body& body) CCS_EXCLUDES(mutex_);

  // std::thread::hardware_concurrency with a floor of 1.
  static std::size_t HardwareThreads();

  // Points the executor's instrumentation at `metrics` (nullptr detaches).
  // Registers executor.loops (one per ParallelFor call — deterministic: the
  // loop count depends only on the work submitted) and executor.chunks (one
  // per claimed chunk, on the claiming thread's shard — schedule-
  // dependent). Must be called with no loop in flight; the registry must
  // outlive the attachment. The engine attaches its per-run registry for
  // the duration of each Run.
  void SetMetrics(MetricsRegistry* metrics) CCS_EXCLUDES(mutex_);

 private:
  void WorkerLoop(std::size_t thread_index) CCS_EXCLUDES(mutex_);
  // Reads the loop-publication fields (body_, n_, grain_, metrics_)
  // without mutex_: they are written only under mutex_ before the
  // generation bump that releases the workers, and the orchestrator joins
  // every worker (done_cv_) before the next write, so the reads are
  // ordered by the handshake rather than by holding the lock. The analysis
  // cannot see that protocol, hence the opt-out (DESIGN.md §11).
  void RunChunks(std::size_t thread_index) CCS_NO_THREAD_SAFETY_ANALYSIS;

  std::size_t num_threads_;
  std::vector<std::thread> workers_;

  // Attached registry (nullable). Written only between loops; workers read
  // it inside a loop, after the mutex-synchronized generation bump.
  MetricsRegistry* metrics_ = nullptr;
  MetricsRegistry::Id loops_id_ = 0;
  MetricsRegistry::Id chunks_id_ = 0;

  // mutex_ orders the start/done handshake with the worker threads and
  // guards the loop-lifecycle state below. kExecutor: acquired under the
  // pool (Release) and the service's stream lock (a Tick's mining run),
  // above nothing — bodies run lock-free. condition_variable_any because
  // the plain condition_variable only accepts std::mutex.
  RankedMutex mutex_{LockRank::kExecutor};
  std::condition_variable_any start_cv_;
  std::condition_variable_any done_cv_;
  std::uint64_t generation_ CCS_GUARDED_BY(mutex_) = 0;
  std::size_t active_workers_ CCS_GUARDED_BY(mutex_) = 0;
  bool shutdown_ CCS_GUARDED_BY(mutex_) = false;

  // Current loop; published under mutex_ before the generation bump and
  // read lock-free by RunChunks under the handshake protocol above, so
  // deliberately not GUARDED_BY (the annotation would overclaim).
  const Body* body_ = nullptr;
  std::size_t n_ = 0;
  std::size_t grain_ = 1;
  std::atomic<std::size_t> cursor_{0};
  // First exception thrown by a body this loop; abort_ makes the other
  // threads stop claiming work.
  std::exception_ptr first_error_ CCS_GUARDED_BY(mutex_);
  std::atomic<bool> abort_{false};
};

}  // namespace ccs

#endif  // CCS_UTIL_EXECUTOR_H_
