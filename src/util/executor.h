#ifndef CCS_UTIL_EXECUTOR_H_
#define CCS_UTIL_EXECUTOR_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/metrics.h"

namespace ccs {

// Fixed-size thread pool with a chunked parallel-for, sized once at
// construction and reused across loops (the mining engines call into it
// once per lattice level).
//
// Determinism contract: ParallelFor partitions [0, n) into contiguous
// chunks that threads claim from an atomic cursor. The body receives the
// claiming thread's index (for per-thread scratch state) and the element
// index; writing results through the element index into a pre-sized array
// makes the output independent of the thread schedule. Nothing about
// *which* thread evaluates an element is deterministic — only the index
// space is.
//
// With num_threads == 1 no worker threads are created and ParallelFor runs
// the body inline, so a single-threaded executor is exactly the serial
// code path.
class ParallelExecutor {
 public:
  // body(thread, index): thread in [0, num_threads()), index in [0, n).
  using Body = std::function<void(std::size_t, std::size_t)>;

  // num_threads == 0 picks one thread per hardware thread.
  explicit ParallelExecutor(std::size_t num_threads = 1);
  ~ParallelExecutor();

  ParallelExecutor(const ParallelExecutor&) = delete;
  ParallelExecutor& operator=(const ParallelExecutor&) = delete;

  std::size_t num_threads() const { return num_threads_; }

  // Runs body(thread, i) for every i in [0, n); returns when all calls
  // have finished. The calling thread participates as thread 0. The body
  // must not re-enter ParallelFor on this executor.
  //
  // Exception safety: a body may throw. The first exception (in claim
  // order across threads) is captured, the remaining work is abandoned
  // (workers stop claiming chunks and park for the next loop), and the
  // exception is rethrown on the calling thread once every worker has
  // quiesced. The pool stays usable for subsequent ParallelFor calls.
  // Side effects of body calls that ran before the abandonment are
  // unspecified — callers must discard any partially written outputs.
  void ParallelFor(std::size_t n, const Body& body);

  // std::thread::hardware_concurrency with a floor of 1.
  static std::size_t HardwareThreads();

  // Points the executor's instrumentation at `metrics` (nullptr detaches).
  // Registers executor.loops (one per ParallelFor call — deterministic: the
  // loop count depends only on the work submitted) and executor.chunks (one
  // per claimed chunk, on the claiming thread's shard — schedule-
  // dependent). Must be called with no loop in flight; the registry must
  // outlive the attachment. The engine attaches its per-run registry for
  // the duration of each Run.
  void SetMetrics(MetricsRegistry* metrics);

 private:
  void WorkerLoop(std::size_t thread_index);
  void RunChunks(std::size_t thread_index);

  std::size_t num_threads_;
  std::vector<std::thread> workers_;

  // Attached registry (nullable). Written only between loops; workers read
  // it inside a loop, after the mutex-synchronized generation bump.
  MetricsRegistry* metrics_ = nullptr;
  MetricsRegistry::Id loops_id_ = 0;
  MetricsRegistry::Id chunks_id_ = 0;

  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  std::uint64_t generation_ = 0;
  std::size_t active_workers_ = 0;
  bool shutdown_ = false;

  // Current loop; published under mutex_ before the generation bump.
  const Body* body_ = nullptr;
  std::size_t n_ = 0;
  std::size_t grain_ = 1;
  std::atomic<std::size_t> cursor_{0};
  // First exception thrown by a body this loop (under mutex_); abort_
  // makes the other threads stop claiming work.
  std::exception_ptr first_error_;
  std::atomic<bool> abort_{false};
};

}  // namespace ccs

#endif  // CCS_UTIL_EXECUTOR_H_
