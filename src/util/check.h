#ifndef CCS_UTIL_CHECK_H_
#define CCS_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

// Lightweight CHECK macros in the spirit of absl/glog. The library does not
// use exceptions (Google C++ style); contract violations abort with a
// message that names the failing condition and source location.
//
// CCS_CHECK(cond)        - always evaluated.
// CCS_CHECK_OP(a, op, b) - readable comparisons, e.g. CCS_CHECK_GE(n, 0).
// CCS_DCHECK(cond)       - evaluated only in debug builds (NDEBUG off).

namespace ccs::internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* condition) {
  std::fprintf(stderr, "CCS_CHECK failed at %s:%d: %s\n", file, line,
               condition);
  std::abort();
}

}  // namespace ccs::internal

#define CCS_CHECK(condition)                                        \
  do {                                                              \
    if (!(condition)) {                                             \
      ::ccs::internal::CheckFailed(__FILE__, __LINE__, #condition); \
    }                                                               \
  } while (false)

#define CCS_CHECK_OP(a, op, b) CCS_CHECK((a)op(b))
#define CCS_CHECK_EQ(a, b) CCS_CHECK_OP(a, ==, b)
#define CCS_CHECK_NE(a, b) CCS_CHECK_OP(a, !=, b)
#define CCS_CHECK_LT(a, b) CCS_CHECK_OP(a, <, b)
#define CCS_CHECK_LE(a, b) CCS_CHECK_OP(a, <=, b)
#define CCS_CHECK_GT(a, b) CCS_CHECK_OP(a, >, b)
#define CCS_CHECK_GE(a, b) CCS_CHECK_OP(a, >=, b)

#ifdef NDEBUG
#define CCS_DCHECK(condition) \
  do {                        \
  } while (false)
#else
#define CCS_DCHECK(condition) CCS_CHECK(condition)
#endif

#endif  // CCS_UTIL_CHECK_H_
