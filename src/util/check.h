#ifndef CCS_UTIL_CHECK_H_
#define CCS_UTIL_CHECK_H_

// Lightweight CHECK macros in the spirit of absl/glog. The library does not
// use exceptions (Google C++ style); contract violations abort with a
// message that names the failing condition and source location.
//
// CCS_CHECK(cond)        - always evaluated.
// CCS_CHECK_OP(a, op, b) - readable comparisons, e.g. CCS_CHECK_GE(n, 0).
// CCS_DCHECK(cond)       - evaluated only in debug builds (NDEBUG off).
//
// Failure text is routed through a single FailureSink so harnesses (the
// fault-injection tests, an embedding server's crash reporter) can observe
// the message before the abort. The default sink writes to stderr and
// flushes explicitly — abort() does not flush stdio buffers, so without the
// flush the message is lost whenever stderr is redirected to a pipe or
// file (fully buffered), which is exactly the CI/release situation where
// the message matters most.

namespace ccs::internal {

// Receives the fully formatted failure line ("CCS_CHECK failed at
// file:line: cond\n"). Must not return control flow to the checker; after
// the sink returns, CheckFailed aborts unconditionally.
using FailureSink = void (*)(const char* message);

// Installs a sink, returning the previous one. nullptr restores the
// default stderr sink. Not thread-safe against concurrent failures; meant
// for test setup.
FailureSink SetFailureSink(FailureSink sink);

[[noreturn]] void CheckFailed(const char* file, int line,
                              const char* condition);

}  // namespace ccs::internal

#define CCS_CHECK(condition)                                        \
  do {                                                              \
    if (!(condition)) {                                             \
      ::ccs::internal::CheckFailed(__FILE__, __LINE__, #condition); \
    }                                                               \
  } while (false)

#define CCS_CHECK_OP(a, op, b) CCS_CHECK((a)op(b))
#define CCS_CHECK_EQ(a, b) CCS_CHECK_OP(a, ==, b)
#define CCS_CHECK_NE(a, b) CCS_CHECK_OP(a, !=, b)
#define CCS_CHECK_LT(a, b) CCS_CHECK_OP(a, <, b)
#define CCS_CHECK_LE(a, b) CCS_CHECK_OP(a, <=, b)
#define CCS_CHECK_GT(a, b) CCS_CHECK_OP(a, >, b)
#define CCS_CHECK_GE(a, b) CCS_CHECK_OP(a, >=, b)

#ifdef NDEBUG
#define CCS_DCHECK(condition) \
  do {                        \
  } while (false)
#else
#define CCS_DCHECK(condition) CCS_CHECK(condition)
#endif

#endif  // CCS_UTIL_CHECK_H_
