#include "util/csv.h"

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "util/check.h"

namespace ccs {
namespace {

bool NeedsQuoting(const std::string& cell) {
  return cell.find_first_of(",\"\n") != std::string::npos;
}

std::string QuoteCell(const std::string& cell) {
  if (!NeedsQuoting(cell)) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

CsvTable::CsvTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  CCS_CHECK(!header_.empty());
}

void CsvTable::BeginRow() {
  CCS_CHECK(rows_.empty() || rows_.back().size() == header_.size());
  rows_.emplace_back();
}

void CsvTable::AddCell(const std::string& value) {
  CCS_CHECK(!rows_.empty());
  CCS_CHECK_LT(rows_.back().size(), header_.size());
  rows_.back().push_back(value);
}

void CsvTable::AddCell(std::int64_t value) {
  AddCell(std::to_string(value));
}

void CsvTable::AddCell(std::uint64_t value) {
  AddCell(std::to_string(value));
}

void CsvTable::AddCell(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  AddCell(std::string(buf));
}

void CsvTable::AddRow(std::vector<std::string> cells) {
  CCS_CHECK_EQ(cells.size(), header_.size());
  CCS_CHECK(rows_.empty() || rows_.back().size() == header_.size());
  rows_.push_back(std::move(cells));
}

std::string CsvTable::ToCsv() const {
  std::string out;
  for (std::size_t i = 0; i < header_.size(); ++i) {
    if (i > 0) out += ',';
    out += QuoteCell(header_[i]);
  }
  out += '\n';
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += ',';
      out += QuoteCell(row[i]);
    }
    out += '\n';
  }
  return out;
}

std::string CsvTable::ToAlignedText() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t i = 0; i < header_.size(); ++i) widths[i] = header_[i].size();
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i > 0) line += "  ";
      line += row[i];
      line.append(widths[i] - row[i].size(), ' ');
    }
    // Trim trailing padding.
    while (!line.empty() && line.back() == ' ') line.pop_back();
    return line + "\n";
  };
  std::string out = render_row(header_);
  std::string rule;
  for (std::size_t i = 0; i < widths.size(); ++i) {
    if (i > 0) rule += "  ";
    rule.append(widths[i], '-');
  }
  out += rule + "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

bool CsvTable::WriteFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << ToCsv();
  return static_cast<bool>(out);
}

}  // namespace ccs
