#include "util/bitset.h"

#include <bit>

namespace ccs {

void DynamicBitset::Resize(std::size_t num_bits) {
  num_bits_ = num_bits;
  words_.resize((num_bits + kBitsPerWord - 1) / kBitsPerWord, 0);
  ClearTrailingBits();
}

void DynamicBitset::SetAll() {
  for (Word& w : words_) w = ~Word{0};
  ClearTrailingBits();
}

void DynamicBitset::ResetAll() {
  for (Word& w : words_) w = 0;
}

std::size_t DynamicBitset::Count() const {
  std::size_t n = 0;
  for (Word w : words_) n += static_cast<std::size_t>(std::popcount(w));
  return n;
}

bool DynamicBitset::None() const {
  for (Word w : words_) {
    if (w != 0) return false;
  }
  return true;
}

void DynamicBitset::AssignAnd(const DynamicBitset& a, const DynamicBitset& b) {
  CCS_CHECK_EQ(a.num_bits_, b.num_bits_);
  Resize(a.num_bits_);
  for (std::size_t i = 0; i < words_.size(); ++i) {
    words_[i] = a.words_[i] & b.words_[i];
  }
}

void DynamicBitset::AssignAndNot(const DynamicBitset& a,
                                 const DynamicBitset& b) {
  CCS_CHECK_EQ(a.num_bits_, b.num_bits_);
  Resize(a.num_bits_);
  for (std::size_t i = 0; i < words_.size(); ++i) {
    words_[i] = a.words_[i] & ~b.words_[i];
  }
}

std::uint64_t DynamicBitset::AssignAndCount(const DynamicBitset& a,
                                            const DynamicBitset& b) {
  CCS_CHECK_EQ(a.num_bits_, b.num_bits_);
  Resize(a.num_bits_);
  std::uint64_t n = 0;
  for (std::size_t i = 0; i < words_.size(); ++i) {
    words_[i] = a.words_[i] & b.words_[i];
    n += static_cast<std::uint64_t>(std::popcount(words_[i]));
  }
  return n;
}

void DynamicBitset::AssignComplement(const DynamicBitset& a) {
  Resize(a.num_bits_);
  for (std::size_t i = 0; i < words_.size(); ++i) {
    words_[i] = ~a.words_[i];
  }
  ClearTrailingBits();
}

void DynamicBitset::AndWith(const DynamicBitset& other) {
  CCS_CHECK_EQ(num_bits_, other.num_bits_);
  for (std::size_t i = 0; i < words_.size(); ++i) {
    words_[i] &= other.words_[i];
  }
}

void DynamicBitset::OrWith(const DynamicBitset& other) {
  CCS_CHECK_EQ(num_bits_, other.num_bits_);
  for (std::size_t i = 0; i < words_.size(); ++i) {
    words_[i] |= other.words_[i];
  }
}

std::size_t DynamicBitset::CountAnd(const DynamicBitset& a,
                                    const DynamicBitset& b) {
  CCS_CHECK_EQ(a.num_bits_, b.num_bits_);
  std::size_t n = 0;
  for (std::size_t i = 0; i < a.words_.size(); ++i) {
    n += static_cast<std::size_t>(std::popcount(a.words_[i] & b.words_[i]));
  }
  return n;
}

std::size_t DynamicBitset::CountAndNot(const DynamicBitset& a,
                                       const DynamicBitset& b) {
  CCS_CHECK_EQ(a.num_bits_, b.num_bits_);
  std::size_t n = 0;
  for (std::size_t i = 0; i < a.words_.size(); ++i) {
    n += static_cast<std::size_t>(std::popcount(a.words_[i] & ~b.words_[i]));
  }
  return n;
}

void DynamicBitset::ClearTrailingBits() {
  const std::size_t used = num_bits_ % kBitsPerWord;
  if (used != 0 && !words_.empty()) {
    words_.back() &= (Word{1} << used) - 1;
  }
}

}  // namespace ccs
