#ifndef CCS_UTIL_RNG_H_
#define CCS_UTIL_RNG_H_

#include <cstdint>

#include "util/check.h"

namespace ccs {

// Deterministic, seedable pseudo-random number generator
// (xoshiro256**; seeded via splitmix64). All synthetic data generation in
// ccsmine goes through this class so experiments are exactly reproducible
// from a seed, independent of the platform's std::mt19937 stream.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) { Seed(seed); }

  void Seed(std::uint64_t seed);

  // Uniform 64-bit value.
  std::uint64_t NextU64();

  // Uniform in [0, bound) using Lemire's rejection-free-in-expectation
  // multiply-shift reduction. bound must be > 0.
  std::uint64_t NextBounded(std::uint64_t bound);

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t NextInt(std::int64_t lo, std::int64_t hi);

  // Uniform double in [0, 1).
  double NextDouble();

  // Uniform double in [lo, hi).
  double NextDouble(double lo, double hi);

  // True with probability p (clamped to [0, 1]).
  bool NextBernoulli(double p);

  // Poisson-distributed value with the given mean (> 0). Uses Knuth's
  // method for small means and normal approximation beyond 30.
  std::uint32_t NextPoisson(double mean);

  // Standard normal deviate (Box-Muller, cached spare).
  double NextGaussian();

  // Normal deviate with given mean and standard deviation.
  double NextGaussian(double mean, double stddev) {
    return mean + stddev * NextGaussian();
  }

  // Exponentially distributed deviate with the given mean (> 0).
  double NextExponential(double mean);

 private:
  std::uint64_t state_[4];
  double spare_gaussian_ = 0.0;
  bool has_spare_gaussian_ = false;
};

}  // namespace ccs

#endif  // CCS_UTIL_RNG_H_
