#include "stream/streaming_database.h"

#include <algorithm>
#include <utility>

#include "util/check.h"

namespace ccs {
namespace stream {

StreamingDatabase::StreamingDatabase(std::size_t num_items,
                                     ItemCatalog catalog,
                                     StreamOptions options)
    : log_(num_items),
      window_(options),
      catalog_(std::move(catalog)),
      options_(options) {
  CCS_CHECK_GE(options_.tick_interval_ms, 1u);
}

Status StreamingDatabase::Append(Transaction basket) {
  return log_.Append(std::move(basket));
}

StreamingDatabase::WindowDelta StreamingDatabase::Tick() {
  WindowDelta delta;
  delta.epoch = ++epoch_;
  const BasketLog::TidRange range = log_.CutFrame();
  delta.appended.reserve(
      static_cast<std::size_t>(range.end - range.begin));
  for (std::uint64_t tid = range.begin; tid < range.end; ++tid) {
    delta.appended.push_back(log_.basket(tid));
  }
  const WindowFrame frame{range.begin, range.end, epoch_ - 1, epoch_};
  const std::vector<WindowFrame> expired_frames = window_.Push(frame);
  for (const WindowFrame& expired : expired_frames) {
    for (std::uint64_t tid = expired.tid_begin; tid < expired.tid_end;
         ++tid) {
      delta.expired.push_back(log_.basket(tid));
    }
  }
  log_.DropBelow(window_.window_tid_begin());
  for (const std::vector<Transaction>* group :
       {&delta.appended, &delta.expired}) {
    for (const Transaction& basket : *group) {
      delta.dirty_items.insert(delta.dirty_items.end(), basket.begin(),
                               basket.end());
    }
  }
  std::sort(delta.dirty_items.begin(), delta.dirty_items.end());
  delta.dirty_items.erase(
      std::unique(delta.dirty_items.begin(), delta.dirty_items.end()),
      delta.dirty_items.end());
  delta.window_baskets = window_.window_baskets();
  return delta;
}

std::vector<StreamingDatabase::WindowDelta> StreamingDatabase::AdvanceTo(
    std::uint64_t now_ms) {
  std::vector<WindowDelta> deltas;
  const std::uint64_t due = now_ms / options_.tick_interval_ms;
  while (epoch_ < due) deltas.push_back(Tick());
  return deltas;
}

TransactionDatabase StreamingDatabase::WindowSnapshot() const {
  TransactionDatabase db(log_.num_items());
  for (const WindowFrame& frame : window_.frames()) {
    for (std::uint64_t tid = frame.tid_begin; tid < frame.tid_end; ++tid) {
      db.Add(log_.basket(tid));
    }
  }
  db.Finalize();
  return db;
}

DatabaseHandle StreamingDatabase::SnapshotHandle(
    const HandleOptions& options) const {
  return DatabaseHandle::Create(WindowSnapshot(), catalog_, options);
}

}  // namespace stream
}  // namespace ccs
