#include "stream/delta_miner.h"

#include <algorithm>
#include <iterator>
#include <memory>
#include <optional>
#include <utility>

#include "core/ct_builder.h"
#include "core/ct_delta.h"
#include "util/check.h"

namespace ccs {
namespace stream {

namespace {

// The CtDeltaSource implementation behind DeltaMiner (core/ct_delta.h):
// holds the previous window's tables plus two tiny finalized databases of
// this tick's appended and expired baskets. Recovery is exact integer
// arithmetic on cells:
//
//   clean itemset (no dirty item): only the all-absent cell moved —
//     cells[0] += appended − expired baskets, every other cell untouched.
//     O(1), no database work.
//   dirty itemset: cells[m] = prev[m] − expired_table[m] +
//     appended_table[m], with the two delta tables built over the delta
//     databases (O(2^k · |delta|/64) words instead of O(2^k · |window|/64)).
//
// The subtraction always runs first: the expired baskets were part of the
// previous window, so prev[m] ≥ expired_table[m] cell-wise and the
// unsigned arithmetic cannot underflow. Per-thread builders and record
// maps keep the worker threads lock-free (each worker only touches its
// own slot, the EvalWorkers contract).
class TableOracle final : public CtDeltaSource {
 public:
  TableOracle(std::size_t num_items, std::size_t num_threads,
              const std::vector<Transaction>& appended,
              const std::vector<Transaction>& expired,
              ItemsetMap<std::vector<std::uint64_t>> prev, bool lookup)
      : lookup_(lookup),
        prev_(std::move(prev)),
        dirty_(num_items, 0),
        appended_count_(appended.size()),
        expired_count_(expired.size()),
        appended_db_(num_items),
        expired_db_(num_items) {
    for (const Transaction& basket : appended) {
      for (const ItemId item : basket) dirty_[item] = 1;
      appended_db_.Add(basket);
    }
    for (const Transaction& basket : expired) {
      for (const ItemId item : basket) dirty_[item] = 1;
      expired_db_.Add(basket);
    }
    appended_db_.Finalize();
    expired_db_.Finalize();
    threads_.resize(num_threads);
    if (lookup_) {
      for (PerThread& slot : threads_) {
        slot.appended =
            std::make_unique<ContingencyTableBuilder>(appended_db_);
        slot.expired =
            std::make_unique<ContingencyTableBuilder>(expired_db_);
      }
    }
  }

  bool lookup_enabled() const override { return lookup_; }

  bool IsDirty(const Itemset& s) const override {
    for (std::size_t i = 0; i < s.size(); ++i) {
      if (dirty_[s[i]] != 0) return true;
    }
    return false;
  }

  std::optional<stats::ContingencyTable> Recover(
      const Itemset& s, std::size_t thread) override {
    const auto it = prev_.find(s);
    if (it == prev_.end()) return std::nullopt;
    std::vector<std::uint64_t> cells = it->second;
    if (!IsDirty(s)) {
      CCS_CHECK_GE(cells[0], expired_count_);
      cells[0] = cells[0] - expired_count_ + appended_count_;
    } else {
      PerThread& slot = threads_[thread];
      const stats::ContingencyTable expired = slot.expired->Build(s);
      const stats::ContingencyTable appended = slot.appended->Build(s);
      for (std::uint32_t mask = 0; mask < cells.size(); ++mask) {
        CCS_CHECK_GE(cells[mask], expired.cell(mask));
        cells[mask] =
            cells[mask] - expired.cell(mask) + appended.cell(mask);
      }
    }
    return stats::ContingencyTable(static_cast<int>(s.size()),
                                   std::move(cells));
  }

  void Record(const Itemset& s, std::size_t thread,
              const stats::ContingencyTable& table) override {
    std::vector<std::uint64_t>& cells = threads_[thread].recorded[s];
    cells.resize(table.num_cells());
    for (std::uint32_t mask = 0; mask < cells.size(); ++mask) {
      cells[mask] = table.cell(mask);
    }
  }

  // Merges the per-thread record maps. The key set is the run's wanted
  // candidate set and every value is the candidate's exact window table,
  // so the merged map is identical at any thread count; which thread
  // recorded a key is the only thing the schedule moves.
  ItemsetMap<std::vector<std::uint64_t>> TakeRecorded() {
    ItemsetMap<std::vector<std::uint64_t>> merged;
    for (PerThread& slot : threads_) {
      for (auto& [key, cells] : slot.recorded) {
        merged[key] = std::move(cells);
      }
      slot.recorded.clear();
    }
    return merged;
  }

  // Word operations spent building delta tables, summed over threads.
  std::uint64_t delta_word_ops() const {
    std::uint64_t total = 0;
    for (const PerThread& slot : threads_) {
      if (slot.appended != nullptr) total += slot.appended->word_ops();
      if (slot.expired != nullptr) total += slot.expired->word_ops();
    }
    return total;
  }

 private:
  struct PerThread {
    std::unique_ptr<ContingencyTableBuilder> appended;
    std::unique_ptr<ContingencyTableBuilder> expired;
    ItemsetMap<std::vector<std::uint64_t>> recorded;
  };

  bool lookup_;
  ItemsetMap<std::vector<std::uint64_t>> prev_;
  std::vector<char> dirty_;  // by item id
  std::uint64_t appended_count_;
  std::uint64_t expired_count_;
  TransactionDatabase appended_db_;
  TransactionDatabase expired_db_;
  std::vector<PerThread> threads_;
};

}  // namespace

std::string RenderAnswerDelta(const AnswerDelta& delta) {
  std::string out = "EPOCH " + std::to_string(delta.epoch) +
                    " window=" + std::to_string(delta.window_baskets) +
                    " added=" + std::to_string(delta.added.size()) +
                    " removed=" + std::to_string(delta.removed.size()) +
                    " retained=" + std::to_string(delta.retained.size()) +
                    "\n";
  for (const Itemset& s : delta.added) out += "+ " + s.ToString() + "\n";
  for (const Itemset& s : delta.removed) out += "- " + s.ToString() + "\n";
  return out;
}

DeltaMiner::DeltaMiner(StreamingDatabase* db, RequestFactory factory,
                       EngineOptions engine, HandleOptions handle_options)
    : db_(db),
      factory_(std::move(factory)),
      engine_(std::move(engine)),
      handle_options_(handle_options),
      streaming_(ResolveEngineOptions(engine_).streaming) {
  CCS_CHECK(db_ != nullptr);
  CCS_CHECK(factory_ != nullptr);
}

AnswerDelta DeltaMiner::Tick() {
  AnswerDelta out;
  StreamingDatabase::WindowDelta delta = db_->Tick();
  out.epoch = delta.epoch;
  out.window_baskets = delta.window_baskets;
  handle_ = db_->SnapshotHandle(handle_options_);
  const MiningSession session(handle_, engine_);
  MiningRequest request = factory_(handle_.database());
  if (cancel_ != nullptr) request.control.cancel = cancel_;
  // The delta-vs-full gate (docs/ALGORITHMS.md): with most of the window
  // turned over this tick, nearly every candidate is dirty and the delta
  // arithmetic approaches the cost of building from scratch — fall back
  // to a full re-mine that records tables for the next tick instead.
  const std::uint64_t delta_baskets =
      delta.appended.size() + delta.expired.size();
  const bool use_delta =
      streaming_ && have_tables_ &&
      static_cast<double>(delta_baskets) <=
          db_->options().max_delta_fraction *
              static_cast<double>(delta.window_baskets);
  out.full_remine = !use_delta;
  std::optional<TableOracle> oracle;
  if (streaming_) {
    oracle.emplace(handle_.database().num_items(), session.num_threads(),
                   delta.appended, delta.expired, std::move(tables_),
                   use_delta);
    tables_.clear();
    have_tables_ = false;
    request.ct_delta = &*oracle;
  }
  out.result = session.Run(request);
  if (oracle.has_value()) {
    out.delta_word_ops = oracle->delta_word_ops();
    // A tripped run discarded some levels' tables; the cache would be
    // incomplete, so only a completed run seeds the next tick.
    if (out.result.termination == Termination::kCompleted) {
      tables_ = oracle->TakeRecorded();
      have_tables_ = true;
    }
  }
  const std::vector<Itemset>& next = out.result.answers;
  std::set_difference(next.begin(), next.end(), answers_.begin(),
                      answers_.end(), std::back_inserter(out.added));
  std::set_difference(answers_.begin(), answers_.end(), next.begin(),
                      next.end(), std::back_inserter(out.removed));
  std::set_intersection(next.begin(), next.end(), answers_.begin(),
                        answers_.end(), std::back_inserter(out.retained));
  answers_ = next;
  return out;
}

}  // namespace stream
}  // namespace ccs
