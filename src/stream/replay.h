#ifndef CCS_STREAM_REPLAY_H_
#define CCS_STREAM_REPLAY_H_

#include <string>
#include <vector>

#include "stream/delta_miner.h"
#include "stream/streaming_database.h"
#include "util/status.h"

namespace ccs {
namespace stream {

// The .stream fixture format (tests/data/*.stream): one basket per line
// as space-separated item ids, the literal line "TICK" to close an epoch,
// blank lines and lines starting with '#' ignored. Baskets after the
// last TICK stay in the open frame, exactly as a daemon APPEND without a
// following TICK would.

// One parsed replay step.
struct StreamEvent {
  bool tick = false;       // true = TICK line; false = basket line
  Transaction basket;
};

[[nodiscard]] StatusOr<std::vector<StreamEvent>> ParseStreamFile(
    const std::string& path);

// Drives `db`/`miner` through the parsed events. `rendered` is the
// concatenated RenderAnswerDelta of every tick — the byte-exact content
// of a golden .answer_stream fixture.
struct ReplayResult {
  std::vector<AnswerDelta> deltas;
  std::string rendered;
};

[[nodiscard]] StatusOr<ReplayResult> ReplayStream(
    const std::vector<StreamEvent>& events, StreamingDatabase& db,
    DeltaMiner& miner);

// ParseStreamFile + ReplayStream in one call.
[[nodiscard]] StatusOr<ReplayResult> ReplayStreamFile(
    const std::string& path, StreamingDatabase& db, DeltaMiner& miner);

}  // namespace stream
}  // namespace ccs

#endif  // CCS_STREAM_REPLAY_H_
