#ifndef CCS_STREAM_TILTED_WINDOW_H_
#define CCS_STREAM_TILTED_WINDOW_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ccs {
namespace stream {

// Knobs for the streaming layer, fixed at StreamingDatabase construction.
struct StreamOptions {
  // Level-0 capacity: the number of fine-grained frames, one epoch tick
  // each, kept at full resolution before compaction.
  std::size_t fine_frames = 4;
  // Capacity of every coarser level. When a level exceeds it, its two
  // oldest frames merge into one frame of the next level — so a frame at
  // level L covers frames_per_level-independent runs of 2^L ticks and
  // the total window spans O(fine_frames + levels * frames_per_level)
  // frames while covering exponentially more history.
  std::size_t frames_per_level = 2;
  // Total level count including the fine level. Overflow past the last
  // level expires the window's oldest frame outright.
  std::size_t levels = 4;
  // DeltaMiner's cost-model gate (docs/ALGORITHMS.md): the delta path is
  // taken only when (appended + expired baskets) <= fraction * window
  // baskets after the tick; above it a full re-mine is cheaper because
  // nearly every candidate is dirty anyway.
  double max_delta_fraction = 0.5;
  // AdvanceTo granularity: one epoch tick per elapsed interval.
  std::uint64_t tick_interval_ms = 1000;
};

// One closed frame of the window: a contiguous global-TID range and the
// epoch-tick range it covers. Merging two adjacent frames concatenates
// both ranges, so contiguity is preserved by construction.
struct WindowFrame {
  std::uint64_t tid_begin = 0;
  std::uint64_t tid_end = 0;    // half-open
  std::uint64_t epoch_begin = 0;
  std::uint64_t epoch_end = 0;  // half-open
  std::uint64_t baskets() const { return tid_end - tid_begin; }
};

// Tilted-time-window bookkeeping in the FP-Stream style: level 0 holds
// the most recent ticks at single-tick resolution; each coarser level
// holds frames covering twice the span of the level below, built by
// merging that level's two oldest frames when it overflows. Counts are
// exact — a frame is only ever a TID range; nothing is approximated or
// subsampled — so the scheme trades *resolution* of history for space,
// never accuracy of the live window. Frames expire only off the end of
// the last level, oldest first.
//
// Invariant (pinned by stream_window_test): the concatenation of all
// live frames, oldest level first and oldest-first within each level, is
// a gap-free partition of one contiguous TID interval
// [window_tid_begin(), newest tid_end).
class TiltedTimeWindow {
 public:
  explicit TiltedTimeWindow(const StreamOptions& options);

  // Accepts the frame closed at this tick and runs the compaction
  // cascade; returns the frames the cascade expired, oldest first (empty
  // until the window is full).
  std::vector<WindowFrame> Push(WindowFrame frame);

  // All live frames, oldest first.
  std::vector<WindowFrame> frames() const;

  // TID of the oldest live basket; == next frame's tid_begin when empty.
  std::uint64_t window_tid_begin() const;

  // Total baskets across live frames.
  std::uint64_t window_baskets() const;

  std::size_t num_levels() const { return levels_.size(); }
  // Frames at `level` (0 = finest), oldest first.
  const std::vector<WindowFrame>& level(std::size_t level) const {
    return levels_[level];
  }

 private:
  StreamOptions options_;
  // levels_[0] = finest; frames oldest-first within a level.
  std::vector<std::vector<WindowFrame>> levels_;
  // tid_begin of the next incoming frame, so window_tid_begin() is
  // defined even before the first Push / after total expiry.
  std::uint64_t next_tid_begin_ = 0;
};

}  // namespace stream
}  // namespace ccs

#endif  // CCS_STREAM_TILTED_WINDOW_H_
