#include "stream/tilted_window.h"

#include <utility>

#include "util/check.h"

namespace ccs {
namespace stream {

TiltedTimeWindow::TiltedTimeWindow(const StreamOptions& options)
    : options_(options) {
  CCS_CHECK_GE(options_.fine_frames, 1u);
  CCS_CHECK_GE(options_.frames_per_level, 2u);
  CCS_CHECK_GE(options_.levels, 1u);
  levels_.resize(options_.levels);
}

std::vector<WindowFrame> TiltedTimeWindow::Push(WindowFrame frame) {
  CCS_CHECK_EQ(frame.tid_begin, next_tid_begin_);
  next_tid_begin_ = frame.tid_end;
  levels_[0].push_back(frame);
  std::vector<WindowFrame> expired;
  for (std::size_t level = 0; level < levels_.size(); ++level) {
    const std::size_t capacity =
        level == 0 ? options_.fine_frames : options_.frames_per_level;
    while (levels_[level].size() > capacity) {
      if (level + 1 == levels_.size()) {
        // No coarser level: the oldest frame leaves the window whole.
        expired.push_back(levels_[level].front());
        levels_[level].erase(levels_[level].begin());
        continue;
      }
      // The level's two oldest frames are TID- and epoch-adjacent (they
      // were pushed consecutively), so the merge concatenates ranges.
      WindowFrame merged = levels_[level][0];
      const WindowFrame& next = levels_[level][1];
      CCS_CHECK_EQ(merged.tid_end, next.tid_begin);
      CCS_CHECK_EQ(merged.epoch_end, next.epoch_begin);
      merged.tid_end = next.tid_end;
      merged.epoch_end = next.epoch_end;
      levels_[level].erase(levels_[level].begin(),
                           levels_[level].begin() + 2);
      levels_[level + 1].push_back(merged);
    }
  }
  return expired;
}

std::vector<WindowFrame> TiltedTimeWindow::frames() const {
  std::vector<WindowFrame> out;
  for (std::size_t level = levels_.size(); level-- > 0;) {
    out.insert(out.end(), levels_[level].begin(), levels_[level].end());
  }
  return out;
}

std::uint64_t TiltedTimeWindow::window_tid_begin() const {
  for (std::size_t level = levels_.size(); level-- > 0;) {
    if (!levels_[level].empty()) return levels_[level].front().tid_begin;
  }
  return next_tid_begin_;
}

std::uint64_t TiltedTimeWindow::window_baskets() const {
  std::uint64_t total = 0;
  for (const std::vector<WindowFrame>& level : levels_) {
    for (const WindowFrame& frame : level) total += frame.baskets();
  }
  return total;
}

}  // namespace stream
}  // namespace ccs
