#ifndef CCS_STREAM_DELTA_MINER_H_
#define CCS_STREAM_DELTA_MINER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/engine_options.h"
#include "core/itemset.h"
#include "core/result.h"
#include "core/session.h"
#include "stream/streaming_database.h"
#include "txn/database.h"

namespace ccs {
namespace stream {

// What one epoch tick changed in the answer set, plus the run that
// produced it. added/removed/retained are each sorted lexicographically
// (Itemset::operator<), so for a fixed append sequence the whole stream
// is deterministic — bit-identical at any thread count, in both
// CCS_STREAM modes, both kernel modes, and both CT-cache modes
// (tests/stream_differential_test.cc).
struct AnswerDelta {
  std::uint64_t epoch = 0;
  std::uint64_t window_baskets = 0;
  // True when this tick re-mined from scratch: first tick, kill switch
  // off, cost model declined, or the previous run did not complete.
  bool full_remine = false;
  std::vector<Itemset> added;
  std::vector<Itemset> removed;
  std::vector<Itemset> retained;
  // Bulk word operations spent by the oracle's delta-database builds —
  // the delta path's own cost, reported next to result.stats.ct_word_ops
  // (the in-run cost) by bench/stream_compare.cc.
  std::uint64_t delta_word_ops = 0;
  // The underlying window run: answers, stats, metrics, termination.
  MiningResult result;
};

// The canonical textual form of one tick, as frozen in the golden
// .answer_stream fixtures: a header line
//   EPOCH <e> window=<n> added=<a> removed=<r> retained=<k>
// followed by one "+ {…}" line per added and one "- {…}" line per
// removed itemset, in sorted order. Deliberately mode-free: delta and
// full-re-mine ticks render identically, which is what lets one frozen
// file pin both CCS_STREAM settings.
std::string RenderAnswerDelta(const AnswerDelta& delta);

// Builds the window's MiningRequest at each tick, after the snapshot is
// taken — so per-window options (e.g. a support fraction of the current
// window size) resolve against the data actually mined. Borrowed state
// referenced by the returned request (the ConstraintSet in particular)
// must outlive the Tick call.
using RequestFactory =
    std::function<MiningRequest(const TransactionDatabase&)>;

// Incremental re-evaluation on top of a StreamingDatabase (DESIGN.md
// §15). Each Tick() advances the stream one epoch, snapshots the live
// window behind a fresh DatabaseHandle, and re-runs the batch engine over
// it — by default through a CtDeltaSource oracle that rebuilds only
// itemsets containing a dirty item (one present in this tick's appended
// or expired baskets) and serves every clean cached table with an O(1)
// all-absent-cell adjustment. Table cells are recovered exactly
// (core/ct_delta.h), so answers are bit-identical to mining the snapshot
// from scratch; the oracle only changes how much database work that
// takes.
//
// Cost-model gate, analogous to the k=2 pair-stage gate (DESIGN.md §14):
// when the tick's (appended + expired) baskets exceed
// StreamOptions::max_delta_fraction of the window, nearly every table is
// dirty and the delta arithmetic costs more than it saves, so the tick
// full-re-mines (record-only oracle) instead. EngineOptions::streaming /
// CCS_STREAM is the kill switch: off, every tick full-re-mines with no
// oracle at all.
//
// Not internally synchronized; the service layer serializes Tick calls.
class DeltaMiner {
 public:
  // `db` is borrowed and must outlive the miner. `engine` is resolved
  // once (env overrides folded in) exactly like MiningSession does.
  DeltaMiner(StreamingDatabase* db, RequestFactory factory,
             EngineOptions engine = {}, HandleOptions handle_options = {});

  AnswerDelta Tick();

  // The current answer set (sorted) and window handle, as of the last
  // Tick; the handle is invalid before the first.
  const std::vector<Itemset>& answers() const { return answers_; }
  const DatabaseHandle& handle() const { return handle_; }
  // The resolved kill-switch state this miner runs under.
  bool streaming_enabled() const { return streaming_; }

  // Borrowed cancellation token stamped onto every tick's request (after
  // the factory runs, so it wins) — the service layer's drain path. May
  // be null; must outlive the miner when set.
  void set_cancel(const CancelToken* cancel) { cancel_ = cancel; }

 private:
  StreamingDatabase* db_;
  RequestFactory factory_;
  EngineOptions engine_;
  HandleOptions handle_options_;
  bool streaming_;
  const CancelToken* cancel_ = nullptr;
  DatabaseHandle handle_;
  std::vector<Itemset> answers_;
  // Previous window's tables, keyed by itemset, cells by mask — the
  // oracle's cache. Only kept while the previous run completed.
  ItemsetMap<std::vector<std::uint64_t>> tables_;
  bool have_tables_ = false;
};

}  // namespace stream
}  // namespace ccs

#endif  // CCS_STREAM_DELTA_MINER_H_
