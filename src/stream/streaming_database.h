#ifndef CCS_STREAM_STREAMING_DATABASE_H_
#define CCS_STREAM_STREAMING_DATABASE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/session.h"
#include "stream/tilted_window.h"
#include "txn/catalog.h"
#include "txn/database.h"
#include "txn/stream_log.h"
#include "util/status.h"

namespace ccs {
namespace stream {

// The mutable front of the streaming pipeline (DESIGN.md §15): wraps the
// append-only BasketLog and the TiltedTimeWindow so batch code never sees
// a mutating database. Append() feeds the open frame; Tick() closes it,
// runs window compaction/expiry, and reports exactly which baskets
// entered and left the live window; WindowSnapshot()/SnapshotHandle()
// materialize the live window as a fresh, finalized, immutable
// TransactionDatabase — SnapshotHandle stamps a fresh engine epoch, which
// is the memo/cache invalidation token for everything downstream.
//
// Not internally synchronized: callers that share one instance across
// threads (the service layer) serialize access externally.
class StreamingDatabase {
 public:
  // Everything a tick changed, in deterministic order: appended baskets
  // in arrival order, expired baskets in TID order, dirty items sorted
  // and deduplicated.
  struct WindowDelta {
    std::uint64_t epoch = 0;  // 1-based tick count after this tick
    std::vector<Transaction> appended;
    std::vector<Transaction> expired;
    // Items occurring in any appended or expired basket — the dirty-item
    // set whose closure the DeltaMiner re-evaluates.
    std::vector<ItemId> dirty_items;
    // Live window size after the tick.
    std::uint64_t window_baskets = 0;
  };

  StreamingDatabase(std::size_t num_items, ItemCatalog catalog,
                    StreamOptions options = {});

  // Appends one basket to the open frame; it becomes visible to mining at
  // the next Tick(). Invalid ids reject without consuming a TID.
  [[nodiscard]] Status Append(Transaction basket);
  // Baskets waiting in the open frame.
  std::size_t pending() const { return log_.pending(); }

  // Advances one epoch: closes the open frame, pushes it through the
  // tilted window, expires what the compaction cascade pushed out, and
  // reclaims expired storage.
  WindowDelta Tick();

  // Clock-driven ticking: runs one Tick per tick_interval_ms elapsed
  // since the stream began, deterministically for a given now_ms sequence
  // (tests drive this from a ManualClock). Returns the deltas in order.
  std::vector<WindowDelta> AdvanceTo(std::uint64_t now_ms);

  // Completed ticks.
  std::uint64_t epoch() const { return epoch_; }
  std::uint64_t window_baskets() const { return window_.window_baskets(); }
  // Live frames, oldest first.
  std::vector<WindowFrame> frames() const { return window_.frames(); }
  const TiltedTimeWindow& window() const { return window_; }

  std::size_t num_items() const { return log_.num_items(); }
  const ItemCatalog& catalog() const { return catalog_; }
  const StreamOptions& options() const { return options_; }

  // The live window as a fresh finalized database, baskets in global-TID
  // (= arrival) order — byte-for-byte the database a batch caller would
  // get by Add()ing the same baskets in the same order.
  TransactionDatabase WindowSnapshot() const;
  // WindowSnapshot wrapped in an owning DatabaseHandle with a fresh
  // process-unique epoch.
  DatabaseHandle SnapshotHandle(const HandleOptions& options = {}) const;

 private:
  BasketLog log_;
  TiltedTimeWindow window_;
  ItemCatalog catalog_;
  StreamOptions options_;
  std::uint64_t epoch_ = 0;
};

}  // namespace stream
}  // namespace ccs

#endif  // CCS_STREAM_STREAMING_DATABASE_H_
