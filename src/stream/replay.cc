#include "stream/replay.h"

#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <utility>

namespace ccs {
namespace stream {

StatusOr<std::vector<StreamEvent>> ParseStreamFile(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return NotFoundError("cannot open stream file: " + path);
  }
  std::vector<StreamEvent> events;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    if (line == "TICK") {
      StreamEvent event;
      event.tick = true;
      events.push_back(std::move(event));
      continue;
    }
    StreamEvent event;
    std::istringstream tokens(line);
    std::string token;
    while (tokens >> token) {
      errno = 0;
      char* end = nullptr;
      const unsigned long long id = std::strtoull(token.c_str(), &end, 10);
      if (end == token.c_str() || *end != '\0' || errno != 0) {
        return InvalidArgumentError(path + ":" + std::to_string(line_no) +
                                    ": bad item id '" + token + "'");
      }
      event.basket.push_back(static_cast<ItemId>(id));
    }
    events.push_back(std::move(event));
  }
  return events;
}

StatusOr<ReplayResult> ReplayStream(const std::vector<StreamEvent>& events,
                                    StreamingDatabase& db,
                                    DeltaMiner& miner) {
  ReplayResult result;
  for (const StreamEvent& event : events) {
    if (event.tick) {
      AnswerDelta delta = miner.Tick();
      if (delta.result.termination == Termination::kError) {
        return delta.result.error;
      }
      result.rendered += RenderAnswerDelta(delta);
      result.deltas.push_back(std::move(delta));
      continue;
    }
    const Status status = db.Append(event.basket);
    if (!status.ok()) return status;
  }
  return result;
}

StatusOr<ReplayResult> ReplayStreamFile(const std::string& path,
                                        StreamingDatabase& db,
                                        DeltaMiner& miner) {
  StatusOr<std::vector<StreamEvent>> events = ParseStreamFile(path);
  if (!events.ok()) return events.status();
  return ReplayStream(*events, db, miner);
}

}  // namespace stream
}  // namespace ccs
