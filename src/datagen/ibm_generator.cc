#include "datagen/ibm_generator.h"

#include <algorithm>
#include <unordered_set>

#include "util/check.h"

namespace ccs {

IbmGenerator::IbmGenerator(const IbmGeneratorConfig& config)
    : config_(config), rng_(config.seed) {
  CCS_CHECK_GT(config_.num_items, 1u);
  CCS_CHECK_GT(config_.num_patterns, 0u);
  CCS_CHECK_GT(config_.avg_transaction_size, 0.0);
  CCS_CHECK_GT(config_.avg_pattern_size, 0.0);
  CCS_CHECK(config_.correlation >= 0.0 && config_.correlation <= 1.0);

  patterns_.reserve(config_.num_patterns);
  corruption_.reserve(config_.num_patterns);
  std::vector<double> weights;
  weights.reserve(config_.num_patterns);

  for (std::size_t p = 0; p < config_.num_patterns; ++p) {
    std::size_t size = rng_.NextPoisson(config_.avg_pattern_size);
    size = std::clamp<std::size_t>(size, 1, config_.num_items);

    std::unordered_set<ItemId> chosen;
    // Reuse a random prefix-fraction of the previous pattern; the fraction
    // is exponentially distributed with mean `correlation`, capped at 1.
    if (p > 0 && !patterns_[p - 1].empty()) {
      const double frac =
          std::min(1.0, rng_.NextExponential(config_.correlation));
      const auto reuse = static_cast<std::size_t>(
          frac * static_cast<double>(patterns_[p - 1].size()));
      Transaction prev = patterns_[p - 1];
      // Random subset of the previous pattern of the given size.
      for (std::size_t i = 0; i < reuse && i < size; ++i) {
        const std::size_t j =
            i + static_cast<std::size_t>(rng_.NextBounded(prev.size() - i));
        std::swap(prev[i], prev[j]);
        chosen.insert(prev[i]);
      }
    }
    while (chosen.size() < size) {
      chosen.insert(static_cast<ItemId>(rng_.NextBounded(config_.num_items)));
    }
    Transaction pattern(chosen.begin(), chosen.end());
    std::sort(pattern.begin(), pattern.end());
    patterns_.push_back(std::move(pattern));

    weights.push_back(rng_.NextExponential(1.0));
    corruption_.push_back(std::clamp(
        rng_.NextGaussian(config_.corruption_mean, config_.corruption_stddev),
        0.0, 1.0));
  }

  // Normalize weights into a cumulative distribution for roulette picks.
  double total = 0.0;
  for (double w : weights) total += w;
  cumulative_weights_.reserve(weights.size());
  double acc = 0.0;
  for (double w : weights) {
    acc += w / total;
    cumulative_weights_.push_back(acc);
  }
  cumulative_weights_.back() = 1.0;
}

std::size_t IbmGenerator::PickPattern() {
  const double u = rng_.NextDouble();
  const auto it = std::upper_bound(cumulative_weights_.begin(),
                                   cumulative_weights_.end(), u);
  return std::min<std::size_t>(
      static_cast<std::size_t>(it - cumulative_weights_.begin()),
      patterns_.size() - 1);
}

TransactionDatabase IbmGenerator::Generate() {
  TransactionDatabase db(config_.num_items);
  for (std::size_t t = 0; t < config_.num_transactions; ++t) {
    std::size_t budget = rng_.NextPoisson(config_.avg_transaction_size);
    budget = std::clamp<std::size_t>(budget, 1, config_.num_items);

    std::unordered_set<ItemId> basket;
    // Guard against pathological loops when corruption keeps emptying the
    // picked patterns: bound the number of pattern draws.
    const std::size_t max_picks = 4 * budget + 16;
    for (std::size_t pick = 0;
         basket.size() < budget && pick < max_picks; ++pick) {
      const std::size_t p = PickPattern();
      // Corrupt: drop items while a uniform draw stays below the pattern's
      // corruption level.
      Transaction items = patterns_[p];
      while (!items.empty() && rng_.NextDouble() < corruption_[p]) {
        const std::size_t j =
            static_cast<std::size_t>(rng_.NextBounded(items.size()));
        items[j] = items.back();
        items.pop_back();
      }
      if (items.empty()) continue;
      if (basket.size() + items.size() > budget) {
        // Oversized pattern: add anyway in half the cases, skip otherwise.
        if (!rng_.NextBernoulli(0.5)) continue;
      }
      basket.insert(items.begin(), items.end());
    }
    // Top up with random items if corruption left the basket too small.
    while (basket.size() < budget) {
      basket.insert(static_cast<ItemId>(rng_.NextBounded(config_.num_items)));
    }
    db.Add(Transaction(basket.begin(), basket.end()));
  }
  db.Finalize();
  return db;
}

}  // namespace ccs
