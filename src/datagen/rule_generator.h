#ifndef CCS_DATAGEN_RULE_GENERATOR_H_
#define CCS_DATAGEN_RULE_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "txn/database.h"
#include "util/rng.h"

namespace ccs {

// The paper's "method 2" generator: baskets are produced from a set of
// prespecified correlation rules so that the mined output can be checked
// against known ground truth (standard practice in ML experiments, per the
// paper's references to CN2 / ID3 evaluations).
//
// Each rule r_i is a small itemset over a reserved, disjoint slice of the
// item universe, with an inclusion probability s_i drawn uniformly from
// [support_min, support_max] (the paper: 70%..90% of baskets). For every
// basket, rule i contributes *all* of its items with probability s_i and
// none otherwise — making the rule items strongly positively correlated
// (joint frequency s_i vs. independence expectation s_i^rule_size), while
// each individual item still has high support. The basket is then topped up
// with uniformly random non-rule items until it reaches its
// Poisson(avg_transaction_size) size, as the paper describes ("randomized
// items are picked up in case the correlation rules do not generate enough
// items for a particular basket").
struct RuleGeneratorConfig {
  std::size_t num_transactions = 10000;
  std::size_t num_items = 1000;
  double avg_transaction_size = 20.0;
  std::size_t num_rules = 10;    // the paper uses ten rules
  std::size_t rule_size = 2;     // items per rule
  double support_min = 0.70;     // lower bound for s_i
  double support_max = 0.90;     // upper bound for s_i
  std::uint64_t seed = 1;
};

class RuleGenerator {
 public:
  explicit RuleGenerator(const RuleGeneratorConfig& config);

  TransactionDatabase Generate();

  // Ground truth: the planted rule itemsets (rule i occupies items
  // [i*rule_size, (i+1)*rule_size)).
  const std::vector<Transaction>& rules() const { return rules_; }

  // The inclusion probability drawn for each rule.
  const std::vector<double>& rule_supports() const { return rule_supports_; }

 private:
  RuleGeneratorConfig config_;
  Rng rng_;
  std::vector<Transaction> rules_;
  std::vector<double> rule_supports_;
};

}  // namespace ccs

#endif  // CCS_DATAGEN_RULE_GENERATOR_H_
