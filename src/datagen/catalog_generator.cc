#include "datagen/catalog_generator.h"

#include <algorithm>

#include "util/check.h"
#include "util/rng.h"

namespace ccs {

const std::vector<std::string>& DefaultTypeNames() {
  static const auto* const kNames = new std::vector<std::string>{
      "produce", "dairy",      "bakery",    "snacks",
      "soda",    "frozenfood", "household", "meat"};
  return *kNames;
}

ItemCatalog MakeLinearPriceCatalog(
    std::size_t num_items, const std::vector<std::string>& type_names) {
  CCS_CHECK(!type_names.empty());
  ItemCatalog catalog;
  for (std::size_t i = 0; i < num_items; ++i) {
    catalog.AddItem(static_cast<double>(i + 1),
                    type_names[i % type_names.size()]);
  }
  return catalog;
}

ItemCatalog MakeLinearPriceCatalog(std::size_t num_items) {
  return MakeLinearPriceCatalog(num_items, DefaultTypeNames());
}

ItemCatalog MakeUniformPriceCatalog(std::size_t num_items, double price_min,
                                    double price_max, std::uint64_t seed) {
  CCS_CHECK(price_min >= 0.0 && price_min <= price_max);
  const auto& type_names = DefaultTypeNames();
  Rng rng(seed);
  ItemCatalog catalog;
  for (std::size_t i = 0; i < num_items; ++i) {
    catalog.AddItem(rng.NextDouble(price_min, price_max),
                    type_names[i % type_names.size()]);
  }
  return catalog;
}

ItemCatalog MakeScrambledPriceCatalog(std::size_t num_items,
                                      std::uint64_t seed) {
  std::vector<double> prices(num_items);
  for (std::size_t i = 0; i < num_items; ++i) {
    prices[i] = static_cast<double>(i + 1);
  }
  Rng rng(seed);
  // Fisher-Yates permutation of the price ladder.
  for (std::size_t i = num_items; i > 1; --i) {
    std::swap(prices[i - 1], prices[rng.NextBounded(i)]);
  }
  const auto& type_names = DefaultTypeNames();
  ItemCatalog catalog;
  for (std::size_t i = 0; i < num_items; ++i) {
    catalog.AddItem(prices[i], type_names[i % type_names.size()]);
  }
  return catalog;
}

double PriceThresholdForSelectivity(const ItemCatalog& catalog,
                                    double selectivity) {
  CCS_CHECK(selectivity >= 0.0 && selectivity <= 1.0);
  CCS_CHECK_GT(catalog.num_items(), 0u);
  std::vector<double> prices;
  prices.reserve(catalog.num_items());
  for (ItemId i = 0; i < catalog.num_items(); ++i) {
    prices.push_back(catalog.price(i));
  }
  std::sort(prices.begin(), prices.end());
  const auto want = static_cast<std::size_t>(
      selectivity * static_cast<double>(prices.size()));
  if (want == 0) {
    // A threshold below the cheapest item selects nothing.
    return prices.front() > 0.0 ? prices.front() / 2.0 : -1.0;
  }
  return prices[want - 1];
}

}  // namespace ccs
