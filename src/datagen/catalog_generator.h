#ifndef CCS_DATAGEN_CATALOG_GENERATOR_H_
#define CCS_DATAGEN_CATALOG_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "txn/catalog.h"

namespace ccs {

// Catalog (attribute) generators for the experiments.
//
// The paper's selectivity experiments assign "the price of each item to be
// its item number. So item 1 has a price of $1" — with 0-based ids this is
// price(i) = i + 1, giving prices 1..N and making the selectivity of
// price-threshold constraints directly controllable (a fraction f of items
// has price <= f * N). Types are assigned round-robin from a name list so
// every type class has ~N/num_types members.

// price(i) = i + 1, types round-robin over `type_names`.
ItemCatalog MakeLinearPriceCatalog(std::size_t num_items,
                                   const std::vector<std::string>& type_names);

// Same with the default market-basket type names
// {produce, dairy, bakery, snacks, soda, frozenfood, household, meat}.
ItemCatalog MakeLinearPriceCatalog(std::size_t num_items);

// Uniform random prices in [price_min, price_max], types round-robin.
ItemCatalog MakeUniformPriceCatalog(std::size_t num_items, double price_min,
                                    double price_max, std::uint64_t seed);

// Prices are a fixed pseudo-random permutation of 1..num_items (a linear
// price ladder decoupled from item ids). Used by experiments whose data
// generator assigns special roles to low item ids (e.g. the planted-rule
// generator), so that price constraints cut across those roles instead of
// aligning with them.
ItemCatalog MakeScrambledPriceCatalog(std::size_t num_items,
                                      std::uint64_t seed);

// The default type name list used by MakeLinearPriceCatalog.
const std::vector<std::string>& DefaultTypeNames();

// The price threshold v such that a `price <= v` item predicate selects
// (approximately) `selectivity` of the catalog's items. Used by the
// selectivity sweeps of Figures 2, 6 and 8.
double PriceThresholdForSelectivity(const ItemCatalog& catalog,
                                    double selectivity);

}  // namespace ccs

#endif  // CCS_DATAGEN_CATALOG_GENERATOR_H_
