#include "datagen/rule_generator.h"

#include <algorithm>
#include <unordered_set>

#include "util/check.h"

namespace ccs {

RuleGenerator::RuleGenerator(const RuleGeneratorConfig& config)
    : config_(config), rng_(config.seed) {
  CCS_CHECK_GT(config_.num_rules, 0u);
  CCS_CHECK_GE(config_.rule_size, 2u);
  CCS_CHECK(config_.support_min <= config_.support_max);
  CCS_CHECK(config_.support_min >= 0.0 && config_.support_max <= 1.0);
  CCS_CHECK_GE(config_.num_items, config_.num_rules * config_.rule_size);

  rules_.reserve(config_.num_rules);
  rule_supports_.reserve(config_.num_rules);
  for (std::size_t r = 0; r < config_.num_rules; ++r) {
    Transaction rule;
    for (std::size_t j = 0; j < config_.rule_size; ++j) {
      rule.push_back(static_cast<ItemId>(r * config_.rule_size + j));
    }
    rules_.push_back(std::move(rule));
    rule_supports_.push_back(
        rng_.NextDouble(config_.support_min, config_.support_max));
  }
}

TransactionDatabase RuleGenerator::Generate() {
  TransactionDatabase db(config_.num_items);
  const std::size_t reserved = config_.num_rules * config_.rule_size;
  const bool has_free_items = reserved < config_.num_items;
  for (std::size_t t = 0; t < config_.num_transactions; ++t) {
    std::unordered_set<ItemId> basket;
    for (std::size_t r = 0; r < config_.num_rules; ++r) {
      if (rng_.NextBernoulli(rule_supports_[r])) {
        basket.insert(rules_[r].begin(), rules_[r].end());
      }
    }
    std::size_t target = rng_.NextPoisson(config_.avg_transaction_size);
    // The filler below only draws non-reserved items, so the reachable
    // basket size is bounded by what the rules contributed plus the free
    // pool; clamp the target accordingly (and to the universe).
    const std::size_t reachable =
        basket.size() + (config_.num_items - reserved);
    target = std::clamp<std::size_t>(target, 1,
                                     std::min(reachable, config_.num_items));
    // Top up from the non-reserved items so the filler cannot distort the
    // planted correlations.
    while (has_free_items && basket.size() < target) {
      const auto id = static_cast<ItemId>(
          reserved + rng_.NextBounded(config_.num_items - reserved));
      basket.insert(id);
    }
    db.Add(Transaction(basket.begin(), basket.end()));
  }
  db.Finalize();
  return db;
}

}  // namespace ccs
