#ifndef CCS_DATAGEN_IBM_GENERATOR_H_
#define CCS_DATAGEN_IBM_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "txn/database.h"
#include "util/rng.h"

namespace ccs {

// Synthetic basket generator in the style of Agrawal & Srikant (VLDB'94),
// the "method 1" data of the paper (its purpose: simulate the real world).
//
// The original IBM Quest binary is not available; this is a from-scratch
// re-implementation of the published procedure:
//  * L maximal potentially-large itemsets are drawn; their sizes are
//    Poisson-distributed with mean `avg_pattern_size`, items are picked
//    uniformly except that a fraction of each pattern (exponentially
//    distributed with mean `correlation`) is reused from the previous
//    pattern, to model common cross-pattern items;
//  * each pattern carries an exponential weight (normalized to sum 1) and a
//    corruption level drawn from N(0.5, 0.1) clamped to [0, 1];
//  * each transaction has Poisson(`avg_transaction_size`) slots and is
//    filled by repeatedly picking patterns by weight, dropping items of a
//    picked pattern while a uniform draw is below its corruption level; a
//    pattern that no longer fits is added anyway in half the cases and
//    dropped otherwise.
//
// The paper's settings map to: avg_transaction_size = 20,
// avg_pattern_size = 4, num_items = 1000, num_transactions = 10k..100k.
struct IbmGeneratorConfig {
  std::size_t num_transactions = 10000;  // |D|
  std::size_t num_items = 1000;          // N
  double avg_transaction_size = 20.0;    // |T|
  double avg_pattern_size = 4.0;         // |I|
  std::size_t num_patterns = 2000;       // |L|
  double correlation = 0.5;              // fraction reused from prev pattern
  double corruption_mean = 0.5;
  double corruption_stddev = 0.1;
  std::uint64_t seed = 1;
};

class IbmGenerator {
 public:
  explicit IbmGenerator(const IbmGeneratorConfig& config);

  // Generates the full database (finalized).
  TransactionDatabase Generate();

  // The potentially-large itemsets chosen during construction, exposed for
  // tests and inspection (valid after construction; independent of
  // Generate() calls).
  const std::vector<Transaction>& patterns() const { return patterns_; }

 private:
  // Picks a pattern index according to the normalized weights.
  std::size_t PickPattern();

  IbmGeneratorConfig config_;
  Rng rng_;
  std::vector<Transaction> patterns_;
  std::vector<double> cumulative_weights_;
  std::vector<double> corruption_;
};

}  // namespace ccs

#endif  // CCS_DATAGEN_IBM_GENERATOR_H_
