#include "datagen/zipf_generator.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "util/check.h"

namespace ccs {

ZipfGenerator::ZipfGenerator(const ZipfGeneratorConfig& config)
    : config_(config), rng_(config.seed) {
  CCS_CHECK_GT(config_.num_items, 1u);
  CCS_CHECK_GT(config_.avg_transaction_size, 0.0);
  CCS_CHECK_GE(config_.exponent, 0.0);
  CCS_CHECK(config_.group_probability >= 0.0 &&
            config_.group_probability <= 1.0);
  CCS_CHECK_GE(config_.num_items,
               config_.num_groups * config_.group_size);

  cumulative_.resize(config_.num_items);
  double total = 0.0;
  for (std::size_t i = 0; i < config_.num_items; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), config_.exponent);
    cumulative_[i] = total;
  }
  for (double& c : cumulative_) c /= total;
  cumulative_.back() = 1.0;

  // Disjoint planted groups over uniformly sampled items.
  std::unordered_set<ItemId> used;
  for (std::size_t g = 0; g < config_.num_groups; ++g) {
    Transaction group;
    while (group.size() < config_.group_size) {
      const auto item =
          static_cast<ItemId>(rng_.NextBounded(config_.num_items));
      if (used.insert(item).second) group.push_back(item);
    }
    std::sort(group.begin(), group.end());
    groups_.push_back(std::move(group));
  }
}

ItemId ZipfGenerator::SampleItem() {
  const double u = rng_.NextDouble();
  const auto it =
      std::lower_bound(cumulative_.begin(), cumulative_.end(), u);
  return static_cast<ItemId>(
      std::min<std::size_t>(it - cumulative_.begin(),
                            config_.num_items - 1));
}

TransactionDatabase ZipfGenerator::Generate() {
  TransactionDatabase db(config_.num_items);
  for (std::size_t t = 0; t < config_.num_transactions; ++t) {
    std::unordered_set<ItemId> basket;
    for (const Transaction& group : groups_) {
      if (rng_.NextBernoulli(config_.group_probability)) {
        basket.insert(group.begin(), group.end());
      }
    }
    std::size_t target = rng_.NextPoisson(config_.avg_transaction_size);
    target = std::clamp<std::size_t>(target, 1, config_.num_items);
    // Weighted sampling without replacement via rejection; the attempt
    // bound keeps pathological skews from spinning when the head items
    // are exhausted.
    const std::size_t max_attempts = 20 * target + 50;
    for (std::size_t attempt = 0;
         basket.size() < target && attempt < max_attempts; ++attempt) {
      basket.insert(SampleItem());
    }
    db.Add(Transaction(basket.begin(), basket.end()));
  }
  db.Finalize();
  return db;
}

}  // namespace ccs
