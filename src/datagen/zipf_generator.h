#ifndef CCS_DATAGEN_ZIPF_GENERATOR_H_
#define CCS_DATAGEN_ZIPF_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "txn/database.h"
#include "util/rng.h"

namespace ccs {

// Basket generator with Zipf-distributed item popularity plus optional
// planted correlated groups — a third synthetic regime complementing the
// paper's two: real retail frequency distributions are heavily skewed, and
// skew stresses the frequency threshold and the CT-support predicate very
// differently from the IBM generator's exponential pattern weights.
//
// Item i is drawn with probability proportional to 1 / (i + 1)^exponent.
// Each of `num_groups` planted groups (disjoint, sampled uniformly from
// the universe at construction) is independently injected whole with
// probability group_probability per basket, producing correlations whose
// members span popularity ranks.
struct ZipfGeneratorConfig {
  std::size_t num_transactions = 10000;
  std::size_t num_items = 1000;
  double avg_transaction_size = 20.0;
  double exponent = 1.0;
  std::size_t num_groups = 0;
  std::size_t group_size = 2;
  double group_probability = 0.3;
  std::uint64_t seed = 1;
};

class ZipfGenerator {
 public:
  explicit ZipfGenerator(const ZipfGeneratorConfig& config);

  TransactionDatabase Generate();

  // The planted groups (sorted itemsets), for ground-truth checks.
  const std::vector<Transaction>& groups() const { return groups_; }

 private:
  // Samples one item id from the Zipf distribution.
  ItemId SampleItem();

  ZipfGeneratorConfig config_;
  Rng rng_;
  std::vector<double> cumulative_;  // popularity CDF over item ids
  std::vector<Transaction> groups_;
};

}  // namespace ccs

#endif  // CCS_DATAGEN_ZIPF_GENERATOR_H_
