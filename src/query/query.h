#ifndef CCS_QUERY_QUERY_H_
#define CCS_QUERY_QUERY_H_

#include <optional>
#include <string>
#include <string_view>

#include "constraints/constraint_set.h"
#include "core/miner.h"
#include "core/options.h"
#include "core/result.h"
#include "txn/catalog.h"
#include "txn/database.h"
#include "util/status.h"

namespace ccs {

// A complete constrained correlation query: which answer set, which
// constraints, which statistical parameters — everything the paper's
// formal query expression carries, in one parseable unit:
//
//   query   := [semantics] [ 'where' constraints ] [ 'with' params ]
//   semantics := 'valid_min' | 'min_valid' | 'all'
//   params  := param (',' param)*
//   param   := 'alpha' '=' NUMBER          chi-squared confidence
//            | 'support' '=' NUMBER        CT-support fraction of |D|
//            | 'cells' '=' NUMBER          p% cell fraction
//            | 'maxsize' '=' NUMBER        level cap
//
// Examples:
//   "valid_min where max(S.price) <= 50 with alpha = 0.95, support = 0.01"
//   "min_valid where min(S.price) <= 20"
//   "all"                                  (unconstrained BMS)
//
// The constraint sub-language is ParseConstraints' (see parser.h).
struct Query {
  AnswerSemantics semantics = AnswerSemantics::kValidMinimal;
  ConstraintSet constraints;
  double significance = 0.9;
  // CT-support threshold as a fraction of the database size; resolved to
  // an absolute count by Execute/ResolveOptions.
  double support_fraction = 0.05;
  double min_cell_fraction = 0.25;
  std::size_t max_set_size = 4;

  // MiningOptions for a concrete database.
  MiningOptions ResolveOptions(const TransactionDatabase& db) const;

  // The constraint-pushing algorithm for this query's semantics
  // (BMS++ / BMS** / BMS).
  Algorithm DefaultAlgorithm() const;

  // Runs the query with DefaultAlgorithm().
  MiningResult Execute(const TransactionDatabase& db,
                       const ItemCatalog& catalog) const;
};

// Parses the full query syntax above. Errors are kInvalidArgument;
// where-clause errors carry the line/column diagnostics of
// ParseConstraintsOrError (positions relative to the where-clause text).
[[nodiscard]] StatusOr<Query> ParseQueryOrError(std::string_view text);

// Optional-based wrapper kept for existing call sites; the diagnostic is
// the Status message above.
std::optional<Query> ParseQuery(std::string_view text,
                                std::string* error = nullptr);

}  // namespace ccs

#endif  // CCS_QUERY_QUERY_H_
