#include "query/parser.h"

#include <cctype>
#include <cstdlib>
#include <limits>
#include <vector>

#include "constraints/agg_constraint.h"
#include "constraints/set_constraint.h"

namespace ccs {
namespace {

// First error found, as a message plus the byte offset it points at; the
// public entry points convert the offset to line/column against the source.
struct Diagnostic {
  std::string message;
  std::size_t pos = 0;
};

std::string FormatDiagnostic(std::string_view text, const Diagnostic& diag) {
  std::size_t line = 1;
  std::size_t column = 1;
  const std::size_t end = diag.pos < text.size() ? diag.pos : text.size();
  for (std::size_t i = 0; i < end; ++i) {
    if (text[i] == '\n') {
      ++line;
      column = 1;
    } else {
      ++column;
    }
  }
  return diag.message + " at line " + std::to_string(line) + ", column " +
         std::to_string(column) + " (position " + std::to_string(diag.pos) +
         ")";
}

enum class TokenKind {
  kIdent,   // letters, digits, '_', '.', starting with a letter
  kNumber,  // decimal literal
  kSymbol,  // one of & { } ( ) , | and the ops <= >= =
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;
  std::size_t pos = 0;
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  // Tokenizes the whole input; returns false on an unexpected character.
  bool Run(std::vector<Token>* tokens, Diagnostic* diag) {
    std::size_t i = 0;
    while (i < text_.size()) {
      const char c = text_[i];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
        continue;
      }
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        std::size_t j = i;
        while (j < text_.size() &&
               (std::isalnum(static_cast<unsigned char>(text_[j])) ||
                text_[j] == '_' || text_[j] == '.')) {
          ++j;
        }
        tokens->push_back(
            {TokenKind::kIdent, std::string(text_.substr(i, j - i)), i});
        i = j;
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c))) {
        std::size_t j = i;
        while (j < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[j])) ||
                text_[j] == '.')) {
          ++j;
        }
        tokens->push_back(
            {TokenKind::kNumber, std::string(text_.substr(i, j - i)), i});
        i = j;
        continue;
      }
      if (c == '<' || c == '>') {
        if (i + 1 >= text_.size() || text_[i + 1] != '=') {
          *diag = {"expected '<=' or '>='", i};
          return false;
        }
        tokens->push_back(
            {TokenKind::kSymbol, std::string(text_.substr(i, 2)), i});
        i += 2;
        continue;
      }
      if (c == '&' || c == '{' || c == '}' || c == '(' || c == ')' ||
          c == ',' || c == '|' || c == '=') {
        tokens->push_back({TokenKind::kSymbol, std::string(1, c), i});
        ++i;
        continue;
      }
      *diag = {std::string("unexpected character '") + c + "'", i};
      return false;
    }
    tokens->push_back({TokenKind::kEnd, "", text_.size()});
    return true;
  }

 private:
  std::string_view text_;
};

class Parser {
 public:
  Parser(std::vector<Token> tokens, Diagnostic* diag)
      : tokens_(std::move(tokens)), diag_(diag) {}

  std::optional<ConstraintSet> Run() {
    ConstraintSet out;
    if (!ParseConstraintInto(out)) return std::nullopt;
    while (Peek().kind == TokenKind::kSymbol && Peek().text == "&") {
      Advance();
      if (!ParseConstraintInto(out)) return std::nullopt;
    }
    if (Peek().kind != TokenKind::kEnd) {
      Fail("trailing input");
      return std::nullopt;
    }
    return out;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Advance() { return tokens_[pos_++]; }

  bool Fail(const std::string& message) {
    *diag_ = {message, Peek().pos};
    return false;
  }

  bool ExpectSymbol(const std::string& symbol) {
    if (Peek().kind != TokenKind::kSymbol || Peek().text != symbol) {
      return Fail("expected '" + symbol + "'");
    }
    Advance();
    return true;
  }

  bool ExpectIdent(const std::string& ident) {
    if (Peek().kind != TokenKind::kIdent || Peek().text != ident) {
      return Fail("expected '" + ident + "'");
    }
    Advance();
    return true;
  }

  // op := '<=' | '>=' | '='; writes the parsed op.
  bool ParseOp(std::string* op) {
    if (Peek().kind != TokenKind::kSymbol ||
        (Peek().text != "<=" && Peek().text != ">=" && Peek().text != "=")) {
      return Fail("expected '<=', '>=' or '='");
    }
    *op = Advance().text;
    return true;
  }

  bool ParseNumber(double* value) {
    if (Peek().kind != TokenKind::kNumber) return Fail("expected a number");
    *value = std::strtod(Advance().text.c_str(), nullptr);
    return true;
  }

  // '{' ... '}' of identifiers (names != nullptr) or integers.
  bool ParseBracedList(std::vector<std::string>* names,
                       std::vector<ItemId>* items) {
    if (!ExpectSymbol("{")) return false;
    const bool want_names = names != nullptr;
    while (true) {
      if (want_names) {
        if (Peek().kind != TokenKind::kIdent) {
          return Fail("expected a type name");
        }
        names->push_back(Advance().text);
      } else {
        if (Peek().kind != TokenKind::kNumber ||
            Peek().text.find('.') != std::string::npos) {
          return Fail("expected an item id");
        }
        const unsigned long long id =
            std::strtoull(Peek().text.c_str(), nullptr, 10);
        if (id > std::numeric_limits<ItemId>::max()) {
          return Fail("item id '" + Peek().text + "' out of range");
        }
        Advance();
        items->push_back(static_cast<ItemId>(id));
      }
      if (Peek().kind == TokenKind::kSymbol && Peek().text == ",") {
        Advance();
        continue;
      }
      break;
    }
    return ExpectSymbol("}");
  }

  // Emits agg op threshold, expanding '=' into the <= & >= pair.
  bool EmitAgg(ConstraintSet& out, Agg agg, const std::string& op,
               double threshold) {
    if (op == "=") {
      if (agg == Agg::kAvg) {
        return Fail("avg does not support '='");
      }
      out.AddAll(MakeEqualityConstraint(agg, threshold));
    } else {
      out.Add(std::make_unique<AggConstraint>(
          agg, op == "<=" ? Cmp::kLe : Cmp::kGe, threshold));
    }
    return true;
  }

  bool ParseConstraintInto(ConstraintSet& out) {
    const Token& t = Peek();
    // '|' 'S.type' '|' op NUMBER
    if (t.kind == TokenKind::kSymbol && t.text == "|") {
      Advance();
      if (!ExpectIdent("S.type") || !ExpectSymbol("|")) return false;
      std::string op;
      double value = 0;
      if (!ParseOp(&op) || !ParseNumber(&value)) return false;
      const auto count = static_cast<std::size_t>(value);
      if (op == "=") {
        out.Add(std::make_unique<TypeCountConstraint>(Cmp::kLe, count));
        out.Add(std::make_unique<TypeCountConstraint>(Cmp::kGe, count));
      } else {
        out.Add(std::make_unique<TypeCountConstraint>(
            op == "<=" ? Cmp::kLe : Cmp::kGe, count));
      }
      return true;
    }
    // Braced set on the left: typeset/itemset subset|disjoint|intersects.
    if (t.kind == TokenKind::kSymbol && t.text == "{") {
      // Look ahead one token past '{' to decide names vs ids.
      const Token& inner = tokens_[pos_ + 1];
      std::vector<std::string> names;
      std::vector<ItemId> items;
      const bool is_names = inner.kind == TokenKind::kIdent;
      if (!ParseBracedList(is_names ? &names : nullptr,
                           is_names ? nullptr : &items)) {
        return false;
      }
      if (Peek().kind != TokenKind::kIdent) {
        return Fail("expected 'subset', 'disjoint' or 'intersects'");
      }
      const std::string verb = Advance().text;
      if (is_names) {
        if (!ExpectIdent("S.type")) return false;
        if (verb == "subset") {
          out.Add(std::make_unique<TypeContainsConstraint>(std::move(names)));
        } else if (verb == "disjoint") {
          out.Add(std::make_unique<TypeDisjointConstraint>(std::move(names)));
        } else if (verb == "intersects") {
          out.Add(
              std::make_unique<TypeIntersectsConstraint>(std::move(names)));
        } else {
          return Fail("unknown set operator '" + verb + "'");
        }
      } else {
        if (!ExpectIdent("S")) return false;
        if (verb == "subset") {
          out.Add(std::make_unique<ContainsItemsConstraint>(std::move(items)));
        } else if (verb == "disjoint") {
          out.Add(std::make_unique<ExcludesItemsConstraint>(std::move(items)));
        } else {
          return Fail("unknown set operator '" + verb + "'");
        }
      }
      return true;
    }
    if (t.kind != TokenKind::kIdent) return Fail("expected a constraint");
    // 'S.type' subset typeset
    if (t.text == "S.type") {
      Advance();
      if (!ExpectIdent("subset")) return false;
      std::vector<std::string> names;
      if (!ParseBracedList(&names, nullptr)) return false;
      out.Add(std::make_unique<TypeSubsetConstraint>(std::move(names)));
      return true;
    }
    // agg '(' 'S.price' ')' op NUMBER | 'count' '(' 'S' ')' op NUMBER
    Agg agg;
    if (t.text == "min") {
      agg = Agg::kMin;
    } else if (t.text == "max") {
      agg = Agg::kMax;
    } else if (t.text == "sum") {
      agg = Agg::kSum;
    } else if (t.text == "avg") {
      agg = Agg::kAvg;
    } else if (t.text == "count") {
      agg = Agg::kCount;
    } else {
      return Fail("unknown constraint '" + t.text + "'");
    }
    Advance();
    if (!ExpectSymbol("(")) return false;
    if (agg == Agg::kCount) {
      if (!ExpectIdent("S")) return false;
    } else {
      if (!ExpectIdent("S.price")) return false;
    }
    if (!ExpectSymbol(")")) return false;
    std::string op;
    double value = 0;
    if (!ParseOp(&op) || !ParseNumber(&value)) return false;
    return EmitAgg(out, agg, op, value);
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  Diagnostic* diag_;
};

}  // namespace

StatusOr<ConstraintSet> ParseConstraintsOrError(std::string_view text) {
  Diagnostic diag;
  std::vector<Token> tokens;
  Lexer lexer(text);
  if (!lexer.Run(&tokens, &diag)) {
    return InvalidArgumentError(FormatDiagnostic(text, diag));
  }
  Parser parser(std::move(tokens), &diag);
  std::optional<ConstraintSet> out = parser.Run();
  if (!out.has_value()) {
    return InvalidArgumentError(FormatDiagnostic(text, diag));
  }
  return std::move(*out);
}

std::optional<ConstraintSet> ParseConstraints(std::string_view text,
                                              std::string* error) {
  StatusOr<ConstraintSet> parsed = ParseConstraintsOrError(text);
  if (!parsed.ok()) {
    if (error != nullptr) *error = parsed.status().message();
    return std::nullopt;
  }
  return std::move(parsed).value();
}

}  // namespace ccs
