#include "query/query.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>

#include "core/session.h"
#include "query/parser.h"

namespace ccs {
namespace {

void SetError(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
}

std::string_view Trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

// Finds keyword `word` as a whole lowercase word in `text`; npos if absent.
std::size_t FindKeyword(const std::string& lower, const std::string& word) {
  std::size_t pos = 0;
  while ((pos = lower.find(word, pos)) != std::string::npos) {
    const bool left_ok =
        pos == 0 ||
        !std::isalnum(static_cast<unsigned char>(lower[pos - 1]));
    const std::size_t end = pos + word.size();
    const bool right_ok =
        end == lower.size() ||
        !std::isalnum(static_cast<unsigned char>(lower[end]));
    if (left_ok && right_ok) return pos;
    pos = end;
  }
  return std::string::npos;
}

bool ParseParams(std::string_view text, Query* query, std::string* error) {
  std::size_t start = 0;
  const std::string params(text);
  while (start <= params.size()) {
    std::size_t comma = params.find(',', start);
    if (comma == std::string::npos) comma = params.size();
    const std::string_view entry =
        Trim(std::string_view(params).substr(start, comma - start));
    start = comma + 1;
    if (entry.empty()) continue;
    const std::size_t eq = entry.find('=');
    if (eq == std::string_view::npos) {
      SetError(error, "expected 'name = value' in with-clause, got '" +
                          std::string(entry) + "'");
      return false;
    }
    const std::string name = ToLower(Trim(entry.substr(0, eq)));
    const std::string value(Trim(entry.substr(eq + 1)));
    char* end = nullptr;
    const double number = std::strtod(value.c_str(), &end);
    if (end == value.c_str() || *end != '\0') {
      SetError(error, "bad number '" + value + "' for '" + name + "'");
      return false;
    }
    if (name == "alpha") {
      if (number < 0.0 || number >= 1.0) {
        SetError(error, "alpha must be in [0, 1)");
        return false;
      }
      query->significance = number;
    } else if (name == "support") {
      if (number < 0.0 || number > 1.0) {
        SetError(error, "support must be a fraction in [0, 1]");
        return false;
      }
      query->support_fraction = number;
    } else if (name == "cells") {
      if (number < 0.0 || number > 1.0) {
        SetError(error, "cells must be a fraction in [0, 1]");
        return false;
      }
      query->min_cell_fraction = number;
    } else if (name == "maxsize") {
      if (number < 2.0 || number > Itemset::kMaxSize) {
        SetError(error, "maxsize must be in [2, 12]");
        return false;
      }
      query->max_set_size = static_cast<std::size_t>(number);
    } else {
      SetError(error, "unknown parameter '" + name + "'");
      return false;
    }
  }
  return true;
}

}  // namespace

MiningOptions Query::ResolveOptions(const TransactionDatabase& db) const {
  MiningOptions options;
  options.significance = significance;
  options.min_support = static_cast<std::uint64_t>(
      support_fraction * static_cast<double>(db.num_transactions()));
  options.min_cell_fraction = min_cell_fraction;
  options.max_set_size = max_set_size;
  return options;
}

Algorithm Query::DefaultAlgorithm() const {
  switch (semantics) {
    case AnswerSemantics::kUnconstrained:
      return Algorithm::kBms;
    case AnswerSemantics::kValidMinimal:
      return Algorithm::kBmsPlusPlus;
    case AnswerSemantics::kMinimalValid:
      return Algorithm::kBmsStarStar;
  }
  return Algorithm::kBms;
}

MiningResult Query::Execute(const TransactionDatabase& db,
                            const ItemCatalog& catalog) const {
  const MiningSession session(DatabaseHandle::Borrow(db, catalog));
  MiningRequest request;
  request.algorithm = DefaultAlgorithm();
  request.options = ResolveOptions(db);
  request.constraints = &constraints;
  return session.Run(request);
}

namespace {

std::optional<Query> ParseQueryImpl(std::string_view text,
                                    std::string* error) {
  Query query;
  const std::string lower = ToLower(text);
  const std::size_t where_pos = FindKeyword(lower, "where");
  const std::size_t with_pos = FindKeyword(lower, "with");
  if (where_pos != std::string::npos && with_pos != std::string::npos &&
      with_pos < where_pos) {
    SetError(error, "'with' must follow 'where'");
    return std::nullopt;
  }
  const std::size_t head_end = std::min(where_pos, with_pos);
  const std::string head = ToLower(Trim(text.substr(
      0, head_end == std::string::npos ? text.size() : head_end)));
  if (head == "valid_min" || head.empty()) {
    query.semantics = AnswerSemantics::kValidMinimal;
  } else if (head == "min_valid") {
    query.semantics = AnswerSemantics::kMinimalValid;
  } else if (head == "all") {
    query.semantics = AnswerSemantics::kUnconstrained;
  } else {
    SetError(error,
             "expected 'valid_min', 'min_valid' or 'all', got '" + head +
                 "'");
    return std::nullopt;
  }

  if (where_pos != std::string::npos) {
    const std::size_t constraints_begin = where_pos + 5;
    const std::size_t constraints_end =
        with_pos == std::string::npos ? text.size() : with_pos;
    const std::string_view constraint_text =
        Trim(text.substr(constraints_begin,
                         constraints_end - constraints_begin));
    StatusOr<ConstraintSet> parsed = ParseConstraintsOrError(constraint_text);
    if (!parsed.ok()) {
      // Line/column are relative to the where-clause text; say so.
      SetError(error, "where-clause: " + parsed.status().message());
      return std::nullopt;
    }
    query.constraints = std::move(parsed).value();
    if (query.semantics == AnswerSemantics::kUnconstrained &&
        !query.constraints.empty()) {
      SetError(error, "'all' takes no where-clause");
      return std::nullopt;
    }
  }

  if (with_pos != std::string::npos) {
    if (!ParseParams(text.substr(with_pos + 4), &query, error)) {
      return std::nullopt;
    }
  }
  if (query.semantics == AnswerSemantics::kMinimalValid &&
      query.constraints.has_unclassified()) {
    SetError(error,
             "min_valid requires monotone or anti-monotone constraints "
             "(avg is neither; see Section 6 of the paper)");
    return std::nullopt;
  }
  return query;
}

}  // namespace

StatusOr<Query> ParseQueryOrError(std::string_view text) {
  std::string error;
  std::optional<Query> query = ParseQueryImpl(text, &error);
  if (!query.has_value()) {
    return InvalidArgumentError(error.empty() ? "malformed query" : error);
  }
  return std::move(*query);
}

std::optional<Query> ParseQuery(std::string_view text, std::string* error) {
  StatusOr<Query> query = ParseQueryOrError(text);
  if (!query.ok()) {
    if (error != nullptr) *error = query.status().message();
    return std::nullopt;
  }
  return std::move(query).value();
}

}  // namespace ccs
