#ifndef CCS_QUERY_PARSER_H_
#define CCS_QUERY_PARSER_H_

#include <optional>
#include <string>
#include <string_view>

#include "constraints/constraint_set.h"
#include "util/status.h"

namespace ccs {

// Recursive-descent parser for the paper's constraint language, so examples
// and tools can state queries the way the paper writes them:
//
//   query      := constraint ('&' constraint)*
//   constraint :=
//       agg '(' 'S.price' ')' op NUMBER          agg in {min,max,sum,avg}
//     | 'count' '(' 'S' ')' op NUMBER
//     | typeset 'subset' 'S.type'                CS subset-of S.type
//     | 'S.type' 'subset' typeset                S.type subset-of CS
//     | typeset 'disjoint' 'S.type'              CS intersect S.type = {}
//     | typeset 'intersects' 'S.type'            CS intersect S.type != {}
//     | '|' 'S.type' '|' op NUMBER               distinct-type count
//     | itemset 'subset' 'S'                     CS subset-of S
//     | itemset 'disjoint' 'S'                   S intersect CS = {}
//   op       := '<=' | '>=' | '='
//   typeset  := '{' NAME (',' NAME)* '}'
//   itemset  := '{' INT (',' INT)* '}'
//
// '=' on an aggregate is rewritten into the <=/>= conjunction pair
// (Section 2.2); '=' on count/type-count likewise. Example:
//
//   "max(S.price) <= 50 & sum(S.price) >= 100 &
//    {soda, frozenfood} subset S.type & {snacks} disjoint S.type"
//
// Returns the parsed conjunction. Errors are kInvalidArgument and the
// message pinpoints the offending token with its 1-based line and column
// (plus the raw byte position), e.g.
//   "expected a number at line 2, column 14 (position 29)".
[[nodiscard]] StatusOr<ConstraintSet> ParseConstraintsOrError(
    std::string_view text);

// Optional-based wrapper kept for existing call sites; the diagnostic is
// the Status message above.
std::optional<ConstraintSet> ParseConstraints(std::string_view text,
                                              std::string* error = nullptr);

}  // namespace ccs

#endif  // CCS_QUERY_PARSER_H_
