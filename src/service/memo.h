#ifndef CCS_SERVICE_MEMO_H_
#define CCS_SERVICE_MEMO_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

#include "util/lock_rank.h"
#include "util/thread_annotations.h"

namespace ccs {
namespace service {

// A fully materialized MINE answer, shared between the memo and in-flight
// responders. Immutable once inserted.
struct CachedAnswer {
  std::size_t num_sets = 0;
  std::string termination;  // TerminationName(), always "completed" today
  std::string body;         // the SET/METRICS/TRACE lines, '\n'-terminated
};

// Cross-query whole-answer memo (DESIGN.md §12), keyed by
// protocol.h's CanonicalKey — (db epoch, canonical request). Epochs are
// process-unique, so a new database generation can never alias a stale
// entry; no explicit invalidation is needed.
//
// The service only inserts unlimited, kCompleted runs: partial answers
// depend on where the deadline landed and must never be replayed.
// A hit therefore returns exactly the bytes a cold run would produce —
// pinned by the cache-identity test.
//
// LRU over whole answers; thread-safe.
class MemoCache {
 public:
  struct Options {
    std::size_t max_entries = 64;
  };

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
    std::size_t entries = 0;
  };

  explicit MemoCache(Options options) : options_(options) {}

  MemoCache(const MemoCache&) = delete;
  MemoCache& operator=(const MemoCache&) = delete;

  // The cached answer, refreshed to most-recently-used — or nullptr.
  std::shared_ptr<const CachedAnswer> Lookup(const std::string& key)
      CCS_EXCLUDES(mutex_);

  // Inserts (or refreshes) the answer, evicting the least recently used
  // entry beyond capacity. Last writer wins on a duplicate key — both
  // writers computed the same bytes, so the race is benign.
  void Insert(const std::string& key, CachedAnswer answer)
      CCS_EXCLUDES(mutex_);

  Stats stats() const CCS_EXCLUDES(mutex_);

 private:
  using LruList =
      std::list<std::pair<std::string, std::shared_ptr<const CachedAnswer>>>;

  const Options options_;
  // kMemo: leaf on the MINE path (lookup before admission, insert after
  // the run, neither nested); ranked between admission and the pool so a
  // future under-lock composition stays ordered.
  mutable RankedMutex mutex_{LockRank::kMemo};
  LruList lru_ CCS_GUARDED_BY(mutex_);  // front = most recent
  std::unordered_map<std::string, LruList::iterator> index_
      CCS_GUARDED_BY(mutex_);
  std::uint64_t hits_ CCS_GUARDED_BY(mutex_) = 0;
  std::uint64_t misses_ CCS_GUARDED_BY(mutex_) = 0;
  std::uint64_t insertions_ CCS_GUARDED_BY(mutex_) = 0;
  std::uint64_t evictions_ CCS_GUARDED_BY(mutex_) = 0;
};

}  // namespace service
}  // namespace ccs

#endif  // CCS_SERVICE_MEMO_H_
