#include "service/clock.h"

namespace ccs {
namespace service {

std::chrono::steady_clock::time_point SystemClock::Now() const {
  return std::chrono::steady_clock::now();
}

const ServiceClock& DefaultServiceClock() {
  static const SystemClock clock;
  return clock;
}

}  // namespace service
}  // namespace ccs
