#ifndef CCS_SERVICE_FRAMED_READER_H_
#define CCS_SERVICE_FRAMED_READER_H_

#include <chrono>
#include <cstddef>
#include <functional>
#include <string>

#include "service/clock.h"
#include "util/status.h"

namespace ccs {
namespace service {

// Deadline-governed line reader for one connection fd (DESIGN.md §13).
//
// The daemon's wire unit is a '\n'-terminated request line; a hostile or
// broken peer can violate that three ways, and each gets a distinct,
// deterministic Status instead of a hung thread:
//
//   * slow loris — bytes trickle (or stop) forever. Two deadlines bound
//     the assembly of one line: `idle_deadline` since the last byte
//     arrived and `read_deadline` since line assembly began. Either
//     tripping returns kDeadlineExceeded.
//   * oversized frame — a line longer than `max_line_bytes` (the
//     terminating '\n' not counted) returns kResourceExhausted before
//     the buffer can grow unboundedly. A line of exactly
//     `max_line_bytes` is accepted.
//   * mid-frame disconnect — EOF with a partial line buffered returns
//     kDataLoss; EOF at a line boundary is a clean end-of-stream.
//
// Time never comes from the wall clock directly: every deadline check
// reads the injected ServiceClock, so ManualClock tests trip deadlines
// without real waits. The reader wakes every `poll_interval` of real
// time to re-check the clock and the `stop` predicate (the drain path),
// so a ManualClock advance is observed within one tick.
class FramedReader {
 public:
  struct Options {
    // Longest accepted request line, excluding the '\n'.
    std::size_t max_line_bytes = 1 << 20;
    // Budget for assembling one whole line; 0 = unbounded.
    std::chrono::milliseconds read_deadline{0};
    // Budget between consecutive byte arrivals; 0 = unbounded.
    std::chrono::milliseconds idle_deadline{0};
    // Real-time wakeup granularity for clock/stop re-checks.
    std::chrono::milliseconds poll_interval{20};
    // Checked every wakeup; true aborts the read with kCancelled
    // (the server's drain path latches this via shutdown_requested).
    std::function<bool()> stop;
  };

  // `fd` and `clock` are borrowed; nullptr clock selects the process
  // SystemClock.
  FramedReader(int fd, Options options, const ServiceClock* clock = nullptr);

  FramedReader(const FramedReader&) = delete;
  FramedReader& operator=(const FramedReader&) = delete;

  // Reads the next request line into *line ('\n' stripped, a trailing
  // '\r' preserved — the protocol parser handles CRLF). On success with
  // *eof == true the peer closed cleanly at a line boundary and *line is
  // empty. Errors:
  //   kDeadlineExceeded  read/idle deadline hit (slow loris)
  //   kResourceExhausted line exceeds max_line_bytes
  //   kDataLoss          EOF mid-line, transport error, or an injected
  //                      svc_read fault (simulated mid-frame disconnect)
  //   kCancelled         the stop predicate fired (server draining)
  [[nodiscard]] Status ReadLine(std::string* line, bool* eof);

 private:
  const int fd_;
  const Options options_;
  const ServiceClock* const clock_;
  std::string buffer_;
};

// Governs WriteAll: the send side gets the same discipline as the read
// side — a peer that stops draining its socket cannot park a connection
// thread forever.
struct WriteOptions {
  // Budget for flushing one whole response; 0 = unbounded.
  std::chrono::milliseconds write_deadline{0};
  std::chrono::milliseconds poll_interval{20};
};

// Sends all of `data` on `fd`, retrying EINTR and waiting out EAGAIN /
// partial sends with poll(POLLOUT) under the injected clock's deadline.
// Errors: kDeadlineExceeded (peer stopped draining), kDataLoss
// (transport error, peer reset, or an injected svc_write fault).
[[nodiscard]] Status WriteAll(int fd, const std::string& data,
                              const WriteOptions& options,
                              const ServiceClock* clock = nullptr);

}  // namespace service
}  // namespace ccs

#endif  // CCS_SERVICE_FRAMED_READER_H_
