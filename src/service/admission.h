#ifndef CCS_SERVICE_ADMISSION_H_
#define CCS_SERVICE_ADMISSION_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>

#include "service/clock.h"
#include "util/lock_rank.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace ccs {
namespace service {

// Fair admission for concurrent MINE requests (DESIGN.md §12).
//
// At most `max_concurrent` requests mine at once; up to `max_queued` more
// wait in strict FIFO order (ticket numbers, so a late arrival can never
// overtake an earlier one); anything beyond that is rejected immediately
// with kUnavailable — the retryable "come back later" code, distinct from
// kResourceExhausted's "your request itself is too big". Rejecting at the
// door keeps overload from turning into unbounded queue growth or
// crashes, which is the acceptance bar for the service.
//
// Admission decisions depend only on the counters — never on the wall
// clock. The injected ServiceClock is used purely for queue-wait
// telemetry, so ManualClock tests see deterministic stats.
class AdmissionController {
 public:
  struct Options {
    std::size_t max_concurrent = 4;
    std::size_t max_queued = 8;
  };

  struct Stats {
    std::uint64_t admitted = 0;
    std::uint64_t rejected = 0;
    std::uint64_t queue_wait_ms_total = 0;  // summed over admitted waits
    std::size_t running = 0;
    std::size_t queued = 0;
  };

  // `clock` is borrowed and must outlive the controller; nullptr selects
  // the process SystemClock.
  explicit AdmissionController(Options options,
                               const ServiceClock* clock = nullptr);

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  // Holds one of the `max_concurrent` slots; releases it on destruction.
  class Permit {
   public:
    Permit() = default;
    Permit(Permit&& other) noexcept : controller_(other.controller_) {
      other.controller_ = nullptr;
    }
    Permit& operator=(Permit&& other) noexcept {
      if (this != &other) {
        Reset();
        controller_ = other.controller_;
        other.controller_ = nullptr;
      }
      return *this;
    }
    ~Permit() { Reset(); }

    bool valid() const { return controller_ != nullptr; }

   private:
    friend class AdmissionController;
    explicit Permit(AdmissionController* controller)
        : controller_(controller) {}
    void Reset() {
      if (controller_ != nullptr) controller_->Release();
      controller_ = nullptr;
    }
    AdmissionController* controller_ = nullptr;
  };

  // Blocks until a slot frees (FIFO), or rejects with kUnavailable when
  // the queue is already full.
  [[nodiscard]] StatusOr<Permit> Admit() CCS_EXCLUDES(mutex_);

  Stats stats() const CCS_EXCLUDES(mutex_);

 private:
  void Release() CCS_EXCLUDES(mutex_);

  const Options options_;
  const ServiceClock* const clock_;
  // kAdmission: held across clock_->Now() (a ManualClock locks kClock
  // underneath) and above everything a mining run may lock.
  // condition_variable_any because plain condition_variable only accepts
  // std::mutex.
  mutable RankedMutex mutex_{LockRank::kAdmission};
  std::condition_variable_any slot_freed_;
  std::deque<std::uint64_t> queue_ CCS_GUARDED_BY(mutex_);
  std::uint64_t next_ticket_ CCS_GUARDED_BY(mutex_) = 0;
  std::size_t running_ CCS_GUARDED_BY(mutex_) = 0;
  std::uint64_t admitted_ CCS_GUARDED_BY(mutex_) = 0;
  std::uint64_t rejected_ CCS_GUARDED_BY(mutex_) = 0;
  std::uint64_t queue_wait_ms_total_ CCS_GUARDED_BY(mutex_) = 0;
};

}  // namespace service
}  // namespace ccs

#endif  // CCS_SERVICE_ADMISSION_H_
