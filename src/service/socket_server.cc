#include "service/socket_server.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace ccs {
namespace service {

namespace {

bool WriteAll(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

SocketServer::~SocketServer() { CloseListener(); }

Status SocketServer::Start() {
  if (options_.socket_path.empty()) {
    return InvalidArgumentError("socket path is empty");
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (options_.socket_path.size() >= sizeof(addr.sun_path)) {
    return InvalidArgumentError("socket path too long: " +
                                options_.socket_path);
  }
  std::memcpy(addr.sun_path, options_.socket_path.c_str(),
              options_.socket_path.size() + 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return InternalError(std::string("socket: ") + std::strerror(errno));
  }
  ::unlink(options_.socket_path.c_str());  // replace a stale socket file
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const int err = errno;
    ::close(fd);
    return InternalError("bind " + options_.socket_path + ": " +
                         std::strerror(err));
  }
  if (::listen(fd, options_.backlog) < 0) {
    const int err = errno;
    ::close(fd);
    ::unlink(options_.socket_path.c_str());
    return InternalError(std::string("listen: ") + std::strerror(err));
  }
  listen_fd_.store(fd, std::memory_order_release);
  return OkStatus();
}

void SocketServer::Serve() {
  while (true) {
    const int listen_fd = listen_fd_.load(std::memory_order_acquire);
    if (listen_fd < 0) break;
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // CloseListener (shutdown path) makes accept fail: drain and exit.
      break;
    }
    if (service_->shutdown_requested()) {
      ::close(fd);
      break;
    }
    connections_.emplace_back(&SocketServer::HandleConnection, this, fd);
  }
  for (std::thread& t : connections_) t.join();
  connections_.clear();
  ::unlink(options_.socket_path.c_str());
}

void SocketServer::HandleConnection(int fd) {
  std::string buffer;
  char chunk[4096];
  while (true) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (n == 0) break;  // client closed
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t newline;
    while ((newline = buffer.find('\n')) != std::string::npos) {
      const std::string line = buffer.substr(0, newline);
      buffer.erase(0, newline + 1);
      if (!WriteAll(fd, service_->HandleLine(line))) {
        ::close(fd);
        return;
      }
      if (service_->shutdown_requested()) {
        ::close(fd);
        // Unblock the accept loop so Serve() can drain and exit.
        CloseListener();
        return;
      }
    }
  }
  ::close(fd);
}

void SocketServer::CloseListener() {
  const int fd = listen_fd_.exchange(-1, std::memory_order_acq_rel);
  if (fd >= 0) {
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
}

}  // namespace service
}  // namespace ccs
