#include "service/socket_server.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "service/framed_reader.h"
#include "service/protocol.h"
#include "util/fault.h"

namespace ccs {
namespace service {

SocketServer::~SocketServer() { CloseListener(); }

Status SocketServer::Start() {
  if (options_.socket_path.empty()) {
    return InvalidArgumentError("socket path is empty");
  }
  if (options_.max_connections == 0) {
    return InvalidArgumentError("max_connections must be positive");
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (options_.socket_path.size() >= sizeof(addr.sun_path)) {
    return InvalidArgumentError("socket path too long: " +
                                options_.socket_path);
  }
  std::memcpy(addr.sun_path, options_.socket_path.c_str(),
              options_.socket_path.size() + 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return InternalError(std::string("socket: ") + std::strerror(errno));  // NOLINT(concurrency-mt-unsafe)
  }
  ::unlink(options_.socket_path.c_str());  // replace a stale socket file
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const int err = errno;
    ::close(fd);
    return InternalError("bind " + options_.socket_path + ": " +
                         std::strerror(err));  // NOLINT(concurrency-mt-unsafe)
  }
  if (::listen(fd, options_.backlog) < 0) {
    const int err = errno;
    ::close(fd);
    ::unlink(options_.socket_path.c_str());
    return InternalError(std::string("listen: ") + std::strerror(err));  // NOLINT(concurrency-mt-unsafe)
  }
  slots_.clear();
  slots_.resize(options_.max_connections);
  listen_fd_.store(fd, std::memory_order_release);
  return OkStatus();
}

void SocketServer::Serve() {
  ServiceMetrics* const metrics = service_->metrics();
  while (true) {
    const int listen_fd = listen_fd_.load(std::memory_order_acquire);
    if (listen_fd < 0 || service_->shutdown_requested()) break;
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      // A transient accept failure (aborted handshake, fd pressure,
      // signal) must not take the daemon down; only a closed listener —
      // observed as listen_fd_ going negative at the top of the loop —
      // ends the accept phase. The short poll keeps a persistent error
      // from spinning.
      if (errno != EINTR) {
        pollfd pfd{};
        pfd.fd = listen_fd;
        pfd.events = POLLIN;
        ::poll(&pfd, 1,
               static_cast<int>(options_.poll_interval.count()));
      }
      continue;
    }
    if (service_->shutdown_requested()) {
      ::close(fd);
      break;
    }
    // svc_accept fault: the daemon ran out of a post-accept resource
    // (thread, fd slot duplication, ...) — shed the connection cleanly.
    if (ShouldInjectFault("svc_accept")) {
      metrics->connections_rejected.fetch_add(1, std::memory_order_relaxed);
      ::close(fd);
      continue;
    }
    ReapFinished();
    Slot* slot = nullptr;
    for (std::unique_ptr<Slot>& candidate : slots_) {
      if (candidate == nullptr) {
        candidate = std::make_unique<Slot>();
        slot = candidate.get();
        break;
      }
    }
    if (slot == nullptr) {
      // Slot table full: same contract as admission overflow — an
      // immediate, parseable rejection instead of an unbounded thread
      // table. Best effort; a peer that is already gone just loses it.
      metrics->connections_rejected.fetch_add(1, std::memory_order_relaxed);
      WriteOptions write_options;
      write_options.write_deadline = options_.write_deadline;
      write_options.poll_interval = options_.poll_interval;
      (void)WriteAll(fd,
                     ErrorFrame(UnavailableError(
                         "connection slots exhausted (" +
                         std::to_string(options_.max_connections) + ")")),
                     write_options, clock_);
      ::close(fd);
      continue;
    }
    metrics->connections_accepted.fetch_add(1, std::memory_order_relaxed);
    slot->thread =
        std::thread(&SocketServer::HandleConnection, this, fd, slot);
  }
  DrainConnections();
  ::unlink(options_.socket_path.c_str());
}

void SocketServer::HandleConnection(int fd, Slot* slot) {
  ServiceMetrics* const metrics = service_->metrics();
  FramedReader::Options reader_options;
  reader_options.max_line_bytes = options_.max_line_bytes;
  reader_options.read_deadline = options_.read_deadline;
  reader_options.idle_deadline = options_.idle_deadline;
  reader_options.poll_interval = options_.poll_interval;
  reader_options.stop = [this] { return service_->shutdown_requested(); };
  FramedReader reader(fd, reader_options, clock_);
  WriteOptions write_options;
  write_options.write_deadline = options_.write_deadline;
  write_options.poll_interval = options_.poll_interval;

  while (true) {
    std::string line;
    bool eof = false;
    const Status read = reader.ReadLine(&line, &eof);
    if (!read.ok()) {
      switch (read.code()) {
        case StatusCode::kDeadlineExceeded:
          // Slow loris: the peer is still connected (just silent or
          // dribbling), so tell it why before hanging up.
          metrics->read_timeouts.fetch_add(1, std::memory_order_relaxed);
          (void)WriteAll(fd, ErrorFrame(read), write_options, clock_);
          break;
        case StatusCode::kResourceExhausted:
          // Oversized frame: the line cannot be resynchronized, so the
          // reply is followed by a close.
          metrics->oversized_frames.fetch_add(1, std::memory_order_relaxed);
          (void)WriteAll(fd, ErrorFrame(read), write_options, clock_);
          break;
        case StatusCode::kCancelled:
          // Server draining; the peer sent no request, nothing owed.
          break;
        default:
          // Transport error or mid-frame disconnect: nobody listening.
          metrics->read_errors.fetch_add(1, std::memory_order_relaxed);
          break;
      }
      break;
    }
    if (eof) break;
    const std::string response = service_->HandleLine(line);
    if (const Status written = WriteAll(fd, response, write_options, clock_);
        !written.ok()) {
      metrics->write_errors.fetch_add(1, std::memory_order_relaxed);
      break;
    }
    if (service_->shutdown_requested()) {
      // Unblock the accept loop so Serve() can drain and exit.
      CloseListener();
      break;
    }
  }
  ::close(fd);
  slot->done.store(true, std::memory_order_release);
}

std::size_t SocketServer::ReapFinished() {
  std::size_t live = 0;
  for (std::unique_ptr<Slot>& slot : slots_) {
    if (slot == nullptr) continue;
    if (slot->done.load(std::memory_order_acquire)) {
      slot->thread.join();
      slot.reset();
    } else {
      ++live;
    }
  }
  return live;
}

void SocketServer::DrainConnections() {
  ServiceMetrics* const metrics = service_->metrics();
  metrics->drains_started.fetch_add(1, std::memory_order_relaxed);
  const std::chrono::steady_clock::time_point drain_start = clock_->Now();
  bool cancelled = false;
  while (ReapFinished() > 0) {
    if (!cancelled &&
        clock_->Now() - drain_start >= options_.drain_deadline) {
      // Grace period over: stop in-flight runs at their next batch
      // boundary. Their partial replies still flush (bounded by the
      // write deadline), so this loop terminates.
      service_->CancelInFlight();
      cancelled = true;
    }
    std::this_thread::sleep_for(options_.poll_interval);
  }
}

void SocketServer::RequestShutdown() {
  service_->RequestShutdown();
  CloseListener();
}

void SocketServer::CloseListener() {
  const int fd = listen_fd_.exchange(-1, std::memory_order_acq_rel);
  if (fd >= 0) {
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
}

}  // namespace service
}  // namespace ccs
