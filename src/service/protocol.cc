#include "service/protocol.h"

#include <cstdlib>
#include <string_view>

namespace ccs {
namespace service {

namespace {

// %.17g survives a double round trip, so two requests canonicalize
// equally iff their parsed values are bit-equal.
std::string DoubleKey(const std::optional<double>& value) {
  if (!value.has_value()) return "-";
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.17g", *value);
  return buffer;
}

[[nodiscard]] bool ParseU64(std::string_view text, std::uint64_t* out) {
  if (text.empty()) return false;
  std::uint64_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  *out = value;
  return true;
}

[[nodiscard]] bool ParseDouble(std::string_view text, double* out) {
  const std::string copy(text);
  char* end = nullptr;
  const double value = std::strtod(copy.c_str(), &end);
  if (end != copy.c_str() + copy.size() || copy.empty()) return false;
  *out = value;
  return true;
}

}  // namespace

std::string ErrorFrame(const Status& status) {
  std::string response = "ERR ";
  response += StatusCodeName(status.code());
  response += ' ';
  response += status.message();
  response += "\nEND\n";
  return response;
}

StatusOr<Request> ParseRequestLine(const std::string& line) {
  std::string_view rest = line;
  while (!rest.empty() && rest.back() == '\r') rest.remove_suffix(1);
  const std::size_t verb_end = rest.find(' ');
  const std::string_view verb = rest.substr(0, verb_end);
  rest = verb_end == std::string_view::npos ? std::string_view()
                                            : rest.substr(verb_end + 1);

  Request request;
  if (verb == "PING") {
    request.verb = Request::Verb::kPing;
  } else if (verb == "STATS") {
    request.verb = Request::Verb::kStats;
  } else if (verb == "SHUTDOWN") {
    request.verb = Request::Verb::kShutdown;
  } else if (verb == "MINE") {
    request.verb = Request::Verb::kMine;
  } else if (verb == "APPEND") {
    request.verb = Request::Verb::kAppend;
  } else if (verb == "TICK") {
    request.verb = Request::Verb::kTick;
  } else {
    return InvalidArgumentError("unknown verb '" + std::string(verb) + "'");
  }
  if (request.verb == Request::Verb::kAppend) {
    // APPEND takes exactly baskets=REST-OF-LINE, nothing else.
    constexpr std::string_view kBaskets = "baskets=";
    if (rest.substr(0, kBaskets.size()) != kBaskets) {
      return InvalidArgumentError("APPEND requires a baskets= field");
    }
    request.append = std::string(rest.substr(kBaskets.size()));
    return request;
  }
  if (request.verb != Request::Verb::kMine) {
    if (!rest.empty()) {
      return InvalidArgumentError(std::string(verb) + " takes no fields");
    }
    return request;
  }

  MineFields& mine = request.mine;
  while (!rest.empty()) {
    while (!rest.empty() && rest.front() == ' ') rest.remove_prefix(1);
    if (rest.empty()) break;
    const std::size_t eq = rest.find('=');
    const std::size_t space = rest.find(' ');
    if (eq == std::string_view::npos || (space != std::string_view::npos &&
                                         space < eq)) {
      return InvalidArgumentError("malformed field near '" +
                                  std::string(rest.substr(0, space)) + "'");
    }
    const std::string_view key = rest.substr(0, eq);
    if (key == "query") {
      // query= consumes the rest of the line — no escaping needed.
      mine.query = std::string(rest.substr(eq + 1));
      break;
    }
    const std::string_view value =
        rest.substr(eq + 1, space == std::string_view::npos
                                ? std::string_view::npos
                                : space - (eq + 1));
    rest = space == std::string_view::npos ? std::string_view()
                                           : rest.substr(space + 1);
    const auto bad = [&key] {
      return InvalidArgumentError("bad value for '" + std::string(key) +
                                  "'");
    };
    std::uint64_t u64 = 0;
    double f64 = 0.0;
    if (key == "threads") {
      if (!ParseU64(value, &u64)) return bad();
      mine.threads = static_cast<std::size_t>(u64);
    } else if (key == "timeout_ms") {
      if (!ParseU64(value, &u64)) return bad();
      mine.timeout_ms = u64;
    } else if (key == "max_tables") {
      if (!ParseU64(value, &u64)) return bad();
      mine.max_tables = u64;
    } else if (key == "max_size") {
      if (!ParseU64(value, &u64)) return bad();
      mine.max_size = static_cast<std::size_t>(u64);
    } else if (key == "algorithm") {
      mine.algorithm = std::string(value);
    } else if (key == "alpha") {
      if (!ParseDouble(value, &f64)) return bad();
      mine.alpha = f64;
    } else if (key == "support") {
      if (!ParseDouble(value, &f64)) return bad();
      mine.support_frac = f64;
    } else if (key == "cell") {
      if (!ParseDouble(value, &f64)) return bad();
      mine.cell_frac = f64;
    } else if (key == "metrics") {
      if (!ParseU64(value, &u64)) return bad();
      mine.metrics = u64 != 0;
    } else if (key == "trace") {
      if (!ParseU64(value, &u64)) return bad();
      mine.trace = u64 != 0;
    } else {
      return InvalidArgumentError("unknown field '" + std::string(key) +
                                  "'");
    }
  }
  return request;
}

std::string CanonicalKey(std::uint64_t epoch, const MineFields& fields) {
  std::string key;
  key.reserve(64 + fields.query.size());
  key += "e=";
  key += std::to_string(epoch);
  key += "|a=";
  key += fields.algorithm;
  key += "|to=";
  key += std::to_string(fields.timeout_ms);
  key += "|mt=";
  key += std::to_string(fields.max_tables);
  key += "|al=";
  key += DoubleKey(fields.alpha);
  key += "|s=";
  key += DoubleKey(fields.support_frac);
  key += "|c=";
  key += DoubleKey(fields.cell_frac);
  key += "|ms=";
  key += fields.max_size.has_value() ? std::to_string(*fields.max_size)
                                     : std::string("-");
  key += "|m=";
  key += fields.metrics ? '1' : '0';
  key += "|t=";
  key += fields.trace ? '1' : '0';
  key += "|q=";
  key += fields.query;  // last: may contain '|'; nothing follows it
  return key;
}

}  // namespace service
}  // namespace ccs
