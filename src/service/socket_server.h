#ifndef CCS_SERVICE_SOCKET_SERVER_H_
#define CCS_SERVICE_SOCKET_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "service/clock.h"
#include "service/service.h"
#include "util/status.h"

namespace ccs {
namespace service {

// Unix-domain-socket front end for MiningService (DESIGN.md §13).
//
// Concurrency is bounded at two layers: `max_connections` caps the
// number of live connection threads (overflow gets an immediate
// `ERR UNAVAILABLE` frame and a close — the same degrade-deterministically
// contract as the admission controller behind it), and each connection's
// reads and writes run under FramedReader/WriteAll deadlines so a
// slow-loris or never-draining peer costs one bounded slot, never a
// wedged thread. Finished connection threads are reaped as slots free,
// so a long-lived daemon under connection churn holds at most
// `max_connections` threads at any time.
//
// Lifecycle: Start() binds and listens; Serve() accepts until a SHUTDOWN
// request or RequestShutdown() (the SIGTERM path) closes the listener,
// then drains: in-flight requests get `drain_deadline` to finish, after
// which the service's CancelToken stops them at the next batch boundary
// (partial replies still flush); finally every thread is joined and the
// socket file unlinked.
class SocketServer {
 public:
  struct Options {
    std::string socket_path;
    int backlog = 64;
    // Connection-slot table size; 0 is rejected by Start().
    std::size_t max_connections = 64;
    // Per-connection frame discipline (see framed_reader.h).
    std::size_t max_line_bytes = 1 << 20;
    std::chrono::milliseconds read_deadline{60000};
    std::chrono::milliseconds idle_deadline{30000};
    std::chrono::milliseconds write_deadline{10000};
    // Grace period between "stop accepting" and "cancel in-flight runs".
    std::chrono::milliseconds drain_deadline{10000};
    // Real-time granularity of clock/stop re-checks in reads, writes,
    // accept waits, and the drain loop.
    std::chrono::milliseconds poll_interval{20};
  };

  // `service` and `clock` are borrowed and must outlive the server;
  // nullptr clock selects the process SystemClock.
  SocketServer(MiningService* service, Options options,
               const ServiceClock* clock = nullptr)
      : service_(service),
        options_(std::move(options)),
        clock_(clock != nullptr ? clock : &DefaultServiceClock()) {}
  ~SocketServer();

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  // Binds and listens (replacing any stale socket file). kInternal with
  // the errno text on failure; kInvalidArgument for a bad path or a zero
  // slot table.
  [[nodiscard]] Status Start();

  // Accept loop + drain; returns after shutdown. Call from one thread
  // only.
  void Serve();

  // Latches service shutdown and closes the listener so Serve() falls
  // through to its drain phase. Safe from any thread and — because it
  // only touches atomics and calls shutdown()/close() — from a signal
  // handler. Idempotent.
  void RequestShutdown();

  const std::string& socket_path() const { return options_.socket_path; }

 private:
  // One connection-thread slot. `done` is the thread's completion flag:
  // written by the connection thread, read by Serve() when reaping.
  struct Slot {
    std::thread thread;
    std::atomic<bool> done{false};
  };

  void HandleConnection(int fd, Slot* slot);
  // Joins every finished slot thread; returns the number still live.
  std::size_t ReapFinished();
  // Blocks (in poll_interval ticks) until the slot table drains; after
  // drain_deadline, cancels in-flight runs through the service.
  void DrainConnections();
  // Shuts the listener down; safe from any thread, idempotent.
  void CloseListener();

  MiningService* const service_;
  const Options options_;
  const ServiceClock* const clock_;
  std::atomic<int> listen_fd_{-1};
  std::vector<std::unique_ptr<Slot>> slots_;  // touched only by Serve()
};

}  // namespace service
}  // namespace ccs

#endif  // CCS_SERVICE_SOCKET_SERVER_H_
