#ifndef CCS_SERVICE_SOCKET_SERVER_H_
#define CCS_SERVICE_SOCKET_SERVER_H_

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "service/service.h"
#include "util/status.h"

namespace ccs {
namespace service {

// Unix-domain-socket front end for MiningService: accepts connections,
// reads newline-delimited request lines, writes the service's responses
// back verbatim. One thread per connection — concurrency is bounded where
// it matters, at the service's admission controller, not at the
// transport.
//
// Lifecycle: Start() binds and listens, Serve() blocks until a SHUTDOWN
// request latches the service's shutdown flag, then joins every
// connection thread and unlinks the socket path.
class SocketServer {
 public:
  struct Options {
    std::string socket_path;
    int backlog = 64;
  };

  // `service` is borrowed and must outlive the server.
  SocketServer(MiningService* service, Options options)
      : service_(service), options_(std::move(options)) {}
  ~SocketServer();

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  // Binds and listens (replacing any stale socket file). kInternal with
  // the errno text on failure.
  [[nodiscard]] Status Start();

  // Accept loop; returns after shutdown. Call from one thread only.
  void Serve();

  const std::string& socket_path() const { return options_.socket_path; }

 private:
  void HandleConnection(int fd);
  // Shuts the listener down; safe from any thread, idempotent.
  void CloseListener();

  MiningService* const service_;
  const Options options_;
  std::atomic<int> listen_fd_{-1};
  std::vector<std::thread> connections_;  // touched only by Serve()
};

}  // namespace service
}  // namespace ccs

#endif  // CCS_SERVICE_SOCKET_SERVER_H_
