#ifndef CCS_SERVICE_PROTOCOL_H_
#define CCS_SERVICE_PROTOCOL_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

#include "util/status.h"

// ccsmined's wire protocol (DESIGN.md §12): line-delimited text, one
// request per line, one multi-line response terminated by "END".
//
//   request  := verb [' ' field]*
//   verb     := 'MINE' | 'APPEND' | 'TICK' | 'STATS' | 'PING' | 'SHUTDOWN'
//   field    := key '=' value          (no spaces, except:)
//   query    := 'query=' REST-OF-LINE  (consumes everything after '=',
//                                       spaces included — always last)
//
// MINE fields: threads, timeout_ms, max_tables, algorithm, alpha,
// support, cell, max_size, metrics, trace, query. All optional.
//
// APPEND/TICK are the streaming verbs (DESIGN.md §15), accepted only by
// a daemon started with --stream. APPEND takes exactly one field,
//   baskets= REST-OF-LINE
// holding ';'-separated baskets of space-separated item ids (e.g.
// "baskets=0 1 2;3 4"); the baskets land in the open frame and become
// visible to MINE only after a TICK. TICK takes no fields: it advances
// the window one epoch, re-evaluates, swaps in the new window handle
// (bumping the epoch every MINE memo key hangs off), and answers
//   OK epoch=… window=… added=… removed=… retained=… mode=delta|full
// followed by one 'ADD <itemset>' / 'DEL <itemset>' line per answer-set
// change, sorted, then 'END'.
//
//   response := status-line line* 'END'
//   status   := 'OK' [' ' key '=' value]* | 'ERR ' CODE ' ' message
//
// MINE answer lines are 'SET <itemset>' — the same Itemset::ToString
// rendering the one-shot CLI prints, which is what lets
// scripts/service_smoke.py diff the two byte-for-byte.

namespace ccs {
namespace service {

// Parsed MINE fields. Optionals distinguish "absent" from "explicit",
// mirroring the CLI's *_set flags: absent fields keep the query's (or the
// service's) defaults.
struct MineFields {
  std::string query;                    // query= (rest of line)
  std::string algorithm;                // algorithm= (empty: query default)
  std::size_t threads = 0;              // threads= (0: service default)
  std::uint64_t timeout_ms = 0;         // timeout_ms= (0: no deadline)
  std::uint64_t max_tables = 0;         // max_tables= (0: no budget)
  std::optional<double> alpha;          // alpha=
  std::optional<double> support_frac;   // support=
  std::optional<double> cell_frac;      // cell=
  std::optional<std::size_t> max_size;  // max_size=
  bool metrics = false;                 // metrics=1: attach METRICS line
  bool trace = false;                   // trace=1: attach TRACE line
};

struct Request {
  enum class Verb : std::uint8_t {
    kMine,
    kAppend,
    kTick,
    kStats,
    kPing,
    kShutdown
  };
  Verb verb = Verb::kPing;
  MineFields mine;     // meaningful only for kMine
  std::string append;  // kAppend: the raw baskets= payload
};

// Parses one request line. kInvalidArgument on an unknown verb, unknown
// field, malformed number, or empty line — the protocol is strict so
// client typos fail loudly instead of mining the wrong thing.
[[nodiscard]] StatusOr<Request> ParseRequestLine(const std::string& line);

// A complete error response frame: "ERR <CODE> <message>\nEND\n". Both
// the service (bad requests, failed runs) and the socket layer (deadline
// trips, oversized frames, slot exhaustion) speak errors through this one
// renderer, so clients can parse every failure the same way.
std::string ErrorFrame(const Status& status);

// The memo key for a MINE request against one database generation: the
// epoch plus every answer-affecting field. `threads` is deliberately
// excluded — answers are bit-identical across thread counts (DESIGN.md
// §7), so requests differing only in width share one memo entry.
// timeout_ms/max_tables ARE included: only unlimited requests may match
// the unlimited runs the memo stores.
std::string CanonicalKey(std::uint64_t epoch, const MineFields& fields);

}  // namespace service
}  // namespace ccs

#endif  // CCS_SERVICE_PROTOCOL_H_
