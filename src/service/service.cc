#include "service/service.h"

#include <chrono>
#include <exception>
#include <utility>

#include "core/algorithm.h"
#include "core/result.h"
#include "query/parser.h"
#include "query/query.h"
#include "util/executor_pool.h"
#include "util/fault.h"

namespace ccs {
namespace service {

namespace {

std::string ErrorResponse(const Status& status) { return ErrorFrame(status); }

// Whether a run under this control is replayable from the memo: no
// deadline and no budget. The drain CancelToken is deliberately ignored
// — it is armed on every request, and a run it actually cancelled never
// reaches the insert path (termination != kCompleted).
bool ReplayableControl(const RunControl& control) {
  return control.timeout.count() <= 0 && control.max_candidates == 0 &&
         control.max_tables_built == 0 && control.max_result_sets == 0;
}

std::string MineHeader(std::size_t num_sets, const std::string& termination,
                       bool memo_hit) {
  std::string header = "OK sets=";
  header += std::to_string(num_sets);
  header += " termination=";
  header += termination;
  header += memo_hit ? " memo=hit\n" : " memo=miss\n";
  return header;
}

}  // namespace

MiningService::MiningService(DatabaseHandle handle, ServiceOptions options,
                             const ServiceClock* clock)
    : handle_(std::move(handle)),
      options_(std::move(options)),
      admission_(options_.admission,
                 clock != nullptr ? clock : &DefaultServiceClock()),
      memo_(options_.memo) {}

std::string MiningService::HandleLine(const std::string& line) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  const StatusOr<Request> parsed = ParseRequestLine(line);
  if (!parsed.ok()) return ErrorResponse(parsed.status());
  switch (parsed.value().verb) {
    case Request::Verb::kPing:
      return "OK pong\nEND\n";
    case Request::Verb::kStats:
      return "OK stats\nSTATS " + StatsJson() + "\nEND\n";
    case Request::Verb::kShutdown:
      shutdown_.store(true, std::memory_order_release);
      return "OK bye\nEND\n";
    case Request::Verb::kMine:
      break;
  }
  // The mining path degrades to an ERR response rather than taking down
  // the daemon — one bad request must not kill the other sessions.
  try {
    return HandleMine(parsed.value().mine);
  } catch (const std::exception& e) {
    return ErrorResponse(InternalError(e.what()));
  } catch (...) {
    return ErrorResponse(InternalError("unknown exception"));
  }
}

std::string MiningService::HandleMine(const MineFields& fields) {
  // Query assembly mirrors the one-shot CLI exactly: full grammar first,
  // bare constraint language as fallback, explicit fields override the
  // with-clause — same inputs, same MiningRequest, same answer bytes.
  Query query;
  if (!fields.query.empty()) {
    StatusOr<Query> parsed = ParseQueryOrError(fields.query);
    if (parsed.ok()) {
      query = std::move(parsed).value();
    } else {
      StatusOr<ConstraintSet> constraints =
          ParseConstraintsOrError(fields.query);
      if (!constraints.ok()) return ErrorResponse(parsed.status());
      query.constraints = std::move(constraints).value();
    }
  }
  if (fields.alpha.has_value()) query.significance = *fields.alpha;
  if (fields.support_frac.has_value()) {
    query.support_fraction = *fields.support_frac;
  }
  if (fields.cell_frac.has_value()) {
    query.min_cell_fraction = *fields.cell_frac;
  }
  if (fields.max_size.has_value()) query.max_set_size = *fields.max_size;
  Algorithm algorithm = query.DefaultAlgorithm();
  if (!fields.algorithm.empty()) {
    const std::optional<Algorithm> named =
        ParseAlgorithmName(fields.algorithm);
    if (!named.has_value()) {
      return ErrorResponse(
          InvalidArgumentError("unknown algorithm '" + fields.algorithm +
                               "'"));
    }
    algorithm = *named;
  }

  const std::string key = CanonicalKey(handle_.epoch(), fields);
  // svc_memo fault: the memo becomes unavailable for this request — the
  // degraded path must still mine and answer with identical bytes, just
  // without the cache. Covers "memo storage lost" scenarios.
  const bool memo_faulted = ShouldInjectFault("svc_memo");
  if (memo_faulted) {
    metrics_.memo_faults.fetch_add(1, std::memory_order_relaxed);
  }
  // Memo lookup happens BEFORE admission: a hit is a few string copies,
  // so repeated queries stay answerable even when every slot is busy.
  if (!memo_faulted) {
    if (const std::shared_ptr<const CachedAnswer> cached =
            memo_.Lookup(key)) {
      return MineHeader(cached->num_sets, cached->termination,
                        /*memo_hit=*/true) +
             cached->body + "END\n";
    }
  }

  StatusOr<AdmissionController::Permit> permit = admission_.Admit();
  if (!permit.ok()) return ErrorResponse(permit.status());

  EngineOptions engine = options_.engine;
  if (fields.threads != 0) engine.num_threads = fields.threads;
  if (fields.trace) engine.trace = true;
  const MiningSession session(handle_, engine);
  MiningRequest request;
  request.algorithm = algorithm;
  request.options = query.ResolveOptions(handle_.database());
  request.constraints = &query.constraints;
  request.control.timeout = std::chrono::milliseconds(
      fields.timeout_ms != 0 ? fields.timeout_ms
                             : options_.default_timeout_ms);
  request.control.max_tables_built = fields.max_tables != 0
                                         ? fields.max_tables
                                         : options_.default_max_tables;
  // Every run is cancellable by the drain path: when the drain deadline
  // fires, CancelInFlight() stops the run at its next batch boundary.
  request.control.cancel = &drain_cancel_;
  const MiningResult result = session.Run(request);
  if (result.termination == Termination::kError) {
    return ErrorResponse(result.error);
  }

  CachedAnswer answer;
  answer.num_sets = result.answers.size();
  answer.termination = TerminationName(result.termination);
  for (const Itemset& s : result.answers) {
    answer.body += "SET ";
    answer.body += s.ToString();
    answer.body += '\n';
  }
  if (fields.metrics) {
    answer.body += "METRICS ";
    answer.body += result.metrics.ToJson();
    answer.body += '\n';
  }
  if (fields.trace) {
    answer.body += "TRACE ";
    answer.body += result.trace.ToJson();
    answer.body += '\n';
  }
  std::string response =
      MineHeader(answer.num_sets, answer.termination, /*memo_hit=*/false) +
      answer.body + "END\n";
  // Only unlimited completed runs are replayable: a partial answer
  // depends on where the deadline or budget landed.
  if (!memo_faulted && result.termination == Termination::kCompleted &&
      ReplayableControl(request.control)) {
    memo_.Insert(key, std::move(answer));
  }
  return response;
}

std::string MiningService::StatsJson() const {
  const AdmissionController::Stats admission = admission_.stats();
  const MemoCache::Stats memo = memo_.stats();
  const ExecutorPool& pool = ProcessExecutorPool();
  std::string json = "{\"requests\":";
  json += std::to_string(requests_.load(std::memory_order_relaxed));
  json += ",\"epoch\":";
  json += std::to_string(handle_.epoch());
  json += ",\"admission\":{\"admitted\":";
  json += std::to_string(admission.admitted);
  json += ",\"rejected\":";
  json += std::to_string(admission.rejected);
  json += ",\"queue_wait_ms\":";
  json += std::to_string(admission.queue_wait_ms_total);
  json += ",\"running\":";
  json += std::to_string(admission.running);
  json += ",\"queued\":";
  json += std::to_string(admission.queued);
  json += "},\"memo\":{\"hits\":";
  json += std::to_string(memo.hits);
  json += ",\"misses\":";
  json += std::to_string(memo.misses);
  json += ",\"insertions\":";
  json += std::to_string(memo.insertions);
  json += ",\"evictions\":";
  json += std::to_string(memo.evictions);
  json += ",\"entries\":";
  json += std::to_string(memo.entries);
  json += "},\"executor_pool\":{\"created\":";
  json += std::to_string(pool.created());
  json += ",\"reused\":";
  json += std::to_string(pool.reused());
  json += ",\"idle\":";
  json += std::to_string(pool.idle_count());
  json += "},\"service\":";
  json += metrics_.Snapshot().ToJson();
  json += "}";
  return json;
}

}  // namespace service
}  // namespace ccs
