#include "service/service.h"

#include <chrono>
#include <exception>
#include <utility>

#include "core/algorithm.h"
#include "core/result.h"
#include "query/parser.h"
#include "query/query.h"
#include "util/executor_pool.h"
#include "util/fault.h"

namespace ccs {
namespace service {

namespace {

std::string ErrorResponse(const Status& status) { return ErrorFrame(status); }

// Whether a run under this control is replayable from the memo: no
// deadline and no budget. The drain CancelToken is deliberately ignored
// — it is armed on every request, and a run it actually cancelled never
// reaches the insert path (termination != kCompleted).
bool ReplayableControl(const RunControl& control) {
  return control.timeout.count() <= 0 && control.max_candidates == 0 &&
         control.max_tables_built == 0 && control.max_result_sets == 0;
}

std::string MineHeader(std::size_t num_sets, const std::string& termination,
                       bool memo_hit) {
  std::string header = "OK sets=";
  header += std::to_string(num_sets);
  header += " termination=";
  header += termination;
  header += memo_hit ? " memo=hit\n" : " memo=miss\n";
  return header;
}

}  // namespace

MiningService::MiningService(DatabaseHandle handle, ServiceOptions options,
                             const ServiceClock* clock,
                             StreamingBackend streaming)
    : handle_(std::move(handle)),
      options_(std::move(options)),
      stream_(streaming),
      admission_(options_.admission,
                 clock != nullptr ? clock : &DefaultServiceClock()),
      memo_(options_.memo) {
  // Ticks honor the drain path like every MINE run does: when the drain
  // deadline fires, an in-flight tick stops at its next batch boundary.
  if (stream_.miner != nullptr) stream_.miner->set_cancel(&drain_cancel_);
}

std::string MiningService::HandleLine(const std::string& line) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  const StatusOr<Request> parsed = ParseRequestLine(line);
  if (!parsed.ok()) return ErrorResponse(parsed.status());
  switch (parsed.value().verb) {
    case Request::Verb::kPing:
      return "OK pong\nEND\n";
    case Request::Verb::kStats:
      return "OK stats\nSTATS " + StatsJson() + "\nEND\n";
    case Request::Verb::kShutdown:
      shutdown_.store(true, std::memory_order_release);
      return "OK bye\nEND\n";
    case Request::Verb::kMine:
    case Request::Verb::kAppend:
    case Request::Verb::kTick:
      break;
  }
  // The mining paths degrade to an ERR response rather than taking down
  // the daemon — one bad request must not kill the other sessions.
  try {
    switch (parsed.value().verb) {
      case Request::Verb::kAppend:
        return HandleAppend(parsed.value().append);
      case Request::Verb::kTick:
        return HandleTick();
      default:
        return HandleMine(parsed.value().mine);
    }
  } catch (const std::exception& e) {
    return ErrorResponse(InternalError(e.what()));
  } catch (...) {
    return ErrorResponse(InternalError("unknown exception"));
  }
}

std::string MiningService::HandleAppend(const std::string& payload) {
  if (stream_.db == nullptr) {
    return ErrorResponse(FailedPreconditionError(
        "streaming disabled; start ccsmined with --stream"));
  }
  // Parse and validate everything before touching the stream so an
  // APPEND is atomic: either every basket lands or none does.
  std::vector<Transaction> baskets;
  if (!payload.empty()) {
    Transaction basket;
    std::uint64_t value = 0;
    bool in_number = false;
    const auto flush_number = [&] {
      if (in_number) basket.push_back(static_cast<ItemId>(value));
      value = 0;
      in_number = false;
    };
    for (std::size_t i = 0; i <= payload.size(); ++i) {
      const char c = i < payload.size() ? payload[i] : ';';
      if (c >= '0' && c <= '9') {
        value = value * 10 + static_cast<std::uint64_t>(c - '0');
        in_number = true;
      } else if (c == ' ') {
        flush_number();
      } else if (c == ';') {
        flush_number();
        baskets.push_back(std::move(basket));
        basket.clear();
      } else {
        return ErrorResponse(InvalidArgumentError(
            std::string("bad character '") + c + "' in baskets"));
      }
    }
    for (const Transaction& parsed_basket : baskets) {
      for (const ItemId item : parsed_basket) {
        if (item >= stream_.db->num_items()) {
          return ErrorResponse(InvalidArgumentError(
              "item id " + std::to_string(item) + " out of range [0, " +
              std::to_string(stream_.db->num_items()) + ")"));
        }
      }
    }
  }
  std::size_t pending = 0;
  {
    const std::lock_guard<RankedMutex> lock(stream_mu_);
    for (Transaction& basket : baskets) {
      // Ids were range-checked above, so Append cannot fail.
      const Status status = stream_.db->Append(std::move(basket));
      if (!status.ok()) return ErrorResponse(status);
    }
    pending = stream_.db->pending();
  }
  return "OK appended=" + std::to_string(baskets.size()) +
         " pending=" + std::to_string(pending) + "\nEND\n";
}

std::string MiningService::HandleTick() {
  if (stream_.miner == nullptr) {
    return ErrorResponse(FailedPreconditionError(
        "streaming disabled; start ccsmined with --stream"));
  }
  // A tick is a mining run; it takes an admission slot like MINE does.
  const StatusOr<AdmissionController::Permit> permit = admission_.Admit();
  if (!permit.ok()) return ErrorResponse(permit.status());
  stream::AnswerDelta delta;
  {
    const std::lock_guard<RankedMutex> lock(stream_mu_);
    delta = stream_.miner->Tick();
    if (delta.result.termination != Termination::kError) {
      // Publish the new window; its fresh epoch retires every memo entry
      // keyed on the old one.
      const std::lock_guard<RankedMutex> handle_lock(handle_mu_);
      handle_ = stream_.miner->handle();
    }
  }
  if (delta.result.termination == Termination::kError) {
    return ErrorResponse(delta.result.error);
  }
  std::string response = "OK epoch=" + std::to_string(delta.epoch) +
                         " window=" + std::to_string(delta.window_baskets) +
                         " added=" + std::to_string(delta.added.size()) +
                         " removed=" + std::to_string(delta.removed.size()) +
                         " retained=" +
                         std::to_string(delta.retained.size()) +
                         " termination=" +
                         TerminationName(delta.result.termination) +
                         " mode=" + (delta.full_remine ? "full" : "delta") +
                         "\n";
  for (const Itemset& s : delta.added) {
    response += "ADD ";
    response += s.ToString();
    response += '\n';
  }
  for (const Itemset& s : delta.removed) {
    response += "DEL ";
    response += s.ToString();
    response += '\n';
  }
  response += "END\n";
  return response;
}

std::string MiningService::HandleMine(const MineFields& fields) {
  // Query assembly mirrors the one-shot CLI exactly: full grammar first,
  // bare constraint language as fallback, explicit fields override the
  // with-clause — same inputs, same MiningRequest, same answer bytes.
  Query query;
  if (!fields.query.empty()) {
    StatusOr<Query> parsed = ParseQueryOrError(fields.query);
    if (parsed.ok()) {
      query = std::move(parsed).value();
    } else {
      StatusOr<ConstraintSet> constraints =
          ParseConstraintsOrError(fields.query);
      if (!constraints.ok()) return ErrorResponse(parsed.status());
      query.constraints = std::move(constraints).value();
    }
  }
  if (fields.alpha.has_value()) query.significance = *fields.alpha;
  if (fields.support_frac.has_value()) {
    query.support_fraction = *fields.support_frac;
  }
  if (fields.cell_frac.has_value()) {
    query.min_cell_fraction = *fields.cell_frac;
  }
  if (fields.max_size.has_value()) query.max_set_size = *fields.max_size;
  Algorithm algorithm = query.DefaultAlgorithm();
  if (!fields.algorithm.empty()) {
    const std::optional<Algorithm> named =
        ParseAlgorithmName(fields.algorithm);
    if (!named.has_value()) {
      return ErrorResponse(
          InvalidArgumentError("unknown algorithm '" + fields.algorithm +
                               "'"));
    }
    algorithm = *named;
  }

  // One handle copy for the whole request: key, session, and options all
  // see the same generation even if a TICK swaps the member mid-request.
  const DatabaseHandle handle = this->handle();
  const std::string key = CanonicalKey(handle.epoch(), fields);
  // svc_memo fault: the memo becomes unavailable for this request — the
  // degraded path must still mine and answer with identical bytes, just
  // without the cache. Covers "memo storage lost" scenarios.
  const bool memo_faulted = ShouldInjectFault("svc_memo");
  if (memo_faulted) {
    metrics_.memo_faults.fetch_add(1, std::memory_order_relaxed);
  }
  // Memo lookup happens BEFORE admission: a hit is a few string copies,
  // so repeated queries stay answerable even when every slot is busy.
  if (!memo_faulted) {
    if (const std::shared_ptr<const CachedAnswer> cached =
            memo_.Lookup(key)) {
      return MineHeader(cached->num_sets, cached->termination,
                        /*memo_hit=*/true) +
             cached->body + "END\n";
    }
  }

  StatusOr<AdmissionController::Permit> permit = admission_.Admit();
  if (!permit.ok()) return ErrorResponse(permit.status());

  EngineOptions engine = options_.engine;
  if (fields.threads != 0) engine.num_threads = fields.threads;
  if (fields.trace) engine.trace = true;
  const MiningSession session(handle, engine);
  MiningRequest request;
  request.algorithm = algorithm;
  request.options = query.ResolveOptions(handle.database());
  request.constraints = &query.constraints;
  request.control.timeout = std::chrono::milliseconds(
      fields.timeout_ms != 0 ? fields.timeout_ms
                             : options_.default_timeout_ms);
  request.control.max_tables_built = fields.max_tables != 0
                                         ? fields.max_tables
                                         : options_.default_max_tables;
  // Every run is cancellable by the drain path: when the drain deadline
  // fires, CancelInFlight() stops the run at its next batch boundary.
  request.control.cancel = &drain_cancel_;
  const MiningResult result = session.Run(request);
  if (result.termination == Termination::kError) {
    return ErrorResponse(result.error);
  }

  CachedAnswer answer;
  answer.num_sets = result.answers.size();
  answer.termination = TerminationName(result.termination);
  for (const Itemset& s : result.answers) {
    answer.body += "SET ";
    answer.body += s.ToString();
    answer.body += '\n';
  }
  if (fields.metrics) {
    answer.body += "METRICS ";
    answer.body += result.metrics.ToJson();
    answer.body += '\n';
  }
  if (fields.trace) {
    answer.body += "TRACE ";
    answer.body += result.trace.ToJson();
    answer.body += '\n';
  }
  std::string response =
      MineHeader(answer.num_sets, answer.termination, /*memo_hit=*/false) +
      answer.body + "END\n";
  // Only unlimited completed runs are replayable: a partial answer
  // depends on where the deadline or budget landed.
  if (!memo_faulted && result.termination == Termination::kCompleted &&
      ReplayableControl(request.control)) {
    memo_.Insert(key, std::move(answer));
  }
  return response;
}

std::string MiningService::StatsJson() const {
  const AdmissionController::Stats admission = admission_.stats();
  const MemoCache::Stats memo = memo_.stats();
  const ExecutorPool& pool = ProcessExecutorPool();
  std::string json = "{\"requests\":";
  json += std::to_string(requests_.load(std::memory_order_relaxed));
  json += ",\"epoch\":";
  json += std::to_string(handle().epoch());
  json += ",\"admission\":{\"admitted\":";
  json += std::to_string(admission.admitted);
  json += ",\"rejected\":";
  json += std::to_string(admission.rejected);
  json += ",\"queue_wait_ms\":";
  json += std::to_string(admission.queue_wait_ms_total);
  json += ",\"running\":";
  json += std::to_string(admission.running);
  json += ",\"queued\":";
  json += std::to_string(admission.queued);
  json += "},\"memo\":{\"hits\":";
  json += std::to_string(memo.hits);
  json += ",\"misses\":";
  json += std::to_string(memo.misses);
  json += ",\"insertions\":";
  json += std::to_string(memo.insertions);
  json += ",\"evictions\":";
  json += std::to_string(memo.evictions);
  json += ",\"entries\":";
  json += std::to_string(memo.entries);
  json += "},\"executor_pool\":{\"created\":";
  json += std::to_string(pool.created());
  json += ",\"reused\":";
  json += std::to_string(pool.reused());
  json += ",\"idle\":";
  json += std::to_string(pool.idle_count());
  json += "},\"service\":";
  json += metrics_.Snapshot().ToJson();
  if (stream_.db != nullptr) {
    const std::lock_guard<RankedMutex> lock(stream_mu_);
    json += ",\"stream\":{\"epoch\":";
    json += std::to_string(stream_.db->epoch());
    json += ",\"window\":";
    json += std::to_string(stream_.db->window_baskets());
    json += ",\"pending\":";
    json += std::to_string(stream_.db->pending());
    json += "}";
  }
  json += "}";
  return json;
}

}  // namespace service
}  // namespace ccs
