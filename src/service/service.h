#ifndef CCS_SERVICE_SERVICE_H_
#define CCS_SERVICE_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "core/engine_options.h"
#include "core/run_control.h"
#include "core/session.h"
#include "service/admission.h"
#include "service/clock.h"
#include "service/memo.h"
#include "service/protocol.h"
#include "service/service_metrics.h"

namespace ccs {
namespace service {

struct ServiceOptions {
  // Base engine options for every session; a request's threads= field
  // overrides num_threads per request.
  EngineOptions engine;
  AdmissionController::Options admission;
  MemoCache::Options memo;
  // Daemon-level RunControl defaults (--timeout-ms / --max-tables),
  // applied to requests that leave the matching field at 0.
  std::uint64_t default_timeout_ms = 0;
  std::uint64_t default_max_tables = 0;
};

// The transport-independent core of ccsmined: one request line in, one
// complete response string out (DESIGN.md §12). socket_server.cc feeds it
// from connections; tests feed it directly — every protocol, admission,
// and memo behavior is unit-testable without a socket.
//
// Request handling for MINE, in order:
//   1. parse + build the canonical key,
//   2. memo lookup — a hit answers immediately WITHOUT consuming an
//      admission slot, so repeated queries keep working under overload,
//   3. admission (kUnavailable when saturated),
//   4. a MiningSession::Run over the shared DatabaseHandle,
//   5. memo insert, only for unlimited (no deadline/budget) completed
//      runs — partial answers are never replayed.
//
// Thread-safe: HandleLine may be called from any number of connection
// threads concurrently.
class MiningService {
 public:
  // `clock` is borrowed (nullptr: process SystemClock) and must outlive
  // the service.
  MiningService(DatabaseHandle handle, ServiceOptions options,
                const ServiceClock* clock = nullptr);

  // Handles one request line; returns the full response, every line
  // '\n'-terminated, ending with "END\n". Never throws: internal errors
  // come back as ERR lines.
  std::string HandleLine(const std::string& line);

  // Latched by a SHUTDOWN request; the server drains and exits.
  bool shutdown_requested() const {
    return shutdown_.load(std::memory_order_acquire);
  }

  // Latches the shutdown flag without a request — the SIGTERM path.
  // Async-signal-safe (one atomic store) and idempotent.
  void RequestShutdown() {
    shutdown_.store(true, std::memory_order_release);
  }

  // Cancels every in-flight and future mining run via the shared
  // CancelToken — the drain deadline's teeth. Runs stop at their next
  // batch boundary and reply with termination=cancelled partials, so
  // connection threads still unwind through the normal write path.
  void CancelInFlight() {
    metrics_.drain_cancelled_runs.fetch_add(1, std::memory_order_relaxed);
    drain_cancel_.Cancel();
  }

  // Connection-lifecycle counters, shared with the socket server.
  ServiceMetrics* metrics() { return &metrics_; }

  const DatabaseHandle& handle() const { return handle_; }

  // The STATS payload (single-line JSON); also what ccsmined writes to
  // --metrics-out on shutdown.
  std::string StatsJson() const;

 private:
  std::string HandleMine(const MineFields& fields);

  const DatabaseHandle handle_;
  const ServiceOptions options_;
  AdmissionController admission_;
  MemoCache memo_;
  ServiceMetrics metrics_;
  CancelToken drain_cancel_;
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<bool> shutdown_{false};
};

}  // namespace service
}  // namespace ccs

#endif  // CCS_SERVICE_SERVICE_H_
