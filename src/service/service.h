#ifndef CCS_SERVICE_SERVICE_H_
#define CCS_SERVICE_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>

#include "core/engine_options.h"
#include "core/run_control.h"
#include "core/session.h"
#include "service/admission.h"
#include "service/clock.h"
#include "service/memo.h"
#include "service/protocol.h"
#include "service/service_metrics.h"
#include "stream/delta_miner.h"
#include "stream/streaming_database.h"
#include "util/lock_rank.h"
#include "util/thread_annotations.h"

namespace ccs {
namespace service {

struct ServiceOptions {
  // Base engine options for every session; a request's threads= field
  // overrides num_threads per request.
  EngineOptions engine;
  AdmissionController::Options admission;
  MemoCache::Options memo;
  // Daemon-level RunControl defaults (--timeout-ms / --max-tables),
  // applied to requests that leave the matching field at 0.
  std::uint64_t default_timeout_ms = 0;
  std::uint64_t default_max_tables = 0;
};

// The transport-independent core of ccsmined: one request line in, one
// complete response string out (DESIGN.md §12). socket_server.cc feeds it
// from connections; tests feed it directly — every protocol, admission,
// and memo behavior is unit-testable without a socket.
//
// Request handling for MINE, in order:
//   1. parse + build the canonical key,
//   2. memo lookup — a hit answers immediately WITHOUT consuming an
//      admission slot, so repeated queries keep working under overload,
//   3. admission (kUnavailable when saturated),
//   4. a MiningSession::Run over the shared DatabaseHandle,
//   5. memo insert, only for unlimited (no deadline/budget) completed
//      runs — partial answers are never replayed.
//
// Borrowed streaming pieces for MiningService; both null for a static
// daemon. When set, both must outlive the service, and `miner` must be
// backed by `db`.
struct StreamingBackend {
  stream::StreamingDatabase* db = nullptr;
  stream::DeltaMiner* miner = nullptr;
};

// Streaming mode (DESIGN.md §15): constructed with a StreamingBackend,
// the service additionally accepts APPEND (baskets into the open frame)
// and TICK (advance the window one epoch, delta re-evaluate, swap in the
// new window's handle). APPEND/TICK serialize on one stream mutex — the
// stream is a single logical timeline — while MINE requests keep running
// concurrently against whichever handle is current; the epoch baked into
// every memo key is what keeps pre-tick cache entries from answering
// post-tick queries. Without a backend both verbs answer
// ERR FAILED_PRECONDITION.
//
// Thread-safe: HandleLine may be called from any number of connection
// threads concurrently.
class MiningService {
 public:
  // `clock` is borrowed (nullptr: process SystemClock) and must outlive
  // the service.
  MiningService(DatabaseHandle handle, ServiceOptions options,
                const ServiceClock* clock = nullptr,
                StreamingBackend streaming = {});

  // Handles one request line; returns the full response, every line
  // '\n'-terminated, ending with "END\n". Never throws: internal errors
  // come back as ERR lines.
  std::string HandleLine(const std::string& line);

  // Latched by a SHUTDOWN request; the server drains and exits.
  bool shutdown_requested() const {
    return shutdown_.load(std::memory_order_acquire);
  }

  // Latches the shutdown flag without a request — the SIGTERM path.
  // Async-signal-safe (one atomic store) and idempotent.
  void RequestShutdown() {
    shutdown_.store(true, std::memory_order_release);
  }

  // Cancels every in-flight and future mining run via the shared
  // CancelToken — the drain deadline's teeth. Runs stop at their next
  // batch boundary and reply with termination=cancelled partials, so
  // connection threads still unwind through the normal write path.
  void CancelInFlight() {
    metrics_.drain_cancelled_runs.fetch_add(1, std::memory_order_relaxed);
    drain_cancel_.Cancel();
  }

  // Connection-lifecycle counters, shared with the socket server.
  ServiceMetrics* metrics() { return &metrics_; }

  // The current database generation. A copy, not a reference: a TICK may
  // swap the member at any moment, and handles are cheap shared_ptr
  // copies that keep their generation alive however long the caller
  // holds on.
  DatabaseHandle handle() const CCS_EXCLUDES(handle_mu_) {
    const std::lock_guard<RankedMutex> lock(handle_mu_);
    return handle_;
  }

  // The STATS payload (single-line JSON); also what ccsmined writes to
  // --metrics-out on shutdown.
  std::string StatsJson() const;

 private:
  std::string HandleMine(const MineFields& fields);
  std::string HandleAppend(const std::string& payload);
  std::string HandleTick();

  // kServiceHandle: taken under stream_mu_ when a TICK publishes the new
  // window's handle — the one deliberate nesting in the service layer.
  mutable RankedMutex handle_mu_{LockRank::kServiceHandle};
  DatabaseHandle handle_ CCS_GUARDED_BY(handle_mu_);
  const ServiceOptions options_;
  const StreamingBackend stream_;
  // Serializes APPEND/TICK — the stream is one logical timeline.
  // mutable: StatsJson (const) reads the stream's counters under it.
  // kServiceStream: the top of the hierarchy — a TICK holds it across a
  // whole mining run (admission, pool, executor, fault all nest below).
  mutable RankedMutex stream_mu_{LockRank::kServiceStream};
  AdmissionController admission_;
  MemoCache memo_;
  ServiceMetrics metrics_;
  CancelToken drain_cancel_;
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<bool> shutdown_{false};
};

}  // namespace service
}  // namespace ccs

#endif  // CCS_SERVICE_SERVICE_H_
