#include "service/framed_reader.h"

#include <poll.h>
#include <sys/socket.h>

#include <cerrno>
#include <cstring>

#include "util/fault.h"

namespace ccs {
namespace service {

namespace {

// Bounded real-time wait for readability/writability. The deadline
// decisions themselves live with the caller (against the injected
// clock); this poll only caps how long the thread sleeps between
// re-checks. Returns true when the fd reported `events`.
bool PollOnce(int fd, short events, std::chrono::milliseconds interval) {
  pollfd pfd{};
  pfd.fd = fd;
  pfd.events = events;
  const int timeout_ms =
      interval.count() > 0 ? static_cast<int>(interval.count()) : 1;
  const int ready = ::poll(&pfd, 1, timeout_ms);
  return ready > 0 && (pfd.revents & (events | POLLHUP | POLLERR)) != 0;
}

bool DeadlinePassed(std::chrono::steady_clock::time_point now,
                    std::chrono::steady_clock::time_point since,
                    std::chrono::milliseconds budget) {
  return budget.count() > 0 && now - since >= budget;
}

}  // namespace

FramedReader::FramedReader(int fd, Options options, const ServiceClock* clock)
    : fd_(fd),
      options_(std::move(options)),
      clock_(clock != nullptr ? clock : &DefaultServiceClock()) {}

Status FramedReader::ReadLine(std::string* line, bool* eof) {
  line->clear();
  *eof = false;
  const std::chrono::steady_clock::time_point line_start = clock_->Now();
  std::chrono::steady_clock::time_point last_byte = line_start;
  while (true) {
    // Data already buffered is always served first, so a line that
    // arrived just before a deadline still gets its answer.
    const std::size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      if (newline > options_.max_line_bytes) {
        return ResourceExhaustedError(
            "request line exceeds " +
            std::to_string(options_.max_line_bytes) + " bytes");
      }
      line->assign(buffer_, 0, newline);
      buffer_.erase(0, newline + 1);
      return OkStatus();
    }
    if (buffer_.size() > options_.max_line_bytes) {
      return ResourceExhaustedError(
          "request line exceeds " +
          std::to_string(options_.max_line_bytes) + " bytes");
    }
    if (options_.stop && options_.stop()) {
      return CancelledError("server shutting down");
    }
    const std::chrono::steady_clock::time_point now = clock_->Now();
    if (DeadlinePassed(now, last_byte, options_.idle_deadline)) {
      return DeadlineExceededError(
          "idle connection: no bytes for " +
          std::to_string(options_.idle_deadline.count()) + " ms");
    }
    if (DeadlinePassed(now, line_start, options_.read_deadline)) {
      return DeadlineExceededError(
          "request line not completed within " +
          std::to_string(options_.read_deadline.count()) + " ms");
    }
    if (!PollOnce(fd_, POLLIN, options_.poll_interval)) continue;
    if (ShouldInjectFault("svc_read")) {
      return DataLossError("injected fault at svc_read (connection reset)");
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
        continue;
      }
      return DataLossError(std::string("recv: ") + std::strerror(errno));  // NOLINT(concurrency-mt-unsafe)
    }
    if (n == 0) {
      if (buffer_.empty()) {
        *eof = true;
        return OkStatus();
      }
      return DataLossError("connection closed mid-frame (" +
                           std::to_string(buffer_.size()) +
                           " bytes buffered)");
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
    last_byte = clock_->Now();
  }
}

Status WriteAll(int fd, const std::string& data, const WriteOptions& options,
                const ServiceClock* clock) {
  const ServiceClock* const c =
      clock != nullptr ? clock : &DefaultServiceClock();
  const std::chrono::steady_clock::time_point start = c->Now();
  std::size_t sent = 0;
  while (sent < data.size()) {
    if (ShouldInjectFault("svc_write")) {
      return DataLossError("injected fault at svc_write (send failed)");
    }
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno != EINTR && errno != EAGAIN &&
        errno != EWOULDBLOCK) {
      return DataLossError(std::string("send: ") + std::strerror(errno));  // NOLINT(concurrency-mt-unsafe)
    }
    // EINTR/EAGAIN (or an implausible 0): wait for writability, bounded
    // by the injected clock's deadline so a peer that never drains its
    // socket cannot park this thread forever.
    if (DeadlinePassed(c->Now(), start, options.write_deadline)) {
      return DeadlineExceededError(
          "response not flushed within " +
          std::to_string(options.write_deadline.count()) + " ms (" +
          std::to_string(sent) + "/" + std::to_string(data.size()) +
          " bytes sent)");
    }
    PollOnce(fd, POLLOUT, options.poll_interval);
  }
  return OkStatus();
}

}  // namespace service
}  // namespace ccs
