#include "service/service_metrics.h"

namespace ccs {
namespace service {

MetricsSnapshot ServiceMetrics::Snapshot() const {
  MetricsRegistry registry(/*num_shards=*/1, /*enabled=*/true);
  const struct {
    const char* name;
    const std::atomic<std::uint64_t>* value;
  } counters[] = {
      {"service.connections_accepted", &connections_accepted},
      {"service.connections_rejected", &connections_rejected},
      {"service.read_timeouts", &read_timeouts},
      {"service.oversized_frames", &oversized_frames},
      {"service.read_errors", &read_errors},
      {"service.write_errors", &write_errors},
      {"service.drains_started", &drains_started},
      {"service.drain_cancelled_runs", &drain_cancelled_runs},
      {"service.memo_faults", &memo_faults},
  };
  for (const auto& counter : counters) {
    const MetricsRegistry::Id id = registry.Counter(
        counter.name, MetricStability::kScheduleDependent);
    registry.Add(id, /*shard=*/0,
                 counter.value->load(std::memory_order_relaxed));
  }
  return registry.Snapshot();
}

}  // namespace service
}  // namespace ccs
