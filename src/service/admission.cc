#include "service/admission.h"

#include <algorithm>
#include <chrono>

namespace ccs {
namespace service {

AdmissionController::AdmissionController(Options options,
                                        const ServiceClock* clock)
    : options_(options),
      clock_(clock != nullptr ? clock : &DefaultServiceClock()) {}

StatusOr<AdmissionController::Permit> AdmissionController::Admit() {
  std::unique_lock<RankedMutex> lock(mutex_);
  if (running_ < options_.max_concurrent && queue_.empty()) {
    ++running_;
    ++admitted_;
    return Permit(this);
  }
  if (queue_.size() >= options_.max_queued) {
    ++rejected_;
    return UnavailableError("server busy: " +
                            std::to_string(options_.max_concurrent) +
                            " running, " +
                            std::to_string(queue_.size()) + " queued");
  }
  const std::uint64_t ticket = next_ticket_++;
  queue_.push_back(ticket);
  const auto enqueued_at = clock_->Now();
  slot_freed_.wait(lock, [this, ticket] {
    return running_ < options_.max_concurrent && queue_.front() == ticket;
  });
  queue_.pop_front();
  ++running_;
  ++admitted_;
  queue_wait_ms_total_ += static_cast<std::uint64_t>(
      std::max<std::int64_t>(
          0, std::chrono::duration_cast<std::chrono::milliseconds>(
                 clock_->Now() - enqueued_at)
                 .count()));
  // The new queue front (if any) may now be eligible too.
  slot_freed_.notify_all();
  return Permit(this);
}

void AdmissionController::Release() {
  {
    const std::lock_guard<RankedMutex> lock(mutex_);
    --running_;
  }
  slot_freed_.notify_all();
}

AdmissionController::Stats AdmissionController::stats() const {
  const std::lock_guard<RankedMutex> lock(mutex_);
  Stats stats;
  stats.admitted = admitted_;
  stats.rejected = rejected_;
  stats.queue_wait_ms_total = queue_wait_ms_total_;
  stats.running = running_;
  stats.queued = queue_.size();
  return stats;
}

}  // namespace service
}  // namespace ccs
