#ifndef CCS_SERVICE_CLOCK_H_
#define CCS_SERVICE_CLOCK_H_

#include <chrono>
#include <mutex>

#include "util/lock_rank.h"
#include "util/thread_annotations.h"

namespace ccs {
namespace service {

// Injected time source for the service layer. Admission control and memo
// bookkeeping must never read the wall clock directly — every time read
// goes through a ServiceClock so tests can drive queue-wait accounting
// deterministically with ManualClock. scripts/ccs_lint.py enforces this:
// raw steady_clock/system_clock ::now() calls in src/service/ are an
// error anywhere but clock.cc.
class ServiceClock {
 public:
  virtual ~ServiceClock() = default;
  virtual std::chrono::steady_clock::time_point Now() const = 0;
};

// The real clock; clock.cc is the one sanctioned ::now() call site in the
// service layer.
class SystemClock final : public ServiceClock {
 public:
  std::chrono::steady_clock::time_point Now() const override;
};

// Test clock: time moves only when told to.
class ManualClock final : public ServiceClock {
 public:
  std::chrono::steady_clock::time_point Now() const override
      CCS_EXCLUDES(mutex_) {
    const std::lock_guard<RankedMutex> lock(mutex_);
    return now_;
  }
  void Advance(std::chrono::milliseconds delta) CCS_EXCLUDES(mutex_) {
    const std::lock_guard<RankedMutex> lock(mutex_);
    now_ += delta;
  }

 private:
  // kClock: the bottom of the hierarchy — AdmissionController reads the
  // clock while holding kAdmission for queue-wait telemetry.
  mutable RankedMutex mutex_{LockRank::kClock};
  std::chrono::steady_clock::time_point now_ CCS_GUARDED_BY(mutex_){};
};

// Process-wide SystemClock, the default when no clock is injected.
const ServiceClock& DefaultServiceClock();

}  // namespace service
}  // namespace ccs

#endif  // CCS_SERVICE_CLOCK_H_
