#ifndef CCS_SERVICE_SERVICE_METRICS_H_
#define CCS_SERVICE_SERVICE_METRICS_H_

#include <atomic>
#include <cstdint>

#include "util/metrics.h"

namespace ccs {
namespace service {

// Connection-lifecycle and drain telemetry for the daemon (DESIGN.md
// §13). Connection threads are unbounded in identity (any accepted fd
// gets one), so these counters cannot use MetricsRegistry's
// one-writer-per-shard discipline directly; they are plain atomics,
// exported on demand through a MetricsRegistry snapshot so STATS and
// --metrics-out speak the same schema as the mining metrics.
//
// Counter semantics (all monotonic):
//   service.connections_accepted   fd accepted and given a slot
//   service.connections_rejected   no free slot: immediate ERR UNAVAILABLE
//   service.read_timeouts          read/idle deadline tripped (slow loris)
//   service.oversized_frames       request line over the byte limit
//   service.read_errors            transport error / mid-frame disconnect
//   service.write_errors           response write failed or timed out
//   service.drains_started         Serve() entered the drain phase
//   service.drain_cancelled_runs   drain deadline forced cancellation
//   service.memo_faults            svc_memo fault degraded a memo path
struct ServiceMetrics {
  std::atomic<std::uint64_t> connections_accepted{0};
  std::atomic<std::uint64_t> connections_rejected{0};
  std::atomic<std::uint64_t> read_timeouts{0};
  std::atomic<std::uint64_t> oversized_frames{0};
  std::atomic<std::uint64_t> read_errors{0};
  std::atomic<std::uint64_t> write_errors{0};
  std::atomic<std::uint64_t> drains_started{0};
  std::atomic<std::uint64_t> drain_cancelled_runs{0};
  std::atomic<std::uint64_t> memo_faults{0};

  // Point-in-time export through a single-shard MetricsRegistry, so the
  // values carry the same names/kinds/stability taxonomy as engine
  // metrics. Counts depend on arrival timing, hence kScheduleDependent.
  MetricsSnapshot Snapshot() const;
};

}  // namespace service
}  // namespace ccs

#endif  // CCS_SERVICE_SERVICE_METRICS_H_
