#include "service/memo.h"

namespace ccs {
namespace service {

std::shared_ptr<const CachedAnswer> MemoCache::Lookup(
    const std::string& key) {
  const std::lock_guard<RankedMutex> lock(mutex_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++hits_;
  return it->second->second;
}

void MemoCache::Insert(const std::string& key, CachedAnswer answer) {
  if (options_.max_entries == 0) return;
  auto shared = std::make_shared<const CachedAnswer>(std::move(answer));
  const std::lock_guard<RankedMutex> lock(mutex_);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->second = std::move(shared);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, std::move(shared));
  index_.emplace(key, lru_.begin());
  ++insertions_;
  if (lru_.size() > options_.max_entries) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++evictions_;
  }
}

MemoCache::Stats MemoCache::stats() const {
  const std::lock_guard<RankedMutex> lock(mutex_);
  Stats stats;
  stats.hits = hits_;
  stats.misses = misses_;
  stats.insertions = insertions_;
  stats.evictions = evictions_;
  stats.entries = lru_.size();
  return stats;
}

}  // namespace service
}  // namespace ccs
