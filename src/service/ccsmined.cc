// ccsmined: the resident mining daemon (DESIGN.md §12).
//
// Loads or generates one database at startup, freezes it behind an
// epoch-stamped DatabaseHandle (with the shared pair tier), and serves
// MINE/STATS/PING/SHUTDOWN requests over a Unix socket — see
// src/service/protocol.h for the wire grammar. Dataset and run-limit
// flags are parsed by the same src/cli layer as the one-shot CLI, so a
// daemon and a CLI started with the same flags answer identically.
//
// Usage:
//   ccsmined --socket /tmp/ccs.sock [--generate ibm|rules|zipf]
//            [--baskets N] [--items N] [--seed N]
//            [--baskets-file F --catalog-file F]
//            [--threads N] [--timeout-ms N] [--max-tables N]
//            [--max-concurrent N] [--max-queued N] [--memo-entries N]
//            [--pair-tier-mib N] [--metrics-out F]
//            [--max-connections N] [--max-line-bytes N]
//            [--read-timeout-ms N] [--idle-timeout-ms N]
//            [--write-timeout-ms N] [--drain-timeout-ms N]
//            [--stream] [--stream-fine-frames N]
//            [--stream-frames-per-level N] [--stream-levels N]
//            [--stream-delta-fraction F] [--stream-query Q]
//
// --stream starts the daemon in streaming mode (DESIGN.md §15): the data
// flags then only define the item universe and catalog (any loaded or
// generated baskets are discarded), the window starts empty, and the
// APPEND/TICK verbs feed and advance it. --stream-query fixes the query
// the per-tick DeltaMiner re-evaluates; MINE requests are independent of
// it and always run against the current window snapshot.
//
// SIGTERM/SIGINT request the same graceful drain as a SHUTDOWN request:
// stop accepting, give in-flight runs --drain-timeout-ms to finish, then
// cancel them (partial replies still flush), exit 0.
//
// Exit codes: 0 clean shutdown, 2 usage, 3 data error, 5 server error.

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>

#include <memory>

#include "cli/options.h"
#include "core/session.h"
#include "query/parser.h"
#include "query/query.h"
#include "service/service.h"
#include "service/socket_server.h"
#include "stream/delta_miner.h"
#include "stream/streaming_database.h"

namespace {

struct DaemonOptions {
  std::string socket_path;
  std::size_t max_concurrent = 4;
  std::size_t max_queued = 8;
  std::size_t memo_entries = 64;
  std::size_t pair_tier_mib = 8;
  bool stream = false;
  std::string stream_query;
  ccs::stream::StreamOptions stream_options;
  ccs::service::SocketServer::Options server;  // lifecycle knobs
};

// SIGTERM/SIGINT target. RequestShutdown only touches atomics and
// shutdown()/close(), all async-signal-safe.
ccs::service::SocketServer* g_server = nullptr;

extern "C" void HandleTerminationSignal(int /*signum*/) {
  if (g_server != nullptr) g_server->RequestShutdown();
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --socket PATH [data flags] [run flags] "
               "[service flags]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  ccs::cli::CommonOptions common;
  ccs::cli::DataOptions data;
  DaemonOptions daemon;
  for (int i = 1; i < argc; ++i) {
    switch (ccs::cli::ParseCommonFlag(argc, argv, &i, &common)) {
      case ccs::cli::FlagStatus::kHandled:
        continue;
      case ccs::cli::FlagStatus::kMissingValue:
        return Usage(argv[0]);
      case ccs::cli::FlagStatus::kNotHandled:
        break;
    }
    switch (ccs::cli::ParseDataFlag(argc, argv, &i, &data)) {
      case ccs::cli::FlagStatus::kHandled:
        continue;
      case ccs::cli::FlagStatus::kMissingValue:
        return Usage(argv[0]);
      case ccs::cli::FlagStatus::kNotHandled:
        break;
    }
    const std::string flag = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (flag == "--socket") {
      const char* value = next();
      if (value == nullptr) return Usage(argv[0]);
      daemon.socket_path = value;
    } else if (flag == "--max-concurrent") {
      const char* value = next();
      if (value == nullptr) return Usage(argv[0]);
      daemon.max_concurrent = std::strtoul(value, nullptr, 10);
    } else if (flag == "--max-queued") {
      const char* value = next();
      if (value == nullptr) return Usage(argv[0]);
      daemon.max_queued = std::strtoul(value, nullptr, 10);
    } else if (flag == "--memo-entries") {
      const char* value = next();
      if (value == nullptr) return Usage(argv[0]);
      daemon.memo_entries = std::strtoul(value, nullptr, 10);
    } else if (flag == "--pair-tier-mib") {
      const char* value = next();
      if (value == nullptr) return Usage(argv[0]);
      daemon.pair_tier_mib = std::strtoul(value, nullptr, 10);
    } else if (flag == "--max-connections") {
      const char* value = next();
      if (value == nullptr) return Usage(argv[0]);
      daemon.server.max_connections = std::strtoul(value, nullptr, 10);
    } else if (flag == "--max-line-bytes") {
      const char* value = next();
      if (value == nullptr) return Usage(argv[0]);
      daemon.server.max_line_bytes = std::strtoul(value, nullptr, 10);
    } else if (flag == "--read-timeout-ms") {
      const char* value = next();
      if (value == nullptr) return Usage(argv[0]);
      daemon.server.read_deadline =
          std::chrono::milliseconds(std::strtoul(value, nullptr, 10));
    } else if (flag == "--idle-timeout-ms") {
      const char* value = next();
      if (value == nullptr) return Usage(argv[0]);
      daemon.server.idle_deadline =
          std::chrono::milliseconds(std::strtoul(value, nullptr, 10));
    } else if (flag == "--write-timeout-ms") {
      const char* value = next();
      if (value == nullptr) return Usage(argv[0]);
      daemon.server.write_deadline =
          std::chrono::milliseconds(std::strtoul(value, nullptr, 10));
    } else if (flag == "--drain-timeout-ms") {
      const char* value = next();
      if (value == nullptr) return Usage(argv[0]);
      daemon.server.drain_deadline =
          std::chrono::milliseconds(std::strtoul(value, nullptr, 10));
    } else if (flag == "--stream") {
      daemon.stream = true;
    } else if (flag == "--stream-fine-frames") {
      const char* value = next();
      if (value == nullptr) return Usage(argv[0]);
      daemon.stream_options.fine_frames = std::strtoul(value, nullptr, 10);
    } else if (flag == "--stream-frames-per-level") {
      const char* value = next();
      if (value == nullptr) return Usage(argv[0]);
      daemon.stream_options.frames_per_level =
          std::strtoul(value, nullptr, 10);
    } else if (flag == "--stream-levels") {
      const char* value = next();
      if (value == nullptr) return Usage(argv[0]);
      daemon.stream_options.levels = std::strtoul(value, nullptr, 10);
    } else if (flag == "--stream-delta-fraction") {
      const char* value = next();
      if (value == nullptr) return Usage(argv[0]);
      daemon.stream_options.max_delta_fraction =
          std::strtod(value, nullptr);
    } else if (flag == "--stream-query") {
      const char* value = next();
      if (value == nullptr) return Usage(argv[0]);
      daemon.stream_query = value;
    } else if (flag == "--help") {
      Usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", flag.c_str());
      return Usage(argv[0]);
    }
  }
  if (daemon.socket_path.empty()) return Usage(argv[0]);
  if (daemon.max_concurrent == 0) {
    std::fprintf(stderr, "--max-concurrent must be positive\n");
    return 2;
  }

  auto loaded = ccs::cli::LoadOrGenerate(data);
  if (!loaded.ok()) {
    std::fprintf(stderr, "data: %s\n",
                 loaded.status().ToString().c_str());
    return 3;
  }
  ccs::HandleOptions handle_options;
  handle_options.pair_tier_budget_mib = daemon.pair_tier_mib;

  ccs::service::ServiceOptions service_options;
  service_options.engine.num_threads = common.threads;
  service_options.admission.max_concurrent = daemon.max_concurrent;
  service_options.admission.max_queued = daemon.max_queued;
  service_options.memo.max_entries = daemon.memo_entries;
  service_options.default_timeout_ms = common.timeout_ms;
  service_options.default_max_tables = common.max_tables;

  ccs::DatabaseHandle handle;
  std::unique_ptr<ccs::stream::StreamingDatabase> stream_db;
  std::unique_ptr<ccs::stream::DeltaMiner> miner;
  std::shared_ptr<ccs::Query> stream_query;
  ccs::service::StreamingBackend backend;
  if (daemon.stream) {
    // The dataset flags define the universe; the stream starts empty and
    // fills through APPEND. The per-tick query mirrors HandleMine's
    // assembly: full grammar first, bare constraint language as fallback.
    stream_query = std::make_shared<ccs::Query>();
    if (!daemon.stream_query.empty()) {
      ccs::StatusOr<ccs::Query> parsed =
          ccs::ParseQueryOrError(daemon.stream_query);
      if (parsed.ok()) {
        *stream_query = std::move(parsed).value();
      } else {
        ccs::StatusOr<ccs::ConstraintSet> constraints =
            ccs::ParseConstraintsOrError(daemon.stream_query);
        if (!constraints.ok()) {
          std::fprintf(stderr, "stream-query: %s\n",
                       parsed.status().ToString().c_str());
          return 2;
        }
        stream_query->constraints = std::move(constraints).value();
      }
    }
    stream_db = std::make_unique<ccs::stream::StreamingDatabase>(
        loaded.value().db.num_items(), std::move(loaded.value().catalog),
        daemon.stream_options);
    handle = stream_db->SnapshotHandle(handle_options);
    miner = std::make_unique<ccs::stream::DeltaMiner>(
        stream_db.get(),
        [stream_query](const ccs::TransactionDatabase& db) {
          ccs::MiningRequest request;
          request.algorithm = stream_query->DefaultAlgorithm();
          request.options = stream_query->ResolveOptions(db);
          request.constraints = &stream_query->constraints;
          return request;
        },
        service_options.engine, handle_options);
    backend.db = stream_db.get();
    backend.miner = miner.get();
  } else {
    handle = ccs::DatabaseHandle::Create(std::move(loaded.value().db),
                                         std::move(loaded.value().catalog),
                                         handle_options);
  }
  ccs::service::MiningService service(handle, service_options, nullptr,
                                      backend);

  ccs::service::SocketServer::Options server_options = daemon.server;
  server_options.socket_path = daemon.socket_path;
  ccs::service::SocketServer server(&service, server_options);
  if (const ccs::Status started = server.Start(); !started.ok()) {
    std::fprintf(stderr, "server: %s\n", started.ToString().c_str());
    return 5;
  }
  // SIGTERM/SIGINT drain like a SHUTDOWN request instead of killing
  // in-flight runs mid-write.
  g_server = &server;
  std::signal(SIGTERM, HandleTerminationSignal);
  std::signal(SIGINT, HandleTerminationSignal);
  // The readiness line scripts/service_smoke.py waits for.
  std::printf("ccsmined listening on %s (epoch %llu, %zu baskets, "
              "%zu items)\n",
              server.socket_path().c_str(),
              static_cast<unsigned long long>(handle.epoch()),
              handle.database().num_transactions(),
              handle.database().num_items());
  std::fflush(stdout);
  server.Serve();

  if (!common.metrics_out.empty()) {
    const std::string json = service.StatsJson() + "\n";
    std::FILE* f = std::fopen(common.metrics_out.c_str(), "w");
    if (f == nullptr ||
        std::fwrite(json.data(), 1, json.size(), f) != json.size() ||
        std::fclose(f) != 0) {
      std::fprintf(stderr, "cannot write %s\n", common.metrics_out.c_str());
      return 3;
    }
  }
  std::printf("ccsmined: clean shutdown\n");
  return 0;
}
