#include "stats/chi_squared.h"

#include <cmath>

#include "stats/gamma.h"
#include "util/check.h"

namespace ccs::stats {

double ChiSquaredCdf(double x, int df) {
  CCS_CHECK_GE(df, 1);
  if (x <= 0.0) return 0.0;
  return RegularizedGammaP(0.5 * df, 0.5 * x);
}

double ChiSquaredSf(double x, int df) {
  CCS_CHECK_GE(df, 1);
  if (x <= 0.0) return 1.0;
  return RegularizedGammaQ(0.5 * df, 0.5 * x);
}

double ChiSquaredQuantile(double prob, int df) {
  CCS_CHECK_GE(df, 1);
  CCS_CHECK(prob < 1.0);
  if (prob <= 0.0) return 0.0;
  // Bracket the root: the mean of chi-squared(df) is df, the variance 2*df;
  // grow the upper bound geometrically until the CDF exceeds prob.
  double lo = 0.0;
  double hi = df + 10.0 * std::sqrt(2.0 * df) + 10.0;
  while (ChiSquaredCdf(hi, df) < prob) hi *= 2.0;
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (ChiSquaredCdf(mid, df) < prob) {
      lo = mid;
    } else {
      hi = mid;
    }
    if (hi - lo < 1e-12 * (1.0 + hi)) break;
  }
  return 0.5 * (lo + hi);
}

ChiSquaredCriticalValues::ChiSquaredCriticalValues(double alpha)
    : alpha_(alpha) {
  CCS_CHECK(alpha >= 0.0);
  CCS_CHECK(alpha < 1.0);
  for (bool& c : cached_) c = false;
  for (double& v : cache_) v = 0.0;
}

double ChiSquaredCriticalValues::Get(int df) {
  CCS_CHECK_GE(df, 1);
  if (df <= kCacheSize) {
    if (!cached_[df]) {
      cache_[df] = ChiSquaredQuantile(alpha_, df);
      cached_[df] = true;
    }
    return cache_[df];
  }
  return ChiSquaredQuantile(alpha_, df);
}

}  // namespace ccs::stats
