#ifndef CCS_STATS_FISHER_H_
#define CCS_STATS_FISHER_H_

#include <cstdint>

namespace ccs::stats {

// Fisher's exact test for 2x2 contingency tables.
//
// Brin et al. note the chi-squared approximation is only trustworthy when
// the expected cell counts are large enough (the Cochran rule implemented
// by ContingencyTable::SatisfiesCochranRule). For sparse pairs — low
// supports or tiny samples — Fisher's exact test gives the exact
// hypergeometric p-value with fixed margins, at O(min(row, column)) cost,
// and the correlation judge can fall back to it.
//
// Layout matches ContingencyTable masks for a pair {x, y}:
//   a = both present, b = only x, c = only y, d = neither.
//
// Returns the two-sided p-value: the total probability of all tables with
// the observed margins whose point probability does not exceed the
// observed table's (the standard "sum of small p" definition).
double FisherExactTwoSided(std::uint64_t a, std::uint64_t b,
                           std::uint64_t c, std::uint64_t d);

// One-sided p-value for positive association: probability of observing
// `a` or more joint occurrences under independence with fixed margins.
double FisherExactGreater(std::uint64_t a, std::uint64_t b, std::uint64_t c,
                          std::uint64_t d);

}  // namespace ccs::stats

#endif  // CCS_STATS_FISHER_H_
