#ifndef CCS_STATS_CONTINGENCY_H_
#define CCS_STATS_CONTINGENCY_H_

#include <cstdint>
#include <vector>

namespace ccs::stats {

// Full contingency table over k boolean variables (the items of an itemset).
//
// The table has 2^k cells, one per minterm. Cell `mask` counts the
// transactions in which exactly the items with set bits in `mask` are
// present and the others absent (bit j of the mask corresponds to variable
// j). For {coffee, doughnuts} and the paper's Figure B, mask 0b11 is the
// (coffee, doughnuts) cell, mask 0b01 is (coffee, no doughnuts), etc.
//
// Expected counts are computed under the full-independence hypothesis:
//   E(mask) = N * prod_j (p_j if bit j set else 1 - p_j)
// with p_j the marginal frequency of variable j. The chi-squared statistic
// is sum over cells of (O - E)^2 / E.
class ContingencyTable {
 public:
  // `cells` must have size 2^num_vars, num_vars in [1, 20].
  ContingencyTable(int num_vars, std::vector<std::uint64_t> cells);

  int num_vars() const { return num_vars_; }
  std::size_t num_cells() const { return cells_.size(); }

  // Total number of transactions (sum over all cells).
  std::uint64_t total() const { return total_; }

  // Observed count of the given minterm.
  std::uint64_t cell(std::uint32_t mask) const;

  // Number of transactions containing variable `var` (its marginal count).
  std::uint64_t MarginalCount(int var) const;

  // Expected count of the minterm under independence. Zero when any
  // involved marginal probability is degenerate (0 or 1) in the relevant
  // direction, or when the table is empty.
  double ExpectedCount(std::uint32_t mask) const;

  // Pearson chi-squared statistic against full independence. Cells with
  // expected count 0 contribute nothing when the observed count is also 0
  // and +infinity otherwise (a degenerate table maximally contradicts
  // independence). Returns 0 for an empty table.
  double ChiSquaredStatistic() const;

  // Degrees of freedom of the full-independence test: 2^k - k - 1 for
  // k >= 2. For k = 1 (no independence hypothesis to test) returns 1 so the
  // caller never divides by zero; sets of size 1 are never correlated.
  int FullIndependenceDf() const;

  // Fraction of cells whose observed count is >= min_support.
  double SupportedCellFraction(std::uint64_t min_support) const;

  // CT-support predicate of Brin et al.: at least `min_fraction` of the
  // cells have observed count >= min_support.
  bool IsCtSupported(std::uint64_t min_support, double min_fraction) const;

  // Cochran's validity rule for the chi-squared approximation (which Brin
  // et al. flag as a prerequisite of the test): every cell's expected
  // count is at least 1 and at least 80% of cells have expected count at
  // least 5. When this fails on a 2x2 table, Fisher's exact test
  // (stats/fisher.h) is the reliable alternative.
  bool SatisfiesCochranRule() const;

 private:
  int num_vars_;
  std::vector<std::uint64_t> cells_;
  std::vector<std::uint64_t> marginals_;
  std::uint64_t total_ = 0;
};

}  // namespace ccs::stats

#endif  // CCS_STATS_CONTINGENCY_H_
