#ifndef CCS_STATS_CHI_SQUARED_H_
#define CCS_STATS_CHI_SQUARED_H_

namespace ccs::stats {

// Chi-squared distribution with `df` degrees of freedom (df >= 1).
//
// The correlation test of Brin et al. declares an itemset correlated at
// significance level alpha when its chi-squared statistic is at least
// ChiSquaredQuantile(alpha, df): the value x with CDF(x) = alpha,
// equivalently the (1 - alpha) upper-tail critical value. The p-value of an
// observed statistic is ChiSquaredSf(statistic, df).

// CDF: probability that a chi-squared(df) variate is <= x.
double ChiSquaredCdf(double x, int df);

// Survival function 1 - CDF (the p-value of an observed statistic).
double ChiSquaredSf(double x, int df);

// Inverse CDF. Requires 0 <= prob < 1; returns 0 for prob <= 0.
// Solved by bracketed bisection on the monotone CDF to ~1e-10 accuracy.
double ChiSquaredQuantile(double prob, int df);

// Cached critical value lookup for hot paths: quantile(alpha, df) with the
// cache keyed on df for a fixed alpha. Thread-compatible (not thread-safe);
// the mining engine owns one instance per run.
class ChiSquaredCriticalValues {
 public:
  // alpha in [0, 1): confidence level of the test.
  explicit ChiSquaredCriticalValues(double alpha);

  double alpha() const { return alpha_; }

  // Critical value for `df` degrees of freedom (df >= 1). Cached for
  // df <= kCacheSize and computed on demand otherwise.
  double Get(int df);

 private:
  static constexpr int kCacheSize = 64;
  double alpha_;
  double cache_[kCacheSize + 1];
  bool cached_[kCacheSize + 1];
};

}  // namespace ccs::stats

#endif  // CCS_STATS_CHI_SQUARED_H_
