#include "stats/contingency.h"

#include <limits>

#include "util/check.h"

namespace ccs::stats {

ContingencyTable::ContingencyTable(int num_vars,
                                   std::vector<std::uint64_t> cells)
    : num_vars_(num_vars), cells_(std::move(cells)) {
  CCS_CHECK_GE(num_vars_, 1);
  CCS_CHECK_LE(num_vars_, 20);
  CCS_CHECK_EQ(cells_.size(), std::size_t{1} << num_vars_);
  marginals_.assign(num_vars_, 0);
  for (std::size_t mask = 0; mask < cells_.size(); ++mask) {
    total_ += cells_[mask];
    for (int v = 0; v < num_vars_; ++v) {
      if (mask & (std::size_t{1} << v)) marginals_[v] += cells_[mask];
    }
  }
}

std::uint64_t ContingencyTable::cell(std::uint32_t mask) const {
  CCS_CHECK_LT(mask, cells_.size());
  return cells_[mask];
}

std::uint64_t ContingencyTable::MarginalCount(int var) const {
  CCS_CHECK_GE(var, 0);
  CCS_CHECK_LT(var, num_vars_);
  return marginals_[var];
}

double ContingencyTable::ExpectedCount(std::uint32_t mask) const {
  CCS_CHECK_LT(mask, cells_.size());
  if (total_ == 0) return 0.0;
  const double n = static_cast<double>(total_);
  double expected = n;
  for (int v = 0; v < num_vars_; ++v) {
    const double p = static_cast<double>(marginals_[v]) / n;
    expected *= (mask & (std::uint32_t{1} << v)) ? p : (1.0 - p);
  }
  return expected;
}

double ContingencyTable::ChiSquaredStatistic() const {
  if (total_ == 0) return 0.0;
  double chi2 = 0.0;
  for (std::size_t mask = 0; mask < cells_.size(); ++mask) {
    const double expected = ExpectedCount(static_cast<std::uint32_t>(mask));
    const double observed = static_cast<double>(cells_[mask]);
    if (expected <= 0.0) {
      if (observed > 0.0) return std::numeric_limits<double>::infinity();
      continue;
    }
    const double diff = observed - expected;
    chi2 += diff * diff / expected;
  }
  return chi2;
}

int ContingencyTable::FullIndependenceDf() const {
  if (num_vars_ < 2) return 1;
  return static_cast<int>((std::size_t{1} << num_vars_)) - num_vars_ - 1;
}

double ContingencyTable::SupportedCellFraction(
    std::uint64_t min_support) const {
  std::size_t supported = 0;
  for (std::uint64_t c : cells_) {
    if (c >= min_support) ++supported;
  }
  return static_cast<double>(supported) / static_cast<double>(cells_.size());
}

bool ContingencyTable::IsCtSupported(std::uint64_t min_support,
                                     double min_fraction) const {
  return SupportedCellFraction(min_support) >= min_fraction;
}

bool ContingencyTable::SatisfiesCochranRule() const {
  std::size_t at_least_five = 0;
  for (std::size_t mask = 0; mask < cells_.size(); ++mask) {
    const double expected = ExpectedCount(static_cast<std::uint32_t>(mask));
    if (expected < 1.0) return false;
    if (expected >= 5.0) ++at_least_five;
  }
  return static_cast<double>(at_least_five) >=
         0.8 * static_cast<double>(cells_.size());
}

}  // namespace ccs::stats
