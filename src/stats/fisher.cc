#include "stats/fisher.h"

#include <algorithm>
#include <cmath>

#include "stats/gamma.h"

namespace ccs::stats {
namespace {

double LogFactorial(std::uint64_t n) {
  return LogGamma(static_cast<double>(n) + 1.0);
}

// Log point-probability of a 2x2 table with entries (a, b, c, d) under the
// hypergeometric distribution with fixed margins.
double LogHypergeometric(std::uint64_t a, std::uint64_t b, std::uint64_t c,
                         std::uint64_t d) {
  const std::uint64_t n = a + b + c + d;
  return LogFactorial(a + b) + LogFactorial(c + d) + LogFactorial(a + c) +
         LogFactorial(b + d) - LogFactorial(n) - LogFactorial(a) -
         LogFactorial(b) - LogFactorial(c) - LogFactorial(d);
}

}  // namespace

double FisherExactTwoSided(std::uint64_t a, std::uint64_t b,
                           std::uint64_t c, std::uint64_t d) {
  const std::uint64_t n = a + b + c + d;
  if (n == 0) return 1.0;
  const std::uint64_t row = a + b;
  const std::uint64_t col = a + c;
  const std::uint64_t lo = col > (n - row) ? col - (n - row) : 0;
  const std::uint64_t hi = std::min(row, col);
  const double log_observed = LogHypergeometric(a, b, c, d);
  double p = 0.0;
  for (std::uint64_t x = lo; x <= hi; ++x) {
    const double log_prob =
        LogHypergeometric(x, row - x, col - x, n - row - col + x);
    // Tolerance absorbs round-off so the observed table itself counts.
    if (log_prob <= log_observed + 1e-9) p += std::exp(log_prob);
  }
  return std::min(p, 1.0);
}

double FisherExactGreater(std::uint64_t a, std::uint64_t b, std::uint64_t c,
                          std::uint64_t d) {
  const std::uint64_t n = a + b + c + d;
  if (n == 0) return 1.0;
  const std::uint64_t row = a + b;
  const std::uint64_t col = a + c;
  const std::uint64_t hi = std::min(row, col);
  double p = 0.0;
  for (std::uint64_t x = a; x <= hi; ++x) {
    p += std::exp(
        LogHypergeometric(x, row - x, col - x, n - row - col + x));
  }
  return std::min(p, 1.0);
}

}  // namespace ccs::stats
