#include "stats/gamma.h"

#include <cmath>
#include <limits>

#include "util/check.h"

namespace ccs::stats {
namespace {

constexpr int kMaxIterations = 500;
constexpr double kEpsilon = 1e-15;
constexpr double kTiny = 1e-300;

// P(a, x) by the power series gamma(a,x) = e^-x x^a sum x^n / (a)_{n+1}.
// Converges quickly for x < a + 1.
double GammaPSeries(double a, double x) {
  double ap = a;
  double sum = 1.0 / a;
  double del = sum;
  for (int n = 0; n < kMaxIterations; ++n) {
    ap += 1.0;
    del *= x / ap;
    sum += del;
    if (std::fabs(del) < std::fabs(sum) * kEpsilon) break;
  }
  return sum * std::exp(-x + a * std::log(x) - LogGamma(a));
}

// Q(a, x) by the Lentz continued fraction. Converges quickly for x > a + 1.
double GammaQContinuedFraction(double a, double x) {
  double b = x + 1.0 - a;
  double c = 1.0 / kTiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= kMaxIterations; ++i) {
    const double an = -i * (i - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = b + an / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEpsilon) break;
  }
  return std::exp(-x + a * std::log(x) - LogGamma(a)) * h;
}

}  // namespace

double LogGamma(double x) {
  CCS_CHECK(x > 0.0);
  // Lanczos approximation, g = 7, n = 9.
  static constexpr double kCoefficients[] = {
      0.99999999999980993,  676.5203681218851,     -1259.1392167224028,
      771.32342877765313,   -176.61502916214059,   12.507343278686905,
      -0.13857109526572012, 9.9843695780195716e-6, 1.5056327351493116e-7};
  if (x < 0.5) {
    // Reflection formula keeps the approximation in its accurate range.
    return std::log(M_PI / std::sin(M_PI * x)) - LogGamma(1.0 - x);
  }
  const double z = x - 1.0;
  double sum = kCoefficients[0];
  for (int i = 1; i < 9; ++i) sum += kCoefficients[i] / (z + i);
  const double t = z + 7.5;
  return 0.5 * std::log(2.0 * M_PI) + (z + 0.5) * std::log(t) - t +
         std::log(sum);
}

double RegularizedGammaP(double a, double x) {
  CCS_CHECK(a > 0.0);
  CCS_CHECK(x >= 0.0);
  if (x == 0.0) return 0.0;
  if (std::isinf(x)) return 1.0;
  if (x < a + 1.0) return GammaPSeries(a, x);
  return 1.0 - GammaQContinuedFraction(a, x);
}

double RegularizedGammaQ(double a, double x) {
  CCS_CHECK(a > 0.0);
  CCS_CHECK(x >= 0.0);
  if (x == 0.0) return 1.0;
  if (std::isinf(x)) return 0.0;
  if (x < a + 1.0) return 1.0 - GammaPSeries(a, x);
  return GammaQContinuedFraction(a, x);
}

}  // namespace ccs::stats
