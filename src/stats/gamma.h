#ifndef CCS_STATS_GAMMA_H_
#define CCS_STATS_GAMMA_H_

namespace ccs::stats {

// Natural log of the Gamma function for x > 0 (Lanczos approximation;
// relative error below 1e-13 over the domain used here).
double LogGamma(double x);

// Regularized lower incomplete gamma function
//   P(a, x) = gamma(a, x) / Gamma(a),  a > 0, x >= 0.
// Computed by the series expansion for x < a + 1 and by the continued
// fraction for the complement otherwise (Numerical Recipes gammp/gammq
// scheme). Monotone non-decreasing in x, with P(a, 0) = 0 and
// P(a, inf) = 1.
double RegularizedGammaP(double a, double x);

// Regularized upper incomplete gamma function Q(a, x) = 1 - P(a, x).
double RegularizedGammaQ(double a, double x);

}  // namespace ccs::stats

#endif  // CCS_STATS_GAMMA_H_
