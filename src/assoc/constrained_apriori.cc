#include "assoc/constrained_apriori.h"

#include <algorithm>

#include "core/candidate_gen.h"
#include "util/check.h"
#include "util/stopwatch.h"

namespace ccs {

AprioriResult MineConstrainedApriori(const TransactionDatabase& db,
                                     const ItemCatalog& catalog,
                                     const ConstraintSet& constraints,
                                     const AprioriOptions& options) {
  CCS_CHECK(db.finalized());
  CCS_CHECK_GE(options.max_set_size, 1u);
  CCS_CHECK_LE(options.max_set_size, Itemset::kMaxSize);
  Stopwatch timer;
  AprioriResult result;

  auto is_answer = [&](const Itemset& s) {
    return constraints.TestMonotone(s.span(), catalog) &&
           constraints.TestUnclassified(s.span(), catalog);
  };

  // GOOD1: frequency plus the anti-monotone singleton filter.
  std::vector<ItemId> universe;
  for (ItemId i = 0; i < db.num_items(); ++i) {
    ++result.stats.Level(1).candidates;
    if (db.ItemSupport(i) < options.min_support) continue;
    if (!constraints.SingletonSatisfiesAntiMonotone(i, catalog)) {
      ++result.stats.Level(1).pruned_before_ct;
      continue;
    }
    universe.push_back(i);
    const Itemset s{i};
    if (is_answer(s)) {
      result.frequent.push_back({s, db.ItemSupport(i)});
      ++result.stats.Level(1).sig_added;
    }
  }

  std::vector<Itemset> frontier;
  for (ItemId i : universe) frontier.push_back(Itemset{i});
  DynamicBitset scratch;
  for (std::size_t k = 2;
       k <= options.max_set_size && !frontier.empty(); ++k) {
    const ItemsetSet closed(frontier.begin(), frontier.end());
    const std::vector<Itemset> candidates =
        k == 2 ? AllPairs(universe)
               : ExtendSeeds(frontier, universe,
                             [&closed](const Itemset& s) {
                               return AllCoSubsetsIn(s, closed);
                             });
    LevelStats& level = result.stats.Level(k);
    frontier.clear();
    for (const Itemset& s : candidates) {
      ++level.candidates;
      // Anti-monotone constraints gate the (comparatively expensive)
      // support count and the whole subtree above s.
      if (!constraints.TestAntiMonotoneNonSuccinct(s.span(), catalog)) {
        ++level.pruned_before_ct;
        continue;
      }
      scratch = db.tidset(s[0]);
      for (std::size_t i = 1; i + 1 < s.size(); ++i) {
        scratch.AndWith(db.tidset(s[i]));
      }
      const std::uint64_t support =
          DynamicBitset::CountAnd(scratch, db.tidset(s[s.size() - 1]));
      ++level.tables_built;
      if (support < options.min_support) continue;
      frontier.push_back(s);
      if (is_answer(s)) {
        ++level.sig_added;
        result.frequent.push_back({s, support});
      } else {
        ++level.notsig_added;
      }
    }
  }

  std::sort(result.frequent.begin(), result.frequent.end(),
            [](const FrequentItemset& a, const FrequentItemset& b) {
              return a.items < b.items;
            });
  result.stats.elapsed_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace ccs
