#ifndef CCS_ASSOC_CONSTRAINED_APRIORI_H_
#define CCS_ASSOC_CONSTRAINED_APRIORI_H_

#include "assoc/apriori.h"
#include "constraints/constraint_set.h"
#include "txn/catalog.h"

namespace ccs {

// Constrained frequent-set mining in the style of Ng et al. (SIGMOD'98) —
// the CAP framework the paper builds on. The answer set is *all* frequent
// sets that satisfy the constraints (no minimality: associations use all
// frequent sets for rule formation), so unlike the BMS family both
// directions of Theorem 1 are moot here and monotone constraints cannot
// prune the frontier, only the output:
//
//  * succinct anti-monotone constraints shrink the item universe before
//    any counting (the GOOD1 filter is exact for them);
//  * non-succinct anti-monotone constraints are tested per candidate
//    before its support is counted, and failing sets leave the frontier
//    (their supersets fail too);
//  * monotone and unclassified constraints gate the output only — a
//    frequent set failing them stays on the frontier because a superset
//    may yet satisfy them.
//
// Returned sets are exactly { S : S frequent & S satisfies C }, restricted
// to the frequent-item universe as everywhere in this library.
AprioriResult MineConstrainedApriori(const TransactionDatabase& db,
                                     const ItemCatalog& catalog,
                                     const ConstraintSet& constraints,
                                     const AprioriOptions& options);

}  // namespace ccs

#endif  // CCS_ASSOC_CONSTRAINED_APRIORI_H_
