#ifndef CCS_ASSOC_FPGROWTH_H_
#define CCS_ASSOC_FPGROWTH_H_

#include "assoc/apriori.h"

namespace ccs {

// FP-growth (Han, Pei, Yin): frequent-itemset mining without candidate
// generation. Transactions are compressed into a prefix tree (FP-tree)
// whose paths share common frequent prefixes; mining proceeds by
// extracting each item's conditional pattern base and recursing on the
// conditional tree. Two database passes total — everything after that is
// tree work.
//
// Shipped as the third frequent-set engine (with Apriori and Eclat) so the
// association substrate matches what an adopting user expects from an
// itemset-mining library; all three are pinned to each other in tests.
//
// Stats mapping: tables_built counts conditional trees constructed,
// candidates counts header-table entries examined per recursion depth
// (depth + 1 is reported as the "level").
AprioriResult MineFpGrowth(const TransactionDatabase& db,
                           const AprioriOptions& options);

}  // namespace ccs

#endif  // CCS_ASSOC_FPGROWTH_H_
