#include "assoc/fpgrowth.h"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "util/check.h"
#include "util/stopwatch.h"

namespace ccs {
namespace {

// A weighted transaction of a conditional pattern base: the path items
// (any order) and how many original transactions it stands for.
struct WeightedItems {
  std::vector<ItemId> items;
  std::uint64_t count = 1;
};

// Prefix tree over item-ranked transactions with per-item node chains.
class FpTree {
 public:
  // Builds the tree from weighted transactions, keeping only items whose
  // weighted support reaches min_support. Items are ranked by descending
  // support (ties by id) so popular items share prefixes.
  FpTree(const std::vector<WeightedItems>& transactions,
         std::uint64_t min_support) {
    std::unordered_map<ItemId, std::uint64_t> support;
    for (const auto& txn : transactions) {
      for (ItemId i : txn.items) support[i] += txn.count;
    }
    std::vector<std::pair<ItemId, std::uint64_t>> ranked;
    for (const auto& [item, s] : support) {
      if (s >= min_support) ranked.emplace_back(item, s);
    }
    std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
      if (a.second != b.second) return a.second > b.second;
      return a.first < b.first;
    });
    for (std::size_t r = 0; r < ranked.size(); ++r) {
      rank_[ranked[r].first] = r;
    }
    // header_ holds items in ascending support order for the mining loop
    // (least frequent first, the classic bottom-up order).
    for (auto it = ranked.rbegin(); it != ranked.rend(); ++it) {
      header_.push_back({it->first, it->second, -1});
    }

    nodes_.push_back({kInvalidItem, 0, -1, -1});  // root
    children_.emplace_back();
    for (const auto& txn : transactions) {
      std::vector<ItemId> kept;
      for (ItemId i : txn.items) {
        if (rank_.contains(i)) kept.push_back(i);
      }
      std::sort(kept.begin(), kept.end(), [this](ItemId a, ItemId b) {
        return rank_.at(a) < rank_.at(b);
      });
      Insert(kept, txn.count);
    }
  }

  bool empty() const { return header_.empty(); }
  std::size_t num_header_items() const { return header_.size(); }
  ItemId header_item(std::size_t i) const { return header_[i].item; }
  std::uint64_t header_support(std::size_t i) const {
    return header_[i].support;
  }

  // Conditional pattern base of the i-th header item: for every node of
  // that item, the path of ancestors (excluding the item and the root)
  // weighted by the node's count.
  std::vector<WeightedItems> PatternBase(std::size_t i) const {
    std::vector<WeightedItems> base;
    for (int node = header_[i].first_node; node != -1;
         node = nodes_[node].next_same_item) {
      WeightedItems path;
      path.count = nodes_[node].count;
      for (int up = nodes_[node].parent; up > 0; up = nodes_[up].parent) {
        path.items.push_back(nodes_[up].item);
      }
      if (!path.items.empty()) base.push_back(std::move(path));
    }
    return base;
  }

 private:
  struct Node {
    ItemId item;
    std::uint64_t count;
    int parent;
    int next_same_item;
  };
  struct HeaderEntry {
    ItemId item;
    std::uint64_t support;
    int first_node;
  };

  void Insert(const std::vector<ItemId>& items, std::uint64_t count) {
    int node = 0;
    for (ItemId item : items) {
      const auto it = children_[node].find(item);
      if (it != children_[node].end()) {
        node = it->second;
        nodes_[node].count += count;
        continue;
      }
      const int child = static_cast<int>(nodes_.size());
      nodes_.push_back({item, count, node, -1});
      // emplace_back may reallocate children_, so index it afresh below.
      children_.emplace_back();
      children_[node].emplace(item, child);
      // Thread into the item's chain.
      for (auto& entry : header_) {
        if (entry.item == item) {
          nodes_[child].next_same_item = entry.first_node;
          entry.first_node = child;
          break;
        }
      }
      node = child;
    }
  }

  std::vector<Node> nodes_;
  std::vector<std::map<ItemId, int>> children_;
  std::vector<HeaderEntry> header_;
  std::unordered_map<ItemId, std::size_t> rank_;
};

class FpGrowthMiner {
 public:
  FpGrowthMiner(const AprioriOptions& options, AprioriResult* result)
      : options_(options), result_(result) {}

  void Mine(const FpTree& tree, const Itemset& suffix) {
    // Note: stats.Level() may grow the level vector during the recursive
    // call below, so the reference must be re-fetched per use rather than
    // held across iterations.
    const std::size_t level = suffix.size() + 1;
    for (std::size_t i = 0; i < tree.num_header_items(); ++i) {
      ++result_->stats.Level(level).candidates;
      const Itemset extended = suffix.WithItem(tree.header_item(i));
      ++result_->stats.Level(level).sig_added;
      result_->frequent.push_back({extended, tree.header_support(i)});
      if (extended.size() >= options_.max_set_size) continue;
      const auto base = tree.PatternBase(i);
      if (base.empty()) continue;
      const FpTree conditional(base, options_.min_support);
      ++result_->stats.Level(level).tables_built;
      if (!conditional.empty()) Mine(conditional, extended);
    }
  }

 private:
  const AprioriOptions& options_;
  AprioriResult* result_;
};

}  // namespace

AprioriResult MineFpGrowth(const TransactionDatabase& db,
                           const AprioriOptions& options) {
  CCS_CHECK(db.finalized());
  CCS_CHECK_GE(options.max_set_size, 1u);
  CCS_CHECK_LE(options.max_set_size, Itemset::kMaxSize);
  Stopwatch timer;
  AprioriResult result;
  std::vector<WeightedItems> transactions;
  transactions.reserve(db.num_transactions());
  for (std::size_t t = 0; t < db.num_transactions(); ++t) {
    if (db.transaction(t).empty()) continue;
    transactions.push_back({db.transaction(t), 1});
  }
  const FpTree tree(transactions, options.min_support);
  FpGrowthMiner(options, &result).Mine(tree, Itemset{});
  std::sort(result.frequent.begin(), result.frequent.end(),
            [](const FrequentItemset& a, const FrequentItemset& b) {
              return a.items < b.items;
            });
  result.stats.elapsed_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace ccs
