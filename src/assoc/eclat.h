#ifndef CCS_ASSOC_ECLAT_H_
#define CCS_ASSOC_ECLAT_H_

#include "assoc/apriori.h"

namespace ccs {

// Eclat (Zaki et al.): depth-first frequent-itemset mining over the
// vertical layout. Where Apriori re-intersects every candidate's items
// from scratch level by level, Eclat extends one prefix at a time and
// reuses the prefix's materialized tid-set, so each frequent set costs a
// single AND with the new item's column. Same answer set as MineApriori —
// the test suite pins the two against each other — with a different cost
// profile: memory for the prefix stack instead of repeated intersection
// work, and no candidate-generation hash sets.
//
// Stats mapping: tables_built counts tid-set intersections (the database
// work unit, as in Apriori), candidates counts extension attempts.
AprioriResult MineEclat(const TransactionDatabase& db,
                        const AprioriOptions& options);

}  // namespace ccs

#endif  // CCS_ASSOC_ECLAT_H_
