#ifndef CCS_ASSOC_RULES_H_
#define CCS_ASSOC_RULES_H_

#include <string>
#include <vector>

#include "assoc/apriori.h"

namespace ccs {

// Association rules X => Y formed from frequent itemsets (Agrawal et al.,
// SIGMOD'93): X and Y disjoint and non-empty, support = supp(X u Y),
// confidence = supp(X u Y) / supp(X). Lift compares the rule's confidence
// with Y's unconditional frequency — the bridge to the correlation view
// the paper advocates: lift ~ 1 rules are exactly the statistically
// uninteresting ones a chi-squared test rejects.
struct AssociationRule {
  Itemset antecedent;
  Itemset consequent;
  std::uint64_t support = 0;
  double confidence = 0.0;
  double lift = 0.0;

  // "{1, 2} => {3}  (support 120, confidence 0.82, lift 1.7)"
  std::string ToString() const;
};

struct RuleOptions {
  double min_confidence = 0.5;
  // Total transactions in the mined database; needed for lift. Must be
  // > 0 when lift values are wanted; 0 leaves lift at 0.
  std::uint64_t num_transactions = 0;
};

// Generates all rules meeting min_confidence from the frequent sets in
// `mined` (which must include all subsets of every set — true for Apriori
// output, not necessarily for constrained output; see
// GenerateRulesPartial). Rules are ordered by (antecedent, consequent).
std::vector<AssociationRule> GenerateRules(const AprioriResult& mined,
                                           const RuleOptions& options);

// Rule generation tolerant of incomplete subset information (constrained
// mining may have pruned an antecedent): splits whose antecedent support
// is unknown are skipped rather than miscomputed.
std::vector<AssociationRule> GenerateRulesPartial(const AprioriResult& mined,
                                                  const RuleOptions& options);

}  // namespace ccs

#endif  // CCS_ASSOC_RULES_H_
