#include "assoc/rules.h"

#include <algorithm>
#include <cstdio>

#include "util/check.h"

namespace ccs {
namespace {

// Enumerates every (antecedent, consequent) bipartition of `set` via the
// 2^|set| - 2 proper non-empty item masks.
template <typename Fn>
void ForEachSplit(const Itemset& set, Fn fn) {
  const std::uint32_t full = (1u << set.size()) - 1;
  for (std::uint32_t mask = 1; mask < full; ++mask) {
    Itemset antecedent;
    Itemset consequent;
    for (std::size_t i = 0; i < set.size(); ++i) {
      if (mask & (1u << i)) {
        antecedent = antecedent.WithItem(set[i]);
      } else {
        consequent = consequent.WithItem(set[i]);
      }
    }
    fn(antecedent, consequent);
  }
}

std::vector<AssociationRule> Generate(const AprioriResult& mined,
                                      const RuleOptions& options,
                                      bool allow_missing_subsets) {
  std::vector<AssociationRule> rules;
  for (const FrequentItemset& f : mined.frequent) {
    if (f.items.size() < 2) continue;
    ForEachSplit(f.items, [&](const Itemset& antecedent,
                              const Itemset& consequent) {
      const std::uint64_t antecedent_support = mined.SupportOf(antecedent);
      if (antecedent_support == 0) {
        CCS_CHECK(allow_missing_subsets);
        return;
      }
      const double confidence = static_cast<double>(f.support) /
                                static_cast<double>(antecedent_support);
      if (confidence < options.min_confidence) return;
      AssociationRule rule;
      rule.antecedent = antecedent;
      rule.consequent = consequent;
      rule.support = f.support;
      rule.confidence = confidence;
      if (options.num_transactions > 0) {
        const std::uint64_t consequent_support = mined.SupportOf(consequent);
        if (consequent_support > 0) {
          const double consequent_frequency =
              static_cast<double>(consequent_support) /
              static_cast<double>(options.num_transactions);
          rule.lift = confidence / consequent_frequency;
        } else if (!allow_missing_subsets) {
          CCS_CHECK(false);  // Apriori output must contain all subsets.
        }
      }
      rules.push_back(std::move(rule));
    });
  }
  std::sort(rules.begin(), rules.end(),
            [](const AssociationRule& a, const AssociationRule& b) {
              if (!(a.antecedent == b.antecedent)) {
                return a.antecedent < b.antecedent;
              }
              return a.consequent < b.consequent;
            });
  return rules;
}

}  // namespace

std::string AssociationRule::ToString() const {
  char buf[96];
  std::snprintf(buf, sizeof(buf),
                "  (support %llu, confidence %.2f, lift %.2f)",
                static_cast<unsigned long long>(support), confidence, lift);
  return antecedent.ToString() + " => " + consequent.ToString() + buf;
}

std::vector<AssociationRule> GenerateRules(const AprioriResult& mined,
                                           const RuleOptions& options) {
  return Generate(mined, options, /*allow_missing_subsets=*/false);
}

std::vector<AssociationRule> GenerateRulesPartial(
    const AprioriResult& mined, const RuleOptions& options) {
  return Generate(mined, options, /*allow_missing_subsets=*/true);
}

}  // namespace ccs
