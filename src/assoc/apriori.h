#ifndef CCS_ASSOC_APRIORI_H_
#define CCS_ASSOC_APRIORI_H_

#include <cstdint>
#include <vector>

#include "core/itemset.h"
#include "core/result.h"
#include "txn/database.h"

namespace ccs {

// Classical frequent-itemset mining (Agrawal & Srikant, VLDB'94) over the
// same vertical-bitmap substrate the correlation miners use. This is the
// framework the paper positions itself against: associations use frequency
// as the significance measure where correlations use the chi-squared test
// plus CT-support, and association mining returns *all* frequent sets
// (rules are formed from them) where correlation mining returns minimal
// sets.
//
// ccsmine ships it both as the reference comparator for the paper's
// motivation ("associations are not appropriate for all situations") and
// as the base of the CAP-style constrained frequent-set miner.

struct FrequentItemset {
  Itemset items;
  std::uint64_t support = 0;

  friend bool operator==(const FrequentItemset& a, const FrequentItemset& b) {
    return a.items == b.items && a.support == b.support;
  }
};

struct AprioriResult {
  // All frequent itemsets of size >= 1, sorted by Itemset order.
  std::vector<FrequentItemset> frequent;
  MiningStats stats;

  // Support of `s` if frequent, 0 otherwise (binary search).
  std::uint64_t SupportOf(const Itemset& s) const;
};

struct AprioriOptions {
  // Absolute minimum support count.
  std::uint64_t min_support = 1;
  // Level cap (inclusive).
  std::size_t max_set_size = Itemset::kMaxSize;
};

// Level-wise Apriori. Candidate supports are counted by intersecting
// tid-sets (the support of S equals the popcount of the AND of its items'
// tid-sets), with the standard all-subsets-frequent candidate rule.
AprioriResult MineApriori(const TransactionDatabase& db,
                          const AprioriOptions& options);

}  // namespace ccs

#endif  // CCS_ASSOC_APRIORI_H_
