#include "assoc/eclat.h"

#include <algorithm>

#include "util/check.h"
#include "util/stopwatch.h"

namespace ccs {
namespace {

class EclatMiner {
 public:
  EclatMiner(const TransactionDatabase& db, const AprioriOptions& options,
             AprioriResult* result)
      : db_(db), options_(options), result_(result) {}

  void Run() {
    std::vector<ItemId> frequent_items;
    for (ItemId i = 0; i < db_.num_items(); ++i) {
      ++result_->stats.Level(1).candidates;
      if (db_.ItemSupport(i) >= options_.min_support) {
        frequent_items.push_back(i);
        result_->frequent.push_back({Itemset{i}, db_.ItemSupport(i)});
        ++result_->stats.Level(1).sig_added;
      }
    }
    if (options_.max_set_size < 2) return;
    scratch_.resize(options_.max_set_size);
    // Depth-first from each frequent item; extensions use larger ids
    // only, so each set is visited exactly once.
    for (std::size_t idx = 0; idx < frequent_items.size(); ++idx) {
      Extend(Itemset{frequent_items[idx]},
             db_.tidset(frequent_items[idx]), frequent_items, idx + 1, 0);
    }
  }

 private:
  // prefix has the tid-set `tids` (at scratch depth `depth`); try all
  // extensions from universe[from..].
  void Extend(const Itemset& prefix, const DynamicBitset& tids,
              const std::vector<ItemId>& universe, std::size_t from,
              std::size_t depth) {
    // stats.Level() may grow the level vector inside the recursion below;
    // re-fetch the reference per use instead of holding it across calls.
    const std::size_t level = prefix.size() + 1;
    for (std::size_t i = from; i < universe.size(); ++i) {
      const ItemId item = universe[i];
      ++result_->stats.Level(level).candidates;
      ++result_->stats.Level(level).tables_built;
      const std::uint64_t support =
          DynamicBitset::CountAnd(tids, db_.tidset(item));
      if (support < options_.min_support) continue;
      const Itemset extended = prefix.WithItem(item);
      ++result_->stats.Level(level).sig_added;
      result_->frequent.push_back({extended, support});
      if (extended.size() < options_.max_set_size) {
        DynamicBitset& child = scratch_[depth];
        child.AssignAnd(tids, db_.tidset(item));
        Extend(extended, child, universe, i + 1, depth + 1);
      }
    }
  }

  const TransactionDatabase& db_;
  const AprioriOptions& options_;
  AprioriResult* result_;
  std::vector<DynamicBitset> scratch_;
};

}  // namespace

AprioriResult MineEclat(const TransactionDatabase& db,
                        const AprioriOptions& options) {
  CCS_CHECK(db.finalized());
  CCS_CHECK_GE(options.max_set_size, 1u);
  CCS_CHECK_LE(options.max_set_size, Itemset::kMaxSize);
  Stopwatch timer;
  AprioriResult result;
  EclatMiner(db, options, &result).Run();
  std::sort(result.frequent.begin(), result.frequent.end(),
            [](const FrequentItemset& a, const FrequentItemset& b) {
              return a.items < b.items;
            });
  result.stats.elapsed_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace ccs
