#include "assoc/apriori.h"

#include <algorithm>

#include "core/candidate_gen.h"
#include "util/check.h"
#include "util/stopwatch.h"

namespace ccs {

std::uint64_t AprioriResult::SupportOf(const Itemset& s) const {
  const auto it = std::lower_bound(
      frequent.begin(), frequent.end(), s,
      [](const FrequentItemset& f, const Itemset& key) {
        return f.items < key;
      });
  if (it == frequent.end() || !(it->items == s)) return 0;
  return it->support;
}

AprioriResult MineApriori(const TransactionDatabase& db,
                          const AprioriOptions& options) {
  CCS_CHECK(db.finalized());
  CCS_CHECK_GE(options.max_set_size, 1u);
  CCS_CHECK_LE(options.max_set_size, Itemset::kMaxSize);
  Stopwatch timer;
  AprioriResult result;

  // Level 1 from the precomputed item supports.
  std::vector<ItemId> frequent_items;
  for (ItemId i = 0; i < db.num_items(); ++i) {
    const std::uint64_t support = db.ItemSupport(i);
    ++result.stats.Level(1).candidates;
    if (support >= options.min_support) {
      frequent_items.push_back(i);
      result.frequent.push_back({Itemset{i}, support});
      ++result.stats.Level(1).sig_added;
    }
  }

  // Levels >= 2: count candidate supports by tid-set intersection. The
  // running intersection for each seed is reused across its extensions by
  // recomputing per candidate; at our scales the AND dominates anyway and
  // stays O(|D|/64) words per set.
  std::vector<Itemset> frontier;
  for (ItemId i : frequent_items) frontier.push_back(Itemset{i});
  DynamicBitset scratch;
  for (std::size_t k = 2;
       k <= options.max_set_size && !frontier.empty(); ++k) {
    const ItemsetSet closed(frontier.begin(), frontier.end());
    const std::vector<Itemset> candidates =
        k == 2 ? AllPairs(frequent_items)
               : ExtendSeeds(frontier, frequent_items,
                             [&closed](const Itemset& s) {
                               return AllCoSubsetsIn(s, closed);
                             });
    LevelStats& level = result.stats.Level(k);
    frontier.clear();
    for (const Itemset& s : candidates) {
      ++level.candidates;
      scratch = db.tidset(s[0]);
      for (std::size_t i = 1; i + 1 < s.size(); ++i) {
        scratch.AndWith(db.tidset(s[i]));
      }
      const std::uint64_t support =
          DynamicBitset::CountAnd(scratch, db.tidset(s[s.size() - 1]));
      ++level.tables_built;  // one intersection pass per candidate
      if (support >= options.min_support) {
        ++level.sig_added;
        result.frequent.push_back({s, support});
        frontier.push_back(s);
      }
    }
  }

  std::sort(result.frequent.begin(), result.frequent.end(),
            [](const FrequentItemset& a, const FrequentItemset& b) {
              return a.items < b.items;
            });
  result.stats.elapsed_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace ccs
