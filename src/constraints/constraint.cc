#include "constraints/constraint.h"

namespace ccs {

const char* MonotonicityName(Monotonicity m) {
  switch (m) {
    case Monotonicity::kMonotone:
      return "monotone";
    case Monotonicity::kAntiMonotone:
      return "anti-monotone";
    case Monotonicity::kBoth:
      return "both";
    case Monotonicity::kNeither:
      return "neither";
  }
  return "unknown";
}

bool Constraint::ItemAllowed(ItemId item, const ItemCatalog& catalog) const {
  const ItemId singleton[] = {item};
  return Test(ItemSpan(singleton, 1), catalog);
}

bool Constraint::IsNecessaryWitness(ItemId item,
                                    const ItemCatalog& catalog) const {
  const ItemId singleton[] = {item};
  return Test(ItemSpan(singleton, 1), catalog);
}

}  // namespace ccs
