#ifndef CCS_CONSTRAINTS_AGG_CONSTRAINT_H_
#define CCS_CONSTRAINTS_AGG_CONSTRAINT_H_

#include <string>
#include <vector>

#include "constraints/constraint.h"

namespace ccs {

// SQL-style aggregation constraints agg(S.price) cmp c (Lemma 1, case 1).
enum class Agg { kMin, kMax, kSum, kCount, kAvg };
enum class Cmp { kLe, kGe };

const char* AggName(Agg agg);
const char* CmpName(Cmp cmp);

// Classification from Lemma 1 for a non-negative attribute domain:
//
//   agg    cmp   monotonicity    succinct
//   ----   ---   -------------   --------
//   max    <=    anti-monotone   yes   (S subset-of {i : price_i <= c})
//   max    >=    monotone        yes   (one witness with price >= c)
//   min    >=    anti-monotone   yes   (S subset-of {i : price_i >= c})
//   min    <=    monotone        yes   (one witness with price <= c)
//   sum    <=    anti-monotone   no
//   sum    >=    monotone        no
//   count  <=    anti-monotone   no
//   count  >=    monotone        no
//   avg    any   neither         no    (Section 6; post-filter only)
//
// Empty-set conventions (the mining engines never test the empty set, but
// Test() is total): sum = 0, count = 0, min = +inf, max = -inf; avg on the
// empty set is defined as unsatisfied.
class AggConstraint final : public Constraint {
 public:
  AggConstraint(Agg agg, Cmp cmp, double threshold);

  bool Test(ItemSpan items, const ItemCatalog& catalog) const override;
  Monotonicity monotonicity() const override { return monotonicity_; }
  bool is_succinct() const override { return succinct_; }
  std::string ToString() const override;
  bool has_single_witness_form() const override {
    return succinct_ && monotonicity_ == Monotonicity::kMonotone;
  }

  Agg agg() const { return agg_; }
  Cmp cmp() const { return cmp_; }
  double threshold() const { return threshold_; }

 private:
  Agg agg_;
  Cmp cmp_;
  double threshold_;
  Monotonicity monotonicity_;
  bool succinct_;
};

// Convenience factories reading like the paper: MaxLe(50) is
// max(S.price) <= 50.
ConstraintPtr MinLe(double c);
ConstraintPtr MinGe(double c);
ConstraintPtr MaxLe(double c);
ConstraintPtr MaxGe(double c);
ConstraintPtr SumLe(double c);
ConstraintPtr SumGe(double c);
ConstraintPtr CountLe(double c);
ConstraintPtr CountGe(double c);
ConstraintPtr AvgLe(double c);
ConstraintPtr AvgGe(double c);

// Rewrites agg(S.price) = c as the pair {agg <= c, agg >= c} — one conjunct
// monotone, the other anti-monotone (Section 2.2). Not defined for kAvg.
std::vector<ConstraintPtr> MakeEqualityConstraint(Agg agg, double c);

}  // namespace ccs

#endif  // CCS_CONSTRAINTS_AGG_CONSTRAINT_H_
