#ifndef CCS_CONSTRAINTS_SET_CONSTRAINT_H_
#define CCS_CONSTRAINTS_SET_CONSTRAINT_H_

#include <string>
#include <vector>

#include "constraints/agg_constraint.h"
#include "constraints/constraint.h"

namespace ccs {

// Class and domain constraints (Lemma 1, cases 2 and 3) over the type
// attribute and over raw item ids. All constraints here are succinct; the
// solution space of each is generated from item-level selections.
//
// Type sets are stored as names and resolved against the catalog passed to
// Test(), so a constraint object is catalog-independent. A name the catalog
// has never seen resolves to "no item has this type".

// CS subset-of S.type — S must contain at least one item of every type in
// CS. Monotone, succinct; single-witness form only when |CS| = 1
// (footnote 5 of the paper). IsNecessaryWitness exposes the first type's
// class as the pushable necessary condition.
class TypeContainsConstraint final : public Constraint {
 public:
  explicit TypeContainsConstraint(std::vector<std::string> types);

  bool Test(ItemSpan items, const ItemCatalog& catalog) const override;
  Monotonicity monotonicity() const override {
    return Monotonicity::kMonotone;
  }
  bool is_succinct() const override { return true; }
  std::string ToString() const override;
  bool has_single_witness_form() const override { return types_.size() == 1; }
  bool IsNecessaryWitness(ItemId item,
                          const ItemCatalog& catalog) const override;

 private:
  std::vector<std::string> types_;  // sorted, unique
};

// S.type subset-of CS — every item's type must be in CS. Anti-monotone,
// succinct.
class TypeSubsetConstraint final : public Constraint {
 public:
  explicit TypeSubsetConstraint(std::vector<std::string> types);

  bool Test(ItemSpan items, const ItemCatalog& catalog) const override;
  Monotonicity monotonicity() const override {
    return Monotonicity::kAntiMonotone;
  }
  bool is_succinct() const override { return true; }
  std::string ToString() const override;

 private:
  std::vector<std::string> types_;  // sorted, unique
};

// CS intersect S.type = empty — no item of S has a type in CS (the paper's
// "snacks not-in S.type"). Anti-monotone, succinct.
class TypeDisjointConstraint final : public Constraint {
 public:
  explicit TypeDisjointConstraint(std::vector<std::string> types);

  bool Test(ItemSpan items, const ItemCatalog& catalog) const override;
  Monotonicity monotonicity() const override {
    return Monotonicity::kAntiMonotone;
  }
  bool is_succinct() const override { return true; }
  std::string ToString() const override;

 private:
  std::vector<std::string> types_;  // sorted, unique
};

// CS intersect S.type != empty — S contains at least one item whose type is
// in CS. Monotone, succinct, single-witness.
class TypeIntersectsConstraint final : public Constraint {
 public:
  explicit TypeIntersectsConstraint(std::vector<std::string> types);

  bool Test(ItemSpan items, const ItemCatalog& catalog) const override;
  Monotonicity monotonicity() const override {
    return Monotonicity::kMonotone;
  }
  bool is_succinct() const override { return true; }
  std::string ToString() const override;
  bool has_single_witness_form() const override { return true; }

 private:
  std::vector<std::string> types_;  // sorted, unique
};

// count(distinct S.type) cmp c — e.g. the introduction's |S.type| = 1
// "single department" query is TypeCount <= 1 (>= 1 is vacuous for
// non-empty sets). "<=" is anti-monotone, ">=" monotone; not succinct.
class TypeCountConstraint final : public Constraint {
 public:
  TypeCountConstraint(Cmp cmp, std::size_t count);

  bool Test(ItemSpan items, const ItemCatalog& catalog) const override;
  Monotonicity monotonicity() const override;
  bool is_succinct() const override { return false; }
  std::string ToString() const override;

 private:
  bool less_equal_;
  std::size_t count_;
};

// S must include every item in `items` (domain constraint CS subset-of S).
// Monotone, succinct; single-witness when |CS| = 1.
class ContainsItemsConstraint final : public Constraint {
 public:
  explicit ContainsItemsConstraint(std::vector<ItemId> items);

  bool Test(ItemSpan items, const ItemCatalog& catalog) const override;
  Monotonicity monotonicity() const override {
    return Monotonicity::kMonotone;
  }
  bool is_succinct() const override { return true; }
  std::string ToString() const override;
  bool has_single_witness_form() const override {
    return required_.size() == 1;
  }
  bool IsNecessaryWitness(ItemId item,
                          const ItemCatalog& catalog) const override;

 private:
  std::vector<ItemId> required_;  // sorted, unique
};

// S must avoid every item in `items` (S intersect CS = empty).
// Anti-monotone, succinct.
class ExcludesItemsConstraint final : public Constraint {
 public:
  explicit ExcludesItemsConstraint(std::vector<ItemId> items);

  bool Test(ItemSpan items, const ItemCatalog& catalog) const override;
  Monotonicity monotonicity() const override {
    return Monotonicity::kAntiMonotone;
  }
  bool is_succinct() const override { return true; }
  std::string ToString() const override;

 private:
  std::vector<ItemId> excluded_;  // sorted, unique
};

}  // namespace ccs

#endif  // CCS_CONSTRAINTS_SET_CONSTRAINT_H_
