#include "constraints/agg_constraint.h"

#include <cstdio>
#include <limits>

#include "util/check.h"

namespace ccs {
namespace {

Monotonicity Classify(Agg agg, Cmp cmp) {
  switch (agg) {
    case Agg::kMax:
    case Agg::kSum:
    case Agg::kCount:
      // These aggregates are non-decreasing under item addition (price is
      // non-negative), so "<= c" is violated only by growing: anti-monotone.
      return cmp == Cmp::kLe ? Monotonicity::kAntiMonotone
                             : Monotonicity::kMonotone;
    case Agg::kMin:
      // min is non-increasing under item addition.
      return cmp == Cmp::kGe ? Monotonicity::kAntiMonotone
                             : Monotonicity::kMonotone;
    case Agg::kAvg:
      return Monotonicity::kNeither;
  }
  return Monotonicity::kNeither;
}

bool IsSuccinctAgg(Agg agg) {
  // Only the order statistics have powerset-generated solution spaces;
  // sum/count/avg constrain a combination of items, not their identities.
  return agg == Agg::kMin || agg == Agg::kMax;
}

}  // namespace

const char* AggName(Agg agg) {
  switch (agg) {
    case Agg::kMin:
      return "min";
    case Agg::kMax:
      return "max";
    case Agg::kSum:
      return "sum";
    case Agg::kCount:
      return "count";
    case Agg::kAvg:
      return "avg";
  }
  return "?";
}

const char* CmpName(Cmp cmp) { return cmp == Cmp::kLe ? "<=" : ">="; }

AggConstraint::AggConstraint(Agg agg, Cmp cmp, double threshold)
    : agg_(agg),
      cmp_(cmp),
      threshold_(threshold),
      monotonicity_(Classify(agg, cmp)),
      succinct_(IsSuccinctAgg(agg)) {}

bool AggConstraint::Test(ItemSpan items, const ItemCatalog& catalog) const {
  double value = 0.0;
  switch (agg_) {
    case Agg::kMin: {
      value = std::numeric_limits<double>::infinity();
      for (ItemId i : items) value = std::min(value, catalog.price(i));
      break;
    }
    case Agg::kMax: {
      value = -std::numeric_limits<double>::infinity();
      for (ItemId i : items) value = std::max(value, catalog.price(i));
      break;
    }
    case Agg::kSum: {
      for (ItemId i : items) value += catalog.price(i);
      break;
    }
    case Agg::kCount: {
      value = static_cast<double>(items.size());
      break;
    }
    case Agg::kAvg: {
      if (items.empty()) return false;
      for (ItemId i : items) value += catalog.price(i);
      value /= static_cast<double>(items.size());
      break;
    }
  }
  return cmp_ == Cmp::kLe ? value <= threshold_ : value >= threshold_;
}

std::string AggConstraint::ToString() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", threshold_);
  if (agg_ == Agg::kCount) {
    return std::string("count(S) ") + CmpName(cmp_) + " " + buf;
  }
  return std::string(AggName(agg_)) + "(S.price) " + CmpName(cmp_) + " " +
         buf;
}

ConstraintPtr MinLe(double c) {
  return std::make_unique<AggConstraint>(Agg::kMin, Cmp::kLe, c);
}
ConstraintPtr MinGe(double c) {
  return std::make_unique<AggConstraint>(Agg::kMin, Cmp::kGe, c);
}
ConstraintPtr MaxLe(double c) {
  return std::make_unique<AggConstraint>(Agg::kMax, Cmp::kLe, c);
}
ConstraintPtr MaxGe(double c) {
  return std::make_unique<AggConstraint>(Agg::kMax, Cmp::kGe, c);
}
ConstraintPtr SumLe(double c) {
  return std::make_unique<AggConstraint>(Agg::kSum, Cmp::kLe, c);
}
ConstraintPtr SumGe(double c) {
  return std::make_unique<AggConstraint>(Agg::kSum, Cmp::kGe, c);
}
ConstraintPtr CountLe(double c) {
  return std::make_unique<AggConstraint>(Agg::kCount, Cmp::kLe, c);
}
ConstraintPtr CountGe(double c) {
  return std::make_unique<AggConstraint>(Agg::kCount, Cmp::kGe, c);
}
ConstraintPtr AvgLe(double c) {
  return std::make_unique<AggConstraint>(Agg::kAvg, Cmp::kLe, c);
}
ConstraintPtr AvgGe(double c) {
  return std::make_unique<AggConstraint>(Agg::kAvg, Cmp::kGe, c);
}

std::vector<ConstraintPtr> MakeEqualityConstraint(Agg agg, double c) {
  CCS_CHECK(agg != Agg::kAvg);
  std::vector<ConstraintPtr> out;
  out.push_back(std::make_unique<AggConstraint>(agg, Cmp::kLe, c));
  out.push_back(std::make_unique<AggConstraint>(agg, Cmp::kGe, c));
  return out;
}

}  // namespace ccs
