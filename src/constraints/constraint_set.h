#ifndef CCS_CONSTRAINTS_CONSTRAINT_SET_H_
#define CCS_CONSTRAINTS_CONSTRAINT_SET_H_

#include <memory>
#include <string>
#include <vector>

#include "constraints/constraint.h"

namespace ccs {

// The conjunction C of a constrained correlation query, split (Section 3.1,
// modification I) into
//   C_ams  — anti-monotone and succinct,
//   C_am~s — anti-monotone, not succinct,
//   C_ms   — monotone and succinct,
//   C_m~s  — monotone, not succinct,
// plus a bucket for constraints that are neither monotone nor anti-monotone
// (e.g. avg; Section 6), which only the post-filtering algorithms accept.
//
// Pushing policy for monotone succinct constraints: among those with a
// single-witness form, one is *pushed* — its witness class feeds the L1+ /
// L1- split of BMS++ / BMS** candidate generation and the constraint is
// thereby fully enforced by construction of the candidates... almost: a
// pushed constraint is also re-checked with the deferred monotone tests
// (cheap CPU work) so that correctness never depends on the pruning
// machinery. Monotone succinct constraints needing several witnesses are
// deferred like C_m~s, per footnote 5 of the paper; their first witness
// class still contributes to the necessary-condition filter used by BMS**
// (footnote 7).
class ConstraintSet {
 public:
  ConstraintSet() = default;

  ConstraintSet(ConstraintSet&&) = default;
  ConstraintSet& operator=(ConstraintSet&&) = default;
  ConstraintSet(const ConstraintSet&) = delete;
  ConstraintSet& operator=(const ConstraintSet&) = delete;

  // Takes ownership. Constraints may be added in any order.
  void Add(ConstraintPtr constraint);

  // Convenience for MakeEqualityConstraint-style vectors.
  void AddAll(std::vector<ConstraintPtr> constraints);

  std::size_t size() const { return constraints_.size(); }
  bool empty() const { return constraints_.empty(); }
  const Constraint& at(std::size_t i) const;

  // --- Conjunction tests ---

  // All constraints (the full C).
  bool TestAll(ItemSpan items, const ItemCatalog& catalog) const;

  // All anti-monotone constraints (C_am = C_ams and C_am~s).
  bool TestAntiMonotone(ItemSpan items, const ItemCatalog& catalog) const;

  // Only the non-succinct anti-monotone constraints (C_am~s) — the ones
  // BMS++ must test per candidate because they cannot be folded into the
  // item universe.
  bool TestAntiMonotoneNonSuccinct(ItemSpan items,
                                   const ItemCatalog& catalog) const;

  // All monotone constraints (C_m).
  bool TestMonotone(ItemSpan items, const ItemCatalog& catalog) const;

  // Monotone constraints that are not fully enforced by the pushed witness
  // filter: C_m~s plus multi-witness succinct ones plus (for safety) the
  // pushed one itself.
  bool TestMonotoneDeferred(ItemSpan items, const ItemCatalog& catalog) const;

  // Constraints that are neither monotone nor anti-monotone.
  bool TestUnclassified(ItemSpan items, const ItemCatalog& catalog) const;

  // --- Classification summary ---

  bool has_unclassified() const { return !unclassified_.empty(); }
  bool has_monotone() const { return !monotone_.empty(); }
  bool has_anti_monotone() const { return !anti_monotone_.empty(); }

  // True when every constraint is anti-monotone (possibly also monotone,
  // i.e. kBoth). In that case VALID_MIN = MIN_VALID (Theorem 1.2).
  bool AllAntiMonotone() const;

  // --- Item-level filters (preprocessing, Section 3.1 I) ---

  // GOOD1 membership: the singleton {item} satisfies every anti-monotone
  // constraint. (For succinct anti-monotone constraints this is exact
  // pruning; for non-succinct ones it is sound filtering.)
  bool SingletonSatisfiesAntiMonotone(ItemId item,
                                      const ItemCatalog& catalog) const;

  // Whether a monotone succinct constraint was pushed; when true,
  // IsWitnessItem() defines the L1+ class.
  bool has_pushed_witness() const { return pushed_index_ >= 0; }

  // Index (into at()) of the pushed constraint, or -1.
  int pushed_constraint_index() const { return pushed_index_; }

  // Membership in the pushed constraint's witness class. Always false when
  // nothing was pushed.
  bool IsWitnessItem(ItemId item, const ItemCatalog& catalog) const;

  // Necessary-condition filter (footnote 7): BMS** may restrict candidates
  // to sets containing an item from the first witness class of the first
  // monotone *succinct* constraint even when that constraint needs several
  // witnesses — membership is then necessary but not sufficient. Falls back
  // to the pushed single-witness class when one exists; when no monotone
  // succinct constraint exists at all, has_necessary_witness() is false.
  bool has_necessary_witness() const { return necessary_index_ >= 0; }
  bool IsNecessaryWitnessItem(ItemId item, const ItemCatalog& catalog) const;

  // "C1 & C2 & ..."; "true" for the empty conjunction.
  std::string ToString() const;

 private:
  void Classify(const Constraint& constraint, std::size_t index);

  std::vector<ConstraintPtr> constraints_;
  // Indices into constraints_ per bucket.
  std::vector<std::size_t> anti_monotone_;
  std::vector<std::size_t> anti_monotone_non_succinct_;
  std::vector<std::size_t> monotone_;
  std::vector<std::size_t> monotone_deferred_;
  std::vector<std::size_t> unclassified_;
  int pushed_index_ = -1;
  int necessary_index_ = -1;
};

}  // namespace ccs

#endif  // CCS_CONSTRAINTS_CONSTRAINT_SET_H_
