#include "constraints/set_constraint.h"

#include <algorithm>
#include <unordered_set>

#include "util/check.h"

namespace ccs {
namespace {

std::vector<std::string> SortedUnique(std::vector<std::string> values) {
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  CCS_CHECK(!values.empty());
  return values;
}

std::vector<ItemId> SortedUnique(std::vector<ItemId> values) {
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  CCS_CHECK(!values.empty());
  return values;
}

std::string RenderTypeSet(const std::vector<std::string>& types) {
  std::string out = "{";
  for (std::size_t i = 0; i < types.size(); ++i) {
    if (i > 0) out += ", ";
    out += types[i];
  }
  return out + "}";
}

std::string RenderItemSet(const std::vector<ItemId>& items) {
  std::string out = "{";
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(items[i]);
  }
  return out + "}";
}

// True iff the type of `item` is named `name` in `catalog`.
bool ItemHasType(ItemId item, const std::string& name,
                 const ItemCatalog& catalog) {
  const TypeId id = catalog.FindType(name);
  return id != kInvalidType && catalog.type(item) == id;
}

// True iff the type of `item` is any of `names`.
bool ItemHasAnyType(ItemId item, const std::vector<std::string>& names,
                    const ItemCatalog& catalog) {
  for (const auto& name : names) {
    if (ItemHasType(item, name, catalog)) return true;
  }
  return false;
}

}  // namespace

// --- TypeContainsConstraint ---

TypeContainsConstraint::TypeContainsConstraint(std::vector<std::string> types)
    : types_(SortedUnique(std::move(types))) {}

bool TypeContainsConstraint::Test(ItemSpan items,
                                  const ItemCatalog& catalog) const {
  for (const auto& name : types_) {
    bool found = false;
    for (ItemId i : items) {
      if (ItemHasType(i, name, catalog)) {
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return true;
}

std::string TypeContainsConstraint::ToString() const {
  return RenderTypeSet(types_) + " subset S.type";
}

bool TypeContainsConstraint::IsNecessaryWitness(
    ItemId item, const ItemCatalog& catalog) const {
  // Containing an item of the first required type is necessary (and, for a
  // single-type constraint, sufficient).
  return ItemHasType(item, types_.front(), catalog);
}

// --- TypeSubsetConstraint ---

TypeSubsetConstraint::TypeSubsetConstraint(std::vector<std::string> types)
    : types_(SortedUnique(std::move(types))) {}

bool TypeSubsetConstraint::Test(ItemSpan items,
                                const ItemCatalog& catalog) const {
  for (ItemId i : items) {
    if (!ItemHasAnyType(i, types_, catalog)) return false;
  }
  return true;
}

std::string TypeSubsetConstraint::ToString() const {
  return "S.type subset " + RenderTypeSet(types_);
}

// --- TypeDisjointConstraint ---

TypeDisjointConstraint::TypeDisjointConstraint(std::vector<std::string> types)
    : types_(SortedUnique(std::move(types))) {}

bool TypeDisjointConstraint::Test(ItemSpan items,
                                  const ItemCatalog& catalog) const {
  for (ItemId i : items) {
    if (ItemHasAnyType(i, types_, catalog)) return false;
  }
  return true;
}

std::string TypeDisjointConstraint::ToString() const {
  return RenderTypeSet(types_) + " intersect S.type = {}";
}

// --- TypeIntersectsConstraint ---

TypeIntersectsConstraint::TypeIntersectsConstraint(
    std::vector<std::string> types)
    : types_(SortedUnique(std::move(types))) {}

bool TypeIntersectsConstraint::Test(ItemSpan items,
                                    const ItemCatalog& catalog) const {
  for (ItemId i : items) {
    if (ItemHasAnyType(i, types_, catalog)) return true;
  }
  return false;
}

std::string TypeIntersectsConstraint::ToString() const {
  return RenderTypeSet(types_) + " intersect S.type != {}";
}

// --- TypeCountConstraint ---

TypeCountConstraint::TypeCountConstraint(Cmp cmp, std::size_t count)
    : less_equal_(cmp == Cmp::kLe), count_(count) {}

bool TypeCountConstraint::Test(ItemSpan items,
                               const ItemCatalog& catalog) const {
  std::unordered_set<TypeId> distinct;
  for (ItemId i : items) distinct.insert(catalog.type(i));
  return less_equal_ ? distinct.size() <= count_ : distinct.size() >= count_;
}

Monotonicity TypeCountConstraint::monotonicity() const {
  // The distinct-type count is non-decreasing under item addition.
  return less_equal_ ? Monotonicity::kAntiMonotone : Monotonicity::kMonotone;
}

std::string TypeCountConstraint::ToString() const {
  return std::string("|S.type| ") + (less_equal_ ? "<=" : ">=") + " " +
         std::to_string(count_);
}

// --- ContainsItemsConstraint ---

ContainsItemsConstraint::ContainsItemsConstraint(std::vector<ItemId> items)
    : required_(SortedUnique(std::move(items))) {}

bool ContainsItemsConstraint::Test(ItemSpan items,
                                   const ItemCatalog&) const {
  return std::includes(items.begin(), items.end(), required_.begin(),
                       required_.end());
}

std::string ContainsItemsConstraint::ToString() const {
  return RenderItemSet(required_) + " subset S";
}

bool ContainsItemsConstraint::IsNecessaryWitness(ItemId item,
                                                 const ItemCatalog&) const {
  return item == required_.front();
}

// --- ExcludesItemsConstraint ---

ExcludesItemsConstraint::ExcludesItemsConstraint(std::vector<ItemId> items)
    : excluded_(SortedUnique(std::move(items))) {}

bool ExcludesItemsConstraint::Test(ItemSpan items, const ItemCatalog&) const {
  for (ItemId i : items) {
    if (std::binary_search(excluded_.begin(), excluded_.end(), i)) {
      return false;
    }
  }
  return true;
}

std::string ExcludesItemsConstraint::ToString() const {
  return "S intersect " + RenderItemSet(excluded_) + " = {}";
}

}  // namespace ccs
