#include "constraints/constraint_set.h"

#include "util/check.h"

namespace ccs {
namespace {

bool TestBucket(const std::vector<ConstraintPtr>& constraints,
                const std::vector<std::size_t>& bucket, ItemSpan items,
                const ItemCatalog& catalog) {
  for (std::size_t i : bucket) {
    if (!constraints[i]->Test(items, catalog)) return false;
  }
  return true;
}

}  // namespace

void ConstraintSet::Add(ConstraintPtr constraint) {
  CCS_CHECK(constraint != nullptr);
  constraints_.push_back(std::move(constraint));
  Classify(*constraints_.back(), constraints_.size() - 1);
}

void ConstraintSet::AddAll(std::vector<ConstraintPtr> constraints) {
  for (auto& c : constraints) Add(std::move(c));
}

const Constraint& ConstraintSet::at(std::size_t i) const {
  CCS_CHECK_LT(i, constraints_.size());
  return *constraints_[i];
}

void ConstraintSet::Classify(const Constraint& constraint,
                             std::size_t index) {
  const Monotonicity m = constraint.monotonicity();
  if (IsAntiMonotone(m)) {
    anti_monotone_.push_back(index);
    if (!constraint.is_succinct()) {
      anti_monotone_non_succinct_.push_back(index);
    }
  }
  if (IsMonotone(m)) {
    monotone_.push_back(index);
    if (constraint.is_succinct()) {
      if (constraint.has_single_witness_form() && pushed_index_ < 0) {
        pushed_index_ = static_cast<int>(index);
        // Prefer the exactly-characterized class for the necessary filter.
        necessary_index_ = pushed_index_;
      }
      if (necessary_index_ < 0) {
        necessary_index_ = static_cast<int>(index);
      }
    }
    // Every monotone constraint — including the pushed one — is re-checked
    // by the deferred tests; enforcement never relies on pruning alone.
    monotone_deferred_.push_back(index);
  }
  if (m == Monotonicity::kNeither) {
    unclassified_.push_back(index);
  }
}

bool ConstraintSet::TestAll(ItemSpan items, const ItemCatalog& catalog) const {
  for (const auto& c : constraints_) {
    if (!c->Test(items, catalog)) return false;
  }
  return true;
}

bool ConstraintSet::TestAntiMonotone(ItemSpan items,
                                     const ItemCatalog& catalog) const {
  return TestBucket(constraints_, anti_monotone_, items, catalog);
}

bool ConstraintSet::TestAntiMonotoneNonSuccinct(
    ItemSpan items, const ItemCatalog& catalog) const {
  return TestBucket(constraints_, anti_monotone_non_succinct_, items,
                    catalog);
}

bool ConstraintSet::TestMonotone(ItemSpan items,
                                 const ItemCatalog& catalog) const {
  return TestBucket(constraints_, monotone_, items, catalog);
}

bool ConstraintSet::TestMonotoneDeferred(ItemSpan items,
                                         const ItemCatalog& catalog) const {
  return TestBucket(constraints_, monotone_deferred_, items, catalog);
}

bool ConstraintSet::TestUnclassified(ItemSpan items,
                                     const ItemCatalog& catalog) const {
  return TestBucket(constraints_, unclassified_, items, catalog);
}

bool ConstraintSet::AllAntiMonotone() const {
  for (const auto& c : constraints_) {
    if (!IsAntiMonotone(c->monotonicity())) return false;
  }
  return true;
}

bool ConstraintSet::SingletonSatisfiesAntiMonotone(
    ItemId item, const ItemCatalog& catalog) const {
  const ItemId singleton[] = {item};
  return TestAntiMonotone(ItemSpan(singleton, 1), catalog);
}

bool ConstraintSet::IsWitnessItem(ItemId item,
                                  const ItemCatalog& catalog) const {
  if (pushed_index_ < 0) return false;
  return constraints_[static_cast<std::size_t>(pushed_index_)]
      ->IsNecessaryWitness(item, catalog);
}

bool ConstraintSet::IsNecessaryWitnessItem(ItemId item,
                                           const ItemCatalog& catalog) const {
  if (necessary_index_ < 0) return false;
  return constraints_[static_cast<std::size_t>(necessary_index_)]
      ->IsNecessaryWitness(item, catalog);
}

std::string ConstraintSet::ToString() const {
  if (constraints_.empty()) return "true";
  std::string out;
  for (std::size_t i = 0; i < constraints_.size(); ++i) {
    if (i > 0) out += " & ";
    out += constraints_[i]->ToString();
  }
  return out;
}

}  // namespace ccs
