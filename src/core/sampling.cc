#include "core/sampling.h"

#include <algorithm>

#include "core/bms_plus_plus.h"
#include "core/ct_builder.h"
#include "core/judge.h"
#include "util/check.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace ccs {

SampledMiningResult MineBmsPlusPlusSampled(
    const TransactionDatabase& db, const ItemCatalog& catalog,
    const ConstraintSet& constraints, const MiningOptions& options,
    const SamplingOptions& sampling) {
  CCS_CHECK(sampling.sample_fraction > 0.0 &&
            sampling.sample_fraction <= 1.0);
  CCS_CHECK(sampling.support_slack > 0.0 && sampling.support_slack <= 1.0);
  Stopwatch timer;
  SampledMiningResult out;

  // Draw the Bernoulli sample.
  Rng rng(sampling.seed);
  TransactionDatabase sample(db.num_items());
  for (std::size_t t = 0; t < db.num_transactions(); ++t) {
    if (rng.NextBernoulli(sampling.sample_fraction)) {
      sample.Add(db.transaction(t));
    }
  }
  sample.Finalize();
  out.sample_size = sample.num_transactions();
  if (out.sample_size == 0) {
    out.result.stats.elapsed_seconds = timer.ElapsedSeconds();
    return out;
  }

  // Mine the sample with the proportionally scaled, slackened support.
  MiningOptions sample_options = options;
  sample_options.min_support = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             static_cast<double>(options.min_support) *
             sampling.sample_fraction * sampling.support_slack));
  const MiningResult candidates =
      MineBmsPlusPlus(sample, catalog, constraints, sample_options);
  out.candidates_from_sample = candidates.answers.size();
  out.result.stats = candidates.stats;

  // Verification pass on the full database.
  CorrelationJudge judge(options);
  ContingencyTableBuilder builder(db);
  ItemsetMap<bool> correlated_cache;
  auto is_correlated = [&](const Itemset& s) {
    const auto [it, inserted] = correlated_cache.try_emplace(s, false);
    if (inserted) {
      const stats::ContingencyTable table = builder.Build(s);
      it->second = judge.IsCorrelated(table);
    }
    return it->second;
  };
  for (const Itemset& s : candidates.answers) {
    if (!constraints.TestAll(s.span(), catalog)) continue;
    bool items_frequent = true;
    for (ItemId i : s) {
      items_frequent =
          items_frequent && db.ItemSupport(i) >= options.min_support;
    }
    if (!items_frequent) continue;
    const stats::ContingencyTable table = builder.Build(s);
    if (!judge.IsCtSupported(table)) continue;
    if (!judge.IsCorrelated(table)) continue;
    // Minimality on the full data: no co-dimension-1 subset correlated
    // (sufficient for "no proper subset correlated" by upward closure).
    bool minimal = true;
    for (std::size_t i = 0; i < s.size() && minimal; ++i) {
      const Itemset subset = s.WithoutIndex(i);
      if (subset.size() < 2) continue;
      minimal = !is_correlated(subset);
    }
    if (!minimal) continue;
    out.result.answers.push_back(s);
  }
  std::sort(out.result.answers.begin(), out.result.answers.end());
  out.confirmed = out.result.answers.size();
  // Account the verification tables on the final level's counters.
  out.result.stats.elapsed_seconds = timer.ElapsedSeconds();
  return out;
}

}  // namespace ccs
