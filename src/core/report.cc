#include "core/report.h"

#include <algorithm>
#include <limits>

#include "core/ct_builder.h"
#include "core/judge.h"

namespace ccs {

std::vector<AnswerReport> BuildReports(const std::vector<Itemset>& answers,
                                       const TransactionDatabase& db,
                                       const ItemCatalog& catalog,
                                       const MiningOptions& options) {
  CorrelationJudge judge(options);
  ContingencyTableBuilder builder(db);
  std::vector<AnswerReport> reports;
  reports.reserve(answers.size());
  for (const Itemset& s : answers) {
    AnswerReport report;
    report.items = s;
    report.min_price = std::numeric_limits<double>::infinity();
    report.max_price = -std::numeric_limits<double>::infinity();
    for (ItemId i : s) {
      report.names.push_back(catalog.item_name(i));
      const double price = catalog.price(i);
      report.min_price = std::min(report.min_price, price);
      report.max_price = std::max(report.max_price, price);
      report.sum_price += price;
    }
    const stats::ContingencyTable table = builder.Build(s);
    const auto all_present =
        static_cast<std::uint32_t>((std::uint32_t{1} << s.size()) - 1);
    report.joint_support = table.cell(all_present);
    const double expected_joint = table.ExpectedCount(all_present);
    report.joint_lift =
        expected_joint > 0.0
            ? static_cast<double>(report.joint_support) / expected_joint
            : 0.0;
    report.chi_squared = table.ChiSquaredStatistic();
    report.p_value = judge.PValue(table);
    report.supported_cell_fraction =
        table.SupportedCellFraction(options.min_support);
    reports.push_back(std::move(report));
  }
  return reports;
}

CsvTable ReportsToTable(const std::vector<AnswerReport>& reports) {
  CsvTable table({"items", "names", "support", "chi2", "p_value", "lift",
                  "cell_fraction", "min_price", "max_price", "sum_price"});
  for (const AnswerReport& r : reports) {
    std::string names;
    for (std::size_t i = 0; i < r.names.size(); ++i) {
      if (i > 0) names += " ";
      names += r.names[i];
    }
    table.BeginRow();
    table.AddCell(r.items.ToString());
    table.AddCell(names);
    table.AddCell(r.joint_support);
    table.AddCell(r.chi_squared, 2);
    table.AddCell(r.p_value, 4);
    table.AddCell(r.joint_lift, 2);
    table.AddCell(r.supported_cell_fraction, 2);
    table.AddCell(r.min_price, 2);
    table.AddCell(r.max_price, 2);
    table.AddCell(r.sum_price, 2);
  }
  return table;
}

}  // namespace ccs
