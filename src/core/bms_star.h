#ifndef CCS_CORE_BMS_STAR_H_
#define CCS_CORE_BMS_STAR_H_

#include "constraints/constraint_set.h"
#include "core/context.h"
#include "core/options.h"
#include "core/result.h"
#include "txn/catalog.h"
#include "txn/database.h"

namespace ccs {

// Algorithm BMS* (Figure F): the naive algorithm for *minimal valid*
// answers. Runs unconstrained BMS first, harvests the valid SIG' members,
// and then sweeps the lattice upward, level by level, past the correlation
// border until the monotone constraints are met; supersets of known
// correlated sets need no further chi-squared tests.
//
// Candidate seeding (DESIGN.md, deviation 1): Figure F seeds the upward
// sweep's NOTSIG only with minimal correlated sets that fail the monotone
// constraints. That misses minimal valid sets some of whose co-dimension-1
// subsets are merely *uncorrelated*. This implementation additionally seeds
// NOTSIG with the CT-supported-but-uncorrelated sets of the base run
// (NOTSIG') that satisfy the anti-monotone constraints, tracking for every
// frontier set whether it is correlated, so the sweep is complete. A
// candidate all of whose subsets are uncorrelated gets its own chi-squared
// test; one with a correlated subset inherits correlatedness, as in the
// paper.
//
// Requires every constraint to be monotone or anti-monotone (otherwise
// MIN_VALID is not well-defined; Section 6).
MiningResult MineBmsStar(const TransactionDatabase& db,
                         const ItemCatalog& catalog,
                         const ConstraintSet& constraints,
                         const MiningOptions& options,
                         MiningContext* ctx = nullptr);

}  // namespace ccs

#endif  // CCS_CORE_BMS_STAR_H_
