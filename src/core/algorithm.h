#ifndef CCS_CORE_ALGORITHM_H_
#define CCS_CORE_ALGORITHM_H_

#include <optional>
#include <string>

namespace ccs {

// The algorithms of the paper plus this library's extension.
enum class Algorithm {
  kBms,             // Brin et al. baseline (ignores constraints)
  kBmsPlus,         // VALID_MIN, naive
  kBmsPlusPlus,     // VALID_MIN, constraint-pushing
  kBmsStar,         // MIN_VALID, naive
  kBmsStarStar,     // MIN_VALID, constraint-pushing
  kBmsStarStarOpt,  // MIN_VALID, fused phases (Section 6 extension)
};

// Which answer set an algorithm computes.
enum class AnswerSemantics {
  kUnconstrained,  // all minimal correlated CT-supported sets
  kValidMinimal,   // VALID_MIN(Q)
  kMinimalValid,   // MIN_VALID(Q)
};

// "BMS", "BMS+", "BMS++", "BMS*", "BMS**", "BMS**opt".
const char* AlgorithmName(Algorithm algorithm);

// Parses an AlgorithmName back; nullopt for unknown names.
std::optional<Algorithm> ParseAlgorithmName(const std::string& name);

AnswerSemantics SemanticsOf(Algorithm algorithm);

// All algorithms, in the enum's order — convenient for sweeps.
inline constexpr Algorithm kAllAlgorithms[] = {
    Algorithm::kBms,      Algorithm::kBmsPlus,     Algorithm::kBmsPlusPlus,
    Algorithm::kBmsStar,  Algorithm::kBmsStarStar, Algorithm::kBmsStarStarOpt,
};

}  // namespace ccs

#endif  // CCS_CORE_ALGORITHM_H_
