#include "core/itemset.h"

#include <algorithm>

namespace ccs {

Itemset::Itemset(std::initializer_list<ItemId> items)
    : Itemset(std::span<const ItemId>(items.begin(), items.size())) {}

Itemset::Itemset(std::span<const ItemId> items) {
  CCS_CHECK_LE(items.size(), kMaxSize);
  size_ = static_cast<std::uint32_t>(items.size());
  std::copy(items.begin(), items.end(), items_.begin());
  std::sort(items_.begin(), items_.begin() + size_);
  for (std::size_t i = 1; i < size_; ++i) {
    CCS_CHECK(items_[i - 1] != items_[i]);
  }
}

bool Itemset::Contains(ItemId item) const {
  return std::binary_search(begin(), end(), item);
}

bool Itemset::IsSubsetOf(const Itemset& other) const {
  return std::includes(other.begin(), other.end(), begin(), end());
}

Itemset Itemset::WithItem(ItemId item) const {
  CCS_CHECK_LT(size_, kMaxSize);
  CCS_DCHECK(!Contains(item));
  Itemset out = *this;
  std::size_t pos = size_;
  while (pos > 0 && out.items_[pos - 1] > item) {
    out.items_[pos] = out.items_[pos - 1];
    --pos;
  }
  out.items_[pos] = item;
  ++out.size_;
  return out;
}

Itemset Itemset::WithoutIndex(std::size_t i) const {
  CCS_CHECK_LT(i, size_);
  Itemset out = *this;
  for (std::size_t j = i + 1; j < size_; ++j) {
    out.items_[j - 1] = out.items_[j];
  }
  --out.size_;
  out.items_[out.size_] = 0;
  return out;
}

std::string Itemset::ToString() const {
  std::string out = "{";
  for (std::size_t i = 0; i < size_; ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(items_[i]);
  }
  return out + "}";
}

std::size_t Itemset::Hash() const {
  // splitmix64-style mixing over the items; decent avalanche, no
  // allocation.
  std::uint64_t h = 0x9e3779b97f4a7c15ULL + size_;
  for (std::size_t i = 0; i < size_; ++i) {
    std::uint64_t z = h + 0x9e3779b97f4a7c15ULL + items_[i];
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    h = z ^ (z >> 31);
  }
  return static_cast<std::size_t>(h);
}

}  // namespace ccs
