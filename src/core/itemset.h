#ifndef CCS_CORE_ITEMSET_H_
#define CCS_CORE_ITEMSET_H_

#include <array>
#include <cstdint>
#include <initializer_list>
#include <span>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "txn/item.h"
#include "util/check.h"

namespace ccs {

// A small sorted set of item ids with inline storage — the unit the mining
// algorithms shuffle through candidate queues, SIG and NOTSIG.
//
// The paper's experiments never see correlated sets beyond size four;
// kMaxSize = 12 leaves generous headroom while keeping the type trivially
// copyable (no heap traffic in candidate generation, cheap hashing).
// Inserting beyond kMaxSize is a contract violation; the engines cap their
// level at MiningOptions::max_set_size <= kMaxSize.
class Itemset {
 public:
  static constexpr std::size_t kMaxSize = 12;

  Itemset() = default;

  // Items may be given in any order; duplicates are a contract violation.
  Itemset(std::initializer_list<ItemId> items);
  explicit Itemset(std::span<const ItemId> items);

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  ItemId operator[](std::size_t i) const {
    CCS_DCHECK(i < size_);
    return items_[i];
  }

  const ItemId* begin() const { return items_.data(); }
  const ItemId* end() const { return items_.data() + size_; }

  // View for constraint evaluation.
  std::span<const ItemId> span() const {
    return std::span<const ItemId>(items_.data(), size_);
  }

  bool Contains(ItemId item) const;

  // True iff every item of *this is in `other`.
  bool IsSubsetOf(const Itemset& other) const;

  // Copy of *this with `item` inserted (must not already be present).
  Itemset WithItem(ItemId item) const;

  // Copy of *this with the item at position `i` removed.
  Itemset WithoutIndex(std::size_t i) const;

  // "{3, 17, 42}"
  std::string ToString() const;

  friend bool operator==(const Itemset& a, const Itemset& b) {
    if (a.size_ != b.size_) return false;
    for (std::size_t i = 0; i < a.size_; ++i) {
      if (a.items_[i] != b.items_[i]) return false;
    }
    return true;
  }

  // Lexicographic; shorter prefixes first. Gives deterministic output
  // ordering for results and tests.
  friend bool operator<(const Itemset& a, const Itemset& b) {
    const std::size_t n = a.size_ < b.size_ ? a.size_ : b.size_;
    for (std::size_t i = 0; i < n; ++i) {
      if (a.items_[i] != b.items_[i]) return a.items_[i] < b.items_[i];
    }
    return a.size_ < b.size_;
  }

  std::size_t Hash() const;

 private:
  std::array<ItemId, kMaxSize> items_{};
  std::uint32_t size_ = 0;
};

struct ItemsetHash {
  std::size_t operator()(const Itemset& s) const { return s.Hash(); }
};

using ItemsetSet = std::unordered_set<Itemset, ItemsetHash>;

template <typename V>
using ItemsetMap = std::unordered_map<Itemset, V, ItemsetHash>;

}  // namespace ccs

#endif  // CCS_CORE_ITEMSET_H_
