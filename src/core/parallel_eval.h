#ifndef CCS_CORE_PARALLEL_EVAL_H_
#define CCS_CORE_PARALLEL_EVAL_H_

#include <algorithm>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/candidate_gen.h"
#include "core/context.h"
#include "core/ct_builder.h"
#include "core/ct_delta.h"
#include "core/judge.h"
#include "core/options.h"
#include "core/result.h"
#include "txn/database.h"
#include "util/fault.h"

namespace ccs {

// Per-thread evaluation state for the parallel candidate loops: one
// ContingencyTableBuilder (mutable scratch bitsets + private
// IntersectionCache) and one CorrelationJudge (mutable critical-value
// cache) per executor thread. Worker t exclusively uses slot t, so no
// synchronization is needed; the database itself is shared read-only.
class EvalWorkers {
 public:
  // `metrics` (nullable) attaches the run's registry: the destructor then
  // flushes each builder's counters into the registry's per-thread shards.
  // Flushing at destruction — rather than only on the success path — is
  // what keeps the per-thread table accounting when a worker throws
  // mid-level: the unwind through the variant's frame runs this destructor
  // before the engine's catch block reads the registry, so kError results
  // still report how much database work each thread did. All ids are
  // registered up front in the constructor (serial phase), leaving the
  // destructor allocation-free and safe during unwinding.
  EvalWorkers(const TransactionDatabase& db, const MiningOptions& options,
              std::size_t num_threads, CtCacheOptions ct_cache = {},
              SimdOptions simd = {}, MetricsRegistry* metrics = nullptr)
      : metrics_(metrics) {
    CCS_FAULT_POINT("alloc");
    builders_.reserve(num_threads);
    judges_.reserve(num_threads);
    for (std::size_t t = 0; t < num_threads; ++t) {
      builders_.emplace_back(db, ct_cache, simd);
      judges_.emplace_back(options);
    }
    if (metrics_ != nullptr) {
      tables_id_ = metrics_->Counter("ct.tables_built",
                                     MetricStability::kDeterministic);
      batches_id_ =
          metrics_->Counter("ct.batches", MetricStability::kDeterministic);
      word_ops_id_ = metrics_->Counter("ct.word_ops",
                                       MetricStability::kScheduleDependent);
      lookups_id_ = metrics_->Counter("ct_cache.lookups",
                                      MetricStability::kDeterministic);
      shared_hits_id_ = metrics_->Counter("ct_cache.shared_hits",
                                          MetricStability::kDeterministic);
      hits_id_ = metrics_->Counter("ct_cache.hits",
                                   MetricStability::kScheduleDependent);
      misses_id_ = metrics_->Counter("ct_cache.misses",
                                     MetricStability::kScheduleDependent);
      evictions_id_ = metrics_->Counter("ct_cache.evictions",
                                        MetricStability::kScheduleDependent);
      pair_tables_id_ = metrics_->Counter("ct.pair_stage_tables",
                                          MetricStability::kDeterministic);
      pair_ops_id_ = metrics_->Counter("ct.pair_stage_ops",
                                       MetricStability::kDeterministic);
    }
  }

  ~EvalWorkers() {
    if (metrics_ == nullptr) return;
    for (std::size_t t = 0; t < builders_.size(); ++t) {
      const ContingencyTableBuilder& b = builders_[t];
      metrics_->Add(tables_id_, t, b.tables_built());
      metrics_->Add(batches_id_, t, b.batches());
      metrics_->Add(word_ops_id_, t, b.word_ops());
      metrics_->Add(lookups_id_, t, b.cache_stats().lookups);
      metrics_->Add(shared_hits_id_, t, b.shared_pair_hits());
      metrics_->Add(hits_id_, t, b.cache_stats().hits);
      metrics_->Add(misses_id_, t, b.cache_stats().misses);
      metrics_->Add(evictions_id_, t, b.cache_stats().evictions);
      metrics_->Add(pair_tables_id_, t, b.pair_stage_tables());
      metrics_->Add(pair_ops_id_, t, b.pair_stage_ops());
    }
  }

  EvalWorkers(const EvalWorkers&) = delete;
  EvalWorkers& operator=(const EvalWorkers&) = delete;

  ContingencyTableBuilder& builder(std::size_t thread) {
    return builders_[thread];
  }
  CorrelationJudge& judge(std::size_t thread) { return judges_[thread]; }

  std::size_t num_threads() const { return builders_.size(); }

  // Folds this worker set's per-thread table counts and cache telemetry
  // into the run's stats. Additive, so a run that uses several worker sets
  // in sequence (BMS*'s base pass + sweep) reports their sum.
  void AccumulateInto(MiningStats& stats) const {
    stats.num_threads = builders_.size();
    if (stats.tables_built_per_thread.size() < builders_.size()) {
      stats.tables_built_per_thread.resize(builders_.size(), 0);
    }
    for (std::size_t t = 0; t < builders_.size(); ++t) {
      stats.tables_built_per_thread[t] += builders_[t].tables_built();
      stats.ct_cache_lookups += builders_[t].cache_stats().lookups;
      stats.ct_cache_hits += builders_[t].cache_stats().hits;
      stats.ct_cache_misses += builders_[t].cache_stats().misses;
      stats.ct_cache_evictions += builders_[t].cache_stats().evictions;
      stats.ct_cache_shared_hits += builders_[t].shared_pair_hits();
      stats.ct_word_ops += builders_[t].word_ops();
      stats.ct_pair_stage_tables += builders_[t].pair_stage_tables();
      stats.ct_pair_stage_ops += builders_[t].pair_stage_ops();
    }
  }

 private:
  std::vector<ContingencyTableBuilder> builders_;
  std::vector<CorrelationJudge> judges_;
  MetricsRegistry* metrics_ = nullptr;
  MetricsRegistry::Id tables_id_ = 0;
  MetricsRegistry::Id batches_id_ = 0;
  MetricsRegistry::Id word_ops_id_ = 0;
  MetricsRegistry::Id lookups_id_ = 0;
  MetricsRegistry::Id shared_hits_id_ = 0;
  MetricsRegistry::Id hits_id_ = 0;
  MetricsRegistry::Id misses_id_ = 0;
  MetricsRegistry::Id evictions_id_ = 0;
  MetricsRegistry::Id pair_tables_id_ = 0;
  MetricsRegistry::Id pair_ops_id_ = 0;
};

// The level's table-building pass, shared by all six BMS variants: builds
// one contingency table per wanted candidate and hands it to `eval` as
// (candidate index, thread, table).
//
// `want` (nullable) runs exactly once per candidate index on a worker
// thread before any table work; returning false skips the candidate
// without a table, a fault point, or a tables_built tick — the variants
// use it for their pre-table pruning (BMS*'s already-processed/
// anti-monotone checks, BMS++/BMS**'s non-succinct AM prune).
//
// With the context's ct_cache enabled, candidates are split into shared-
// prefix groups (GroupByPrefix) and each group runs through one builder's
// BuildBatch; disabled, every candidate goes through the original
// per-candidate Build. Both paths produce identical tables for the same
// candidate set and poll the governor between 1024-unit batches, so
// answers, the deterministic counters, and the partial-level discard
// semantics are unchanged; only which thread builds a table (and hence the
// per-thread/cache telemetry split) varies.
inline Termination GovernedBuildTables(
    const MiningContext& ctx, EvalWorkers& workers,
    const std::vector<Itemset>& candidates,
    const ContingencyTableBuilder::BatchFilter& want,
    const std::function<void(std::size_t, std::size_t,
                             const stats::ContingencyTable&)>& eval) {
  PhaseScope ct_phase(ctx, "ct_build");
  // Streaming delta hook (DESIGN.md §15). With a lookup-enabled oracle
  // installed the level is served through Recover-or-Build: the oracle
  // returns each candidate's exact window table (previous table adjusted
  // by the tick's appended/expired baskets — bit-identical cells by
  // additivity), and only cache misses fall back to the regular batch
  // build paths below.
  // Recovered tables tick AccountExternalTable so the per-candidate fault
  // point and tables_built accounting match the batch paths; `want`
  // semantics, candidate order, and the eval slots are unchanged, so
  // answers and every kDeterministic counter equal a fresh batch mine of
  // the same window at any thread count. A record-only oracle (full
  // re-mine tick) leaves the batch paths below untouched and just tees
  // each emitted table into the next tick's cache.
  //
  // Pair batches are exempt in both modes: the k=2 pair stage below
  // amortizes one horizontal pass across the whole batch, which the
  // per-candidate delta arithmetic cannot undercut, and recovering a
  // larger candidate never reads a pair table — so pairs are neither
  // recovered nor recorded and keep their fast paths. The exemption is a
  // pure function of the candidate batch, hence deterministic.
  CtDeltaSource* const delta = ctx.ct_delta();
  MetricsRegistry* delta_metrics = nullptr;
  MetricsRegistry::Id dirty_id = 0;
  MetricsRegistry::Id recovered_id = 0;
  if (delta != nullptr && ctx.metrics() != nullptr &&
      ctx.metrics()->enabled()) {
    delta_metrics = ctx.metrics();
    dirty_id = delta_metrics->Counter("stream.dirty_candidates",
                                      MetricStability::kDeterministic);
    recovered_id = delta_metrics->Counter("stream.delta_tables",
                                          MetricStability::kDeterministic);
  }
  const bool pair_batch =
      !candidates.empty() &&
      std::all_of(candidates.begin(), candidates.end(),
                  [](const Itemset& s) { return s.size() == 2; });
  const bool lookup =
      delta != nullptr && delta->lookup_enabled() && !pair_batch;
  // Lookup mode runs as a recovery pass: hits are served (and re-recorded)
  // immediately, misses are only marked here and then flow through the
  // regular batch paths below, where prefix sharing amortizes them exactly
  // as a full re-mine would — a standalone Build per miss costs several
  // times the shared-path table. Which candidates miss is a pure function
  // of the previous tick's recorded set, so the split — and with it every
  // kDeterministic counter — is thread-count independent.
  std::vector<std::uint8_t> recover_miss;
  if (lookup) {
    PhaseScope delta_phase(ctx, "stream_delta");
    recover_miss.assign(candidates.size(), 0);
    const Termination verdict = GovernedParallelFor(
        ctx, candidates.size(), [&](std::size_t thread, std::size_t i) {
          if (want && !want(i)) return;
          const Itemset& s = candidates[i];
          if (delta_metrics != nullptr && delta->IsDirty(s)) {
            delta_metrics->Add(dirty_id, thread, 1);
          }
          const std::optional<stats::ContingencyTable> recovered =
              delta->Recover(s, thread);
          if (!recovered.has_value()) {
            recover_miss[i] = 1;
            return;
          }
          workers.builder(thread).AccountExternalTable();
          if (delta_metrics != nullptr) {
            delta_metrics->Add(recovered_id, thread, 1);
          }
          delta->Record(s, thread, *recovered);
          eval(i, thread, *recovered);
        });
    if (verdict != Termination::kCompleted) return verdict;
    if (std::find(recover_miss.begin(), recover_miss.end(),
                  std::uint8_t{1}) == recover_miss.end()) {
      return Termination::kCompleted;
    }
  }
  std::function<void(std::size_t, std::size_t,
                     const stats::ContingencyTable&)>
      recording;
  const auto* emit = &eval;
  if (delta != nullptr && !pair_batch) {
    // In lookup mode the recovery pass above already counted dirty
    // candidates; the wrapper then only tees the built tables for misses.
    recording = [&candidates, &eval, delta, delta_metrics, dirty_id,
                 lookup](std::size_t i, std::size_t thread,
                         const stats::ContingencyTable& table) {
      if (!lookup && delta_metrics != nullptr &&
          delta->IsDirty(candidates[i])) {
        delta_metrics->Add(dirty_id, thread, 1);
      }
      delta->Record(candidates[i], thread, table);
      eval(i, thread, table);
    };
    emit = &recording;
  }
  // `want` ran exactly once per candidate in the recovery pass, so the
  // batch paths below must filter on the recorded miss set instead of
  // calling it again.
  ContingencyTableBuilder::BatchFilter miss_want;
  const ContingencyTableBuilder::BatchFilter* active_want = &want;
  if (lookup) {
    miss_want = [&recover_miss](std::size_t i) {
      return recover_miss[i] != 0;
    };
    active_want = &miss_want;
  }
  // Candidate-generation-free k=2 path (DESIGN.md §14): when the whole
  // batch is pairs — the bulk of tables on most workloads, plus BMS++'s
  // larger probe batches — one serial horizontal pass fills every pair's
  // co-occurrence count and each table is recovered in O(1), with no
  // per-candidate bitset work at all. The admission gate (SIMD kernel
  // enabled, batch size, distinct-item bound, plus the support-density
  // cost estimate below) is a pure function of (options, candidates,
  // item supports), so the taken path — and with it answers,
  // tables_built, and the pair-stage counters — is deterministic at any
  // thread count and in both cache modes. The stage pass polls the
  // governor per transaction chunk and the emission loop keeps
  // GovernedParallelFor's per-1024-candidate cadence, preserving the
  // deadline granularity and partial-level discard semantics.
  if (ctx.simd().enabled &&
      candidates.size() >= ctx.simd().pair_stage_min_candidates) {
    bool all_pairs = true;
    std::vector<ItemId> items;
    items.reserve(candidates.size() * 2);
    for (const Itemset& s : candidates) {
      if (s.size() != 2) {
        all_pairs = false;
        break;
      }
      items.push_back(s[0]);
      items.push_back(s[1]);
    }
    if (all_pairs) {
      std::sort(items.begin(), items.end());
      items.erase(std::unique(items.begin(), items.end()), items.end());
      const TransactionDatabase& db = workers.builder(0).database();
      // Cost gate: the stage counts every co-occurring stage-item pair,
      // needed or not, so on dense batches with few candidates (e.g. a
      // heavily constraint-pruned level) the horizontal pass can cost more
      // than the bitset intersections it replaces. Admit only when the
      // estimated pass cost undercuts the scalar cost model
      // (candidates × ~5 passes over one tid-set width). candidates.size()
      // overestimates the tables when `want` prunes — the gate errs
      // toward admitting, matching the bench's per-table floor.
      if (PairStage::CellsFor(items.size()) <=
              ctx.simd().pair_stage_max_cells &&
          PairStageEstimatedOps(db, items) <=
              candidates.size() * kScalarWordOpsPerPairTable *
                  db.tidset_words()) {
        PhaseScope pair_phase(ctx, "pair_stage");
        PairStage stage(db, std::move(items));
        constexpr std::size_t kTxnChunk = 4096;
        for (std::size_t t = 0; t < db.num_transactions(); t += kTxnChunk) {
          const Termination verdict = ctx.CheckNow();
          if (verdict != Termination::kCompleted) return verdict;
          stage.Accumulate(t,
                           std::min(t + kTxnChunk, db.num_transactions()));
        }
        // The shared pass is billed to builder 0; the total is
        // deterministic even though the builder index is arbitrary.
        workers.builder(0).AddPairStageOps(stage.ops());
        return GovernedParallelFor(
            ctx, candidates.size(), [&](std::size_t thread, std::size_t i) {
              if (*active_want && !(*active_want)(i)) return;
              (*emit)(i, thread,
                      workers.builder(thread).BuildPairFromStage(
                          candidates[i], stage));
            });
      }
    }
  }
  if (!ctx.ct_cache().enabled) {
    return GovernedParallelFor(
        ctx, candidates.size(), [&](std::size_t thread, std::size_t i) {
          if (*active_want && !(*active_want)(i)) return;
          const stats::ContingencyTable table =
              workers.builder(thread).Build(candidates[i]);
          (*emit)(i, thread, table);
        });
  }
  // The whole batch pass is cache work; "cache" nests inside "ct_build".
  PhaseScope cache_phase(ctx, "cache");
  const std::vector<PrefixGroup> groups = GroupByPrefix(candidates);
  const auto run_group = [&](std::size_t thread, const PrefixGroup& group) {
    const std::span<const Itemset> batch(candidates.data() + group.begin,
                                         group.end - group.begin);
    ContingencyTableBuilder::BatchFilter batch_want;
    if (*active_want) {
      batch_want = [active_want, base = group.begin](std::size_t local) {
        return (*active_want)(base + local);
      };
    }
    workers.builder(thread).BuildBatch(
        batch, batch_want,
        [emit, thread, base = group.begin](
            std::size_t local, const stats::ContingencyTable& table) {
          (*emit)(base + local, thread, table);
        });
  };
  // Chunk groups by the candidate count they cover so the deadline/cancel
  // poll keeps GovernedParallelFor's per-1024-candidate cadence; a group
  // is never split, so each index still writes the same slots.
  constexpr std::size_t kBatch = 1024;
  std::size_t begin = 0;
  while (begin < groups.size()) {
    const Termination verdict = ctx.CheckNow();
    if (verdict != Termination::kCompleted) return verdict;
    std::size_t end = begin;
    std::size_t covered = 0;
    while (end < groups.size() && covered < kBatch) {
      covered += groups[end].end - groups[end].begin;
      ++end;
    }
    ctx.executor().ParallelFor(end - begin,
                               [&](std::size_t thread, std::size_t g) {
                                 run_group(thread, groups[begin + g]);
                               });
    begin = end;
  }
  return Termination::kCompleted;
}

}  // namespace ccs

#endif  // CCS_CORE_PARALLEL_EVAL_H_
