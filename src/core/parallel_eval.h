#ifndef CCS_CORE_PARALLEL_EVAL_H_
#define CCS_CORE_PARALLEL_EVAL_H_

#include <cstdint>
#include <vector>

#include "core/ct_builder.h"
#include "core/judge.h"
#include "core/options.h"
#include "core/result.h"
#include "txn/database.h"
#include "util/fault.h"

namespace ccs {

// Per-thread evaluation state for the parallel candidate loops: one
// ContingencyTableBuilder (mutable scratch bitsets) and one
// CorrelationJudge (mutable critical-value cache) per executor thread.
// Worker t exclusively uses slot t, so no synchronization is needed; the
// database itself is shared read-only.
class EvalWorkers {
 public:
  EvalWorkers(const TransactionDatabase& db, const MiningOptions& options,
              std::size_t num_threads) {
    CCS_FAULT_POINT("alloc");
    builders_.reserve(num_threads);
    judges_.reserve(num_threads);
    for (std::size_t t = 0; t < num_threads; ++t) {
      builders_.emplace_back(db);
      judges_.emplace_back(options);
    }
  }

  ContingencyTableBuilder& builder(std::size_t thread) {
    return builders_[thread];
  }
  CorrelationJudge& judge(std::size_t thread) { return judges_[thread]; }

  std::size_t num_threads() const { return builders_.size(); }

  // Folds this worker set's per-thread table counts into the run's stats.
  // Additive, so a run that uses several worker sets in sequence (BMS*'s
  // base pass + sweep) reports their sum.
  void AccumulateInto(MiningStats& stats) const {
    stats.num_threads = builders_.size();
    if (stats.tables_built_per_thread.size() < builders_.size()) {
      stats.tables_built_per_thread.resize(builders_.size(), 0);
    }
    for (std::size_t t = 0; t < builders_.size(); ++t) {
      stats.tables_built_per_thread[t] += builders_[t].tables_built();
    }
  }

 private:
  std::vector<ContingencyTableBuilder> builders_;
  std::vector<CorrelationJudge> judges_;
};

}  // namespace ccs

#endif  // CCS_CORE_PARALLEL_EVAL_H_
