#include "core/bms_star_star.h"

#include <algorithm>

#include "core/candidate_gen.h"
#include "core/ct_builder.h"
#include "core/judge.h"
#include "util/check.h"
#include "util/stopwatch.h"

namespace ccs {
namespace {

// Shared preprocessing: the frequent GOOD1 universe and its witness split.
// For BMS** the necessary witness class is used (footnote 7); BMS++ uses
// the stricter single-witness pushed class, see bms_plus_plus.cc.
struct Universe {
  std::vector<ItemId> l1_plus;
  std::vector<ItemId> l1_minus;
  std::vector<ItemId> l1;
  std::vector<bool> is_witness;
};

Universe BuildUniverse(const TransactionDatabase& db,
                       const ItemCatalog& catalog,
                       const ConstraintSet& constraints,
                       const MiningOptions& options) {
  Universe u;
  u.is_witness.assign(db.num_items(), false);
  const bool witnessed = constraints.has_necessary_witness();
  for (ItemId i = 0; i < db.num_items(); ++i) {
    if (db.ItemSupport(i) < options.min_support) continue;
    if (!constraints.SingletonSatisfiesAntiMonotone(i, catalog)) continue;
    if (!witnessed || constraints.IsNecessaryWitnessItem(i, catalog)) {
      u.l1_plus.push_back(i);
      u.is_witness[i] = true;
    } else {
      u.l1_minus.push_back(i);
    }
  }
  u.l1.reserve(u.l1_plus.size() + u.l1_minus.size());
  std::merge(u.l1_plus.begin(), u.l1_plus.end(), u.l1_minus.begin(),
             u.l1_minus.end(), std::back_inserter(u.l1));
  return u;
}

}  // namespace

MiningResult MineBmsStarStar(const TransactionDatabase& db,
                             const ItemCatalog& catalog,
                             const ConstraintSet& constraints,
                             const MiningOptions& options) {
  CCS_CHECK(!constraints.has_unclassified());
  Stopwatch timer;
  CorrelationJudge judge(options);
  ContingencyTableBuilder builder(db);
  MiningResult result;
  const Universe u = BuildUniverse(db, catalog, constraints, options);

  // Phase 1: SUPP_k for every level, recording each supported set's
  // chi-squared statistic.
  std::vector<std::vector<Itemset>> supp(options.max_set_size + 1);
  ItemsetMap<double> chi2_of;
  std::vector<Itemset> candidates = WitnessedPairs(u.l1_plus, u.l1_minus);
  for (std::size_t k = 2; k <= options.max_set_size && !candidates.empty();
       ++k) {
    LevelStats& level = result.stats.Level(k);
    for (const Itemset& s : candidates) {
      ++level.candidates;
      if (!constraints.TestAntiMonotoneNonSuccinct(s.span(), catalog)) {
        ++level.pruned_before_ct;
        continue;
      }
      const stats::ContingencyTable table = builder.Build(s);
      ++level.tables_built;
      if (!judge.IsCtSupported(table)) continue;
      ++level.ct_supported;
      supp[k].push_back(s);
      chi2_of[s] = table.ChiSquaredStatistic();
    }
    if (k == options.max_set_size) break;
    const ItemsetSet closed(supp[k].begin(), supp[k].end());
    candidates = ExtendSeeds(
        supp[k], u.l1, [&closed, &u](const Itemset& s) {
          return AllWitnessedCoSubsetsIn(s, closed, u.is_witness);
        });
  }

  // Phase 2: pure-CPU upward sweep inside SUPP.
  ItemsetMap<bool> correlated_flag;
  std::vector<Itemset> current = supp[2];
  for (std::size_t k = 2; k <= options.max_set_size; ++k) {
    LevelStats& level = result.stats.Level(k);
    ItemsetSet notsig_here;
    for (const Itemset& s : current) {
      bool correlated = false;
      for (std::size_t i = 0; i < s.size() && !correlated; ++i) {
        const auto it = correlated_flag.find(s.WithoutIndex(i));
        correlated = it != correlated_flag.end() && it->second;
      }
      if (!correlated) {
        ++level.chi2_tests;
        correlated =
            chi2_of[s] >= judge.Cutoff(static_cast<int>(s.size()));
      }
      if (correlated) ++level.correlated;
      if (correlated &&
          constraints.TestMonotoneDeferred(s.span(), catalog)) {
        ++level.sig_added;
        result.answers.push_back(s);
      } else {
        ++level.notsig_added;
        notsig_here.insert(s);
        correlated_flag[s] = correlated;
      }
    }
    if (k == options.max_set_size) break;
    current.clear();
    for (const Itemset& s : supp[k + 1]) {
      if (AllWitnessedCoSubsetsIn(s, notsig_here, u.is_witness)) {
        current.push_back(s);
      }
    }
  }

  std::sort(result.answers.begin(), result.answers.end());
  result.stats.elapsed_seconds = timer.ElapsedSeconds();
  return result;
}

MiningResult MineBmsStarStarOpt(const TransactionDatabase& db,
                                const ItemCatalog& catalog,
                                const ConstraintSet& constraints,
                                const MiningOptions& options) {
  CCS_CHECK(!constraints.has_unclassified());
  Stopwatch timer;
  CorrelationJudge judge(options);
  ContingencyTableBuilder builder(db);
  MiningResult result;
  const Universe u = BuildUniverse(db, catalog, constraints, options);

  ItemsetMap<bool> correlated_flag;
  std::vector<Itemset> candidates = WitnessedPairs(u.l1_plus, u.l1_minus);
  for (std::size_t k = 2; k <= options.max_set_size && !candidates.empty();
       ++k) {
    LevelStats& level = result.stats.Level(k);
    std::vector<Itemset> notsig;
    for (const Itemset& s : candidates) {
      ++level.candidates;
      if (!constraints.TestAntiMonotoneNonSuccinct(s.span(), catalog)) {
        ++level.pruned_before_ct;
        continue;
      }
      const stats::ContingencyTable table = builder.Build(s);
      ++level.tables_built;
      if (!judge.IsCtSupported(table)) continue;
      ++level.ct_supported;
      bool correlated = false;
      for (std::size_t i = 0; i < s.size() && !correlated; ++i) {
        const auto it = correlated_flag.find(s.WithoutIndex(i));
        correlated = it != correlated_flag.end() && it->second;
      }
      if (!correlated) {
        ++level.chi2_tests;
        correlated = judge.IsCorrelated(table);
      }
      if (correlated) ++level.correlated;
      if (correlated &&
          constraints.TestMonotoneDeferred(s.span(), catalog)) {
        ++level.sig_added;
        result.answers.push_back(s);
      } else {
        ++level.notsig_added;
        notsig.push_back(s);
        correlated_flag[s] = correlated;
      }
    }
    if (k == options.max_set_size) break;
    const ItemsetSet closed(notsig.begin(), notsig.end());
    candidates = ExtendSeeds(
        notsig, u.l1, [&closed, &u](const Itemset& s) {
          return AllWitnessedCoSubsetsIn(s, closed, u.is_witness);
        });
  }

  std::sort(result.answers.begin(), result.answers.end());
  result.stats.elapsed_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace ccs
