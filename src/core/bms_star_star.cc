#include "core/bms_star_star.h"

#include <algorithm>
#include <cstdint>

#include "core/candidate_gen.h"
#include "core/parallel_eval.h"
#include "util/check.h"
#include "util/stopwatch.h"

namespace ccs {
namespace {

// Shared preprocessing: the frequent GOOD1 universe and its witness split.
// For BMS** the necessary witness class is used (footnote 7); BMS++ uses
// the stricter single-witness pushed class, see bms_plus_plus.cc.
struct Universe {
  std::vector<ItemId> l1_plus;
  std::vector<ItemId> l1_minus;
  std::vector<ItemId> l1;
  std::vector<bool> is_witness;
};

Universe BuildUniverse(const TransactionDatabase& db,
                       const ItemCatalog& catalog,
                       const ConstraintSet& constraints,
                       const MiningOptions& options) {
  Universe u;
  u.is_witness.assign(db.num_items(), false);
  const bool witnessed = constraints.has_necessary_witness();
  for (ItemId i = 0; i < db.num_items(); ++i) {
    if (db.ItemSupport(i) < options.min_support) continue;
    if (!constraints.SingletonSatisfiesAntiMonotone(i, catalog)) continue;
    if (!witnessed || constraints.IsNecessaryWitnessItem(i, catalog)) {
      u.l1_plus.push_back(i);
      u.is_witness[i] = true;
    } else {
      u.l1_minus.push_back(i);
    }
  }
  u.l1.reserve(u.l1_plus.size() + u.l1_minus.size());
  std::merge(u.l1_plus.begin(), u.l1_plus.end(), u.l1_minus.begin(),
             u.l1_minus.end(), std::back_inserter(u.l1));
  return u;
}

// Phase-1 per-candidate result (SUPP membership plus the statistic).
struct SuppEval {
  enum class Outcome : std::uint8_t { kPruned, kUnsupported, kSupported };
  Outcome outcome = Outcome::kPruned;
  double chi2 = 0.0;
};

// Fused-pass per-candidate result for BMS**opt.
struct FusedEval {
  enum class Outcome : std::uint8_t { kPruned, kUnsupported, kKept };
  Outcome outcome = FusedEval::Outcome::kPruned;
  bool tested = false;
  bool correlated = false;
  bool valid = false;
};

}  // namespace

MiningResult MineBmsStarStar(const TransactionDatabase& db,
                             const ItemCatalog& catalog,
                             const ConstraintSet& constraints,
                             const MiningOptions& options,
                             MiningContext* ctx) {
  if (ctx == nullptr) {
    ParallelExecutor serial(1);
    MiningContext local(serial, Algorithm::kBmsStarStar);
    return MineBmsStarStar(db, catalog, constraints, options, &local);
  }
  CCS_CHECK(!constraints.has_unclassified());
  Stopwatch timer;
  EvalWorkers workers(db, options, ctx->num_threads(), ctx->ct_cache(),
                      ctx->simd(), ctx->metrics());
  MiningResult result;
  const Universe u = BuildUniverse(db, catalog, constraints, options);

  // Phase 1: SUPP_k for every level, recording each supported set's
  // chi-squared statistic. All database work happens in the parallel
  // pass; the ordered reduction fills SUPP so its order matches the
  // serial run.
  std::vector<std::vector<Itemset>> supp(options.max_set_size + 1);
  ItemsetMap<double> chi2_of;
  std::vector<Itemset> candidates;
  {
    PhaseScope phase(*ctx, "candidate_gen");
    candidates = WitnessedPairs(u.l1_plus, u.l1_minus);
  }
  std::vector<SuppEval> evals;
  for (std::size_t k = 2; k <= options.max_set_size && !candidates.empty();
       ++k) {
    const Termination boundary =
        ctx->CheckAtLevel(result.stats, result.answers.size());
    if (boundary != Termination::kCompleted) {
      result.termination = boundary;
      break;
    }
    Stopwatch level_timer;
    Tracer::Span level_span(ctx->tracer(), "level");
    LevelStats& level = result.stats.Level(k);
    evals.assign(candidates.size(), SuppEval());
    const Termination pass = GovernedBuildTables(
        *ctx, workers, candidates,
        [&](std::size_t i) {
          if (!constraints.TestAntiMonotoneNonSuccinct(candidates[i].span(),
                                                       catalog)) {
            evals[i].outcome = SuppEval::Outcome::kPruned;
            return false;
          }
          return true;
        },
        [&](std::size_t i, std::size_t t,
            const stats::ContingencyTable& table) {
          SuppEval& e = evals[i];
          if (!workers.judge(t).IsCtSupported(table)) {
            e.outcome = SuppEval::Outcome::kUnsupported;
            return;
          }
          e.outcome = SuppEval::Outcome::kSupported;
          e.chi2 = table.ChiSquaredStatistic();
        });
    if (pass != Termination::kCompleted) {
      result.termination = pass;
      break;
    }
    {
      PhaseScope judge_phase(*ctx, "judge");
      for (std::size_t i = 0; i < candidates.size(); ++i) {
        const Itemset& s = candidates[i];
        const SuppEval& e = evals[i];
        ++level.candidates;
        switch (e.outcome) {
          case SuppEval::Outcome::kPruned:
            ++level.pruned_before_ct;
            break;
          case SuppEval::Outcome::kUnsupported:
            ++level.tables_built;
            break;
          case SuppEval::Outcome::kSupported:
            ++level.tables_built;
            ++level.ct_supported;
            supp[k].push_back(s);
            chi2_of[s] = e.chi2;
            break;
        }
      }
    }
    ++result.stats.levels_completed;
    level.wall_seconds += level_timer.ElapsedSeconds();
    ctx->ReportLevel(level, result.answers.size(),
                     level_timer.ElapsedSeconds());
    if (k == options.max_set_size) break;
    PhaseScope gen_phase(*ctx, "candidate_gen");
    const ItemsetSet closed(supp[k].begin(), supp[k].end());
    candidates = ExtendSeeds(
        supp[k], u.l1, [&closed, &u](const Itemset& s) {
          return AllWitnessedCoSubsetsIn(s, closed, u.is_witness);
        });
  }

  // Phase 2: pure-CPU upward sweep inside SUPP (no contingency tables,
  // so it stays serial). If phase 1 tripped, supp holds exactly its
  // completed levels and the sweep still yields a valid partial answer
  // set; budgets bound database work only, so phase 2 polls just the
  // deadline and cancellation — and never overwrites an earlier trip.
  ItemsetMap<bool> correlated_flag;
  std::vector<Itemset> current = supp[2];
  for (std::size_t k = 2; k <= options.max_set_size; ++k) {
    if (result.termination == Termination::kCompleted) {
      const Termination verdict = ctx->CheckNow();
      if (verdict != Termination::kCompleted) {
        result.termination = verdict;
        break;
      }
    }
    Stopwatch level_timer;
    Tracer::Span level_span(ctx->tracer(), "level");
    LevelStats& level = result.stats.Level(k);
    ItemsetSet notsig_here;
    {
      PhaseScope judge_phase(*ctx, "judge");
      for (const Itemset& s : current) {
        bool correlated = false;
        for (std::size_t i = 0; i < s.size() && !correlated; ++i) {
          const auto it = correlated_flag.find(s.WithoutIndex(i));
          correlated = it != correlated_flag.end() && it->second;
        }
        if (!correlated) {
          ++level.chi2_tests;
          correlated =
              chi2_of[s] >= workers.judge(0).Cutoff(static_cast<int>(s.size()));
        }
        if (correlated) ++level.correlated;
        if (correlated &&
            constraints.TestMonotoneDeferred(s.span(), catalog)) {
          ++level.sig_added;
          result.answers.push_back(s);
        } else {
          ++level.notsig_added;
          notsig_here.insert(s);
          correlated_flag[s] = correlated;
        }
      }
    }
    level.wall_seconds += level_timer.ElapsedSeconds();
    ctx->ReportLevel(level, result.answers.size(),
                     level_timer.ElapsedSeconds());
    if (k == options.max_set_size) break;
    PhaseScope gen_phase(*ctx, "candidate_gen");
    current.clear();
    for (const Itemset& s : supp[k + 1]) {
      if (AllWitnessedCoSubsetsIn(s, notsig_here, u.is_witness)) {
        current.push_back(s);
      }
    }
  }

  std::sort(result.answers.begin(), result.answers.end());
  workers.AccumulateInto(result.stats);
  result.stats.elapsed_seconds = timer.ElapsedSeconds();
  return result;
}

MiningResult MineBmsStarStarOpt(const TransactionDatabase& db,
                                const ItemCatalog& catalog,
                                const ConstraintSet& constraints,
                                const MiningOptions& options,
                                MiningContext* ctx) {
  if (ctx == nullptr) {
    ParallelExecutor serial(1);
    MiningContext local(serial, Algorithm::kBmsStarStarOpt);
    return MineBmsStarStarOpt(db, catalog, constraints, options, &local);
  }
  CCS_CHECK(!constraints.has_unclassified());
  Stopwatch timer;
  EvalWorkers workers(db, options, ctx->num_threads(), ctx->ct_cache(),
                      ctx->simd(), ctx->metrics());
  MiningResult result;
  const Universe u = BuildUniverse(db, catalog, constraints, options);

  // Fused level-wise pass. The parallel stage reads correlated_flag
  // entries of size k-1 only (written during level k-1's reduction), so
  // inheritance is schedule-independent; size-k flags are written in the
  // ordered reduction below.
  ItemsetMap<bool> correlated_flag;
  std::vector<Itemset> candidates;
  {
    PhaseScope phase(*ctx, "candidate_gen");
    candidates = WitnessedPairs(u.l1_plus, u.l1_minus);
  }
  std::vector<FusedEval> evals;
  for (std::size_t k = 2; k <= options.max_set_size && !candidates.empty();
       ++k) {
    const Termination boundary =
        ctx->CheckAtLevel(result.stats, result.answers.size());
    if (boundary != Termination::kCompleted) {
      result.termination = boundary;
      break;
    }
    Stopwatch level_timer;
    Tracer::Span level_span(ctx->tracer(), "level");
    LevelStats& level = result.stats.Level(k);
    evals.assign(candidates.size(), FusedEval());
    const Termination pass = GovernedBuildTables(
        *ctx, workers, candidates,
        [&](std::size_t i) {
          if (!constraints.TestAntiMonotoneNonSuccinct(candidates[i].span(),
                                                       catalog)) {
            evals[i].outcome = FusedEval::Outcome::kPruned;
            return false;
          }
          return true;
        },
        [&](std::size_t i, std::size_t t,
            const stats::ContingencyTable& table) {
          const Itemset& s = candidates[i];
          FusedEval& e = evals[i];
          if (!workers.judge(t).IsCtSupported(table)) {
            e.outcome = FusedEval::Outcome::kUnsupported;
            return;
          }
          e.outcome = FusedEval::Outcome::kKept;
          for (std::size_t j = 0; j < s.size() && !e.correlated; ++j) {
            const auto it = correlated_flag.find(s.WithoutIndex(j));
            e.correlated = it != correlated_flag.end() && it->second;
          }
          if (!e.correlated) {
            e.tested = true;
            e.correlated = workers.judge(t).IsCorrelated(table);
          }
          e.valid = e.correlated &&
                    constraints.TestMonotoneDeferred(s.span(), catalog);
        });
    if (pass != Termination::kCompleted) {
      result.termination = pass;
      break;
    }
    std::vector<Itemset> notsig;
    {
      PhaseScope judge_phase(*ctx, "judge");
      for (std::size_t i = 0; i < candidates.size(); ++i) {
        const Itemset& s = candidates[i];
        const FusedEval& e = evals[i];
        ++level.candidates;
        if (e.outcome == FusedEval::Outcome::kPruned) {
          ++level.pruned_before_ct;
          continue;
        }
        ++level.tables_built;
        if (e.outcome == FusedEval::Outcome::kUnsupported) continue;
        ++level.ct_supported;
        if (e.tested) ++level.chi2_tests;
        if (e.correlated) ++level.correlated;
        if (e.valid) {
          ++level.sig_added;
          result.answers.push_back(s);
        } else {
          ++level.notsig_added;
          notsig.push_back(s);
          correlated_flag[s] = e.correlated;
        }
      }
    }
    ++result.stats.levels_completed;
    level.wall_seconds += level_timer.ElapsedSeconds();
    ctx->ReportLevel(level, result.answers.size(),
                     level_timer.ElapsedSeconds());
    if (k == options.max_set_size) break;
    PhaseScope gen_phase(*ctx, "candidate_gen");
    const ItemsetSet closed(notsig.begin(), notsig.end());
    candidates = ExtendSeeds(
        notsig, u.l1, [&closed, &u](const Itemset& s) {
          return AllWitnessedCoSubsetsIn(s, closed, u.is_witness);
        });
  }

  std::sort(result.answers.begin(), result.answers.end());
  workers.AccumulateInto(result.stats);
  result.stats.elapsed_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace ccs
