#ifndef CCS_CORE_SAMPLING_H_
#define CCS_CORE_SAMPLING_H_

#include <cstdint>

#include "constraints/constraint_set.h"
#include "core/options.h"
#include "core/result.h"
#include "txn/catalog.h"
#include "txn/database.h"

namespace ccs {

// Sampling-accelerated VALID_MIN mining, in the spirit of Toivonen
// (VLDB'96, cited in the paper's introduction): run BMS++ on a Bernoulli
// sample of the baskets with a slackened support threshold, then verify
// every candidate answer against the full database.
//
// Guarantees: every confirmed answer is a true member of VALID_MIN on the
// full database — verification re-checks frequency of the items,
// CT-support, the chi-squared test, constraint satisfaction, and
// minimality (every co-dimension-1 subset must be uncorrelated on the
// full data; upward closure of the statistic makes that sufficient).
// Completeness is probabilistic: answers whose evidence did not surface in
// the sample are missed, which the caller can monitor through the
// candidate/confirmed counters. Useful when the database dwarfs memory
// bandwidth and one full verification pass is much cheaper than a full
// mining run.
struct SamplingOptions {
  // Bernoulli inclusion probability per transaction.
  double sample_fraction = 0.1;
  // The sample run's support threshold is
  // min_support * sample_fraction * support_slack — slack below the
  // proportional threshold reduces misses near the boundary (Toivonen's
  // lowered-threshold idea).
  double support_slack = 0.8;
  std::uint64_t seed = 1;
};

struct SampledMiningResult {
  // Verified answers on the full database (sound; possibly incomplete).
  MiningResult result;
  std::size_t sample_size = 0;
  std::size_t candidates_from_sample = 0;
  std::size_t confirmed = 0;
};

SampledMiningResult MineBmsPlusPlusSampled(const TransactionDatabase& db,
                                           const ItemCatalog& catalog,
                                           const ConstraintSet& constraints,
                                           const MiningOptions& options,
                                           const SamplingOptions& sampling);

}  // namespace ccs

#endif  // CCS_CORE_SAMPLING_H_
