#include "core/pair_tier.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "util/check.h"

namespace ccs {

SharedPairTier SharedPairTier::Build(const TransactionDatabase& db,
                                     std::size_t budget_words) {
  CCS_CHECK(db.finalized());
  SharedPairTier tier;
  if (budget_words == 0 || db.num_items() < 2) return tier;

  // Rank items by (support desc, id asc) — the pairs most likely to recur
  // across queries are those among the most frequent items.
  std::vector<ItemId> ranked;
  ranked.reserve(db.num_items());
  for (ItemId i = 0; i < db.num_items(); ++i) {
    if (db.ItemSupport(i) > 0) ranked.push_back(i);
  }
  std::sort(ranked.begin(), ranked.end(), [&db](ItemId a, ItemId b) {
    const std::uint64_t sa = db.ItemSupport(a);
    const std::uint64_t sb = db.ItemSupport(b);
    return sa != sb ? sa > sb : a < b;
  });

  // Triangular fill: rank m pairs against every better rank, so the top
  // items' pairs enter before the budget can run out.
  for (std::size_t m = 1; m < ranked.size(); ++m) {
    for (std::size_t l = 0; l < m; ++l) {
      DynamicBitset bits;
      const std::uint64_t count =
          bits.AssignAndCount(db.tidset(ranked[l]), db.tidset(ranked[m]));
      if (count == 0) continue;  // misses recompute cheaply; don't store
      if (tier.words_in_use_ + bits.num_words() > budget_words) {
        return tier;  // budget reached: the tier is what fit
      }
      tier.words_in_use_ += bits.num_words();
      const Itemset key =
          Itemset().WithItem(ranked[l]).WithItem(ranked[m]);
      tier.pairs_.emplace(key, Entry{std::move(bits), count});
    }
  }
  return tier;
}

const SharedPairTier::Entry* SharedPairTier::Lookup(ItemId a,
                                                    ItemId b) const {
  if (pairs_.empty() || a == b) return nullptr;
  const Itemset key = Itemset().WithItem(a).WithItem(b);
  const auto it = pairs_.find(key);
  return it != pairs_.end() ? &it->second : nullptr;
}

}  // namespace ccs
