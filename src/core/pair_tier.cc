#include "core/pair_tier.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "util/check.h"

namespace ccs {

SharedPairTier SharedPairTier::Build(const TransactionDatabase& db,
                                     std::size_t budget_words,
                                     SimdOptions simd) {
  CCS_CHECK(db.finalized());
  SharedPairTier tier;
  if (budget_words == 0 || db.num_items() < 2) return tier;

  // Rank items by (support desc, id asc) — the pairs most likely to recur
  // across queries are those among the most frequent items.
  std::vector<ItemId> ranked;
  ranked.reserve(db.num_items());
  for (ItemId i = 0; i < db.num_items(); ++i) {
    if (db.ItemSupport(i) > 0) ranked.push_back(i);
  }
  std::sort(ranked.begin(), ranked.end(), [&db](ItemId a, ItemId b) {
    const std::uint64_t sa = db.ItemSupport(a);
    const std::uint64_t sb = db.ItemSupport(b);
    return sa != sb ? sa > sb : a < b;
  });

  // One horizontal PairStage pass (core/simd_kernel.h) learns every
  // pair's co-occurrence count up front, so empty pairs are skipped
  // without an AND pass and stored pairs memoize the stage's count
  // instead of re-counting the intersection. Skipped when the stage's
  // triangular array would outgrow its gate or the kernel is disabled —
  // the fallback recomputes each count via the fused combine, and the
  // walk below is count-for-count identical either way.
  const bool use_stage =
      simd.enabled &&
      PairStage::CellsFor(ranked.size()) <= simd.pair_stage_max_cells;
  PairStage stage(db, use_stage ? ranked : std::vector<ItemId>{});
  if (use_stage) stage.Accumulate(0, db.num_transactions());
  const KernelMode kernel = SelectKernel(simd, db);

  // Triangular fill: rank m pairs against every better rank, so the top
  // items' pairs enter before the budget can run out.
  for (std::size_t m = 1; m < ranked.size(); ++m) {
    for (std::size_t l = 0; l < m; ++l) {
      if (use_stage && stage.PairSupport(ranked[l], ranked[m]) == 0) {
        continue;  // misses recompute cheaply; don't store
      }
      DynamicBitset bits;
      const std::uint64_t count = KernelAssignAndCount(
          bits, db.tidset(ranked[l]), db.tidset(ranked[m]), kernel);
      if (count == 0) continue;
      if (tier.words_in_use_ + bits.num_words() > budget_words) {
        return tier;  // budget reached: the tier is what fit
      }
      tier.words_in_use_ += bits.num_words();
      const Itemset key =
          Itemset().WithItem(ranked[l]).WithItem(ranked[m]);
      tier.pairs_.emplace(key, Entry{std::move(bits), count});
    }
  }
  return tier;
}

const SharedPairTier::Entry* SharedPairTier::Lookup(ItemId a,
                                                    ItemId b) const {
  if (pairs_.empty() || a == b) return nullptr;
  const Itemset key = Itemset().WithItem(a).WithItem(b);
  const auto it = pairs_.find(key);
  return it != pairs_.end() ? &it->second : nullptr;
}

}  // namespace ccs
