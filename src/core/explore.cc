#include "core/explore.h"

#include <algorithm>

#include "core/candidate_gen.h"
#include "core/ct_builder.h"
#include "core/judge.h"
#include "util/stopwatch.h"

namespace ccs {
namespace {

struct RegionInfo {
  bool correlated = false;   // closure over the region
  bool in_space = false;     // correlated & valid
  bool has_subset_in_space = false;
  bool has_superset_in_space = false;
};

}  // namespace

SolutionSpace ExploreSolutionSpace(const TransactionDatabase& db,
                                   const ItemCatalog& catalog,
                                   const ConstraintSet& constraints,
                                   const MiningOptions& options) {
  Stopwatch timer;
  CorrelationJudge judge(options);
  ContingencyTableBuilder builder(db);
  SolutionSpace out;

  // The exploration region is the CT-supported, anti-monotone-valid part
  // of the frequent lattice (both properties downward closed, so the
  // region is a single downward-closed body the sweep covers level-wise).
  // Monotone and unclassified constraints only decide membership in the
  // space; they cannot prune the region.
  std::vector<ItemId> universe;
  for (ItemId i = 0; i < db.num_items(); ++i) {
    if (db.ItemSupport(i) < options.min_support) continue;
    if (!constraints.SingletonSatisfiesAntiMonotone(i, catalog)) continue;
    universe.push_back(i);
  }

  ItemsetMap<RegionInfo> region;
  std::vector<std::vector<Itemset>> region_by_level(options.max_set_size + 1);
  std::vector<Itemset> frontier;
  std::vector<Itemset> candidates = AllPairs(universe);
  for (std::size_t k = 2; k <= options.max_set_size && !candidates.empty();
       ++k) {
    LevelStats& level = out.stats.Level(k);
    frontier.clear();
    for (const Itemset& s : candidates) {
      ++level.candidates;
      if (!constraints.TestAntiMonotoneNonSuccinct(s.span(), catalog)) {
        ++level.pruned_before_ct;
        continue;
      }
      const stats::ContingencyTable table = builder.Build(s);
      ++level.tables_built;
      if (!judge.IsCtSupported(table)) continue;
      ++level.ct_supported;
      RegionInfo info;
      for (std::size_t i = 0; i < s.size() && !info.correlated; ++i) {
        const auto it = region.find(s.WithoutIndex(i));
        info.correlated = it != region.end() && it->second.correlated;
      }
      if (!info.correlated) {
        ++level.chi2_tests;
        info.correlated = judge.IsCorrelated(table);
      }
      if (info.correlated) {
        ++level.correlated;
        info.in_space = constraints.TestMonotone(s.span(), catalog) &&
                        constraints.TestUnclassified(s.span(), catalog);
      }
      if (info.in_space) {
        ++level.sig_added;
        out.all.push_back(s);
      } else {
        ++level.notsig_added;
      }
      region.emplace(s, info);
      region_by_level[k].push_back(s);
      frontier.push_back(s);
    }
    if (k == options.max_set_size) break;
    const ItemsetSet closed(frontier.begin(), frontier.end());
    candidates = ExtendSeeds(frontier, universe,
                             [&closed](const Itemset& s) {
                               return AllCoSubsetsIn(s, closed);
                             });
  }
  std::sort(out.all.begin(), out.all.end());

  // Lower border: ascending DP for "some proper subset is in the space".
  // A set's subset chain stays inside the region (downward closure), so
  // co-dimension-1 propagation over the region map is complete even when
  // unclassified constraints punch holes.
  for (std::size_t k = 3; k < region_by_level.size(); ++k) {
    for (const Itemset& s : region_by_level[k]) {
      RegionInfo& info = region.find(s)->second;
      for (std::size_t i = 0; i < s.size() && !info.has_subset_in_space;
           ++i) {
        const auto it = region.find(s.WithoutIndex(i));
        if (it == region.end()) continue;
        info.has_subset_in_space =
            it->second.in_space || it->second.has_subset_in_space;
      }
    }
  }
  // Upper border: descending DP for "some proper superset is in the
  // space". Supersets outside the region cannot be in the space (the
  // region's defining properties are anti-monotone).
  for (std::size_t k = region_by_level.size(); k-- > 2;) {
    for (const Itemset& s : region_by_level[k]) {
      const RegionInfo& info = region.find(s)->second;
      const bool flag = info.in_space || info.has_superset_in_space;
      if (!flag) continue;
      for (std::size_t i = 0; i < s.size(); ++i) {
        const auto it = region.find(s.WithoutIndex(i));
        if (it != region.end()) it->second.has_superset_in_space = true;
      }
    }
  }

  for (const Itemset& s : out.all) {
    const RegionInfo& info = region.find(s)->second;
    if (!info.has_subset_in_space) out.lower_border.push_back(s);
    if (!info.has_superset_in_space) out.upper_border.push_back(s);
  }
  out.stats.elapsed_seconds = timer.ElapsedSeconds();
  return out;
}

}  // namespace ccs
