#include "core/run_query.h"

#include <exception>

#include "constraints/constraint_set.h"
#include "core/bms.h"
#include "core/ct_delta.h"
#include "core/bms_plus.h"
#include "core/bms_plus_plus.h"
#include "core/bms_star.h"
#include "core/bms_star_star.h"
#include "util/status.h"
#include "util/stopwatch.h"

namespace ccs {

namespace {

// When a worker threw mid-level, the PR 2 exception path skipped the
// variants' drain-side AccumulateInto — the unwind destroyed the partial
// MiningStats along with the variant's frame. The EvalWorkers destructor,
// however, flushed every builder's counters into the run registry *during*
// that unwind, so the per-thread table counts and cache telemetry survive
// and can be restored onto the kError result here.
void RecoverWorkerTelemetry(const MetricsRegistry& registry,
                            std::size_t num_threads, MiningStats& stats) {
  const MetricsSnapshot snapshot = registry.Snapshot();
  if (!snapshot.enabled) return;
  stats.num_threads = num_threads;
  if (const MetricScalar* tables = snapshot.FindScalar("ct.tables_built")) {
    stats.tables_built_per_thread = tables->shards;
  }
  stats.ct_cache_lookups = snapshot.Value("ct_cache.lookups");
  stats.ct_cache_hits = snapshot.Value("ct_cache.hits");
  stats.ct_cache_misses = snapshot.Value("ct_cache.misses");
  stats.ct_cache_evictions = snapshot.Value("ct_cache.evictions");
  stats.ct_cache_shared_hits = snapshot.Value("ct_cache.shared_hits");
  stats.ct_word_ops = snapshot.Value("ct.word_ops");
  stats.ct_pair_stage_tables = snapshot.Value("ct.pair_stage_tables");
  stats.ct_pair_stage_ops = snapshot.Value("ct.pair_stage_ops");
}

// Fills in the run-level telemetry after the algorithm returns: exports
// the deterministic MiningStats aggregates as engine.* metrics, stamps
// run.wall_ns, and attaches the registry snapshot and trace log to the
// result.
void FinalizeTelemetry(MetricsRegistry& registry, const Tracer& tracer,
                       double wall_seconds, MiningResult& result) {
  // The deterministic MiningStats aggregates, migrated onto the registry
  // under the engine.* prefix. These are the counters that must be
  // bit-identical across thread counts AND across CT-cache modes; the
  // worker-side ct.* / ct_cache.* / executor.* families legitimately move
  // with the CT path and are flushed by EvalWorkers instead.
  const auto counter = [&registry](const char* name) {
    return registry.Counter(name, MetricStability::kDeterministic);
  };
  const MiningStats& stats = result.stats;
  std::uint64_t pruned = 0;
  std::uint64_t ct_supported = 0;
  std::uint64_t correlated = 0;
  std::uint64_t sig_added = 0;
  std::uint64_t notsig_added = 0;
  for (const LevelStats& level : stats.levels) {
    pruned += level.pruned_before_ct;
    ct_supported += level.ct_supported;
    correlated += level.correlated;
    sig_added += level.sig_added;
    notsig_added += level.notsig_added;
  }
  registry.Add(counter("engine.candidates"), 0, stats.TotalCandidates());
  registry.Add(counter("engine.tables_built"), 0, stats.TotalTablesBuilt());
  registry.Add(counter("engine.chi2_tests"), 0, stats.TotalChi2Tests());
  registry.Add(counter("engine.pruned_before_ct"), 0, pruned);
  registry.Add(counter("engine.ct_supported"), 0, ct_supported);
  registry.Add(counter("engine.correlated"), 0, correlated);
  registry.Add(counter("engine.sig_added"), 0, sig_added);
  registry.Add(counter("engine.notsig_added"), 0, notsig_added);
  registry.Add(counter("engine.levels_completed"), 0,
               stats.levels_completed);
  registry.GaugeMax(
      registry.Gauge("engine.answers", MetricStability::kDeterministic), 0,
      result.answers.size());
  const MetricsRegistry::Id level_hist = registry.Histogram(
      "engine.level_candidates", MetricStability::kDeterministic,
      {1, 10, 100, 1000, 10000, 100000});
  for (const LevelStats& level : stats.levels) {
    if (level.candidates > 0) {
      registry.Observe(level_hist, 0, level.candidates);
    }
  }
  registry.Add(registry.Counter("run.wall_ns", MetricStability::kTiming), 0,
               static_cast<std::uint64_t>(wall_seconds * 1e9));
  result.metrics = registry.Snapshot();
  result.trace = tracer.Log();
}

}  // namespace

MiningResult RunMiningQuery(const TransactionDatabase& db,
                            const ItemCatalog& catalog,
                            const ResolvedEngineOptions& options,
                            ParallelExecutor& executor,
                            const MiningRequest& request) {
  static const ConstraintSet kNoConstraints;
  const ConstraintSet& constraints = request.constraints != nullptr
                                         ? *request.constraints
                                         : kNoConstraints;
  // Run-scoped observability: a fresh registry and tracer per Run, so the
  // snapshot attached to the result describes exactly this query.
  MetricsRegistry registry(executor.num_threads(), options.metrics);
  Tracer tracer(options.trace, options.trace_capacity);
  executor.SetMetrics(&registry);
  struct DetachGuard {
    ParallelExecutor* executor;
    ~DetachGuard() { executor->SetMetrics(nullptr); }
  } detach{&executor};
  const RunGovernor governor(request.control);
  MiningContext ctx(executor, request.algorithm, &options.progress_callback,
                    &governor, options.ct_cache, options.simd, &registry,
                    &tracer, request.ct_delta);
  // A record-only oracle marks a streaming full re-mine (cost model
  // declined the delta path or no table cache existed); count it so the
  // delta/full split is visible next to stream.delta_tables.
  if (request.ct_delta != nullptr && !request.ct_delta->lookup_enabled()) {
    registry.Add(registry.Counter("stream.full_remine",
                                  MetricStability::kDeterministic),
                 0, 1);
  }
  Stopwatch run_timer;
  MiningResult result;
  {
    Tracer::Span run_span(&tracer, "run");
    // A throwing worker (fault injection, bad_alloc, a pathological
    // constraint) must degrade to kError, not take the process down; the
    // executor has already drained its pool by the time the exception
    // reaches this frame, so it stays good for the next run.
    try {
      switch (request.algorithm) {
        case Algorithm::kBms:
          result = MineBms(db, request.options, &ctx);
          break;
        case Algorithm::kBmsPlus:
          result = MineBmsPlus(db, catalog, constraints, request.options,
                               &ctx);
          break;
        case Algorithm::kBmsPlusPlus:
          result = MineBmsPlusPlus(db, catalog, constraints, request.options,
                                   &ctx);
          break;
        case Algorithm::kBmsStar:
          result = MineBmsStar(db, catalog, constraints, request.options,
                               &ctx);
          break;
        case Algorithm::kBmsStarStar:
          result = MineBmsStarStar(db, catalog, constraints, request.options,
                                   &ctx);
          break;
        case Algorithm::kBmsStarStarOpt:
          result = MineBmsStarStarOpt(db, catalog, constraints,
                                      request.options, &ctx);
          break;
      }
    } catch (const std::exception& e) {
      result = MiningResult();
      result.termination = Termination::kError;
      result.error = InternalError(e.what());
      result.stats.elapsed_seconds = run_timer.ElapsedSeconds();
      RecoverWorkerTelemetry(registry, executor.num_threads(), result.stats);
    }
  }
  FinalizeTelemetry(registry, tracer, run_timer.ElapsedSeconds(), result);
  return result;
}

}  // namespace ccs
