#include "core/session.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <utility>

#include "core/run_query.h"
#include "util/check.h"

namespace ccs {

namespace {

// Epochs are process-unique and monotone; 0 is reserved so a
// default-initialized "no epoch yet" can never collide with a real handle.
std::uint64_t NextEpoch() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

std::size_t TierBudgetWords(const HandleOptions& options) {
  return options.pair_tier_budget_mib *
         ((std::size_t{1} << 20) / sizeof(std::uint64_t));
}

}  // namespace

DatabaseHandle DatabaseHandle::Create(TransactionDatabase db,
                                      ItemCatalog catalog,
                                      HandleOptions options) {
  auto payload = std::make_shared<Payload>();
  if (!db.finalized()) db.Finalize();
  payload->owned_db =
      std::make_unique<const TransactionDatabase>(std::move(db));
  payload->owned_catalog =
      std::make_unique<const ItemCatalog>(std::move(catalog));
  payload->db = payload->owned_db.get();
  payload->catalog = payload->owned_catalog.get();
  payload->tier = SharedPairTier::Build(*payload->db,
                                        TierBudgetWords(options),
                                        options.simd);
  payload->epoch = NextEpoch();
  return DatabaseHandle(std::move(payload));
}

DatabaseHandle DatabaseHandle::Borrow(const TransactionDatabase& db,
                                      const ItemCatalog& catalog,
                                      HandleOptions options) {
  CCS_CHECK(db.finalized());
  auto payload = std::make_shared<Payload>();
  payload->db = &db;
  payload->catalog = &catalog;
  payload->tier =
      SharedPairTier::Build(db, TierBudgetWords(options), options.simd);
  payload->epoch = NextEpoch();
  return DatabaseHandle(std::move(payload));
}

MiningSession::MiningSession(DatabaseHandle handle, EngineOptions options,
                             ExecutorPool* pool)
    : handle_(std::move(handle)),
      resolved_(ResolveEngineOptions(options)),
      pool_(pool != nullptr ? pool : &ProcessExecutorPool()) {
  CCS_CHECK(handle_.valid());
}

MiningResult MiningSession::Run(const MiningRequest& request) const {
  const ExecutorPool::Lease lease = pool_->Acquire(resolved_.num_threads);
  // The tier rides on a per-call copy of the resolved options: the
  // session's stored options stay handle-free, so options() reports the
  // configuration, not a dangling layout pointer, if the handle is swapped
  // on a future session type.
  ResolvedEngineOptions options = resolved_;
  options.ct_cache.shared_pairs = handle_.pair_tier();
  return RunMiningQuery(handle_.database(), handle_.catalog(), options,
                        *lease, request);
}

}  // namespace ccs
