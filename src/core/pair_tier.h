#ifndef CCS_CORE_PAIR_TIER_H_
#define CCS_CORE_PAIR_TIER_H_

#include <cstddef>
#include <cstdint>

#include "core/itemset.h"
#include "core/simd_kernel.h"
#include "txn/database.h"
#include "util/bitset.h"

namespace ccs {

// A read-only tier of precomputed k=2 tid-set intersections shared by
// every worker and every query over one finalized database — the
// Finalize-time layout piece of a DatabaseHandle (DESIGN.md §12).
//
// The per-worker IntersectionCache (DESIGN.md §9) rediscovers hot pair
// intersections once per worker per run; under a resident service the same
// pairs are recomputed by every request. This tier hoists the decision to
// handle-creation time: the pairwise intersections of the highest-support
// items are materialized once, and every ContingencyTableBuilder consults
// the tier before its private cache. Being immutable after Build, it is
// shared across threads with no synchronization, and its contents are a
// pure function of (database, budget) — deterministic, like everything
// else on the answer path. Tables recovered through the tier are exact
// intersections, so answers are bit-identical with the tier on or off.
//
// Pair selection is deterministic: items ranked by (support descending,
// id ascending), zero-support items excluded, pairs added in triangular
// order (the 2nd-ranked item against the 1st, then the 3rd against the
// 1st and 2nd, ...) until the word budget is exhausted. Empty
// intersections are not stored — a lookup miss falls back to the normal
// compute path, which is cheap for sparse pairs.
class SharedPairTier {
 public:
  struct Entry {
    DynamicBitset bits;
    std::uint64_t count = 0;  // == bits.Count(), memoized
  };

  // Requires db.finalized(). budget_words bounds the stored bitset words;
  // 0 yields an empty tier (every lookup misses). `simd` only selects how
  // the intersections are materialized (vector kernel + a PairStage
  // pre-pass that knows which pairs are empty before any bitset work):
  // the tier's contents stay a pure function of (database, budget),
  // bit-identical across kernel modes.
  static SharedPairTier Build(const TransactionDatabase& db,
                              std::size_t budget_words,
                              SimdOptions simd = {});

  // The intersection of the two items' tid-sets, or nullptr if the pair
  // is not in the tier. Item order does not matter. Safe to call from any
  // thread; the returned entry lives as long as the tier.
  const Entry* Lookup(ItemId a, ItemId b) const;

  std::size_t num_pairs() const { return pairs_.size(); }
  std::size_t words_in_use() const { return words_in_use_; }

 private:
  ItemsetMap<Entry> pairs_;
  std::size_t words_in_use_ = 0;
};

}  // namespace ccs

#endif  // CCS_CORE_PAIR_TIER_H_
