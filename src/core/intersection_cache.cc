#include "core/intersection_cache.h"

#include <utility>

#include "util/check.h"
#include "util/fault.h"

namespace ccs {

const IntersectionCache::Entry* IntersectionCache::LookupPinned(
    const Itemset& key) {
  ++stats_.lookups;
  const auto it = map_.find(key);
  if (it == map_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, it->second);  // mark most-recently-used
  Entry& entry = *it->second;
  if (!entry.pinned) {
    entry.pinned = true;
    pinned_.push_back(&entry);
  }
  return &entry;
}

const IntersectionCache::Entry* IntersectionCache::InsertPinned(
    const Itemset& key, DynamicBitset bits, std::uint64_t count) {
  // Cache growth is the one allocation site on the mining hot path; route
  // it through the injector so OOM-during-mining drills cover it.
  CCS_FAULT_POINT("alloc");
  CCS_DCHECK(map_.find(key) == map_.end());
  lru_.push_front(Entry{key, std::move(bits), count, /*pinned=*/true});
  Entry& entry = lru_.front();
  map_.emplace(key, lru_.begin());
  pinned_.push_back(&entry);
  words_in_use_ += entry.bits.num_words();
  EvictToBudget();
  return &entry;
}

void IntersectionCache::UnpinAll() {
  for (Entry* entry : pinned_) entry->pinned = false;
  pinned_.clear();
  EvictToBudget();
}

void IntersectionCache::Clear() {
  pinned_.clear();
  map_.clear();
  lru_.clear();
  words_in_use_ = 0;
}

void IntersectionCache::EvictToBudget() {
  if (words_in_use_ <= budget_words_) return;
  auto it = lru_.end();
  while (words_in_use_ > budget_words_ && it != lru_.begin()) {
    --it;
    if (it->pinned) continue;
    words_in_use_ -= it->bits.num_words();
    map_.erase(it->key);
    it = lru_.erase(it);
    ++stats_.evictions;
  }
}

}  // namespace ccs
