#ifndef CCS_CORE_CT_DELTA_H_
#define CCS_CORE_CT_DELTA_H_

#include <cstddef>
#include <optional>

#include "core/itemset.h"
#include "stats/contingency.h"

namespace ccs {

// Per-tick contingency-table oracle for the streaming path (DESIGN.md
// §15). Contingency-table cells are additive over disjoint transaction
// sets, so for a window that changed by an appended and an expired basket
// set the new table of any itemset is recoverable exactly:
//
//   CT_t(S) = CT_{t-1}(S) - CT_expired(S) + CT_appended(S)
//
// (integer arithmetic, no approximation — expired is a subset of the
// previous window, so the subtraction never underflows when evaluated
// first). A DeltaMiner installs one of these on MiningRequest::ct_delta;
// GovernedBuildTables then consults it before building each wanted
// candidate's table and records every table it emits, whichever path
// produced it — except pure pair batches, which keep the candidate-free
// k=2 pair stage (one shared horizontal pass per batch, cheaper than any
// per-candidate arithmetic) and are never recorded or recovered. Because
// the oracle only substitutes bit-identical cells — never skips a
// candidate and never changes the candidate order — every downstream
// judgment, counter of kDeterministic stability, and answer is identical
// to a fresh batch mine of the same window snapshot, at any thread count.
//
// Implementations live outside core (src/stream/delta_miner.cc); core only
// depends on this interface. Thread contract: Recover/Record are called
// concurrently from worker threads but always with that worker's distinct
// `thread` slot, so implementations shard mutable state per thread and
// need no locks.
class CtDeltaSource {
 public:
  virtual ~CtDeltaSource() = default;

  // False = record-only mode: the run is a full re-mine (cost model
  // declined the delta path, or no table cache exists yet) but the oracle
  // still captures every table for the next tick. Constant for the
  // lifetime of the run.
  virtual bool lookup_enabled() const = 0;

  // True when `s` contains an item present in this tick's appended or
  // expired baskets — i.e. any cell other than the all-absent one may have
  // changed. Pure function of the itemset; called from worker threads.
  virtual bool IsDirty(const Itemset& s) const = 0;

  // Returns the exact table of `s` over the current window, or nullopt on
  // a cache miss (the caller then builds from scratch). Only called when
  // lookup_enabled().
  virtual std::optional<stats::ContingencyTable> Recover(
      const Itemset& s, std::size_t thread) = 0;

  // Captures the finished table of `s` for the next tick's cache. Called
  // for every emitted table, recovered or built, in both modes — except
  // tables of pure pair batches, which stay on the k=2 fast paths.
  virtual void Record(const Itemset& s, std::size_t thread,
                      const stats::ContingencyTable& table) = 0;
};

}  // namespace ccs

#endif  // CCS_CORE_CT_DELTA_H_
