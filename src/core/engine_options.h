#ifndef CCS_CORE_ENGINE_OPTIONS_H_
#define CCS_CORE_ENGINE_OPTIONS_H_

#include <cstddef>

#include "core/algorithm.h"
#include "core/context.h"
#include "core/intersection_cache.h"
#include "core/options.h"
#include "core/run_control.h"
#include "core/simd_kernel.h"
#include "core/trace.h"

namespace ccs {

class ConstraintSet;
class CtDeltaSource;

// Session-level knobs, fixed for the lifetime of a MiningEngine or
// MiningSession. Everything query-level lives in MiningRequest, so adding
// session knobs here and query knobs there is non-breaking for both.
struct EngineOptions {
  // Executor width. 1 = serial (no worker threads); 0 = one thread per
  // hardware thread. Answers and the deterministic counters of
  // MiningStats are identical for every value.
  std::size_t num_threads = 1;

  // If set, called serially after each lattice-level pass of every run.
  ProgressCallback progress_callback;

  // Prefix-sharing contingency-table evaluation (DESIGN.md §9): when true,
  // each level's candidates run through ContingencyTableBuilder::BuildBatch
  // with a per-worker IntersectionCache; when false, every candidate uses
  // the original per-candidate recursion. Answers and the deterministic
  // counters are bit-identical either way — this is a kill switch kept for
  // differential testing and for memory-tight deployments. The CCS_CT_CACHE
  // environment variable ("0"/"1"), if set, overrides this field.
  bool ct_cache = true;

  // IntersectionCache budget per worker thread, in MiB of cached
  // intersection bitsets.
  std::size_t ct_cache_budget_mib = 32;

  // Vectorized contingency-table kernel + candidate-free k=2 pair stage
  // (DESIGN.md §14): when true, builders select the vector kernel for
  // SIMD-friendly databases at construction and all-pair candidate levels
  // run through the single-pass PairStage; when false, every bulk bitset
  // op uses the original word-at-a-time loop and the pair stage is off.
  // Answers and the deterministic counters on the bitset path are
  // bit-identical either way — this is a kill switch kept for
  // differential testing and as the escape hatch if a platform's vector
  // codegen misbehaves. The CCS_SIMD environment variable ("0"/"1"), if
  // set, overrides this field.
  bool simd_kernel = true;

  // Observability (DESIGN.md §10). `metrics` drives the per-run
  // MetricsRegistry that every Run aggregates into MiningResult::metrics;
  // false is the kill switch for overhead-sensitive deployments. The
  // CCS_METRICS environment variable ("0" disables) overrides the field.
  bool metrics = true;

  // Phase tracing: when true each Run records its run → level → phase
  // span tree into MiningResult::trace, bounded by `trace_capacity` spans
  // (drop-oldest). CCS_TRACE overrides both fields: "0" disables, "1"
  // enables at trace_capacity, an integer > 1 enables with that capacity.
  bool trace = false;
  std::size_t trace_capacity = Tracer::kDefaultCapacity;

  // Incremental streaming re-evaluation (DESIGN.md §15): when true, a
  // DeltaMiner may serve contingency tables from its per-tick delta cache
  // (through MiningRequest::ct_delta); when false it performs a full
  // re-mine on every tick and installs no oracle. Answers and the
  // deterministic counters are bit-identical either way — this is a kill
  // switch kept for differential testing and as the escape hatch if the
  // delta path ever misbehaves in production. The CCS_STREAM environment
  // variable ("0"/"1"), if set, overrides this field. Batch runs ignore
  // it entirely.
  bool streaming = true;
};

// One correlation-mining query: which algorithm, its statistical
// parameters, and the constraint conjunction. A plain aggregate so future
// knobs (sharding, sampling, ...) can be added without breaking callers.
struct MiningRequest {
  Algorithm algorithm = Algorithm::kBms;
  MiningOptions options;
  // Borrowed; must outlive the Run call. nullptr means no constraints.
  // Ignored by Algorithm::kBms, which is unconstrained by definition.
  const ConstraintSet* constraints = nullptr;
  // Deadline, cancellation, and work budgets; defaults to unlimited. A
  // tripped Run returns a partial MiningResult with the reason in
  // MiningResult::termination (see core/run_control.h).
  RunControl control;
  // Borrowed streaming table oracle (core/ct_delta.h); must outlive the
  // Run call. nullptr — every batch caller — builds all tables from the
  // database exactly as before. Installed only by stream::DeltaMiner.
  CtDeltaSource* ct_delta = nullptr;
};

// EngineOptions with every environment override folded in — the output of
// ResolveEngineOptions, and the only configuration shape the run path
// (RunMiningQuery) accepts. Constructing one of these without going
// through ResolveEngineOptions bypasses the env contract; don't.
struct ResolvedEngineOptions {
  // Concrete executor width: EngineOptions::num_threads with 0 expanded
  // to ParallelExecutor::HardwareThreads().
  std::size_t num_threads = 1;
  ProgressCallback progress_callback;
  // ct_cache.enabled reflects EngineOptions::ct_cache + CCS_CT_CACHE;
  // shared_pairs stays null here — it is a property of the DatabaseHandle,
  // stamped onto a copy of this struct by MiningSession.
  CtCacheOptions ct_cache;
  // simd.enabled reflects EngineOptions::simd_kernel + CCS_SIMD; the
  // admission thresholds keep their defaults (session-invariant).
  SimdOptions simd;
  bool metrics = true;
  bool trace = false;
  std::size_t trace_capacity = Tracer::kDefaultCapacity;
  // streaming reflects EngineOptions::streaming + CCS_STREAM; consumed by
  // stream::DeltaMiner, inert for batch runs.
  bool streaming = true;
};

// The single audited site where the CCS_CT_CACHE / CCS_SIMD / CCS_METRICS /
// CCS_TRACE / CCS_STREAM environment overrides are read (DESIGN.md §12).
// Precedence, pinned by core_session_test:
//   * ct_cache: CCS_CT_CACHE unset → the field; set → enabled iff != "0".
//   * simd:     CCS_SIMD unset → the field; set → enabled iff != "0".
//   * metrics:  CCS_METRICS unset → the field; set → enabled iff != "0".
//   * trace:    CCS_TRACE unset → the fields; "0" → disabled; "1" →
//               enabled at the field capacity; integer > 1 → enabled with
//               that capacity.
//   * streaming: CCS_STREAM unset → the field; set → enabled iff != "0".
// MiningEngine and MiningSession both resolve through this helper exactly
// once at construction, so the one-shot and service paths cannot diverge.
ResolvedEngineOptions ResolveEngineOptions(const EngineOptions& options);

}  // namespace ccs

#endif  // CCS_CORE_ENGINE_OPTIONS_H_
