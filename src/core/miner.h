#ifndef CCS_CORE_MINER_H_
#define CCS_CORE_MINER_H_

#include "constraints/constraint_set.h"
#include "core/algorithm.h"
#include "core/options.h"
#include "core/result.h"
#include "txn/catalog.h"
#include "txn/database.h"

namespace ccs {

// DEPRECATED COMPATIBILITY SHIM — prefer DatabaseHandle + MiningSession
// (core/session.h), or MiningEngine (core/engine.h) for a private pool.
//
// Dispatches a constrained correlation query to the chosen algorithm.
// kBms ignores `constraints`. The MIN_VALID algorithms require every
// constraint to be monotone or anti-monotone.
//
// Every call re-borrows the database into a throwaway single-threaded
// session, so it can use neither a warm executor, progress reporting, nor
// the handle-level layout (shared pair tier); the tree's own callers have
// been migrated off it. Compiling a call site requires defining
// CCS_ALLOW_DEPRECATED (the deprecation is an error under -Werror
// otherwise) — new code should not.
#if !defined(CCS_ALLOW_DEPRECATED)
[[deprecated("use MiningSession (core/session.h) or MiningEngine")]]
#endif
[[nodiscard]] MiningResult Mine(Algorithm algorithm,
                                const TransactionDatabase& db,
                                const ItemCatalog& catalog,
                                const ConstraintSet& constraints,
                                const MiningOptions& options);

}  // namespace ccs

#endif  // CCS_CORE_MINER_H_
