#ifndef CCS_CORE_MINER_H_
#define CCS_CORE_MINER_H_

#include "constraints/constraint_set.h"
#include "core/algorithm.h"
#include "core/options.h"
#include "core/result.h"
#include "txn/catalog.h"
#include "txn/database.h"

namespace ccs {

// Dispatches a constrained correlation query to the chosen algorithm.
// kBms ignores `constraints`. The MIN_VALID algorithms require every
// constraint to be monotone or anti-monotone.
//
// COMPATIBILITY SHIM — prefer MiningEngine (core/engine.h). This free
// function constructs a throwaway single-threaded engine per call, so it
// can use neither the thread pool nor progress reporting, and it rebinds
// the database on every query instead of once per session. It is kept so
// existing callers keep compiling and will be marked [[deprecated]] once
// the tree is fully migrated.
[[nodiscard]] MiningResult Mine(Algorithm algorithm,
                                const TransactionDatabase& db,
                                const ItemCatalog& catalog,
                                const ConstraintSet& constraints,
                                const MiningOptions& options);

}  // namespace ccs

#endif  // CCS_CORE_MINER_H_
