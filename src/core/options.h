#ifndef CCS_CORE_OPTIONS_H_
#define CCS_CORE_OPTIONS_H_

#include <cstdint>

#include "core/itemset.h"

namespace ccs {

// Statistical parameters of a (constrained) correlation query — the
// paper's (alpha, s, p%) triple plus engine knobs.
struct MiningOptions {
  // Chi-squared confidence level alpha: a set is correlated when its
  // statistic reaches the alpha-quantile of the chi-squared distribution.
  // The paper's experiments use 0.9.
  double significance = 0.9;

  // CT-support count threshold s (absolute number of transactions). The
  // harnesses convert the paper's percentage thresholds to counts.
  std::uint64_t min_support = 1;

  // CT-support cell fraction p%: at least this fraction of contingency
  // cells must have count >= min_support. The paper uses 0.25.
  double min_cell_fraction = 0.25;

  // Degrees of freedom for the correlation cutoff. false (default): df = 1
  // at every set size, as in Brin et al. — with the chi-squared statistic
  // being non-decreasing under item addition, this keeps "is correlated"
  // upward closed, which the minimality machinery relies on. true: the
  // full-independence df = 2^k - k - 1, statistically cleaner for k > 2 but
  // the cutoff then grows with k and upward closure is no longer
  // guaranteed; use only with post-hoc analyses.
  bool full_independence_df = false;

  // When true, pairs whose contingency table violates Cochran's validity
  // rule for the chi-squared approximation (expected counts too small) are
  // judged by Fisher's exact test instead: correlated iff the exact
  // two-sided p-value is at most 1 - significance. Off by default — the
  // paper (like Brin et al.) uses the chi-squared statistic uniformly —
  // but recommended for sparse data. Only 2x2 tables have an exact
  // fallback; larger degenerate tables keep the chi-squared verdict.
  bool fisher_fallback = false;

  // Safety cap on the lattice level explored (inclusive).
  std::size_t max_set_size = Itemset::kMaxSize;
};

}  // namespace ccs

#endif  // CCS_CORE_OPTIONS_H_
