#include "core/bms_plus_plus.h"

#include <algorithm>

#include "core/candidate_gen.h"
#include "core/ct_builder.h"
#include "core/judge.h"
#include "util/stopwatch.h"

namespace ccs {

MiningResult MineBmsPlusPlus(const TransactionDatabase& db,
                             const ItemCatalog& catalog,
                             const ConstraintSet& constraints,
                             const MiningOptions& options) {
  Stopwatch timer;
  CorrelationJudge judge(options);
  ContingencyTableBuilder builder(db);
  MiningResult result;

  // I. Preprocessing: GOOD1 and the L1+/L1- split.
  std::vector<ItemId> l1_plus;
  std::vector<ItemId> l1_minus;
  std::vector<bool> is_witness(db.num_items(), false);
  const bool pushed = constraints.has_pushed_witness();
  for (ItemId i = 0; i < db.num_items(); ++i) {
    if (db.ItemSupport(i) < options.min_support) continue;
    if (!constraints.SingletonSatisfiesAntiMonotone(i, catalog)) continue;
    if (!pushed || constraints.IsWitnessItem(i, catalog)) {
      l1_plus.push_back(i);
      is_witness[i] = true;
    } else {
      l1_minus.push_back(i);
    }
  }
  std::vector<ItemId> l1;
  l1.reserve(l1_plus.size() + l1_minus.size());
  std::merge(l1_plus.begin(), l1_plus.end(), l1_minus.begin(),
             l1_minus.end(), std::back_inserter(l1));

  // II/III. Level-wise sweep.
  // Memoized correlation verdicts for witness-free subsets probed by the
  // minimality guard below (siblings share them).
  ItemsetMap<bool> probed_subset_correlated;
  std::vector<Itemset> candidates = WitnessedPairs(l1_plus, l1_minus);
  for (std::size_t k = 2; k <= options.max_set_size && !candidates.empty();
       ++k) {
    LevelStats& level = result.stats.Level(k);
    std::vector<Itemset> notsig;
    for (const Itemset& s : candidates) {
      ++level.candidates;
      // Non-succinct anti-monotone constraints prune before any database
      // work (Figure E's outer guard).
      if (!constraints.TestAntiMonotoneNonSuccinct(s.span(), catalog)) {
        ++level.pruned_before_ct;
        continue;
      }
      const stats::ContingencyTable table = builder.Build(s);
      ++level.tables_built;
      if (!judge.IsCtSupported(table)) continue;
      ++level.ct_supported;
      ++level.chi2_tests;
      if (judge.IsCorrelated(table)) {
        ++level.correlated;
        // Minimality guard. The witness exemption of the candidate rule
        // never checked the witness-free co-subset (it exists exactly when
        // the candidate has a single witness item). If that subset is
        // correlated, the candidate is not a minimal correlated set and so
        // not a VALID_MIN answer — Figure E admits it, which would break
        // Definition 1; see DESIGN.md. Any deeper correlated witness-free
        // subset forces this co-subset correlated too (upward closure), so
        // one extra table settles minimality.
        bool minimal = true;
        if (pushed && k > 2) {
          std::size_t witness_count = 0;
          std::size_t witness_index = 0;
          for (std::size_t i = 0; i < s.size(); ++i) {
            if (is_witness[s[i]]) {
              ++witness_count;
              witness_index = i;
            }
          }
          if (witness_count == 1) {
            const Itemset subset = s.WithoutIndex(witness_index);
            auto [it, inserted] =
                probed_subset_correlated.try_emplace(subset, false);
            if (inserted) {
              const stats::ContingencyTable sub_table = builder.Build(subset);
              ++level.tables_built;
              ++level.chi2_tests;
              it->second = judge.IsCorrelated(sub_table);
            }
            minimal = !it->second;
          }
        }
        if (minimal &&
            constraints.TestMonotoneDeferred(s.span(), catalog) &&
            constraints.TestUnclassified(s.span(), catalog)) {
          ++level.sig_added;
          result.answers.push_back(s);
        }
        // Invalid or non-minimal correlated sets are dropped: no superset
        // of a correlated set can be minimal correlated.
      } else {
        ++level.notsig_added;
        notsig.push_back(s);
      }
    }
    if (k == options.max_set_size) break;
    const ItemsetSet closed(notsig.begin(), notsig.end());
    candidates = ExtendSeeds(
        notsig, l1, [&closed, &is_witness](const Itemset& s) {
          return AllWitnessedCoSubsetsIn(s, closed, is_witness);
        });
  }

  std::sort(result.answers.begin(), result.answers.end());
  result.stats.elapsed_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace ccs
