#include "core/bms_plus_plus.h"

#include <algorithm>
#include <cstdint>

#include "core/candidate_gen.h"
#include "core/parallel_eval.h"
#include "util/stopwatch.h"

namespace ccs {
namespace {

// Per-candidate result of the parallel pass (Figure E's body minus the
// SIG/NOTSIG bookkeeping, which the ordered reduction performs).
struct Eval {
  enum class Outcome : std::uint8_t {
    kPruned,       // failed a non-succinct anti-monotone constraint
    kUnsupported,  // table built, not CT-supported
    kNotsig,       // supported, not correlated
    kCorrelated,   // supported and correlated
  };
  Outcome outcome = Outcome::kPruned;
  // For kCorrelated: whether the deferred monotone + unclassified
  // constraints pass (evaluated in the parallel pass; pure CPU).
  bool passes_deferred = false;
  // For kCorrelated with a single witness item at k > 2: the witness-free
  // co-subset whose correlatedness decides minimality.
  bool needs_probe = false;
  Itemset probe_subset;
};

}  // namespace

MiningResult MineBmsPlusPlus(const TransactionDatabase& db,
                             const ItemCatalog& catalog,
                             const ConstraintSet& constraints,
                             const MiningOptions& options,
                             MiningContext* ctx) {
  if (ctx == nullptr) {
    ParallelExecutor serial(1);
    MiningContext local(serial, Algorithm::kBmsPlusPlus);
    return MineBmsPlusPlus(db, catalog, constraints, options, &local);
  }
  Stopwatch timer;
  EvalWorkers workers(db, options, ctx->num_threads(), ctx->ct_cache(),
                      ctx->simd(), ctx->metrics());
  MiningResult result;

  // I. Preprocessing: GOOD1 and the L1+/L1- split.
  std::vector<ItemId> l1_plus;
  std::vector<ItemId> l1_minus;
  std::vector<bool> is_witness(db.num_items(), false);
  const bool pushed = constraints.has_pushed_witness();
  for (ItemId i = 0; i < db.num_items(); ++i) {
    if (db.ItemSupport(i) < options.min_support) continue;
    if (!constraints.SingletonSatisfiesAntiMonotone(i, catalog)) continue;
    if (!pushed || constraints.IsWitnessItem(i, catalog)) {
      l1_plus.push_back(i);
      is_witness[i] = true;
    } else {
      l1_minus.push_back(i);
    }
  }
  std::vector<ItemId> l1;
  l1.reserve(l1_plus.size() + l1_minus.size());
  std::merge(l1_plus.begin(), l1_plus.end(), l1_minus.begin(),
             l1_minus.end(), std::back_inserter(l1));

  // II/III. Level-wise sweep. Each level runs three passes:
  //   A (parallel) — per-candidate constraint tests, table, CT-support and
  //     correlation verdicts, into one slot per candidate;
  //   B (parallel) — the minimality-guard probes. The serial code memoizes
  //     probed witness-free subsets in a map shared by the whole run; as
  //     subsets probed at level k have size k-1, entries are never shared
  //     across levels, so deduplicating within the level (in candidate
  //     order) builds exactly the tables the serial run builds;
  //   C (ordered reduction) — counters and SIG/NOTSIG membership.
  std::vector<Itemset> candidates;
  {
    PhaseScope phase(*ctx, "candidate_gen");
    candidates = WitnessedPairs(l1_plus, l1_minus);
  }
  std::vector<Eval> evals;
  for (std::size_t k = 2; k <= options.max_set_size && !candidates.empty();
       ++k) {
    const Termination boundary =
        ctx->CheckAtLevel(result.stats, result.answers.size());
    if (boundary != Termination::kCompleted) {
      result.termination = boundary;
      break;
    }
    Stopwatch level_timer;
    Tracer::Span level_span(ctx->tracer(), "level");
    LevelStats& level = result.stats.Level(k);

    // Pass A.
    evals.assign(candidates.size(), Eval());
    const Termination pass_a = GovernedBuildTables(
        *ctx, workers, candidates,
        [&](std::size_t i) {
          // Non-succinct anti-monotone constraints prune before any
          // database work (Figure E's outer guard).
          if (!constraints.TestAntiMonotoneNonSuccinct(candidates[i].span(),
                                                       catalog)) {
            evals[i].outcome = Eval::Outcome::kPruned;
            return false;
          }
          return true;
        },
        [&](std::size_t i, std::size_t t,
            const stats::ContingencyTable& table) {
          const Itemset& s = candidates[i];
          Eval& e = evals[i];
          if (!workers.judge(t).IsCtSupported(table)) {
            e.outcome = Eval::Outcome::kUnsupported;
            return;
          }
          if (!workers.judge(t).IsCorrelated(table)) {
            e.outcome = Eval::Outcome::kNotsig;
            return;
          }
          e.outcome = Eval::Outcome::kCorrelated;
          e.passes_deferred =
              constraints.TestMonotoneDeferred(s.span(), catalog) &&
              constraints.TestUnclassified(s.span(), catalog);
          // Minimality guard setup. The witness exemption of the candidate
          // rule never checked the witness-free co-subset (it exists
          // exactly when the candidate has a single witness item). If that
          // subset is correlated, the candidate is not a minimal
          // correlated set and so not a VALID_MIN answer — Figure E admits
          // it, which would break Definition 1; see DESIGN.md. Any deeper
          // correlated witness-free subset forces this co-subset
          // correlated too (upward closure), so one extra table settles
          // minimality.
          if (pushed && k > 2) {
            std::size_t witness_count = 0;
            std::size_t witness_index = 0;
            for (std::size_t j = 0; j < s.size(); ++j) {
              if (is_witness[s[j]]) {
                ++witness_count;
                witness_index = j;
              }
            }
            if (witness_count == 1) {
              e.needs_probe = true;
              e.probe_subset = s.WithoutIndex(witness_index);
            }
          }
        });
    if (pass_a != Termination::kCompleted) {
      result.termination = pass_a;
      break;
    }

    // Pass B: deduplicate probe subsets in candidate order, then judge
    // each distinct subset once, in parallel.
    std::vector<Itemset> probes;
    ItemsetMap<std::size_t> probe_index;
    for (const Eval& e : evals) {
      if (e.outcome == Eval::Outcome::kCorrelated && e.needs_probe) {
        probe_index.try_emplace(e.probe_subset, probes.size());
        if (probe_index.size() > probes.size()) {
          probes.push_back(e.probe_subset);
        }
      }
    }
    std::vector<std::uint8_t> probe_correlated(probes.size(), 0);
    const Termination pass_b = GovernedBuildTables(
        *ctx, workers, probes, nullptr,
        [&](std::size_t j, std::size_t t,
            const stats::ContingencyTable& table) {
          probe_correlated[j] = workers.judge(t).IsCorrelated(table) ? 1 : 0;
        });
    if (pass_b != Termination::kCompleted) {
      result.termination = pass_b;
      break;
    }
    level.tables_built += probes.size();
    level.chi2_tests += probes.size();

    // Pass C.
    std::vector<Itemset> notsig;
    {
      PhaseScope judge_phase(*ctx, "judge");
      for (std::size_t i = 0; i < candidates.size(); ++i) {
        const Itemset& s = candidates[i];
        const Eval& e = evals[i];
        ++level.candidates;
        switch (e.outcome) {
          case Eval::Outcome::kPruned:
            ++level.pruned_before_ct;
            break;
          case Eval::Outcome::kUnsupported:
            ++level.tables_built;
            break;
          case Eval::Outcome::kNotsig:
            ++level.tables_built;
            ++level.ct_supported;
            ++level.chi2_tests;
            ++level.notsig_added;
            notsig.push_back(s);
            break;
          case Eval::Outcome::kCorrelated: {
            ++level.tables_built;
            ++level.ct_supported;
            ++level.chi2_tests;
            ++level.correlated;
            const bool minimal =
                !e.needs_probe ||
                probe_correlated[probe_index.at(e.probe_subset)] == 0;
            if (minimal && e.passes_deferred) {
              ++level.sig_added;
              result.answers.push_back(s);
            }
            // Invalid or non-minimal correlated sets are dropped: no
            // superset of a correlated set can be minimal correlated.
            break;
          }
        }
      }
    }
    ++result.stats.levels_completed;
    level.wall_seconds += level_timer.ElapsedSeconds();
    ctx->ReportLevel(level, result.answers.size(),
                     level_timer.ElapsedSeconds());
    if (k == options.max_set_size) break;
    PhaseScope gen_phase(*ctx, "candidate_gen");
    const ItemsetSet closed(notsig.begin(), notsig.end());
    candidates = ExtendSeeds(
        notsig, l1, [&closed, &is_witness](const Itemset& s) {
          return AllWitnessedCoSubsetsIn(s, closed, is_witness);
        });
  }

  std::sort(result.answers.begin(), result.answers.end());
  workers.AccumulateInto(result.stats);
  result.stats.elapsed_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace ccs
