#include "core/ct_builder.h"

#include <bit>
#include <utility>

#include "core/pair_tier.h"
#include "util/check.h"
#include "util/fault.h"

namespace ccs {

namespace {

// The subset of `prefix` selected by the item-position mask.
Itemset SubsetByMask(const Itemset& prefix, std::size_t mask) {
  Itemset subset;
  for (std::size_t i = 0; i < prefix.size(); ++i) {
    if ((mask >> i) & 1u) subset = subset.WithItem(prefix[i]);
  }
  return subset;
}

}  // namespace

ContingencyTableBuilder::ContingencyTableBuilder(
    const TransactionDatabase& db, CtCacheOptions cache, SimdOptions simd)
    : db_(&db),
      cache_options_(cache),
      kernel_(SelectKernel(simd, db)),
      cache_(cache.enabled ? cache.budget_words : 0) {}

void ContingencyTableBuilder::AccountExternalTable() {
  CCS_FAULT_POINT("ct_build");
  ++tables_built_;
}

stats::ContingencyTable ContingencyTableBuilder::Build(const Itemset& s) {
  CCS_FAULT_POINT("ct_build");
  CCS_CHECK(db_->finalized());
  const std::size_t k = s.size();
  CCS_CHECK_GE(k, 1u);
  CCS_CHECK_LE(k, 20u);

  std::vector<const DynamicBitset*> tids(k);
  for (std::size_t i = 0; i < k; ++i) tids[i] = &db_->tidset(s[i]);

  if (scratch_.size() < k) scratch_.resize(k);

  std::vector<std::uint64_t> cells(std::size_t{1} << k, 0);
  if (k == 1) {
    const std::uint64_t present = tids[0]->Count();
    word_ops_ += tids[0]->num_words();
    cells[1] = present;
    cells[0] = db_->num_transactions() - present;
  } else {
    // Seed with the first variable's split to avoid an all-ones universe
    // bitset: depth 1 current = tidset / its complement.
    CountRecursive(tids, 1, *tids[0], 1u, cells);
    scratch_[0].AssignComplement(*tids[0]);
    word_ops_ += scratch_[0].num_words();
    CountRecursive(tids, 1, scratch_[0], 0u, cells);
  }

  ++tables_built_;
  return stats::ContingencyTable(static_cast<int>(k), std::move(cells));
}

void ContingencyTableBuilder::CountRecursive(
    const std::vector<const DynamicBitset*>& tids, std::size_t depth,
    const DynamicBitset& current, std::uint32_t mask,
    std::vector<std::uint64_t>& cells) {
  const std::size_t k = tids.size();
  if (depth == k - 1) {
    // Fused last level: popcounts without materializing children. word_ops_
    // counts words per op regardless of kernel mode, so the accounting is
    // identical under scalar and vector dispatch (DESIGN.md §14).
    const std::uint64_t with = KernelCountAnd(current, *tids[depth], kernel_);
    const std::uint64_t without =
        KernelCountAndNot(current, *tids[depth], kernel_);
    word_ops_ += 2 * current.num_words();
    cells[mask | (std::uint32_t{1} << depth)] = with;
    cells[mask] = without;
    return;
  }
  DynamicBitset& child = scratch_[depth];
  KernelAssignAnd(child, current, *tids[depth], kernel_);
  word_ops_ += child.num_words();
  CountRecursive(tids, depth + 1, child, mask | (std::uint32_t{1} << depth),
                 cells);
  KernelAssignAndNot(child, current, *tids[depth], kernel_);
  word_ops_ += child.num_words();
  CountRecursive(tids, depth + 1, child, mask, cells);
}

void ContingencyTableBuilder::BuildBatch(std::span<const Itemset> batch,
                                         const BatchFilter& want,
                                         const BatchSink& emit) {
  if (batch.empty()) return;
  ++batches_;
  if (!cache_options_.enabled) {
    // Kill switch: the original per-candidate recursion, verbatim.
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (want && !want(i)) continue;
      emit(i, Build(batch[i]));
    }
    return;
  }
  CCS_CHECK(db_->finalized());

  // Pins must not leak if a fault point or the sink throws mid-batch: the
  // cache stays usable (entries intact, budget restored) and the engine
  // surfaces the error as usual.
  struct UnpinGuard {
    IntersectionCache* cache;
    ~UnpinGuard() { cache->UnpinAll(); }
  } guard{&cache_};

  bool have_prefix = false;
  Itemset current_prefix;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (want && !want(i)) continue;
    const Itemset& s = batch[i];
    const std::size_t k = s.size();
    CCS_CHECK_GE(k, 1u);
    CCS_CHECK_LE(k, 20u);
    CCS_FAULT_POINT("ct_build");

    if (k == 1) {
      const std::uint64_t present = db_->ItemSupport(s[0]);
      std::vector<std::uint64_t> cells(2, 0);
      cells[1] = present;
      cells[0] = db_->num_transactions() - present;
      ++tables_built_;
      emit(i, stats::ContingencyTable(1, std::move(cells)));
      continue;
    }

    const Itemset prefix = s.WithoutIndex(k - 1);
    if (!have_prefix || !(prefix == current_prefix)) {
      cache_.UnpinAll();  // release the previous group's working set
      PreparePrefix(prefix);
      current_prefix = prefix;
      have_prefix = true;
    }
    const stats::ContingencyTable table = TableFromPrefix(s);
    ++tables_built_;
    emit(i, table);
  }
}

void ContingencyTableBuilder::PreparePrefix(const Itemset& prefix) {
  const std::size_t d = prefix.size();
  const std::size_t num_masks = std::size_t{1} << d;
  prefix_bits_.assign(num_masks, nullptr);
  prefix_counts_.assign(num_masks, 0);
  prefix_counts_[0] = db_->num_transactions();
  for (std::size_t mask = 1; mask < num_masks; ++mask) {
    const std::size_t top = std::bit_width(mask) - 1;
    if ((mask & (mask - 1)) == 0) {
      // Singletons come straight from the vertical index.
      prefix_bits_[mask] = &db_->tidset(prefix[top]);
      prefix_counts_[mask] = db_->ItemSupport(prefix[top]);
      continue;
    }
    // Pair subsets: the shared read-only tier first, so a hit never
    // depends on this worker's LRU state (DESIGN.md §12). Tier-covered
    // pairs never enter the LRU, leaving its budget to larger subsets.
    if (std::popcount(mask) == 2 && cache_options_.shared_pairs != nullptr) {
      const std::size_t low = std::countr_zero(mask);
      if (const auto* entry =
              cache_options_.shared_pairs->Lookup(prefix[low], prefix[top])) {
        prefix_bits_[mask] = &entry->bits;
        prefix_counts_[mask] = entry->count;
        ++shared_pair_hits_;
        continue;
      }
    }
    const Itemset key = SubsetByMask(prefix, mask);
    if (const auto* entry = cache_.LookupPinned(key)) {
      prefix_bits_[mask] = &entry->bits;
      prefix_counts_[mask] = entry->count;
      continue;
    }
    // mask's proper subset without its top item was visited earlier in
    // this loop (strictly smaller mask), so its bitset is materialized.
    const std::size_t parent = mask ^ (std::size_t{1} << top);
    DynamicBitset bits;
    const std::uint64_t count = KernelAssignAndCount(
        bits, *prefix_bits_[parent], db_->tidset(prefix[top]), kernel_);
    word_ops_ += bits.num_words();
    const auto* entry = cache_.InsertPinned(key, std::move(bits), count);
    prefix_bits_[mask] = &entry->bits;
    prefix_counts_[mask] = count;
  }
}

stats::ContingencyTable ContingencyTableBuilder::TableFromPrefix(
    const Itemset& s) {
  const std::size_t k = s.size();
  const std::size_t half = std::size_t{1} << (k - 1);
  const DynamicBitset& last = db_->tidset(s[k - 1]);

  // Subset supports g[mask] = |{t : t ⊇ s∩mask}| over the 2^k masks: the
  // low half is the prepared prefix table; the high half ANDs the last
  // item's tid-set against each prefix-subset bitset.
  minterms_.assign(half << 1, 0);
  for (std::size_t mask = 0; mask < half; ++mask) {
    minterms_[mask] = prefix_counts_[mask];
  }
  minterms_[half] = db_->ItemSupport(s[k - 1]);
  for (std::size_t mask = 1; mask < half; ++mask) {
    if ((mask & (mask - 1)) == 0 && cache_options_.shared_pairs != nullptr) {
      // (prefix item, last item) is a pair: its memoized count can come
      // straight from the shared tier with no bitset pass at all.
      const std::size_t i = std::countr_zero(mask);
      if (const auto* entry =
              cache_options_.shared_pairs->Lookup(s[i], s[k - 1])) {
        minterms_[half | mask] = entry->count;
        ++shared_pair_hits_;
        continue;
      }
    }
    minterms_[half | mask] =
        KernelCountAnd(*prefix_bits_[mask], last, kernel_);
    word_ops_ += last.num_words();
  }

  // In-place superset Möbius inversion turns subset supports into exact
  // minterm cells: after processing bit j, g[m] counts transactions
  // containing all of m and none of the already-processed bits outside m,
  // so every intermediate is a non-negative transaction count.
  for (std::size_t bit = 0; bit < k; ++bit) {
    const std::size_t high = std::size_t{1} << bit;
    for (std::size_t mask = 0; mask < (half << 1); ++mask) {
      if ((mask & high) == 0) minterms_[mask] -= minterms_[mask | high];
    }
  }
  return stats::ContingencyTable(
      static_cast<int>(k),
      std::vector<std::uint64_t>(minterms_.begin(),
                                 minterms_.begin() +
                                     static_cast<std::ptrdiff_t>(half << 1)));
}

stats::ContingencyTable ContingencyTableBuilder::BuildCached(
    const Itemset& s) {
  stats::ContingencyTable result(1, std::vector<std::uint64_t>(2, 0));
  BuildBatch(std::span<const Itemset>(&s, 1), nullptr,
             [&result](std::size_t, const stats::ContingencyTable& table) {
               result = table;
             });
  return result;
}

stats::ContingencyTable ContingencyTableBuilder::BuildPairFromStage(
    const Itemset& s, const PairStage& stage) {
  CCS_FAULT_POINT("ct_build");
  CCS_CHECK(db_->finalized());
  CCS_CHECK_EQ(s.size(), 2u);
  const std::uint64_t n = db_->num_transactions();
  const std::uint64_t sa = db_->ItemSupport(s[0]);
  const std::uint64_t sb = db_->ItemSupport(s[1]);
  const std::uint64_t sab = stage.PairSupport(s[0], s[1]);
  // Exact integers, so the cells match the bitset paths bit for bit; the
  // mask convention is Build's (bit i set == s[i] present).
  std::vector<std::uint64_t> cells(4, 0);
  cells[0] = n - sa - sb + sab;
  cells[1] = sa - sab;
  cells[2] = sb - sab;
  cells[3] = sab;
  ++tables_built_;
  ++pair_stage_tables_;
  return stats::ContingencyTable(2, std::move(cells));
}

stats::ContingencyTable ContingencyTableBuilder::BuildScalar(
    const Itemset& s) const {
  const std::size_t k = s.size();
  CCS_CHECK_GE(k, 1u);
  CCS_CHECK_LE(k, 20u);
  std::vector<std::uint64_t> cells(std::size_t{1} << k, 0);
  for (std::size_t t = 0; t < db_->num_transactions(); ++t) {
    std::uint32_t mask = 0;
    for (std::size_t i = 0; i < k; ++i) {
      if (db_->Contains(t, s[i])) mask |= std::uint32_t{1} << i;
    }
    ++cells[mask];
  }
  return stats::ContingencyTable(static_cast<int>(k), std::move(cells));
}

}  // namespace ccs
