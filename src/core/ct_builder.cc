#include "core/ct_builder.h"

#include "util/check.h"
#include "util/fault.h"

namespace ccs {

ContingencyTableBuilder::ContingencyTableBuilder(
    const TransactionDatabase& db)
    : db_(&db) {}

stats::ContingencyTable ContingencyTableBuilder::Build(const Itemset& s) {
  CCS_FAULT_POINT("ct_build");
  CCS_CHECK(db_->finalized());
  const std::size_t k = s.size();
  CCS_CHECK_GE(k, 1u);
  CCS_CHECK_LE(k, 20u);

  std::vector<const DynamicBitset*> tids(k);
  for (std::size_t i = 0; i < k; ++i) tids[i] = &db_->tidset(s[i]);

  if (scratch_.size() < k) scratch_.resize(k);

  std::vector<std::uint64_t> cells(std::size_t{1} << k, 0);
  if (k == 1) {
    const std::uint64_t present = tids[0]->Count();
    cells[1] = present;
    cells[0] = db_->num_transactions() - present;
  } else {
    // Seed with the first variable's split to avoid an all-ones universe
    // bitset: depth 1 current = tidset / its complement.
    CountRecursive(tids, 1, *tids[0], 1u, cells);
    scratch_[0].AssignComplement(*tids[0]);
    CountRecursive(tids, 1, scratch_[0], 0u, cells);
  }

  ++tables_built_;
  return stats::ContingencyTable(static_cast<int>(k), std::move(cells));
}

void ContingencyTableBuilder::CountRecursive(
    const std::vector<const DynamicBitset*>& tids, std::size_t depth,
    const DynamicBitset& current, std::uint32_t mask,
    std::vector<std::uint64_t>& cells) {
  const std::size_t k = tids.size();
  if (depth == k - 1) {
    // Fused last level: popcounts without materializing children.
    const std::uint64_t with = DynamicBitset::CountAnd(current, *tids[depth]);
    const std::uint64_t without =
        DynamicBitset::CountAndNot(current, *tids[depth]);
    cells[mask | (std::uint32_t{1} << depth)] = with;
    cells[mask] = without;
    return;
  }
  DynamicBitset& child = scratch_[depth];
  child.AssignAnd(current, *tids[depth]);
  CountRecursive(tids, depth + 1, child, mask | (std::uint32_t{1} << depth),
                 cells);
  child.AssignAndNot(current, *tids[depth]);
  CountRecursive(tids, depth + 1, child, mask, cells);
}

stats::ContingencyTable ContingencyTableBuilder::BuildScalar(
    const Itemset& s) const {
  const std::size_t k = s.size();
  CCS_CHECK_GE(k, 1u);
  CCS_CHECK_LE(k, 20u);
  std::vector<std::uint64_t> cells(std::size_t{1} << k, 0);
  for (std::size_t t = 0; t < db_->num_transactions(); ++t) {
    std::uint32_t mask = 0;
    for (std::size_t i = 0; i < k; ++i) {
      if (db_->Contains(t, s[i])) mask |= std::uint32_t{1} << i;
    }
    ++cells[mask];
  }
  return stats::ContingencyTable(static_cast<int>(k), std::move(cells));
}

}  // namespace ccs
