#include "core/candidate_gen.h"

#include <algorithm>

#include "util/check.h"

namespace ccs {

bool AllCoSubsetsIn(const Itemset& s, const ItemsetSet& closed) {
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (!closed.contains(s.WithoutIndex(i))) return false;
  }
  return true;
}

bool AllWitnessedCoSubsetsIn(const Itemset& s, const ItemsetSet& closed,
                             const std::vector<bool>& is_witness) {
  for (std::size_t i = 0; i < s.size(); ++i) {
    const Itemset subset = s.WithoutIndex(i);
    if (!ContainsWitness(subset, is_witness)) continue;
    if (!closed.contains(subset)) return false;
  }
  return true;
}

bool ContainsWitness(const Itemset& s, const std::vector<bool>& is_witness) {
  for (ItemId item : s) {
    CCS_DCHECK(item < is_witness.size());
    if (is_witness[item]) return true;
  }
  return false;
}

std::vector<Itemset> ExtendSeeds(
    const std::vector<Itemset>& seeds, const std::vector<ItemId>& universe,
    const std::function<bool(const Itemset&)>& keep) {
  ItemsetSet seen;
  std::vector<Itemset> out;
  for (const Itemset& seed : seeds) {
    if (seed.size() >= Itemset::kMaxSize) continue;
    for (ItemId item : universe) {
      if (seed.Contains(item)) continue;
      Itemset candidate = seed.WithItem(item);
      if (!seen.insert(candidate).second) continue;
      if (keep(candidate)) out.push_back(candidate);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<Itemset> AllPairs(const std::vector<ItemId>& items) {
  std::vector<Itemset> out;
  out.reserve(items.size() * (items.size() > 0 ? items.size() - 1 : 0) / 2);
  for (std::size_t i = 0; i < items.size(); ++i) {
    for (std::size_t j = i + 1; j < items.size(); ++j) {
      out.push_back(Itemset{items[i], items[j]});
    }
  }
  return out;
}

std::vector<Itemset> WitnessedPairs(const std::vector<ItemId>& plus,
                                    const std::vector<ItemId>& minus) {
  std::vector<Itemset> out = AllPairs(plus);
  for (ItemId p : plus) {
    for (ItemId m : minus) {
      CCS_DCHECK(p != m);
      out.push_back(Itemset{p, m});
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<PrefixGroup> GroupByPrefix(
    const std::vector<Itemset>& candidates) {
  std::vector<PrefixGroup> groups;
  const auto same_prefix = [](const Itemset& a, const Itemset& b) {
    if (a.size() != b.size() || a.empty()) return false;
    for (std::size_t i = 0; i + 1 < a.size(); ++i) {
      if (a[i] != b[i]) return false;
    }
    return true;
  };
  std::size_t begin = 0;
  for (std::size_t i = 1; i <= candidates.size(); ++i) {
    if (i == candidates.size() ||
        !same_prefix(candidates[i - 1], candidates[i])) {
      groups.push_back(PrefixGroup{begin, i});
      begin = i;
    }
  }
  return groups;
}

}  // namespace ccs
