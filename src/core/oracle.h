#ifndef CCS_CORE_ORACLE_H_
#define CCS_CORE_ORACLE_H_

#include <vector>

#include "constraints/constraint_set.h"
#include "core/ct_builder.h"
#include "core/judge.h"
#include "core/options.h"
#include "core/result.h"
#include "txn/catalog.h"
#include "txn/database.h"

namespace ccs {

// Ground truth by exhaustive lattice enumeration — the reference the test
// suite pins every algorithm against. Only usable on small universes: the
// oracle materializes every itemset over the frequent items up to
// options.max_set_size.
//
// Correlatedness is the upward closure of the chi-squared test — a set is
// correlated when it or any subset passes the cutoff — which is the
// operational notion all BMS-family algorithms implement (Brin et al.
// prove the raw statistic is non-decreasing under item addition, making
// the closure coincide with the direct test in the df = 1 configuration).
class Oracle {
 public:
  Oracle(const TransactionDatabase& db, const ItemCatalog& catalog,
         const MiningOptions& options);

  // Minimal correlated and CT-supported sets — BMS ground truth.
  std::vector<Itemset> MinimalCorrelated() const;

  // VALID_MIN(Q): MinimalCorrelated() filtered by the constraints.
  std::vector<Itemset> ValidMinimal(const ConstraintSet& constraints) const;

  // MIN_VALID(Q): minimal elements of the space of CT-supported,
  // correlated, valid sets (Definition 2, applied literally).
  std::vector<Itemset> MinimalValid(const ConstraintSet& constraints) const;

  // Predicates for individual sets (size >= 2, items frequent).
  bool IsCtSupported(const Itemset& s) const;
  bool IsCorrelated(const Itemset& s) const;  // closure semantics

  const std::vector<ItemId>& frequent_items() const {
    return frequent_items_;
  }

 private:
  struct SetInfo {
    bool ct_supported = false;
    bool correlated = false;  // closure
  };

  // Enumerates all size-k subsets of frequent_items_, invoking fn on each.
  template <typename Fn>
  void ForEachSet(std::size_t k, Fn fn) const;

  const TransactionDatabase* db_;
  const ItemCatalog* catalog_;
  MiningOptions options_;
  std::vector<ItemId> frequent_items_;
  ItemsetMap<SetInfo> info_;
};

}  // namespace ccs

#endif  // CCS_CORE_ORACLE_H_
