#include "core/trace.h"

#include <cstdlib>
#include <sstream>

#include "util/check.h"

namespace ccs {

std::string TraceLog::ToJson() const {
  std::ostringstream out;
  out << "{\"enabled\": " << (enabled ? "true" : "false")
      << ", \"dropped\": " << dropped << ", \"events\": [";
  for (std::size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    if (i > 0) out << ", ";
    out << "{\"name\": \"" << e.name << "\", \"depth\": " << e.depth
        << ", \"start_ns\": " << e.start_ns << ", \"end_ns\": " << e.end_ns
        << "}";
  }
  out << "]}";
  return out.str();
}

Tracer::Tracer(bool enabled, std::size_t capacity)
    : enabled_(enabled && capacity > 0),
      capacity_(capacity),
      epoch_(std::chrono::steady_clock::now()) {}

std::uint64_t Tracer::NowNs() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

Tracer::Span::Span(Tracer* tracer, const char* name) {
  if (tracer == nullptr || !tracer->enabled_) return;
  tracer_ = tracer;
  name_ = name;
  depth_ = tracer->open_++;
  start_ns_ = tracer->NowNs();
}

Tracer::Span::~Span() {
  if (tracer_ == nullptr) return;
  // Strict LIFO: the innermost open span must close first, which is what
  // makes every trace well-formed by construction.
  CCS_CHECK(tracer_->open_ == depth_ + 1);
  --tracer_->open_;
  tracer_->Record(name_, depth_, start_ns_, tracer_->NowNs());
}

void Tracer::Record(const char* name, std::uint32_t depth,
                    std::uint64_t start_ns, std::uint64_t end_ns) {
  TraceEvent event;
  event.name = name;
  event.depth = depth;
  event.start_ns = start_ns;
  event.end_ns = end_ns;
  if (ring_.size() < capacity_) {
    ring_.push_back(event);
  } else {
    ring_[next_] = event;  // drop-oldest
  }
  next_ = (next_ + 1) % capacity_;
  ++recorded_;
}

TraceLog Tracer::Log() const {
  TraceLog log;
  log.enabled = enabled_;
  if (ring_.empty()) return log;
  log.dropped = recorded_ - ring_.size();
  log.events.reserve(ring_.size());
  // When the ring has wrapped, next_ points at the oldest surviving event.
  const std::size_t oldest = ring_.size() < capacity_ ? 0 : next_;
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    log.events.push_back(ring_[(oldest + i) % ring_.size()]);
  }
  return log;
}

void ResolveTraceFromEnv(bool& enabled, std::size_t& capacity) {
  const char* env = std::getenv("CCS_TRACE");  // NOLINT(concurrency-mt-unsafe)
  if (env == nullptr) return;
  const std::string value(env);
  if (value == "0") {
    enabled = false;
    return;
  }
  enabled = true;
  const unsigned long long parsed = std::strtoull(env, nullptr, 10);
  if (parsed > 1) capacity = static_cast<std::size_t>(parsed);
}

}  // namespace ccs
