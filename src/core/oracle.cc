#include "core/oracle.h"

#include <algorithm>

#include "util/check.h"

namespace ccs {

template <typename Fn>
void Oracle::ForEachSet(std::size_t k, Fn fn) const {
  const std::size_t n = frequent_items_.size();
  if (k > n) return;
  std::vector<std::size_t> index(k);
  for (std::size_t i = 0; i < k; ++i) index[i] = i;
  while (true) {
    Itemset s;
    for (std::size_t i : index) s = s.WithItem(frequent_items_[i]);
    fn(s);
    // Advance the combination.
    std::size_t pos = k;
    while (pos > 0) {
      --pos;
      if (index[pos] != pos + n - k) break;
      if (pos == 0) return;
    }
    if (index[pos] == pos + n - k) return;
    ++index[pos];
    for (std::size_t i = pos + 1; i < k; ++i) index[i] = index[i - 1] + 1;
  }
}

Oracle::Oracle(const TransactionDatabase& db, const ItemCatalog& catalog,
               const MiningOptions& options)
    : db_(&db), catalog_(&catalog), options_(options) {
  for (ItemId i = 0; i < db.num_items(); ++i) {
    if (db.ItemSupport(i) >= options.min_support) {
      frequent_items_.push_back(i);
    }
  }
  // Guard against accidental use on large universes: the lattice below is
  // fully materialized.
  CCS_CHECK_LE(frequent_items_.size(), 24u);

  CorrelationJudge judge(options);
  ContingencyTableBuilder builder(db);
  for (std::size_t k = 2; k <= options.max_set_size; ++k) {
    ForEachSet(k, [&](const Itemset& s) {
      SetInfo info;
      const stats::ContingencyTable table = builder.Build(s);
      info.ct_supported = judge.IsCtSupported(table);
      info.correlated = judge.IsCorrelated(table);
      if (!info.correlated && k > 2) {
        // Upward closure from co-dimension-1 subsets (their own closure is
        // already computed, so this covers all subsets).
        for (std::size_t i = 0; i < s.size() && !info.correlated; ++i) {
          const auto it = info_.find(s.WithoutIndex(i));
          CCS_CHECK(it != info_.end());
          info.correlated = it->second.correlated;
        }
      }
      info_[s] = info;
    });
  }
}

bool Oracle::IsCtSupported(const Itemset& s) const {
  const auto it = info_.find(s);
  CCS_CHECK(it != info_.end());
  return it->second.ct_supported;
}

bool Oracle::IsCorrelated(const Itemset& s) const {
  const auto it = info_.find(s);
  CCS_CHECK(it != info_.end());
  return it->second.correlated;
}

std::vector<Itemset> Oracle::MinimalCorrelated() const {
  std::vector<Itemset> out;
  for (const auto& [s, info] : info_) {
    if (!info.ct_supported || !info.correlated) continue;
    bool minimal = true;
    for (std::size_t i = 0; i < s.size() && minimal; ++i) {
      const Itemset subset = s.WithoutIndex(i);
      if (subset.size() < 2) continue;
      const auto it = info_.find(subset);
      CCS_CHECK(it != info_.end());
      // Subsets of a CT-supported set are CT-supported; minimality hinges
      // on no subset being correlated.
      minimal = !it->second.correlated;
    }
    if (minimal) out.push_back(s);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<Itemset> Oracle::ValidMinimal(
    const ConstraintSet& constraints) const {
  std::vector<Itemset> out;
  for (const Itemset& s : MinimalCorrelated()) {
    if (constraints.TestAll(s.span(), *catalog_)) out.push_back(s);
  }
  return out;
}

std::vector<Itemset> Oracle::MinimalValid(
    const ConstraintSet& constraints) const {
  // Definition 2, literally: the minimal elements of the solution space.
  auto in_space = [&](const Itemset& s) {
    const auto it = info_.find(s);
    CCS_CHECK(it != info_.end());
    return it->second.ct_supported && it->second.correlated &&
           constraints.TestAll(s.span(), *catalog_);
  };
  // Co-dimension-1 minimality suffices: the solution space is closed
  // between its borders — see the argument in bms_star.h / DESIGN.md.
  // For full generality (unclassified constraints can punch holes in the
  // space) all proper subsets of size >= 2 are checked.
  std::vector<Itemset> out;
  for (const auto& [s, info] : info_) {
    if (!in_space(s)) continue;
    bool minimal = true;
    std::vector<Itemset> stack = {s};
    ItemsetSet seen;
    while (minimal && !stack.empty()) {
      const Itemset top = stack.back();
      stack.pop_back();
      for (std::size_t i = 0; i < top.size() && minimal; ++i) {
        const Itemset subset = top.WithoutIndex(i);
        if (subset.size() < 2 || !seen.insert(subset).second) continue;
        if (in_space(subset)) {
          minimal = false;
        } else {
          stack.push_back(subset);
        }
      }
    }
    if (minimal) out.push_back(s);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace ccs
