#ifndef CCS_CORE_INTERSECTION_CACHE_H_
#define CCS_CORE_INTERSECTION_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <vector>

#include "core/itemset.h"
#include "util/bitset.h"

namespace ccs {

class SharedPairTier;

// Knobs for the prefix-sharing contingency-table path (DESIGN.md §9).
// Session-level: the engine resolves them once (EngineOptions + the
// CCS_CT_CACHE environment override) and threads them to every per-worker
// ContingencyTableBuilder. `enabled == false` is the kill switch that
// keeps the original per-candidate recursion selectable for differential
// testing; answers are bit-identical either way.
struct CtCacheOptions {
  // Note the interplay with the k=2 pair stage (DESIGN.md §14): an
  // all-pair candidate batch admitted to the PairStage path bypasses both
  // the LRU and the shared tier entirely — those pairs cost no lookups
  // and no cached words in either cache mode. The cache paths below serve
  // every other batch shape unchanged.
  bool enabled = true;
  // LRU budget per builder (per worker thread), in 64-bit words of cached
  // intersection bitsets. 4 Mi words = 32 MiB.
  std::size_t budget_words = std::size_t{4} << 20;
  // Optional read-only tier of precomputed k=2 intersections shared by all
  // workers (DESIGN.md §12), consulted before the private LRU so pair hits
  // are independent of per-worker cache state. Non-owning; the
  // DatabaseHandle that built the tier outlives every run that uses it.
  const SharedPairTier* shared_pairs = nullptr;
};

// Monotone counters surfaced in MiningStats. hits/misses/evictions depend
// on the thread schedule (which worker sees which prefix group, and with
// what cache state), so they are *not* part of the deterministic counter
// contract. `lookups` (== hits + misses) IS schedule-independent: each
// prefix group is prepared exactly once, and the number of lookups a group
// triggers depends only on its prefix — only the hit/miss *split* moves
// with the schedule (DESIGN.md §10).
struct IntersectionCacheStats {
  std::uint64_t lookups = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
};

// A budgeted LRU cache of materialized tid-set intersections, keyed by the
// itemset whose items were ANDed (size >= 2; singleton tid-sets live in the
// database index and never enter the cache). Each entry stores the
// intersection bitset plus its memoized popcount — both exact, which is
// what makes the cached contingency-table path bit-identical to the
// uncached one.
//
// Eviction is LRU by word count: inserting past `budget_words` evicts
// least-recently-used entries until the budget holds again. Entries handed
// out by LookupPinned/InsertPinned are pinned — exempt from eviction — so
// the pointers stay valid while a prefix group is being expanded even when
// the group's working set transiently overflows the budget (the overshoot
// is bounded by one group's 2^(k-1) bitsets). UnpinAll releases every pin
// and restores the budget invariant.
//
// Not thread-safe by design: each worker thread owns a private cache
// inside its ContingencyTableBuilder.
class IntersectionCache {
 public:
  struct Entry {
    Itemset key;
    DynamicBitset bits;
    std::uint64_t count = 0;  // == bits.Count(), memoized
    bool pinned = false;
  };

  explicit IntersectionCache(std::size_t budget_words)
      : budget_words_(budget_words) {}

  IntersectionCache(const IntersectionCache&) = delete;
  IntersectionCache& operator=(const IntersectionCache&) = delete;
  IntersectionCache(IntersectionCache&&) = default;
  IntersectionCache& operator=(IntersectionCache&&) = default;

  // Returns the entry for `key` pinned and marked most-recently-used, or
  // nullptr on a miss. Counts one hit or miss.
  const Entry* LookupPinned(const Itemset& key);

  // Inserts the intersection for `key` (which must not be present) and
  // returns it pinned. Evicts unpinned LRU entries as needed; counts
  // neither hit nor miss (the preceding LookupPinned already counted the
  // miss).
  const Entry* InsertPinned(const Itemset& key, DynamicBitset bits,
                            std::uint64_t count);

  // Releases every pin and evicts down to the budget if pinned entries had
  // pushed usage past it.
  void UnpinAll();

  // Drops every entry (pins included) and resets usage, keeping the
  // counters. Callers must not hold Entry pointers across Clear.
  void Clear();

  std::size_t words_in_use() const { return words_in_use_; }
  std::size_t budget_words() const { return budget_words_; }
  std::size_t size() const { return map_.size(); }
  const IntersectionCacheStats& stats() const { return stats_; }

 private:
  // Evicts unpinned entries from the LRU tail until words_in_use_ fits the
  // budget or only pinned entries remain.
  void EvictToBudget();

  std::size_t budget_words_ = 0;
  std::size_t words_in_use_ = 0;
  // Front = most recently used. std::list for stable Entry addresses.
  std::list<Entry> lru_;
  ItemsetMap<std::list<Entry>::iterator> map_;
  std::vector<Entry*> pinned_;
  IntersectionCacheStats stats_;
};

}  // namespace ccs

#endif  // CCS_CORE_INTERSECTION_CACHE_H_
