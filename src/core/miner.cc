#include "core/miner.h"

#include "core/bms.h"
#include "core/bms_plus.h"
#include "core/bms_plus_plus.h"
#include "core/bms_star.h"
#include "core/bms_star_star.h"
#include "util/check.h"

namespace ccs {

const char* AlgorithmName(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kBms:
      return "BMS";
    case Algorithm::kBmsPlus:
      return "BMS+";
    case Algorithm::kBmsPlusPlus:
      return "BMS++";
    case Algorithm::kBmsStar:
      return "BMS*";
    case Algorithm::kBmsStarStar:
      return "BMS**";
    case Algorithm::kBmsStarStarOpt:
      return "BMS**opt";
  }
  return "?";
}

std::optional<Algorithm> ParseAlgorithmName(const std::string& name) {
  for (Algorithm a : kAllAlgorithms) {
    if (name == AlgorithmName(a)) return a;
  }
  return std::nullopt;
}

AnswerSemantics SemanticsOf(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kBms:
      return AnswerSemantics::kUnconstrained;
    case Algorithm::kBmsPlus:
    case Algorithm::kBmsPlusPlus:
      return AnswerSemantics::kValidMinimal;
    case Algorithm::kBmsStar:
    case Algorithm::kBmsStarStar:
    case Algorithm::kBmsStarStarOpt:
      return AnswerSemantics::kMinimalValid;
  }
  return AnswerSemantics::kUnconstrained;
}

MiningResult Mine(Algorithm algorithm, const TransactionDatabase& db,
                  const ItemCatalog& catalog,
                  const ConstraintSet& constraints,
                  const MiningOptions& options) {
  switch (algorithm) {
    case Algorithm::kBms:
      return MineBms(db, options);
    case Algorithm::kBmsPlus:
      return MineBmsPlus(db, catalog, constraints, options);
    case Algorithm::kBmsPlusPlus:
      return MineBmsPlusPlus(db, catalog, constraints, options);
    case Algorithm::kBmsStar:
      return MineBmsStar(db, catalog, constraints, options);
    case Algorithm::kBmsStarStar:
      return MineBmsStarStar(db, catalog, constraints, options);
    case Algorithm::kBmsStarStarOpt:
      return MineBmsStarStarOpt(db, catalog, constraints, options);
  }
  CCS_CHECK(false);
  return {};
}

}  // namespace ccs
