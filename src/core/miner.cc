// The definition must not see its own [[deprecated]] attribute as an
// error under -Werror.
#define CCS_ALLOW_DEPRECATED 1

#include "core/miner.h"

#include "core/session.h"

namespace ccs {

MiningResult Mine(Algorithm algorithm, const TransactionDatabase& db,
                  const ItemCatalog& catalog,
                  const ConstraintSet& constraints,
                  const MiningOptions& options) {
  const MiningSession session(DatabaseHandle::Borrow(db, catalog));
  MiningRequest request;
  request.algorithm = algorithm;
  request.options = options;
  request.constraints = &constraints;
  return session.Run(request);
}

}  // namespace ccs
