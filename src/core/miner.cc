#include "core/miner.h"

#include "core/engine.h"

namespace ccs {

MiningResult Mine(Algorithm algorithm, const TransactionDatabase& db,
                  const ItemCatalog& catalog,
                  const ConstraintSet& constraints,
                  const MiningOptions& options) {
  MiningEngine engine(db, catalog);
  MiningRequest request;
  request.algorithm = algorithm;
  request.options = options;
  request.constraints = &constraints;
  return engine.Run(request);
}

}  // namespace ccs
