#include "core/judge.h"

#include "stats/fisher.h"

#include "util/check.h"

namespace ccs {

CorrelationJudge::CorrelationJudge(const MiningOptions& options)
    : options_(options), critical_values_(options.significance) {
  CCS_CHECK(options.min_cell_fraction >= 0.0 &&
            options.min_cell_fraction <= 1.0);
  CCS_CHECK_GE(options.max_set_size, 2u);
  CCS_CHECK_LE(options.max_set_size, Itemset::kMaxSize);
}

bool CorrelationJudge::IsCtSupported(
    const stats::ContingencyTable& table) const {
  return table.IsCtSupported(options_.min_support,
                             options_.min_cell_fraction);
}

bool CorrelationJudge::IsCorrelated(const stats::ContingencyTable& table) {
  // Singletons carry no independence hypothesis.
  if (table.num_vars() < 2) return false;
  if (options_.fisher_fallback && table.num_vars() == 2 &&
      !table.SatisfiesCochranRule()) {
    // Cell masks: bit0 = first variable, bit1 = second.
    const double p = stats::FisherExactTwoSided(
        table.cell(0b11), table.cell(0b01), table.cell(0b10),
        table.cell(0b00));
    return p <= 1.0 - options_.significance;
  }
  return table.ChiSquaredStatistic() >= Cutoff(table.num_vars());
}

double CorrelationJudge::Cutoff(int num_vars) {
  return critical_values_.Get(DegreesOfFreedom(num_vars));
}

double CorrelationJudge::PValue(const stats::ContingencyTable& table) const {
  if (table.num_vars() < 2) return 1.0;
  const int df = DegreesOfFreedom(table.num_vars());
  return stats::ChiSquaredSf(table.ChiSquaredStatistic(), df);
}

int CorrelationJudge::DegreesOfFreedom(int num_vars) const {
  if (!options_.full_independence_df) return 1;
  if (num_vars < 2) return 1;
  return static_cast<int>((std::size_t{1} << num_vars)) - num_vars - 1;
}

}  // namespace ccs
