#ifndef CCS_CORE_REPORT_H_
#define CCS_CORE_REPORT_H_

#include <string>
#include <vector>

#include "core/itemset.h"
#include "core/options.h"
#include "txn/catalog.h"
#include "txn/database.h"
#include "util/csv.h"

namespace ccs {

// Per-answer statistical detail for presenting mining output to a user:
// the chi-squared statistic and p-value behind the correlation verdict,
// CT-support diagnostics, and the attribute aggregates the constraints
// talk about. Computed on demand from the database (one contingency table
// per reported set).
struct AnswerReport {
  Itemset items;
  // Human-readable item names from the catalog.
  std::vector<std::string> names;
  std::uint64_t joint_support = 0;     // transactions containing all items
  double chi_squared = 0.0;
  double p_value = 1.0;                // under the options' df policy
  double supported_cell_fraction = 0.0;
  // Direction of the dependence on the all-present cell: observed joint
  // count over its independence expectation (Brin et al.'s "interest" /
  // lift of the full set). > 1 means the items co-occur more than
  // independence predicts, < 1 less (negative dependence).
  double joint_lift = 0.0;
  double min_price = 0.0;
  double max_price = 0.0;
  double sum_price = 0.0;
};

// Builds a report row for every itemset in `answers`.
std::vector<AnswerReport> BuildReports(const std::vector<Itemset>& answers,
                                       const TransactionDatabase& db,
                                       const ItemCatalog& catalog,
                                       const MiningOptions& options);

// Renders reports as a CsvTable with columns
// (items, names, support, chi2, p_value, cells>=s, min, max, sum).
CsvTable ReportsToTable(const std::vector<AnswerReport>& reports);

}  // namespace ccs

#endif  // CCS_CORE_REPORT_H_
