#include "core/result.h"

#include <algorithm>
#include <cstdio>

namespace ccs {

const char* TerminationName(Termination termination) {
  switch (termination) {
    case Termination::kCompleted:
      return "completed";
    case Termination::kDeadline:
      return "deadline";
    case Termination::kCancelled:
      return "cancelled";
    case Termination::kBudget:
      return "budget";
    case Termination::kError:
      return "error";
  }
  return "unknown";
}

LevelStats& MiningStats::Level(std::size_t level) {
  while (levels.size() <= level) {
    levels.emplace_back();
    levels.back().level = levels.size() - 1;
  }
  return levels[level];
}

std::uint64_t MiningStats::TotalCandidates() const {
  std::uint64_t n = 0;
  for (const auto& l : levels) n += l.candidates;
  return n;
}

std::uint64_t MiningStats::TotalTablesBuilt() const {
  std::uint64_t n = 0;
  for (const auto& l : levels) n += l.tables_built;
  return n;
}

std::uint64_t MiningStats::TotalChi2Tests() const {
  std::uint64_t n = 0;
  for (const auto& l : levels) n += l.chi2_tests;
  return n;
}

std::string MiningStats::ToString() const {
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "elapsed %.3fs, %llu candidates, %llu tables, %llu chi2, "
                "%zu thread%s\n",
                elapsed_seconds,
                static_cast<unsigned long long>(TotalCandidates()),
                static_cast<unsigned long long>(TotalTablesBuilt()),
                static_cast<unsigned long long>(TotalChi2Tests()),
                num_threads, num_threads == 1 ? "" : "s");
  out += buf;
  if (num_threads > 1 && !tables_built_per_thread.empty()) {
    out += "  tables/thread:";
    for (std::uint64_t n : tables_built_per_thread) {
      std::snprintf(buf, sizeof(buf), " %llu",
                    static_cast<unsigned long long>(n));
      out += buf;
    }
    out += "\n";
  }
  if (ct_cache_lookups > 0) {
    std::snprintf(buf, sizeof(buf),
                  "  ct cache: %llu hits, %llu misses, %llu evictions, "
                  "%llu word ops\n",
                  static_cast<unsigned long long>(ct_cache_hits),
                  static_cast<unsigned long long>(ct_cache_misses),
                  static_cast<unsigned long long>(ct_cache_evictions),
                  static_cast<unsigned long long>(ct_word_ops));
    out += buf;
  }
  for (const auto& l : levels) {
    if (l.candidates == 0 && l.sig_added == 0 && l.notsig_added == 0) {
      continue;
    }
    std::snprintf(
        buf, sizeof(buf),
        "  level %zu: cand=%llu pruned=%llu ct=%llu supported=%llu "
        "chi2=%llu corr=%llu sig+=%llu notsig+=%llu wall=%.1fms\n",
        l.level, static_cast<unsigned long long>(l.candidates),
        static_cast<unsigned long long>(l.pruned_before_ct),
        static_cast<unsigned long long>(l.tables_built),
        static_cast<unsigned long long>(l.ct_supported),
        static_cast<unsigned long long>(l.chi2_tests),
        static_cast<unsigned long long>(l.correlated),
        static_cast<unsigned long long>(l.sig_added),
        static_cast<unsigned long long>(l.notsig_added),
        l.wall_seconds * 1e3);
    out += buf;
  }
  return out;
}

bool MiningResult::ContainsAnswer(const Itemset& s) const {
  return std::binary_search(answers.begin(), answers.end(), s);
}

}  // namespace ccs
