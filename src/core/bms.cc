#include "core/bms.h"

#include <algorithm>
#include <cstdint>

#include "core/candidate_gen.h"
#include "core/parallel_eval.h"
#include "util/stopwatch.h"

namespace ccs {
namespace {

// Per-candidate verdict from the parallel pass, reduced in candidate
// order afterwards so answers and counters match the serial run exactly.
enum class Verdict : std::uint8_t { kUnsupported, kSig, kNotsig };

}  // namespace

BmsRunOutput RunBms(const TransactionDatabase& db,
                    const MiningOptions& options, MiningContext* ctx) {
  if (ctx == nullptr) {
    ParallelExecutor serial(1);
    MiningContext local(serial, Algorithm::kBms);
    return RunBms(db, options, &local);
  }
  Stopwatch timer;
  EvalWorkers workers(db, options, ctx->num_threads(), ctx->ct_cache(),
                      ctx->simd(), ctx->metrics());
  BmsRunOutput out;

  for (ItemId i = 0; i < db.num_items(); ++i) {
    if (db.ItemSupport(i) >= options.min_support) {
      out.frequent_items.push_back(i);
    }
  }

  std::vector<Itemset> candidates;
  {
    PhaseScope phase(*ctx, "candidate_gen");
    candidates = AllPairs(out.frequent_items);
  }
  std::vector<Verdict> verdicts;
  for (std::size_t k = 2; k <= options.max_set_size && !candidates.empty();
       ++k) {
    const Termination boundary = ctx->CheckAtLevel(out.stats, out.sig.size());
    if (boundary != Termination::kCompleted) {
      out.termination = boundary;
      break;
    }
    Stopwatch level_timer;
    Tracer::Span level_span(ctx->tracer(), "level");
    LevelStats& level = out.stats.Level(k);
    while (out.unsupported_by_level.size() <= k) {
      out.unsupported_by_level.emplace_back();
    }
    // Parallel pass: all database work, one slot per candidate.
    verdicts.assign(candidates.size(), Verdict::kUnsupported);
    const Termination pass = GovernedBuildTables(
        *ctx, workers, candidates, nullptr,
        [&](std::size_t i, std::size_t t,
            const stats::ContingencyTable& table) {
          if (!workers.judge(t).IsCtSupported(table)) {
            verdicts[i] = Verdict::kUnsupported;
          } else {
            verdicts[i] = workers.judge(t).IsCorrelated(table)
                              ? Verdict::kSig
                              : Verdict::kNotsig;
          }
        });
    if (pass != Termination::kCompleted) {
      // Discard the level's partial verdicts; completed levels stand.
      out.termination = pass;
      break;
    }
    // Ordered reduction: counters and SIG/NOTSIG membership.
    std::vector<Itemset> notsig;
    {
      PhaseScope judge_phase(*ctx, "judge");
      for (std::size_t i = 0; i < candidates.size(); ++i) {
        const Itemset& s = candidates[i];
        ++level.candidates;
        ++level.tables_built;
        switch (verdicts[i]) {
          case Verdict::kUnsupported:
            out.unsupported_by_level[k].push_back(s);
            break;
          case Verdict::kSig:
            ++level.ct_supported;
            ++level.chi2_tests;
            ++level.correlated;
            ++level.sig_added;
            out.sig.push_back(s);
            break;
          case Verdict::kNotsig:
            ++level.ct_supported;
            ++level.chi2_tests;
            ++level.notsig_added;
            notsig.push_back(s);
            break;
        }
      }
    }
    while (out.notsig_by_level.size() <= k) out.notsig_by_level.emplace_back();
    out.notsig_by_level[k] = notsig;
    ++out.stats.levels_completed;
    level.wall_seconds += level_timer.ElapsedSeconds();
    ctx->ReportLevel(level, out.sig.size(), level_timer.ElapsedSeconds());
    if (k == options.max_set_size) break;
    PhaseScope gen_phase(*ctx, "candidate_gen");
    const ItemsetSet closed(notsig.begin(), notsig.end());
    candidates =
        ExtendSeeds(notsig, out.frequent_items, [&closed](const Itemset& s) {
          return AllCoSubsetsIn(s, closed);
        });
  }

  std::sort(out.sig.begin(), out.sig.end());
  workers.AccumulateInto(out.stats);
  out.stats.elapsed_seconds = timer.ElapsedSeconds();
  return out;
}

MiningResult MineBms(const TransactionDatabase& db,
                     const MiningOptions& options, MiningContext* ctx) {
  BmsRunOutput run = RunBms(db, options, ctx);
  MiningResult result;
  result.answers = std::move(run.sig);
  result.stats = std::move(run.stats);
  result.termination = run.termination;
  return result;
}

}  // namespace ccs
