#include "core/bms.h"

#include <algorithm>

#include "core/candidate_gen.h"
#include "core/ct_builder.h"
#include "core/judge.h"
#include "util/stopwatch.h"

namespace ccs {

BmsRunOutput RunBms(const TransactionDatabase& db,
                    const MiningOptions& options) {
  Stopwatch timer;
  CorrelationJudge judge(options);
  ContingencyTableBuilder builder(db);
  BmsRunOutput out;

  for (ItemId i = 0; i < db.num_items(); ++i) {
    if (db.ItemSupport(i) >= options.min_support) {
      out.frequent_items.push_back(i);
    }
  }

  std::vector<Itemset> candidates = AllPairs(out.frequent_items);
  for (std::size_t k = 2; k <= options.max_set_size && !candidates.empty();
       ++k) {
    LevelStats& level = out.stats.Level(k);
    while (out.unsupported_by_level.size() <= k) {
      out.unsupported_by_level.emplace_back();
    }
    std::vector<Itemset> notsig;
    for (const Itemset& s : candidates) {
      ++level.candidates;
      const stats::ContingencyTable table = builder.Build(s);
      ++level.tables_built;
      if (!judge.IsCtSupported(table)) {
        out.unsupported_by_level[k].push_back(s);
        continue;
      }
      ++level.ct_supported;
      ++level.chi2_tests;
      if (judge.IsCorrelated(table)) {
        ++level.correlated;
        ++level.sig_added;
        out.sig.push_back(s);
      } else {
        ++level.notsig_added;
        notsig.push_back(s);
      }
    }
    while (out.notsig_by_level.size() <= k) out.notsig_by_level.emplace_back();
    out.notsig_by_level[k] = notsig;
    if (k == options.max_set_size) break;
    const ItemsetSet closed(notsig.begin(), notsig.end());
    candidates =
        ExtendSeeds(notsig, out.frequent_items, [&closed](const Itemset& s) {
          return AllCoSubsetsIn(s, closed);
        });
  }

  std::sort(out.sig.begin(), out.sig.end());
  out.stats.elapsed_seconds = timer.ElapsedSeconds();
  return out;
}

MiningResult MineBms(const TransactionDatabase& db,
                     const MiningOptions& options) {
  BmsRunOutput run = RunBms(db, options);
  MiningResult result;
  result.answers = std::move(run.sig);
  result.stats = std::move(run.stats);
  return result;
}

}  // namespace ccs
