#ifndef CCS_CORE_RUN_CONTROL_H_
#define CCS_CORE_RUN_CONTROL_H_

#include <atomic>
#include <chrono>
#include <cstdint>

#include "core/result.h"

// Run hardening: deadlines, cooperative cancellation, and work budgets for
// MiningEngine::Run. The BMS family is level-wise, so every level boundary
// is a natural safe point — a tripped run stops there and reports the
// minimal correlated sets of the levels it finished (see DESIGN.md §8).
//
// Check-point discipline:
//  * deadline / cancellation — wall-clock conditions, polled both at level
//    boundaries and between fixed-size candidate batches inside a level's
//    parallel pass. Where they trip varies run to run, but a tripped level
//    is discarded wholesale, so completed levels stay bit-identical to an
//    unbounded run at any thread count.
//  * budgets — counter conditions on the run's deterministic totals,
//    checked at level boundaries only. A budget trip therefore happens at
//    the same point for every thread count and every repetition.

namespace ccs {

// Cooperative cancellation flag. The Run side only reads it; any other
// thread may Cancel() at any time. Reusable after Reset().
class CancelToken {
 public:
  void Cancel() { cancelled_.store(true, std::memory_order_release); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }
  void Reset() { cancelled_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> cancelled_{false};
};

// Per-run limits; everything defaults to unlimited (zero / nullptr).
struct RunControl {
  // Wall-clock budget for the whole Run, stamped at Run entry. Zero means
  // no deadline.
  std::chrono::milliseconds timeout{0};
  // Borrowed; must outlive the Run. nullptr means not cancellable.
  const CancelToken* cancel = nullptr;
  // Stop once this many candidate sets have been considered (the paper's
  // |ALG| cost unit). 0 = unlimited.
  std::uint64_t max_candidates = 0;
  // Stop once this many contingency tables have been built (the database
  // work unit). 0 = unlimited.
  std::uint64_t max_tables_built = 0;
  // Stop once this many answer sets have been found. 0 = unlimited.
  std::uint64_t max_result_sets = 0;

  bool unlimited() const {
    return timeout.count() <= 0 && cancel == nullptr &&
           max_candidates == 0 && max_tables_built == 0 &&
           max_result_sets == 0;
  }
};

// A RunControl stamped with its absolute deadline at Run entry. Algorithms
// poll it through MiningContext; a default-constructed governor never
// trips.
class RunGovernor {
 public:
  RunGovernor() = default;
  explicit RunGovernor(const RunControl& control)
      : control_(control),
        deadline_(control.timeout.count() > 0
                      ? std::chrono::steady_clock::now() + control.timeout
                      : std::chrono::steady_clock::time_point::max()) {}

  // Deadline and cancellation only — cheap enough to poll between
  // candidate batches.
  Termination CheckNow() const {
    if (control_.cancel != nullptr && control_.cancel->cancelled()) {
      return Termination::kCancelled;
    }
    if (deadline_ != std::chrono::steady_clock::time_point::max() &&
        std::chrono::steady_clock::now() >= deadline_) {
      return Termination::kDeadline;
    }
    return Termination::kCompleted;
  }

  // Level-boundary check: deterministic budgets first (so a run that hits
  // both a budget and its deadline reports the reproducible reason), then
  // the wall-clock conditions.
  Termination CheckAtLevel(std::uint64_t candidates,
                           std::uint64_t tables_built,
                           std::uint64_t answers) const {
    if (Exceeded(control_.max_candidates, candidates) ||
        Exceeded(control_.max_tables_built, tables_built) ||
        Exceeded(control_.max_result_sets, answers)) {
      return Termination::kBudget;
    }
    return CheckNow();
  }

 private:
  static bool Exceeded(std::uint64_t limit, std::uint64_t value) {
    return limit != 0 && value >= limit;
  }

  RunControl control_;
  std::chrono::steady_clock::time_point deadline_ =
      std::chrono::steady_clock::time_point::max();
};

}  // namespace ccs

#endif  // CCS_CORE_RUN_CONTROL_H_
