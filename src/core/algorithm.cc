#include "core/algorithm.h"

namespace ccs {

const char* AlgorithmName(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kBms:
      return "BMS";
    case Algorithm::kBmsPlus:
      return "BMS+";
    case Algorithm::kBmsPlusPlus:
      return "BMS++";
    case Algorithm::kBmsStar:
      return "BMS*";
    case Algorithm::kBmsStarStar:
      return "BMS**";
    case Algorithm::kBmsStarStarOpt:
      return "BMS**opt";
  }
  return "?";
}

std::optional<Algorithm> ParseAlgorithmName(const std::string& name) {
  for (Algorithm a : kAllAlgorithms) {
    if (name == AlgorithmName(a)) return a;
  }
  return std::nullopt;
}

AnswerSemantics SemanticsOf(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kBms:
      return AnswerSemantics::kUnconstrained;
    case Algorithm::kBmsPlus:
    case Algorithm::kBmsPlusPlus:
      return AnswerSemantics::kValidMinimal;
    case Algorithm::kBmsStar:
    case Algorithm::kBmsStarStar:
    case Algorithm::kBmsStarStarOpt:
      return AnswerSemantics::kMinimalValid;
  }
  return AnswerSemantics::kUnconstrained;
}

}  // namespace ccs
