#include "core/bms_plus.h"

#include "core/bms.h"
#include "util/stopwatch.h"

namespace ccs {

MiningResult MineBmsPlus(const TransactionDatabase& db,
                         const ItemCatalog& catalog,
                         const ConstraintSet& constraints,
                         const MiningOptions& options, MiningContext* ctx) {
  Stopwatch timer;
  BmsRunOutput run = RunBms(db, options, ctx);
  MiningResult result;
  for (const Itemset& s : run.sig) {
    if (constraints.TestAll(s.span(), catalog)) {
      result.answers.push_back(s);
    }
  }
  result.stats = std::move(run.stats);
  result.stats.elapsed_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace ccs
