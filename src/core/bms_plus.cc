#include "core/bms_plus.h"

#include "core/bms.h"
#include "core/context.h"
#include "util/stopwatch.h"

namespace ccs {

MiningResult MineBmsPlus(const TransactionDatabase& db,
                         const ItemCatalog& catalog,
                         const ConstraintSet& constraints,
                         const MiningOptions& options, MiningContext* ctx) {
  if (ctx == nullptr) {
    ParallelExecutor serial(1);
    MiningContext local(serial, Algorithm::kBmsPlus);
    return MineBmsPlus(db, catalog, constraints, options, &local);
  }
  Stopwatch timer;
  BmsRunOutput run = RunBms(db, options, ctx);
  MiningResult result;
  // The post-filter is valid on a partial run too: it only ever removes
  // answers, so the filtered prefix is the filtered unbounded prefix.
  {
    PhaseScope phase(*ctx, "constraint_check");
    for (const Itemset& s : run.sig) {
      if (constraints.TestAll(s.span(), catalog)) {
        result.answers.push_back(s);
      }
    }
  }
  result.stats = std::move(run.stats);
  result.termination = run.termination;
  result.stats.elapsed_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace ccs
