#ifndef CCS_CORE_BMS_PLUS_H_
#define CCS_CORE_BMS_PLUS_H_

#include "constraints/constraint_set.h"
#include "core/context.h"
#include "core/options.h"
#include "core/result.h"
#include "txn/catalog.h"
#include "txn/database.h"

namespace ccs {

// Algorithm BMS+ (Figure D): the naive algorithm for *valid minimal*
// answers. Runs unconstrained BMS to completion and then outputs the SIG
// members that satisfy the constraints. Ignores all pruning power of the
// constraints — the baseline every experiment compares against.
//
// Constraints of any monotonicity are accepted (post-filtering imposes no
// structural requirement), including the neither-monotone-nor-anti-monotone
// kind of Section 6 (e.g. avg).
MiningResult MineBmsPlus(const TransactionDatabase& db,
                         const ItemCatalog& catalog,
                         const ConstraintSet& constraints,
                         const MiningOptions& options,
                         MiningContext* ctx = nullptr);

}  // namespace ccs

#endif  // CCS_CORE_BMS_PLUS_H_
