#ifndef CCS_CORE_SIMD_KERNEL_H_
#define CCS_CORE_SIMD_KERNEL_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "txn/database.h"
#include "txn/item.h"
#include "util/bitset.h"

namespace ccs {

// The vectorized intersection/popcount kernel behind the contingency-table
// fast paths (DESIGN.md §14).
//
// Two implementations sit behind one dispatch enum:
//  * kScalar — the word-at-a-time loops DynamicBitset has always used,
//    kept as the reference path and the kill switch;
//  * kVector — GCC vector extensions (256-bit uint64 lanes) for the AND /
//    AND-NOT combine plus batched popcounts over four independent
//    accumulators, tiled into L1-sized blocks so the combine and the count
//    of a block share residency.
//
// Both paths compute the same exact integers over the same words, so every
// cell, answer, and deterministic counter is bit-identical across modes —
// the property pinned by tests/core_simd_kernel_test.cc and the kernel
// axis of the differential harness. This header is the only place in the
// tree allowed to use vector extensions or intrinsics (ccs-lint rule
// vector-ext-outside-kernel).
enum class KernelMode {
  kScalar,
  kVector,
};

// "scalar" / "vector", for bench labels and test diagnostics.
const char* KernelModeName(KernelMode mode);

// Session-level kernel knobs, resolved once by ResolveEngineOptions()
// (EngineOptions::simd_kernel + the CCS_SIMD override) and threaded through
// MiningContext / EvalWorkers to every ContingencyTableBuilder.
struct SimdOptions {
  // Master switch for both the vector kernel and the pair stage. False
  // forces KernelMode::kScalar everywhere and disables the candidate-free
  // k=2 path — the original word-wise code, verbatim.
  bool enabled = true;

  // Pair-stage admission gates (core/parallel_eval.h); alongside the
  // PairStageEstimatedOps cost gate below, all are functions of the
  // candidate batch and the fixed item supports alone, so the taken path —
  // and with it every counter — is deterministic at any thread count.
  //
  // Upper bound on the triangular co-occurrence array (8 bytes per cell;
  // the default 1<<22 caps the stage at 32 MiB). Batches over more
  // distinct items fall back to the bitset paths.
  std::size_t pair_stage_max_cells = std::size_t{1} << 22;
  // Minimum batch size worth a horizontal database pass; smaller batches
  // (e.g. BMS++'s occasional probe handful) use the bitset paths.
  std::size_t pair_stage_min_candidates = 4;
};

// Cost model constant for the admission gate below: the per-candidate
// recursion spends about this many passes over one tid-set width to build
// a k=2 table (intersect + count the four minterm splits).
inline constexpr std::uint64_t kScalarWordOpsPerPairTable = 5;

// Deterministic estimate of PairStage's pass cost over `items`: the stage
// pays sum over transactions of C(p, 2) increments (p = stage items
// present), estimated here from the mean stage-item density
// sum(supports) / num_transactions. Jensen's inequality makes this an
// underestimate on bursty rows, which is fine for an admission gate — it
// is a pure function of (database, items), so every thread count and cache
// mode takes the same path. Requires a finalized database (supports).
std::uint64_t PairStageEstimatedOps(const TransactionDatabase& db,
                                    const std::vector<ItemId>& items);

// Kernel selection happens once per builder against a finalized database —
// the TID-list layout (word count per tid-set) is fixed at Finalize time,
// and TransactionDatabase::simd_friendly() records whether the tid-sets
// are long enough for 256-bit lanes to pay. Unfinalized databases (the
// scalar-reference callers) always select kScalar.
KernelMode SelectKernel(const SimdOptions& options,
                        const TransactionDatabase& db);

// --- Raw word-span kernels -----------------------------------------------
//
// `n` is the word count; operands may alias only if identical. All return
// exact popcounts, independent of mode.

using KernelWord = DynamicBitset::Word;

// popcount(a[0..n)).
std::uint64_t KernelPopcount(const KernelWord* a, std::size_t n,
                             KernelMode mode);

// popcount(a & b) without materializing the intersection.
std::uint64_t KernelAndCount(const KernelWord* a, const KernelWord* b,
                             std::size_t n, KernelMode mode);

// popcount(a & ~b).
std::uint64_t KernelAndNotCount(const KernelWord* a, const KernelWord* b,
                                std::size_t n, KernelMode mode);

// dst = a & b.
void KernelAnd(KernelWord* dst, const KernelWord* a, const KernelWord* b,
               std::size_t n, KernelMode mode);

// dst = a & ~b.
void KernelAndNot(KernelWord* dst, const KernelWord* a, const KernelWord* b,
                  std::size_t n, KernelMode mode);

// dst = a & b, returning popcount(dst) — the fused combine+count used when
// the intersection is both kept and counted.
std::uint64_t KernelAndWriteCount(KernelWord* dst, const KernelWord* a,
                                  const KernelWord* b, std::size_t n,
                                  KernelMode mode);

// --- DynamicBitset-level wrappers ----------------------------------------
//
// Same contracts as the DynamicBitset member/static ops they shadow
// (operands equal-sized, destination resized to match, trailing bits kept
// zero because both inputs keep theirs zero), dispatched through `mode`.

std::uint64_t KernelCountAnd(const DynamicBitset& a, const DynamicBitset& b,
                             KernelMode mode);
std::uint64_t KernelCountAndNot(const DynamicBitset& a,
                                const DynamicBitset& b, KernelMode mode);
void KernelAssignAnd(DynamicBitset& dst, const DynamicBitset& a,
                     const DynamicBitset& b, KernelMode mode);
void KernelAssignAndNot(DynamicBitset& dst, const DynamicBitset& a,
                        const DynamicBitset& b, KernelMode mode);
std::uint64_t KernelAssignAndCount(DynamicBitset& dst, const DynamicBitset& a,
                                   const DynamicBitset& b, KernelMode mode);

// --- Candidate-generation-free k=2 stage ---------------------------------
//
// One pass over the horizontal transactions fills the co-occurrence count
// of every item pair drawn from a fixed item subset — He et al.'s
// all-strongly-correlated-pairs observation (PAPERS.md): at k=2 the full
// 2x2 table of (a, b) is determined by (N, supp(a), supp(b), supp(ab)),
// so no per-candidate bitset pass is needed at all. The level pass in
// GovernedBuildTables runs the stage once and recovers every pair table
// from it; SharedPairTier::Build uses it to know which pairs are empty
// before materializing any intersection.
//
// The pass is exact integer counting in a fixed order, so its counts and
// its ops() work counter depend only on (database, items) — never on
// thread schedule — keeping the determinism contract.
class PairStage {
 public:
  // `items` may be unsorted / contain duplicates; it is normalized. Every
  // id must be < db.num_items(). The database is borrowed and must
  // outlive the stage; it does not need to be finalized (the stage reads
  // only the horizontal transactions).
  PairStage(const TransactionDatabase& db, std::vector<ItemId> items);

  // Accumulates transactions [t_begin, t_end). Callers chunk the range so
  // deadline/cancel polls keep their cadence; any chunking yields the
  // same counts as one whole-range call.
  void Accumulate(std::size_t t_begin, std::size_t t_end);

  // Number of transactions containing both items. Both ids must be stage
  // items and distinct; order does not matter. Valid for the transaction
  // ranges accumulated so far.
  std::uint64_t PairSupport(ItemId a, ItemId b) const;

  // Pair-count increments performed so far — the stage's currency in the
  // cost model (docs/ALGORITHMS.md): sum over scanned transactions of
  // C(p, 2), p = stage items present. Deterministic.
  std::uint64_t ops() const { return ops_; }

  const std::vector<ItemId>& items() const { return items_; }
  std::size_t num_items() const { return items_.size(); }

  // Triangular cell count for m distinct items — the admission gate's
  // memory proxy (8 bytes each).
  static std::uint64_t CellsFor(std::uint64_t m) {
    return m < 2 ? 0 : m * (m - 1) / 2;
  }

 private:
  const TransactionDatabase* db_;
  std::vector<ItemId> items_;        // sorted, distinct
  std::vector<std::int32_t> dense_;  // item id -> dense index, -1 if absent
  std::vector<std::uint64_t> counts_;  // triangular: (i<j) at j*(j-1)/2 + i
  std::vector<std::uint32_t> present_;  // per-transaction scratch
  std::uint64_t ops_ = 0;
};

}  // namespace ccs

#endif  // CCS_CORE_SIMD_KERNEL_H_
