#ifndef CCS_CORE_SESSION_H_
#define CCS_CORE_SESSION_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>

#include "core/engine_options.h"
#include "core/pair_tier.h"
#include "core/result.h"
#include "txn/catalog.h"
#include "txn/database.h"
#include "util/executor_pool.h"

namespace ccs {

// The service-shaped mining API (DESIGN.md §12). Three layers replace the
// old "one MiningEngine = one database + one private pool + one serial
// Run" coupling:
//
//   * DatabaseHandle — an immutable, epoch-stamped bundle of a finalized
//     database, its catalog, and the Finalize-time layout work (today: the
//     shared k=2 intersection tier). Cheap to copy, safe to share across
//     any number of threads; the epoch is the cache-invalidation token for
//     everything keyed on the data (the service memo, client ETags).
//   * ExecutorPool — process-wide thread-pool sharing (util/executor_pool.h).
//   * MiningSession — a cheap per-request binding of a handle to resolved
//     EngineOptions. Run leases an executor per call, so sessions over the
//     same handle (or even Run calls on one session) may proceed
//     concurrently; answers are bit-identical to a private serial
//     MiningEngine by construction — both funnel into RunMiningQuery.
//
// MiningEngine (core/engine.h) remains as a thin compatibility facade over
// these pieces.

// Finalize-time layout knobs, fixed when the handle is created.
struct HandleOptions {
  // Budget for the shared read-only k=2 intersection tier, in MiB of
  // bitset words. 0 disables the tier — every builder then computes pair
  // intersections privately, exactly as before; answers are identical
  // either way (core/pair_tier.h).
  std::size_t pair_tier_budget_mib = 0;
  // How the tier's intersections are materialized (core/pair_tier.h):
  // vector kernel + PairStage pre-pass when enabled, the scalar loops
  // when not. The tier's contents are bit-identical either way — this
  // mirrors EngineOptions::simd_kernel for the Finalize-time layout, and
  // exists mainly so the kill switch can cover handle creation too.
  SimdOptions simd;
};

// Immutable view of one finalized database generation. Copies share one
// payload; the handle (and all copies) must outlive every session and
// every in-flight Run over it.
class DatabaseHandle {
 public:
  DatabaseHandle() = default;

  // Owning: takes the database and catalog (finalizing the database if the
  // caller has not), builds the Finalize-time layout, stamps a fresh
  // process-unique epoch.
  static DatabaseHandle Create(TransactionDatabase db, ItemCatalog catalog,
                               HandleOptions options = {});

  // Non-owning: borrows an already-finalized database and catalog that the
  // caller keeps alive — the compatibility path for MiningEngine and for
  // callers with their own storage. Still epoch-stamped, still able to
  // carry a pair tier.
  static DatabaseHandle Borrow(const TransactionDatabase& db,
                               const ItemCatalog& catalog,
                               HandleOptions options = {});

  bool valid() const { return payload_ != nullptr; }
  const TransactionDatabase& database() const { return *payload_->db; }
  const ItemCatalog& catalog() const { return *payload_->catalog; }
  // The shared k=2 tier, or nullptr when built with a zero budget.
  const SharedPairTier* pair_tier() const {
    return payload_->tier.num_pairs() > 0 ? &payload_->tier : nullptr;
  }
  // Process-unique, monotonically increasing across handle creations.
  // Two handles with the same epoch are the same data by construction.
  std::uint64_t epoch() const { return payload_->epoch; }

 private:
  struct Payload {
    // Owned storage (Create); unused by Borrow.
    std::unique_ptr<const TransactionDatabase> owned_db;
    std::unique_ptr<const ItemCatalog> owned_catalog;
    // Always set: into the owned storage or the borrowed objects.
    const TransactionDatabase* db = nullptr;
    const ItemCatalog* catalog = nullptr;
    SharedPairTier tier;
    std::uint64_t epoch = 0;
  };

  explicit DatabaseHandle(std::shared_ptr<const Payload> payload)
      : payload_(std::move(payload)) {}

  std::shared_ptr<const Payload> payload_;
};

// A cheap per-request mining context: a DatabaseHandle plus EngineOptions
// resolved once (env overrides folded in — core/engine_options.h). Run
// leases an executor from the pool per call and releases it on return, so
// constructing a session allocates no threads.
//
// Thread-safety: const and immutable after construction — concurrent Run
// calls on one session are as safe as one session per thread, and both are
// bit-identical to a serial MiningEngine at any thread count (the
// determinism contract of DESIGN.md §7 carries over unchanged).
class MiningSession {
 public:
  // `pool` is borrowed and must outlive the session; nullptr selects the
  // process-wide pool.
  explicit MiningSession(DatabaseHandle handle, EngineOptions options = {},
                         ExecutorPool* pool = nullptr);

  // [[nodiscard]]: the result carries the run's termination reason and
  // Status — discarding it silently swallows deadline/cancel/error exits.
  [[nodiscard]] MiningResult Run(const MiningRequest& request) const;

  const DatabaseHandle& handle() const { return handle_; }
  // Resolved configuration in effect (env overrides folded in).
  const ResolvedEngineOptions& options() const { return resolved_; }
  std::size_t num_threads() const { return resolved_.num_threads; }

 private:
  DatabaseHandle handle_;
  ResolvedEngineOptions resolved_;
  ExecutorPool* pool_;
};

}  // namespace ccs

#endif  // CCS_CORE_SESSION_H_
