#include "core/engine_options.h"

#include <cstdlib>
#include <string>

#include "util/executor.h"
#include "util/metrics.h"

namespace ccs {

ResolvedEngineOptions ResolveEngineOptions(const EngineOptions& options) {
  ResolvedEngineOptions resolved;
  resolved.num_threads = options.num_threads != 0
                             ? options.num_threads
                             : ParallelExecutor::HardwareThreads();
  resolved.progress_callback = options.progress_callback;
  resolved.ct_cache.enabled = options.ct_cache;
  resolved.ct_cache.budget_words =
      options.ct_cache_budget_mib *
      ((std::size_t{1} << 20) / sizeof(std::uint64_t));
  if (const char* env = std::getenv("CCS_CT_CACHE")) {  // NOLINT(concurrency-mt-unsafe)
    resolved.ct_cache.enabled = std::string(env) != "0";
  }
  resolved.simd.enabled = options.simd_kernel;
  if (const char* env = std::getenv("CCS_SIMD")) {  // NOLINT(concurrency-mt-unsafe)
    resolved.simd.enabled = std::string(env) != "0";
  }
  resolved.streaming = options.streaming;
  if (const char* env = std::getenv("CCS_STREAM")) {  // NOLINT(concurrency-mt-unsafe)
    resolved.streaming = std::string(env) != "0";
  }
  resolved.metrics = MetricsEnabledFromEnv(options.metrics);
  resolved.trace = options.trace;
  resolved.trace_capacity = options.trace_capacity;
  ResolveTraceFromEnv(resolved.trace, resolved.trace_capacity);
  return resolved;
}

}  // namespace ccs
