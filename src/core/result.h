#ifndef CCS_CORE_RESULT_H_
#define CCS_CORE_RESULT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/itemset.h"
#include "core/trace.h"
#include "util/metrics.h"
#include "util/status.h"

namespace ccs {

// Why a Run ended. Anything but kCompleted means the result is partial:
// `answers` and the per-level counters cover exactly the completed level
// passes (stats.levels_completed), which are bit-identical to the same
// prefix of an unbounded run at any thread count. See DESIGN.md §8.
enum class Termination : std::uint8_t {
  kCompleted,  // ran to the natural end of the lattice sweep
  kDeadline,   // RunControl::timeout expired
  kCancelled,  // RunControl::cancel was flipped
  kBudget,     // a max_candidates/max_tables_built/max_result_sets cap hit
  kError,      // a worker threw; MiningResult::error has the diagnostic
};

// Stable lower-case name, e.g. "deadline".
const char* TerminationName(Termination termination);

// Per-lattice-level instrumentation. Section 3.3 analyzes the algorithms by
// the number of sets each "needs to consider" (each considered set implies
// a database scan to build its contingency table); these counters expose
// exactly that quantity, split by what happened to each candidate.
struct LevelStats {
  std::size_t level = 0;
  // Candidate sets formed at this level.
  std::uint64_t candidates = 0;
  // Candidates rejected by non-succinct anti-monotone constraints before
  // their contingency table was built (BMS++/BMS** pruning).
  std::uint64_t pruned_before_ct = 0;
  // Contingency tables actually built (database work).
  std::uint64_t tables_built = 0;
  // Of those, how many were CT-supported.
  std::uint64_t ct_supported = 0;
  // Chi-squared tests performed.
  std::uint64_t chi2_tests = 0;
  // Sets found correlated (directly or inherited from a correlated subset).
  std::uint64_t correlated = 0;
  // Sets admitted to SIG at this level.
  std::uint64_t sig_added = 0;
  // Sets added to NOTSIG at this level.
  std::uint64_t notsig_added = 0;
  // Wall time spent on this level, summed over passes (timing only — not
  // part of the deterministic counter set).
  double wall_seconds = 0.0;
};

// Aggregate run statistics.
struct MiningStats {
  std::vector<LevelStats> levels;
  double elapsed_seconds = 0.0;
  // Executor width the run used (1 for the serial path).
  std::size_t num_threads = 1;
  // Contingency tables built by each executor thread. Sums to
  // TotalTablesBuilt(); the split depends on the thread schedule and is
  // the one run-to-run nondeterministic quantity in these stats.
  std::vector<std::uint64_t> tables_built_per_thread;
  // Fully completed level passes (every algorithm counts one per pass;
  // BMS*'s sweep and BMS**'s phase 2 count their passes too). On a partial
  // run this is the length of the trustworthy prefix.
  std::uint64_t levels_completed = 0;
  // Prefix-sharing CT-path telemetry (DESIGN.md §9), summed over the
  // per-thread IntersectionCaches. Like tables_built_per_thread the
  // hit/miss/eviction split depends on which worker drew which prefix
  // group, so those sit outside the deterministic counter contract; all
  // zero when the cache is off. ct_cache_lookups (== hits + misses) is
  // schedule-independent — see IntersectionCacheStats.
  std::uint64_t ct_cache_lookups = 0;
  std::uint64_t ct_cache_hits = 0;
  std::uint64_t ct_cache_misses = 0;
  std::uint64_t ct_cache_evictions = 0;
  // Pair intersections served by a DatabaseHandle's shared read-only tier
  // (DESIGN.md §12). Consulted before the per-worker LRU, so — unlike the
  // hit/miss split above — this count is schedule-independent. Zero when
  // no tier is attached or the cache path is off.
  std::uint64_t ct_cache_shared_hits = 0;
  // Bulk bitset word operations spent building contingency tables — the
  // concrete currency of the paper's O(2^k * N/64) cost model (exact and
  // thread-count-independent at a fixed ct_cache setting only for
  // single-builder runs; the benches compare it at num_threads = 1).
  std::uint64_t ct_word_ops = 0;
  // Candidate-free k=2 pair stage (DESIGN.md §14): tables recovered in
  // O(1) from a stage pass (a subset of TotalTablesBuilt()) and the stage
  // passes' pair-count increments — the stage's currency in the cost
  // model, alongside ct_word_ops. Both are schedule-independent (the
  // stage admission gate and the pass itself are deterministic); zero
  // with the SIMD kernel disabled.
  std::uint64_t ct_pair_stage_tables = 0;
  std::uint64_t ct_pair_stage_ops = 0;

  LevelStats& Level(std::size_t level);

  // The paper's |ALG| — total candidate sets considered.
  std::uint64_t TotalCandidates() const;
  // Total contingency tables built (total database scans' worth of work).
  std::uint64_t TotalTablesBuilt() const;
  std::uint64_t TotalChi2Tests() const;

  // Multi-line human-readable dump.
  std::string ToString() const;
};

// Result of a mining run: the answer itemsets (SIG), sorted
// lexicographically for determinism, plus instrumentation. `termination`
// makes degradation explicit: a bounded or cancelled Run hands back the
// minimal correlated sets of the levels it finished instead of nothing.
struct MiningResult {
  std::vector<Itemset> answers;
  MiningStats stats;
  Termination termination = Termination::kCompleted;
  // Non-ok exactly when termination == kError.
  Status error;
  // The run's aggregated MetricsRegistry (DESIGN.md §10). Populated by
  // MiningEngine::Run (enabled == false under the CCS_METRICS=0 kill
  // switch); empty from the legacy free-function entry points.
  MetricsSnapshot metrics;
  // The run's phase trace; empty unless tracing was enabled via
  // EngineOptions::trace or CCS_TRACE.
  TraceLog trace;

  bool ContainsAnswer(const Itemset& s) const;
  bool partial() const { return termination != Termination::kCompleted; }
};

}  // namespace ccs

#endif  // CCS_CORE_RESULT_H_
