#ifndef CCS_CORE_BMS_H_
#define CCS_CORE_BMS_H_

#include <vector>

#include "core/context.h"
#include "core/options.h"
#include "core/result.h"
#include "txn/database.h"

namespace ccs {

// Algorithm BMS — Brin, Motwani, Silverstein (SIGMOD'97): all minimal
// correlated and CT-supported itemsets, no constraints. Level-wise from
// pairs upward; a candidate's contingency table is built (one database
// scan's worth of work), CT-support is tested (anti-monotone pruning), and
// the chi-squared test sends the set to SIG (correlated — minimal, since
// all its subsets were uncorrelated) or NOTSIG (the frontier from which
// the next level's candidates are formed: every co-dimension-1 subset of a
// candidate must be in NOTSIG).
//
// Search space note (also applies to the whole BMS family and the oracle):
// following the paper's preprocessing, the item universe is restricted to
// frequent items, O(i) >= min_support. The literal CT-support predicate
// alone does not imply singleton frequency (the all-absent cell can carry
// a 2^k-cell table past a low p%), so the frequency filter is part of the
// problem definition here, exactly as in the published algorithms.

// Everything BMS discovered, in the form BMS+ and BMS* need for reuse.
struct BmsRunOutput {
  // Minimal correlated and CT-supported sets (SIG'), sorted.
  std::vector<Itemset> sig;
  // CT-supported but uncorrelated candidates (NOTSIG'), per level;
  // notsig_by_level[k] holds the size-k sets (entries 0, 1 unused).
  std::vector<std::vector<Itemset>> notsig_by_level;
  // Candidates whose table failed CT-support, per level. BMS discards
  // them; BMS* uses them to avoid rebuilding the same tables in its sweep.
  std::vector<std::vector<Itemset>> unsupported_by_level;
  // The frequent-item universe L1.
  std::vector<ItemId> frequent_items;
  MiningStats stats;
  // kCompleted unless the run's governor tripped; on a trip, sig and the
  // per-level sets cover exactly stats.levels_completed finished levels.
  Termination termination = Termination::kCompleted;
};

// Runs BMS and returns the full run output. `ctx` supplies the executor
// for the per-level candidate loops; nullptr runs serially.
BmsRunOutput RunBms(const TransactionDatabase& db,
                    const MiningOptions& options,
                    MiningContext* ctx = nullptr);

// Runs BMS and returns SIG as a MiningResult.
MiningResult MineBms(const TransactionDatabase& db,
                     const MiningOptions& options,
                     MiningContext* ctx = nullptr);

}  // namespace ccs

#endif  // CCS_CORE_BMS_H_
