#include "core/simd_kernel.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <utility>

#include "util/check.h"

// GCC's -Wpsabi notes that 256-bit vectors passed or returned by value
// would change calling convention if AVX were enabled at compile time.
// Every vector-valued function in this file is internal to this TU and
// inlined, so no external ABI is involved; the note is not actionable.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wpsabi"
#endif

namespace ccs {

namespace {

// 256-bit lane of four uint64 words — GCC vector extensions, which both
// GCC and Clang lower to the best available ISA without target-specific
// flags. This translation unit is the only one allowed to use them
// (ccs-lint rule vector-ext-outside-kernel).
typedef KernelWord V4 __attribute__((vector_size(32)));

constexpr std::size_t kLanes = 4;        // words per vector
constexpr std::size_t kUnroll = 4;       // vectors per iteration
constexpr std::size_t kStep = kLanes * kUnroll;  // 16 words / 128 bytes

// Block the streaming loops so a combine's destination words are still
// L1-resident when the popcount accumulators read them back: 2048 words =
// 16 KiB per operand, three operands ≈ half a typical 32–48 KiB L1D.
constexpr std::size_t kBlockWords = 2048;

// Unaligned vector load/store through memcpy — the sanctioned way to get
// movdqu-class codegen without alignment UB; the compiler folds the copy.
inline V4 LoadV4(const KernelWord* p) {
  V4 v;
  std::memcpy(&v, p, sizeof(V4));
  return v;
}

inline void StoreV4(KernelWord* p, V4 v) { std::memcpy(p, &v, sizeof(V4)); }

// Batched popcount of one vector: four independent scalar popcounts whose
// results feed four separate accumulators at the call sites, breaking the
// add dependency chain (the throughput win over a single running sum).
inline std::uint64_t Pop0(V4 v) { return std::popcount(v[0]); }
inline std::uint64_t Pop1(V4 v) { return std::popcount(v[1]); }
inline std::uint64_t Pop2(V4 v) { return std::popcount(v[2]); }
inline std::uint64_t Pop3(V4 v) { return std::popcount(v[3]); }

// The combine ops, expressed once and instantiated for each kernel shape.
struct OpAnd {
  static KernelWord Word(KernelWord a, KernelWord b) { return a & b; }
  static V4 Vec(V4 a, V4 b) { return a & b; }
};
struct OpAndNot {
  static KernelWord Word(KernelWord a, KernelWord b) { return a & ~b; }
  static V4 Vec(V4 a, V4 b) { return a & ~b; }
};

template <typename Op>
std::uint64_t CountScalar(const KernelWord* a, const KernelWord* b,
                          std::size_t n) {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    total += std::popcount(Op::Word(a[i], b[i]));
  }
  return total;
}

template <typename Op>
std::uint64_t CountVector(const KernelWord* a, const KernelWord* b,
                          std::size_t n) {
  std::uint64_t acc0 = 0, acc1 = 0, acc2 = 0, acc3 = 0;
  std::size_t i = 0;
  for (std::size_t block = 0; block < n; block += kBlockWords) {
    const std::size_t block_end = std::min(n, block + kBlockWords);
    const std::size_t vec_end =
        block + (block_end - block) / kStep * kStep;
    for (; i < vec_end; i += kStep) {
      const V4 v0 = Op::Vec(LoadV4(a + i), LoadV4(b + i));
      const V4 v1 = Op::Vec(LoadV4(a + i + kLanes), LoadV4(b + i + kLanes));
      const V4 v2 =
          Op::Vec(LoadV4(a + i + 2 * kLanes), LoadV4(b + i + 2 * kLanes));
      const V4 v3 =
          Op::Vec(LoadV4(a + i + 3 * kLanes), LoadV4(b + i + 3 * kLanes));
      acc0 += Pop0(v0) + Pop0(v1) + Pop0(v2) + Pop0(v3);
      acc1 += Pop1(v0) + Pop1(v1) + Pop1(v2) + Pop1(v3);
      acc2 += Pop2(v0) + Pop2(v1) + Pop2(v2) + Pop2(v3);
      acc3 += Pop3(v0) + Pop3(v1) + Pop3(v2) + Pop3(v3);
    }
    for (; i < block_end; ++i) {
      acc0 += std::popcount(Op::Word(a[i], b[i]));
    }
  }
  return acc0 + acc1 + acc2 + acc3;
}

template <typename Op>
void CombineScalar(KernelWord* dst, const KernelWord* a, const KernelWord* b,
                   std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = Op::Word(a[i], b[i]);
}

template <typename Op>
void CombineVector(KernelWord* dst, const KernelWord* a, const KernelWord* b,
                   std::size_t n) {
  std::size_t i = 0;
  const std::size_t vec_end = n / kStep * kStep;
  for (; i < vec_end; i += kStep) {
    StoreV4(dst + i, Op::Vec(LoadV4(a + i), LoadV4(b + i)));
    StoreV4(dst + i + kLanes,
            Op::Vec(LoadV4(a + i + kLanes), LoadV4(b + i + kLanes)));
    StoreV4(dst + i + 2 * kLanes,
            Op::Vec(LoadV4(a + i + 2 * kLanes), LoadV4(b + i + 2 * kLanes)));
    StoreV4(dst + i + 3 * kLanes,
            Op::Vec(LoadV4(a + i + 3 * kLanes), LoadV4(b + i + 3 * kLanes)));
  }
  for (; i < n; ++i) dst[i] = Op::Word(a[i], b[i]);
}

template <typename Op>
std::uint64_t CombineCountVector(KernelWord* dst, const KernelWord* a,
                                 const KernelWord* b, std::size_t n) {
  std::uint64_t acc0 = 0, acc1 = 0, acc2 = 0, acc3 = 0;
  std::size_t i = 0;
  for (std::size_t block = 0; block < n; block += kBlockWords) {
    const std::size_t block_end = std::min(n, block + kBlockWords);
    const std::size_t vec_end = block + (block_end - block) / kStep * kStep;
    for (; i < vec_end; i += kStep) {
      const V4 v0 = Op::Vec(LoadV4(a + i), LoadV4(b + i));
      const V4 v1 = Op::Vec(LoadV4(a + i + kLanes), LoadV4(b + i + kLanes));
      const V4 v2 =
          Op::Vec(LoadV4(a + i + 2 * kLanes), LoadV4(b + i + 2 * kLanes));
      const V4 v3 =
          Op::Vec(LoadV4(a + i + 3 * kLanes), LoadV4(b + i + 3 * kLanes));
      StoreV4(dst + i, v0);
      StoreV4(dst + i + kLanes, v1);
      StoreV4(dst + i + 2 * kLanes, v2);
      StoreV4(dst + i + 3 * kLanes, v3);
      acc0 += Pop0(v0) + Pop0(v1) + Pop0(v2) + Pop0(v3);
      acc1 += Pop1(v0) + Pop1(v1) + Pop1(v2) + Pop1(v3);
      acc2 += Pop2(v0) + Pop2(v1) + Pop2(v2) + Pop2(v3);
      acc3 += Pop3(v0) + Pop3(v1) + Pop3(v2) + Pop3(v3);
    }
    for (; i < block_end; ++i) {
      dst[i] = Op::Word(a[i], b[i]);
      acc0 += std::popcount(dst[i]);
    }
  }
  return acc0 + acc1 + acc2 + acc3;
}

}  // namespace

const char* KernelModeName(KernelMode mode) {
  return mode == KernelMode::kVector ? "vector" : "scalar";
}

KernelMode SelectKernel(const SimdOptions& options,
                        const TransactionDatabase& db) {
  if (!options.enabled) return KernelMode::kScalar;
  if (!db.finalized() || !db.simd_friendly()) return KernelMode::kScalar;
  return KernelMode::kVector;
}

std::uint64_t PairStageEstimatedOps(const TransactionDatabase& db,
                                    const std::vector<ItemId>& items) {
  CCS_CHECK(db.finalized());
  const std::uint64_t txns = db.num_transactions();
  if (txns == 0) return 0;
  std::uint64_t support_sum = 0;
  for (ItemId item : items) support_sum += db.ItemSupport(item);
  // txns * mean_p * (mean_p - 1) / 2 with mean_p = support_sum / txns,
  // algebraically support_sum * (support_sum - txns) / (2 * txns); double
  // arithmetic to dodge the intermediate overflow (the gate compares
  // magnitudes, not exact counts).
  const double s = static_cast<double>(support_sum);
  const double n = static_cast<double>(txns);
  if (s <= n) return 0;
  return static_cast<std::uint64_t>(s * (s - n) / (2.0 * n));
}

std::uint64_t KernelPopcount(const KernelWord* a, std::size_t n,
                             KernelMode mode) {
  if (mode == KernelMode::kScalar) {
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < n; ++i) total += std::popcount(a[i]);
    return total;
  }
  std::uint64_t acc0 = 0, acc1 = 0, acc2 = 0, acc3 = 0;
  std::size_t i = 0;
  const std::size_t vec_end = n / kLanes * kLanes;
  for (; i < vec_end; i += kLanes) {
    const V4 v = LoadV4(a + i);
    acc0 += Pop0(v);
    acc1 += Pop1(v);
    acc2 += Pop2(v);
    acc3 += Pop3(v);
  }
  for (; i < n; ++i) acc0 += std::popcount(a[i]);
  return acc0 + acc1 + acc2 + acc3;
}

std::uint64_t KernelAndCount(const KernelWord* a, const KernelWord* b,
                             std::size_t n, KernelMode mode) {
  return mode == KernelMode::kScalar ? CountScalar<OpAnd>(a, b, n)
                                     : CountVector<OpAnd>(a, b, n);
}

std::uint64_t KernelAndNotCount(const KernelWord* a, const KernelWord* b,
                                std::size_t n, KernelMode mode) {
  return mode == KernelMode::kScalar ? CountScalar<OpAndNot>(a, b, n)
                                     : CountVector<OpAndNot>(a, b, n);
}

void KernelAnd(KernelWord* dst, const KernelWord* a, const KernelWord* b,
               std::size_t n, KernelMode mode) {
  if (mode == KernelMode::kScalar) {
    CombineScalar<OpAnd>(dst, a, b, n);
  } else {
    CombineVector<OpAnd>(dst, a, b, n);
  }
}

void KernelAndNot(KernelWord* dst, const KernelWord* a, const KernelWord* b,
                  std::size_t n, KernelMode mode) {
  if (mode == KernelMode::kScalar) {
    CombineScalar<OpAndNot>(dst, a, b, n);
  } else {
    CombineVector<OpAndNot>(dst, a, b, n);
  }
}

std::uint64_t KernelAndWriteCount(KernelWord* dst, const KernelWord* a,
                                  const KernelWord* b, std::size_t n,
                                  KernelMode mode) {
  if (mode == KernelMode::kScalar) {
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < n; ++i) {
      dst[i] = a[i] & b[i];
      total += std::popcount(dst[i]);
    }
    return total;
  }
  return CombineCountVector<OpAnd>(dst, a, b, n);
}

std::uint64_t KernelCountAnd(const DynamicBitset& a, const DynamicBitset& b,
                             KernelMode mode) {
  CCS_DCHECK(a.size() == b.size());
  return KernelAndCount(a.words().data(), b.words().data(), a.num_words(),
                        mode);
}

std::uint64_t KernelCountAndNot(const DynamicBitset& a,
                                const DynamicBitset& b, KernelMode mode) {
  CCS_DCHECK(a.size() == b.size());
  return KernelAndNotCount(a.words().data(), b.words().data(), a.num_words(),
                           mode);
}

void KernelAssignAnd(DynamicBitset& dst, const DynamicBitset& a,
                     const DynamicBitset& b, KernelMode mode) {
  CCS_DCHECK(a.size() == b.size());
  dst.Resize(a.size());
  KernelAnd(dst.mutable_word_data(), a.words().data(), b.words().data(),
            a.num_words(), mode);
}

void KernelAssignAndNot(DynamicBitset& dst, const DynamicBitset& a,
                        const DynamicBitset& b, KernelMode mode) {
  CCS_DCHECK(a.size() == b.size());
  dst.Resize(a.size());
  // a's trailing bits are already zero, so a & ~b keeps them zero.
  KernelAndNot(dst.mutable_word_data(), a.words().data(), b.words().data(),
               a.num_words(), mode);
}

std::uint64_t KernelAssignAndCount(DynamicBitset& dst, const DynamicBitset& a,
                                   const DynamicBitset& b, KernelMode mode) {
  CCS_DCHECK(a.size() == b.size());
  dst.Resize(a.size());
  return KernelAndWriteCount(dst.mutable_word_data(), a.words().data(),
                             b.words().data(), a.num_words(), mode);
}

PairStage::PairStage(const TransactionDatabase& db, std::vector<ItemId> items)
    : db_(&db), items_(std::move(items)) {
  std::sort(items_.begin(), items_.end());
  items_.erase(std::unique(items_.begin(), items_.end()), items_.end());
  dense_.assign(db.num_items(), -1);
  for (std::size_t i = 0; i < items_.size(); ++i) {
    CCS_CHECK_LT(items_[i], db.num_items());
    dense_[items_[i]] = static_cast<std::int32_t>(i);
  }
  counts_.assign(CellsFor(items_.size()), 0);
  present_.reserve(items_.size());
}

void PairStage::Accumulate(std::size_t t_begin, std::size_t t_end) {
  CCS_CHECK_LE(t_begin, t_end);
  CCS_CHECK_LE(t_end, db_->num_transactions());
  for (std::size_t t = t_begin; t < t_end; ++t) {
    present_.clear();
    for (const ItemId item : db_->transaction(t)) {
      const std::int32_t d = dense_[item];
      if (d >= 0) present_.push_back(static_cast<std::uint32_t>(d));
    }
    // Transactions are sorted and the id -> dense map is monotone, so
    // present_ is ascending: j strictly dominates every earlier entry.
    const std::size_t p = present_.size();
    for (std::size_t j = 1; j < p; ++j) {
      std::uint64_t* row =
          counts_.data() +
          std::uint64_t{present_[j]} * (present_[j] - 1) / 2;
      for (std::size_t i = 0; i < j; ++i) ++row[present_[i]];
    }
    ops_ += p * (p - 1) / 2;
  }
}

std::uint64_t PairStage::PairSupport(ItemId a, ItemId b) const {
  CCS_DCHECK(a != b);
  const std::int32_t da = dense_[a];
  const std::int32_t db = dense_[b];
  CCS_DCHECK(da >= 0 && db >= 0);
  const std::uint64_t lo = static_cast<std::uint64_t>(std::min(da, db));
  const std::uint64_t hi = static_cast<std::uint64_t>(std::max(da, db));
  return counts_[hi * (hi - 1) / 2 + lo];
}

}  // namespace ccs
