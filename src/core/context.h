#ifndef CCS_CORE_CONTEXT_H_
#define CCS_CORE_CONTEXT_H_

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <functional>
#include <string>

#include "core/algorithm.h"
#include "core/intersection_cache.h"
#include "core/result.h"
#include "core/run_control.h"
#include "core/simd_kernel.h"
#include "core/trace.h"
#include "util/executor.h"
#include "util/metrics.h"

namespace ccs {

class CtDeltaSource;

// Snapshot emitted after an algorithm finishes a lattice level. Algorithms
// that revisit a level in a later pass (BMS*'s upward sweep amends the base
// run's levels; BMS**'s phase 2 re-walks the SUPP levels) emit one event
// per pass, so a level index can appear more than once; the counters are
// the level's running totals at emission time.
struct LevelProgress {
  Algorithm algorithm = Algorithm::kBms;
  std::size_t level = 0;
  // Running totals for this level across passes so far.
  std::uint64_t candidates = 0;
  std::uint64_t tables_built = 0;
  // Answers found so far across all levels.
  std::uint64_t answers_so_far = 0;
  // Wall time of the pass that just finished.
  double pass_seconds = 0.0;
};

// Invoked serially (never from a worker thread) between levels.
using ProgressCallback = std::function<void(const LevelProgress&)>;

// Per-run execution state threaded through the algorithm implementations:
// the shared thread pool plus the session's progress sink. Owned by
// MiningEngine::Run; the legacy free-function entry points synthesize a
// single-threaded one.
class MiningContext {
 public:
  MiningContext(ParallelExecutor& executor, Algorithm algorithm,
                const ProgressCallback* progress = nullptr,
                const RunGovernor* governor = nullptr,
                CtCacheOptions ct_cache = {}, SimdOptions simd = {},
                MetricsRegistry* metrics = nullptr, Tracer* tracer = nullptr,
                CtDeltaSource* ct_delta = nullptr)
      : executor_(&executor),
        algorithm_(algorithm),
        progress_(progress),
        governor_(governor),
        ct_cache_(ct_cache),
        simd_(simd),
        metrics_(metrics),
        tracer_(tracer),
        ct_delta_(ct_delta) {}

  ParallelExecutor& executor() const { return *executor_; }
  std::size_t num_threads() const { return executor_->num_threads(); }
  Algorithm algorithm() const { return algorithm_; }

  // Contingency-table path selection for this run (DESIGN.md §9): the
  // engine resolves EngineOptions::ct_cache + the CCS_CT_CACHE override;
  // the legacy free-function entry points take the defaults.
  const CtCacheOptions& ct_cache() const { return ct_cache_; }

  // Kernel selection + pair-stage gating for this run (DESIGN.md §14):
  // the engine resolves EngineOptions::simd_kernel + the CCS_SIMD
  // override; the legacy free-function entry points take the defaults.
  const SimdOptions& simd() const { return simd_; }

  // Run-scoped observability sinks (DESIGN.md §10), both nullable: the
  // engine installs a per-run MetricsRegistry and Tracer; the legacy
  // free-function entry points run without either. Every instrumentation
  // helper (PhaseScope, Tracer::Span, EvalWorkers) accepts null, so
  // algorithm code never branches on their presence.
  MetricsRegistry* metrics() const { return metrics_; }
  Tracer* tracer() const { return tracer_; }

  // Streaming table oracle (core/ct_delta.h), nullable: installed by
  // stream::DeltaMiner via MiningRequest::ct_delta; null on every batch
  // run. Consumed only by GovernedBuildTables.
  CtDeltaSource* ct_delta() const { return ct_delta_; }

  // Deadline/cancellation poll (between candidate batches). kCompleted
  // when no governor is installed (the legacy free-function path).
  Termination CheckNow() const {
    return governor_ != nullptr ? governor_->CheckNow()
                                : Termination::kCompleted;
  }

  // Full level-boundary check including the deterministic budgets.
  Termination CheckAtLevel(const MiningStats& stats,
                           std::size_t answers) const {
    if (governor_ == nullptr) return Termination::kCompleted;
    return governor_->CheckAtLevel(stats.TotalCandidates(),
                                   stats.TotalTablesBuilt(), answers);
  }

  void ReportLevel(const LevelStats& level, std::uint64_t answers_so_far,
                   double pass_seconds) const {
    if (progress_ == nullptr || !*progress_) return;
    LevelProgress event;
    event.algorithm = algorithm_;
    event.level = level.level;
    event.candidates = level.candidates;
    event.tables_built = level.tables_built;
    event.answers_so_far = answers_so_far;
    event.pass_seconds = pass_seconds;
    (*progress_)(event);
  }

 private:
  ParallelExecutor* executor_;
  Algorithm algorithm_;
  const ProgressCallback* progress_;
  const RunGovernor* governor_;
  CtCacheOptions ct_cache_;
  SimdOptions simd_;
  MetricsRegistry* metrics_;
  Tracer* tracer_;
  CtDeltaSource* ct_delta_;
};

// RAII phase instrumentation for the serial (orchestrating-thread) parts
// of a run: opens a trace span named `name` and, on close, adds the
// elapsed nanoseconds to the timing counter "phase.<name>_ns" at shard 0.
// Phases nest (a "cache" scope inside a "ct_build" scope bills its time to
// both counters), and each phase interval lies inside the run interval on
// the same steady clock, so every phase.*_ns <= run.wall_ns exactly.
// No-op when the context carries no registry.
class PhaseScope {
 public:
  PhaseScope(const MiningContext& ctx, const char* name)
      : span_(ctx.tracer(), name), metrics_(ctx.metrics()) {
    if (metrics_ == nullptr || !metrics_->enabled()) {
      metrics_ = nullptr;
      return;
    }
    id_ = metrics_->Counter(std::string("phase.") + name + "_ns",
                            MetricStability::kTiming);
    start_ = std::chrono::steady_clock::now();
  }

  ~PhaseScope() {
    if (metrics_ == nullptr) return;
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    metrics_->Add(
        id_, 0,
        static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                .count()));
  }

  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

 private:
  Tracer::Span span_;
  MetricsRegistry* metrics_;
  MetricsRegistry::Id id_ = 0;
  std::chrono::steady_clock::time_point start_;
};

// Runs body over [0, n) through the context's executor in fixed-size index
// batches, polling deadline/cancellation between batches. Returns
// kCompleted when the whole range ran; on a trip the remaining batches are
// skipped and the caller must discard the level's partially written slots
// (the batch split never changes which slot an index writes, so a
// completed pass is bit-identical to an unbatched one).
inline Termination GovernedParallelFor(const MiningContext& ctx,
                                       std::size_t n,
                                       const ParallelExecutor::Body& body) {
  constexpr std::size_t kBatch = 1024;
  for (std::size_t base = 0; base < n; base += kBatch) {
    const Termination verdict = ctx.CheckNow();
    if (verdict != Termination::kCompleted) return verdict;
    const std::size_t count = std::min(kBatch, n - base);
    ctx.executor().ParallelFor(
        count, [&body, base](std::size_t thread, std::size_t i) {
          body(thread, base + i);
        });
  }
  return Termination::kCompleted;
}

}  // namespace ccs

#endif  // CCS_CORE_CONTEXT_H_
