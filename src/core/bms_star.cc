#include "core/bms_star.h"

#include <algorithm>
#include <cstdint>

#include "core/bms.h"
#include "core/candidate_gen.h"
#include "core/parallel_eval.h"
#include "util/check.h"
#include "util/stopwatch.h"

namespace ccs {
namespace {

// Per-candidate result of the sweep's parallel pass.
struct Eval {
  enum class Outcome : std::uint8_t {
    kAlreadyProcessed,  // base run judged it; skip silently
    kPruned,            // failed an anti-monotone constraint
    kUnsupported,       // table built, not CT-supported
    kKept,              // CT-supported; see flags
  };
  Outcome outcome = Eval::Outcome::kAlreadyProcessed;
  bool tested = false;      // chi-squared test performed (not inherited)
  bool correlated = false;  // inherited or tested verdict
  bool valid = false;       // correlated and passes the monotone constraints
};

}  // namespace

MiningResult MineBmsStar(const TransactionDatabase& db,
                         const ItemCatalog& catalog,
                         const ConstraintSet& constraints,
                         const MiningOptions& options, MiningContext* ctx) {
  if (ctx == nullptr) {
    ParallelExecutor serial(1);
    MiningContext local(serial, Algorithm::kBmsStar);
    return MineBmsStar(db, catalog, constraints, options, &local);
  }
  CCS_CHECK(!constraints.has_unclassified());
  Stopwatch timer;
  EvalWorkers workers(db, options, ctx->num_threads(), ctx->ct_cache(),
                      ctx->simd(), ctx->metrics());

  // Step 1: full unconstrained BMS run.
  BmsRunOutput run = RunBms(db, options, ctx);
  MiningResult result;
  result.stats = std::move(run.stats);
  result.termination = run.termination;

  // Steps 2-3: harvest valid SIG' members; seed the sweep frontier with
  // (i) correlated sets blocked by the monotone constraints and
  // (ii) the uncorrelated CT-supported sets, both filtered by the
  // anti-monotone constraints (their supersets all fail those).
  // frontier[k] holds size-k sets; `correlated` tags each frontier set.
  std::vector<std::vector<Itemset>> frontier(options.max_set_size + 2);
  ItemsetMap<bool> correlated_flag;
  // Everything the base run already judged; the sweep must not rebuild
  // tables for these even when candidate generation re-derives them.
  ItemsetSet already_processed(run.sig.begin(), run.sig.end());
  for (const auto& level_sets : run.notsig_by_level) {
    already_processed.insert(level_sets.begin(), level_sets.end());
  }
  for (const auto& level_sets : run.unsupported_by_level) {
    already_processed.insert(level_sets.begin(), level_sets.end());
  }
  {
    // The harvest is serial constraint work over the base run's partition.
    PhaseScope harvest_phase(*ctx, "constraint_check");
    for (const Itemset& s : run.sig) {
      if (!constraints.TestAntiMonotone(s.span(), catalog)) continue;
      if (constraints.TestMonotone(s.span(), catalog)) {
        result.answers.push_back(s);
      } else if (s.size() <= options.max_set_size) {
        frontier[s.size()].push_back(s);
        correlated_flag[s] = true;
      }
    }
    for (std::size_t k = 2;
         k < run.notsig_by_level.size() && k <= options.max_set_size; ++k) {
      for (const Itemset& s : run.notsig_by_level[k]) {
        if (!constraints.TestAntiMonotone(s.span(), catalog)) continue;
        frontier[k].push_back(s);
        correlated_flag[s] = false;
      }
    }
  }
  // A tripped base run already yields a valid partial answer set (the
  // harvested SIG' members of its completed levels); skip the sweep.
  if (result.termination != Termination::kCompleted) {
    std::sort(result.answers.begin(), result.answers.end());
    workers.AccumulateInto(result.stats);
    result.stats.elapsed_seconds = timer.ElapsedSeconds();
    return result;
  }

  // Steps 4-8: upward sweep. Candidates at level k+1 extend the level-k
  // frontier; all co-dimension-1 subsets must be on the frontier. The
  // parallel pass only reads correlated_flag entries of size k (written
  // at earlier levels or during seeding), so inheritance verdicts are
  // schedule-independent; new size-k+1 flags are written in the ordered
  // reduction.
  std::vector<Eval> evals;
  for (std::size_t k = 2; k < options.max_set_size; ++k) {
    std::vector<Itemset>& seeds = frontier[k];
    if (seeds.empty()) continue;
    const Termination boundary =
        ctx->CheckAtLevel(result.stats, result.answers.size());
    if (boundary != Termination::kCompleted) {
      result.termination = boundary;
      break;
    }
    Stopwatch level_timer;
    Tracer::Span level_span(ctx->tracer(), "level");
    std::sort(seeds.begin(), seeds.end());
    const ItemsetSet closed(seeds.begin(), seeds.end());
    std::vector<Itemset> candidates;
    {
      PhaseScope gen_phase(*ctx, "candidate_gen");
      candidates = ExtendSeeds(
          seeds, run.frequent_items,
          [&closed](const Itemset& s) { return AllCoSubsetsIn(s, closed); });
    }
    LevelStats& level = result.stats.Level(k + 1);
    evals.assign(candidates.size(), Eval());
    const Termination pass = GovernedBuildTables(
        *ctx, workers, candidates,
        [&](std::size_t i) {
          const Itemset& s = candidates[i];
          Eval& e = evals[i];
          if (already_processed.contains(s)) {
            e.outcome = Eval::Outcome::kAlreadyProcessed;
            return false;
          }
          if (!constraints.TestAntiMonotone(s.span(), catalog)) {
            e.outcome = Eval::Outcome::kPruned;
            return false;
          }
          return true;
        },
        [&](std::size_t i, std::size_t t,
            const stats::ContingencyTable& table) {
          const Itemset& s = candidates[i];
          Eval& e = evals[i];
          if (!workers.judge(t).IsCtSupported(table)) {
            e.outcome = Eval::Outcome::kUnsupported;
            return;
          }
          e.outcome = Eval::Outcome::kKept;
          // Correlatedness is inherited from any correlated subset (the
          // paper's "no need to re-run the chi-squared test"); only sets
          // with exclusively uncorrelated subsets are tested.
          for (std::size_t j = 0; j < s.size() && !e.correlated; ++j) {
            const auto it = correlated_flag.find(s.WithoutIndex(j));
            e.correlated = it != correlated_flag.end() && it->second;
          }
          if (!e.correlated) {
            e.tested = true;
            e.correlated = workers.judge(t).IsCorrelated(table);
          }
          e.valid =
              e.correlated && constraints.TestMonotone(s.span(), catalog);
        });
    if (pass != Termination::kCompleted) {
      result.termination = pass;
      break;
    }
    {
      PhaseScope judge_phase(*ctx, "judge");
      for (std::size_t i = 0; i < candidates.size(); ++i) {
        const Itemset& s = candidates[i];
        const Eval& e = evals[i];
        if (e.outcome == Eval::Outcome::kAlreadyProcessed) continue;
        ++level.candidates;
        if (e.outcome == Eval::Outcome::kPruned) {
          ++level.pruned_before_ct;
          continue;
        }
        ++level.tables_built;
        if (e.outcome == Eval::Outcome::kUnsupported) continue;
        ++level.ct_supported;
        if (e.tested) ++level.chi2_tests;
        if (e.correlated) ++level.correlated;
        if (e.valid) {
          ++level.sig_added;
          result.answers.push_back(s);
        } else {
          ++level.notsig_added;
          frontier[k + 1].push_back(s);
          correlated_flag[s] = e.correlated;
        }
      }
    }
    ++result.stats.levels_completed;
    level.wall_seconds += level_timer.ElapsedSeconds();
    ctx->ReportLevel(level, result.answers.size(),
                     level_timer.ElapsedSeconds());
  }

  std::sort(result.answers.begin(), result.answers.end());
  workers.AccumulateInto(result.stats);
  result.stats.elapsed_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace ccs
