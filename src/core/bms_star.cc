#include "core/bms_star.h"

#include <algorithm>

#include "core/bms.h"
#include "core/candidate_gen.h"
#include "core/ct_builder.h"
#include "core/judge.h"
#include "util/check.h"
#include "util/stopwatch.h"

namespace ccs {

MiningResult MineBmsStar(const TransactionDatabase& db,
                         const ItemCatalog& catalog,
                         const ConstraintSet& constraints,
                         const MiningOptions& options) {
  CCS_CHECK(!constraints.has_unclassified());
  Stopwatch timer;
  CorrelationJudge judge(options);
  ContingencyTableBuilder builder(db);

  // Step 1: full unconstrained BMS run.
  BmsRunOutput run = RunBms(db, options);
  MiningResult result;
  result.stats = std::move(run.stats);

  // Steps 2-3: harvest valid SIG' members; seed the sweep frontier with
  // (i) correlated sets blocked by the monotone constraints and
  // (ii) the uncorrelated CT-supported sets, both filtered by the
  // anti-monotone constraints (their supersets all fail those).
  // frontier[k] holds size-k sets; `correlated` tags each frontier set.
  std::vector<std::vector<Itemset>> frontier(options.max_set_size + 2);
  ItemsetMap<bool> correlated_flag;
  // Everything the base run already judged; the sweep must not rebuild
  // tables for these even when candidate generation re-derives them.
  ItemsetSet already_processed(run.sig.begin(), run.sig.end());
  for (const auto& level_sets : run.notsig_by_level) {
    already_processed.insert(level_sets.begin(), level_sets.end());
  }
  for (const auto& level_sets : run.unsupported_by_level) {
    already_processed.insert(level_sets.begin(), level_sets.end());
  }
  for (const Itemset& s : run.sig) {
    if (!constraints.TestAntiMonotone(s.span(), catalog)) continue;
    if (constraints.TestMonotone(s.span(), catalog)) {
      result.answers.push_back(s);
    } else if (s.size() <= options.max_set_size) {
      frontier[s.size()].push_back(s);
      correlated_flag[s] = true;
    }
  }
  for (std::size_t k = 2;
       k < run.notsig_by_level.size() && k <= options.max_set_size; ++k) {
    for (const Itemset& s : run.notsig_by_level[k]) {
      if (!constraints.TestAntiMonotone(s.span(), catalog)) continue;
      frontier[k].push_back(s);
      correlated_flag[s] = false;
    }
  }

  // Steps 4-8: upward sweep. Candidates at level k+1 extend the level-k
  // frontier; all co-dimension-1 subsets must be on the frontier.
  for (std::size_t k = 2; k < options.max_set_size; ++k) {
    std::vector<Itemset>& seeds = frontier[k];
    if (seeds.empty()) continue;
    std::sort(seeds.begin(), seeds.end());
    const ItemsetSet closed(seeds.begin(), seeds.end());
    const std::vector<Itemset> candidates = ExtendSeeds(
        seeds, run.frequent_items,
        [&closed](const Itemset& s) { return AllCoSubsetsIn(s, closed); });
    LevelStats& level = result.stats.Level(k + 1);
    for (const Itemset& s : candidates) {
      if (already_processed.contains(s)) continue;
      ++level.candidates;
      if (!constraints.TestAntiMonotone(s.span(), catalog)) {
        ++level.pruned_before_ct;
        continue;
      }
      const stats::ContingencyTable table = builder.Build(s);
      ++level.tables_built;
      if (!judge.IsCtSupported(table)) continue;
      ++level.ct_supported;
      // Correlatedness is inherited from any correlated subset (the
      // paper's "no need to re-run the chi-squared test"); only sets with
      // exclusively uncorrelated subsets are tested.
      bool correlated = false;
      for (std::size_t i = 0; i < s.size() && !correlated; ++i) {
        const auto it = correlated_flag.find(s.WithoutIndex(i));
        correlated = it != correlated_flag.end() && it->second;
      }
      if (!correlated) {
        ++level.chi2_tests;
        correlated = judge.IsCorrelated(table);
      }
      if (correlated) ++level.correlated;
      if (correlated && constraints.TestMonotone(s.span(), catalog)) {
        ++level.sig_added;
        result.answers.push_back(s);
      } else {
        ++level.notsig_added;
        frontier[k + 1].push_back(s);
        correlated_flag[s] = correlated;
      }
    }
  }

  std::sort(result.answers.begin(), result.answers.end());
  result.stats.elapsed_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace ccs
