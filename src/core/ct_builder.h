#ifndef CCS_CORE_CT_BUILDER_H_
#define CCS_CORE_CT_BUILDER_H_

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "core/intersection_cache.h"
#include "core/itemset.h"
#include "core/simd_kernel.h"
#include "stats/contingency.h"
#include "txn/database.h"
#include "util/bitset.h"

namespace ccs {

// Builds the 2^k-cell contingency table of an itemset against a finalized
// transaction database.
//
// The fast path (Build) counts minterms by recursive intersection of the
// items' tid-sets: at depth d the current bitset holds the transactions
// matching the first d variables' present/absent choices; the two children
// AND / AND-NOT the next item's tid-set. The last level uses fused
// popcounts without materializing the child bitsets. Cost is
// O(2^k * N / 64) word operations per table — the "database scan" of the
// paper's cost model.
//
// BuildBatch is the prefix-sharing path (DESIGN.md §9): a sorted candidate
// batch is walked as a prefix trie, the positive intersections of each
// shared (k-1)-prefix's subsets are memoized in a budgeted
// IntersectionCache, and each candidate's cells are recovered from 2^k
// exact subset supports by a superset Möbius inversion. Per candidate this
// costs one CountAnd per non-empty prefix subset (2^(k-1) - 1 passes)
// instead of the recursion's 2^k - 3 bulk passes, and cached prefix
// subsets amortize across siblings and levels. All arithmetic is exact
// integer, so the cells — and therefore every downstream statistic —
// are bit-identical to Build's.
//
// BuildScalar is an independent reference implementation (one pass over the
// horizontal transactions, binary-searching each item) used by tests to
// cross-check the fast path and by callers that have no finalized index.
class ContingencyTableBuilder {
 public:
  // `simd` selects the bulk-op kernel once, at construction, against the
  // database's Finalize-time TID-list layout (core/simd_kernel.h):
  // unfinalized or SIMD-unfriendly databases — and simd.enabled == false —
  // run the original scalar word loops. Every path produces bit-identical
  // cells in either mode.
  explicit ContingencyTableBuilder(const TransactionDatabase& db,
                                   CtCacheOptions cache = {},
                                   SimdOptions simd = {});

  // Fast path. Requires db.finalized() and 1 <= |s| <= 20.
  stats::ContingencyTable Build(const Itemset& s);

  // Reference path; does not use the vertical index.
  stats::ContingencyTable BuildScalar(const Itemset& s) const;

  // Skip predicate: invoked exactly once per batch index, on the building
  // thread, before any table work for that candidate; false skips the
  // candidate entirely (no fault point, no tables_built). Null = keep all.
  using BatchFilter = std::function<bool(std::size_t)>;
  // Receives (batch index, finished table) for every kept candidate, in
  // batch order.
  using BatchSink =
      std::function<void(std::size_t, const stats::ContingencyTable&)>;

  // Prefix-sharing path over a candidate batch. Candidates sharing their
  // size-(k-1) prefix should be adjacent (the level-wise generators emit
  // sorted batches, which guarantees it); any order is correct, adjacency
  // only affects reuse. Tables are identical to per-candidate Build calls,
  // and the CCS_FAULT_POINT("ct_build") / tables_built accounting fires
  // once per kept candidate exactly as Build does. With the cache disabled
  // this degrades to per-candidate Build calls.
  void BuildBatch(std::span<const Itemset> batch, const BatchFilter& want,
                  const BatchSink& emit);

  // Single-candidate convenience over the batch path.
  stats::ContingencyTable BuildCached(const Itemset& s);

  // Recovers the 2x2 table of the pair `s` from a filled PairStage in
  // O(1), with the same fault-point / tables_built contract as Build:
  // cells are exact — [N - sa - sb + sab, sa - sab, sb - sab, sab] with
  // cell-mask bit i meaning s[i] present — so they are bit-identical to
  // the bitset paths'. Requires db.finalized(), |s| == 2, and both items
  // covered by the stage.
  stats::ContingencyTable BuildPairFromStage(const Itemset& s,
                                             const PairStage& stage);

  // Number of tables built through the fast paths since construction.
  std::uint64_t tables_built() const { return tables_built_; }

  // Number of non-empty BuildBatch calls since construction. On the
  // engine's cache-on path this equals the number of prefix groups this
  // builder processed; the per-run total is the (deterministic) group
  // count. Zero on the cache-off path, which never batches.
  std::uint64_t batches() const { return batches_; }

  // Bulk bitset word operations performed by Build/BuildBatch since
  // construction — the concrete currency of the paper's O(2^k * N/64) cost
  // model, used by the benches to compare the two paths.
  std::uint64_t word_ops() const { return word_ops_; }

  // Pair intersections served by the shared read-only tier instead of a
  // CountAnd or an LRU entry. Deterministic: the tier is immutable and is
  // consulted before the per-worker cache, so the count depends only on
  // the candidate batches, never on LRU state or the thread schedule.
  std::uint64_t shared_pair_hits() const { return shared_pair_hits_; }

  // Pair-stage accounting (DESIGN.md §14), both deterministic: tables
  // recovered through BuildPairFromStage (a subset of tables_built()),
  // and pair-count increments from the stage passes this builder was
  // billed for via AddPairStageOps. Zero with the SIMD kernel disabled.
  std::uint64_t pair_stage_tables() const { return pair_stage_tables_; }
  std::uint64_t pair_stage_ops() const { return pair_stage_ops_; }

  // Bills a finished stage's transaction-pass work to this builder — the
  // level pass runs one shared serial stage and accounts it here so the
  // work shows up in the same counters/stats stream as word_ops().
  void AddPairStageOps(std::uint64_t ops) { pair_stage_ops_ += ops; }

  // Accounts a table produced outside this builder — the streaming delta
  // path recovering cached cells (core/ct_delta.h) — exactly as if Build
  // had made it: same CCS_FAULT_POINT("ct_build"), same tables_built()
  // tick. Keeps LevelStats, the per-thread table split, and the
  // fault-injection cadence identical whichever path produced the table;
  // costs no database work and no word_ops().
  void AccountExternalTable();

  // The kernel this builder selected at construction.
  KernelMode kernel() const { return kernel_; }

  const IntersectionCacheStats& cache_stats() const { return cache_.stats(); }
  const CtCacheOptions& cache_options() const { return cache_options_; }
  std::size_t cache_words_in_use() const { return cache_.words_in_use(); }

  const TransactionDatabase& database() const { return *db_; }

 private:
  void CountRecursive(const std::vector<const DynamicBitset*>& tids,
                      std::size_t depth, const DynamicBitset& current,
                      std::uint32_t mask, std::vector<std::uint64_t>& cells);

  // Fills prefix_bits_/prefix_counts_ with the intersection bitset and
  // support of every subset of `prefix` (indexed by item-position mask),
  // pinning the cache entries it touches.
  void PreparePrefix(const Itemset& prefix);

  // Builds s's table from the prepared prefix state; s = prefix + one item.
  stats::ContingencyTable TableFromPrefix(const Itemset& s);

  const TransactionDatabase* db_;
  CtCacheOptions cache_options_;
  KernelMode kernel_ = KernelMode::kScalar;
  IntersectionCache cache_;
  // Scratch bitsets per recursion depth, reused across Build calls.
  std::vector<DynamicBitset> scratch_;
  // Batch scratch, indexed by prefix subset mask / candidate cell mask.
  std::vector<const DynamicBitset*> prefix_bits_;
  std::vector<std::uint64_t> prefix_counts_;
  std::vector<std::uint64_t> minterms_;
  std::uint64_t tables_built_ = 0;
  std::uint64_t batches_ = 0;
  std::uint64_t word_ops_ = 0;
  std::uint64_t shared_pair_hits_ = 0;
  std::uint64_t pair_stage_tables_ = 0;
  std::uint64_t pair_stage_ops_ = 0;
};

}  // namespace ccs

#endif  // CCS_CORE_CT_BUILDER_H_
