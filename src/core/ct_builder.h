#ifndef CCS_CORE_CT_BUILDER_H_
#define CCS_CORE_CT_BUILDER_H_

#include <cstdint>
#include <vector>

#include "core/itemset.h"
#include "stats/contingency.h"
#include "txn/database.h"
#include "util/bitset.h"

namespace ccs {

// Builds the 2^k-cell contingency table of an itemset against a finalized
// transaction database.
//
// The fast path (Build) counts minterms by recursive intersection of the
// items' tid-sets: at depth d the current bitset holds the transactions
// matching the first d variables' present/absent choices; the two children
// AND / AND-NOT the next item's tid-set. The last level uses fused
// popcounts without materializing the child bitsets. Cost is
// O(2^k * N / 64) word operations per table — the "database scan" of the
// paper's cost model.
//
// BuildScalar is an independent reference implementation (one pass over the
// horizontal transactions, binary-searching each item) used by tests to
// cross-check the fast path and by callers that have no finalized index.
class ContingencyTableBuilder {
 public:
  explicit ContingencyTableBuilder(const TransactionDatabase& db);

  // Fast path. Requires db.finalized() and 1 <= |s| <= 20.
  stats::ContingencyTable Build(const Itemset& s);

  // Reference path; does not use the vertical index.
  stats::ContingencyTable BuildScalar(const Itemset& s) const;

  // Number of tables built through the fast path since construction.
  std::uint64_t tables_built() const { return tables_built_; }

  const TransactionDatabase& database() const { return *db_; }

 private:
  void CountRecursive(const std::vector<const DynamicBitset*>& tids,
                      std::size_t depth, const DynamicBitset& current,
                      std::uint32_t mask, std::vector<std::uint64_t>& cells);

  const TransactionDatabase* db_;
  // Scratch bitsets per recursion depth, reused across Build calls.
  std::vector<DynamicBitset> scratch_;
  std::uint64_t tables_built_ = 0;
};

}  // namespace ccs

#endif  // CCS_CORE_CT_BUILDER_H_
