#ifndef CCS_CORE_TRACE_H_
#define CCS_CORE_TRACE_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace ccs {

// One closed span. Timestamps are nanoseconds on the steady clock relative
// to the owning Tracer's construction, so they are monotone within a trace
// and comparable across spans of the same run (never across runs). `name`
// points at a string literal supplied by the instrumentation site.
struct TraceEvent {
  const char* name = "";
  // Nesting depth at open time: 0 = root span.
  std::uint32_t depth = 0;
  std::uint64_t start_ns = 0;
  std::uint64_t end_ns = 0;
};

// The bounded trace of one run, emitted in span-close order (children
// before their parent — the classic flame-graph emission order). When more
// spans closed than the ring held, the oldest were dropped and `dropped`
// says how many, so a consumer can tell a short trace from a truncated one.
struct TraceLog {
  bool enabled = false;
  std::uint64_t dropped = 0;
  std::vector<TraceEvent> events;

  std::string ToJson() const;
};

// Hierarchical phase tracing for the mining engine: run → level → phase
// (candidate_gen, ct_build, cache, judge, constraint_check). Serial by
// design — spans open and close only on the orchestrating thread, strictly
// LIFO (enforced), so the tracer needs no locks and the trace is always
// well-formed: every parent's interval contains its children's.
//
// Closed spans land in a bounded in-memory ring (drop-oldest) so tracing a
// deep lattice sweep can never grow without bound. A disabled tracer's
// spans are free: no clock reads, no writes.
class Tracer {
 public:
  static constexpr std::size_t kDefaultCapacity = 4096;

  explicit Tracer(bool enabled = false,
                  std::size_t capacity = kDefaultCapacity);

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  bool enabled() const { return enabled_; }
  std::size_t capacity() const { return capacity_; }
  // Currently open spans (0 between runs; used by tests to prove every
  // span was closed).
  std::uint32_t open_spans() const { return open_; }
  // Nanoseconds since this tracer's epoch on the steady clock.
  std::uint64_t NowNs() const;

  // RAII span. `tracer` may be null (the legacy free-function entry points
  // run without one) — the span is then a no-op. `name` must be a string
  // literal or otherwise outlive the tracer.
  class Span {
   public:
    Span(Tracer* tracer, const char* name);
    ~Span();

    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;

   private:
    Tracer* tracer_ = nullptr;
    const char* name_ = "";
    std::uint32_t depth_ = 0;
    std::uint64_t start_ns_ = 0;
  };

  // Snapshot of the closed spans so far, oldest first. Serial-only.
  TraceLog Log() const;

 private:
  friend class Span;
  void Record(const char* name, std::uint32_t depth, std::uint64_t start_ns,
              std::uint64_t end_ns);

  bool enabled_;
  std::size_t capacity_;
  std::chrono::steady_clock::time_point epoch_;
  std::uint32_t open_ = 0;
  // Ring of the most recent `capacity_` closed spans; grows lazily, then
  // wraps at `next_`.
  std::vector<TraceEvent> ring_;
  std::size_t next_ = 0;
  std::uint64_t recorded_ = 0;
};

// The CCS_TRACE environment override: unset keeps the fallbacks; "0"
// disables; "1" enables at the fallback capacity; an integer > 1 enables
// with that ring capacity.
void ResolveTraceFromEnv(bool& enabled, std::size_t& capacity);

}  // namespace ccs

#endif  // CCS_CORE_TRACE_H_
