#ifndef CCS_CORE_EXPLORE_H_
#define CCS_CORE_EXPLORE_H_

#include <vector>

#include "constraints/constraint_set.h"
#include "core/options.h"
#include "core/result.h"
#include "txn/catalog.h"
#include "txn/database.h"

namespace ccs {

// The full solution space of a constrained correlation query:
//   { S : S CT-supported & correlated & valid },
// materialized up to options.max_set_size, together with its lower and
// upper borders.
//
// Why this exists (Section 5 of the paper): returning only minimal answers
// "does not completely cover all answers, unless we also know where the
// upper border is". MIN_VALID is the lower border; the upper border is the
// set of maximal solutions, bounded above by CT-support and the
// anti-monotone constraints. This module computes all three.
//
// Unlike the BMS* family, unclassified (neither-monotone) constraints such
// as avg are accepted here: they cannot prune the exploration, but they
// may punch holes in the space (Section 6), and the border computations
// below remain literal — a set is on the lower border iff no proper subset
// of any size is in the space, so holes are handled correctly.
struct SolutionSpace {
  // Every member of the space, sorted; sizes 2..max_set_size.
  std::vector<Itemset> all;
  // Minimal members (no proper subset in the space). Equals MIN_VALID(Q)
  // when the constraints are monotone/anti-monotone only.
  std::vector<Itemset> lower_border;
  // Maximal members within the explored levels (no proper superset in the
  // space). Members of size max_set_size are reported maximal relative to
  // the cap.
  std::vector<Itemset> upper_border;
  MiningStats stats;
};

SolutionSpace ExploreSolutionSpace(const TransactionDatabase& db,
                                   const ItemCatalog& catalog,
                                   const ConstraintSet& constraints,
                                   const MiningOptions& options);

}  // namespace ccs

#endif  // CCS_CORE_EXPLORE_H_
