#ifndef CCS_CORE_BMS_STAR_STAR_H_
#define CCS_CORE_BMS_STAR_STAR_H_

#include "constraints/constraint_set.h"
#include "core/context.h"
#include "core/options.h"
#include "core/result.h"
#include "txn/catalog.h"
#include "txn/database.h"

namespace ccs {

// Algorithm BMS** ("Constrained BMS for minimal valid answers",
// Section 3.2 / Figure G): two phases.
//
//  Phase 1 — SUPP computation: a level-wise Apriori over CT-support and
//  the anti-monotone constraints, with BMS++-style preprocessing and
//  witness-based candidate formation (per footnote 7, the necessary
//  witness class of a monotone succinct constraint is usable here
//  regardless of how many witnesses the constraint needs). Every supported
//  set's chi-squared statistic is recorded as it is built, so phase 2 is
//  pure CPU work — the database cost of BMS** is exactly phase 1's table
//  constructions.
//
//  Phase 2 — the upward sweep inside SUPP: level by level, a set that is
//  correlated (its recorded statistic passes the cutoff, or a tracked
//  subset was correlated) and satisfies the monotone constraints is a
//  minimal valid answer; otherwise it joins NOTSIG and its extensions
//  within SUPP stay candidates. The witness exemption applies: witness-free
//  subsets can never satisfy the pushed monotone constraint, so they are
//  "blocked" by definition and need not be in NOTSIG.
//
// Computes MIN_VALID(Q). Requires every constraint to be monotone or
// anti-monotone.
MiningResult MineBmsStarStar(const TransactionDatabase& db,
                             const ItemCatalog& catalog,
                             const ConstraintSet& constraints,
                             const MiningOptions& options,
                             MiningContext* ctx = nullptr);

// Optimized BMS** (the Section 6 "it seems possible to optimize BMS**
// even further" remark): the two phases are fused into a single level-wise
// pass. A set admitted to SIG never spawns candidates, so the supported
// region *above* answers — which phase 1 of BMS** explores and pays
// database scans for — is never visited. Identical output, never more
// table constructions.
MiningResult MineBmsStarStarOpt(const TransactionDatabase& db,
                                const ItemCatalog& catalog,
                                const ConstraintSet& constraints,
                                const MiningOptions& options,
                                MiningContext* ctx = nullptr);

}  // namespace ccs

#endif  // CCS_CORE_BMS_STAR_STAR_H_
