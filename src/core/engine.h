#ifndef CCS_CORE_ENGINE_H_
#define CCS_CORE_ENGINE_H_

#include <cstddef>

#include "constraints/constraint_set.h"
#include "core/algorithm.h"
#include "core/context.h"
#include "core/options.h"
#include "core/result.h"
#include "core/run_control.h"
#include "txn/catalog.h"
#include "txn/database.h"
#include "util/executor.h"

namespace ccs {

// Session-level knobs, fixed for the engine's lifetime. Everything
// query-level lives in MiningRequest, so adding engine knobs here and
// query knobs there is non-breaking for both.
struct EngineOptions {
  // Executor width. 1 = serial (no worker threads); 0 = one thread per
  // hardware thread. Answers and the deterministic counters of
  // MiningStats are identical for every value.
  std::size_t num_threads = 1;

  // If set, called serially after each lattice-level pass of every run.
  ProgressCallback progress_callback;

  // Prefix-sharing contingency-table evaluation (DESIGN.md §9): when true,
  // each level's candidates run through ContingencyTableBuilder::BuildBatch
  // with a per-worker IntersectionCache; when false, every candidate uses
  // the original per-candidate recursion. Answers and the deterministic
  // counters are bit-identical either way — this is a kill switch kept for
  // differential testing and for memory-tight deployments. The CCS_CT_CACHE
  // environment variable ("0"/"1"), if set, overrides this field.
  bool ct_cache = true;

  // IntersectionCache budget per worker thread, in MiB of cached
  // intersection bitsets.
  std::size_t ct_cache_budget_mib = 32;

  // Observability (DESIGN.md §10). `metrics` drives the per-run
  // MetricsRegistry that every Run aggregates into MiningResult::metrics;
  // false is the kill switch for overhead-sensitive deployments. The
  // CCS_METRICS environment variable ("0" disables) overrides the field.
  bool metrics = true;

  // Phase tracing: when true each Run records its run → level → phase
  // span tree into MiningResult::trace, bounded by `trace_capacity` spans
  // (drop-oldest). CCS_TRACE overrides both fields: "0" disables, "1"
  // enables at trace_capacity, an integer > 1 enables with that capacity.
  bool trace = false;
  std::size_t trace_capacity = Tracer::kDefaultCapacity;
};

// One correlation-mining query: which algorithm, its statistical
// parameters, and the constraint conjunction. A plain aggregate so future
// knobs (sharding, sampling, ...) can be added without breaking callers.
struct MiningRequest {
  Algorithm algorithm = Algorithm::kBms;
  MiningOptions options;
  // Borrowed; must outlive the Run call. nullptr means no constraints.
  // Ignored by Algorithm::kBms, which is unconstrained by definition.
  const ConstraintSet* constraints = nullptr;
  // Deadline, cancellation, and work budgets; defaults to unlimited. A
  // tripped Run returns a partial MiningResult with the reason in
  // MiningResult::termination (see core/run_control.h).
  RunControl control;
};

// The mining session: binds a finalized database and its catalog to a
// thread pool once, then serves any number of Run calls against them.
//
//   MiningEngine engine(db, catalog, {.num_threads = 8});
//   MiningResult r = engine.Run({.algorithm = Algorithm::kBmsPlusPlus,
//                                .options = options,
//                                .constraints = &constraints});
//
// Determinism guarantee: for a fixed request, `answers` and every counter
// of MiningStats except tables_built_per_thread (and the wall-time fields)
// are bit-identical across num_threads values — the parallel loops write
// per-candidate verdicts into index-addressed slots and reduce them in
// candidate order, so the thread schedule never reaches the output. The
// guarantee extends to partial results: completed levels of a tripped run
// match the same levels of an unbounded run at any thread count.
//
// Failure semantics: Run never aborts on a failing worker. An exception
// thrown inside the evaluation loops (e.g. an injected fault or bad_alloc)
// is drained from the pool and surfaced as termination == kError with the
// diagnostic in MiningResult::error; the engine and its executor remain
// usable for subsequent Run calls.
//
// The database and catalog are borrowed and must outlive the engine; they
// are never mutated. The engine itself is not thread-safe: one Run at a
// time per engine (create several engines over the same database to run
// queries concurrently).
class MiningEngine {
 public:
  MiningEngine(const TransactionDatabase& db, const ItemCatalog& catalog,
               EngineOptions options = {});

  // [[nodiscard]]: the result carries the run's termination reason and
  // Status — discarding it silently swallows deadline/cancel/error exits.
  [[nodiscard]] MiningResult Run(const MiningRequest& request);

  const TransactionDatabase& database() const { return *db_; }
  const ItemCatalog& catalog() const { return *catalog_; }
  // Actual executor width (EngineOptions::num_threads resolved).
  std::size_t num_threads() const { return executor_.num_threads(); }
  // CT path in effect (EngineOptions::ct_cache + CCS_CT_CACHE resolved).
  const CtCacheOptions& ct_cache() const { return ct_cache_; }
  // Observability in effect (EngineOptions + CCS_METRICS / CCS_TRACE
  // resolved).
  bool metrics_enabled() const { return metrics_enabled_; }
  bool trace_enabled() const { return trace_enabled_; }

 private:
  // Fills in the run-level telemetry after the algorithm returns: exports
  // the deterministic MiningStats aggregates as engine.* metrics, stamps
  // run.wall_ns, and attaches the registry snapshot and trace log to the
  // result.
  void FinalizeTelemetry(MetricsRegistry& registry, const Tracer& tracer,
                         double wall_seconds, MiningResult& result) const;

  const TransactionDatabase* db_;
  const ItemCatalog* catalog_;
  EngineOptions options_;
  CtCacheOptions ct_cache_;
  bool metrics_enabled_;
  bool trace_enabled_;
  std::size_t trace_capacity_;
  ParallelExecutor executor_;
  ConstraintSet empty_constraints_;
};

}  // namespace ccs

#endif  // CCS_CORE_ENGINE_H_
