#ifndef CCS_CORE_ENGINE_H_
#define CCS_CORE_ENGINE_H_

#include <cstddef>

#include "constraints/constraint_set.h"
#include "core/engine_options.h"
#include "core/result.h"
#include "core/session.h"
#include "txn/catalog.h"
#include "txn/database.h"
#include "util/executor.h"

namespace ccs {

// Compatibility facade over the session API (core/session.h, DESIGN.md
// §12): binds a finalized database and its catalog to a private thread
// pool once, then serves any number of serial Run calls against them.
//
//   MiningEngine engine(db, catalog, {.num_threads = 8});
//   MiningResult r = engine.Run({.algorithm = Algorithm::kBmsPlusPlus,
//                                .options = options,
//                                .constraints = &constraints});
//
// New code should prefer DatabaseHandle + MiningSession, which share
// executors through a pool and support concurrent runs over one database;
// the engine keeps the original single-owner shape — a private executor,
// one Run at a time — for callers that want exactly that. Both funnel into
// the same run path (core/run_query.h), so their answers and deterministic
// counters are bit-identical by construction.
//
// Determinism guarantee: for a fixed request, `answers` and every counter
// of MiningStats except tables_built_per_thread (and the wall-time fields)
// are bit-identical across num_threads values — the parallel loops write
// per-candidate verdicts into index-addressed slots and reduce them in
// candidate order, so the thread schedule never reaches the output. The
// guarantee extends to partial results: completed levels of a tripped run
// match the same levels of an unbounded run at any thread count.
//
// Failure semantics: Run never aborts on a failing worker. An exception
// thrown inside the evaluation loops (e.g. an injected fault or bad_alloc)
// is drained from the pool and surfaced as termination == kError with the
// diagnostic in MiningResult::error; the engine and its executor remain
// usable for subsequent Run calls.
//
// The database and catalog are borrowed and must outlive the engine; they
// are never mutated. The engine itself is not thread-safe: one Run at a
// time per engine (use MiningSessions over one DatabaseHandle to run
// queries concurrently).
class MiningEngine {
 public:
  MiningEngine(const TransactionDatabase& db, const ItemCatalog& catalog,
               EngineOptions options = {});

  // [[nodiscard]]: the result carries the run's termination reason and
  // Status — discarding it silently swallows deadline/cancel/error exits.
  [[nodiscard]] MiningResult Run(const MiningRequest& request);

  const TransactionDatabase& database() const { return handle_.database(); }
  const ItemCatalog& catalog() const { return handle_.catalog(); }
  // Actual executor width (EngineOptions::num_threads resolved).
  std::size_t num_threads() const { return executor_.num_threads(); }
  // CT path in effect (EngineOptions::ct_cache + CCS_CT_CACHE resolved).
  const CtCacheOptions& ct_cache() const { return resolved_.ct_cache; }
  // Kernel/pair-stage selection in effect (EngineOptions::simd_kernel +
  // CCS_SIMD resolved).
  const SimdOptions& simd() const { return resolved_.simd; }
  // Observability in effect (EngineOptions + CCS_METRICS / CCS_TRACE
  // resolved).
  bool metrics_enabled() const { return resolved_.metrics; }
  bool trace_enabled() const { return resolved_.trace; }

 private:
  DatabaseHandle handle_;
  ResolvedEngineOptions resolved_;
  ParallelExecutor executor_;
};

}  // namespace ccs

#endif  // CCS_CORE_ENGINE_H_
