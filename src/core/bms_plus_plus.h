#ifndef CCS_CORE_BMS_PLUS_PLUS_H_
#define CCS_CORE_BMS_PLUS_PLUS_H_

#include "constraints/constraint_set.h"
#include "core/context.h"
#include "core/options.h"
#include "core/result.h"
#include "txn/catalog.h"
#include "txn/database.h"

namespace ccs {

// Algorithm BMS++ ("Constrained BMS for valid minimal answers",
// Section 3.1): BMS with constraints pushed as deep as possible.
//
//  I.  Preprocessing — the frequent-item universe is filtered to GOOD1
//      (singletons satisfying all anti-monotone constraints) and, when a
//      single-witness monotone succinct constraint is present, split into
//      L1+ (witness items) and L1- (the rest).
//  II. Candidate formation — size-2 candidates need at least one L1+
//      item; a size-k candidate needs every witnessed co-dimension-1
//      subset in NOTSIG (witness-free subsets are exempt: no table was
//      ever built for them).
//  III.SIG/NOTSIG computation (Figure E) — non-succinct anti-monotone
//      constraints are tested before the contingency table is built;
//      deferred monotone constraints gate admission to SIG. A correlated
//      set failing them is dropped entirely (it is minimal correlated but
//      invalid, and its supersets cannot be minimal correlated).
//
// Computes VALID_MIN(Q). Monotone succinct constraints requiring several
// witnesses are deferred per footnote 5. Neither-monotone constraints are
// accepted and enforced at admission (equivalent to post-filtering).
MiningResult MineBmsPlusPlus(const TransactionDatabase& db,
                             const ItemCatalog& catalog,
                             const ConstraintSet& constraints,
                             const MiningOptions& options,
                             MiningContext* ctx = nullptr);

}  // namespace ccs

#endif  // CCS_CORE_BMS_PLUS_PLUS_H_
