#ifndef CCS_CORE_JUDGE_H_
#define CCS_CORE_JUDGE_H_

#include "core/options.h"
#include "stats/chi_squared.h"
#include "stats/contingency.h"

namespace ccs {

// Applies the statistical predicates of a correlation query to contingency
// tables: CT-support (anti-monotone) and the chi-squared correlation test
// (treated as monotone; see MiningOptions::full_independence_df).
class CorrelationJudge {
 public:
  explicit CorrelationJudge(const MiningOptions& options);

  const MiningOptions& options() const { return options_; }

  // CT-support at (options.min_support, options.min_cell_fraction).
  bool IsCtSupported(const stats::ContingencyTable& table) const;

  // chi-squared statistic >= cutoff for the table's size.
  bool IsCorrelated(const stats::ContingencyTable& table);

  // The cutoff applied to a table over `num_vars` variables.
  double Cutoff(int num_vars);

  // p-value of the table's statistic under the configured df policy.
  double PValue(const stats::ContingencyTable& table) const;

 private:
  int DegreesOfFreedom(int num_vars) const;

  MiningOptions options_;
  stats::ChiSquaredCriticalValues critical_values_;
};

}  // namespace ccs

#endif  // CCS_CORE_JUDGE_H_
