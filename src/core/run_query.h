#ifndef CCS_CORE_RUN_QUERY_H_
#define CCS_CORE_RUN_QUERY_H_

#include "core/engine_options.h"
#include "core/result.h"
#include "txn/catalog.h"
#include "txn/database.h"
#include "util/executor.h"

namespace ccs {

// The shared run path behind every public mining entry point: executes one
// MiningRequest against a finalized database on the given executor, with
// run-scoped observability (a fresh MetricsRegistry and Tracer per call,
// snapshots attached to the result) and the kError degradation contract of
// DESIGN.md §8. MiningEngine calls it on its private executor;
// MiningSession on an ExecutorPool lease — the semantics are identical by
// construction, which is what makes the session and one-shot answers
// comparable bit for bit.
//
// The caller must hold the executor exclusively for the duration of the
// call (ParallelExecutor is single-run); `options` must come from
// ResolveEngineOptions so the environment overrides are already folded in.
[[nodiscard]] MiningResult RunMiningQuery(const TransactionDatabase& db,
                                          const ItemCatalog& catalog,
                                          const ResolvedEngineOptions& options,
                                          ParallelExecutor& executor,
                                          const MiningRequest& request);

}  // namespace ccs

#endif  // CCS_CORE_RUN_QUERY_H_
