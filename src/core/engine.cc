#include "core/engine.h"

#include "core/run_query.h"

namespace ccs {

MiningEngine::MiningEngine(const TransactionDatabase& db,
                           const ItemCatalog& catalog, EngineOptions options)
    : handle_(DatabaseHandle::Borrow(db, catalog)),
      resolved_(ResolveEngineOptions(options)),
      executor_(resolved_.num_threads) {}

MiningResult MiningEngine::Run(const MiningRequest& request) {
  return RunMiningQuery(handle_.database(), handle_.catalog(), resolved_,
                        executor_, request);
}

}  // namespace ccs
