#include "core/engine.h"

#include "core/bms.h"
#include "core/bms_plus.h"
#include "core/bms_plus_plus.h"
#include "core/bms_star.h"
#include "core/bms_star_star.h"
#include "util/check.h"

namespace ccs {

MiningEngine::MiningEngine(const TransactionDatabase& db,
                           const ItemCatalog& catalog, EngineOptions options)
    : db_(&db),
      catalog_(&catalog),
      options_(std::move(options)),
      executor_(options_.num_threads) {}

MiningResult MiningEngine::Run(const MiningRequest& request) {
  const ConstraintSet& constraints =
      request.constraints != nullptr ? *request.constraints
                                     : empty_constraints_;
  MiningContext ctx(executor_, request.algorithm,
                    &options_.progress_callback);
  switch (request.algorithm) {
    case Algorithm::kBms:
      return MineBms(*db_, request.options, &ctx);
    case Algorithm::kBmsPlus:
      return MineBmsPlus(*db_, *catalog_, constraints, request.options, &ctx);
    case Algorithm::kBmsPlusPlus:
      return MineBmsPlusPlus(*db_, *catalog_, constraints, request.options,
                             &ctx);
    case Algorithm::kBmsStar:
      return MineBmsStar(*db_, *catalog_, constraints, request.options, &ctx);
    case Algorithm::kBmsStarStar:
      return MineBmsStarStar(*db_, *catalog_, constraints, request.options,
                             &ctx);
    case Algorithm::kBmsStarStarOpt:
      return MineBmsStarStarOpt(*db_, *catalog_, constraints, request.options,
                                &ctx);
  }
  CCS_CHECK(false);
  return {};
}

}  // namespace ccs
