#include "core/engine.h"

#include <cstdlib>
#include <exception>
#include <string>

#include "core/bms.h"
#include "core/bms_plus.h"
#include "core/bms_plus_plus.h"
#include "core/bms_star.h"
#include "core/bms_star_star.h"
#include "util/check.h"
#include "util/status.h"

namespace ccs {

namespace {

// EngineOptions + the CCS_CT_CACHE override ("0" forces the per-candidate
// path, anything else forces the cached path), resolved once per engine.
CtCacheOptions ResolveCtCache(const EngineOptions& options) {
  CtCacheOptions cache;
  cache.enabled = options.ct_cache;
  cache.budget_words = options.ct_cache_budget_mib * ((std::size_t{1} << 20) /
                                                      sizeof(std::uint64_t));
  if (const char* env = std::getenv("CCS_CT_CACHE")) {
    cache.enabled = std::string(env) != "0";
  }
  return cache;
}

}  // namespace

MiningEngine::MiningEngine(const TransactionDatabase& db,
                           const ItemCatalog& catalog, EngineOptions options)
    : db_(&db),
      catalog_(&catalog),
      options_(std::move(options)),
      ct_cache_(ResolveCtCache(options_)),
      executor_(options_.num_threads) {}

MiningResult MiningEngine::Run(const MiningRequest& request) {
  const ConstraintSet& constraints =
      request.constraints != nullptr ? *request.constraints
                                     : empty_constraints_;
  const RunGovernor governor(request.control);
  MiningContext ctx(executor_, request.algorithm,
                    &options_.progress_callback, &governor, ct_cache_);
  // A throwing worker (fault injection, bad_alloc, a pathological
  // constraint) must degrade to kError, not take the process down; the
  // executor has already drained its pool by the time the exception
  // reaches this frame, so the engine stays good for the next Run.
  try {
    switch (request.algorithm) {
      case Algorithm::kBms:
        return MineBms(*db_, request.options, &ctx);
      case Algorithm::kBmsPlus:
        return MineBmsPlus(*db_, *catalog_, constraints, request.options,
                           &ctx);
      case Algorithm::kBmsPlusPlus:
        return MineBmsPlusPlus(*db_, *catalog_, constraints, request.options,
                               &ctx);
      case Algorithm::kBmsStar:
        return MineBmsStar(*db_, *catalog_, constraints, request.options,
                           &ctx);
      case Algorithm::kBmsStarStar:
        return MineBmsStarStar(*db_, *catalog_, constraints, request.options,
                               &ctx);
      case Algorithm::kBmsStarStarOpt:
        return MineBmsStarStarOpt(*db_, *catalog_, constraints,
                                  request.options, &ctx);
    }
  } catch (const std::exception& e) {
    MiningResult failed;
    failed.termination = Termination::kError;
    failed.error = InternalError(e.what());
    return failed;
  }
  CCS_CHECK(false);
  return {};
}

}  // namespace ccs
