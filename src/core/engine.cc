#include "core/engine.h"

#include <exception>

#include "core/bms.h"
#include "core/bms_plus.h"
#include "core/bms_plus_plus.h"
#include "core/bms_star.h"
#include "core/bms_star_star.h"
#include "util/check.h"
#include "util/status.h"

namespace ccs {

MiningEngine::MiningEngine(const TransactionDatabase& db,
                           const ItemCatalog& catalog, EngineOptions options)
    : db_(&db),
      catalog_(&catalog),
      options_(std::move(options)),
      executor_(options_.num_threads) {}

MiningResult MiningEngine::Run(const MiningRequest& request) {
  const ConstraintSet& constraints =
      request.constraints != nullptr ? *request.constraints
                                     : empty_constraints_;
  const RunGovernor governor(request.control);
  MiningContext ctx(executor_, request.algorithm,
                    &options_.progress_callback, &governor);
  // A throwing worker (fault injection, bad_alloc, a pathological
  // constraint) must degrade to kError, not take the process down; the
  // executor has already drained its pool by the time the exception
  // reaches this frame, so the engine stays good for the next Run.
  try {
    switch (request.algorithm) {
      case Algorithm::kBms:
        return MineBms(*db_, request.options, &ctx);
      case Algorithm::kBmsPlus:
        return MineBmsPlus(*db_, *catalog_, constraints, request.options,
                           &ctx);
      case Algorithm::kBmsPlusPlus:
        return MineBmsPlusPlus(*db_, *catalog_, constraints, request.options,
                               &ctx);
      case Algorithm::kBmsStar:
        return MineBmsStar(*db_, *catalog_, constraints, request.options,
                           &ctx);
      case Algorithm::kBmsStarStar:
        return MineBmsStarStar(*db_, *catalog_, constraints, request.options,
                               &ctx);
      case Algorithm::kBmsStarStarOpt:
        return MineBmsStarStarOpt(*db_, *catalog_, constraints,
                                  request.options, &ctx);
    }
  } catch (const std::exception& e) {
    MiningResult failed;
    failed.termination = Termination::kError;
    failed.error = InternalError(e.what());
    return failed;
  }
  CCS_CHECK(false);
  return {};
}

}  // namespace ccs
