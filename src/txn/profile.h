#ifndef CCS_TXN_PROFILE_H_
#define CCS_TXN_PROFILE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "txn/database.h"

namespace ccs {

// Descriptive statistics of a basket database — what an analyst looks at
// before choosing (alpha, s, p%) for a mining run, and what the CLI's
// --profile mode prints. Computed in one pass over the horizontal layout
// plus the precomputed item supports.
struct DatabaseProfile {
  std::size_t num_transactions = 0;
  std::size_t num_items = 0;      // universe size
  std::size_t num_active_items = 0;  // items with support > 0
  double avg_transaction_size = 0.0;
  std::size_t min_transaction_size = 0;
  std::size_t max_transaction_size = 0;
  // Item supports sorted descending — the frequency curve.
  std::vector<std::uint64_t> sorted_supports;

  // Number of items whose support reaches `min_support` — the size of the
  // mining universe a run with that threshold would see.
  std::size_t NumFrequentItems(std::uint64_t min_support) const;

  // Support of the item at popularity rank `rank` (0 = most popular).
  std::uint64_t SupportAtRank(std::size_t rank) const;

  // Gini coefficient of the support distribution over active items:
  // 0 = all items equally popular, -> 1 = all mass on one item. The
  // quick skewness read that separates Zipf-like data from uniform.
  double SupportGini() const;

  // Multi-line human-readable summary.
  std::string ToString() const;

  // Requires db.finalized().
  static DatabaseProfile Build(const TransactionDatabase& db);
};

}  // namespace ccs

#endif  // CCS_TXN_PROFILE_H_
