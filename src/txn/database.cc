#include "txn/database.h"

#include <algorithm>
#include <new>
#include <string>

#include "util/check.h"

namespace ccs {

TransactionDatabase::TransactionDatabase(std::size_t num_items)
    : num_items_(num_items) {
  CCS_CHECK_GT(num_items, 0u);
}

void TransactionDatabase::Add(Transaction items) {
  CCS_CHECK(!finalized_);
  std::sort(items.begin(), items.end());
  items.erase(std::unique(items.begin(), items.end()), items.end());
  if (!items.empty()) {
    CCS_CHECK_LT(items.back(), num_items_);
  }
  transactions_.push_back(std::move(items));
}

Status TransactionDatabase::AddOrError(Transaction items) {
  if (finalized_) {
    return FailedPreconditionError("Add after Finalize");
  }
  std::sort(items.begin(), items.end());
  items.erase(std::unique(items.begin(), items.end()), items.end());
  if (!items.empty() && items.back() >= num_items_) {
    return InvalidArgumentError("item id " + std::to_string(items.back()) +
                                " out of range [0, " +
                                std::to_string(num_items_) + ")");
  }
  transactions_.push_back(std::move(items));
  return OkStatus();
}

void TransactionDatabase::Finalize() {
  const Status status = FinalizeOrError();
  CCS_CHECK(status.ok());
}

Status TransactionDatabase::FinalizeOrError() {
  if (finalized_) {
    return FailedPreconditionError("Finalize called twice");
  }
  try {
    tidsets_.assign(num_items_, DynamicBitset(transactions_.size()));
    supports_.assign(num_items_, 0);
  } catch (const std::bad_alloc&) {
    tidsets_.clear();
    supports_.clear();
    return ResourceExhaustedError(
        "cannot allocate vertical index for " + std::to_string(num_items_) +
        " items x " + std::to_string(transactions_.size()) + " transactions");
  }
  for (std::size_t t = 0; t < transactions_.size(); ++t) {
    for (ItemId item : transactions_[t]) {
      tidsets_[item].Set(t);
      ++supports_[item];
    }
  }
  // The TID-list layout is now fixed; record the facts the kernel
  // selection (core/simd_kernel.h) keys off.
  tidset_words_ = num_items_ > 0 ? tidsets_[0].num_words() : 0;
  simd_friendly_ = tidset_words_ >= kSimdFriendlyWords;
  finalized_ = true;
  return OkStatus();
}

const Transaction& TransactionDatabase::transaction(std::size_t t) const {
  CCS_CHECK_LT(t, transactions_.size());
  return transactions_[t];
}

const DynamicBitset& TransactionDatabase::tidset(ItemId item) const {
  CCS_CHECK(finalized_);
  CCS_CHECK_LT(item, num_items_);
  return tidsets_[item];
}

std::uint64_t TransactionDatabase::ItemSupport(ItemId item) const {
  CCS_CHECK(finalized_);
  CCS_CHECK_LT(item, num_items_);
  return supports_[item];
}

bool TransactionDatabase::Contains(std::size_t t, ItemId item) const {
  const Transaction& txn = transaction(t);
  return std::binary_search(txn.begin(), txn.end(), item);
}

double TransactionDatabase::AverageTransactionSize() const {
  if (transactions_.empty()) return 0.0;
  std::size_t total = 0;
  for (const auto& txn : transactions_) total += txn.size();
  return static_cast<double>(total) /
         static_cast<double>(transactions_.size());
}

}  // namespace ccs
