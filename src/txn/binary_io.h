#ifndef CCS_TXN_BINARY_IO_H_
#define CCS_TXN_BINARY_IO_H_

#include <iosfwd>
#include <optional>
#include <string>

#include "txn/database.h"
#include "util/status.h"

namespace ccs {

// Compact binary serialization of a basket database.
//
// Format (little-endian):
//   magic   "CCSB"            4 bytes
//   version u8                currently 1
//   varint  num_items
//   varint  num_transactions
//   per transaction:
//     varint length
//     varint delta-encoded item ids (first id absolute, then gaps - 1,
//     exploiting the sorted, duplicate-free representation)
//
// Varints are LEB128 (7 bits per byte, high bit continues). On typical
// synthetic data this is ~4-6x smaller than the text format and decodes
// without parsing. Loaders validate structure and item ranges — including
// that the declared counts fit in the remaining payload, so a corrupt
// header cannot drive huge allocations — and return kDataLoss on any
// corruption. Nothing in this module aborts on bad input.
bool WriteBasketsBinary(const TransactionDatabase& db, std::ostream& out);
bool WriteBasketsBinaryToFile(const TransactionDatabase& db,
                              const std::string& path);

// The returned database is finalized. For seekable streams the header
// counts are validated against the actual byte count before any
// allocation; non-seekable streams fall back to incremental checks.
[[nodiscard]] StatusOr<TransactionDatabase> LoadBasketsBinary(
    std::istream& in);
[[nodiscard]] StatusOr<TransactionDatabase> LoadBasketsBinaryFromFile(
    const std::string& path);

// Optional-based wrappers kept for existing call sites; they forward to
// the Status loaders and surface the message through `error`.
std::optional<TransactionDatabase> ReadBasketsBinary(
    std::istream& in, std::string* error = nullptr);
std::optional<TransactionDatabase> ReadBasketsBinaryFromFile(
    const std::string& path, std::string* error = nullptr);

}  // namespace ccs

#endif  // CCS_TXN_BINARY_IO_H_
