#ifndef CCS_TXN_BINARY_IO_H_
#define CCS_TXN_BINARY_IO_H_

#include <iosfwd>
#include <optional>
#include <string>

#include "txn/database.h"

namespace ccs {

// Compact binary serialization of a basket database.
//
// Format (little-endian):
//   magic   "CCSB"            4 bytes
//   version u8                currently 1
//   varint  num_items
//   varint  num_transactions
//   per transaction:
//     varint length
//     varint delta-encoded item ids (first id absolute, then gaps - 1,
//     exploiting the sorted, duplicate-free representation)
//
// Varints are LEB128 (7 bits per byte, high bit continues). On typical
// synthetic data this is ~4-6x smaller than the text format and decodes
// without parsing. Loaders validate structure and item ranges and return
// nullopt with a diagnostic on any corruption.
bool WriteBasketsBinary(const TransactionDatabase& db, std::ostream& out);
bool WriteBasketsBinaryToFile(const TransactionDatabase& db,
                              const std::string& path);

// The returned database is finalized.
std::optional<TransactionDatabase> ReadBasketsBinary(
    std::istream& in, std::string* error = nullptr);
std::optional<TransactionDatabase> ReadBasketsBinaryFromFile(
    const std::string& path, std::string* error = nullptr);

}  // namespace ccs

#endif  // CCS_TXN_BINARY_IO_H_
