#ifndef CCS_TXN_CATALOG_H_
#define CCS_TXN_CATALOG_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "txn/item.h"

namespace ccs {

// Attribute catalog for the item universe: per-item price (the paper's
// S.price, a non-negative value) and per-item type (the paper's S.type, a
// category such as "soda" or "snacks", dictionary encoded).
//
// Constraints evaluate against this catalog; the transaction database only
// stores item ids.
class ItemCatalog {
 public:
  ItemCatalog() = default;

  // Adds an item with the given price and type name, returning its id.
  // Ids are assigned densely in insertion order. Price must be >= 0 (the
  // paper's aggregation constraints assume a non-negative domain).
  ItemId AddItem(double price, std::string_view type);

  // Adds an item with an optional human-readable name (used by examples and
  // debug output; empty means "item<id>").
  ItemId AddItem(double price, std::string_view type, std::string_view name);

  std::size_t num_items() const { return prices_.size(); }
  std::size_t num_types() const { return type_names_.size(); }

  double price(ItemId item) const;
  TypeId type(ItemId item) const;
  const std::string& type_name(TypeId type) const;

  // Human-readable name of an item ("item<id>" if none was given).
  std::string item_name(ItemId item) const;

  // Returns the id of a type name, or kInvalidType if never seen.
  TypeId FindType(std::string_view name) const;

  // Interns a type name, creating a new id if necessary. Useful for
  // constraints referencing types that no catalog item happens to have.
  TypeId InternType(std::string_view name);

  // All item ids whose price satisfies `price_pred` — a convenience for
  // succinct-constraint witness precomputation and tests.
  template <typename Pred>
  std::vector<ItemId> ItemsWhere(Pred pred) const {
    std::vector<ItemId> out;
    for (ItemId i = 0; i < num_items(); ++i) {
      if (pred(i)) out.push_back(i);
    }
    return out;
  }

 private:
  std::vector<double> prices_;
  std::vector<TypeId> types_;
  std::vector<std::string> item_names_;
  std::vector<std::string> type_names_;
  std::unordered_map<std::string, TypeId> type_ids_;
};

}  // namespace ccs

#endif  // CCS_TXN_CATALOG_H_
