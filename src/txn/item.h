#ifndef CCS_TXN_ITEM_H_
#define CCS_TXN_ITEM_H_

#include <cstdint>

namespace ccs {

// Items are dense integer ids in [0, num_items) assigned by the catalog.
using ItemId = std::uint32_t;

// Type (category) attributes are dictionary-encoded; the catalog owns the
// dictionary mapping TypeId <-> type name.
using TypeId = std::uint32_t;

inline constexpr ItemId kInvalidItem = static_cast<ItemId>(-1);
inline constexpr TypeId kInvalidType = static_cast<TypeId>(-1);

}  // namespace ccs

#endif  // CCS_TXN_ITEM_H_
