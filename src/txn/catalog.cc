#include "txn/catalog.h"

#include "util/check.h"

namespace ccs {

ItemId ItemCatalog::AddItem(double price, std::string_view type) {
  return AddItem(price, type, std::string_view());
}

ItemId ItemCatalog::AddItem(double price, std::string_view type,
                            std::string_view name) {
  CCS_CHECK_GE(price, 0.0);
  const auto id = static_cast<ItemId>(prices_.size());
  prices_.push_back(price);
  types_.push_back(InternType(type));
  item_names_.emplace_back(name);
  return id;
}

double ItemCatalog::price(ItemId item) const {
  CCS_CHECK_LT(item, prices_.size());
  return prices_[item];
}

TypeId ItemCatalog::type(ItemId item) const {
  CCS_CHECK_LT(item, types_.size());
  return types_[item];
}

const std::string& ItemCatalog::type_name(TypeId type) const {
  CCS_CHECK_LT(type, type_names_.size());
  return type_names_[type];
}

std::string ItemCatalog::item_name(ItemId item) const {
  CCS_CHECK_LT(item, item_names_.size());
  if (!item_names_[item].empty()) return item_names_[item];
  return "item" + std::to_string(item);
}

TypeId ItemCatalog::FindType(std::string_view name) const {
  const auto it = type_ids_.find(std::string(name));
  return it == type_ids_.end() ? kInvalidType : it->second;
}

TypeId ItemCatalog::InternType(std::string_view name) {
  const auto [it, inserted] =
      type_ids_.try_emplace(std::string(name), type_names_.size());
  if (inserted) type_names_.emplace_back(name);
  return it->second;
}

}  // namespace ccs
