#include "txn/io.h"

#include <fstream>
#include <sstream>
#include <vector>

#include "util/fault.h"

namespace ccs {
namespace {

// Splits a CSV line on commas; no quoting support (the catalog format does
// not produce quoted cells: names and types are restricted to simple
// tokens by the generators, and the loader rejects embedded commas anyway).
std::vector<std::string> SplitCsvLine(const std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  std::istringstream in(line);
  while (std::getline(in, cell, ',')) cells.push_back(cell);
  if (!line.empty() && line.back() == ',') cells.emplace_back();
  return cells;
}

}  // namespace

bool WriteBaskets(const TransactionDatabase& db, std::ostream& out) {
  for (std::size_t t = 0; t < db.num_transactions(); ++t) {
    const Transaction& txn = db.transaction(t);
    for (std::size_t i = 0; i < txn.size(); ++i) {
      if (i > 0) out << ' ';
      out << txn[i];
    }
    out << '\n';
  }
  return static_cast<bool>(out);
}

bool WriteBasketsToFile(const TransactionDatabase& db,
                        const std::string& path) {
  std::ofstream out(path);
  return out && WriteBaskets(db, out);
}

StatusOr<TransactionDatabase> LoadBaskets(std::istream& in,
                                          std::size_t num_items) {
  if (FaultInjector::Enabled() && ShouldInjectFault("io")) {
    return DataLossError("injected fault at site 'io'");
  }
  if (num_items == 0) {
    return InvalidArgumentError("num_items must be positive");
  }
  TransactionDatabase db(num_items);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    Transaction txn;
    std::istringstream tokens(line);
    std::string token;
    while (tokens >> token) {
      std::size_t consumed = 0;
      unsigned long id = 0;
      try {
        id = std::stoul(token, &consumed);
      } catch (...) {
        consumed = 0;
      }
      if (consumed != token.size() || id >= num_items) {
        return DataLossError("line " + std::to_string(line_no) +
                             ": bad item id '" + token + "'");
      }
      txn.push_back(static_cast<ItemId>(id));
    }
    CCS_RETURN_IF_ERROR(db.AddOrError(std::move(txn)));
  }
  CCS_RETURN_IF_ERROR(db.FinalizeOrError());
  return db;
}

StatusOr<TransactionDatabase> LoadBasketsFromFile(const std::string& path,
                                                  std::size_t num_items) {
  std::ifstream in(path);
  if (!in) {
    return NotFoundError("cannot open " + path);
  }
  return LoadBaskets(in, num_items);
}

std::optional<TransactionDatabase> ReadBaskets(std::istream& in,
                                               std::size_t num_items,
                                               std::string* error) {
  StatusOr<TransactionDatabase> db = LoadBaskets(in, num_items);
  if (!db.ok()) {
    if (error != nullptr) *error = db.status().message();
    return std::nullopt;
  }
  return std::move(db).value();
}

std::optional<TransactionDatabase> ReadBasketsFromFile(const std::string& path,
                                                       std::size_t num_items,
                                                       std::string* error) {
  StatusOr<TransactionDatabase> db = LoadBasketsFromFile(path, num_items);
  if (!db.ok()) {
    if (error != nullptr) *error = db.status().message();
    return std::nullopt;
  }
  return std::move(db).value();
}

bool WriteCatalog(const ItemCatalog& catalog, std::ostream& out) {
  out << "item,price,type,name\n";
  for (ItemId i = 0; i < catalog.num_items(); ++i) {
    out << i << ',' << catalog.price(i) << ','
        << catalog.type_name(catalog.type(i)) << ',' << catalog.item_name(i)
        << '\n';
  }
  return static_cast<bool>(out);
}

bool WriteCatalogToFile(const ItemCatalog& catalog, const std::string& path) {
  std::ofstream out(path);
  return out && WriteCatalog(catalog, out);
}

StatusOr<ItemCatalog> LoadCatalog(std::istream& in) {
  if (FaultInjector::Enabled() && ShouldInjectFault("io")) {
    return DataLossError("injected fault at site 'io'");
  }
  ItemCatalog catalog;
  std::string line;
  if (!std::getline(in, line)) {
    return DataLossError("empty catalog file");
  }
  std::size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    const auto cells = SplitCsvLine(line);
    if (cells.size() < 3 || cells.size() > 4) {
      return DataLossError("line " + std::to_string(line_no) +
                           ": expected 3 or 4 cells");
    }
    unsigned long id = 0;
    double price = 0.0;
    try {
      id = std::stoul(cells[0]);
      price = std::stod(cells[1]);
    } catch (...) {
      return DataLossError("line " + std::to_string(line_no) +
                           ": bad number");
    }
    if (id != catalog.num_items() || price < 0.0) {
      return DataLossError("line " + std::to_string(line_no) +
                           ": non-consecutive id or negative price");
    }
    catalog.AddItem(price, cells[2], cells.size() == 4 ? cells[3] : "");
  }
  return catalog;
}

StatusOr<ItemCatalog> LoadCatalogFromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return NotFoundError("cannot open " + path);
  }
  return LoadCatalog(in);
}

std::optional<ItemCatalog> ReadCatalog(std::istream& in, std::string* error) {
  StatusOr<ItemCatalog> catalog = LoadCatalog(in);
  if (!catalog.ok()) {
    if (error != nullptr) *error = catalog.status().message();
    return std::nullopt;
  }
  return std::move(catalog).value();
}

std::optional<ItemCatalog> ReadCatalogFromFile(const std::string& path,
                                               std::string* error) {
  StatusOr<ItemCatalog> catalog = LoadCatalogFromFile(path);
  if (!catalog.ok()) {
    if (error != nullptr) *error = catalog.status().message();
    return std::nullopt;
  }
  return std::move(catalog).value();
}

}  // namespace ccs
