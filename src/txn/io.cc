#include "txn/io.h"

#include <fstream>
#include <sstream>
#include <vector>

namespace ccs {
namespace {

void SetError(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
}

// Splits a CSV line on commas; no quoting support (the catalog format does
// not produce quoted cells: names and types are restricted to simple
// tokens by the generators, and the loader rejects embedded commas anyway).
std::vector<std::string> SplitCsvLine(const std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  std::istringstream in(line);
  while (std::getline(in, cell, ',')) cells.push_back(cell);
  if (!line.empty() && line.back() == ',') cells.emplace_back();
  return cells;
}

}  // namespace

bool WriteBaskets(const TransactionDatabase& db, std::ostream& out) {
  for (std::size_t t = 0; t < db.num_transactions(); ++t) {
    const Transaction& txn = db.transaction(t);
    for (std::size_t i = 0; i < txn.size(); ++i) {
      if (i > 0) out << ' ';
      out << txn[i];
    }
    out << '\n';
  }
  return static_cast<bool>(out);
}

bool WriteBasketsToFile(const TransactionDatabase& db,
                        const std::string& path) {
  std::ofstream out(path);
  return out && WriteBaskets(db, out);
}

std::optional<TransactionDatabase> ReadBaskets(std::istream& in,
                                               std::size_t num_items,
                                               std::string* error) {
  TransactionDatabase db(num_items);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    Transaction txn;
    std::istringstream tokens(line);
    std::string token;
    while (tokens >> token) {
      std::size_t consumed = 0;
      unsigned long id = 0;
      try {
        id = std::stoul(token, &consumed);
      } catch (...) {
        consumed = 0;
      }
      if (consumed != token.size() || id >= num_items) {
        SetError(error, "line " + std::to_string(line_no) +
                            ": bad item id '" + token + "'");
        return std::nullopt;
      }
      txn.push_back(static_cast<ItemId>(id));
    }
    db.Add(std::move(txn));
  }
  db.Finalize();
  return db;
}

std::optional<TransactionDatabase> ReadBasketsFromFile(const std::string& path,
                                                       std::size_t num_items,
                                                       std::string* error) {
  std::ifstream in(path);
  if (!in) {
    SetError(error, "cannot open " + path);
    return std::nullopt;
  }
  return ReadBaskets(in, num_items, error);
}

bool WriteCatalog(const ItemCatalog& catalog, std::ostream& out) {
  out << "item,price,type,name\n";
  for (ItemId i = 0; i < catalog.num_items(); ++i) {
    out << i << ',' << catalog.price(i) << ','
        << catalog.type_name(catalog.type(i)) << ',' << catalog.item_name(i)
        << '\n';
  }
  return static_cast<bool>(out);
}

bool WriteCatalogToFile(const ItemCatalog& catalog, const std::string& path) {
  std::ofstream out(path);
  return out && WriteCatalog(catalog, out);
}

std::optional<ItemCatalog> ReadCatalog(std::istream& in, std::string* error) {
  ItemCatalog catalog;
  std::string line;
  if (!std::getline(in, line)) {
    SetError(error, "empty catalog file");
    return std::nullopt;
  }
  std::size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    const auto cells = SplitCsvLine(line);
    if (cells.size() < 3 || cells.size() > 4) {
      SetError(error, "line " + std::to_string(line_no) +
                          ": expected 3 or 4 cells");
      return std::nullopt;
    }
    unsigned long id = 0;
    double price = 0.0;
    try {
      id = std::stoul(cells[0]);
      price = std::stod(cells[1]);
    } catch (...) {
      SetError(error, "line " + std::to_string(line_no) + ": bad number");
      return std::nullopt;
    }
    if (id != catalog.num_items() || price < 0.0) {
      SetError(error, "line " + std::to_string(line_no) +
                          ": non-consecutive id or negative price");
      return std::nullopt;
    }
    catalog.AddItem(price, cells[2], cells.size() == 4 ? cells[3] : "");
  }
  return catalog;
}

std::optional<ItemCatalog> ReadCatalogFromFile(const std::string& path,
                                               std::string* error) {
  std::ifstream in(path);
  if (!in) {
    SetError(error, "cannot open " + path);
    return std::nullopt;
  }
  return ReadCatalog(in, error);
}

}  // namespace ccs
