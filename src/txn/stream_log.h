#ifndef CCS_TXN_STREAM_LOG_H_
#define CCS_TXN_STREAM_LOG_H_

#include <cstddef>
#include <cstdint>
#include <deque>

#include "txn/database.h"
#include "util/status.h"

namespace ccs {

// Append-only basket storage for the streaming layer (DESIGN.md §15):
// frame-aware TID allocation over one global, monotonically increasing
// TID sequence. Baskets append into an open frame; CutFrame() closes it
// and returns its half-open TID range, which the tilted-time-window
// bookkeeping (src/stream/tilted_window.h) then owns. Because frames are
// cut in arrival order and window compaction only merges adjacent frames
// or expires the oldest, the live window is always one contiguous TID
// interval — DropBelow() reclaims everything under its low end while
// global TIDs keep advancing, so a TID names the same basket for the
// lifetime of the stream.
//
// Baskets are normalized on append exactly as TransactionDatabase::Add
// does (sorted, deduplicated, ids range-checked), so a window snapshot
// can replay them into a fresh database without re-validation.
class BasketLog {
 public:
  explicit BasketLog(std::size_t num_items) : num_items_(num_items) {}

  // Appends one basket to the open frame under the next global TID.
  // Invalid item ids reject without consuming a TID.
  [[nodiscard]] Status Append(Transaction basket);

  // Closes the open frame: returns its TID range [begin, end) and starts
  // a new empty open frame at `end`. Empty frames are legal (a tick with
  // no arrivals).
  struct TidRange {
    std::uint64_t begin = 0;
    std::uint64_t end = 0;
  };
  TidRange CutFrame();

  // Total baskets ever appended == the TID the next Append receives.
  std::uint64_t next_tid() const { return base_ + baskets_.size(); }
  // Lowest TID still retained (== next_tid() when everything expired).
  std::uint64_t first_live_tid() const { return base_; }
  // First TID of the open (not yet cut) frame.
  std::uint64_t open_frame_begin() const { return frame_begin_; }
  // Baskets in the open frame.
  std::size_t pending() const {
    return static_cast<std::size_t>(next_tid() - frame_begin_);
  }

  // The basket at `tid`; requires first_live_tid() <= tid < next_tid().
  const Transaction& basket(std::uint64_t tid) const;

  // Drops storage for every basket with TID < tid (idempotent; `tid` may
  // not exceed the open frame's begin — expiry never reaches into frames
  // that have not been cut).
  void DropBelow(std::uint64_t tid);

  std::size_t num_items() const { return num_items_; }

 private:
  std::size_t num_items_;
  // TID of baskets_.front(); live baskets are a contiguous deque suffix
  // of the global sequence.
  std::uint64_t base_ = 0;
  std::uint64_t frame_begin_ = 0;
  std::deque<Transaction> baskets_;
};

}  // namespace ccs

#endif  // CCS_TXN_STREAM_LOG_H_
