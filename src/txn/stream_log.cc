#include "txn/stream_log.h"

#include <algorithm>
#include <string>
#include <utility>

#include "util/check.h"

namespace ccs {

Status BasketLog::Append(Transaction basket) {
  std::sort(basket.begin(), basket.end());
  basket.erase(std::unique(basket.begin(), basket.end()), basket.end());
  if (!basket.empty() && basket.back() >= num_items_) {
    return InvalidArgumentError("item id " + std::to_string(basket.back()) +
                                " out of range [0, " +
                                std::to_string(num_items_) + ")");
  }
  baskets_.push_back(std::move(basket));
  return OkStatus();
}

BasketLog::TidRange BasketLog::CutFrame() {
  const TidRange range{frame_begin_, next_tid()};
  frame_begin_ = range.end;
  return range;
}

const Transaction& BasketLog::basket(std::uint64_t tid) const {
  CCS_CHECK_GE(tid, base_);
  CCS_CHECK_LT(tid, next_tid());
  return baskets_[static_cast<std::size_t>(tid - base_)];
}

void BasketLog::DropBelow(std::uint64_t tid) {
  CCS_CHECK_LE(tid, frame_begin_);
  while (base_ < tid) {
    baskets_.pop_front();
    ++base_;
  }
}

}  // namespace ccs
