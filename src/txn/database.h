#ifndef CCS_TXN_DATABASE_H_
#define CCS_TXN_DATABASE_H_

#include <cstdint>
#include <vector>

#include "txn/item.h"
#include "util/bitset.h"
#include "util/status.h"

namespace ccs {

// A transaction (basket): a duplicate-free, sorted list of item ids.
using Transaction = std::vector<ItemId>;

// In-memory basket database over a fixed item universe.
//
// Storage is dual:
//  * horizontal — the raw transactions, for generators, I/O, and the scalar
//    reference counting path;
//  * vertical   — one DynamicBitset per item (its tid-set: bit t set iff
//    transaction t contains the item), built once by Finalize() and used by
//    the fast contingency-table builder.
//
// Usage: construct with the universe size, Add() transactions, Finalize(),
// then mine. Adding after Finalize() is a contract violation.
class TransactionDatabase {
 public:
  explicit TransactionDatabase(std::size_t num_items);

  // Adds a basket. `items` may be unsorted and may contain duplicates;
  // it is normalized. Every id must be < num_items().
  void Add(Transaction items);

  // Add() for untrusted input: rejects out-of-range ids and use after
  // finalization with a Status instead of aborting. On error the database
  // is unchanged.
  [[nodiscard]] Status AddOrError(Transaction items);

  // Builds the vertical bitmap index. Must be called exactly once, after
  // the last Add().
  void Finalize();

  // Finalize() for fallible call sites: double finalization and index
  // allocation failure come back as a Status (kFailedPrecondition and
  // kResourceExhausted respectively) instead of aborting the process.
  [[nodiscard]] Status FinalizeOrError();

  bool finalized() const { return finalized_; }
  std::size_t num_items() const { return num_items_; }
  std::size_t num_transactions() const { return transactions_.size(); }

  const Transaction& transaction(std::size_t t) const;
  const std::vector<Transaction>& transactions() const {
    return transactions_;
  }

  // Tid-set of an item. Requires finalized().
  const DynamicBitset& tidset(ItemId item) const;

  // TID-list layout facts, fixed when Finalize() builds the vertical
  // index; the contingency-table kernel (core/simd_kernel.h) selects its
  // implementation per database from them. Words per tid-set (every item's
  // tid-set has the same word count); 0 before Finalize().
  std::size_t tidset_words() const { return tidset_words_; }

  // True iff the tid-sets are long enough that 256-bit vector lanes beat
  // the word-at-a-time loop (>= kSimdFriendlyWords words). False before
  // Finalize(). Purely a layout fact — the txn layer knows nothing about
  // kernels; core/simd_kernel.h combines this with the session options.
  bool simd_friendly() const { return simd_friendly_; }

  // Minimum tid-set words for simd_friendly(): one full 4-word lane.
  static constexpr std::size_t kSimdFriendlyWords = 4;

  // Number of transactions containing the item. Requires finalized().
  std::uint64_t ItemSupport(ItemId item) const;

  // True iff transaction t contains the item (binary search on the
  // horizontal layout; works before Finalize()).
  bool Contains(std::size_t t, ItemId item) const;

  // Average basket size (0 for an empty database).
  double AverageTransactionSize() const;

 private:
  std::size_t num_items_;
  bool finalized_ = false;
  std::vector<Transaction> transactions_;
  std::vector<DynamicBitset> tidsets_;
  std::vector<std::uint64_t> supports_;
  std::size_t tidset_words_ = 0;
  bool simd_friendly_ = false;
};

}  // namespace ccs

#endif  // CCS_TXN_DATABASE_H_
