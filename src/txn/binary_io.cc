#include "txn/binary_io.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

namespace ccs {
namespace {

constexpr char kMagic[4] = {'C', 'C', 'S', 'B'};
constexpr std::uint8_t kVersion = 1;

void SetError(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
}

void WriteVarint(std::ostream& out, std::uint64_t value) {
  while (value >= 0x80) {
    out.put(static_cast<char>((value & 0x7f) | 0x80));
    value >>= 7;
  }
  out.put(static_cast<char>(value));
}

bool ReadVarint(std::istream& in, std::uint64_t* value) {
  *value = 0;
  int shift = 0;
  while (true) {
    const int byte = in.get();
    if (byte == std::istream::traits_type::eof()) return false;
    if (shift >= 63 && (byte & 0x7f) > 1) return false;  // overflow guard
    *value |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return true;
    shift += 7;
    if (shift > 63) return false;
  }
}

}  // namespace

bool WriteBasketsBinary(const TransactionDatabase& db, std::ostream& out) {
  out.write(kMagic, sizeof(kMagic));
  out.put(static_cast<char>(kVersion));
  WriteVarint(out, db.num_items());
  WriteVarint(out, db.num_transactions());
  for (std::size_t t = 0; t < db.num_transactions(); ++t) {
    const Transaction& txn = db.transaction(t);
    WriteVarint(out, txn.size());
    ItemId previous = 0;
    for (std::size_t i = 0; i < txn.size(); ++i) {
      // First id absolute; then strictly increasing gaps, stored as
      // (gap - 1) so consecutive ids cost one byte.
      const std::uint64_t delta =
          i == 0 ? txn[i] : static_cast<std::uint64_t>(txn[i]) - previous - 1;
      WriteVarint(out, delta);
      previous = txn[i];
    }
  }
  return static_cast<bool>(out);
}

bool WriteBasketsBinaryToFile(const TransactionDatabase& db,
                              const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  return out && WriteBasketsBinary(db, out);
}

std::optional<TransactionDatabase> ReadBasketsBinary(std::istream& in,
                                                     std::string* error) {
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    SetError(error, "bad magic (not a CCSB file)");
    return std::nullopt;
  }
  const int version = in.get();
  if (version != kVersion) {
    SetError(error, "unsupported version " + std::to_string(version));
    return std::nullopt;
  }
  std::uint64_t num_items = 0;
  std::uint64_t num_transactions = 0;
  if (!ReadVarint(in, &num_items) || !ReadVarint(in, &num_transactions) ||
      num_items == 0) {
    SetError(error, "truncated or invalid header");
    return std::nullopt;
  }
  TransactionDatabase db(num_items);
  for (std::uint64_t t = 0; t < num_transactions; ++t) {
    std::uint64_t length = 0;
    if (!ReadVarint(in, &length) || length > num_items) {
      SetError(error, "bad transaction length at record " +
                          std::to_string(t));
      return std::nullopt;
    }
    Transaction txn;
    txn.reserve(length);
    std::uint64_t previous = 0;
    for (std::uint64_t i = 0; i < length; ++i) {
      std::uint64_t delta = 0;
      if (!ReadVarint(in, &delta)) {
        SetError(error, "truncated transaction at record " +
                            std::to_string(t));
        return std::nullopt;
      }
      const std::uint64_t id = i == 0 ? delta : previous + 1 + delta;
      if (id >= num_items) {
        SetError(error, "item id out of range at record " +
                            std::to_string(t));
        return std::nullopt;
      }
      txn.push_back(static_cast<ItemId>(id));
      previous = id;
    }
    db.Add(std::move(txn));
  }
  db.Finalize();
  return db;
}

std::optional<TransactionDatabase> ReadBasketsBinaryFromFile(
    const std::string& path, std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    SetError(error, "cannot open " + path);
    return std::nullopt;
  }
  return ReadBasketsBinary(in, error);
}

}  // namespace ccs
