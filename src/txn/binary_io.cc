#include "txn/binary_io.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <istream>
#include <limits>
#include <ostream>

#include "util/fault.h"

namespace ccs {
namespace {

constexpr char kMagic[4] = {'C', 'C', 'S', 'B'};
constexpr std::uint8_t kVersion = 1;

// Largest basket vector reserved up front; longer declared lengths grow
// on demand so a lying length field cannot force a huge allocation before
// the payload runs out.
constexpr std::uint64_t kMaxEagerReserve = 1024;

void WriteVarint(std::ostream& out, std::uint64_t value) {
  while (value >= 0x80) {
    out.put(static_cast<char>((value & 0x7f) | 0x80));
    value >>= 7;
  }
  out.put(static_cast<char>(value));
}

bool ReadVarint(std::istream& in, std::uint64_t* value) {
  *value = 0;
  int shift = 0;
  while (true) {
    const int byte = in.get();
    if (byte == std::istream::traits_type::eof()) return false;
    if (shift >= 63 && (byte & 0x7f) > 1) return false;  // overflow guard
    *value |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return true;
    shift += 7;
    if (shift > 63) return false;
  }
}

// Bytes from the current position to end of stream, or nullopt when the
// stream is not seekable (e.g. a pipe). Restores the read position.
std::optional<std::uint64_t> RemainingBytes(std::istream& in) {
  const std::istream::pos_type here = in.tellg();
  if (here == std::istream::pos_type(-1)) return std::nullopt;
  in.seekg(0, std::ios::end);
  const std::istream::pos_type end = in.tellg();
  in.seekg(here);
  if (end == std::istream::pos_type(-1) || !in) {
    in.clear();
    in.seekg(here);
    return std::nullopt;
  }
  return static_cast<std::uint64_t>(end - here);
}

}  // namespace

bool WriteBasketsBinary(const TransactionDatabase& db, std::ostream& out) {
  out.write(kMagic, sizeof(kMagic));
  out.put(static_cast<char>(kVersion));
  WriteVarint(out, db.num_items());
  WriteVarint(out, db.num_transactions());
  for (std::size_t t = 0; t < db.num_transactions(); ++t) {
    const Transaction& txn = db.transaction(t);
    WriteVarint(out, txn.size());
    ItemId previous = 0;
    for (std::size_t i = 0; i < txn.size(); ++i) {
      // First id absolute; then strictly increasing gaps, stored as
      // (gap - 1) so consecutive ids cost one byte.
      const std::uint64_t delta =
          i == 0 ? txn[i] : static_cast<std::uint64_t>(txn[i]) - previous - 1;
      WriteVarint(out, delta);
      previous = txn[i];
    }
  }
  return static_cast<bool>(out);
}

bool WriteBasketsBinaryToFile(const TransactionDatabase& db,
                              const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  return out && WriteBasketsBinary(db, out);
}

StatusOr<TransactionDatabase> LoadBasketsBinary(std::istream& in) {
  if (FaultInjector::Enabled() && ShouldInjectFault("io")) {
    return DataLossError("injected fault at site 'io'");
  }
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return DataLossError("bad magic (not a CCSB file)");
  }
  const int version = in.get();
  if (version != kVersion) {
    return DataLossError("unsupported version " + std::to_string(version));
  }
  std::uint64_t num_items = 0;
  std::uint64_t num_transactions = 0;
  if (!ReadVarint(in, &num_items) || !ReadVarint(in, &num_transactions) ||
      num_items == 0) {
    return DataLossError("truncated or invalid header");
  }
  if (num_items > std::numeric_limits<ItemId>::max()) {
    return DataLossError("declared item universe " +
                         std::to_string(num_items) +
                         " exceeds the item id range");
  }
  // Preflight: every transaction costs at least one payload byte (its
  // length varint), so a declared count larger than the remaining bytes is
  // corruption — reject it before sizing anything to the counts.
  if (const auto remaining = RemainingBytes(in)) {
    if (num_transactions > *remaining) {
      return DataLossError(
          "declared transaction count " + std::to_string(num_transactions) +
          " overflows the " + std::to_string(*remaining) + "-byte payload");
    }
  }
  TransactionDatabase db(num_items);
  for (std::uint64_t t = 0; t < num_transactions; ++t) {
    std::uint64_t length = 0;
    if (!ReadVarint(in, &length) || length > num_items) {
      return DataLossError("bad transaction length at record " +
                           std::to_string(t));
    }
    Transaction txn;
    txn.reserve(static_cast<std::size_t>(
        length < kMaxEagerReserve ? length : kMaxEagerReserve));
    std::uint64_t previous = 0;
    for (std::uint64_t i = 0; i < length; ++i) {
      std::uint64_t delta = 0;
      if (!ReadVarint(in, &delta)) {
        return DataLossError("truncated transaction at record " +
                             std::to_string(t));
      }
      const std::uint64_t id = i == 0 ? delta : previous + 1 + delta;
      if (id >= num_items) {
        return DataLossError("item id out of range at record " +
                             std::to_string(t));
      }
      txn.push_back(static_cast<ItemId>(id));
      previous = id;
    }
    CCS_RETURN_IF_ERROR(db.AddOrError(std::move(txn)));
  }
  CCS_RETURN_IF_ERROR(db.FinalizeOrError());
  return db;
}

StatusOr<TransactionDatabase> LoadBasketsBinaryFromFile(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return NotFoundError("cannot open " + path);
  }
  return LoadBasketsBinary(in);
}

std::optional<TransactionDatabase> ReadBasketsBinary(std::istream& in,
                                                     std::string* error) {
  StatusOr<TransactionDatabase> db = LoadBasketsBinary(in);
  if (!db.ok()) {
    if (error != nullptr) *error = std::string(db.status().message());
    return std::nullopt;
  }
  return std::move(db).value();
}

std::optional<TransactionDatabase> ReadBasketsBinaryFromFile(
    const std::string& path, std::string* error) {
  StatusOr<TransactionDatabase> db = LoadBasketsBinaryFromFile(path);
  if (!db.ok()) {
    if (error != nullptr) *error = std::string(db.status().message());
    return std::nullopt;
  }
  return std::move(db).value();
}

}  // namespace ccs
