#ifndef CCS_TXN_IO_H_
#define CCS_TXN_IO_H_

#include <iosfwd>
#include <optional>
#include <string>

#include "txn/catalog.h"
#include "txn/database.h"
#include "util/status.h"

namespace ccs {

// Plain-text serialization used by the examples:
//
// Basket files: one transaction per line, space-separated item ids.
// Catalog files: CSV with header "item,price,type[,name]".
//
// The Load* functions are the primary API: they return a Status describing
// the first problem (kDataLoss for malformed content, kNotFound for a
// missing file) and never abort on bad input. The Read* wrappers keep the
// older optional-based shape for existing call sites.

// Writes "id id id\n" lines. Returns false on I/O failure.
bool WriteBaskets(const TransactionDatabase& db, std::ostream& out);
bool WriteBasketsToFile(const TransactionDatabase& db,
                        const std::string& path);

// Reads basket lines. `num_items` fixes the universe; any id >= num_items
// is an error. The returned database is already finalized.
[[nodiscard]] StatusOr<TransactionDatabase> LoadBaskets(
    std::istream& in, std::size_t num_items);
[[nodiscard]] StatusOr<TransactionDatabase> LoadBasketsFromFile(
    const std::string& path, std::size_t num_items);
std::optional<TransactionDatabase> ReadBaskets(std::istream& in,
                                               std::size_t num_items,
                                               std::string* error = nullptr);
std::optional<TransactionDatabase> ReadBasketsFromFile(
    const std::string& path, std::size_t num_items,
    std::string* error = nullptr);

// Catalog CSV round-trip. Items must appear with consecutive ids from 0.
bool WriteCatalog(const ItemCatalog& catalog, std::ostream& out);
bool WriteCatalogToFile(const ItemCatalog& catalog, const std::string& path);
[[nodiscard]] StatusOr<ItemCatalog> LoadCatalog(std::istream& in);
[[nodiscard]] StatusOr<ItemCatalog> LoadCatalogFromFile(
    const std::string& path);
std::optional<ItemCatalog> ReadCatalog(std::istream& in,
                                       std::string* error = nullptr);
std::optional<ItemCatalog> ReadCatalogFromFile(const std::string& path,
                                               std::string* error = nullptr);

}  // namespace ccs

#endif  // CCS_TXN_IO_H_
