#ifndef CCS_TXN_IO_H_
#define CCS_TXN_IO_H_

#include <iosfwd>
#include <optional>
#include <string>

#include "txn/catalog.h"
#include "txn/database.h"

namespace ccs {

// Plain-text serialization used by the examples:
//
// Basket files: one transaction per line, space-separated item ids.
// Catalog files: CSV with header "item,price,type[,name]".
//
// Loaders return std::nullopt on malformed input or I/O failure and report
// the first problem via `error` when non-null.

// Writes "id id id\n" lines. Returns false on I/O failure.
bool WriteBaskets(const TransactionDatabase& db, std::ostream& out);
bool WriteBasketsToFile(const TransactionDatabase& db,
                        const std::string& path);

// Reads basket lines. `num_items` fixes the universe; any id >= num_items
// is an error. The returned database is already finalized.
std::optional<TransactionDatabase> ReadBaskets(std::istream& in,
                                               std::size_t num_items,
                                               std::string* error = nullptr);
std::optional<TransactionDatabase> ReadBasketsFromFile(
    const std::string& path, std::size_t num_items,
    std::string* error = nullptr);

// Catalog CSV round-trip. Items must appear with consecutive ids from 0.
bool WriteCatalog(const ItemCatalog& catalog, std::ostream& out);
bool WriteCatalogToFile(const ItemCatalog& catalog, const std::string& path);
std::optional<ItemCatalog> ReadCatalog(std::istream& in,
                                       std::string* error = nullptr);
std::optional<ItemCatalog> ReadCatalogFromFile(const std::string& path,
                                               std::string* error = nullptr);

}  // namespace ccs

#endif  // CCS_TXN_IO_H_
