#include "txn/profile.h"

#include <algorithm>
#include <cstdio>
#include <limits>

#include "util/check.h"

namespace ccs {

std::size_t DatabaseProfile::NumFrequentItems(
    std::uint64_t min_support) const {
  // sorted_supports is descending: binary search for the boundary.
  const auto it = std::lower_bound(
      sorted_supports.begin(), sorted_supports.end(), min_support,
      [](std::uint64_t support, std::uint64_t threshold) {
        return support >= threshold;
      });
  return static_cast<std::size_t>(it - sorted_supports.begin());
}

std::uint64_t DatabaseProfile::SupportAtRank(std::size_t rank) const {
  CCS_CHECK_LT(rank, sorted_supports.size());
  return sorted_supports[rank];
}

double DatabaseProfile::SupportGini() const {
  if (num_active_items == 0) return 0.0;
  // Gini over the active (non-zero) tail of the descending list, computed
  // with the rank formula over the ascending order.
  double weighted = 0.0;
  double total = 0.0;
  const std::size_t n = num_active_items;
  for (std::size_t i = 0; i < n; ++i) {
    // Ascending rank of the i-th descending entry is n - i.
    const auto support =
        static_cast<double>(sorted_supports[n - 1 - i]);
    weighted += static_cast<double>(2 * (i + 1)) * support;
    total += support;
  }
  if (total == 0.0) return 0.0;
  return (weighted / (static_cast<double>(n) * total)) -
         (static_cast<double>(n) + 1.0) / static_cast<double>(n);
}

std::string DatabaseProfile::ToString() const {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "%zu transactions over %zu items (%zu active)\n"
      "basket size: avg %.2f, min %zu, max %zu\n"
      "support curve: top %llu, median-active %llu, gini %.3f\n",
      num_transactions, num_items, num_active_items, avg_transaction_size,
      min_transaction_size, max_transaction_size,
      static_cast<unsigned long long>(
          sorted_supports.empty() ? 0 : sorted_supports.front()),
      static_cast<unsigned long long>(
          num_active_items == 0 ? 0
                                : sorted_supports[num_active_items / 2]),
      SupportGini());
  return buf;
}

DatabaseProfile DatabaseProfile::Build(const TransactionDatabase& db) {
  CCS_CHECK(db.finalized());
  DatabaseProfile profile;
  profile.num_transactions = db.num_transactions();
  profile.num_items = db.num_items();
  profile.avg_transaction_size = db.AverageTransactionSize();
  profile.min_transaction_size = std::numeric_limits<std::size_t>::max();
  profile.max_transaction_size = 0;
  for (std::size_t t = 0; t < db.num_transactions(); ++t) {
    const std::size_t size = db.transaction(t).size();
    profile.min_transaction_size =
        std::min(profile.min_transaction_size, size);
    profile.max_transaction_size =
        std::max(profile.max_transaction_size, size);
  }
  if (db.num_transactions() == 0) profile.min_transaction_size = 0;
  profile.sorted_supports.reserve(db.num_items());
  for (ItemId i = 0; i < db.num_items(); ++i) {
    profile.sorted_supports.push_back(db.ItemSupport(i));
  }
  std::sort(profile.sorted_supports.begin(), profile.sorted_supports.end(),
            std::greater<>());
  profile.num_active_items = profile.NumFrequentItems(1);
  return profile;
}

}  // namespace ccs
