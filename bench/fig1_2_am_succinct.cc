// Figures 1 and 2: anti-monotone and succinct constraint
// max(S.price) <= v.
//
//   Fig 1(a,b): cpu vs number of baskets at 50% selectivity;
//   Fig 2(a,b): cpu vs selectivity at the largest basket count.
//
// The paper plots BMS+, BMS++ and BMS** (BMS* degenerates to BMS+ for
// anti-monotone constraints, and all four algorithms compute the same
// answers). Expected shape: all linear in baskets; BMS++ clearly below
// BMS+; BMS++/BMS** dropping sharply as selectivity falls while BMS+
// stays flat.

#include "common.h"

#include "constraints/agg_constraint.h"

namespace ccs::bench {
namespace {

constexpr Algorithm kAlgorithms[] = {
    Algorithm::kBmsPlus, Algorithm::kBmsPlusPlus, Algorithm::kBmsStarStar};

ConstraintSet MakeConstraint(const ItemCatalog& catalog, double selectivity) {
  ConstraintSet constraints;
  constraints.Add(MaxLe(PriceThresholdForSelectivity(catalog, selectivity)));
  return constraints;
}

void Figure1(const char* figure_id, const char* dataset, int method) {
  const ItemCatalog catalog = MakeCatalog(method);
  CsvTable table = MakeFigureTable();
  for (std::size_t baskets : BasketSweep()) {
    // Fixed generator seed: the baskets axis scales the same population.
    const TransactionDatabase db =
        method == 1 ? MakeData1(baskets, 42) : MakeData2(baskets, 43);
    const MiningOptions options = StandardOptions(db);
    MiningEngine engine(db, catalog, BenchEngineOptions());
    const ConstraintSet constraints = MakeConstraint(catalog, 0.5);
    for (Algorithm a : kAlgorithms) {
      RunAndRecord(dataset, std::to_string(baskets), a, engine,
                   constraints, options, table);
    }
  }
  ReportFigure(figure_id,
               "cpu vs baskets, max(S.price) <= v, selectivity 50%", table);
}

void Figure2(const char* figure_id, const char* dataset, int method) {
  const ItemCatalog catalog = MakeCatalog(method);
  const std::size_t baskets = BasketSweep().back();
  const TransactionDatabase db =
      method == 1 ? MakeData1(baskets, 42) : MakeData2(baskets, 43);
  const MiningOptions options = StandardOptions(db);
  MiningEngine engine(db, catalog, BenchEngineOptions());
  CsvTable table = MakeFigureTable();
  char x[16];
  for (double selectivity : SelectivitySweep()) {
    std::snprintf(x, sizeof(x), "%.2f", selectivity);
    const ConstraintSet constraints = MakeConstraint(catalog, selectivity);
    for (Algorithm a : kAlgorithms) {
      RunAndRecord(dataset, x, a, engine, constraints, options, table);
    }
  }
  ReportFigure(figure_id, "cpu vs selectivity, max(S.price) <= v", table);
}

}  // namespace
}  // namespace ccs::bench

int main() {
  ccs::bench::Figure1("fig1a", "data1", 1);
  ccs::bench::Figure1("fig1b", "data2", 2);
  ccs::bench::Figure2("fig2a", "data1", 1);
  ccs::bench::Figure2("fig2b", "data2", 2);
  ccs::bench::WriteBenchJson("fig1_2");
  return 0;
}
