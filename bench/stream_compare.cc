// Delta-maintenance versus full re-mine on a streamed figure-1 workload
// (DESIGN.md §15): the same seeded append/tick sequence runs through two
// DeltaMiners — one with the CtDeltaSource oracle live, one with the
// streaming kill switch off so every tick re-mines from scratch — and the
// harness records, per tick, the wall time and the bulk word operations
// each mode spent (in-run ct_word_ops, plus the oracle's own
// delta-database builds for the delta mode). The per-tick rendered answer
// deltas must be byte-identical between the modes — the bit-identity
// contract pinned by tests/stream_differential_test.cc, re-asserted here
// on bench-scale data — and the harness exits non-zero otherwise, so
// bench_smoke doubles as a streaming regression gate.
//
// Output: one table row and one BENCH_stream.json run per (tick, mode),
// with the cumulative word-op ratio in the summary row. Scale via
// CCS_BENCH_SCALE as usual (smoke | default | full).

#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "common.h"
#include "constraints/agg_constraint.h"
#include "stream/delta_miner.h"
#include "stream/streaming_database.h"
#include "util/stopwatch.h"

namespace ccs::bench {
namespace {

struct TickCost {
  std::string rendered;
  double wall_ms = 0.0;
  std::uint64_t word_ops = 0;  // in-run + oracle delta builds
  std::uint64_t window = 0;
  bool full_remine = false;
};

std::vector<TickCost> RunMode(const std::vector<Transaction>& source,
                              const ItemCatalog& catalog,
                              const ConstraintSet& constraints,
                              std::size_t ticks, std::size_t min_support,
                              bool streaming) {
  // Many fine frames and 2-tick coarse frames: each steady-state tick
  // turns over a small slice (~5-10%) of the window, the high-frequency
  // small-batch regime the delta oracle targets — the delta databases
  // stay an order of magnitude smaller than the window, so a dirty
  // recovery's two delta builds undercut a shared-prefix window build.
  // Coarser levels would expire 4+-tick frames at once, making every
  // fourth tick a near-full rebuild.
  stream::StreamOptions window_options;
  window_options.fine_frames = 16;
  window_options.frames_per_level = 2;
  window_options.levels = 2;
  stream::StreamingDatabase db(NumItems(), catalog, window_options);
  EngineOptions engine = BenchEngineOptions();
  engine.streaming = streaming;
  stream::DeltaMiner miner(
      &db,
      [&constraints, min_support](const TransactionDatabase& window) {
        MiningRequest request;
        request.algorithm = Algorithm::kBmsPlusPlus;
        request.options = StandardOptions(window);
        // Absolute support pinned across ticks, as a deployed monitor
        // would: a per-window fraction re-ranks the candidate frontier
        // every time the window size moves, churning the oracle's cache
        // for no analytical gain.
        request.options.min_support = min_support;
        request.constraints = &constraints;
        request.control = BenchRunControl();
        return request;
      },
      engine);

  const std::size_t per_tick = source.size() / ticks;
  std::vector<TickCost> costs;
  std::size_t cursor = 0;
  for (std::size_t tick = 0; tick < ticks; ++tick) {
    const std::size_t stop =
        tick + 1 == ticks ? source.size() : cursor + per_tick;
    for (; cursor < stop; ++cursor) {
      const Status status = db.Append(source[cursor]);
      if (!status.ok()) {
        std::fprintf(stderr, "append: %s\n", status.ToString().c_str());
        std::exit(1);
      }
    }
    Stopwatch timer;
    const stream::AnswerDelta delta = miner.Tick();
    TickCost cost;
    cost.wall_ms = timer.ElapsedSeconds() * 1e3;
    if (delta.result.termination != Termination::kCompleted) {
      std::fprintf(stderr, "tick %zu: termination=%s\n", tick,
                   TerminationName(delta.result.termination));
      std::exit(1);
    }
    cost.rendered = RenderAnswerDelta(delta);
    cost.word_ops = delta.result.stats.ct_word_ops + delta.delta_word_ops;
    cost.window = delta.window_baskets;
    cost.full_remine = delta.full_remine;

    BenchRun run;
    run.workload = "stream_ibm";
    run.x = "tick=" + std::to_string(delta.epoch);
    run.variant = streaming ? "delta" : "full";
    run.threads = BenchThreads() == 0 ? 1 : BenchThreads();
    run.answers = delta.result.answers.size();
    run.wall_ms = cost.wall_ms;
    run.extra.emplace_back("word_ops", static_cast<double>(cost.word_ops));
    run.extra.emplace_back("delta_word_ops",
                           static_cast<double>(delta.delta_word_ops));
    run.extra.emplace_back(
        "tables_built",
        static_cast<double>(delta.result.stats.TotalTablesBuilt()));
    run.extra.emplace_back(
        "recovered",
        static_cast<double>(delta.result.metrics.Value("stream.delta_tables")));
    run.extra.emplace_back(
        "dirty", static_cast<double>(
                     delta.result.metrics.Value("stream.dirty_candidates")));
    run.extra.emplace_back("window_baskets",
                           static_cast<double>(cost.window));
    run.extra.emplace_back("full_remine", cost.full_remine ? 1.0 : 0.0);
    RecordBenchRun(std::move(run));
    costs.push_back(std::move(cost));
  }
  return costs;
}

int Main() {
  const std::size_t total_baskets = BasketSweep().back();
  // Enough ticks that the tilted window saturates (expiry live, stable
  // candidate sets) for the back half of the run — the regime delta
  // maintenance is for. The front half is the warm-up where the window is
  // still growing and nearly every candidate is new. The steady window
  // spans ~20 ticks (16 fine + two 2-tick coarse frames), so every scale
  // leaves at least half the run in steady state.
  const std::size_t ticks =
      GetScale() == Scale::kSmoke ? 40 : GetScale() == Scale::kFull ? 64 : 48;
  const std::vector<Transaction> source =
      MakeData1(total_baskets, /*seed=*/311).transactions();
  const ItemCatalog catalog = MakeCatalog(1);
  ConstraintSet constraints;
  constraints.Add(MaxLe(static_cast<double>(NumItems()) * 0.75));
  // The steady-state window spans ~20 ticks with the options above; pin
  // support at 5% of it, the StandardOptions threshold at that size.
  const std::size_t per_tick = source.size() / ticks;
  const std::size_t min_support = std::max<std::size_t>(2, per_tick);

  const std::vector<TickCost> delta = RunMode(
      source, catalog, constraints, ticks, min_support, /*streaming=*/true);
  const std::vector<TickCost> full = RunMode(
      source, catalog, constraints, ticks, min_support, /*streaming=*/false);

  std::printf("== stream_compare: delta vs full re-mine, %zu baskets "
              "over %zu ticks ==\n",
              source.size(), ticks);
  std::printf("%6s %10s %12s %12s %10s %10s %6s\n", "tick", "window",
              "delta_wops", "full_wops", "delta_ms", "full_ms", "mode");
  bool identical = true;
  std::uint64_t delta_total = 0;
  std::uint64_t full_total = 0;
  for (std::size_t tick = 0; tick < ticks; ++tick) {
    if (delta[tick].rendered != full[tick].rendered) {
      identical = false;
      std::fprintf(stderr,
                   "FAIL: tick %zu answer deltas differ between modes\n",
                   tick + 1);
    }
    delta_total += delta[tick].word_ops;
    full_total += full[tick].word_ops;
    std::printf("%6zu %10llu %12llu %12llu %10.2f %10.2f %6s\n", tick + 1,
                static_cast<unsigned long long>(delta[tick].window),
                static_cast<unsigned long long>(delta[tick].word_ops),
                static_cast<unsigned long long>(full[tick].word_ops),
                delta[tick].wall_ms, full[tick].wall_ms,
                delta[tick].full_remine ? "full" : "delta");
  }
  const double ratio =
      delta_total > 0
          ? static_cast<double>(full_total) / static_cast<double>(delta_total)
          : 0.0;
  std::printf("total word ops: delta=%llu full=%llu (full/delta = %.2fx)\n",
              static_cast<unsigned long long>(delta_total),
              static_cast<unsigned long long>(full_total), ratio);

  BenchRun summary;
  summary.workload = "stream_ibm";
  summary.x = "total";
  summary.variant = "summary";
  summary.extra.emplace_back("delta_word_ops_total",
                             static_cast<double>(delta_total));
  summary.extra.emplace_back("full_word_ops_total",
                             static_cast<double>(full_total));
  summary.extra.emplace_back("full_over_delta", ratio);
  summary.extra.emplace_back("identical", identical ? 1.0 : 0.0);
  RecordBenchRun(std::move(summary));
  WriteBenchJson("stream");
  if (!identical) return 1;
  std::printf("answer streams identical across modes\n");
  return 0;
}

}  // namespace
}  // namespace ccs::bench

int main() { return ccs::bench::Main(); }
