#ifndef CCS_BENCH_COMMON_H_
#define CCS_BENCH_COMMON_H_

// Shared harness for the figure-reproduction benchmarks. Every figure
// binary sweeps a parameter (basket count or constraint selectivity) over
// the two synthetic data sets of the paper, runs the algorithms the figure
// compares, and prints one row per (data set, x, algorithm) with the cpu
// time and the sets-considered counter (the paper's cost unit).
//
// Scale: the paper's machine is a 200 MHz Pentium; absolute axes differ.
// CCS_BENCH_SCALE=full grows the sweep to paper-like basket counts,
// CCS_BENCH_SCALE=smoke shrinks it for CI. Default: a laptop-minute scale.
// CCS_BENCH_CSV_DIR=<dir>: also write each figure's series as CSV there.
// CCS_BENCH_THREADS=<n>: MiningEngine executor width (default 1, so the
// published series stay comparable with the paper's single-core numbers;
// 0 = one thread per hardware thread). Answers and tables_built are
// identical for every value — only cpu_ms moves.
// CCS_BENCH_TIMEOUT_MS=<n> / CCS_BENCH_MAX_TABLES=<n>: per-run deadline
// and table budget for exploratory sweeps on big inputs. A tripped run is
// recorded with its partial counters and flagged on stderr — partial rows
// are NOT comparable with the paper's complete-run series.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "constraints/constraint_set.h"
#include "core/engine.h"
#include "core/run_control.h"
#include "datagen/catalog_generator.h"
#include "txn/database.h"
#include "util/csv.h"

namespace ccs::bench {

// Benchmark scale from CCS_BENCH_SCALE (smoke | default | full).
enum class Scale { kSmoke, kDefault, kFull };
Scale GetScale();

// The basket-count sweep for "cpu vs number of baskets" figures.
std::vector<std::size_t> BasketSweep();

// The selectivity sweep for "cpu vs selectivity" figures.
std::vector<double> SelectivitySweep();

// Number of catalog items used by all figure benches.
std::size_t NumItems();

// Data set 1: IBM Quest-style (Agrawal-Srikant), "simulate the real world".
TransactionDatabase MakeData1(std::size_t num_baskets, std::uint64_t seed);

// Data set 2: planted correlation rules ("known in advance").
TransactionDatabase MakeData2(std::size_t num_baskets, std::uint64_t seed);

// The experiments' catalog. Method 1 (IBM data): price(i) = i + 1 ("item 1
// has a price of $1"). Method 2 (rule data): the same price ladder under a
// fixed permutation, so the planted rule items (low ids) spread across the
// price range instead of all being cheap.
ItemCatalog MakeCatalog(int method);

// The paper's statistical parameters, scaled to the database: alpha = 0.9
// chi-squared confidence, support fraction of the basket count, cell
// fraction p% = 25%, level cap 4 (the paper's correlations never exceeded
// size 4).
MiningOptions StandardOptions(const TransactionDatabase& db);

// Executor width from CCS_BENCH_THREADS (see header comment).
std::size_t BenchThreads();

// EngineOptions for a figure harness: BenchThreads() wide, no progress
// callback. Harnesses construct one MiningEngine per database:
//   MiningEngine engine(db, catalog, BenchEngineOptions());
EngineOptions BenchEngineOptions();

// Per-run RunControl from CCS_BENCH_TIMEOUT_MS / CCS_BENCH_MAX_TABLES
// (see header comment). Unlimited when neither is set.
RunControl BenchRunControl();

// One measured run appended to `table` as
// (dataset, x, algorithm, answers, tables_built, cpu_ms). Also feeds the
// BENCH_<name>.json collector (RecordEngineRun below).
void RunAndRecord(const char* dataset, const std::string& x,
                  Algorithm algorithm, MiningEngine& engine,
                  const ConstraintSet& constraints,
                  const MiningOptions& options, CsvTable& table);

// ---- BENCH_<name>.json (schema in docs/ALGORITHMS.md) -------------------
//
// Every bench binary funnels its measured runs into one process-wide
// collector and dumps it on exit as BENCH_<name>.json in the working
// directory:
//   {"schema_version": 1, "bench": <name>, "scale": smoke|default|full,
//    "runs": [{workload, x, variant, threads, cache, termination, answers,
//              wall_ms, extra{...}, metrics{...}}]}
// `extra` holds bench-specific numbers (work units, word ops, ...);
// `metrics` holds the scalar dump of the run's MetricsRegistry snapshot
// when the run came from a MiningEngine with metrics enabled.

// One run in the dump. `variant` names the algorithm or framework.
struct BenchRun {
  std::string workload;
  std::string x;
  std::string variant;
  std::size_t threads = 1;
  bool cache_on = true;
  std::string termination = "completed";
  std::uint64_t answers = 0;
  double wall_ms = 0.0;
  std::vector<std::pair<std::string, double>> extra;
  std::vector<std::pair<std::string, std::uint64_t>> metrics;
};

// Appends one run to the process-wide collector.
void RecordBenchRun(BenchRun run);

// BenchRun from an engine run: threads and cache mode from the engine,
// termination/answers/wall time from the result, `metrics` from the
// result's registry snapshot (empty when metrics are disabled).
void RecordEngineRun(const std::string& workload, const std::string& x,
                     Algorithm algorithm, const MiningEngine& engine,
                     const MiningResult& result);

// Writes the collected runs as BENCH_<name>.json in the working directory
// and clears the collector. Returns false (with a stderr warning) if the
// file cannot be written.
bool WriteBenchJson(const std::string& name);

// Prints the table under a figure banner and, when CCS_BENCH_CSV_DIR is
// set, writes <dir>/<figure_id>.csv.
void ReportFigure(const std::string& figure_id, const std::string& title,
                  const CsvTable& table);

// The standard column set for figure tables.
CsvTable MakeFigureTable();

}  // namespace ccs::bench

#endif  // CCS_BENCH_COMMON_H_
