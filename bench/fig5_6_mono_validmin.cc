// Figures 5 and 6: monotone and succinct constraint min(S.price) <= v,
// VALID MINIMAL semantics — Algorithms BMS+ vs BMS++.
//
//   Fig 5(a,b): cpu vs number of baskets at 50% selectivity;
//   Fig 6(a,b): cpu vs selectivity at the largest basket count.
//
// Expected shape: both linear in baskets with BMS++ below BMS+ (~70% at
// 50% selectivity in the paper); as selectivity falls to 10% BMS++ drops
// to a fraction of BMS+, converging to BMS+ above ~70% selectivity.

#include "common.h"

#include "constraints/agg_constraint.h"

namespace ccs::bench {
namespace {

constexpr Algorithm kAlgorithms[] = {Algorithm::kBmsPlus,
                                     Algorithm::kBmsPlusPlus};

ConstraintSet MakeConstraint(const ItemCatalog& catalog, double selectivity) {
  ConstraintSet constraints;
  constraints.Add(MinLe(PriceThresholdForSelectivity(catalog, selectivity)));
  return constraints;
}

void Figure5(const char* figure_id, const char* dataset, int method) {
  const ItemCatalog catalog = MakeCatalog(method);
  CsvTable table = MakeFigureTable();
  for (std::size_t baskets : BasketSweep()) {
    // Fixed generator seed: the baskets axis scales the same population.
    const TransactionDatabase db =
        method == 1 ? MakeData1(baskets, 42) : MakeData2(baskets, 43);
    const MiningOptions options = StandardOptions(db);
    MiningEngine engine(db, catalog, BenchEngineOptions());
    const ConstraintSet constraints = MakeConstraint(catalog, 0.5);
    for (Algorithm a : kAlgorithms) {
      RunAndRecord(dataset, std::to_string(baskets), a, engine,
                   constraints, options, table);
    }
  }
  ReportFigure(figure_id,
               "cpu vs baskets, min(S.price) <= v, selectivity 50%, "
               "valid minimal answers",
               table);
}

void Figure6(const char* figure_id, const char* dataset, int method) {
  const ItemCatalog catalog = MakeCatalog(method);
  const std::size_t baskets = BasketSweep().back();
  const TransactionDatabase db =
      method == 1 ? MakeData1(baskets, 42) : MakeData2(baskets, 43);
  const MiningOptions options = StandardOptions(db);
  MiningEngine engine(db, catalog, BenchEngineOptions());
  CsvTable table = MakeFigureTable();
  char x[16];
  for (double selectivity : SelectivitySweep()) {
    std::snprintf(x, sizeof(x), "%.2f", selectivity);
    const ConstraintSet constraints = MakeConstraint(catalog, selectivity);
    for (Algorithm a : kAlgorithms) {
      RunAndRecord(dataset, x, a, engine, constraints, options, table);
    }
  }
  ReportFigure(figure_id,
               "cpu vs selectivity, min(S.price) <= v, valid minimal "
               "answers",
               table);
}

}  // namespace
}  // namespace ccs::bench

int main() {
  ccs::bench::Figure5("fig5a", "data1", 1);
  ccs::bench::Figure5("fig5b", "data2", 2);
  ccs::bench::Figure6("fig6a", "data1", 1);
  ccs::bench::Figure6("fig6b", "data2", 2);
  ccs::bench::WriteBenchJson("fig5_6");
  return 0;
}
