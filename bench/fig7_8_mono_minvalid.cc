// Figures 7 and 8: monotone and succinct constraint min(S.price) <= v,
// MINIMAL VALID semantics — Algorithms BMS* vs BMS**.
//
//   Fig 7(a,b): cpu vs number of baskets at 50% selectivity (deliberately
//               unfavourable for BMS**, as in the paper);
//   Fig 8(a,b): cpu vs selectivity at the largest basket count, showing
//               the crossover: BMS** wins below ~20% selectivity, BMS*
//               above.

#include "common.h"

#include "constraints/agg_constraint.h"

namespace ccs::bench {
namespace {

constexpr Algorithm kAlgorithms[] = {Algorithm::kBmsStar,
                                     Algorithm::kBmsStarStar};

ConstraintSet MakeConstraint(const ItemCatalog& catalog, double selectivity) {
  ConstraintSet constraints;
  constraints.Add(MinLe(PriceThresholdForSelectivity(catalog, selectivity)));
  return constraints;
}

void Figure7(const char* figure_id, const char* dataset, int method) {
  const ItemCatalog catalog = MakeCatalog(method);
  CsvTable table = MakeFigureTable();
  for (std::size_t baskets : BasketSweep()) {
    // Fixed generator seed: the baskets axis scales the same population.
    const TransactionDatabase db =
        method == 1 ? MakeData1(baskets, 42) : MakeData2(baskets, 43);
    const MiningOptions options = StandardOptions(db);
    MiningEngine engine(db, catalog, BenchEngineOptions());
    const ConstraintSet constraints = MakeConstraint(catalog, 0.5);
    for (Algorithm a : kAlgorithms) {
      RunAndRecord(dataset, std::to_string(baskets), a, engine,
                   constraints, options, table);
    }
  }
  ReportFigure(figure_id,
               "cpu vs baskets, min(S.price) <= v, selectivity 50%, "
               "minimal valid answers",
               table);
}

void Figure8(const char* figure_id, const char* dataset, int method) {
  const ItemCatalog catalog = MakeCatalog(method);
  const std::size_t baskets = BasketSweep().back();
  const TransactionDatabase db =
      method == 1 ? MakeData1(baskets, 42) : MakeData2(baskets, 43);
  const MiningOptions options = StandardOptions(db);
  MiningEngine engine(db, catalog, BenchEngineOptions());
  CsvTable table = MakeFigureTable();
  char x[16];
  for (double selectivity : SelectivitySweep()) {
    std::snprintf(x, sizeof(x), "%.2f", selectivity);
    const ConstraintSet constraints = MakeConstraint(catalog, selectivity);
    for (Algorithm a : kAlgorithms) {
      RunAndRecord(dataset, x, a, engine, constraints, options, table);
    }
  }
  ReportFigure(figure_id,
               "cpu vs selectivity, min(S.price) <= v, minimal valid "
               "answers",
               table);
}

}  // namespace
}  // namespace ccs::bench

int main() {
  ccs::bench::Figure7("fig7a", "data1", 1);
  ccs::bench::Figure7("fig7b", "data2", 2);
  ccs::bench::Figure8("fig8a", "data1", 1);
  ccs::bench::Figure8("fig8b", "data2", 2);
  ccs::bench::WriteBenchJson("fig7_8");
  return 0;
}
