#include "common.h"

#include <cstdio>
#include <cstdlib>
#include <string>

#include "datagen/ibm_generator.h"
#include "datagen/rule_generator.h"

namespace ccs::bench {

Scale GetScale() {
  const char* env = std::getenv("CCS_BENCH_SCALE");
  if (env == nullptr) return Scale::kDefault;
  const std::string value(env);
  if (value == "smoke") return Scale::kSmoke;
  if (value == "full") return Scale::kFull;
  return Scale::kDefault;
}

std::vector<std::size_t> BasketSweep() {
  switch (GetScale()) {
    case Scale::kSmoke:
      return {1000, 2000};
    case Scale::kDefault:
      // Start at the paper's 10k: below that the chi-squared test is still
      // gaining power on weakly dependent pairs, so per-level candidate
      // counts have not yet stabilized and the cpu-vs-baskets trend mixes
      // two effects.
      return {10000, 20000, 30000, 40000, 50000};
    case Scale::kFull:
      // The paper's axis: 10k .. 100k baskets.
      return {10000, 25000, 50000, 75000, 100000};
  }
  return {};
}

std::vector<double> SelectivitySweep() {
  if (GetScale() == Scale::kSmoke) return {0.2, 0.6};
  // The paper's axis: 10% .. 80%.
  return {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8};
}

std::size_t NumItems() { return 100; }

TransactionDatabase MakeData1(std::size_t num_baskets, std::uint64_t seed) {
  IbmGeneratorConfig config;
  config.num_transactions = num_baskets;
  config.num_items = NumItems();
  // The paper's |T| = 20, |I| = 4, scaled to the 100-item universe so item
  // frequencies keep the same order of magnitude as 20/1000.
  config.avg_transaction_size = 10.0;
  config.avg_pattern_size = 4.0;
  config.num_patterns = 50;
  config.seed = seed;
  return IbmGenerator(config).Generate();
}

TransactionDatabase MakeData2(std::size_t num_baskets, std::uint64_t seed) {
  RuleGeneratorConfig config;
  config.num_transactions = num_baskets;
  config.num_items = NumItems();
  config.avg_transaction_size = 10.0;
  // "the synthetic data was generated based on ten given correlation
  // rules", significance 0.95, supports in [0.7, 0.9].
  config.num_rules = 10;
  config.rule_size = 2;
  config.support_min = 0.70;
  config.support_max = 0.90;
  config.seed = seed;
  return RuleGenerator(config).Generate();
}

ItemCatalog MakeCatalog(int method) {
  if (method == 2) return MakeScrambledPriceCatalog(NumItems(), 9001);
  return MakeLinearPriceCatalog(NumItems());
}

MiningOptions StandardOptions(const TransactionDatabase& db) {
  MiningOptions options;
  options.significance = 0.9;  // the paper's chi-squared confidence
  // A 5% frequency threshold plays the role the paper's 25% threshold
  // plays at 1000 items: it keeps the frequent universe a manageable
  // subset of the catalog (see DESIGN.md deviation 6).
  options.min_support = db.num_transactions() / 20;
  options.min_cell_fraction = 0.25;  // the paper's p%
  options.max_set_size = 4;
  return options;
}

std::size_t BenchThreads() {
  const char* env = std::getenv("CCS_BENCH_THREADS");
  if (env == nullptr) return 1;
  return static_cast<std::size_t>(std::strtoul(env, nullptr, 10));
}

EngineOptions BenchEngineOptions() {
  EngineOptions options;
  options.num_threads = BenchThreads();
  return options;
}

RunControl BenchRunControl() {
  RunControl control;
  if (const char* env = std::getenv("CCS_BENCH_TIMEOUT_MS")) {
    control.timeout =
        std::chrono::milliseconds(std::strtoull(env, nullptr, 10));
  }
  if (const char* env = std::getenv("CCS_BENCH_MAX_TABLES")) {
    control.max_tables_built = std::strtoull(env, nullptr, 10);
  }
  return control;
}

void RunAndRecord(const char* dataset, const std::string& x,
                  Algorithm algorithm, MiningEngine& engine,
                  const ConstraintSet& constraints,
                  const MiningOptions& options, CsvTable& table) {
  MiningRequest request;
  request.algorithm = algorithm;
  request.options = options;
  request.constraints = &constraints;
  request.control = BenchRunControl();
  const MiningResult result = engine.Run(request);
  RecordEngineRun(dataset, x, algorithm, engine, result);
  if (result.partial()) {
    std::fprintf(stderr,
                 "warning: %s x=%s %s run %s after %llu level passes — "
                 "row holds partial counters\n",
                 dataset, x.c_str(), AlgorithmName(algorithm),
                 TerminationName(result.termination),
                 static_cast<unsigned long long>(
                     result.stats.levels_completed));
  }
  table.BeginRow();
  table.AddCell(std::string(dataset));
  table.AddCell(x);
  table.AddCell(std::string(AlgorithmName(algorithm)));
  table.AddCell(static_cast<std::uint64_t>(result.answers.size()));
  table.AddCell(result.stats.TotalTablesBuilt());
  table.AddCell(result.stats.elapsed_seconds * 1e3, 1);
}

CsvTable MakeFigureTable() {
  return CsvTable(
      {"dataset", "x", "algorithm", "answers", "tables_built", "cpu_ms"});
}

namespace {

std::vector<BenchRun>& BenchRunCollector() {
  static std::vector<BenchRun> runs;
  return runs;
}

const char* ScaleName(Scale scale) {
  switch (scale) {
    case Scale::kSmoke:
      return "smoke";
    case Scale::kFull:
      return "full";
    case Scale::kDefault:
      break;
  }
  return "default";
}

void AppendJsonString(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  out += '"';
}

void AppendDouble(std::string& out, double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.3f", value);
  out += buffer;
}

}  // namespace

void RecordBenchRun(BenchRun run) {
  BenchRunCollector().push_back(std::move(run));
}

void RecordEngineRun(const std::string& workload, const std::string& x,
                     Algorithm algorithm, const MiningEngine& engine,
                     const MiningResult& result) {
  BenchRun run;
  run.workload = workload;
  run.x = x;
  run.variant = AlgorithmName(algorithm);
  run.threads = engine.num_threads();
  run.cache_on = engine.ct_cache().enabled;
  run.termination = TerminationName(result.termination);
  run.answers = result.answers.size();
  run.wall_ms = result.stats.elapsed_seconds * 1e3;
  if (result.metrics.enabled) {
    run.metrics.reserve(result.metrics.scalars.size());
    for (const MetricScalar& scalar : result.metrics.scalars) {
      run.metrics.emplace_back(scalar.name, scalar.value);
    }
  }
  RecordBenchRun(std::move(run));
}

bool WriteBenchJson(const std::string& name) {
  std::string out = "{\n  \"schema_version\": 1,\n  \"bench\": ";
  AppendJsonString(out, name);
  out += ",\n  \"scale\": ";
  AppendJsonString(out, ScaleName(GetScale()));
  out += ",\n  \"runs\": [";
  bool first_run = true;
  for (const BenchRun& run : BenchRunCollector()) {
    out += first_run ? "\n" : ",\n";
    first_run = false;
    out += "    {\"workload\": ";
    AppendJsonString(out, run.workload);
    out += ", \"x\": ";
    AppendJsonString(out, run.x);
    out += ", \"variant\": ";
    AppendJsonString(out, run.variant);
    out += ", \"threads\": " + std::to_string(run.threads);
    out += std::string(", \"cache\": ") + (run.cache_on ? "true" : "false");
    out += ", \"termination\": ";
    AppendJsonString(out, run.termination);
    out += ", \"answers\": " + std::to_string(run.answers);
    out += ", \"wall_ms\": ";
    AppendDouble(out, run.wall_ms);
    out += ", \"extra\": {";
    for (std::size_t i = 0; i < run.extra.size(); ++i) {
      if (i > 0) out += ", ";
      AppendJsonString(out, run.extra[i].first);
      out += ": ";
      AppendDouble(out, run.extra[i].second);
    }
    out += "}, \"metrics\": {";
    for (std::size_t i = 0; i < run.metrics.size(); ++i) {
      if (i > 0) out += ", ";
      AppendJsonString(out, run.metrics[i].first);
      out += ": " + std::to_string(run.metrics[i].second);
    }
    out += "}}";
  }
  out += "\n  ]\n}\n";
  BenchRunCollector().clear();
  const std::string path = "BENCH_" + name + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr ||
      std::fwrite(out.data(), 1, out.size(), f) != out.size()) {
    if (f != nullptr) std::fclose(f);
    std::fprintf(stderr, "warning: could not write %s\n", path.c_str());
    return false;
  }
  std::fclose(f);
  return true;
}

void ReportFigure(const std::string& figure_id, const std::string& title,
                  const CsvTable& table) {
  std::printf("\n==== %s: %s ====\n%s", figure_id.c_str(), title.c_str(),
              table.ToAlignedText().c_str());
  std::fflush(stdout);
  const char* dir = std::getenv("CCS_BENCH_CSV_DIR");
  if (dir != nullptr) {
    const std::string path = std::string(dir) + "/" + figure_id + ".csv";
    if (!table.WriteFile(path)) {
      std::fprintf(stderr, "warning: could not write %s\n", path.c_str());
    }
  }
}

}  // namespace ccs::bench
