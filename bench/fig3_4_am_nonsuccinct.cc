// Figures 3 and 4: anti-monotone but not succinct constraint
// sum(S.price) <= maxsum.
//
//   Fig 3(a,b): cpu vs number of baskets at a mid-range maxsum;
//   Fig 4(a,b): cpu vs maxsum at the largest basket count.
//
// With the catalog's price(i) = i + 1 over 100 items, pair sums reach
// ~200 and size-4 sums ~400, so the maxsum axis spans 25..400 (the paper's
// 0..4000 over 1000 items, scaled). Expected shape: BMS++ <= BMS+ always;
// BMS** and BMS+ cross over — BMS** wins at small maxsum (strong pruning)
// and loses once the constraint stops pruning; at the top of the axis
// BMS++ converges to BMS+.

#include "common.h"

#include "constraints/agg_constraint.h"

namespace ccs::bench {
namespace {

constexpr Algorithm kAlgorithms[] = {
    Algorithm::kBmsPlus, Algorithm::kBmsPlusPlus, Algorithm::kBmsStarStar};

std::vector<double> MaxsumSweep() {
  if (GetScale() == Scale::kSmoke) return {50.0, 200.0};
  return {25.0, 50.0, 100.0, 150.0, 200.0, 300.0, 400.0};
}

void Figure3(const char* figure_id, const char* dataset, int method) {
  const ItemCatalog catalog = MakeCatalog(method);
  CsvTable table = MakeFigureTable();
  for (std::size_t baskets : BasketSweep()) {
    // Fixed generator seed: the baskets axis scales the same population.
    const TransactionDatabase db =
        method == 1 ? MakeData1(baskets, 42) : MakeData2(baskets, 43);
    const MiningOptions options = StandardOptions(db);
    MiningEngine engine(db, catalog, BenchEngineOptions());
    ConstraintSet constraints;
    constraints.Add(SumLe(100.0));
    for (Algorithm a : kAlgorithms) {
      RunAndRecord(dataset, std::to_string(baskets), a, engine,
                   constraints, options, table);
    }
  }
  ReportFigure(figure_id, "cpu vs baskets, sum(S.price) <= 100", table);
}

void Figure4(const char* figure_id, const char* dataset, int method) {
  const ItemCatalog catalog = MakeCatalog(method);
  const std::size_t baskets = BasketSweep().back();
  const TransactionDatabase db =
      method == 1 ? MakeData1(baskets, 42) : MakeData2(baskets, 43);
  const MiningOptions options = StandardOptions(db);
  MiningEngine engine(db, catalog, BenchEngineOptions());
  CsvTable table = MakeFigureTable();
  for (double maxsum : MaxsumSweep()) {
    ConstraintSet constraints;
    constraints.Add(SumLe(maxsum));
    for (Algorithm a : kAlgorithms) {
      RunAndRecord(dataset, std::to_string(static_cast<int>(maxsum)), a,
                   engine, constraints, options, table);
    }
  }
  ReportFigure(figure_id, "cpu vs maxsum, sum(S.price) <= maxsum", table);
}

}  // namespace
}  // namespace ccs::bench

int main() {
  ccs::bench::Figure3("fig3a", "data1", 1);
  ccs::bench::Figure3("fig3b", "data2", 2);
  ccs::bench::Figure4("fig4a", "data1", 1);
  ccs::bench::Figure4("fig4b", "data2", 2);
  ccs::bench::WriteBenchJson("fig3_4");
  return 0;
}
