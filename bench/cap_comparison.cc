// Constrained frequent sets (the CAP framework of Ng et al., which the
// paper extends) vs constrained correlated sets (this paper), on the same
// data, constraints and thresholds: output sizes and database work. Shows
// why the paper argues for minimal correlated sets — the frequent-set
// answer grows combinatorially while the correlated answer stays the size
// of its border — and that the constraint-pushing machinery benefits both
// frameworks.

#include <cstdio>

#include "assoc/constrained_apriori.h"
#include "common.h"
#include "constraints/agg_constraint.h"
#include "core/engine.h"
#include "datagen/catalog_generator.h"
#include "datagen/ibm_generator.h"
#include "util/csv.h"

namespace ccs {
namespace {

void Run() {
  IbmGeneratorConfig config;
  config.num_transactions = 10000;
  config.num_items = 100;
  config.avg_transaction_size = 10.0;
  config.avg_pattern_size = 4.0;
  config.num_patterns = 50;
  config.seed = 42;
  const TransactionDatabase db = IbmGenerator(config).Generate();
  const ItemCatalog catalog = MakeLinearPriceCatalog(config.num_items);

  MiningOptions corr_options;
  corr_options.significance = 0.9;
  corr_options.min_support = db.num_transactions() / 20;
  corr_options.min_cell_fraction = 0.25;
  corr_options.max_set_size = 4;
  AprioriOptions freq_options;
  freq_options.min_support = corr_options.min_support;
  freq_options.max_set_size = corr_options.max_set_size;

  MiningEngine engine(db, catalog);
  CsvTable table({"selectivity", "framework", "answers", "work_units",
                  "cpu_ms"});
  for (double selectivity : {0.2, 0.5, 0.8}) {
    ConstraintSet constraints;
    constraints.Add(
        MaxLe(PriceThresholdForSelectivity(catalog, selectivity)));
    const AprioriResult frequent =
        MineConstrainedApriori(db, catalog, constraints, freq_options);
    char x[16];
    std::snprintf(x, sizeof(x), "%.1f", selectivity);
    bench::BenchRun freq_run;
    freq_run.workload = "ibm10k";
    freq_run.x = x;
    freq_run.variant = "CAP frequent sets";
    freq_run.answers = frequent.frequent.size();
    freq_run.wall_ms = frequent.stats.elapsed_seconds * 1e3;
    freq_run.extra = {{"work_units",
                       static_cast<double>(frequent.stats.TotalTablesBuilt())}};
    bench::RecordBenchRun(std::move(freq_run));
    table.BeginRow();
    table.AddCell(selectivity, 2);
    table.AddCell(std::string("CAP frequent sets"));
    table.AddCell(static_cast<std::uint64_t>(frequent.frequent.size()));
    table.AddCell(frequent.stats.TotalTablesBuilt());
    table.AddCell(frequent.stats.elapsed_seconds * 1e3, 1);
    MiningRequest request;
    request.algorithm = Algorithm::kBmsPlusPlus;
    request.options = corr_options;
    request.constraints = &constraints;
    const MiningResult correlated = engine.Run(request);
    bench::RecordEngineRun("ibm10k", x, Algorithm::kBmsPlusPlus, engine,
                           correlated);
    table.BeginRow();
    table.AddCell(selectivity, 2);
    table.AddCell(std::string("BMS++ correlated"));
    table.AddCell(static_cast<std::uint64_t>(correlated.answers.size()));
    table.AddCell(correlated.stats.TotalTablesBuilt());
    table.AddCell(correlated.stats.elapsed_seconds * 1e3, 1);
  }
  std::printf("==== constrained frequent (CAP) vs constrained correlated "
              "(BMS++) ====\n");
  std::printf("constraint: max(S.price) <= v; work_units = support counts "
              "resp. contingency tables\n\n%s",
              table.ToAlignedText().c_str());
}

}  // namespace
}  // namespace ccs

int main() {
  ccs::Run();
  ccs::bench::WriteBenchJson("cap_comparison");
  return 0;
}
