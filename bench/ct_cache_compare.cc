// Head-to-head of the two contingency-table paths on the figure-1/2
// workload: the per-candidate recursion (ct_cache off) versus the
// prefix-sharing batch path with the intersection cache (on).
//
// For each data set the query runs at max_set_size 2, 3 and 4 on a
// single thread; differencing the cumulative ct_word_ops between runs
// attributes bulk bitset work to each lattice level (the level-wise
// sweeps do exactly the same level-k work regardless of the cap, so the
// diffs are exact). The harness asserts the answer sets are byte-identical
// across the two paths and writes the series — word ops and wall time per
// level and path, with on/off ratios — to BENCH_ct_cache.json in the
// working directory. The kernel axis (EngineOptions::simd_kernel) rides
// along: each CT path also runs with the vector kernel + k=2 pair stage,
// and all four answer sets must agree (bench/simd_kernel_compare.cc owns
// the kernel cost comparison itself).
//
// Scale via CCS_BENCH_SCALE as usual (smoke | default | full).

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common.h"
#include "constraints/agg_constraint.h"
#include "datagen/catalog_generator.h"
#include "util/stopwatch.h"

namespace ccs::bench {
namespace {

constexpr std::size_t kMaxLevel = 4;

struct PathRun {
  // Cumulative over the whole run, indexed by max_set_size (2..kMaxLevel).
  std::uint64_t word_ops[kMaxLevel + 1] = {0};
  double wall_ms[kMaxLevel + 1] = {0.0};
  std::vector<Itemset> answers;  // at max_set_size == kMaxLevel
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_evictions = 0;
};

PathRun RunPath(const char* dataset, const TransactionDatabase& db,
                const ItemCatalog& catalog, const ConstraintSet& constraints,
                const MiningOptions& base_options, bool cache, bool simd) {
  PathRun run;
  for (std::size_t max_k = 2; max_k <= kMaxLevel; ++max_k) {
    EngineOptions eopts;
    eopts.num_threads = 1;  // keeps ct_word_ops exact and comparable
    eopts.ct_cache = cache;
    eopts.simd_kernel = simd;
    MiningEngine engine(db, catalog, eopts);
    MiningRequest request;
    request.algorithm = Algorithm::kBmsPlusPlus;
    request.options = base_options;
    request.options.max_set_size = max_k;
    request.constraints = &constraints;
    Stopwatch timer;
    const MiningResult result = engine.Run(request);
    RecordEngineRun(dataset,
                    "max_k=" + std::to_string(max_k) + ",simd=" +
                        (simd ? "1" : "0"),
                    Algorithm::kBmsPlusPlus, engine, result);
    run.wall_ms[max_k] = timer.ElapsedSeconds() * 1e3;
    run.word_ops[max_k] = result.stats.ct_word_ops;
    if (max_k == kMaxLevel) {
      run.answers = result.answers;
      run.cache_hits = result.stats.ct_cache_hits;
      run.cache_misses = result.stats.ct_cache_misses;
      run.cache_evictions = result.stats.ct_cache_evictions;
    }
  }
  return run;
}

double Ratio(double off, double on) { return on > 0.0 ? off / on : 0.0; }

bool CompareDataset(const char* name, int method) {
  const std::size_t baskets = BasketSweep().back();
  const TransactionDatabase db =
      method == 1 ? MakeData1(baskets, 42) : MakeData2(baskets, 43);
  const ItemCatalog catalog = MakeCatalog(method);
  ConstraintSet constraints;
  constraints.Add(
      MaxLe(PriceThresholdForSelectivity(catalog, 0.5)));
  const MiningOptions options = StandardOptions(db);

  // The kernel axis rides along: both CT paths run with the vector
  // kernel + pair stage and again fully scalar. All four answer sets must
  // be byte-identical; the level diffs below compare the cache paths with
  // the kernel held scalar so the attribution stays exact (with the pair
  // stage on, level 2 does no bulk word ops at all).
  const PathRun on = RunPath(name, db, catalog, constraints, options,
                             /*cache=*/true, /*simd=*/false);
  const PathRun off = RunPath(name, db, catalog, constraints, options,
                              /*cache=*/false, /*simd=*/false);
  const PathRun on_simd = RunPath(name, db, catalog, constraints, options,
                                  /*cache=*/true, /*simd=*/true);
  const PathRun off_simd = RunPath(name, db, catalog, constraints, options,
                                   /*cache=*/false, /*simd=*/true);
  const bool identical = on.answers == off.answers &&
                         on.answers == on_simd.answers &&
                         on.answers == off_simd.answers;

  std::printf("%s (%zu baskets): answers %s (%zu sets)\n", name, baskets,
              identical ? "identical" : "MISMATCH", on.answers.size());
  // One summary run per dataset plus one per-level diff run: run at cap k
  // minus run at cap k-1 = exactly the level-k pass (the cap-2 run's total
  // is level 2 plus the shared level-1 setup).
  BenchRun summary;
  summary.workload = name;
  summary.x = std::to_string(baskets);
  summary.variant = "summary";
  summary.answers = on.answers.size();
  summary.extra = {
      {"answers_identical", identical ? 1.0 : 0.0},
      {"cache_hits", static_cast<double>(on.cache_hits)},
      {"cache_misses", static_cast<double>(on.cache_misses)},
      {"cache_evictions", static_cast<double>(on.cache_evictions)},
      {"word_ops_cap4_simd_on",
       static_cast<double>(on_simd.word_ops[kMaxLevel])},
      {"word_ops_cap4_simd_off",
       static_cast<double>(off_simd.word_ops[kMaxLevel])}};
  RecordBenchRun(std::move(summary));
  for (std::size_t level = 2; level <= kMaxLevel; ++level) {
    const std::uint64_t on_ops = on.word_ops[level] - on.word_ops[level - 1];
    const std::uint64_t off_ops =
        off.word_ops[level] - off.word_ops[level - 1];
    const double on_ms = on.wall_ms[level];
    const double off_ms = off.wall_ms[level];
    const double op_ratio =
        Ratio(static_cast<double>(off_ops), static_cast<double>(on_ops));
    BenchRun diff;
    diff.workload = name;
    diff.x = std::to_string(level);
    diff.variant = "level_diff";
    diff.extra = {{"word_ops_on", static_cast<double>(on_ops)},
                  {"word_ops_off", static_cast<double>(off_ops)},
                  {"word_op_ratio", op_ratio},
                  {"run_wall_ms_on", on_ms},
                  {"run_wall_ms_off", off_ms}};
    RecordBenchRun(std::move(diff));
    std::printf(
        "  level %zu: word ops %llu (on) vs %llu (off), ratio %.2fx; "
        "cumulative wall %.1f ms vs %.1f ms\n",
        level, static_cast<unsigned long long>(on_ops),
        static_cast<unsigned long long>(off_ops), op_ratio, on_ms, off_ms);
  }
  return identical;
}

int Main() {
  bool ok = CompareDataset("data1", 1);
  ok = CompareDataset("data2", 2) && ok;
  WriteBenchJson("ct_cache");
  std::printf("wrote BENCH_ct_cache.json\n");
  if (!ok) {
    std::fprintf(stderr, "FATAL: answers differ between CT paths\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace ccs::bench

int main() { return ccs::bench::Main(); }
