// Head-to-head of the two contingency-table paths on the figure-1/2
// workload: the per-candidate recursion (ct_cache off) versus the
// prefix-sharing batch path with the intersection cache (on).
//
// For each data set the query runs at max_set_size 2, 3 and 4 on a
// single thread; differencing the cumulative ct_word_ops between runs
// attributes bulk bitset work to each lattice level (the level-wise
// sweeps do exactly the same level-k work regardless of the cap, so the
// diffs are exact). The harness asserts the answer sets are byte-identical
// across the two paths and writes the series — word ops and wall time per
// level and path, with on/off ratios — to BENCH_ct_cache.json in the
// working directory.
//
// Scale via CCS_BENCH_SCALE as usual (smoke | default | full).

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common.h"
#include "constraints/agg_constraint.h"
#include "datagen/catalog_generator.h"
#include "util/stopwatch.h"

namespace ccs::bench {
namespace {

constexpr std::size_t kMaxLevel = 4;

struct PathRun {
  // Cumulative over the whole run, indexed by max_set_size (2..kMaxLevel).
  std::uint64_t word_ops[kMaxLevel + 1] = {0};
  double wall_ms[kMaxLevel + 1] = {0.0};
  std::vector<Itemset> answers;  // at max_set_size == kMaxLevel
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_evictions = 0;
};

PathRun RunPath(const TransactionDatabase& db, const ItemCatalog& catalog,
                const ConstraintSet& constraints,
                const MiningOptions& base_options, bool cache) {
  PathRun run;
  for (std::size_t max_k = 2; max_k <= kMaxLevel; ++max_k) {
    EngineOptions eopts;
    eopts.num_threads = 1;  // keeps ct_word_ops exact and comparable
    eopts.ct_cache = cache;
    MiningEngine engine(db, catalog, eopts);
    MiningRequest request;
    request.algorithm = Algorithm::kBmsPlusPlus;
    request.options = base_options;
    request.options.max_set_size = max_k;
    request.constraints = &constraints;
    Stopwatch timer;
    const MiningResult result = engine.Run(request);
    run.wall_ms[max_k] = timer.ElapsedSeconds() * 1e3;
    run.word_ops[max_k] = result.stats.ct_word_ops;
    if (max_k == kMaxLevel) {
      run.answers = result.answers;
      run.cache_hits = result.stats.ct_cache_hits;
      run.cache_misses = result.stats.ct_cache_misses;
      run.cache_evictions = result.stats.ct_cache_evictions;
    }
  }
  return run;
}

double Ratio(double off, double on) { return on > 0.0 ? off / on : 0.0; }

bool CompareDataset(const char* name, int method, std::ostream& json,
                    bool first) {
  const std::size_t baskets = BasketSweep().back();
  const TransactionDatabase db =
      method == 1 ? MakeData1(baskets, 42) : MakeData2(baskets, 43);
  const ItemCatalog catalog = MakeCatalog(method);
  ConstraintSet constraints;
  constraints.Add(
      MaxLe(PriceThresholdForSelectivity(catalog, 0.5)));
  const MiningOptions options = StandardOptions(db);

  const PathRun on = RunPath(db, catalog, constraints, options, true);
  const PathRun off = RunPath(db, catalog, constraints, options, false);
  const bool identical = on.answers == off.answers;

  if (!first) json << ",\n";
  json << "    {\"dataset\": \"" << name << "\", \"baskets\": " << baskets
       << ", \"algorithm\": \"bms++\", \"answers\": " << on.answers.size()
       << ", \"answers_identical\": " << (identical ? "true" : "false")
       << ",\n     \"cache\": {\"hits\": " << on.cache_hits
       << ", \"misses\": " << on.cache_misses
       << ", \"evictions\": " << on.cache_evictions << "},\n"
       << "     \"levels\": [";
  std::printf("%s (%zu baskets): answers %s (%zu sets)\n", name, baskets,
              identical ? "identical" : "MISMATCH", on.answers.size());
  for (std::size_t level = 2; level <= kMaxLevel; ++level) {
    // Run at cap k minus run at cap k-1 = exactly the level-k pass (the
    // cap-2 run's total is level 2 plus the shared level-1 setup).
    const std::uint64_t on_ops = on.word_ops[level] - on.word_ops[level - 1];
    const std::uint64_t off_ops =
        off.word_ops[level] - off.word_ops[level - 1];
    const double on_ms = on.wall_ms[level];
    const double off_ms = off.wall_ms[level];
    const double op_ratio =
        Ratio(static_cast<double>(off_ops), static_cast<double>(on_ops));
    if (level > 2) json << ", ";
    json << "{\"level\": " << level << ", \"word_ops_on\": " << on_ops
         << ", \"word_ops_off\": " << off_ops << ", \"word_op_ratio\": "
         << op_ratio << ", \"run_wall_ms_on\": " << on_ms
         << ", \"run_wall_ms_off\": " << off_ms << "}";
    std::printf(
        "  level %zu: word ops %llu (on) vs %llu (off), ratio %.2fx; "
        "cumulative wall %.1f ms vs %.1f ms\n",
        level, static_cast<unsigned long long>(on_ops),
        static_cast<unsigned long long>(off_ops), op_ratio, on_ms, off_ms);
  }
  json << "]}";
  return identical;
}

int Main() {
  std::ofstream json("BENCH_ct_cache.json");
  json << "{\n  \"bench\": \"ct_cache_compare\",\n  \"datasets\": [\n";
  bool ok = CompareDataset("data1", 1, json, true);
  ok = CompareDataset("data2", 2, json, false) && ok;
  json << "\n  ]\n}\n";
  std::printf("wrote BENCH_ct_cache.json\n");
  if (!ok) {
    std::fprintf(stderr, "FATAL: answers differ between CT paths\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace ccs::bench

int main() { return ccs::bench::Main(); }
