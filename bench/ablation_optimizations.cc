// Ablation benches for the design choices DESIGN.md calls out:
//
//  A. BMS** vs the fused BMS**opt (Section 6's "optimize BMS** further"):
//     how much of phase 1's supported-region exploration the fusion avoids,
//     across constraint selectivities.
//  B. Succinctness exploitation in BMS++: the same anti-monotone
//     constraint expressed succinctly (max(S.price) <= v, pushed into the
//     item universe) vs opaquely (sum over a single item bound — the
//     equivalent non-succinct formulation count/sum cannot be pushed),
//     isolating the value of the GOOD1 filter.
//  C. Contingency counting paths: recursive bitset vs scalar reference on
//     a full mining run.

#include <cstdio>

#include "common.h"
#include "constraints/agg_constraint.h"
#include "core/ct_builder.h"
#include "core/engine.h"
#include "datagen/catalog_generator.h"
#include "datagen/ibm_generator.h"
#include "util/csv.h"
#include "util/stopwatch.h"

namespace ccs {
namespace {

TransactionDatabase BenchDb(std::size_t baskets) {
  IbmGeneratorConfig config;
  config.num_transactions = baskets;
  config.num_items = 100;
  config.avg_transaction_size = 10.0;
  config.avg_pattern_size = 4.0;
  config.num_patterns = 50;
  config.seed = 77;
  return IbmGenerator(config).Generate();
}

MiningOptions BenchOptions(const TransactionDatabase& db) {
  MiningOptions options;
  options.significance = 0.9;
  options.min_support = db.num_transactions() / 20;
  options.min_cell_fraction = 0.25;
  options.max_set_size = 4;
  return options;
}

void AblationFusedPhases() {
  std::printf("\n==== ablation A: BMS** vs fused BMS**opt ====\n");
  const TransactionDatabase db = BenchDb(5000);
  const ItemCatalog catalog = MakeLinearPriceCatalog(100);
  const MiningOptions options = BenchOptions(db);
  MiningEngine engine(db, catalog);
  CsvTable table({"selectivity", "algorithm", "answers", "tables_built",
                  "cpu_ms"});
  for (double selectivity : {0.1, 0.3, 0.5, 0.7}) {
    ConstraintSet constraints;
    constraints.Add(
        MinLe(PriceThresholdForSelectivity(catalog, selectivity)));
    for (Algorithm a :
         {Algorithm::kBmsStarStar, Algorithm::kBmsStarStarOpt}) {
      MiningRequest request;
      request.algorithm = a;
      request.options = options;
      request.constraints = &constraints;
      const MiningResult result = engine.Run(request);
      char x[16];
      std::snprintf(x, sizeof(x), "%.1f", selectivity);
      bench::RecordEngineRun("ablation_fused", x, a, engine, result);
      table.BeginRow();
      table.AddCell(selectivity, 2);
      table.AddCell(std::string(AlgorithmName(a)));
      table.AddCell(static_cast<std::uint64_t>(result.answers.size()));
      table.AddCell(result.stats.TotalTablesBuilt());
      table.AddCell(result.stats.elapsed_seconds * 1e3, 1);
    }
  }
  std::printf("%s", table.ToAlignedText().c_str());
}

void AblationSuccinctness() {
  std::printf(
      "\n==== ablation B: succinct vs non-succinct anti-monotone push "
      "====\n");
  const TransactionDatabase db = BenchDb(5000);
  const ItemCatalog catalog = MakeLinearPriceCatalog(100);
  const MiningOptions options = BenchOptions(db);
  MiningEngine engine(db, catalog);
  CsvTable table(
      {"constraint", "answers", "tables_built", "pruned_before_ct",
       "cpu_ms"});
  // max(S.price) <= 50 (succinct: folded into the universe) vs the
  // semantically identical sum-per-item bound expressed via the
  // non-succinct sum on singleton extensions — here we contrast against
  // sum(S.price) <= 100, which admits exactly the same pairs of cheap
  // items but cannot shrink the universe before tables are built.
  for (const auto* description : {"max(S.price) <= 50 (succinct)",
                                  "sum(S.price) <= 100 (not succinct)"}) {
    ConstraintSet constraints;
    if (std::string(description).find("max") == 0) {
      constraints.Add(MaxLe(50.0));
    } else {
      constraints.Add(SumLe(100.0));
    }
    MiningRequest request;
    request.algorithm = Algorithm::kBmsPlusPlus;
    request.options = options;
    request.constraints = &constraints;
    const MiningResult result = engine.Run(request);
    bench::RecordEngineRun("ablation_succinct", description,
                           Algorithm::kBmsPlusPlus, engine, result);
    std::uint64_t pruned = 0;
    for (const auto& level : result.stats.levels) {
      pruned += level.pruned_before_ct;
    }
    table.BeginRow();
    table.AddCell(std::string(description));
    table.AddCell(static_cast<std::uint64_t>(result.answers.size()));
    table.AddCell(result.stats.TotalTablesBuilt());
    table.AddCell(pruned);
    table.AddCell(result.stats.elapsed_seconds * 1e3, 1);
  }
  std::printf("%s", table.ToAlignedText().c_str());
}

void AblationCountingPaths() {
  std::printf("\n==== ablation C: bitset vs scalar contingency counting "
              "====\n");
  const TransactionDatabase db = BenchDb(20000);
  ContingencyTableBuilder builder(db);
  CsvTable table({"set_size", "bitset_us", "scalar_us", "speedup"});
  for (std::size_t k = 2; k <= 5; ++k) {
    Itemset s;
    for (ItemId i = 0; i < k; ++i) s = s.WithItem(i * 9 + 2);
    const int reps = 50;
    Stopwatch fast;
    for (int r = 0; r < reps; ++r) builder.Build(s);
    const double fast_us = fast.ElapsedSeconds() * 1e6 / reps;
    Stopwatch slow;
    for (int r = 0; r < reps; ++r) builder.BuildScalar(s);
    const double slow_us = slow.ElapsedSeconds() * 1e6 / reps;
    bench::BenchRun run;
    run.workload = "ablation_counting";
    run.x = std::to_string(k);
    run.variant = "bitset_vs_scalar";
    run.wall_ms = (fast_us + slow_us) / 1e3;
    run.extra = {{"bitset_us", fast_us},
                 {"scalar_us", slow_us},
                 {"speedup", slow_us / fast_us}};
    bench::RecordBenchRun(std::move(run));
    table.BeginRow();
    table.AddCell(static_cast<std::uint64_t>(k));
    table.AddCell(fast_us, 1);
    table.AddCell(slow_us, 1);
    table.AddCell(slow_us / fast_us, 1);
  }
  std::printf("%s", table.ToAlignedText().c_str());
}

}  // namespace
}  // namespace ccs

int main() {
  ccs::AblationFusedPhases();
  ccs::AblationSuccinctness();
  ccs::AblationCountingPaths();
  ccs::bench::WriteBenchJson("ablation_optimizations");
  return 0;
}
