// Cost comparison of the three frequent-set engines (Apriori, Eclat,
// FP-growth) on both of the paper's data generators, across support
// thresholds. All three produce identical output (asserted in tests);
// this bench shows where each pays: Apriori in repeated full
// intersections plus candidate hashing, Eclat in one AND per frequent
// set, FP-growth in tree construction.

#include <cstdio>

#include "assoc/apriori.h"
#include "assoc/eclat.h"
#include "assoc/fpgrowth.h"
#include "common.h"
#include "datagen/ibm_generator.h"
#include "datagen/rule_generator.h"
#include "util/csv.h"

namespace ccs {
namespace {

struct Engine {
  const char* name;
  AprioriResult (*mine)(const TransactionDatabase&, const AprioriOptions&);
};

constexpr Engine kEngines[] = {
    {"Apriori", &MineApriori},
    {"Eclat", &MineEclat},
    {"FP-growth", &MineFpGrowth},
};

void Run(const char* dataset, const TransactionDatabase& db) {
  CsvTable table(
      {"dataset", "support_frac", "engine", "frequent", "cpu_ms"});
  for (double fraction : {0.02, 0.05, 0.10}) {
    AprioriOptions options;
    options.min_support = static_cast<std::uint64_t>(
        fraction * static_cast<double>(db.num_transactions()));
    options.max_set_size = 5;
    for (const Engine& engine : kEngines) {
      const AprioriResult result = engine.mine(db, options);
      char x[16];
      std::snprintf(x, sizeof(x), "%.2f", fraction);
      bench::BenchRun run;
      run.workload = dataset;
      run.x = x;
      run.variant = engine.name;
      run.answers = result.frequent.size();
      run.wall_ms = result.stats.elapsed_seconds * 1e3;
      bench::RecordBenchRun(std::move(run));
      table.BeginRow();
      table.AddCell(std::string(dataset));
      table.AddCell(fraction, 2);
      table.AddCell(std::string(engine.name));
      table.AddCell(static_cast<std::uint64_t>(result.frequent.size()));
      table.AddCell(result.stats.elapsed_seconds * 1e3, 1);
    }
  }
  std::printf("%s\n", table.ToAlignedText().c_str());
}

}  // namespace
}  // namespace ccs

int main() {
  std::printf("==== frequent-itemset engines ====\n");
  ccs::IbmGeneratorConfig ibm;
  ibm.num_transactions = 20000;
  ibm.num_items = 100;
  ibm.avg_transaction_size = 10.0;
  ibm.num_patterns = 50;
  ibm.seed = 42;
  ccs::Run("ibm", ccs::IbmGenerator(ibm).Generate());
  ccs::RuleGeneratorConfig rules;
  rules.num_transactions = 20000;
  rules.num_items = 100;
  rules.avg_transaction_size = 10.0;
  rules.seed = 43;
  ccs::Run("rules", ccs::RuleGenerator(rules).Generate());
  ccs::bench::WriteBenchJson("frequent_engines");
  return 0;
}
