// Section 3.3 analysis check: measures the per-level region sizes
//   c_i  — correlated-region sets BMS explores at level i (its candidates),
//   v_i  — valid sets at level i (over the frequent universe),
//   cv_i — supported sets at level i that satisfy the anti-monotone
//          constraints and carry a witness (BMS**'s phase-1 region),
// and compares each algorithm's measured sets-considered count against the
// paper's formulas:
//   |BMS+|  = sum_i c_i                (unconstrained BMS cost)
//   |BMS*|  = sum_i c_i + sweep        (base run plus the upward sweep)
//   |BMS**| = sum_i cv_i               (phase 1 is all its database work)
// The per-level candidate counters of the engines are printed next to the
// region sizes, so the formulas can be read off directly.

#include <cstdio>
#include <string>

#include "common.h"
#include "constraints/agg_constraint.h"
#include "core/engine.h"
#include "core/oracle.h"
#include "datagen/catalog_generator.h"
#include "datagen/ibm_generator.h"
#include "util/csv.h"

namespace ccs {
namespace {

void PrintLevelCounters(const char* name, const MiningResult& result) {
  std::printf("%-9s total=%llu  per-level candidates:", name,
              static_cast<unsigned long long>(result.stats.TotalCandidates()));
  for (const auto& level : result.stats.levels) {
    if (level.candidates == 0) continue;
    std::printf(" L%zu=%llu", level.level,
                static_cast<unsigned long long>(level.candidates));
  }
  std::printf("\n");
}

void Run(double selectivity) {
  IbmGeneratorConfig config;
  config.num_transactions = 4000;
  config.num_items = 18;  // small enough for the oracle's full lattice
  config.avg_transaction_size = 5.0;
  config.avg_pattern_size = 3.0;
  config.num_patterns = 12;
  config.seed = 31;
  const TransactionDatabase db = IbmGenerator(config).Generate();
  const ItemCatalog catalog = MakeLinearPriceCatalog(config.num_items);

  MiningOptions options;
  options.significance = 0.9;
  options.min_support = db.num_transactions() / 20;
  options.min_cell_fraction = 0.25;
  options.max_set_size = 4;

  ConstraintSet constraints;
  constraints.Add(
      MinLe(PriceThresholdForSelectivity(catalog, selectivity)));

  std::printf("\n--- selectivity %.0f%%: %s ---\n", selectivity * 100,
              constraints.ToString().c_str());

  // Region sizes from the oracle's full enumeration.
  const Oracle oracle(db, catalog, options);
  const std::size_t n = oracle.frequent_items().size();
  std::printf("frequent items: %zu\n", n);
  CsvTable regions({"level", "c_i(correlated)", "v_i(valid)",
                    "cv_i(corr&valid)"});
  for (std::size_t k = 2; k <= options.max_set_size; ++k) {
    std::size_t c = 0;
    std::size_t v = 0;
    std::size_t cv = 0;
    // Enumerate level k of the frequent lattice.
    std::vector<std::size_t> idx(k);
    for (std::size_t i = 0; i < k; ++i) idx[i] = i;
    if (k <= n) {
      while (true) {
        Itemset s;
        for (std::size_t i : idx) s = s.WithItem(oracle.frequent_items()[i]);
        const bool correlated =
            oracle.IsCorrelated(s) && oracle.IsCtSupported(s);
        const bool valid = constraints.TestAll(s.span(), catalog);
        c += correlated ? 1 : 0;
        v += valid ? 1 : 0;
        cv += (correlated && valid) ? 1 : 0;
        std::size_t pos = k;
        bool done = false;
        while (pos > 0) {
          --pos;
          if (idx[pos] != pos + n - k) break;
          if (pos == 0) done = true;
        }
        if (done || idx[pos] == pos + n - k) break;
        ++idx[pos];
        for (std::size_t i = pos + 1; i < k; ++i) idx[i] = idx[i - 1] + 1;
      }
    }
    regions.BeginRow();
    regions.AddCell(static_cast<std::uint64_t>(k));
    regions.AddCell(static_cast<std::uint64_t>(c));
    regions.AddCell(static_cast<std::uint64_t>(v));
    regions.AddCell(static_cast<std::uint64_t>(cv));
  }
  std::printf("%s\n", regions.ToAlignedText().c_str());

  MiningEngine engine(db, catalog);
  MiningRequest request;
  request.options = options;
  request.constraints = &constraints;
  char x[16];
  std::snprintf(x, sizeof(x), "%.1f", selectivity);
  for (Algorithm a : kAllAlgorithms) {
    request.algorithm = a;
    const MiningResult result = engine.Run(request);
    bench::RecordEngineRun("ibm18", x, a, engine, result);
    PrintLevelCounters(AlgorithmName(a), result);
  }
}

}  // namespace
}  // namespace ccs

int main() {
  std::printf("Section 3.3 cost-model check (18-item universe, oracle-"
              "enumerable)\n");
  ccs::Run(0.2);
  ccs::Run(0.5);
  ccs::Run(0.8);
  ccs::bench::WriteBenchJson("analysis_counts");
  return 0;
}
