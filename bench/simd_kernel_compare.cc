// Head-to-head of the two contingency-table kernels on the figure-1/2
// workload: the scalar word-wise path (CCS_SIMD=0 equivalent) versus the
// vector kernel plus the candidate-free k=2 pair stage (DESIGN.md §14).
//
// The comparison is pinned at the k=2 level, where the pair stage replaces
// per-candidate bitset intersections with one horizontal counting pass.
// The cost currencies are the deterministic work counters, not wall time:
// the scalar path spends ct_word_ops (bulk 64-bit word operations), the
// staged path spends ct_pair_stage_ops (one counter increment per
// co-occurring stage pair) plus whatever residual word ops remain. Both
// currencies are one integer op over one machine word, so their ratio is a
// word-op-equivalent speedup — deterministic across machines, unlike
// wall_ms (which is reported for context but never asserted).
//
// The harness exits non-zero if answers differ anywhere in the grid or if
// the staged path fails the regression floor: never more word-op
// equivalents per k=2 table than scalar, and >= 1.5x fewer wherever the
// admission gate engages the stage (the gate itself may deterministically
// fall back to scalar on workloads where the horizontal pass would lose —
// data2's dense planted rules exercise exactly that — in which case the
// two runs are identical and the floor does not apply). At least one
// workload must engage the stage, so the floor is always actually tested.
// bench_smoke runs this binary, making all of it a CI gate. Results go to
// BENCH_simd_kernel.json (schema v1) in the working directory.

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common.h"
#include "constraints/agg_constraint.h"
#include "datagen/catalog_generator.h"
#include "util/stopwatch.h"

namespace ccs::bench {
namespace {

struct KernelRun {
  std::uint64_t word_ops = 0;
  std::uint64_t pair_stage_ops = 0;
  std::uint64_t pair_stage_tables = 0;
  std::uint64_t tables_built = 0;
  double wall_ms = 0.0;
  std::vector<Itemset> answers;
};

KernelRun RunKernel(const char* dataset, const TransactionDatabase& db,
                    const ItemCatalog& catalog,
                    const ConstraintSet& constraints,
                    const MiningOptions& base_options, bool simd) {
  EngineOptions eopts;
  eopts.num_threads = 1;  // keeps the work counters exact and comparable
  eopts.ct_cache = false;  // isolate kernel cost from cache reuse
  eopts.simd_kernel = simd;
  MiningEngine engine(db, catalog, eopts);
  MiningRequest request;
  request.algorithm = Algorithm::kBmsPlusPlus;
  request.options = base_options;
  request.options.max_set_size = 2;  // the level the pair stage owns
  request.constraints = &constraints;
  Stopwatch timer;
  const MiningResult result = engine.Run(request);
  KernelRun run;
  run.wall_ms = timer.ElapsedSeconds() * 1e3;
  run.word_ops = result.stats.ct_word_ops;
  run.pair_stage_ops = result.stats.ct_pair_stage_ops;
  run.pair_stage_tables = result.stats.ct_pair_stage_tables;
  run.tables_built = result.stats.TotalTablesBuilt();
  run.answers = result.answers;
  RecordEngineRun(dataset, std::string("simd=") + (simd ? "1" : "0"),
                  Algorithm::kBmsPlusPlus, engine, result);
  return run;
}

double PerTable(std::uint64_t ops, std::uint64_t tables) {
  return tables > 0 ? static_cast<double>(ops) / static_cast<double>(tables)
                    : 0.0;
}

struct DatasetVerdict {
  bool ok = false;
  bool stage_engaged = false;
};

DatasetVerdict CompareDataset(const char* name, int method) {
  const std::size_t baskets = BasketSweep().back();
  const TransactionDatabase db =
      method == 1 ? MakeData1(baskets, 42) : MakeData2(baskets, 43);
  const ItemCatalog catalog = MakeCatalog(method);
  ConstraintSet constraints;
  constraints.Add(MaxLe(PriceThresholdForSelectivity(catalog, 0.5)));
  const MiningOptions options = StandardOptions(db);

  const KernelRun scalar =
      RunKernel(name, db, catalog, constraints, options, false);
  const KernelRun simd =
      RunKernel(name, db, catalog, constraints, options, true);

  const bool identical = scalar.answers == simd.answers;
  const bool engaged = simd.pair_stage_tables > 0;
  // Word-op equivalents spent on k=2 tables by each kernel mode.
  const std::uint64_t scalar_equiv = scalar.word_ops;
  const std::uint64_t simd_equiv = simd.word_ops + simd.pair_stage_ops;
  const double scalar_per_table = PerTable(scalar_equiv, scalar.tables_built);
  const double simd_per_table = PerTable(simd_equiv, simd.tables_built);
  const double ratio =
      simd_per_table > 0.0 ? scalar_per_table / simd_per_table : 0.0;

  std::printf(
      "%s (%zu baskets): answers %s (%zu sets)\n"
      "  scalar: %llu word ops / %llu tables = %.1f per table (%.1f ms)\n"
      "  staged: %llu word ops + %llu pair ops / %llu tables = %.1f per "
      "table (%.1f ms), %llu stage tables\n"
      "  word-op-equivalent ratio: %.2fx\n",
      name, baskets, identical ? "identical" : "MISMATCH",
      scalar.answers.size(),
      static_cast<unsigned long long>(scalar.word_ops),
      static_cast<unsigned long long>(scalar.tables_built), scalar_per_table,
      scalar.wall_ms, static_cast<unsigned long long>(simd.word_ops),
      static_cast<unsigned long long>(simd.pair_stage_ops),
      static_cast<unsigned long long>(simd.tables_built), simd_per_table,
      simd.wall_ms, static_cast<unsigned long long>(simd.pair_stage_tables),
      ratio);

  BenchRun summary;
  summary.workload = name;
  summary.x = std::to_string(baskets);
  summary.variant = "k2_kernel_compare";
  summary.answers = simd.answers.size();
  summary.extra = {
      {"answers_identical", identical ? 1.0 : 0.0},
      {"stage_engaged", engaged ? 1.0 : 0.0},
      {"scalar_word_ops", static_cast<double>(scalar.word_ops)},
      {"simd_word_ops", static_cast<double>(simd.word_ops)},
      {"simd_pair_stage_ops", static_cast<double>(simd.pair_stage_ops)},
      {"simd_pair_stage_tables", static_cast<double>(simd.pair_stage_tables)},
      {"scalar_tables", static_cast<double>(scalar.tables_built)},
      {"simd_tables", static_cast<double>(simd.tables_built)},
      {"scalar_ops_per_table", scalar_per_table},
      {"simd_ops_per_table", simd_per_table},
      {"word_op_equiv_ratio", ratio},
      {"scalar_wall_ms", scalar.wall_ms},
      {"simd_wall_ms", simd.wall_ms}};
  RecordBenchRun(std::move(summary));

  DatasetVerdict verdict;
  verdict.ok = identical;
  verdict.stage_engaged = engaged;
  if (!identical) {
    std::fprintf(stderr, "FATAL: %s answers differ between kernel modes\n",
                 name);
  }
  // Regression floor: the kernel path must never do more per-table work
  // than scalar (when the admission gate falls back they tie exactly),
  // and where the stage engages it must clear the 1.5x bar.
  if (simd_per_table > scalar_per_table) {
    std::fprintf(stderr,
                 "FATAL: %s staged path regressed word-op equivalents per "
                 "table (%.1f > %.1f)\n",
                 name, simd_per_table, scalar_per_table);
    verdict.ok = false;
  }
  if (engaged && ratio < 1.5) {
    std::fprintf(stderr,
                 "FATAL: %s word-op-equivalent ratio %.2fx below the 1.5x "
                 "floor\n",
                 name, ratio);
    verdict.ok = false;
  }
  return verdict;
}

int Main() {
  const DatasetVerdict d1 = CompareDataset("data1", 1);
  const DatasetVerdict d2 = CompareDataset("data2", 2);
  WriteBenchJson("simd_kernel");
  std::printf("wrote BENCH_simd_kernel.json\n");
  bool ok = d1.ok && d2.ok;
  if (!d1.stage_engaged && !d2.stage_engaged) {
    std::fprintf(stderr,
                 "FATAL: pair stage engaged on no workload — the 1.5x floor "
                 "was never tested\n");
    ok = false;
  }
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace ccs::bench

int main() { return ccs::bench::Main(); }
