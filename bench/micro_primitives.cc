// Micro-benchmarks (google-benchmark) for the primitives the cost model is
// built on: tid-set word operations, contingency-table construction at
// each set size, the chi-squared machinery, and candidate generation.

#include <benchmark/benchmark.h>

#include "common.h"
#include "core/candidate_gen.h"
#include "core/ct_builder.h"
#include "core/simd_kernel.h"
#include "datagen/ibm_generator.h"
#include "stats/chi_squared.h"
#include "util/bitset.h"
#include "util/rng.h"

namespace ccs {
namespace {

DynamicBitset RandomBitset(std::size_t bits, std::uint64_t seed) {
  Rng rng(seed);
  DynamicBitset out(bits);
  for (std::size_t i = 0; i < bits; ++i) {
    if (rng.NextBernoulli(0.3)) out.Set(i);
  }
  return out;
}

void BM_BitsetCountAnd(benchmark::State& state) {
  const auto bits = static_cast<std::size_t>(state.range(0));
  const DynamicBitset a = RandomBitset(bits, 1);
  const DynamicBitset b = RandomBitset(bits, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(DynamicBitset::CountAnd(a, b));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bits / 4));
}
BENCHMARK(BM_BitsetCountAnd)->Arg(10000)->Arg(100000)->Arg(1000000);

void BM_BitsetAssignAnd(benchmark::State& state) {
  const auto bits = static_cast<std::size_t>(state.range(0));
  const DynamicBitset a = RandomBitset(bits, 1);
  const DynamicBitset b = RandomBitset(bits, 2);
  DynamicBitset out;
  for (auto _ : state) {
    out.AssignAnd(a, b);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_BitsetAssignAnd)->Arg(100000)->Arg(1000000);

// Kernel-mode axis for the word-span primitives: range(0) = bit count,
// range(1) = KernelMode (0 scalar, 1 vector). The scalar rows double as
// the baseline the vector rows are read against.
void BM_KernelCountAnd(benchmark::State& state) {
  const auto bits = static_cast<std::size_t>(state.range(0));
  const auto mode = static_cast<KernelMode>(state.range(1));
  const DynamicBitset a = RandomBitset(bits, 1);
  const DynamicBitset b = RandomBitset(bits, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(KernelCountAnd(a, b, mode));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bits / 4));
  state.SetLabel(KernelModeName(mode));
}
BENCHMARK(BM_KernelCountAnd)
    ->Args({100000, 0})
    ->Args({100000, 1})
    ->Args({1000000, 0})
    ->Args({1000000, 1});

void BM_KernelAssignAndCount(benchmark::State& state) {
  const auto bits = static_cast<std::size_t>(state.range(0));
  const auto mode = static_cast<KernelMode>(state.range(1));
  const DynamicBitset a = RandomBitset(bits, 1);
  const DynamicBitset b = RandomBitset(bits, 2);
  DynamicBitset out;
  for (auto _ : state) {
    benchmark::DoNotOptimize(KernelAssignAndCount(out, a, b, mode));
  }
  state.SetLabel(KernelModeName(mode));
}
BENCHMARK(BM_KernelAssignAndCount)
    ->Args({100000, 0})
    ->Args({100000, 1})
    ->Args({1000000, 0})
    ->Args({1000000, 1});

TransactionDatabase BenchDb(std::size_t baskets) {
  IbmGeneratorConfig config;
  config.num_transactions = baskets;
  config.num_items = 100;
  config.avg_transaction_size = 10.0;
  config.num_patterns = 50;
  config.seed = 5;
  return IbmGenerator(config).Generate();
}

void BM_ContingencyTableBuild(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  const TransactionDatabase db = BenchDb(20000);
  ContingencyTableBuilder builder(db);
  Itemset s;
  for (ItemId i = 0; i < k; ++i) s = s.WithItem(i * 7 + 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(builder.Build(s));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(db.num_transactions()));
}
BENCHMARK(BM_ContingencyTableBuild)->DenseRange(2, 6);

void BM_ContingencyTableBuildScalar(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  const TransactionDatabase db = BenchDb(20000);
  ContingencyTableBuilder builder(db);
  Itemset s;
  for (ItemId i = 0; i < k; ++i) s = s.WithItem(i * 7 + 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(builder.BuildScalar(s));
  }
}
BENCHMARK(BM_ContingencyTableBuildScalar)->DenseRange(2, 4);

// The candidate-free k=2 path: one horizontal pass filling every pair
// count, measured against BM_ContingencyTableBuild/2 times the number of
// pairs it replaces.
void BM_PairStagePass(benchmark::State& state) {
  const auto num_items = static_cast<std::size_t>(state.range(0));
  const TransactionDatabase db = BenchDb(20000);
  std::vector<ItemId> items;
  for (ItemId i = 0; i < num_items && i < db.num_items(); ++i) {
    items.push_back(i);
  }
  for (auto _ : state) {
    PairStage stage(db, items);
    stage.Accumulate(0, db.num_transactions());
    benchmark::DoNotOptimize(stage.ops());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(db.num_transactions()));
}
BENCHMARK(BM_PairStagePass)->Arg(20)->Arg(50)->Arg(100);

void BM_ChiSquaredStatistic(benchmark::State& state) {
  const auto k = static_cast<int>(state.range(0));
  std::vector<std::uint64_t> cells(std::size_t{1} << k);
  Rng rng(9);
  for (auto& c : cells) c = rng.NextBounded(1000);
  const stats::ContingencyTable table(k, std::move(cells));
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.ChiSquaredStatistic());
  }
}
BENCHMARK(BM_ChiSquaredStatistic)->DenseRange(2, 6);

void BM_ChiSquaredQuantile(benchmark::State& state) {
  double prob = 0.90;
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::ChiSquaredQuantile(prob, 1));
    prob = prob == 0.90 ? 0.95 : 0.90;  // defeat caching by alternation
  }
}
BENCHMARK(BM_ChiSquaredQuantile);

void BM_CandidateGeneration(benchmark::State& state) {
  const auto n = static_cast<ItemId>(state.range(0));
  std::vector<ItemId> universe;
  for (ItemId i = 0; i < n; ++i) universe.push_back(i);
  const std::vector<Itemset> seeds = AllPairs(universe);
  const ItemsetSet closed(seeds.begin(), seeds.end());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ExtendSeeds(seeds, universe, [&closed](const Itemset& s) {
          return AllCoSubsetsIn(s, closed);
        }));
  }
}
BENCHMARK(BM_CandidateGeneration)->Arg(20)->Arg(40)->Arg(80);

void BM_ItemsetHash(benchmark::State& state) {
  std::vector<Itemset> sets;
  Rng rng(3);
  for (int i = 0; i < 1024; ++i) {
    Itemset s;
    while (s.size() < 4) {
      const auto item = static_cast<ItemId>(rng.NextBounded(1000));
      if (!s.Contains(item)) s = s.WithItem(item);
    }
    sets.push_back(s);
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sets[i++ & 1023].Hash());
  }
}
BENCHMARK(BM_ItemsetHash);

// Console output as usual, plus one BenchRun per measured benchmark into
// the shared BENCH_<name>.json collector.
class JsonCollectingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& run : reports) {
      if (run.error_occurred) continue;
      const double seconds =
          run.iterations > 0
              ? run.real_accumulated_time / static_cast<double>(run.iterations)
              : 0.0;
      bench::BenchRun out;
      out.workload = "micro";
      out.x = "";
      out.variant = run.benchmark_name();
      out.wall_ms = seconds * 1e3;
      out.extra = {{"ns_per_iter", seconds * 1e9},
                   {"iterations", static_cast<double>(run.iterations)}};
      bench::RecordBenchRun(std::move(out));
    }
    ConsoleReporter::ReportRuns(reports);
  }
};

}  // namespace
}  // namespace ccs

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ccs::JsonCollectingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  ccs::bench::WriteBenchJson("micro_primitives");
  return 0;
}
