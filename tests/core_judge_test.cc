#include "core/judge.h"

#include <gtest/gtest.h>

#include <vector>

#include "core/ct_builder.h"
#include "stats/chi_squared.h"
#include "stats/fisher.h"
#include "txn/database.h"
#include "util/rng.h"

namespace ccs {
namespace {

stats::ContingencyTable FigureBTable() {
  return stats::ContingencyTable(2, {11, 20, 39, 30});  // chi2 ~ 3.787
}

TEST(CorrelationJudge, CorrelationDependsOnAlpha) {
  MiningOptions options;
  options.significance = 0.9;
  CorrelationJudge lenient(options);
  EXPECT_TRUE(lenient.IsCorrelated(FigureBTable()));
  options.significance = 0.95;
  CorrelationJudge strict(options);
  EXPECT_FALSE(strict.IsCorrelated(FigureBTable()));
}

TEST(CorrelationJudge, CutoffMatchesQuantile) {
  MiningOptions options;
  options.significance = 0.9;
  CorrelationJudge judge(options);
  EXPECT_DOUBLE_EQ(judge.Cutoff(2), stats::ChiSquaredQuantile(0.9, 1));
  // Default df policy: cutoff independent of set size.
  EXPECT_DOUBLE_EQ(judge.Cutoff(4), judge.Cutoff(2));
}

TEST(CorrelationJudge, FullIndependenceDfGrowsCutoff) {
  MiningOptions options;
  options.significance = 0.9;
  options.full_independence_df = true;
  CorrelationJudge judge(options);
  EXPECT_DOUBLE_EQ(judge.Cutoff(2), stats::ChiSquaredQuantile(0.9, 1));
  EXPECT_DOUBLE_EQ(judge.Cutoff(3), stats::ChiSquaredQuantile(0.9, 4));
  EXPECT_DOUBLE_EQ(judge.Cutoff(4), stats::ChiSquaredQuantile(0.9, 11));
  EXPECT_GT(judge.Cutoff(4), judge.Cutoff(3));
}

TEST(CorrelationJudge, SingletonsNeverCorrelated) {
  MiningOptions options;
  options.significance = 0.0;  // cutoff 0: everything >= cutoff
  CorrelationJudge judge(options);
  const stats::ContingencyTable singleton(1, {10, 90});
  EXPECT_FALSE(judge.IsCorrelated(singleton));
}

TEST(CorrelationJudge, CtSupportUsesOptions) {
  MiningOptions options;
  options.min_support = 25;
  options.min_cell_fraction = 0.5;
  CorrelationJudge judge(options);
  EXPECT_TRUE(judge.IsCtSupported(FigureBTable()));  // 30 and 39 >= 25
  options.min_cell_fraction = 0.75;
  CorrelationJudge stricter(options);
  EXPECT_FALSE(stricter.IsCtSupported(FigureBTable()));
}

TEST(CorrelationJudge, PValueMatchesSf) {
  MiningOptions options;
  CorrelationJudge judge(options);
  const auto table = FigureBTable();
  EXPECT_NEAR(judge.PValue(table),
              stats::ChiSquaredSf(table.ChiSquaredStatistic(), 1), 1e-12);
  // Figure B is significant at p < 0.1 but not p < 0.05.
  EXPECT_LT(judge.PValue(table), 0.1);
  EXPECT_GT(judge.PValue(table), 0.05);
  const stats::ContingencyTable singleton(1, {10, 90});
  EXPECT_DOUBLE_EQ(judge.PValue(singleton), 1.0);
}

TEST(CorrelationJudge, FisherFallbackOnSparsePairs) {
  // Sparse table violating Cochran's rule: joint expectation
  // 20 * (3/20) * (3/20) = 0.45 < 1, but the observed joint count 3 is
  // extreme — the chi-squared statistic wildly overshoots while Fisher's
  // exact two-sided p-value is the trustworthy verdict.
  const stats::ContingencyTable sparse(2, {17, 0, 0, 3});
  ASSERT_FALSE(sparse.SatisfiesCochranRule());
  MiningOptions options;
  options.significance = 0.9;
  options.fisher_fallback = true;
  CorrelationJudge judge(options);
  const double exact = stats::FisherExactTwoSided(3, 0, 0, 17);
  EXPECT_EQ(judge.IsCorrelated(sparse), exact <= 0.1);
  // With a strict enough confidence the same table is rejected even
  // though its chi-squared statistic (= N = 20) is far beyond any cutoff.
  options.significance = 1.0 - exact / 2.0;
  CorrelationJudge strict(options);
  EXPECT_FALSE(strict.IsCorrelated(sparse));
  CorrelationJudge chi2_only([] {
    MiningOptions o;
    o.significance = 0.99;
    return o;
  }());
  EXPECT_TRUE(chi2_only.IsCorrelated(sparse));
}

TEST(CorrelationJudge, FisherFallbackLeavesHealthyTablesAlone) {
  MiningOptions options;
  options.significance = 0.9;
  options.fisher_fallback = true;
  CorrelationJudge with(options);
  options.fisher_fallback = false;
  CorrelationJudge without(options);
  const stats::ContingencyTable healthy(2, {11, 20, 39, 30});  // Figure B
  ASSERT_TRUE(healthy.SatisfiesCochranRule());
  EXPECT_EQ(with.IsCorrelated(healthy), without.IsCorrelated(healthy));
}

// A random database with planted co-occurrence blocks, so the grown
// chains below cross both correlated and independent territory.
TransactionDatabase PropertyDb(std::uint64_t seed) {
  Rng rng(seed);
  const std::size_t num_items = 14;
  TransactionDatabase db(num_items);
  for (std::size_t t = 0; t < 500; ++t) {
    Transaction txn;
    if (rng.NextBernoulli(0.4)) {
      txn.push_back(0);
      txn.push_back(1);
      if (rng.NextBernoulli(0.7)) txn.push_back(2);
    }
    if (rng.NextBernoulli(0.35)) {
      txn.push_back(3);
      txn.push_back(4);
    }
    for (ItemId i = 0; i < num_items; ++i) {
      if (rng.NextBernoulli(0.3)) txn.push_back(i);
    }
    db.Add(std::move(txn));
  }
  db.Finalize();
  return db;
}

// Grows a random chain S2 c S3 c ... c Smax of itemsets over the
// database's universe, one random new item per step.
std::vector<Itemset> RandomChain(Rng& rng, std::size_t num_items,
                                 std::size_t max_size) {
  std::vector<Itemset> chain;
  Itemset s;
  while (s.size() < max_size) {
    const auto item = static_cast<ItemId>(rng.NextBounded(num_items));
    if (s.Contains(item)) continue;
    s = s.WithItem(item);
    if (s.size() >= 2) chain.push_back(s);
  }
  return chain;
}

// The two lattice properties the BMS pruning rules lean on, checked on
// randomly grown chains against real tables:
//  - CT-support is anti-monotone: every CT-supported set has all its
//    subsets CT-supported, so a supported superset implies a supported
//    subset along the chain.
//  - chi-squared is non-decreasing when an item is added (each step's
//    table collapses onto its predecessor's), so with the paper's
//    size-independent cutoff, correlation is upward closed.
TEST(CorrelationProperties, CtSupportAntiMonotoneOnGrownChains) {
  const TransactionDatabase db = PropertyDb(314159);
  ContingencyTableBuilder builder(db);
  MiningOptions options;
  options.min_support = 5;
  options.min_cell_fraction = 0.25;
  const CorrelationJudge judge(options);
  Rng rng(2718);
  int supported_pairs = 0;
  for (int round = 0; round < 60; ++round) {
    const std::vector<Itemset> chain =
        RandomChain(rng, db.num_items(), /*max_size=*/5);
    bool prev_supported = true;
    for (const Itemset& s : chain) {
      const bool supported = judge.IsCtSupported(builder.Build(s));
      // supported(child) implies supported(parent): once support is
      // lost along the chain it must never come back.
      EXPECT_TRUE(prev_supported || !supported) << s.ToString();
      prev_supported = supported;
      supported_pairs += (s.size() == 2 && supported) ? 1 : 0;
    }
  }
  // The property must not pass vacuously: the planted blocks make many
  // chains start out supported.
  EXPECT_GT(supported_pairs, 10);
}

TEST(CorrelationProperties, Chi2NonDecreasingAndCorrelationUpwardClosed) {
  const TransactionDatabase db = PropertyDb(271828);
  ContingencyTableBuilder builder(db);
  MiningOptions options;
  options.significance = 0.9;  // default df policy: one cutoff for all sizes
  CorrelationJudge judge(options);
  Rng rng(1618);
  int correlated_sets = 0;
  for (int round = 0; round < 60; ++round) {
    const std::vector<Itemset> chain =
        RandomChain(rng, db.num_items(), /*max_size=*/5);
    double prev_chi2 = -1.0;
    bool prev_correlated = false;
    for (const Itemset& s : chain) {
      const stats::ContingencyTable table = builder.Build(s);
      const double chi2 = table.ChiSquaredStatistic();
      EXPECT_GE(chi2, prev_chi2 - 1e-9) << s.ToString();
      const bool correlated = judge.IsCorrelated(table);
      // correlated(parent) implies correlated(child).
      EXPECT_TRUE(correlated || !prev_correlated) << s.ToString();
      prev_chi2 = chi2;
      prev_correlated = correlated;
      correlated_sets += correlated ? 1 : 0;
    }
  }
  EXPECT_GT(correlated_sets, 10);
}

TEST(CorrelationJudge, RejectsBadOptions) {
  MiningOptions options;
  options.min_cell_fraction = 1.5;
  EXPECT_DEATH(CorrelationJudge{options}, "CCS_CHECK");
  options.min_cell_fraction = 0.25;
  options.max_set_size = 1;
  EXPECT_DEATH(CorrelationJudge{options}, "CCS_CHECK");
}

}  // namespace
}  // namespace ccs
