#include "core/judge.h"

#include <gtest/gtest.h>

#include "stats/chi_squared.h"
#include "stats/fisher.h"

namespace ccs {
namespace {

stats::ContingencyTable FigureBTable() {
  return stats::ContingencyTable(2, {11, 20, 39, 30});  // chi2 ~ 3.787
}

TEST(CorrelationJudge, CorrelationDependsOnAlpha) {
  MiningOptions options;
  options.significance = 0.9;
  CorrelationJudge lenient(options);
  EXPECT_TRUE(lenient.IsCorrelated(FigureBTable()));
  options.significance = 0.95;
  CorrelationJudge strict(options);
  EXPECT_FALSE(strict.IsCorrelated(FigureBTable()));
}

TEST(CorrelationJudge, CutoffMatchesQuantile) {
  MiningOptions options;
  options.significance = 0.9;
  CorrelationJudge judge(options);
  EXPECT_DOUBLE_EQ(judge.Cutoff(2), stats::ChiSquaredQuantile(0.9, 1));
  // Default df policy: cutoff independent of set size.
  EXPECT_DOUBLE_EQ(judge.Cutoff(4), judge.Cutoff(2));
}

TEST(CorrelationJudge, FullIndependenceDfGrowsCutoff) {
  MiningOptions options;
  options.significance = 0.9;
  options.full_independence_df = true;
  CorrelationJudge judge(options);
  EXPECT_DOUBLE_EQ(judge.Cutoff(2), stats::ChiSquaredQuantile(0.9, 1));
  EXPECT_DOUBLE_EQ(judge.Cutoff(3), stats::ChiSquaredQuantile(0.9, 4));
  EXPECT_DOUBLE_EQ(judge.Cutoff(4), stats::ChiSquaredQuantile(0.9, 11));
  EXPECT_GT(judge.Cutoff(4), judge.Cutoff(3));
}

TEST(CorrelationJudge, SingletonsNeverCorrelated) {
  MiningOptions options;
  options.significance = 0.0;  // cutoff 0: everything >= cutoff
  CorrelationJudge judge(options);
  const stats::ContingencyTable singleton(1, {10, 90});
  EXPECT_FALSE(judge.IsCorrelated(singleton));
}

TEST(CorrelationJudge, CtSupportUsesOptions) {
  MiningOptions options;
  options.min_support = 25;
  options.min_cell_fraction = 0.5;
  CorrelationJudge judge(options);
  EXPECT_TRUE(judge.IsCtSupported(FigureBTable()));  // 30 and 39 >= 25
  options.min_cell_fraction = 0.75;
  CorrelationJudge stricter(options);
  EXPECT_FALSE(stricter.IsCtSupported(FigureBTable()));
}

TEST(CorrelationJudge, PValueMatchesSf) {
  MiningOptions options;
  CorrelationJudge judge(options);
  const auto table = FigureBTable();
  EXPECT_NEAR(judge.PValue(table),
              stats::ChiSquaredSf(table.ChiSquaredStatistic(), 1), 1e-12);
  // Figure B is significant at p < 0.1 but not p < 0.05.
  EXPECT_LT(judge.PValue(table), 0.1);
  EXPECT_GT(judge.PValue(table), 0.05);
  const stats::ContingencyTable singleton(1, {10, 90});
  EXPECT_DOUBLE_EQ(judge.PValue(singleton), 1.0);
}

TEST(CorrelationJudge, FisherFallbackOnSparsePairs) {
  // Sparse table violating Cochran's rule: joint expectation
  // 20 * (3/20) * (3/20) = 0.45 < 1, but the observed joint count 3 is
  // extreme — the chi-squared statistic wildly overshoots while Fisher's
  // exact two-sided p-value is the trustworthy verdict.
  const stats::ContingencyTable sparse(2, {17, 0, 0, 3});
  ASSERT_FALSE(sparse.SatisfiesCochranRule());
  MiningOptions options;
  options.significance = 0.9;
  options.fisher_fallback = true;
  CorrelationJudge judge(options);
  const double exact = stats::FisherExactTwoSided(3, 0, 0, 17);
  EXPECT_EQ(judge.IsCorrelated(sparse), exact <= 0.1);
  // With a strict enough confidence the same table is rejected even
  // though its chi-squared statistic (= N = 20) is far beyond any cutoff.
  options.significance = 1.0 - exact / 2.0;
  CorrelationJudge strict(options);
  EXPECT_FALSE(strict.IsCorrelated(sparse));
  CorrelationJudge chi2_only([] {
    MiningOptions o;
    o.significance = 0.99;
    return o;
  }());
  EXPECT_TRUE(chi2_only.IsCorrelated(sparse));
}

TEST(CorrelationJudge, FisherFallbackLeavesHealthyTablesAlone) {
  MiningOptions options;
  options.significance = 0.9;
  options.fisher_fallback = true;
  CorrelationJudge with(options);
  options.fisher_fallback = false;
  CorrelationJudge without(options);
  const stats::ContingencyTable healthy(2, {11, 20, 39, 30});  // Figure B
  ASSERT_TRUE(healthy.SatisfiesCochranRule());
  EXPECT_EQ(with.IsCorrelated(healthy), without.IsCorrelated(healthy));
}

TEST(CorrelationJudge, RejectsBadOptions) {
  MiningOptions options;
  options.min_cell_fraction = 1.5;
  EXPECT_DEATH(CorrelationJudge{options}, "CCS_CHECK");
  options.min_cell_fraction = 0.25;
  options.max_set_size = 1;
  EXPECT_DEATH(CorrelationJudge{options}, "CCS_CHECK");
}

}  // namespace
}  // namespace ccs
