// Drain semantics and service-layer fault injection (DESIGN.md §13):
// every svc_* fault site maps to a well-defined degraded behavior — a
// shed connection, a silent close, a counted write error, or a memo-less
// run — never a crash or a hang. Runs under TSan in the thread-sanitizer
// flavor.

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <string>
#include <thread>

#include "core/session.h"
#include "service/service.h"
#include "service/socket_server.h"
#include "test_util.h"
#include "util/fault.h"

namespace ccs {
namespace service {
namespace {

using std::chrono::milliseconds;

// Disarms the global injector however the test exits.
struct FaultGuard {
  explicit FaultGuard(const char* spec) {
    EXPECT_TRUE(FaultInjector::Global().Configure(spec).ok());
  }
  ~FaultGuard() { FaultInjector::Global().Disable(); }
};

std::string TestSocketPath(const char* tag) {
  return "/tmp/ccs-drain-test-" + std::to_string(::getpid()) + "-" + tag +
         ".sock";
}

int ConnectTo(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  EXPECT_EQ(
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)),
      0)
      << std::strerror(errno);
  return fd;
}

// One request over a fresh connection; whatever arrives (possibly
// nothing — injected faults close connections) is returned. The send
// itself may fail: a shed connection (svc_accept) races the server's
// close against this write, and losing that race is the same observable
// outcome as a reply-less close.
std::string RoundTrip(const std::string& path, const std::string& line) {
  const int fd = ConnectTo(path);
  const std::string request = line + "\n";
  if (::send(fd, request.data(), request.size(), MSG_NOSIGNAL) !=
      static_cast<ssize_t>(request.size())) {
    ::close(fd);
    return "";
  }
  std::string response;
  char chunk[4096];
  while (response.find("END\n") == std::string::npos) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;
    response.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

struct TestServer {
  explicit TestServer(const std::string& path,
                      const ServiceClock* clock = nullptr)
      : service(DatabaseHandle::Create(testutil::SmallRandomDb(41),
                                       testutil::SmallCatalog()),
                ServiceOptions()),
        server(&service, MakeOptions(path), clock) {
    EXPECT_TRUE(server.Start().ok());
    serving = std::thread([this] { server.Serve(); });
  }
  ~TestServer() {
    if (serving.joinable()) {
      server.RequestShutdown();
      serving.join();
    }
  }
  static SocketServer::Options MakeOptions(const std::string& path) {
    SocketServer::Options options;
    options.socket_path = path;
    options.poll_interval = milliseconds(2);
    return options;
  }
  MiningService service;
  SocketServer server;
  std::thread serving;
};

TEST(ServiceFaultTest, SvcAcceptFaultShedsOneConnection) {
  const std::string path = TestSocketPath("accept");
  TestServer harness(path);
  FaultGuard fault("svc_accept:nth=1");

  // The shed connection sees a bare close — no frame, no crash.
  EXPECT_EQ(RoundTrip(path, "PING"), "");
  EXPECT_EQ(harness.service.metrics()->connections_rejected.load(), 1u);
  // nth=1 fires once; the daemon is whole again.
  EXPECT_EQ(RoundTrip(path, "PING"), "OK pong\nEND\n");
}

TEST(ServiceFaultTest, SvcReadFaultClosesSilentlyAndCounts) {
  const std::string path = TestSocketPath("read");
  TestServer harness(path);
  FaultGuard fault("svc_read:nth=1");

  EXPECT_EQ(RoundTrip(path, "PING"), "");
  EXPECT_EQ(harness.service.metrics()->read_errors.load(), 1u);
  EXPECT_EQ(RoundTrip(path, "PING"), "OK pong\nEND\n");
}

TEST(ServiceFaultTest, SvcWriteFaultCountsAndRecovers) {
  const std::string path = TestSocketPath("write");
  TestServer harness(path);
  FaultGuard fault("svc_write:nth=1");

  // The reply's send fails; the client sees a truncated (empty) frame.
  EXPECT_EQ(RoundTrip(path, "PING"), "");
  EXPECT_EQ(harness.service.metrics()->write_errors.load(), 1u);
  EXPECT_EQ(RoundTrip(path, "PING"), "OK pong\nEND\n");
}

TEST(ServiceFaultTest, SvcMemoFaultMinesWithoutCacheSameAnswer) {
  // Transport-free: HandleLine is the unit under test.
  MiningService service(
      DatabaseHandle::Create(testutil::SmallRandomDb(41),
                             testutil::SmallCatalog()),
      ServiceOptions());
  const std::string request = "MINE query=all with support = 0.05";

  const std::string warm = service.HandleLine(request);
  ASSERT_EQ(warm.rfind("OK sets=", 0), 0u) << warm.substr(0, 60);
  ASSERT_NE(warm.find("memo=miss"), std::string::npos);
  // Warmed: a replay normally hits.
  const std::string hit = service.HandleLine(request);
  ASSERT_NE(hit.find("memo=hit"), std::string::npos);

  {
    FaultGuard fault("svc_memo:nth=1");
    // Memo down for this request: the degraded path mines from scratch
    // and must produce byte-identical answers (modulo the memo marker).
    std::string faulted = service.HandleLine(request);
    EXPECT_NE(faulted.find("memo=miss"), std::string::npos);
    const std::size_t at = faulted.find("memo=miss");
    faulted.replace(at, 9, "memo=hit");
    EXPECT_EQ(faulted, hit);
    EXPECT_EQ(service.metrics()->memo_faults.load(), 1u);
  }
  // A faulted request must not have poisoned the cache: the entry the
  // warm run inserted still answers.
  EXPECT_NE(service.HandleLine(request).find("memo=hit"),
            std::string::npos);
}

TEST(ServiceDrainTest, ShutdownDrainsInFlightRequestToACompleteFrame) {
  const std::string path = TestSocketPath("drain");
  TestServer harness(path);

  // An in-flight MINE on one connection, SHUTDOWN on another: the run
  // must finish (or cancel) and flush a complete frame — drain never
  // abandons a connection mid-reply.
  std::string mine_response;
  std::thread mining([&] {
    mine_response = RoundTrip(path, "MINE query=all with support = 0.05");
  });
  std::this_thread::sleep_for(milliseconds(10));
  const std::string bye = RoundTrip(path, "SHUTDOWN");
  // The SHUTDOWN frame itself can race the listener close; empty (shed)
  // or the full goodbye are both clean outcomes.
  EXPECT_TRUE(bye == "OK bye\nEND\n" || bye.empty()) << bye;
  mining.join();
  harness.serving.join();
  ASSERT_EQ(mine_response.rfind("OK sets=", 0), 0u)
      << mine_response.substr(0, 60);
  EXPECT_EQ(mine_response.substr(mine_response.size() - 4), "END\n");
  // Clean drain removed the socket file.
  EXPECT_NE(::access(path.c_str(), F_OK), 0);
}

TEST(ServiceDrainTest, CancelInFlightYieldsCancelledPartialFrame) {
  // A deliberately heavy run (big universe, low support, no limits) so
  // the cancel lands while it is still mining; if the machine is fast
  // enough to finish first, completed is an equally clean outcome.
  MiningService service(
      DatabaseHandle::Create(testutil::SmallRandomDb(7, 48, 4000),
                             testutil::SmallCatalog(48)),
      ServiceOptions());
  std::string response;
  std::thread mining([&] {
    response = service.HandleLine("MINE query=all with support = 0.01");
  });
  std::this_thread::sleep_for(milliseconds(50));
  service.CancelInFlight();
  mining.join();
  ASSERT_EQ(response.rfind("OK sets=", 0), 0u) << response.substr(0, 60);
  EXPECT_TRUE(response.find("termination=cancelled") != std::string::npos ||
              response.find("termination=completed") != std::string::npos)
      << response.substr(0, 60);
  EXPECT_EQ(response.substr(response.size() - 4), "END\n");
  EXPECT_EQ(service.metrics()->drain_cancelled_runs.load(), 1u);
}

TEST(ServiceDrainTest, DrainDeadlineCancelsStuckRunUnderManualClock) {
  const std::string path = TestSocketPath("deadline");
  ManualClock clock;
  SocketServer::Options options = TestServer::MakeOptions(path);
  options.drain_deadline = milliseconds(500);
  MiningService service(
      DatabaseHandle::Create(testutil::SmallRandomDb(7, 48, 4000),
                             testutil::SmallCatalog(48)),
      ServiceOptions(), &clock);
  SocketServer server(&service, options, &clock);
  ASSERT_TRUE(server.Start().ok());
  std::thread serving([&server] { server.Serve(); });

  std::string response;
  std::thread mining([&] {
    response = RoundTrip(path, "MINE query=all with support = 0.01");
  });
  std::this_thread::sleep_for(milliseconds(50));
  server.RequestShutdown();
  // Serve() is now draining against the manual clock; advancing past the
  // drain deadline forces CancelInFlight, after which the run stops at
  // its next batch boundary and the partial reply flushes.
  std::this_thread::sleep_for(milliseconds(20));
  clock.Advance(milliseconds(501));
  serving.join();
  mining.join();
  ASSERT_EQ(response.rfind("OK sets=", 0), 0u) << response.substr(0, 60);
  EXPECT_EQ(response.substr(response.size() - 4), "END\n");
  EXPECT_GE(service.metrics()->drains_started.load(), 1u);
}

}  // namespace
}  // namespace service
}  // namespace ccs
