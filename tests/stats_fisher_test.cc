#include "stats/fisher.h"

#include <gtest/gtest.h>

#include "stats/chi_squared.h"
#include "stats/contingency.h"

namespace ccs::stats {
namespace {

// R's fisher.test reference values.
TEST(FisherExact, KnownTwoSidedValues) {
  // fisher.test(matrix(c(1, 9, 11, 3), 2, 2)) -> p = 0.002759...
  EXPECT_NEAR(FisherExactTwoSided(1, 9, 11, 3), 0.0027595, 1e-6);
  // fisher.test(matrix(c(3, 1, 1, 3), 2, 2)) -> p = 0.4857...
  EXPECT_NEAR(FisherExactTwoSided(3, 1, 1, 3), 0.4857143, 1e-6);
  // Lady tasting tea: fisher.test(matrix(c(4, 0, 0, 4), 2, 2)) -> 0.02857.
  EXPECT_NEAR(FisherExactTwoSided(4, 0, 0, 4), 0.0285714, 1e-6);
}

TEST(FisherExact, KnownOneSidedValues) {
  // Lady tasting tea one-sided: 1/70.
  EXPECT_NEAR(FisherExactGreater(4, 0, 0, 4), 1.0 / 70.0, 1e-9);
  // One-sided >= observed includes the observed table.
  EXPECT_NEAR(FisherExactGreater(3, 1, 1, 3), 16.0 / 70.0 + 1.0 / 70.0,
              1e-9);
}

TEST(FisherExact, DegenerateTables) {
  EXPECT_DOUBLE_EQ(FisherExactTwoSided(0, 0, 0, 0), 1.0);
  EXPECT_DOUBLE_EQ(FisherExactGreater(0, 0, 0, 0), 1.0);
  // A table with an empty margin has a single possible configuration.
  EXPECT_NEAR(FisherExactTwoSided(0, 5, 0, 5), 1.0, 1e-12);
  EXPECT_NEAR(FisherExactGreater(5, 0, 5, 0), 1.0, 1e-12);
}

TEST(FisherExact, ZeroMarginTablesAreCertain) {
  // Any zero margin pins the table: the hypergeometric support collapses
  // to a single point, so both p-values are exactly 1 no matter which of
  // the four margins vanishes.
  // Row margin a + b == 0 (x never occurs):
  EXPECT_NEAR(FisherExactTwoSided(0, 0, 7, 3), 1.0, 1e-12);
  EXPECT_NEAR(FisherExactGreater(0, 0, 7, 3), 1.0, 1e-12);
  // Column margin a + c == 0 (y never occurs):
  EXPECT_NEAR(FisherExactTwoSided(0, 4, 0, 9), 1.0, 1e-12);
  EXPECT_NEAR(FisherExactGreater(0, 4, 0, 9), 1.0, 1e-12);
  // Row margin c + d == 0 (x always occurs):
  EXPECT_NEAR(FisherExactTwoSided(6, 2, 0, 0), 1.0, 1e-12);
  EXPECT_NEAR(FisherExactGreater(6, 2, 0, 0), 1.0, 1e-12);
  // Column margin b + d == 0 (y always occurs):
  EXPECT_NEAR(FisherExactTwoSided(5, 0, 8, 0), 1.0, 1e-12);
  EXPECT_NEAR(FisherExactGreater(5, 0, 8, 0), 1.0, 1e-12);
}

TEST(FisherExact, LargeCountsStayFiniteAndInRange) {
  // The log-gamma formulation must not overflow or go negative at counts
  // far beyond what the golden corpus exercises.
  const double strong = FisherExactTwoSided(1000, 10, 10, 1000);
  EXPECT_GE(strong, 0.0);
  EXPECT_LT(strong, 1e-6);  // overwhelming association
  const double balanced = FisherExactTwoSided(500, 500, 500, 500);
  EXPECT_GT(balanced, 0.5);  // dead-on independent
  EXPECT_LE(balanced, 1.0 + 1e-12);
  const double one_sided = FisherExactGreater(500, 500, 500, 500);
  EXPECT_GT(one_sided, 0.0);
  EXPECT_LE(one_sided, 1.0 + 1e-12);
}

TEST(FisherExact, SymmetricUnderTransposition) {
  for (auto [a, b, c, d] :
       {std::tuple{5u, 2u, 3u, 8u}, std::tuple{1u, 7u, 4u, 2u}}) {
    EXPECT_NEAR(FisherExactTwoSided(a, b, c, d),
                FisherExactTwoSided(a, c, b, d), 1e-12);
  }
}

TEST(FisherExact, AgreesWithChiSquaredOnLargeTables) {
  // With comfortable cell counts the chi-squared p-value approximates the
  // exact one.
  const std::uint64_t a = 300;
  const std::uint64_t b = 200;
  const std::uint64_t c = 220;
  const std::uint64_t d = 280;
  const ContingencyTable table(2, {d, b, c, a});
  const double chi2_p = ChiSquaredSf(table.ChiSquaredStatistic(), 1);
  const double exact_p = FisherExactTwoSided(a, b, c, d);
  EXPECT_NEAR(chi2_p, exact_p, 0.15 * exact_p + 1e-6);
}

TEST(FisherExact, PValueGrowsTowardIndependence) {
  // Moving the observed table toward its expectation raises the p-value.
  EXPECT_LT(FisherExactTwoSided(9, 1, 1, 9),
            FisherExactTwoSided(7, 3, 3, 7));
  EXPECT_LT(FisherExactTwoSided(7, 3, 3, 7),
            FisherExactTwoSided(5, 5, 5, 5));
}

TEST(CochranRule, LargeBalancedTablePasses) {
  const ContingencyTable table(2, {40, 30, 20, 10});
  EXPECT_TRUE(table.SatisfiesCochranRule());
}

TEST(CochranRule, SparseTableFails) {
  // Expected count of the joint cell: 100 * 0.03 * 0.03 = 0.09 < 1.
  const ContingencyTable table(2, {94, 3, 3, 0});
  EXPECT_FALSE(table.SatisfiesCochranRule());
}

TEST(CochranRule, EightyPercentBoundary) {
  // 3-variable table (8 cells): uniform expecteds of exactly 5 pass.
  const ContingencyTable uniform(3, {5, 5, 5, 5, 5, 5, 5, 5});
  EXPECT_TRUE(uniform.SatisfiesCochranRule());
  // Skewed marginals push several expected counts below 5 but above 1:
  // presence probability 0.25 per variable, N = 64 -> the all-present
  // cell expects 1.0, and only the low-order cells reach 5.
  const ContingencyTable skewed(
      3, {27, 9, 9, 3, 9, 3, 3, 1});
  EXPECT_FALSE(skewed.SatisfiesCochranRule());
}

}  // namespace
}  // namespace ccs::stats
