// Property tests for the vectorized intersection/popcount kernel
// (src/core/simd_kernel.h, DESIGN.md §14).
//
// The contract under test: the vector path computes the same exact
// integers as the scalar path over the same words, for every width and
// alignment — including the tail words past the last full 256-bit step
// and the partial final word whose trailing bits must stay zero. The
// scalar DynamicBitset member ops remain the reference oracle throughout.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/ct_builder.h"
#include "core/simd_kernel.h"
#include "txn/database.h"
#include "util/bitset.h"
#include "util/rng.h"

namespace ccs {
namespace {

constexpr std::size_t kWordBits = DynamicBitset::kBitsPerWord;

// Fills a bitset with seeded random bits (roughly half set).
DynamicBitset RandomBitset(std::size_t num_bits, Rng& rng) {
  DynamicBitset bits(num_bits);
  for (std::size_t i = 0; i < num_bits; ++i) {
    if (rng.NextBernoulli(0.5)) bits.Set(i);
  }
  return bits;
}

std::uint64_t ScalarPopcountRef(const std::vector<KernelWord>& words,
                                std::size_t offset, std::size_t n) {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    total += static_cast<std::uint64_t>(__builtin_popcountll(words[offset + i]));
  }
  return total;
}

// --- Raw word-span kernels -----------------------------------------------

// Word counts that exercise every dispatch regime of the vector path: the
// scalar tail alone (n < one 256-bit step), exact multiples of the
// 16-word unrolled step, off-by-one around it, and spans that cross the
// 2048-word L1 block boundary (so the blocked outer loop runs more than
// once with a partial final block).
std::vector<std::size_t> KernelSpanSizes() {
  std::vector<std::size_t> sizes;
  for (std::size_t n = 0; n <= 36; ++n) sizes.push_back(n);
  for (std::size_t n : {std::size_t{63}, std::size_t{64}, std::size_t{65},
                        std::size_t{255}, std::size_t{256}, std::size_t{257},
                        std::size_t{2047}, std::size_t{2048},
                        std::size_t{2049}, std::size_t{2048 + 17},
                        std::size_t{2 * 2048 + 3}}) {
    sizes.push_back(n);
  }
  return sizes;
}

TEST(SimdKernelRaw, CountKernelsMatchScalarAtEveryWidthAndOffset) {
  Rng rng(20260808);
  const std::size_t kMaxSpan = 2 * 2048 + 3;
  // Offsets 0..7 words cover every 64-bit misalignment of a 256-bit lane;
  // the loads are memcpy-based so none of them may fault or diverge.
  const std::size_t kMaxOffset = 8;
  std::vector<KernelWord> a(kMaxOffset + kMaxSpan);
  std::vector<KernelWord> b(kMaxOffset + kMaxSpan);
  for (KernelWord& w : a) w = rng.NextU64();
  for (KernelWord& w : b) w = rng.NextU64();

  for (std::size_t n : KernelSpanSizes()) {
    for (std::size_t offset = 0; offset < kMaxOffset; ++offset) {
      const KernelWord* pa = a.data() + offset;
      const KernelWord* pb = b.data() + offset;
      std::uint64_t want_pop = ScalarPopcountRef(a, offset, n);
      std::uint64_t want_and = 0;
      std::uint64_t want_andnot = 0;
      for (std::size_t i = 0; i < n; ++i) {
        want_and += static_cast<std::uint64_t>(
            __builtin_popcountll(pa[i] & pb[i]));
        want_andnot += static_cast<std::uint64_t>(
            __builtin_popcountll(pa[i] & ~pb[i]));
      }
      for (KernelMode mode : {KernelMode::kScalar, KernelMode::kVector}) {
        EXPECT_EQ(KernelPopcount(pa, n, mode), want_pop)
            << KernelModeName(mode) << " n=" << n << " offset=" << offset;
        EXPECT_EQ(KernelAndCount(pa, pb, n, mode), want_and)
            << KernelModeName(mode) << " n=" << n << " offset=" << offset;
        EXPECT_EQ(KernelAndNotCount(pa, pb, n, mode), want_andnot)
            << KernelModeName(mode) << " n=" << n << " offset=" << offset;
      }
    }
  }
}

TEST(SimdKernelRaw, CombineKernelsMatchScalarAtEveryWidthAndOffset) {
  Rng rng(777);
  const std::size_t kMaxSpan = 2 * 2048 + 3;
  const std::size_t kMaxOffset = 8;
  std::vector<KernelWord> a(kMaxOffset + kMaxSpan);
  std::vector<KernelWord> b(kMaxOffset + kMaxSpan);
  for (KernelWord& w : a) w = rng.NextU64();
  for (KernelWord& w : b) w = rng.NextU64();
  std::vector<KernelWord> want(kMaxSpan);
  std::vector<KernelWord> got(kMaxSpan);

  for (std::size_t n : KernelSpanSizes()) {
    for (std::size_t offset = 0; offset < kMaxOffset; ++offset) {
      const KernelWord* pa = a.data() + offset;
      const KernelWord* pb = b.data() + offset;
      for (int which = 0; which < 2; ++which) {
        std::uint64_t want_count = 0;
        for (std::size_t i = 0; i < n; ++i) {
          want[i] = which == 0 ? (pa[i] & pb[i]) : (pa[i] & ~pb[i]);
          want_count +=
              static_cast<std::uint64_t>(__builtin_popcountll(want[i]));
        }
        for (KernelMode mode : {KernelMode::kScalar, KernelMode::kVector}) {
          // Poison the destination so untouched words are caught.
          std::fill(got.begin(), got.end(), KernelWord{0xDEADBEEFDEADBEEF});
          if (which == 0) {
            KernelAnd(got.data(), pa, pb, n, mode);
          } else {
            KernelAndNot(got.data(), pa, pb, n, mode);
          }
          EXPECT_TRUE(std::equal(want.begin(), want.begin() + n, got.begin()))
              << KernelModeName(mode) << " which=" << which << " n=" << n
              << " offset=" << offset;
          if (which == 0) {
            std::fill(got.begin(), got.end(),
                      KernelWord{0xDEADBEEFDEADBEEF});
            EXPECT_EQ(KernelAndWriteCount(got.data(), pa, pb, n, mode),
                      want_count)
                << KernelModeName(mode) << " n=" << n << " offset=" << offset;
            EXPECT_TRUE(
                std::equal(want.begin(), want.begin() + n, got.begin()))
                << KernelModeName(mode) << " n=" << n << " offset=" << offset;
          }
        }
      }
    }
  }
}

// --- DynamicBitset wrappers: exhaustive tail-bit widths ------------------

TEST(SimdKernelBitset, EveryBitWidthZeroToThreeWordsMatchesScalarOps) {
  // Bit widths 0 .. 3*64 cover: the empty bitset, every partial-word
  // tail, exact word boundaries, and multi-word sets that still fit
  // below one vector step. Each width runs against several seeds so the
  // partial final word sees varied trailing patterns.
  for (std::size_t num_bits = 0; num_bits <= 3 * kWordBits; ++num_bits) {
    for (std::uint64_t seed : {1u, 2u, 3u}) {
      Rng rng(seed * 1000003 + num_bits);
      const DynamicBitset a = RandomBitset(num_bits, rng);
      const DynamicBitset b = RandomBitset(num_bits, rng);
      DynamicBitset want(num_bits);
      DynamicBitset got(num_bits);
      for (KernelMode mode : {KernelMode::kScalar, KernelMode::kVector}) {
        EXPECT_EQ(KernelCountAnd(a, b, mode), DynamicBitset::CountAnd(a, b))
            << KernelModeName(mode) << " bits=" << num_bits;
        EXPECT_EQ(KernelCountAndNot(a, b, mode),
                  DynamicBitset::CountAndNot(a, b))
            << KernelModeName(mode) << " bits=" << num_bits;

        want.AssignAnd(a, b);
        KernelAssignAnd(got, a, b, mode);
        EXPECT_EQ(got, want) << KernelModeName(mode) << " bits=" << num_bits;
        EXPECT_EQ(got.Count(), want.Count())
            << KernelModeName(mode) << " bits=" << num_bits;

        want.AssignAndNot(a, b);
        KernelAssignAndNot(got, a, b, mode);
        EXPECT_EQ(got, want) << KernelModeName(mode) << " bits=" << num_bits;

        want.ResetAll();
        const std::uint64_t want_count = want.AssignAndCount(a, b);
        got.ResetAll();
        EXPECT_EQ(KernelAssignAndCount(got, a, b, mode), want_count)
            << KernelModeName(mode) << " bits=" << num_bits;
        EXPECT_EQ(got, want) << KernelModeName(mode) << " bits=" << num_bits;
      }
    }
  }
}

TEST(SimdKernelBitset, AssignResizesDestinationAndKeepsTrailingBitsZero) {
  Rng rng(4242);
  const std::size_t num_bits = 2 * kWordBits + 13;  // partial final word
  const DynamicBitset a = RandomBitset(num_bits, rng);
  DynamicBitset b(num_bits);
  b.SetAll();  // all valid bits set; trailing bits of the last word zero
  for (KernelMode mode : {KernelMode::kScalar, KernelMode::kVector}) {
    DynamicBitset dst(5);  // wrong size on purpose
    KernelAssignAnd(dst, a, b, mode);
    ASSERT_EQ(dst.size(), num_bits) << KernelModeName(mode);
    EXPECT_EQ(dst, a) << KernelModeName(mode);
    // a & all-ones == a, and the popcount must not see phantom trailing
    // bits: Count() == the wrapper's count == the reference count.
    EXPECT_EQ(KernelCountAnd(a, b, mode), a.Count()) << KernelModeName(mode);
    EXPECT_EQ(dst.words().back() >> (num_bits % kWordBits), 0u)
        << KernelModeName(mode) << " trailing bits leaked";
  }
}

TEST(SimdKernelBitset, SeededRandomEquivalenceAcrossSizes) {
  // Randomized widths up to ~5000 bits (crossing several vector steps),
  // fixed seeds. Scalar member ops are the oracle for both modes.
  Rng rng(987654321);
  for (int round = 0; round < 40; ++round) {
    const std::size_t num_bits =
        static_cast<std::size_t>(rng.NextBounded(5000));
    const DynamicBitset a = RandomBitset(num_bits, rng);
    const DynamicBitset b = RandomBitset(num_bits, rng);
    const std::uint64_t want_and = DynamicBitset::CountAnd(a, b);
    const std::uint64_t want_andnot = DynamicBitset::CountAndNot(a, b);
    for (KernelMode mode : {KernelMode::kScalar, KernelMode::kVector}) {
      EXPECT_EQ(KernelCountAnd(a, b, mode), want_and)
          << KernelModeName(mode) << " bits=" << num_bits;
      EXPECT_EQ(KernelCountAndNot(a, b, mode), want_andnot)
          << KernelModeName(mode) << " bits=" << num_bits;
      DynamicBitset dst;
      EXPECT_EQ(KernelAssignAndCount(dst, a, b, mode), want_and)
          << KernelModeName(mode) << " bits=" << num_bits;
    }
  }
}

// --- Kernel selection ----------------------------------------------------

TransactionDatabase DenseRandomDb(std::size_t num_items,
                                  std::size_t num_transactions,
                                  std::uint64_t seed, double density = 0.3) {
  Rng rng(seed);
  TransactionDatabase db(num_items);
  for (std::size_t t = 0; t < num_transactions; ++t) {
    Transaction txn;
    for (ItemId i = 0; i < num_items; ++i) {
      if (rng.NextBernoulli(density)) txn.push_back(i);
    }
    db.Add(std::move(txn));
  }
  db.Finalize();
  return db;
}

TEST(SimdKernelSelect, FinalizeRecordsLayoutAndSelectionFollowsIt) {
  // Wide database: tid-sets span >= kSimdFriendlyWords words.
  const TransactionDatabase wide = DenseRandomDb(8, 300, 11);
  ASSERT_TRUE(wide.finalized());
  EXPECT_EQ(wide.tidset_words(), (300 + kWordBits - 1) / kWordBits);
  ASSERT_GE(wide.tidset_words(), TransactionDatabase::kSimdFriendlyWords);
  EXPECT_TRUE(wide.simd_friendly());
  EXPECT_EQ(SelectKernel(SimdOptions{}, wide), KernelMode::kVector);

  // Kill switch wins over layout.
  SimdOptions off;
  off.enabled = false;
  EXPECT_EQ(SelectKernel(off, wide), KernelMode::kScalar);

  // Narrow database: too few words for 256-bit lanes to pay.
  const TransactionDatabase narrow = DenseRandomDb(8, 100, 12);
  ASSERT_LT(narrow.tidset_words(), TransactionDatabase::kSimdFriendlyWords);
  EXPECT_FALSE(narrow.simd_friendly());
  EXPECT_EQ(SelectKernel(SimdOptions{}, narrow), KernelMode::kScalar);

  // Unfinalized databases always select scalar.
  TransactionDatabase unfinalized(4);
  EXPECT_EQ(SelectKernel(SimdOptions{}, unfinalized), KernelMode::kScalar);
}

TEST(SimdKernelSelect, ModeNames) {
  EXPECT_STREQ(KernelModeName(KernelMode::kScalar), "scalar");
  EXPECT_STREQ(KernelModeName(KernelMode::kVector), "vector");
}

// --- PairStage -----------------------------------------------------------

TEST(PairStageTest, PairSupportsMatchTidsetIntersections) {
  const TransactionDatabase db = DenseRandomDb(12, 500, 31);
  std::vector<ItemId> items{0, 2, 3, 5, 7, 8, 11};
  PairStage stage(db, items);
  stage.Accumulate(0, db.num_transactions());
  std::uint64_t want_ops_currency = 0;
  for (std::size_t j = 1; j < items.size(); ++j) {
    for (std::size_t i = 0; i < j; ++i) {
      const std::uint64_t want =
          DynamicBitset::CountAnd(db.tidset(items[i]), db.tidset(items[j]));
      EXPECT_EQ(stage.PairSupport(items[i], items[j]), want)
          << items[i] << "," << items[j];
      // Argument order must not matter.
      EXPECT_EQ(stage.PairSupport(items[j], items[i]), want);
      want_ops_currency += want;
    }
  }
  // ops() == sum over transactions of C(p,2) == sum over stage pairs of
  // their co-occurrence count.
  EXPECT_EQ(stage.ops(), want_ops_currency);
}

TEST(PairStageTest, ItemListIsNormalizedAndChunkingIsInvisible) {
  const TransactionDatabase db = DenseRandomDb(10, 300, 57);
  // Unsorted with duplicates; the stage must normalize.
  PairStage messy(db, {7, 1, 7, 4, 1, 9});
  EXPECT_EQ(messy.items(), (std::vector<ItemId>{1, 4, 7, 9}));
  EXPECT_EQ(messy.num_items(), 4u);

  PairStage whole(db, {1, 4, 7, 9});
  whole.Accumulate(0, db.num_transactions());

  // Accumulate in ragged chunks: identical counts and ops.
  Rng rng(5);
  std::size_t t = 0;
  while (t < db.num_transactions()) {
    const std::size_t step =
        1 + static_cast<std::size_t>(rng.NextBounded(97));
    const std::size_t end = std::min(t + step, db.num_transactions());
    messy.Accumulate(t, end);
    t = end;
  }
  for (ItemId a : whole.items()) {
    for (ItemId b : whole.items()) {
      if (a >= b) continue;
      EXPECT_EQ(messy.PairSupport(a, b), whole.PairSupport(a, b))
          << a << "," << b;
    }
  }
  EXPECT_EQ(messy.ops(), whole.ops());
}

TEST(PairStageTest, CellsForTriangularCounts) {
  EXPECT_EQ(PairStage::CellsFor(0), 0u);
  EXPECT_EQ(PairStage::CellsFor(1), 0u);
  EXPECT_EQ(PairStage::CellsFor(2), 1u);
  EXPECT_EQ(PairStage::CellsFor(3), 3u);
  EXPECT_EQ(PairStage::CellsFor(100), 4950u);
}

TEST(PairStageTest, BuildPairFromStageMatchesRecursiveBuild) {
  const TransactionDatabase db = DenseRandomDb(12, 700, 91);
  std::vector<ItemId> items;
  for (ItemId i = 0; i < db.num_items(); ++i) items.push_back(i);
  PairStage stage(db, items);
  stage.Accumulate(0, db.num_transactions());

  ContingencyTableBuilder builder(db);
  std::uint64_t expected_pair_tables = 0;
  for (ItemId a = 0; a < db.num_items(); ++a) {
    for (ItemId b = a + 1; b < db.num_items(); ++b) {
      const Itemset s{a, b};
      const stats::ContingencyTable want = builder.Build(s);
      const stats::ContingencyTable got = builder.BuildPairFromStage(s, stage);
      ++expected_pair_tables;
      ASSERT_EQ(got.num_vars(), 2);
      for (std::uint32_t mask = 0; mask < 4; ++mask) {
        EXPECT_EQ(got.cell(mask), want.cell(mask))
            << "s={" << a << "," << b << "} mask=" << mask;
      }
    }
  }
  // Stage-built tables tick both the overall and the stage counters.
  EXPECT_EQ(builder.pair_stage_tables(), expected_pair_tables);
  EXPECT_EQ(builder.tables_built(), 2 * expected_pair_tables);
}

}  // namespace
}  // namespace ccs
