#include "stats/contingency.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "stats/chi_squared.h"

namespace ccs::stats {
namespace {

// The paper's Figure B (coffee/doughnuts, adapted from Brin et al.):
// variable 0 = coffee, variable 1 = doughnuts.
//   (coffee, doughnuts) = 30, (coffee, no-d) = 20,
//   (no-c, doughnuts)   = 39, (no-c, no-d)   = 11;  N = 100.
ContingencyTable FigureBTable() {
  // cells indexed by mask: bit0 = coffee, bit1 = doughnuts.
  return ContingencyTable(2, {11, 20, 39, 30});
}

TEST(ContingencyTable, FigureBMarginals) {
  const auto table = FigureBTable();
  EXPECT_EQ(table.total(), 100u);
  EXPECT_EQ(table.MarginalCount(0), 50u);  // coffee row sum
  EXPECT_EQ(table.MarginalCount(1), 69u);  // doughnuts column sum
  EXPECT_EQ(table.cell(0b11), 30u);
  EXPECT_EQ(table.cell(0b01), 20u);
  EXPECT_EQ(table.cell(0b10), 39u);
  EXPECT_EQ(table.cell(0b00), 11u);
}

TEST(ContingencyTable, FigureBExpectedCounts) {
  const auto table = FigureBTable();
  EXPECT_NEAR(table.ExpectedCount(0b11), 34.5, 1e-12);
  EXPECT_NEAR(table.ExpectedCount(0b01), 15.5, 1e-12);
  EXPECT_NEAR(table.ExpectedCount(0b10), 34.5, 1e-12);
  EXPECT_NEAR(table.ExpectedCount(0b00), 15.5, 1e-12);
}

TEST(ContingencyTable, FigureBChiSquared) {
  const auto table = FigureBTable();
  // 2 * (4.5^2/34.5 + 4.5^2/15.5).
  EXPECT_NEAR(table.ChiSquaredStatistic(), 3.786817, 1e-5);
  // Correlated at 90% confidence (cutoff 2.706) but not at 95% (3.841).
  EXPECT_GT(table.ChiSquaredStatistic(), ChiSquaredQuantile(0.90, 1));
  EXPECT_LT(table.ChiSquaredStatistic(), ChiSquaredQuantile(0.95, 1));
}

TEST(ContingencyTable, ExpectedCountsSumToTotal) {
  const auto table = FigureBTable();
  double sum = 0.0;
  for (std::uint32_t mask = 0; mask < 4; ++mask) {
    sum += table.ExpectedCount(mask);
  }
  EXPECT_NEAR(sum, 100.0, 1e-9);
}

TEST(ContingencyTable, IndependentTableHasNearZeroStatistic) {
  // Perfectly independent 2x2: p0 = 0.5, p1 = 0.4, N = 200.
  ContingencyTable table(2, {60, 60, 40, 40});
  EXPECT_NEAR(table.ChiSquaredStatistic(), 0.0, 1e-9);
}

TEST(ContingencyTable, PerfectCorrelationStatisticEqualsN) {
  // Items always co-occur: chi2 = N for a 2x2 with p = 0.5.
  ContingencyTable table(2, {50, 0, 0, 50});
  EXPECT_NEAR(table.ChiSquaredStatistic(), 100.0, 1e-9);
}

TEST(ContingencyTable, DegenerateMarginalYieldsInfinityOrZero) {
  // Variable 1 never occurs: E = 0 on its "present" cells; observed also 0
  // there, so those cells contribute nothing (here the table is entirely
  // explained by variable 0's marginal: statistic 0).
  ContingencyTable never(2, {70, 30, 0, 0});
  EXPECT_NEAR(never.ChiSquaredStatistic(), 0.0, 1e-9);
}

TEST(ContingencyTable, EmptyTableIsZero) {
  ContingencyTable table(2, {0, 0, 0, 0});
  EXPECT_EQ(table.total(), 0u);
  EXPECT_DOUBLE_EQ(table.ChiSquaredStatistic(), 0.0);
  EXPECT_DOUBLE_EQ(table.ExpectedCount(0), 0.0);
}

TEST(ContingencyTable, ThreeVariableExpectedProduct) {
  // N = 8, each variable present in exactly half the transactions, all
  // minterms equally likely -> E = 1 per cell, chi2 = 0.
  ContingencyTable table(3, {1, 1, 1, 1, 1, 1, 1, 1});
  for (std::uint32_t mask = 0; mask < 8; ++mask) {
    EXPECT_NEAR(table.ExpectedCount(mask), 1.0, 1e-12) << mask;
  }
  EXPECT_NEAR(table.ChiSquaredStatistic(), 0.0, 1e-12);
}

TEST(ContingencyTable, FullIndependenceDf) {
  EXPECT_EQ(ContingencyTable(1, {1, 1}).FullIndependenceDf(), 1);
  EXPECT_EQ(ContingencyTable(2, {1, 1, 1, 1}).FullIndependenceDf(), 1);
  EXPECT_EQ(ContingencyTable(3, std::vector<std::uint64_t>(8, 1))
                .FullIndependenceDf(),
            4);
  EXPECT_EQ(ContingencyTable(4, std::vector<std::uint64_t>(16, 1))
                .FullIndependenceDf(),
            11);
}

TEST(ContingencyTable, SupportedCellFraction) {
  const auto table = FigureBTable();  // cells 11, 20, 39, 30
  EXPECT_DOUBLE_EQ(table.SupportedCellFraction(0), 1.0);
  EXPECT_DOUBLE_EQ(table.SupportedCellFraction(12), 0.75);
  EXPECT_DOUBLE_EQ(table.SupportedCellFraction(25), 0.5);
  EXPECT_DOUBLE_EQ(table.SupportedCellFraction(35), 0.25);
  EXPECT_DOUBLE_EQ(table.SupportedCellFraction(40), 0.0);
}

TEST(ContingencyTable, IsCtSupportedThreshold) {
  const auto table = FigureBTable();
  EXPECT_TRUE(table.IsCtSupported(25, 0.5));
  EXPECT_FALSE(table.IsCtSupported(25, 0.75));
  EXPECT_TRUE(table.IsCtSupported(11, 1.0));
  EXPECT_FALSE(table.IsCtSupported(12, 1.0));
}

TEST(ContingencyTable, SingleVariableIsNeverTestedButWellFormed) {
  ContingencyTable table(1, {60, 40});
  EXPECT_EQ(table.MarginalCount(0), 40u);
  EXPECT_EQ(table.FullIndependenceDf(), 1);
  // chi2 of a one-variable table against its own marginal is 0.
  EXPECT_NEAR(table.ChiSquaredStatistic(), 0.0, 1e-12);
}

TEST(ContingencyTableDeath, RejectsWrongCellCount) {
  EXPECT_DEATH(ContingencyTable(2, {1, 2, 3}), "CCS_CHECK");
}

}  // namespace
}  // namespace ccs::stats
