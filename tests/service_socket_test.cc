// End-to-end SocketServer test: a real ccsmined-style daemon (in
// process), 32 concurrent clients over the Unix socket, bit-identical
// responses for identical requests, clean SHUTDOWN draining, and socket
// file removal. Runs under TSan in the thread-sanitizer flavor.

#include "service/socket_server.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/session.h"
#include "service/service.h"
#include "test_util.h"

namespace ccs {
namespace service {
namespace {

std::string TestSocketPath(const char* tag) {
  return "/tmp/ccs-sock-test-" + std::to_string(::getpid()) + "-" + tag +
         ".sock";
}

// One request, one END-framed response, over a fresh connection.
std::string RoundTrip(const std::string& path, const std::string& line) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  EXPECT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)),
            0)
      << std::strerror(errno);
  const std::string request = line + "\n";
  EXPECT_EQ(::send(fd, request.data(), request.size(), 0),
            static_cast<ssize_t>(request.size()));
  std::string response;
  char chunk[4096];
  while (response.find("END\n") == std::string::npos) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;
    response.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST(SocketServerTest, ThirtyTwoConcurrentClientsBitIdentical) {
  HandleOptions handle_options;
  handle_options.pair_tier_budget_mib = 4;
  ServiceOptions service_options;
  // Queue deep enough that none of the 32 clients is turned away — this
  // test pins identity; overload rejection is pinned elsewhere.
  service_options.admission.max_concurrent = 4;
  service_options.admission.max_queued = 32;
  MiningService service(
      DatabaseHandle::Create(testutil::SmallRandomDb(41),
                             testutil::SmallCatalog(), handle_options),
      service_options);

  const std::string path = TestSocketPath("identity");
  SocketServer::Options server_options;
  server_options.socket_path = path;
  SocketServer server(&service, server_options);
  ASSERT_TRUE(server.Start().ok());
  std::thread serving([&server] { server.Serve(); });

  EXPECT_EQ(RoundTrip(path, "PING"), "OK pong\nEND\n");

  constexpr int kClients = 32;
  const std::string request = "MINE query=all with support = 0.05";
  std::vector<std::string> responses(kClients);
  std::vector<std::thread> clients;
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back(
        [&, i] { responses[i] = RoundTrip(path, request); });
  }
  for (std::thread& t : clients) t.join();

  // Every response is a complete OK frame; all are byte-identical once
  // the memo marker (miss for the first finisher, hit after) is folded.
  std::string reference;
  for (int i = 0; i < kClients; ++i) {
    ASSERT_EQ(responses[i].rfind("OK sets=", 0), 0u)
        << responses[i].substr(0, 60);
    ASSERT_EQ(responses[i].substr(responses[i].size() - 4), "END\n");
    std::string normalized = responses[i];
    const std::size_t at = normalized.find("memo=hit");
    if (at != std::string::npos) normalized.replace(at, 8, "memo=miss");
    if (reference.empty()) reference = normalized;
    EXPECT_EQ(normalized, reference) << "client " << i;
  }

  EXPECT_EQ(RoundTrip(path, "SHUTDOWN"), "OK bye\nEND\n");
  serving.join();
  // Clean shutdown removes the socket file.
  EXPECT_NE(::access(path.c_str(), F_OK), 0);
}

TEST(SocketServerTest, OverloadYieldsUnavailableNotCrash) {
  ServiceOptions service_options;
  service_options.admission.max_concurrent = 1;
  service_options.admission.max_queued = 1;
  MiningService service(
      DatabaseHandle::Create(testutil::SmallRandomDb(42, 12, 800),
                             testutil::SmallCatalog(12)),
      service_options);

  const std::string path = TestSocketPath("overload");
  SocketServer::Options server_options;
  server_options.socket_path = path;
  SocketServer server(&service, server_options);
  ASSERT_TRUE(server.Start().ok());
  std::thread serving([&server] { server.Serve(); });

  // Distinct queries defeat the memo fast path, so the single slot and
  // single queue entry genuinely saturate.
  constexpr int kClients = 8;
  std::vector<std::string> responses(kClients);
  std::vector<std::thread> clients;
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&, i] {
      responses[i] = RoundTrip(
          path, "MINE support=" + std::to_string(0.04 + 0.001 * i) +
                    " query=all");
    });
  }
  for (std::thread& t : clients) t.join();

  for (int i = 0; i < kClients; ++i) {
    EXPECT_TRUE(responses[i].rfind("OK sets=", 0) == 0 ||
                responses[i].rfind("ERR UNAVAILABLE", 0) == 0)
        << responses[i].substr(0, 60);
    EXPECT_EQ(responses[i].substr(responses[i].size() - 4), "END\n");
  }

  // Still alive and serving after the stampede.
  EXPECT_EQ(RoundTrip(path, "PING"), "OK pong\nEND\n");
  EXPECT_EQ(RoundTrip(path, "SHUTDOWN"), "OK bye\nEND\n");
  serving.join();
}

}  // namespace
}  // namespace service
}  // namespace ccs
