// End-to-end integration: paper-scale-ish data from both generators, all
// algorithms, cross-agreement (the universes here are too large for the
// oracle), planted-rule recovery, and parser-to-miner flows.

#include <gtest/gtest.h>

#include "constraints/agg_constraint.h"
#include "core/miner.h"
#include "datagen/catalog_generator.h"
#include "datagen/ibm_generator.h"
#include "datagen/rule_generator.h"
#include "query/parser.h"

namespace ccs {
namespace {

MiningOptions MediumOptions(std::size_t num_txns) {
  MiningOptions options;
  options.significance = 0.9;
  options.min_support = num_txns / 20;  // 5%
  options.min_cell_fraction = 0.25;
  options.max_set_size = 5;
  return options;
}

class IntegrationTest : public testing::Test {
 protected:
  static constexpr std::size_t kItems = 60;
  static constexpr std::size_t kTxns = 3000;

  static TransactionDatabase IbmDb() {
    IbmGeneratorConfig config;
    config.num_transactions = kTxns;
    config.num_items = kItems;
    config.avg_transaction_size = 8.0;
    config.avg_pattern_size = 3.0;
    config.num_patterns = 30;
    config.seed = 2000;
    return IbmGenerator(config).Generate();
  }

  static RuleGeneratorConfig RuleConfig() {
    RuleGeneratorConfig config;
    config.num_transactions = kTxns;
    config.num_items = kItems;
    config.avg_transaction_size = 8.0;
    config.num_rules = 5;
    config.rule_size = 2;
    config.seed = 2001;
    return config;
  }
};

TEST_F(IntegrationTest, ValidMinAlgorithmsAgreeOnIbmData) {
  const TransactionDatabase db = IbmDb();
  const ItemCatalog catalog = MakeLinearPriceCatalog(kItems);
  const MiningOptions options = MediumOptions(kTxns);
  for (const char* query :
       {"max(S.price) <= 30", "sum(S.price) <= 60", "min(S.price) <= 30",
        "min(S.price) <= 30 & max(S.price) <= 50"}) {
    const auto constraints = ParseConstraints(query);
    ASSERT_TRUE(constraints.has_value()) << query;
    const auto plus =
        Mine(Algorithm::kBmsPlus, db, catalog, *constraints, options);
    const auto plus_plus =
        Mine(Algorithm::kBmsPlusPlus, db, catalog, *constraints, options);
    EXPECT_EQ(plus.answers, plus_plus.answers) << query;
  }
}

TEST_F(IntegrationTest, MinValidAlgorithmsAgreeOnIbmData) {
  const TransactionDatabase db = IbmDb();
  const ItemCatalog catalog = MakeLinearPriceCatalog(kItems);
  const MiningOptions options = MediumOptions(kTxns);
  for (const char* query :
       {"max(S.price) <= 30", "min(S.price) <= 12", "sum(S.price) >= 40",
        "min(S.price) <= 12 & sum(S.price) <= 90"}) {
    const auto constraints = ParseConstraints(query);
    ASSERT_TRUE(constraints.has_value()) << query;
    const auto star =
        Mine(Algorithm::kBmsStar, db, catalog, *constraints, options);
    const auto star_star =
        Mine(Algorithm::kBmsStarStar, db, catalog, *constraints, options);
    const auto opt =
        Mine(Algorithm::kBmsStarStarOpt, db, catalog, *constraints, options);
    EXPECT_EQ(star.answers, star_star.answers) << query;
    EXPECT_EQ(star.answers, opt.answers) << query;
  }
}

TEST_F(IntegrationTest, AntiMonotoneQueriesCollapseAllFourAlgorithms) {
  const TransactionDatabase db = IbmDb();
  const ItemCatalog catalog = MakeLinearPriceCatalog(kItems);
  const MiningOptions options = MediumOptions(kTxns);
  const auto constraints =
      ParseConstraints("max(S.price) <= 40 & sum(S.price) <= 100");
  ASSERT_TRUE(constraints.has_value());
  ASSERT_TRUE(constraints->AllAntiMonotone());
  const auto plus =
      Mine(Algorithm::kBmsPlus, db, catalog, *constraints, options);
  for (Algorithm a : {Algorithm::kBmsPlusPlus, Algorithm::kBmsStar,
                      Algorithm::kBmsStarStar, Algorithm::kBmsStarStarOpt}) {
    EXPECT_EQ(Mine(a, db, catalog, *constraints, options).answers,
              plus.answers)
        << AlgorithmName(a);
  }
}

TEST_F(IntegrationTest, PlantedRulesAreMinedByEveryAlgorithm) {
  // The stated purpose of the paper's second data generator: verify the
  // algorithms "really correctly mine out all the correlation rules, which
  // are known in advance".
  const RuleGeneratorConfig config = RuleConfig();
  RuleGenerator generator(config);
  const TransactionDatabase db = generator.Generate();
  const ItemCatalog catalog = MakeLinearPriceCatalog(kItems);
  const MiningOptions options = MediumOptions(kTxns);
  ConstraintSet empty;
  for (Algorithm a : kAllAlgorithms) {
    const auto result = Mine(a, db, catalog, empty, options);
    for (const Transaction& rule : generator.rules()) {
      Itemset planted;
      for (ItemId i : rule) planted = planted.WithItem(i);
      EXPECT_TRUE(result.ContainsAnswer(planted))
          << AlgorithmName(a) << " missed " << planted.ToString();
    }
  }
}

TEST_F(IntegrationTest, ConstraintSelectivityShrinksBmsPlusPlusWork) {
  // The Figure 2 effect: lower selectivity => fewer tables for BMS++,
  // while BMS+ is oblivious to the constraint.
  const TransactionDatabase db = IbmDb();
  const ItemCatalog catalog = MakeLinearPriceCatalog(kItems);
  const MiningOptions options = MediumOptions(kTxns);
  std::uint64_t previous = 0;
  bool first = true;
  ConstraintSet unconstrained;
  const auto baseline =
      Mine(Algorithm::kBmsPlus, db, catalog, unconstrained, options);
  for (double selectivity : {0.1, 0.3, 0.5, 0.8}) {
    ConstraintSet constraints;
    constraints.Add(
        MaxLe(PriceThresholdForSelectivity(catalog, selectivity)));
    const auto result =
        Mine(Algorithm::kBmsPlusPlus, db, catalog, constraints, options);
    EXPECT_LE(result.stats.TotalTablesBuilt(),
              baseline.stats.TotalTablesBuilt());
    if (!first) {
      EXPECT_GE(result.stats.TotalTablesBuilt(), previous)
          << "selectivity " << selectivity;
    }
    previous = result.stats.TotalTablesBuilt();
    first = false;
  }
}

TEST_F(IntegrationTest, ParserDrivenEndToEnd) {
  // The paper's Section 2.2 style query, typed as text and executed.
  const TransactionDatabase db = IbmDb();
  const ItemCatalog catalog = MakeLinearPriceCatalog(kItems);
  const auto constraints = ParseConstraints(
      "{snacks} disjoint S.type & max(S.price) <= 55 & sum(S.price) >= 10");
  ASSERT_TRUE(constraints.has_value());
  const MiningOptions options = MediumOptions(kTxns);
  const auto valid_min =
      Mine(Algorithm::kBmsPlusPlus, db, catalog, *constraints, options);
  for (const Itemset& s : valid_min.answers) {
    EXPECT_TRUE(constraints->TestAll(s.span(), catalog)) << s.ToString();
    for (ItemId i : s) {
      EXPECT_NE(catalog.type_name(catalog.type(i)), "snacks");
      EXPECT_LE(catalog.price(i), 55.0);
    }
  }
  const auto min_valid =
      Mine(Algorithm::kBmsStarStar, db, catalog, *constraints, options);
  // Theorem 1.1 on real data.
  for (const Itemset& s : valid_min.answers) {
    EXPECT_TRUE(std::binary_search(min_valid.answers.begin(),
                                   min_valid.answers.end(), s));
  }
}

TEST_F(IntegrationTest, StatsAccountingIsConsistent) {
  const TransactionDatabase db = IbmDb();
  const ItemCatalog catalog = MakeLinearPriceCatalog(kItems);
  const MiningOptions options = MediumOptions(kTxns);
  const auto constraints = ParseConstraints("min(S.price) <= 30");
  ASSERT_TRUE(constraints.has_value());
  for (Algorithm a : kAllAlgorithms) {
    const auto result = Mine(a, db, catalog, *constraints, options);
    std::uint64_t candidates = 0;
    for (const auto& level : result.stats.levels) {
      // Every candidate is pruned, unsupported, or judged.
      EXPECT_LE(level.pruned_before_ct, level.candidates);
      EXPECT_LE(level.ct_supported, level.tables_built);
      EXPECT_LE(level.sig_added + level.notsig_added, level.ct_supported);
      candidates += level.candidates;
    }
    EXPECT_EQ(candidates, result.stats.TotalCandidates());
    EXPECT_GT(result.stats.elapsed_seconds, 0.0);
    if (a != Algorithm::kBms) {
      EXPECT_GE(result.stats.TotalCandidates(), result.answers.size());
    }
  }
}

}  // namespace
}  // namespace ccs
