#!/usr/bin/env python3
"""Fixture tests for scripts/ccs_analyze.py (registered as a tier1 ctest).

Three fixture trees under tests/lint/fixtures/, each laid out like the
repo (<tree>/src/core, ...), so the analyzer's path-based rule scoping is
exercised exactly as in production:

  bad/      every rule seeded at least once — including the scope-aware
            rules (lock-rank-order both as a per-site inversion and as a
            whole-program ABBA cycle, blocking-under-lock,
            deterministic-counter-taint, fault-site-coverage,
            ranked-mutex-required). The expected findings are declared
            *in the fixtures themselves* via `// rule: <id>` marker
            comments on the offending lines; this test asserts the
            analyzer's findings equal the marker set exactly (same file,
            same line, same rule — no misses, no extras).
  allowed/  the same violations silenced by `// ccs-lint: allow(<id>)`
            and `// ccs-lint: allow-file(<id>)` — must be clean.
  clean/    idiomatic look-alikes (descending lock nesting, cv waits
            under a lock, kTiming counters fed clock values, covered
            fault sites, banned tokens inside comments/strings) — must
            be clean, guarding against rule over-reach.

scripts/ccs_lint.py lives on as a shim over the analyzer; one test pins
that the old entry point still reports the same findings.
"""

import json
import pathlib
import re
import subprocess
import sys
import unittest

HERE = pathlib.Path(__file__).resolve().parent
REPO_ROOT = HERE.parent.parent
ANALYZER = REPO_ROOT / "scripts" / "ccs_analyze.py"
SHIM = REPO_ROOT / "scripts" / "ccs_lint.py"
FIXTURES = HERE / "fixtures"

MARKER_RE = re.compile(r"//\s*rule:\s*([\w-]+)")
FINDING_RE = re.compile(r"^(.+?):(\d+): \[([\w-]+)\]")


def run_analyzer(tree, entry=ANALYZER, extra=()):
    return subprocess.run(
        [sys.executable, str(entry), "--root", str(FIXTURES / tree),
         "--build-dir", str(FIXTURES / tree / "no-such-build"), *extra],
        capture_output=True, text=True)


def parse_findings(stdout):
    found = set()
    for line in stdout.splitlines():
        m = FINDING_RE.match(line)
        if m:
            found.add((m.group(1), int(m.group(2)), m.group(3)))
    return found


def expected_markers(tree):
    expected = set()
    root = FIXTURES / tree
    for path in sorted(root.rglob("*")):
        if path.suffix not in (".h", ".cc", ".cpp"):
            continue
        rel = path.relative_to(root).as_posix()
        for lineno, line in enumerate(
                path.read_text().splitlines(), start=1):
            m = MARKER_RE.search(line)
            if m:
                expected.add((rel, lineno, m.group(1)))
    return expected


class CcsAnalyzeFixtureTest(unittest.TestCase):
    def test_bad_tree_reports_exactly_the_marked_violations(self):
        expected = expected_markers("bad")
        self.assertGreaterEqual(
            len({rule for _, _, rule in expected}), 12,
            "fixture rot: the bad tree should seed every rule")
        result = run_analyzer("bad")
        self.assertEqual(result.returncode, 1, result.stdout + result.stderr)
        self.assertEqual(parse_findings(result.stdout), expected,
                         result.stdout)

    def test_allow_comments_suppress_each_finding(self):
        result = run_analyzer("allowed")
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)
        self.assertEqual(parse_findings(result.stdout), set(), result.stdout)

    def test_clean_lookalikes_produce_no_findings(self):
        result = run_analyzer("clean")
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)
        self.assertEqual(parse_findings(result.stdout), set(), result.stdout)

    def test_json_report_matches_the_text_findings(self):
        # --json - writes the same findings machine-readably (check.sh
        # consumes this); file/line/rule must agree with the text output.
        result = run_analyzer("bad", extra=("--json", "-"))
        self.assertEqual(result.returncode, 1, result.stdout + result.stderr)
        start = result.stdout.index("{")
        payload = json.loads(result.stdout[start:])
        self.assertEqual(payload["tool"], "ccs-analyze")
        from_json = {(f["file"], f["line"], f["rule"])
                     for f in payload["findings"]}
        self.assertEqual(from_json, expected_markers("bad"))
        for f in payload["findings"]:
            self.assertTrue(f["message"], f)

    def test_legacy_shim_reports_the_same_findings(self):
        shim = run_analyzer("bad", entry=SHIM)
        direct = run_analyzer("bad")
        self.assertEqual(shim.returncode, 1, shim.stdout + shim.stderr)
        self.assertEqual(parse_findings(shim.stdout),
                         parse_findings(direct.stdout))

    def test_real_sources_are_clean(self):
        # The acceptance gate itself: src/ under the default root.
        result = subprocess.run(
            [sys.executable, str(ANALYZER), "--build-dir",
             str(REPO_ROOT / "build")],
            capture_output=True, text=True)
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)


if __name__ == "__main__":
    unittest.main()
