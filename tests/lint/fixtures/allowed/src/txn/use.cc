// ccs-lint fixture: a deliberately dropped Status with the inline escape
// hatch and a justification, the one sanctioned way to discard.
namespace ccs_fixture {

struct Db {
  int AddOrError(int item);
};

inline void BestEffortWarmup(Db& db) {
  // Warmup is advisory; a failure here only means a cold start.
  db.AddOrError(1);  // ccs-lint: allow(discarded-status)
}

}  // namespace ccs_fixture
