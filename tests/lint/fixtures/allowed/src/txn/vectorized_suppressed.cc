// ccs-lint fixture: the vector-extension violations from the bad tree,
// each silenced by an escape hatch — the whole-file hatch for the
// intrinsics header, inline allow() for the rest. Must scan clean.
//
// Prototype staging ground for a kernel before it graduates into
// src/core/simd_kernel.cc:
// ccs-lint: allow-file(vector-ext-outside-kernel)
#include <immintrin.h>

namespace ccs_fixture {

typedef long V4 __attribute__((vector_size(32)));  // silenced by allow-file

inline __m256 WideZero() {
  return _mm256_setzero_ps();
}

}  // namespace ccs_fixture
