// The widened mutex-guarded-by violations from the bad tree, silenced
// inline per member.
#ifndef FIXTURE_TXN_SYNC_SUPPRESSED_H_
#define FIXTURE_TXN_SYNC_SUPPRESSED_H_

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

namespace ccs {

class TxnSync {
 private:
  std::shared_mutex table_mu_;  // ccs-lint: allow(mutex-guarded-by)
  std::recursive_mutex log_mu_;  // ccs-lint: allow(mutex-guarded-by)
  std::condition_variable ready_cv_;  // ccs-lint: allow(mutex-guarded-by)
};

}  // namespace ccs

#endif  // FIXTURE_TXN_SYNC_SUPPRESSED_H_
