// The ranked-mutex-required violation from the bad tree, silenced inline.
#ifndef FIXTURE_STREAM_RAW_SUPPRESSED_H_
#define FIXTURE_STREAM_RAW_SUPPRESSED_H_

#include <mutex>

#define CCS_GUARDED_BY(x)

namespace ccs {

class RawWindow {
 private:
  std::mutex mu_;  // ccs-lint: allow(ranked-mutex-required)
  int epoch_ CCS_GUARDED_BY(mu_) = 0;
};

}  // namespace ccs

#endif  // FIXTURE_STREAM_RAW_SUPPRESSED_H_
