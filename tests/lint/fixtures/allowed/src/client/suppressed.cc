// The same violations as bad/src/client/retry.cc, each suppressed with
// the inline escape hatch; the linter must report nothing here.
#include <chrono>

namespace ccs {
namespace client {

enum class StatusCode { kOk, kUnavailable, kDeadlineExceeded };

struct Result {
  StatusCode code;
};

Result AttemptOnce();

Result RequestWithSuppressedRetries() {
  Result result = AttemptOnce();
  // Hypothetical migration shim: the old daemon reported queue overflow
  // as DEADLINE_EXCEEDED, so this one code stays retryable until the
  // fleet is upgraded.
  while (result.code ==
         StatusCode::kDeadlineExceeded) {  // ccs-lint: allow(client-retry-only-unavailable)
    const auto started =
        std::chrono::steady_clock::now();  // ccs-lint: allow(service-wall-clock)
    (void)started;
    result = AttemptOnce();
  }
  return result;
}

}  // namespace client
}  // namespace ccs
