// ccs-lint fixture: the service wall-clock violation silenced by the
// inline escape hatch (a hypothetical sanctioned call site would say why
// here). ccs_lint_test.py asserts this tree is clean.
#include <chrono>

namespace ccs_fixture {

inline long SanctionedNow() {
  // One-off startup banner timestamp; never feeds an admission decision.
  return std::chrono::steady_clock::now()  // ccs-lint: allow(service-wall-clock)
      .time_since_epoch()
      .count();
}

}  // namespace ccs_fixture
