// The ranked inversion from the bad tree, silenced by the inline hatch
// (say why: this fixture pretends the outer lock is released before the
// inner one is used in anger).
#define CCS_GUARDED_BY(x)
#include "util/lock_rank.h"

namespace ccs {

class RankedPair {
 public:
  void Ascend() {
    const std::lock_guard<RankedMutex> low(low_mu_);
    const std::lock_guard<RankedMutex> high(high_mu_);  // ccs-lint: allow(lock-rank-order)
  }

 private:
  int data_ CCS_GUARDED_BY(low_mu_) = 0;
  RankedMutex low_mu_{LockRank::kFault};
  RankedMutex high_mu_{LockRank::kServiceStream};
};

}  // namespace ccs
