// The blocking-under-lock violations from the bad tree, silenced inline.
#define CCS_GUARDED_BY(x)
#include "util/lock_rank.h"

namespace ccs {

class Publisher {
 public:
  void PollUnderLock() {
    const std::lock_guard<RankedMutex> lock(mu_);
    ::poll(nullptr, 0, 100);  // ccs-lint: allow(blocking-under-lock)
  }

  void SleepUnderLock() {
    const std::lock_guard<RankedMutex> lock(mu_);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));  // ccs-lint: allow(blocking-under-lock)
  }

 private:
  int state_ CCS_GUARDED_BY(mu_) = 0;
  RankedMutex mu_{LockRank::kServiceHandle};
};

}  // namespace ccs
