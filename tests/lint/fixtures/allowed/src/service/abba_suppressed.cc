// The unranked ABBA pair from the bad tree, silenced with the file-wide
// hatch — the acquire-graph findings land on two different lines, and
// allow-file must cover graph-derived findings like any other.
// ccs-lint: allow-file(lock-rank-order)
#define CCS_GUARDED_BY(x)
#include "util/lock_rank.h"

namespace ccs {

class AbbaPair {
 public:
  void AThenB() {
    const std::lock_guard<RankedMutex> la(a_mu_);
    const std::lock_guard<RankedMutex> lb(b_mu_);
  }
  void BThenA() {
    const std::lock_guard<RankedMutex> lb(b_mu_);
    const std::lock_guard<RankedMutex> la(a_mu_);
  }

 private:
  int state_ CCS_GUARDED_BY(a_mu_) = 0;
  RankedMutex a_mu_;
  RankedMutex b_mu_;
};

}  // namespace ccs
