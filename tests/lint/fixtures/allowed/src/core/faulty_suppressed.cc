// The fault-site-coverage violation from the bad tree, silenced inline.
#include "util/fault.h"

namespace ccs {

bool LoadShard() {
  CCS_FAULT_POINT("fixture_uncovered_site");  // ccs-lint: allow(fault-site-coverage)
  return true;
}

}  // namespace ccs
