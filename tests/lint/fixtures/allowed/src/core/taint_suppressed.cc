// The deterministic-counter-taint violation from the bad tree, silenced
// inline.
#include "util/metrics.h"

namespace ccs {

class PhaseCounters {
 public:
  explicit PhaseCounters(MetricsRegistry* metrics) {
    tables_built_id_ =
        metrics->Counter("fixture.tables", MetricStability::kDeterministic);
  }

  void Record(MetricsRegistry* metrics, int shard) {
    metrics->Add(tables_built_id_, shard, std::chrono::steady_clock::now().time_since_epoch().count());  // ccs-lint: allow(deterministic-counter-taint)
  }

 private:
  MetricsRegistry::Id tables_built_id_;
};

}  // namespace ccs
