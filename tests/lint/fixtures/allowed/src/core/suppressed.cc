// ccs-lint fixture: the same violations as the bad tree, each silenced by
// an escape hatch. ccs_lint_test.py asserts this tree is clean, proving
// the inline allow() and file-level allow-file() comments both work.
//
// File-level suppression for the exception rule (this fixture "is" a
// fault-injection helper):
// ccs-lint: allow-file(throw-outside-util)
#include <cstdlib>
#include <unordered_map>

namespace ccs_fixture {

inline int RawRand() {
  // Deterministic replay harness: seeded once by the test driver.
  return rand();  // ccs-lint: allow(nondeterminism)
}

// Point-lookups only; never iterated on a result path.
inline std::unordered_map<int, int>  // ccs-lint: allow(unordered-container)
ItemIndex() {
  return {};
}

inline void Fail() {
  throw 1;  // silenced by the allow-file above
}

}  // namespace ccs_fixture
