// Fixture: a raw std::mutex member inside the ranked scope (src/stream) —
// annotated, so mutex-guarded-by is satisfied, but invisible to the
// runtime rank checker and the acquire-graph rules, which is exactly what
// ranked-mutex-required forbids.
#ifndef FIXTURE_STREAM_RAW_H_
#define FIXTURE_STREAM_RAW_H_

#include <mutex>

#define CCS_GUARDED_BY(x)

namespace ccs {

class RawWindow {
 private:
  std::mutex mu_;  // rule: ranked-mutex-required
  int epoch_ CCS_GUARDED_BY(mu_) = 0;
};

}  // namespace ccs

#endif  // FIXTURE_STREAM_RAW_H_
