// ccs-lint fixture: every nondeterminism ban in src/core, one per line,
// plus the iteration-order and exception rules. Each marked line must be
// reported by exactly the rule named in the trailing marker comment
// (ccs_lint_test.py asserts file:line/rule pairs against EXPECTED_BAD).
#include <cstdlib>
#include <ctime>
#include <random>
#include <unordered_map>

namespace ccs_fixture {

inline int SeedFromWallClock() {
  return static_cast<int>(time(nullptr));  // rule: nondeterminism (time)
}

inline int RawRand() {
  srand(42);       // rule: nondeterminism (srand)
  return rand();   // rule: nondeterminism (rand)
}

inline unsigned HardwareEntropy() {
  std::random_device rd;  // rule: nondeterminism (random_device)
  return rd();
}

inline long WallClockNow() {
  using Clock = std::chrono::system_clock;  // rule: nondeterminism
  return Clock::now().time_since_epoch().count();
}

inline std::unordered_map<int, int> CountByItem() {  // rule: unordered-container
  return {};
}

inline void Fail() {
  throw 1;  // rule: throw-outside-util
}

}  // namespace ccs_fixture
