// Fixture: a fault-injection site no test or script ever arms — the
// recovery path behind it is dead weight until a harness exercises it.
// (This fixture tree has no tests/ directory, so the corpus is empty.)
#include "util/fault.h"

namespace ccs {

bool LoadShard() {
  CCS_FAULT_POINT("fixture_uncovered_site");  // rule: fault-site-coverage
  return true;
}

}  // namespace ccs
