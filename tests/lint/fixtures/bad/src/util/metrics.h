// ccs-lint fixture: the metric shard-update path without noexcept. The
// real MetricsRegistry promises updates may run in destructors during
// exception unwinding; dropping noexcept from any of the three update
// entry points must trip the noexcept-shard-update rule.
#include <cstddef>
#include <cstdint>

namespace ccs_fixture {

class MetricsRegistry {
 public:
  using Id = std::size_t;

  void Add(Id id, std::size_t shard, std::uint64_t delta);  // rule: noexcept-shard-update
  void GaugeMax(Id id, std::size_t shard, std::uint64_t v);  // rule: noexcept-shard-update
  // Declared correctly — must NOT be reported even in this file.
  void Observe(Id id, std::size_t shard, std::uint64_t value) noexcept;
};

}  // namespace ccs_fixture
