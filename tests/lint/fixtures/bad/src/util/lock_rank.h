// Fixture stand-in for util/lock_rank.h: just enough of the hierarchy for
// the analyzer's collect pass to resolve RankedMutex member ranks in this
// tree. Deliberately violation-free.
#ifndef FIXTURE_UTIL_LOCK_RANK_H_
#define FIXTURE_UTIL_LOCK_RANK_H_

namespace ccs {

enum class LockRank : int {
  kServiceStream = 90,
  kServiceHandle = 80,
  kFault = 30,
};

}  // namespace ccs

#endif  // FIXTURE_UTIL_LOCK_RANK_H_
