// Seeded violations for client-retry-only-unavailable and for the
// service-wall-clock rule's src/client extension: a retry loop keyed on
// a non-retryable code, plus a raw clock read timing the backoff.
#include <chrono>

namespace ccs {
namespace client {

enum class StatusCode { kOk, kUnavailable, kDeadlineExceeded, kInternal };

struct Result {
  StatusCode code;
};

Result AttemptOnce();

Result RequestWithBadRetries() {
  Result result = AttemptOnce();
  for (int attempt = 1; attempt < 5; ++attempt) {
    // A deadline means the work may still complete server-side; blindly
    // re-issuing it is the retry-storm the contract forbids.
    const bool deadline =
        result.code == StatusCode::kDeadlineExceeded;  // rule: client-retry-only-unavailable
    const bool internal =
        result.code == StatusCode::kInternal;  // rule: client-retry-only-unavailable
    if (!deadline && !internal) break;
    const auto started =
        std::chrono::steady_clock::now();  // rule: service-wall-clock
    (void)started;
    result = AttemptOnce();
  }
  return result;
}

}  // namespace client
}  // namespace ccs
