// ccs-lint fixture: raw clock reads in the service layer. Admission and
// memo timing must flow through the injected ServiceClock; direct ::now()
// calls anywhere in src/service but clock.cc are violations.
#include <chrono>

namespace ccs_fixture {

inline long AdmissionDeadline() {
  return std::chrono::steady_clock::now()  // rule: service-wall-clock
      .time_since_epoch()
      .count();
}

inline long WallStamp() {
  return std::chrono::system_clock::now()  // rule: service-wall-clock
      .time_since_epoch()
      .count();
}

}  // namespace ccs_fixture
