// Fixture: lock-rank-order violations — one ranked inversion caught at
// the acquisition site, and one unranked ABBA pair only the whole-program
// acquire graph can see (each order looks locally innocent).
#define CCS_GUARDED_BY(x)
#include "util/lock_rank.h"

namespace ccs {

class RankedPair {
 public:
  void Ascend() {
    const std::lock_guard<RankedMutex> low(low_mu_);
    const std::lock_guard<RankedMutex> high(high_mu_);  // rule: lock-rank-order
  }

 private:
  int data_ CCS_GUARDED_BY(low_mu_) = 0;
  RankedMutex low_mu_{LockRank::kFault};
  RankedMutex high_mu_{LockRank::kServiceStream};
};

class AbbaPair {
 public:
  void AThenB() {
    const std::lock_guard<RankedMutex> la(a_mu_);
    const std::lock_guard<RankedMutex> lb(b_mu_);  // rule: lock-rank-order
  }
  void BThenA() {
    const std::lock_guard<RankedMutex> lb(b_mu_);
    const std::lock_guard<RankedMutex> la(a_mu_);  // rule: lock-rank-order
  }

 private:
  int state_ CCS_GUARDED_BY(a_mu_) = 0;
  // Ranks assigned at construction, invisible to the collect pass: the
  // per-site check cannot fire, the acquire-graph cycle check must.
  RankedMutex a_mu_;
  RankedMutex b_mu_;
};

}  // namespace ccs
