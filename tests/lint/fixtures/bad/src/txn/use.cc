// ccs-lint fixture: expression-statement calls whose Status result
// evaporates. The compiler catches these through the [[nodiscard]] class
// attribute once the code builds; the textual rule catches them in any
// file the compiler never sees (dead TUs, templates never instantiated).
#include <string>

namespace ccs_fixture {

struct Db {
  int AddOrError(int item);
  int FinalizeOrError();
};

int LoadBasketsFromFile(const std::string& path, int num_items);

inline void Ingest(Db& db) {
  db.AddOrError(7);                      // rule: discarded-status
  LoadBasketsFromFile("baskets.txt", 9); // rule: discarded-status
  // Consumed results — must NOT be reported.
  int rc = db.AddOrError(8);
  (void)rc;
  if (db.FinalizeOrError() != 0) {
    return;
  }
}

}  // namespace ccs_fixture
