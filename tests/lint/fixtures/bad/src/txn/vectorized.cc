// ccs-lint fixture: vector extensions and intrinsics outside the
// sanctioned kernel TU pair (src/core/simd_kernel.{h,cc}). The rule is
// scoped to all of src/ — this file sits in src/txn to prove the scope
// reaches beyond src/core. Every spelling the linter knows is seeded.
#include <immintrin.h>  // rule: vector-ext-outside-kernel
#include <arm_neon.h>   // rule: vector-ext-outside-kernel

namespace ccs_fixture {

typedef long V4 __attribute__((vector_size(32)));  // rule: vector-ext-outside-kernel

inline V4 WideAnd(V4 a, V4 b) { return a & b; }

inline __m256 WideZero() {  // rule: vector-ext-outside-kernel
  return _mm256_setzero_ps();  // rule: vector-ext-outside-kernel
}

inline long RawBuiltin(long a, long b) {
  return __builtin_ia32_andn_u64(a, b);  // rule: vector-ext-outside-kernel
}

}  // namespace ccs_fixture
