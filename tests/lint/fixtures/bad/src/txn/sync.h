// Fixture: the widened mutex-guarded-by rule — shared/recursive mutexes
// and condition variables are lock-like members too, and this file has no
// CCS_GUARDED_BY annotation at all.
#ifndef FIXTURE_TXN_SYNC_H_
#define FIXTURE_TXN_SYNC_H_

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

namespace ccs {

class TxnSync {
 private:
  std::shared_mutex table_mu_;  // rule: mutex-guarded-by
  std::recursive_mutex log_mu_;  // rule: mutex-guarded-by
  std::condition_variable ready_cv_;  // rule: mutex-guarded-by
};

}  // namespace ccs

#endif  // FIXTURE_TXN_SYNC_H_
