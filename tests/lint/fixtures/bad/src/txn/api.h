// ccs-lint fixture: a Status-returning API surface missing its
// [[nodiscard]] annotations, and a mutex invisible to the thread-safety
// analysis because no field is CCS_GUARDED_BY it.
#include <mutex>
#include <string>
#include <vector>

namespace ccs_fixture {

class Status;
template <typename T>
class StatusOr;

Status AddOrError(int item);                          // rule: status-nodiscard
StatusOr<int> ParseCountOrError(const std::string& t);  // rule: status-nodiscard
// Annotated correctly — must NOT be reported.
[[nodiscard]] Status FinalizeOrError();

class Ledger {
 public:
  void Append(int entry);

 private:
  std::mutex mutex_;                     // rule: mutex-guarded-by
  std::vector<int> entries_;
};

}  // namespace ccs_fixture
