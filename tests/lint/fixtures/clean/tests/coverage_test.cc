// Fixture test corpus for fault-site-coverage: arming the site named in
// src/core/covered.cc the way a real recovery test would.
#include "util/fault.h"

namespace ccs {

void ArmFixtureFault() {
  FaultInjector::Configure("fixture_covered_site=1");
}

}  // namespace ccs
