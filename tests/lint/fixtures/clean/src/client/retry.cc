// A contract-abiding client: retries keyed only on kUnavailable, peer
// codes decoded by name (never spelled as enumerators), and all timing
// through an injected clock. Mentions of kDeadlineExceeded in comments
// and "DEADLINE_EXCEEDED" in strings must not trip the linter.
#include <cstdint>
#include <string>

namespace ccs {
namespace client {

enum class StatusCode { kOk, kUnavailable, kDeadlineExceeded };

StatusCode StatusCodeFromName(const std::string& name);

struct Result {
  StatusCode code;
  std::string header;
};

struct InjectedClock {
  std::int64_t (*now_ms)();
};

Result AttemptOnce(const InjectedClock& clock);

Result RequestWithRetries(const InjectedClock& clock) {
  Result result = AttemptOnce(clock);
  for (int attempt = 1; attempt < 5; ++attempt) {
    // kDeadlineExceeded is deliberately NOT retried: the request may
    // still be running server-side (see "DEADLINE_EXCEEDED" in the
    // README failure-mode table).
    if (result.code != StatusCode::kUnavailable) break;
    const std::int64_t started = clock.now_ms();
    (void)started;
    result = AttemptOnce(clock);
  }
  if (result.code == StatusCode::kOk) return result;
  // Peer codes arrive as names on the wire and are decoded, not spelled.
  result.code = StatusCodeFromName(result.header);
  return result;
}

}  // namespace client
}  // namespace ccs
