// Clean look-alike for fault-site-coverage: the site string appears in
// this tree's tests/ directory, so the obligation is met. The mention of
// CCS_FAULT_POINT("fixture_comment_only_site") in this comment must not
// create an obligation — sites are read off the token stream, not raw
// text.
#include "util/fault.h"

namespace ccs {

bool LoadShard() {
  CCS_FAULT_POINT("fixture_covered_site");
  return true;
}

}  // namespace ccs
