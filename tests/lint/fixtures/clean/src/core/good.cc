// ccs-lint fixture: idiomatic code that must produce zero findings —
// guards against rule over-reach (steady_clock is fine, "time" inside
// identifiers is fine, sorted containers are fine, comments and strings
// mentioning banned tokens are fine).
#include <chrono>
#include <map>
#include <string>

namespace ccs_fixture {

// Comments may talk about rand(), time(), throw, or std::unordered_map
// without tripping anything; so may strings:
inline std::string Banner() { return "never calls rand() or throw"; }

inline long DeadlineNs() {
  // steady_clock is the sanctioned clock for deadlines.
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

inline int runtime_estimate(int level) { return level * 2; }

inline std::map<int, int> CountByItem() { return {}; }

}  // namespace ccs_fixture
