// Clean look-alike for deterministic-counter-taint: a kTiming counter may
// legitimately record clock-derived values — that is what the stability
// class is for (metrics_identity_test excludes kTiming ids).
#include "util/metrics.h"

namespace ccs {

class PhaseTimer {
 public:
  explicit PhaseTimer(MetricsRegistry* metrics) {
    wall_id_ = metrics->Counter("phase.fixture_ns", MetricStability::kTiming);
    work_id_ =
        metrics->Counter("fixture.work_items", MetricStability::kDeterministic);
  }

  void Finish(MetricsRegistry* metrics, int shard, long items) {
    // Deterministic id, deterministic value: clean.
    metrics->Add(work_id_, shard, items);
    // Clock value into a kTiming id: clean by design.
    metrics->Add(wall_id_, shard,
                 std::chrono::steady_clock::now().time_since_epoch().count());
  }

 private:
  MetricsRegistry::Id wall_id_;
  MetricsRegistry::Id work_id_;
};

}  // namespace ccs
