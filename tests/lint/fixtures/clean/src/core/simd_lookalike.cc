// ccs-lint fixture: code that talks about vector extensions without using
// them — comments and strings naming vector_size(32), <immintrin.h>,
// __m256, or _mm256_and_si256() are fine, as are identifiers that merely
// resemble the banned tokens. Must produce zero findings.
#include <string>
#include <vector>

namespace ccs_fixture {

// The real kernel uses __attribute__((vector_size(32))) lanes and could
// one day use _mm256_* intrinsics from <immintrin.h>; this file only
// documents that fact.
inline std::string KernelDoc() {
  return "dispatches __m256-wide ops via vector_size(32) lanes";
}

// Case differs, so the attribute pattern must not fire.
inline std::size_t VectorSize(const std::vector<int>& v) { return v.size(); }

// A member access spelled comm256_reset() shares no token boundary with
// the _mm* intrinsic namespace.
struct Channel {
  void comm256_reset() {}
};

}  // namespace ccs_fixture
