// ccs-lint fixture: a correctly annotated Status surface and a properly
// guarded mutex — zero findings expected.
#include <mutex>
#include <vector>

#define CCS_GUARDED_BY(x)  // fixture stand-in for util/thread_annotations.h

namespace ccs_fixture {

class Status;

[[nodiscard]] Status AddOrError(int item);
[[nodiscard]] inline int ParseCountOrErrorCode() { return 0; }

class Ledger {
 public:
  void Append(int entry);

 private:
  std::mutex mutex_;
  std::vector<int> entries_ CCS_GUARDED_BY(mutex_);
};

}  // namespace ccs_fixture
