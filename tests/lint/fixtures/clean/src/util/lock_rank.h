// Fixture stand-in for util/lock_rank.h (see the bad tree's copy).
#ifndef FIXTURE_UTIL_LOCK_RANK_H_
#define FIXTURE_UTIL_LOCK_RANK_H_

namespace ccs {

enum class LockRank : int {
  kServiceStream = 90,
  kServiceHandle = 80,
  kFault = 30,
};

}  // namespace ccs

#endif  // FIXTURE_UTIL_LOCK_RANK_H_
