// Clean look-alike for ranked-mutex-required: a RankedMutex in the
// ranked scope (src/stream) with its CCS_GUARDED_BY annotation — nothing
// to report. "std::mutex" in this comment must not count as a member.
#ifndef FIXTURE_STREAM_WINDOWED_H_
#define FIXTURE_STREAM_WINDOWED_H_

#define CCS_GUARDED_BY(x)
#include "util/lock_rank.h"

namespace ccs {

class WindowedBuffer {
 private:
  RankedMutex mu_{LockRank::kFault};
  int epoch_ CCS_GUARDED_BY(mu_) = 0;
};

}  // namespace ccs

#endif  // FIXTURE_STREAM_WINDOWED_H_
