// ccs-lint fixture: src/service/clock.cc is the allowlisted real-clock
// call site — a ::now() here is sanctioned without any comment, proving
// the FILE_ALLOWLIST scoping. Everything else in this tree only consumes
// an injected clock.
#include <chrono>

namespace ccs_fixture {

inline std::chrono::steady_clock::time_point SystemNow() {
  return std::chrono::steady_clock::now();  // sanctioned definition site
}

}  // namespace ccs_fixture
