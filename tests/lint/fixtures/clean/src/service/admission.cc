// ccs-lint fixture: idiomatic service-layer code — clock reads go
// through an injected interface, "now"-ish identifiers and clock names
// in comments or strings must not trip the wall-clock rule.
#include <chrono>

namespace ccs_fixture {

class ServiceClock {
 public:
  virtual ~ServiceClock() = default;
  virtual std::chrono::steady_clock::time_point Now() const = 0;
};

// Mentions steady_clock::now() in prose only; the code calls the
// injected clock.
inline long QueueWaitMs(const ServiceClock& clock,
                        std::chrono::steady_clock::time_point enqueued) {
  const char* label = "steady_clock::now()";  // string literal, not a call
  (void)label;
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             clock.Now() - enqueued)
      .count();
}

}  // namespace ccs_fixture
