// Clean look-alikes for the lock-rank and blocking rules: strictly
// descending nested acquisition, a condition-variable wait under a lock
// (which releases while blocking, so it is exempt), and a blocking
// syscall with no guard live.
#define CCS_GUARDED_BY(x)
#include "util/lock_rank.h"

namespace ccs {

class OrderedPublisher {
 public:
  void PublishTick() {
    const std::lock_guard<RankedMutex> outer(stream_mu_);
    const std::lock_guard<RankedMutex> inner(handle_mu_);
    generation_ = generation_ + 1;
  }

  void WaitForWork() {
    std::unique_lock<RankedMutex> lock(handle_mu_);
    work_cv_.wait(lock, [this] { return generation_ > 0; });
  }

  void PollOutsideLock() {
    int fds = 0;
    {
      const std::lock_guard<RankedMutex> lock(handle_mu_);
      fds = generation_;
    }
    ::poll(nullptr, static_cast<unsigned long>(fds), 100);
  }

 private:
  int generation_ CCS_GUARDED_BY(handle_mu_) = 0;
  RankedMutex stream_mu_{LockRank::kServiceStream};
  RankedMutex handle_mu_{LockRank::kServiceHandle};
  std::condition_variable_any work_cv_;
};

}  // namespace ccs
