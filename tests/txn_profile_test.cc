#include "txn/profile.h"

#include <gtest/gtest.h>

#include "datagen/zipf_generator.h"

namespace ccs {
namespace {

TransactionDatabase SmallDb() {
  TransactionDatabase db(5);
  db.Add({0, 1, 2});
  db.Add({0, 1});
  db.Add({0});
  db.Add({});
  db.Finalize();
  return db;
}

TEST(DatabaseProfile, BasicCounts) {
  const DatabaseProfile profile = DatabaseProfile::Build(SmallDb());
  EXPECT_EQ(profile.num_transactions, 4u);
  EXPECT_EQ(profile.num_items, 5u);
  EXPECT_EQ(profile.num_active_items, 3u);
  EXPECT_DOUBLE_EQ(profile.avg_transaction_size, 1.5);
  EXPECT_EQ(profile.min_transaction_size, 0u);
  EXPECT_EQ(profile.max_transaction_size, 3u);
  ASSERT_EQ(profile.sorted_supports.size(), 5u);
  EXPECT_EQ(profile.SupportAtRank(0), 3u);  // item 0
  EXPECT_EQ(profile.SupportAtRank(1), 2u);  // item 1
  EXPECT_EQ(profile.SupportAtRank(2), 1u);  // item 2
  EXPECT_EQ(profile.SupportAtRank(4), 0u);
}

TEST(DatabaseProfile, FrequentItemCount) {
  const DatabaseProfile profile = DatabaseProfile::Build(SmallDb());
  EXPECT_EQ(profile.NumFrequentItems(1), 3u);
  EXPECT_EQ(profile.NumFrequentItems(2), 2u);
  EXPECT_EQ(profile.NumFrequentItems(3), 1u);
  EXPECT_EQ(profile.NumFrequentItems(4), 0u);
  EXPECT_EQ(profile.NumFrequentItems(0), 5u);
}

TEST(DatabaseProfile, GiniZeroForUniformSupports) {
  TransactionDatabase db(4);
  for (int i = 0; i < 10; ++i) db.Add({0, 1, 2, 3});
  db.Finalize();
  const DatabaseProfile profile = DatabaseProfile::Build(db);
  EXPECT_NEAR(profile.SupportGini(), 0.0, 1e-12);
}

TEST(DatabaseProfile, GiniHighForSkewedSupports) {
  TransactionDatabase db(10);
  for (int i = 0; i < 100; ++i) db.Add({0});
  db.Add({1});
  db.Finalize();
  const DatabaseProfile profile = DatabaseProfile::Build(db);
  EXPECT_GT(profile.SupportGini(), 0.45);
}

TEST(DatabaseProfile, ZipfDataIsMoreSkewedThanUniform) {
  ZipfGeneratorConfig zipf;
  zipf.num_transactions = 2000;
  zipf.num_items = 100;
  zipf.avg_transaction_size = 8.0;
  zipf.exponent = 1.2;
  zipf.seed = 3;
  const DatabaseProfile skewed =
      DatabaseProfile::Build(ZipfGenerator(zipf).Generate());
  zipf.exponent = 0.0;  // uniform popularity
  const DatabaseProfile flat =
      DatabaseProfile::Build(ZipfGenerator(zipf).Generate());
  EXPECT_GT(skewed.SupportGini(), flat.SupportGini() + 0.2);
}

TEST(DatabaseProfile, ToStringMentionsKeyNumbers) {
  const std::string text = DatabaseProfile::Build(SmallDb()).ToString();
  EXPECT_NE(text.find("4 transactions"), std::string::npos);
  EXPECT_NE(text.find("5 items"), std::string::npos);
  EXPECT_NE(text.find("avg 1.50"), std::string::npos);
}

TEST(ZipfGenerator, ShapeAndDeterminism) {
  ZipfGeneratorConfig config;
  config.num_transactions = 500;
  config.num_items = 50;
  config.avg_transaction_size = 6.0;
  config.seed = 9;
  const TransactionDatabase a = ZipfGenerator(config).Generate();
  const TransactionDatabase b = ZipfGenerator(config).Generate();
  EXPECT_EQ(a.num_transactions(), 500u);
  EXPECT_NEAR(a.AverageTransactionSize(), 6.0, 1.5);
  for (std::size_t t = 0; t < a.num_transactions(); ++t) {
    EXPECT_EQ(a.transaction(t), b.transaction(t));
  }
}

TEST(ZipfGenerator, PopularityFollowsRank) {
  ZipfGeneratorConfig config;
  config.num_transactions = 5000;
  config.num_items = 60;
  config.avg_transaction_size = 6.0;
  config.exponent = 1.0;
  config.seed = 10;
  const TransactionDatabase db = ZipfGenerator(config).Generate();
  // Low ids must be much more popular than high ids.
  EXPECT_GT(db.ItemSupport(0), 4 * db.ItemSupport(50));
  EXPECT_GT(db.ItemSupport(1), db.ItemSupport(30));
}

TEST(ZipfGenerator, PlantedGroupsCoOccur) {
  ZipfGeneratorConfig config;
  config.num_transactions = 4000;
  config.num_items = 80;
  config.avg_transaction_size = 6.0;
  config.num_groups = 3;
  config.group_size = 2;
  config.group_probability = 0.4;
  config.seed = 11;
  ZipfGenerator generator(config);
  const TransactionDatabase db = generator.Generate();
  ASSERT_EQ(generator.groups().size(), 3u);
  const double n = static_cast<double>(db.num_transactions());
  for (const Transaction& group : generator.groups()) {
    std::size_t joint = 0;
    for (std::size_t t = 0; t < db.num_transactions(); ++t) {
      if (db.Contains(t, group[0]) && db.Contains(t, group[1])) ++joint;
    }
    const double p0 = static_cast<double>(db.ItemSupport(group[0])) / n;
    const double p1 = static_cast<double>(db.ItemSupport(group[1])) / n;
    EXPECT_GT(joint / n, 1.2 * p0 * p1)
        << group[0] << "," << group[1];
  }
}

TEST(ZipfGenerator, RejectsOversizedGroupReservation) {
  ZipfGeneratorConfig config;
  config.num_items = 4;
  config.num_groups = 3;
  config.group_size = 2;
  EXPECT_DEATH(ZipfGenerator{config}, "CCS_CHECK");
}

}  // namespace
}  // namespace ccs
