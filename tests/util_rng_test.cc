#include "util/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace ccs {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, ReseedRestartsStream) {
  Rng a(9);
  const auto first = a.NextU64();
  a.NextU64();
  a.Seed(9);
  EXPECT_EQ(a.NextU64(), first);
}

TEST(Rng, BoundedStaysInRange) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(7), 7u);
  }
}

TEST(Rng, BoundedCoversAllValues) {
  Rng rng(4);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextBounded(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, NextIntInclusiveRange) {
  Rng rng(5);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(6);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double v = rng.NextDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 20000.0, 0.5, 0.02);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(7);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.NextBernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
  EXPECT_FALSE(rng.NextBernoulli(0.0));
  EXPECT_TRUE(rng.NextBernoulli(1.0));
}

TEST(Rng, PoissonMeanAndVariance) {
  Rng rng(8);
  for (double mean : {0.5, 4.0, 20.0, 50.0}) {
    double sum = 0.0;
    double sq = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
      const double v = rng.NextPoisson(mean);
      sum += v;
      sq += v * v;
    }
    const double m = sum / n;
    const double var = sq / n - m * m;
    EXPECT_NEAR(m, mean, 0.1 * mean + 0.1) << mean;
    EXPECT_NEAR(var, mean, 0.15 * mean + 0.3) << mean;
  }
}

TEST(Rng, GaussianMoments) {
  Rng rng(9);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.NextGaussian();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, GaussianShifted) {
  Rng rng(10);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.NextGaussian(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(Rng, ExponentialMean) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.NextExponential(3.0);
    ASSERT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum / n, 3.0, 0.1);
}

}  // namespace
}  // namespace ccs
