#include "core/report.h"

#include <gtest/gtest.h>

#include "core/miner.h"
#include "test_util.h"

namespace ccs {
namespace {

TEST(Report, FieldsMatchHandComputation) {
  // items 0 and 1 co-occur in 30 of 100 transactions, alone in 20 / 39.
  TransactionDatabase db(2);
  for (int i = 0; i < 30; ++i) db.Add({0, 1});
  for (int i = 0; i < 20; ++i) db.Add({0});
  for (int i = 0; i < 39; ++i) db.Add({1});
  for (int i = 0; i < 11; ++i) db.Add({});
  db.Finalize();
  ItemCatalog catalog;
  catalog.AddItem(2.5, "dairy", "milk");
  catalog.AddItem(4.0, "bakery", "bread");
  MiningOptions options;
  options.significance = 0.9;
  options.min_support = 25;
  options.min_cell_fraction = 0.25;

  const auto reports =
      BuildReports({Itemset{0, 1}}, db, catalog, options);
  ASSERT_EQ(reports.size(), 1u);
  const AnswerReport& r = reports[0];
  EXPECT_EQ(r.joint_support, 30u);
  // Figure B geometry: chi2 ~ 3.787, p in (0.05, 0.1).
  EXPECT_NEAR(r.chi_squared, 3.786817, 1e-5);
  EXPECT_GT(r.p_value, 0.05);
  EXPECT_LT(r.p_value, 0.1);
  EXPECT_DOUBLE_EQ(r.supported_cell_fraction, 0.5);  // cells 30 and 39
  // Expected joint under independence: 100 * 0.5 * 0.69 = 34.5.
  EXPECT_NEAR(r.joint_lift, 30.0 / 34.5, 1e-12);  // negative dependence
  EXPECT_DOUBLE_EQ(r.min_price, 2.5);
  EXPECT_DOUBLE_EQ(r.max_price, 4.0);
  EXPECT_DOUBLE_EQ(r.sum_price, 6.5);
  ASSERT_EQ(r.names.size(), 2u);
  EXPECT_EQ(r.names[0], "milk");
  EXPECT_EQ(r.names[1], "bread");
}

TEST(Report, TableRendersOneRowPerAnswer) {
  const TransactionDatabase db = testutil::SmallRandomDb(4);
  const ItemCatalog catalog = testutil::SmallCatalog();
  MiningOptions options;
  options.significance = 0.9;
  options.min_support = 15;
  options.min_cell_fraction = 0.25;
  options.max_set_size = 4;
  ConstraintSet constraints;
  const auto result =
      Mine(Algorithm::kBmsPlusPlus, db, catalog, constraints, options);
  ASSERT_FALSE(result.answers.empty());
  const auto reports = BuildReports(result.answers, db, catalog, options);
  const CsvTable table = ReportsToTable(reports);
  EXPECT_EQ(table.num_rows(), result.answers.size());
  EXPECT_EQ(table.header().front(), "items");
  EXPECT_EQ(table.header()[5], "lift");
  // Answers are correlated at the configured confidence: p <= 1 - alpha.
  for (const auto& r : reports) {
    EXPECT_LE(r.p_value, 1.0 - options.significance + 1e-9)
        << r.items.ToString();
  }
}

TEST(Report, EmptyAnswersYieldEmptyTable) {
  const TransactionDatabase db = testutil::SmallRandomDb(4);
  const ItemCatalog catalog = testutil::SmallCatalog();
  MiningOptions options;
  const auto reports = BuildReports({}, db, catalog, options);
  EXPECT_TRUE(reports.empty());
  EXPECT_EQ(ReportsToTable(reports).num_rows(), 0u);
}

}  // namespace
}  // namespace ccs
