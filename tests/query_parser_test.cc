#include "query/parser.h"

#include <gtest/gtest.h>

namespace ccs {
namespace {

using Items = std::vector<ItemId>;

ItemCatalog TestCatalog() {
  ItemCatalog catalog;
  const char* types[] = {"soda", "snacks", "frozenfood"};
  for (int i = 0; i < 9; ++i) {
    catalog.AddItem(i + 1.0, types[i % 3]);
  }
  return catalog;
}

TEST(Parser, SingleAggConstraint) {
  const auto set = ParseConstraints("max(S.price) <= 50");
  ASSERT_TRUE(set.has_value());
  EXPECT_EQ(set->size(), 1u);
  EXPECT_EQ(set->at(0).ToString(), "max(S.price) <= 50");
  EXPECT_EQ(set->at(0).monotonicity(), Monotonicity::kAntiMonotone);
}

TEST(Parser, ConjunctionFromThePaper) {
  // The Section 2.2 example query's constraint part.
  const auto set = ParseConstraints(
      "{snacks} disjoint S.type & {soda, frozenfood} subset S.type & "
      "max(S.price) <= 50 & sum(S.price) >= 100");
  ASSERT_TRUE(set.has_value());
  EXPECT_EQ(set->size(), 4u);

  const ItemCatalog catalog = TestCatalog();
  // items: prices i+1; types soda(0,3,6), snacks(1,4,7), frozenfood(2,5,8).
  // {6, 8} + enough sum: soda item 6 (price 7) + frozenfood 8 (price 9):
  // sum 16 < 100 -> fails; check bucket membership separately.
  const std::vector<ItemId> s = {6, 8};
  EXPECT_TRUE(set->TestAntiMonotone(s, catalog));
  EXPECT_TRUE(set->TestMonotone(Items{6, 8}, catalog) == false);  // sum too small
}

TEST(Parser, CountConstraint) {
  const auto set = ParseConstraints("count(S) >= 2");
  ASSERT_TRUE(set.has_value());
  const ItemCatalog catalog = TestCatalog();
  EXPECT_FALSE(set->TestAll(Items{1}, catalog));
  EXPECT_TRUE(set->TestAll(Items{1, 2}, catalog));
}

TEST(Parser, EqualityExpandsToPair) {
  const auto set = ParseConstraints("sum(S.price) = 5");
  ASSERT_TRUE(set.has_value());
  EXPECT_EQ(set->size(), 2u);
  const ItemCatalog catalog = TestCatalog();
  EXPECT_TRUE(set->TestAll(Items{0, 3}, catalog));   // prices 1 + 4
  EXPECT_FALSE(set->TestAll(Items{0, 1}, catalog));  // 3
  EXPECT_FALSE(set->TestAll(Items{2, 3}, catalog));  // 7
}

TEST(Parser, TypeCountConstraint) {
  const auto set = ParseConstraints("|S.type| <= 1");
  ASSERT_TRUE(set.has_value());
  const ItemCatalog catalog = TestCatalog();
  EXPECT_TRUE(set->TestAll(Items{0, 3}, catalog));   // both soda
  EXPECT_FALSE(set->TestAll(Items{0, 1}, catalog));  // soda + snacks
}

TEST(Parser, TypeCountEquality) {
  const auto set = ParseConstraints("|S.type| = 2");
  ASSERT_TRUE(set.has_value());
  EXPECT_EQ(set->size(), 2u);
  const ItemCatalog catalog = TestCatalog();
  EXPECT_FALSE(set->TestAll(Items{0, 3}, catalog));
  EXPECT_TRUE(set->TestAll(Items{0, 1}, catalog));
  EXPECT_FALSE(set->TestAll(Items{0, 1, 2}, catalog));
}

TEST(Parser, TypeSubset) {
  const auto set = ParseConstraints("S.type subset {soda, snacks}");
  ASSERT_TRUE(set.has_value());
  const ItemCatalog catalog = TestCatalog();
  EXPECT_TRUE(set->TestAll(Items{0, 1}, catalog));
  EXPECT_FALSE(set->TestAll(Items{0, 2}, catalog));
}

TEST(Parser, TypeIntersects) {
  const auto set = ParseConstraints("{soda} intersects S.type");
  ASSERT_TRUE(set.has_value());
  const ItemCatalog catalog = TestCatalog();
  EXPECT_TRUE(set->TestAll(Items{0, 1}, catalog));
  EXPECT_FALSE(set->TestAll(Items{1, 2}, catalog));
  EXPECT_TRUE(set->has_pushed_witness());
}

TEST(Parser, ItemSets) {
  const auto set = ParseConstraints("{1, 3} subset S & {5} disjoint S");
  ASSERT_TRUE(set.has_value());
  const ItemCatalog catalog = TestCatalog();
  EXPECT_TRUE(set->TestAll(Items{1, 3, 4}, catalog));
  EXPECT_FALSE(set->TestAll(Items{1, 4}, catalog));
  EXPECT_FALSE(set->TestAll(Items{1, 3, 5}, catalog));
}

TEST(Parser, AvgConstraintIsUnclassified) {
  const auto set = ParseConstraints("avg(S.price) <= 3");
  ASSERT_TRUE(set.has_value());
  EXPECT_TRUE(set->has_unclassified());
}

TEST(Parser, WhitespaceInsensitive) {
  const auto set = ParseConstraints("  min(S.price)>=2   &max(S.price)<=7 ");
  ASSERT_TRUE(set.has_value());
  EXPECT_EQ(set->size(), 2u);
}

struct BadQuery {
  const char* name;
  const char* text;
};

class ParserErrorTest : public testing::TestWithParam<BadQuery> {};

TEST_P(ParserErrorTest, RejectsWithDiagnostic) {
  std::string error;
  EXPECT_FALSE(ParseConstraints(GetParam().text, &error).has_value());
  EXPECT_FALSE(error.empty());
  EXPECT_NE(error.find("position"), std::string::npos);
}

TEST(ParserStatus, OkParseReturnsConstraints) {
  const auto set = ParseConstraintsOrError("max(S.price) <= 50");
  ASSERT_TRUE(set.ok());
  EXPECT_EQ(set->size(), 1u);
}

TEST(ParserStatus, ErrorCarriesLineAndColumn) {
  // The bad token sits on line 2 at column 15 (1-based).
  const auto set = ParseConstraintsOrError(
      "max(S.price) <= 50 &\nmin(S.price) <= oops");
  ASSERT_FALSE(set.ok());
  EXPECT_EQ(set.status().code(), StatusCode::kInvalidArgument);
  const std::string& message = set.status().message();
  EXPECT_NE(message.find("line 2"), std::string::npos) << message;
  EXPECT_NE(message.find("column"), std::string::npos) << message;
  EXPECT_NE(message.find("position"), std::string::npos) << message;
}

TEST(ParserStatus, FirstLineErrorIsColumnExact) {
  const auto set = ParseConstraintsOrError("max(S.price) < 3");
  ASSERT_FALSE(set.ok());
  // '<' (an invalid comparator here) starts at byte 13, column 14.
  EXPECT_NE(set.status().message().find("line 1, column 14"),
            std::string::npos)
      << set.status().message();
}

TEST(ParserStatus, ItemIdOverflowIsRejected) {
  const auto set = ParseConstraintsOrError("{99999999999999999999} subset S");
  ASSERT_FALSE(set.ok());
  EXPECT_EQ(set.status().code(), StatusCode::kInvalidArgument);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ParserErrorTest,
    testing::Values(BadQuery{"Empty", ""},
                    BadQuery{"UnknownAgg", "median(S.price) <= 3"},
                    BadQuery{"MissingOp", "max(S.price) 3"},
                    BadQuery{"BadComparator", "max(S.price) < 3"},
                    BadQuery{"MissingNumber", "max(S.price) <= x"},
                    BadQuery{"TrailingInput", "max(S.price) <= 3 extra"},
                    BadQuery{"DanglingAmp", "max(S.price) <= 3 &"},
                    BadQuery{"UnclosedBrace", "{soda subset S.type"},
                    BadQuery{"AvgEquality", "avg(S.price) = 3"},
                    BadQuery{"WrongTarget", "max(S.cost) <= 3"},
                    BadQuery{"ItemSetVerb", "{1,2} intersects S"},
                    BadQuery{"BadChar", "max(S.price) <= 3 # comment"}),
    [](const testing::TestParamInfo<BadQuery>& tp_info) {
      return tp_info.param.name;
    });

}  // namespace
}  // namespace ccs
