#include "util/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace ccs {
namespace {

TEST(CsvTable, HeaderOnly) {
  CsvTable t({"a", "b"});
  EXPECT_EQ(t.ToCsv(), "a,b\n");
  EXPECT_EQ(t.num_rows(), 0u);
}

TEST(CsvTable, CellTypes) {
  CsvTable t({"s", "i", "u", "d"});
  t.BeginRow();
  t.AddCell(std::string("x"));
  t.AddCell(std::int64_t{-5});
  t.AddCell(std::uint64_t{7});
  t.AddCell(1.23456, 2);
  EXPECT_EQ(t.ToCsv(), "s,i,u,d\nx,-5,7,1.23\n");
}

TEST(CsvTable, QuotesSpecialCharacters) {
  CsvTable t({"v"});
  t.BeginRow();
  t.AddCell(std::string("a,b"));
  t.BeginRow();
  t.AddCell(std::string("say \"hi\""));
  EXPECT_EQ(t.ToCsv(), "v\n\"a,b\"\n\"say \"\"hi\"\"\"\n");
}

TEST(CsvTable, AddRowChecksWidth) {
  CsvTable t({"a", "b"});
  t.AddRow({"1", "2"});
  EXPECT_EQ(t.num_rows(), 1u);
  EXPECT_DEATH(t.AddRow({"only-one"}), "CCS_CHECK");
}

TEST(CsvTable, AlignedTextPadsColumns) {
  CsvTable t({"name", "n"});
  t.AddRow({"x", "100"});
  t.AddRow({"longer", "1"});
  const std::string text = t.ToAlignedText();
  std::istringstream lines(text);
  std::string line;
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_EQ(line, "name    n");
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_EQ(line, "------  ---");
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_EQ(line, "x       100");
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_EQ(line, "longer  1");
}

TEST(CsvTable, WriteFileRoundTrip) {
  CsvTable t({"a"});
  t.AddRow({"1"});
  const std::string path = testing::TempDir() + "/ccs_csv_test.csv";
  ASSERT_TRUE(t.WriteFile(path));
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), "a\n1\n");
  std::remove(path.c_str());
}

TEST(CsvTable, WriteFileFailsOnBadPath) {
  CsvTable t({"a"});
  EXPECT_FALSE(t.WriteFile("/nonexistent-dir/x.csv"));
}

}  // namespace
}  // namespace ccs
