// CCS_CHECK failure routing: the formatted message must reach the
// FailureSink (and through the default sink, a flushed stderr) before the
// abort, so redirected CI logs and embedding harnesses see why a contract
// died.

#include "util/check.h"

#include <gtest/gtest.h>

#include <cstdio>

namespace {

TEST(CheckTest, PassingChecksAreSilent) {
  CCS_CHECK(true);
  CCS_CHECK_EQ(2 + 2, 4);
  CCS_CHECK_NE(1, 2);
  CCS_CHECK_LT(1, 2);
  CCS_CHECK_LE(2, 2);
  CCS_CHECK_GT(3, 2);
  CCS_CHECK_GE(3, 3);
  CCS_DCHECK(true);
}

using CheckDeathTest = ::testing::Test;

TEST(CheckDeathTest, FailureNamesConditionAndLocation) {
  // The default sink writes (and flushes) the formatted line to stderr,
  // which is what EXPECT_DEATH captures from the child process.
  EXPECT_DEATH(CCS_CHECK(1 == 2),
               "CCS_CHECK failed at .*util_check_test\\.cc:[0-9]+: 1 == 2");
}

TEST(CheckDeathTest, ComparisonMacrosReportTheComparison) {
  EXPECT_DEATH(CCS_CHECK_GE(1, 2), "CCS_CHECK failed at .*\\(1\\)>=\\(2\\)");
}

TEST(CheckDeathTest, CustomSinkObservesTheMessageBeforeAbort) {
  EXPECT_DEATH(
      {
        ccs::internal::SetFailureSink(+[](const char* message) {
          std::fprintf(stderr, "intercepted: %s", message);
          std::fflush(stderr);
        });
        CCS_CHECK(false);
      },
      "intercepted: CCS_CHECK failed at .*: false");
}

TEST(CheckDeathTest, NullSinkRestoresTheDefault) {
  EXPECT_DEATH(
      {
        ccs::internal::SetFailureSink(+[](const char*) {});
        ccs::internal::SetFailureSink(nullptr);
        CCS_CHECK(false);
      },
      "CCS_CHECK failed at .*: false");
}

}  // namespace
