// Tests for ConstraintSet: bucket splitting, pushing policy, item filters.

#include "constraints/constraint_set.h"

#include <gtest/gtest.h>

#include "constraints/agg_constraint.h"
#include "constraints/set_constraint.h"

namespace ccs {
namespace {

using Items = std::vector<ItemId>;

ItemCatalog TestCatalog() {
  ItemCatalog catalog;
  const char* types[] = {"a", "b", "c"};
  for (int i = 0; i < 12; ++i) {
    catalog.AddItem(i + 1.0, types[i % 3]);
  }
  return catalog;
}

TEST(ConstraintSet, EmptyConjunctionIsTrue) {
  const ItemCatalog catalog = TestCatalog();
  ConstraintSet set;
  EXPECT_TRUE(set.empty());
  EXPECT_TRUE(set.TestAll(Items{}, catalog));
  EXPECT_TRUE(set.AllAntiMonotone());
  EXPECT_FALSE(set.has_pushed_witness());
  EXPECT_FALSE(set.has_necessary_witness());
  EXPECT_EQ(set.ToString(), "true");
  const std::vector<ItemId> s = {0, 5};
  EXPECT_TRUE(set.TestAntiMonotone(s, catalog));
  EXPECT_TRUE(set.TestMonotone(s, catalog));
}

TEST(ConstraintSet, BucketsRouteTests) {
  const ItemCatalog catalog = TestCatalog();
  ConstraintSet set;
  set.Add(MaxLe(6.0));   // anti-monotone succinct
  set.Add(SumLe(15.0));  // anti-monotone non-succinct
  set.Add(MinLe(3.0));   // monotone succinct (pushed)
  set.Add(SumGe(5.0));   // monotone non-succinct
  EXPECT_EQ(set.size(), 4u);
  EXPECT_TRUE(set.has_anti_monotone());
  EXPECT_TRUE(set.has_monotone());
  EXPECT_FALSE(set.has_unclassified());
  EXPECT_FALSE(set.AllAntiMonotone());

  const std::vector<ItemId> s = {0, 4};  // prices 1, 5
  EXPECT_TRUE(set.TestAll(s, catalog));
  // {5} alone (price 6): fails MinLe(3) but satisfies both anti-monotone.
  const std::vector<ItemId> six = {5};
  EXPECT_TRUE(set.TestAntiMonotone(six, catalog));
  EXPECT_TRUE(set.TestAntiMonotoneNonSuccinct(six, catalog));
  EXPECT_FALSE(set.TestMonotone(six, catalog));
  EXPECT_FALSE(set.TestAll(six, catalog));
  // {9} (price 10): fails MaxLe(6) (succinct bucket) but the non-succinct
  // anti-monotone test alone passes.
  const std::vector<ItemId> ten = {9};
  EXPECT_TRUE(set.TestAntiMonotoneNonSuccinct(ten, catalog));
  EXPECT_FALSE(set.TestAntiMonotone(ten, catalog));
}

TEST(ConstraintSet, Good1Filter) {
  const ItemCatalog catalog = TestCatalog();
  ConstraintSet set;
  set.Add(MaxLe(6.0));
  set.Add(SumLe(4.0));
  // Singleton passes both anti-monotone constraints iff price <= 4.
  EXPECT_TRUE(set.SingletonSatisfiesAntiMonotone(0, catalog));
  EXPECT_TRUE(set.SingletonSatisfiesAntiMonotone(3, catalog));
  EXPECT_FALSE(set.SingletonSatisfiesAntiMonotone(4, catalog));
  EXPECT_FALSE(set.SingletonSatisfiesAntiMonotone(9, catalog));
}

TEST(ConstraintSet, PushesFirstSingleWitnessConstraint) {
  const ItemCatalog catalog = TestCatalog();
  ConstraintSet set;
  set.Add(SumGe(5.0));   // monotone, not succinct: not pushable
  set.Add(MinLe(3.0));   // pushed
  set.Add(MaxGe(9.0));   // also single-witness, but one is already pushed
  EXPECT_TRUE(set.has_pushed_witness());
  EXPECT_EQ(set.pushed_constraint_index(), 1);
  EXPECT_TRUE(set.IsWitnessItem(0, catalog));    // price 1 <= 3
  EXPECT_TRUE(set.IsWitnessItem(2, catalog));    // price 3 <= 3
  EXPECT_FALSE(set.IsWitnessItem(3, catalog));   // price 4
  EXPECT_TRUE(set.IsNecessaryWitnessItem(2, catalog));
}

TEST(ConstraintSet, MultiWitnessNotPushedButNecessaryFilterAvailable) {
  const ItemCatalog catalog = TestCatalog();
  ConstraintSet set;
  set.Add(std::make_unique<TypeContainsConstraint>(
      std::vector<std::string>{"a", "b"}));
  // Needs two witnesses: BMS++ must not treat it as pushed (footnote 5)...
  EXPECT_FALSE(set.has_pushed_witness());
  EXPECT_FALSE(set.IsWitnessItem(0, catalog));
  // ...but BMS** may use its first class as a necessary condition
  // (footnote 7): type "a" items.
  EXPECT_TRUE(set.has_necessary_witness());
  EXPECT_TRUE(set.IsNecessaryWitnessItem(0, catalog));    // type a
  EXPECT_FALSE(set.IsNecessaryWitnessItem(1, catalog));   // type b
}

TEST(ConstraintSet, SingleWitnessArrivingLaterGetsPushed) {
  const ItemCatalog catalog = TestCatalog();
  ConstraintSet set;
  set.Add(std::make_unique<TypeContainsConstraint>(
      std::vector<std::string>{"a", "b"}));
  set.Add(MinLe(3.0));
  EXPECT_TRUE(set.has_pushed_witness());
  EXPECT_EQ(set.pushed_constraint_index(), 1);
  // The necessary filter was claimed by the multi-witness constraint first;
  // it remains a valid necessary condition.
  EXPECT_TRUE(set.has_necessary_witness());
}

TEST(ConstraintSet, DeferredMonotoneIncludesPushed) {
  const ItemCatalog catalog = TestCatalog();
  ConstraintSet set;
  set.Add(MinLe(3.0));  // pushed
  // Even the pushed constraint is re-checked by the deferred bucket, so a
  // set without witnesses fails it.
  const std::vector<ItemId> no_witness = {5, 7};
  EXPECT_FALSE(set.TestMonotoneDeferred(no_witness, catalog));
  const std::vector<ItemId> with_witness = {1, 7};
  EXPECT_TRUE(set.TestMonotoneDeferred(with_witness, catalog));
}

TEST(ConstraintSet, UnclassifiedBucket) {
  const ItemCatalog catalog = TestCatalog();
  ConstraintSet set;
  set.Add(AvgLe(4.0));
  EXPECT_TRUE(set.has_unclassified());
  EXPECT_FALSE(set.AllAntiMonotone());
  const std::vector<ItemId> cheap = {0, 1};   // avg 1.5
  const std::vector<ItemId> pricey = {9, 10};  // avg 10.5
  EXPECT_TRUE(set.TestUnclassified(cheap, catalog));
  EXPECT_FALSE(set.TestUnclassified(pricey, catalog));
  // Unclassified constraints are in no monotone/anti-monotone bucket.
  EXPECT_TRUE(set.TestAntiMonotone(pricey, catalog));
  EXPECT_TRUE(set.TestMonotone(pricey, catalog));
  EXPECT_FALSE(set.TestAll(pricey, catalog));
}

TEST(ConstraintSet, AllAntiMonotoneDetection) {
  ConstraintSet set;
  set.Add(MaxLe(5.0));
  set.Add(SumLe(10.0));
  EXPECT_TRUE(set.AllAntiMonotone());
  set.Add(std::make_unique<ConstConstraint>(true));  // kBoth still counts
  EXPECT_TRUE(set.AllAntiMonotone());
  set.Add(MinLe(2.0));
  EXPECT_FALSE(set.AllAntiMonotone());
}

TEST(ConstraintSet, ToStringJoinsWithAmpersand) {
  ConstraintSet set;
  set.Add(MaxLe(5.0));
  set.Add(SumGe(10.0));
  EXPECT_EQ(set.ToString(), "max(S.price) <= 5 & sum(S.price) >= 10");
}

TEST(ConstraintSet, AddAllConsumesVector) {
  const ItemCatalog catalog = TestCatalog();
  ConstraintSet set;
  set.AddAll(MakeEqualityConstraint(Agg::kCount, 2.0));
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.TestAll(Items{3, 7}, catalog));
  EXPECT_FALSE(set.TestAll(Items{3}, catalog));
  EXPECT_FALSE(set.TestAll(Items{3, 7, 9}, catalog));
}

}  // namespace
}  // namespace ccs
