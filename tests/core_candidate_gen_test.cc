#include "core/candidate_gen.h"

#include <gtest/gtest.h>

namespace ccs {
namespace {

TEST(CandidateGen, AllPairs) {
  const auto pairs = AllPairs({1, 3, 5});
  ASSERT_EQ(pairs.size(), 3u);
  EXPECT_EQ(pairs[0], (Itemset{1, 3}));
  EXPECT_EQ(pairs[1], (Itemset{1, 5}));
  EXPECT_EQ(pairs[2], (Itemset{3, 5}));
  EXPECT_TRUE(AllPairs({7}).empty());
  EXPECT_TRUE(AllPairs({}).empty());
}

TEST(CandidateGen, WitnessedPairsRequireOnePlusItem) {
  const auto pairs = WitnessedPairs({1, 4}, {2, 7});
  // {1,4} plus the four cross pairs; never {2,7}.
  ASSERT_EQ(pairs.size(), 5u);
  for (const auto& p : pairs) {
    EXPECT_TRUE(p.Contains(1) || p.Contains(4)) << p.ToString();
  }
  ItemsetSet set(pairs.begin(), pairs.end());
  EXPECT_FALSE(set.contains(Itemset{2, 7}));
  EXPECT_TRUE(set.contains(Itemset{1, 2}));
  EXPECT_TRUE(set.contains(Itemset{1, 4}));
}

TEST(CandidateGen, AllCoSubsetsIn) {
  ItemsetSet closed;
  closed.insert(Itemset{1, 2});
  closed.insert(Itemset{1, 3});
  closed.insert(Itemset{2, 3});
  EXPECT_TRUE(AllCoSubsetsIn(Itemset{1, 2, 3}, closed));
  EXPECT_FALSE(AllCoSubsetsIn(Itemset{1, 2, 4}, closed));
}

TEST(CandidateGen, WitnessExemption) {
  // Witness item: 1. Subsets without it are exempt from membership.
  std::vector<bool> witness(10, false);
  witness[1] = true;
  ItemsetSet closed;
  closed.insert(Itemset{1, 2});
  closed.insert(Itemset{1, 3});
  // {2,3} is not in `closed` but contains no witness -> exempt.
  EXPECT_TRUE(AllWitnessedCoSubsetsIn(Itemset{1, 2, 3}, closed, witness));
  // {1,4} contains the witness and is missing -> blocked.
  EXPECT_FALSE(AllWitnessedCoSubsetsIn(Itemset{1, 2, 4}, closed, witness));
}

TEST(CandidateGen, ContainsWitness) {
  std::vector<bool> witness(5, false);
  witness[3] = true;
  EXPECT_TRUE(ContainsWitness(Itemset{1, 3}, witness));
  EXPECT_FALSE(ContainsWitness(Itemset{1, 2}, witness));
  EXPECT_FALSE(ContainsWitness(Itemset{}, witness));
}

TEST(CandidateGen, ExtendSeedsDeduplicatesAndSorts) {
  const std::vector<Itemset> seeds = {{1, 2}, {2, 3}};
  const std::vector<ItemId> universe = {1, 2, 3, 4};
  const auto out =
      ExtendSeeds(seeds, universe, [](const Itemset&) { return true; });
  // {1,2}+3, {1,2}+4, {2,3}+1 (dup of {1,2,3}), {2,3}+4.
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0], (Itemset{1, 2, 3}));
  EXPECT_EQ(out[1], (Itemset{1, 2, 4}));
  EXPECT_EQ(out[2], (Itemset{2, 3, 4}));
}

TEST(CandidateGen, ExtendSeedsAppliesKeep) {
  const std::vector<Itemset> seeds = {{1, 2}};
  const std::vector<ItemId> universe = {1, 2, 3, 4};
  const auto out = ExtendSeeds(seeds, universe, [](const Itemset& s) {
    return s.Contains(4);
  });
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], (Itemset{1, 2, 4}));
}

TEST(CandidateGen, ExtendSeedsEmptyInputs) {
  EXPECT_TRUE(
      ExtendSeeds({}, {1, 2}, [](const Itemset&) { return true; }).empty());
  EXPECT_TRUE(ExtendSeeds({Itemset{1}}, {},
                          [](const Itemset&) { return true; })
                  .empty());
}

TEST(CandidateGen, ApriorLikeClosureGeneratesExactlyTheFrontier) {
  // closed = all 2-subsets of {1,2,3,4} except {3,4}: the only 3-sets with
  // every co-subset closed are {1,2,3} and {1,2,4}.
  ItemsetSet closed;
  for (ItemId a = 1; a <= 4; ++a) {
    for (ItemId b = a + 1; b <= 4; ++b) {
      if (a == 3 && b == 4) continue;
      closed.insert(Itemset{a, b});
    }
  }
  const std::vector<Itemset> seeds(closed.begin(), closed.end());
  const auto out =
      ExtendSeeds(seeds, {1, 2, 3, 4}, [&closed](const Itemset& s) {
        return AllCoSubsetsIn(s, closed);
      });
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], (Itemset{1, 2, 3}));
  EXPECT_EQ(out[1], (Itemset{1, 2, 4}));
}

}  // namespace
}  // namespace ccs
