// Status/StatusOr: the return-value error channel for fallible surfaces.

#include "util/status.h"

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

namespace ccs {
namespace {

TEST(StatusTest, DefaultIsOk) {
  const Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.message(), "");
  EXPECT_EQ(status.ToString(), "OK");
  EXPECT_EQ(status, OkStatus());
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  const struct {
    Status status;
    StatusCode code;
    const char* name;
  } cases[] = {
      {InvalidArgumentError("m"), StatusCode::kInvalidArgument,
       "INVALID_ARGUMENT"},
      {NotFoundError("m"), StatusCode::kNotFound, "NOT_FOUND"},
      {DataLossError("m"), StatusCode::kDataLoss, "DATA_LOSS"},
      {FailedPreconditionError("m"), StatusCode::kFailedPrecondition,
       "FAILED_PRECONDITION"},
      {ResourceExhaustedError("m"), StatusCode::kResourceExhausted,
       "RESOURCE_EXHAUSTED"},
      {DeadlineExceededError("m"), StatusCode::kDeadlineExceeded,
       "DEADLINE_EXCEEDED"},
      {CancelledError("m"), StatusCode::kCancelled, "CANCELLED"},
      {InternalError("m"), StatusCode::kInternal, "INTERNAL"},
  };
  for (const auto& c : cases) {
    EXPECT_FALSE(c.status.ok());
    EXPECT_EQ(c.status.code(), c.code);
    EXPECT_EQ(c.status.message(), "m");
    EXPECT_EQ(StatusCodeName(c.code), std::string(c.name));
    EXPECT_EQ(c.status.ToString(), std::string(c.name) + ": m");
  }
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(DataLossError("x"), DataLossError("x"));
  EXPECT_FALSE(DataLossError("x") == DataLossError("y"));
  EXPECT_FALSE(DataLossError("x") == InternalError("x"));
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> result(7);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 7);
  EXPECT_EQ(*result, 7);
  EXPECT_TRUE(result.status().ok());
}

TEST(StatusOrTest, HoldsError) {
  const StatusOr<int> result(NotFoundError("no such row"));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(result.status().message(), "no such row");
}

TEST(StatusOrTest, MoveOnlyValueMovesOut) {
  StatusOr<std::vector<int>> result(std::vector<int>{1, 2, 3});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 3u);
  const std::vector<int> taken = std::move(result).value();
  EXPECT_EQ(taken, (std::vector<int>{1, 2, 3}));
}

Status FailWhen(bool fail) {
  if (fail) return InvalidArgumentError("asked to fail");
  return OkStatus();
}

Status Propagate(bool fail) {
  CCS_RETURN_IF_ERROR(FailWhen(fail));
  return OkStatus();
}

TEST(StatusMacroTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(Propagate(false).ok());
  const Status failed = Propagate(true);
  EXPECT_EQ(failed.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(failed.message(), "asked to fail");
}

StatusOr<int> ParseDigit(char c) {
  if (c < '0' || c > '9') return InvalidArgumentError("not a digit");
  return c - '0';
}

StatusOr<int> SumDigits(char a, char b) {
  CCS_ASSIGN_OR_RETURN(const int left, ParseDigit(a));
  CCS_ASSIGN_OR_RETURN(const int right, ParseDigit(b));
  return left + right;
}

TEST(StatusMacroTest, AssignOrReturnMovesValueOrPropagates) {
  const StatusOr<int> ok = SumDigits('3', '4');
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 7);
  const StatusOr<int> bad = SumDigits('3', 'x');
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().message(), "not a digit");
}

TEST(StatusOrDeathTest, ValueOnErrorIsContractViolation) {
  const StatusOr<int> result(InternalError("boom"));
  EXPECT_DEATH((void)result.value(), "CCS_CHECK failed");
}

TEST(StatusOrDeathTest, OkStatusWithoutValueIsContractViolation) {
  EXPECT_DEATH(StatusOr<int>{OkStatus()}, "CCS_CHECK failed");
}

}  // namespace
}  // namespace ccs
