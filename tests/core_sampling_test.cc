#include "core/sampling.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "constraints/agg_constraint.h"
#include "core/bms_plus_plus.h"
#include "datagen/rule_generator.h"
#include "test_util.h"

namespace ccs {
namespace {

MiningOptions BaseOptions(std::size_t num_txns) {
  MiningOptions options;
  options.significance = 0.9;
  options.min_support = num_txns / 20;
  options.min_cell_fraction = 0.25;
  options.max_set_size = 4;
  return options;
}

class SamplingSoundnessTest : public testing::TestWithParam<std::uint64_t> {
};

TEST_P(SamplingSoundnessTest, ConfirmedAnswersAreTrueAnswers) {
  const TransactionDatabase db =
      testutil::SmallRandomDb(GetParam(), 10, 2000);
  const ItemCatalog catalog = testutil::SmallCatalog();
  const MiningOptions options = BaseOptions(2000);
  ConstraintSet constraints;
  constraints.Add(MaxLe(8.0));
  const MiningResult exact =
      MineBmsPlusPlus(db, catalog, constraints, options);
  SamplingOptions sampling;
  sampling.sample_fraction = 0.2;
  sampling.seed = GetParam() * 11 + 1;
  const SampledMiningResult sampled = MineBmsPlusPlusSampled(
      db, catalog, constraints, options, sampling);
  EXPECT_EQ(sampled.confirmed, sampled.result.answers.size());
  EXPECT_LE(sampled.confirmed, sampled.candidates_from_sample);
  for (const Itemset& s : sampled.result.answers) {
    EXPECT_TRUE(exact.ContainsAnswer(s)) << s.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SamplingSoundnessTest,
                         testing::Values(1u, 2u, 3u, 4u, 5u));

TEST(Sampling, StrongPlantedRulesSurviveSampling) {
  RuleGeneratorConfig config;
  config.num_transactions = 10000;
  config.num_items = 60;
  config.avg_transaction_size = 8.0;
  config.num_rules = 5;
  config.seed = 77;
  RuleGenerator generator(config);
  const TransactionDatabase db = generator.Generate();
  const ItemCatalog catalog = testutil::SmallCatalog(60);
  const MiningOptions options = BaseOptions(config.num_transactions);
  ConstraintSet no_constraints;
  SamplingOptions sampling;
  sampling.sample_fraction = 0.1;
  sampling.seed = 5;
  const SampledMiningResult sampled = MineBmsPlusPlusSampled(
      db, catalog, no_constraints, options, sampling);
  // 70-90%-support rules are unmissable even in a 10% sample.
  for (const Transaction& rule : generator.rules()) {
    Itemset planted;
    for (ItemId i : rule) planted = planted.WithItem(i);
    EXPECT_TRUE(sampled.result.ContainsAnswer(planted))
        << planted.ToString();
  }
  EXPECT_GT(sampled.sample_size, 800u);
  EXPECT_LT(sampled.sample_size, 1200u);
}

TEST(Sampling, FullFractionMatchesExactMining) {
  const TransactionDatabase db = testutil::SmallRandomDb(9, 10, 1500);
  const ItemCatalog catalog = testutil::SmallCatalog();
  const MiningOptions options = BaseOptions(1500);
  ConstraintSet constraints;
  constraints.Add(MinLe(4.0));
  SamplingOptions sampling;
  sampling.sample_fraction = 1.0;
  sampling.support_slack = 1.0;
  const SampledMiningResult sampled = MineBmsPlusPlusSampled(
      db, catalog, constraints, options, sampling);
  const MiningResult exact =
      MineBmsPlusPlus(db, catalog, constraints, options);
  EXPECT_EQ(sampled.result.answers, exact.answers);
  EXPECT_EQ(sampled.sample_size, db.num_transactions());
}

TEST(Sampling, EmptyDatabaseYieldsEmptyResult) {
  // Zero transactions: the Bernoulli sample is necessarily empty, and the
  // miner must return cleanly instead of dividing by the database size.
  TransactionDatabase db(5);
  db.Finalize();
  const ItemCatalog catalog = testutil::SmallCatalog(5);
  ConstraintSet constraints;
  MiningOptions options;
  options.significance = 0.9;
  options.min_support = 1;
  options.min_cell_fraction = 0.25;
  options.max_set_size = 4;
  SamplingOptions sampling;
  sampling.sample_fraction = 0.5;
  const SampledMiningResult sampled = MineBmsPlusPlusSampled(
      db, catalog, constraints, options, sampling);
  EXPECT_EQ(sampled.sample_size, 0u);
  EXPECT_EQ(sampled.candidates_from_sample, 0u);
  EXPECT_EQ(sampled.confirmed, 0u);
  EXPECT_TRUE(sampled.result.answers.empty());
}

TEST(Sampling, SingleBasketDatabaseIsSoundAndAnswerFree) {
  // One transaction can never exhibit correlation: every contingency
  // table has a single populated cell, so CT-support fails and the
  // verification pass confirms nothing — but the whole pipeline (sample,
  // mine, verify) must run without tripping a check.
  TransactionDatabase db(5);
  db.Add({0, 1, 2});
  db.Finalize();
  const ItemCatalog catalog = testutil::SmallCatalog(5);
  ConstraintSet constraints;
  MiningOptions options;
  options.significance = 0.9;
  options.min_support = 1;
  options.min_cell_fraction = 0.25;
  options.max_set_size = 4;
  SamplingOptions sampling;
  sampling.sample_fraction = 1.0;
  sampling.support_slack = 1.0;
  const SampledMiningResult sampled = MineBmsPlusPlusSampled(
      db, catalog, constraints, options, sampling);
  EXPECT_EQ(sampled.sample_size, 1u);
  EXPECT_EQ(sampled.confirmed, sampled.result.answers.size());
  EXPECT_TRUE(sampled.result.answers.empty());
}

TEST(Sampling, RejectsBadFractions) {
  const TransactionDatabase db = testutil::SmallRandomDb(1);
  const ItemCatalog catalog = testutil::SmallCatalog();
  ConstraintSet constraints;
  const MiningOptions options = BaseOptions(300);
  SamplingOptions sampling;
  sampling.sample_fraction = 0.0;
  EXPECT_DEATH(MineBmsPlusPlusSampled(db, catalog, constraints, options,
                                      sampling),
               "CCS_CHECK");
  sampling.sample_fraction = 0.5;
  sampling.support_slack = 1.5;
  EXPECT_DEATH(MineBmsPlusPlusSampled(db, catalog, constraints, options,
                                      sampling),
               "CCS_CHECK");
}

}  // namespace
}  // namespace ccs
