#include "core/itemset.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "util/rng.h"

namespace ccs {
namespace {

TEST(Itemset, DefaultIsEmpty) {
  Itemset s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.size(), 0u);
  EXPECT_EQ(s.ToString(), "{}");
}

TEST(Itemset, SortsOnConstruction) {
  Itemset s{9, 2, 5};
  EXPECT_EQ(s.size(), 3u);
  EXPECT_EQ(s[0], 2u);
  EXPECT_EQ(s[1], 5u);
  EXPECT_EQ(s[2], 9u);
  EXPECT_EQ(s.ToString(), "{2, 5, 9}");
}

TEST(Itemset, DuplicatesDie) {
  EXPECT_DEATH((Itemset{1, 1}), "CCS_CHECK");
}

TEST(Itemset, Contains) {
  Itemset s{3, 7, 11};
  EXPECT_TRUE(s.Contains(7));
  EXPECT_FALSE(s.Contains(5));
}

TEST(Itemset, WithItemKeepsOrder) {
  Itemset s{2, 9};
  EXPECT_EQ(s.WithItem(5), (Itemset{2, 5, 9}));
  EXPECT_EQ(s.WithItem(1), (Itemset{1, 2, 9}));
  EXPECT_EQ(s.WithItem(12), (Itemset{2, 9, 12}));
  // Original untouched.
  EXPECT_EQ(s, (Itemset{2, 9}));
}

TEST(Itemset, WithoutIndexRemoves) {
  Itemset s{2, 5, 9};
  EXPECT_EQ(s.WithoutIndex(0), (Itemset{5, 9}));
  EXPECT_EQ(s.WithoutIndex(1), (Itemset{2, 9}));
  EXPECT_EQ(s.WithoutIndex(2), (Itemset{2, 5}));
}

TEST(Itemset, SubsetRelation) {
  Itemset sub{2, 9};
  Itemset super{2, 5, 9};
  EXPECT_TRUE(sub.IsSubsetOf(super));
  EXPECT_TRUE(super.IsSubsetOf(super));
  EXPECT_FALSE(super.IsSubsetOf(sub));
  EXPECT_TRUE(Itemset{}.IsSubsetOf(sub));
}

TEST(Itemset, OrderingIsLexicographicWithSizeTieBreak) {
  std::vector<Itemset> sets = {{3, 4}, {1, 2, 3}, {1, 2}, {1, 5}, {}};
  std::sort(sets.begin(), sets.end());
  EXPECT_EQ(sets[0], Itemset{});
  EXPECT_EQ(sets[1], (Itemset{1, 2}));
  EXPECT_EQ(sets[2], (Itemset{1, 2, 3}));
  EXPECT_EQ(sets[3], (Itemset{1, 5}));
  EXPECT_EQ(sets[4], (Itemset{3, 4}));
}

TEST(Itemset, EqualityAndHashConsistency) {
  Itemset a{4, 7};
  Itemset b{7, 4};
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.Hash(), b.Hash());
  Itemset c{4, 8};
  EXPECT_FALSE(a == c);
}

TEST(Itemset, HashRarelyCollides) {
  Rng rng(5);
  std::set<std::size_t> hashes;
  ItemsetSet sets;
  while (sets.size() < 2000) {
    Itemset s;
    const std::size_t size = 1 + rng.NextBounded(5);
    while (s.size() < size) {
      const auto item = static_cast<ItemId>(rng.NextBounded(1000));
      if (!s.Contains(item)) s = s.WithItem(item);
    }
    if (sets.insert(s).second) hashes.insert(s.Hash());
  }
  // Allow a handful of genuine 64-bit collisions truncated to size_t.
  EXPECT_GE(hashes.size(), 1998u);
}

TEST(Itemset, SpanViewsItems) {
  Itemset s{10, 20};
  const auto span = s.span();
  ASSERT_EQ(span.size(), 2u);
  EXPECT_EQ(span[0], 10u);
  EXPECT_EQ(span[1], 20u);
}

TEST(Itemset, CapacityEnforced) {
  Itemset s;
  for (ItemId i = 0; i < Itemset::kMaxSize; ++i) s = s.WithItem(i);
  EXPECT_EQ(s.size(), Itemset::kMaxSize);
  EXPECT_DEATH(s.WithItem(100), "CCS_CHECK");
}

TEST(ItemsetSet, WorksAsHashContainer) {
  ItemsetSet set;
  EXPECT_TRUE(set.insert(Itemset{1, 2}).second);
  EXPECT_FALSE(set.insert(Itemset{2, 1}).second);
  EXPECT_TRUE(set.contains(Itemset{1, 2}));
  EXPECT_FALSE(set.contains(Itemset{1, 3}));
}

}  // namespace
}  // namespace ccs
