// Tests for the synthetic data generators and catalog builders.

#include <gtest/gtest.h>

#include <cmath>

#include "datagen/catalog_generator.h"
#include "datagen/ibm_generator.h"
#include "datagen/rule_generator.h"

namespace ccs {
namespace {

TEST(IbmGenerator, ProducesRequestedShape) {
  IbmGeneratorConfig config;
  config.num_transactions = 2000;
  config.num_items = 100;
  config.avg_transaction_size = 8.0;
  config.avg_pattern_size = 3.0;
  config.num_patterns = 50;
  config.seed = 3;
  IbmGenerator generator(config);
  const TransactionDatabase db = generator.Generate();
  EXPECT_EQ(db.num_transactions(), 2000u);
  EXPECT_EQ(db.num_items(), 100u);
  EXPECT_TRUE(db.finalized());
  // Basket sizes follow Poisson(8) with clamping and pattern-boundary
  // effects; the average should land near the target.
  EXPECT_NEAR(db.AverageTransactionSize(), 8.0, 2.0);
}

TEST(IbmGenerator, DeterministicPerSeed) {
  IbmGeneratorConfig config;
  config.num_transactions = 200;
  config.num_items = 50;
  config.avg_transaction_size = 5.0;
  config.num_patterns = 20;
  config.seed = 11;
  const TransactionDatabase a = IbmGenerator(config).Generate();
  const TransactionDatabase b = IbmGenerator(config).Generate();
  ASSERT_EQ(a.num_transactions(), b.num_transactions());
  for (std::size_t t = 0; t < a.num_transactions(); ++t) {
    EXPECT_EQ(a.transaction(t), b.transaction(t)) << t;
  }
  config.seed = 12;
  const TransactionDatabase c = IbmGenerator(config).Generate();
  bool any_difference = false;
  for (std::size_t t = 0; t < a.num_transactions() && !any_difference; ++t) {
    any_difference = a.transaction(t) != c.transaction(t);
  }
  EXPECT_TRUE(any_difference);
}

TEST(IbmGenerator, PatternsAreValidItemsets) {
  IbmGeneratorConfig config;
  config.num_items = 40;
  config.num_patterns = 30;
  config.seed = 5;
  IbmGenerator generator(config);
  ASSERT_EQ(generator.patterns().size(), 30u);
  for (const auto& pattern : generator.patterns()) {
    ASSERT_FALSE(pattern.empty());
    for (std::size_t i = 0; i < pattern.size(); ++i) {
      EXPECT_LT(pattern[i], 40u);
      if (i > 0) {
        EXPECT_LT(pattern[i - 1], pattern[i]);
      }
    }
  }
}

TEST(IbmGenerator, NonEmptyBaskets) {
  IbmGeneratorConfig config;
  config.num_transactions = 500;
  config.num_items = 30;
  config.avg_transaction_size = 2.0;
  config.seed = 8;
  const TransactionDatabase db = IbmGenerator(config).Generate();
  for (std::size_t t = 0; t < db.num_transactions(); ++t) {
    EXPECT_FALSE(db.transaction(t).empty()) << t;
  }
}

TEST(RuleGenerator, PlantedRulesAreDisjointPrefixes) {
  RuleGeneratorConfig config;
  config.num_rules = 3;
  config.rule_size = 2;
  config.num_items = 20;
  config.seed = 1;
  RuleGenerator generator(config);
  ASSERT_EQ(generator.rules().size(), 3u);
  EXPECT_EQ(generator.rules()[0], (Transaction{0, 1}));
  EXPECT_EQ(generator.rules()[1], (Transaction{2, 3}));
  EXPECT_EQ(generator.rules()[2], (Transaction{4, 5}));
  for (double s : generator.rule_supports()) {
    EXPECT_GE(s, 0.70);
    EXPECT_LE(s, 0.90);
  }
}

TEST(RuleGenerator, PlantedSupportsMatchObservedFrequency) {
  RuleGeneratorConfig config;
  config.num_transactions = 4000;
  config.num_items = 50;
  config.avg_transaction_size = 10.0;
  config.num_rules = 4;
  config.rule_size = 2;
  config.seed = 21;
  RuleGenerator generator(config);
  const TransactionDatabase db = generator.Generate();
  for (std::size_t r = 0; r < 4; ++r) {
    const Transaction& rule = generator.rules()[r];
    std::size_t joint = 0;
    for (std::size_t t = 0; t < db.num_transactions(); ++t) {
      bool all = true;
      for (ItemId i : rule) all = all && db.Contains(t, i);
      joint += all ? 1 : 0;
    }
    const double observed =
        static_cast<double>(joint) / static_cast<double>(db.num_transactions());
    EXPECT_NEAR(observed, generator.rule_supports()[r], 0.03) << r;
  }
}

TEST(RuleGenerator, RuleItemsArePositivelyCorrelated) {
  RuleGeneratorConfig config;
  config.num_transactions = 4000;
  config.num_items = 50;
  config.avg_transaction_size = 10.0;
  config.num_rules = 2;
  config.rule_size = 2;
  config.seed = 33;
  RuleGenerator generator(config);
  const TransactionDatabase db = generator.Generate();
  const double n = static_cast<double>(db.num_transactions());
  for (const Transaction& rule : generator.rules()) {
    std::size_t joint = 0;
    for (std::size_t t = 0; t < db.num_transactions(); ++t) {
      if (db.Contains(t, rule[0]) && db.Contains(t, rule[1])) ++joint;
    }
    const double p0 = static_cast<double>(db.ItemSupport(rule[0])) / n;
    const double p1 = static_cast<double>(db.ItemSupport(rule[1])) / n;
    EXPECT_GT(joint / n, 1.05 * p0 * p1);
  }
}

TEST(RuleGenerator, SmallUniverseTerminates) {
  // Regression: the filler used to spin when the Poisson target exceeded
  // the reachable basket size (rules silent + small free pool).
  RuleGeneratorConfig config;
  config.num_transactions = 500;
  config.num_items = 12;
  config.avg_transaction_size = 5.0;
  config.num_rules = 2;
  config.rule_size = 2;
  config.seed = 7;
  const TransactionDatabase db = RuleGenerator(config).Generate();
  EXPECT_EQ(db.num_transactions(), 500u);
}

TEST(RuleGenerator, RejectsOversizedReservation) {
  RuleGeneratorConfig config;
  config.num_items = 5;
  config.num_rules = 3;
  config.rule_size = 2;
  EXPECT_DEATH(RuleGenerator{config}, "CCS_CHECK");
}

TEST(CatalogGenerator, LinearPricesAreItemNumberPlusOne) {
  const ItemCatalog catalog = MakeLinearPriceCatalog(10);
  ASSERT_EQ(catalog.num_items(), 10u);
  for (ItemId i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(catalog.price(i), static_cast<double>(i + 1));
  }
  // Types cycle through the default list.
  EXPECT_EQ(catalog.type(0), catalog.type(8));
  EXPECT_NE(catalog.type(0), catalog.type(1));
}

TEST(CatalogGenerator, UniformPricesWithinRange) {
  const ItemCatalog catalog = MakeUniformPriceCatalog(100, 5.0, 9.0, 4);
  for (ItemId i = 0; i < 100; ++i) {
    EXPECT_GE(catalog.price(i), 5.0);
    EXPECT_LT(catalog.price(i), 9.0);
  }
}

TEST(CatalogGenerator, ThresholdForSelectivityLinear) {
  const ItemCatalog catalog = MakeLinearPriceCatalog(100);  // prices 1..100
  EXPECT_DOUBLE_EQ(PriceThresholdForSelectivity(catalog, 0.5), 50.0);
  EXPECT_DOUBLE_EQ(PriceThresholdForSelectivity(catalog, 0.1), 10.0);
  EXPECT_DOUBLE_EQ(PriceThresholdForSelectivity(catalog, 1.0), 100.0);
  // Zero selectivity: a threshold below every price.
  EXPECT_LT(PriceThresholdForSelectivity(catalog, 0.0), 1.0);
}

TEST(CatalogGenerator, ThresholdSelectsRequestedFraction) {
  const ItemCatalog catalog = MakeUniformPriceCatalog(200, 0.0, 1.0, 9);
  for (double sel : {0.1, 0.3, 0.7}) {
    const double v = PriceThresholdForSelectivity(catalog, sel);
    std::size_t selected = 0;
    for (ItemId i = 0; i < 200; ++i) {
      if (catalog.price(i) <= v) ++selected;
    }
    EXPECT_EQ(selected, static_cast<std::size_t>(sel * 200)) << sel;
  }
}

}  // namespace
}  // namespace ccs
