// ExecutorPool: width-keyed executor leasing for concurrent sessions
// (DESIGN.md §12) — reuse by width, the bounded idle cache, move-only
// lease semantics, and the process-wide singleton.

#include "util/executor_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <utility>
#include <vector>

#include "util/executor.h"

namespace ccs {
namespace {

TEST(ExecutorPoolTest, AcquireCreatesThenReuses) {
  ExecutorPool pool;
  {
    const ExecutorPool::Lease lease = pool.Acquire(2);
    ASSERT_TRUE(lease.valid());
    EXPECT_EQ(lease->num_threads(), 2u);
    EXPECT_EQ(pool.created(), 1u);
    EXPECT_EQ(pool.idle_count(), 0u);
  }
  EXPECT_EQ(pool.idle_count(), 1u);
  const ExecutorPool::Lease again = pool.Acquire(2);
  EXPECT_EQ(pool.created(), 1u);
  EXPECT_EQ(pool.reused(), 1u);
  EXPECT_EQ(pool.idle_count(), 0u);
}

TEST(ExecutorPoolTest, WidthsDoNotAlias) {
  ExecutorPool pool;
  { const ExecutorPool::Lease two = pool.Acquire(2); }
  const ExecutorPool::Lease four = pool.Acquire(4);
  EXPECT_EQ(four->num_threads(), 4u);
  EXPECT_EQ(pool.created(), 2u);
  EXPECT_EQ(pool.reused(), 0u);
  EXPECT_EQ(pool.idle_count(), 1u);  // the width-2 executor is still parked
}

TEST(ExecutorPoolTest, IdleCacheIsBoundedPerWidth) {
  ExecutorPool::Options options;
  options.max_idle_per_width = 1;
  ExecutorPool pool(options);
  {
    std::vector<ExecutorPool::Lease> leases;
    for (int i = 0; i < 3; ++i) leases.push_back(pool.Acquire(1));
    EXPECT_EQ(pool.created(), 3u);
  }
  // Returns beyond the bound were destroyed, not parked.
  EXPECT_EQ(pool.idle_count(), 1u);
}

TEST(ExecutorPoolTest, LeaseIsMoveOnlyAndReleasesOnce) {
  ExecutorPool pool;
  ExecutorPool::Lease a = pool.Acquire(1);
  ExecutorPool::Lease b = std::move(a);
  EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move)
  ASSERT_TRUE(b.valid());
  ExecutorPool::Lease c;
  c = std::move(b);
  ASSERT_TRUE(c.valid());
  EXPECT_EQ(pool.idle_count(), 0u);
  c = ExecutorPool::Lease();
  EXPECT_EQ(pool.idle_count(), 1u);
}

TEST(ExecutorPoolTest, LeasedExecutorActuallyRuns) {
  ExecutorPool pool;
  const ExecutorPool::Lease lease = pool.Acquire(3);
  std::atomic<int> sum{0};
  lease->ParallelFor(100, [&sum](std::size_t, std::size_t i) {
    sum.fetch_add(static_cast<int>(i), std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), 4950);
}

TEST(ExecutorPoolTest, ZeroWidthMeansHardwareThreads) {
  ExecutorPool pool;
  const ExecutorPool::Lease lease = pool.Acquire(0);
  EXPECT_EQ(lease->num_threads(), ParallelExecutor::HardwareThreads());
}

TEST(ExecutorPoolTest, ProcessPoolIsASingleton) {
  EXPECT_EQ(&ProcessExecutorPool(), &ProcessExecutorPool());
}

}  // namespace
}  // namespace ccs
