// Tests for util/lock_rank.h: the runtime half of the lock-ordering gate
// (DESIGN.md §16). The suite runs in every flavor — in release builds
// (CCS_LOCK_RANK_CHECKS=0) it pins the no-op contract; in debug and
// sanitizer builds it pins that inversions are reported deterministically,
// via a capturing handler so nothing aborts and nothing deadlocks.

#include "util/lock_rank.h"

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace ccs {
namespace {

using lock_rank_internal::HeldCount;
using lock_rank_internal::SetViolationHandler;

// The handler is a plain function pointer, so captures go through a
// global. A raw std::mutex (not Ranked: it must not feed back into the
// bookkeeping under test) guards it — violations can fire on any thread.
std::mutex* ViolationLogMutex() {
  static std::mutex* mu = new std::mutex();
  return mu;
}
std::vector<std::string>& ViolationLog() {
  static std::vector<std::string>* log = new std::vector<std::string>();
  return *log;
}
void CaptureViolation(const char* message) {
  const std::lock_guard<std::mutex> lock(*ViolationLogMutex());
  ViolationLog().emplace_back(message);
}

class LockRankTest : public ::testing::Test {
 protected:
  void SetUp() override {
    {
      const std::lock_guard<std::mutex> lock(*ViolationLogMutex());
      ViolationLog().clear();
    }
    previous_ = SetViolationHandler(&CaptureViolation);
  }
  void TearDown() override { SetViolationHandler(previous_); }

  std::vector<std::string> violations() {
    const std::lock_guard<std::mutex> lock(*ViolationLogMutex());
    return ViolationLog();
  }

 private:
  lock_rank_internal::ViolationHandler previous_ = nullptr;
};

TEST_F(LockRankTest, DescendingAcquisitionIsClean) {
  RankedMutex high(LockRank::kAdmission);
  RankedMutex low(LockRank::kClock);
  {
    const std::lock_guard<RankedMutex> a(high);
    const std::lock_guard<RankedMutex> b(low);
    if (kLockRankChecksEnabled) {
      EXPECT_EQ(HeldCount(), 2);
    } else {
      EXPECT_EQ(HeldCount(), 0);  // release builds keep no bookkeeping
    }
  }
  EXPECT_EQ(HeldCount(), 0);
  EXPECT_TRUE(violations().empty());
}

TEST_F(LockRankTest, InversionCaughtInDebugNoOpInRelease) {
  RankedMutex high(LockRank::kAdmission);
  RankedMutex low(LockRank::kClock);
  {
    const std::lock_guard<RankedMutex> a(low);
    const std::lock_guard<RankedMutex> b(high);  // ascending: a violation
  }
  if (kLockRankChecksEnabled) {
    ASSERT_EQ(violations().size(), 1u);
    EXPECT_NE(violations()[0].find("kAdmission(70)"), std::string::npos);
    EXPECT_NE(violations()[0].find("kClock(20)"), std::string::npos);
  } else {
    // Release no-op: same code, zero reports, zero bookkeeping.
    EXPECT_TRUE(violations().empty());
  }
}

TEST_F(LockRankTest, SameRankNestingIsAViolation) {
  if (!kLockRankChecksEnabled) GTEST_SKIP() << "checker compiled out";
  RankedMutex a(LockRank::kMemo);
  RankedMutex b(LockRank::kMemo);
  {
    const std::lock_guard<RankedMutex> la(a);
    const std::lock_guard<RankedMutex> lb(b);
  }
  ASSERT_EQ(violations().size(), 1u);
  EXPECT_NE(violations()[0].find("kMemo(60)"), std::string::npos);
}

TEST_F(LockRankTest, TwoThreadAbbaIsReportedDeterministically) {
  if (!kLockRankChecksEnabled) GTEST_SKIP() << "checker compiled out";
  // t1 takes A(high) and holds it; t2 takes B(low) then requests A — the
  // inversion. NoteAcquire runs BEFORE the underlying lock blocks, so the
  // report lands on every run of every schedule; t1 releases A only after
  // the report, so the test itself can never deadlock.
  RankedMutex a(LockRank::kServiceHandle);
  RankedMutex b(LockRank::kFault);
  std::atomic<bool> a_held{false};
  std::atomic<bool> reported{false};

  std::thread t1([&] {
    a.lock();
    a_held.store(true);
    while (!reported.load()) std::this_thread::yield();
    a.unlock();
  });
  std::thread t2([&] {
    b.lock();
    while (!a_held.load()) std::this_thread::yield();
    a.lock();  // B(30) held, acquiring A(80): reported, then blocks
    a.unlock();
    b.unlock();
  });
  // The violation is visible before t2 ever gets A.
  while (violations().empty()) std::this_thread::yield();
  reported.store(true);
  t1.join();
  t2.join();

  const std::vector<std::string> seen = violations();
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_NE(seen[0].find("acquiring kServiceHandle(80)"), std::string::npos);
  EXPECT_NE(seen[0].find("holding kFault(30)"), std::string::npos);
  EXPECT_EQ(HeldCount(), 0);
}

TEST_F(LockRankTest, SharedMutexReadersFollowTheSameOrder) {
  RankedSharedMutex high(LockRank::kServiceStream);
  RankedSharedMutex low(LockRank::kExecutorPool);
  {
    high.lock_shared();
    low.lock_shared();
    low.unlock_shared();
    high.unlock_shared();
  }
  EXPECT_TRUE(violations().empty());
  {
    low.lock_shared();
    high.lock();  // reader below, writer above: same inversion
    high.unlock();
    low.unlock_shared();
  }
  if (kLockRankChecksEnabled) {
    ASSERT_EQ(violations().size(), 1u);
    EXPECT_NE(violations()[0].find("kServiceStream(90)"), std::string::npos);
  } else {
    EXPECT_TRUE(violations().empty());
  }
  EXPECT_EQ(HeldCount(), 0);
}

TEST_F(LockRankTest, TryLockParticipatesInBookkeeping) {
  RankedMutex m(LockRank::kExecutor);
  ASSERT_TRUE(m.try_lock());
  if (kLockRankChecksEnabled) {
    EXPECT_EQ(HeldCount(), 1);
  }
  m.unlock();
  EXPECT_EQ(HeldCount(), 0);
  EXPECT_TRUE(violations().empty());
}

TEST_F(LockRankTest, ConditionVariableWaitKeepsBookkeepingBalanced) {
  // condition_variable_any's wait unlocks and relocks through RankedMutex,
  // exactly the AdmissionController/ParallelExecutor pattern.
  RankedMutex m(LockRank::kAdmission);
  std::condition_variable_any cv;
  bool ready = false;

  std::thread signaller([&] {
    const std::lock_guard<RankedMutex> lock(m);
    ready = true;
    cv.notify_one();
  });
  {
    std::unique_lock<RankedMutex> lock(m);
    cv.wait(lock, [&] { return ready; });
    if (kLockRankChecksEnabled) {
      EXPECT_EQ(HeldCount(), 1);
    }
  }
  signaller.join();
  EXPECT_EQ(HeldCount(), 0);
  EXPECT_TRUE(violations().empty());
}

TEST_F(LockRankTest, RankNamesCoverTheHierarchy) {
  EXPECT_STREQ(LockRankName(LockRank::kServiceStream), "kServiceStream(90)");
  EXPECT_STREQ(LockRankName(LockRank::kClock), "kClock(20)");
}

}  // namespace
}  // namespace ccs
