#include "core/result.h"

#include <gtest/gtest.h>

namespace ccs {
namespace {

TEST(MiningStats, LevelGrowsOnDemand) {
  MiningStats stats;
  EXPECT_TRUE(stats.levels.empty());
  stats.Level(3).candidates = 7;
  ASSERT_EQ(stats.levels.size(), 4u);
  EXPECT_EQ(stats.levels[3].level, 3u);
  EXPECT_EQ(stats.levels[3].candidates, 7u);
  EXPECT_EQ(stats.levels[1].candidates, 0u);
  // Accessing an existing level does not resize.
  stats.Level(2).tables_built = 5;
  EXPECT_EQ(stats.levels.size(), 4u);
}

TEST(MiningStats, TotalsSumAcrossLevels) {
  MiningStats stats;
  stats.Level(2).candidates = 10;
  stats.Level(2).tables_built = 8;
  stats.Level(2).chi2_tests = 6;
  stats.Level(3).candidates = 4;
  stats.Level(3).tables_built = 4;
  stats.Level(3).chi2_tests = 2;
  EXPECT_EQ(stats.TotalCandidates(), 14u);
  EXPECT_EQ(stats.TotalTablesBuilt(), 12u);
  EXPECT_EQ(stats.TotalChi2Tests(), 8u);
}

TEST(MiningStats, ToStringMentionsActiveLevelsOnly) {
  MiningStats stats;
  stats.elapsed_seconds = 0.5;
  stats.Level(2).candidates = 3;
  stats.Level(2).sig_added = 1;
  const std::string text = stats.ToString();
  EXPECT_NE(text.find("level 2"), std::string::npos);
  EXPECT_EQ(text.find("level 1"), std::string::npos);
  EXPECT_EQ(text.find("level 3"), std::string::npos);
  EXPECT_NE(text.find("0.500s"), std::string::npos);
}

TEST(MiningResult, ContainsAnswerUsesBinarySearch) {
  MiningResult result;
  result.answers = {Itemset{1, 2}, Itemset{1, 3}, Itemset{2, 5, 7}};
  EXPECT_TRUE(result.ContainsAnswer(Itemset{1, 3}));
  EXPECT_TRUE(result.ContainsAnswer(Itemset{2, 5, 7}));
  EXPECT_FALSE(result.ContainsAnswer(Itemset{2, 5}));
  EXPECT_FALSE(result.ContainsAnswer(Itemset{}));
}

}  // namespace
}  // namespace ccs
