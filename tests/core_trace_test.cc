#include "core/trace.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

namespace ccs {
namespace {

TEST(Tracer, DisabledSpansRecordNothing) {
  Tracer tracer(/*enabled=*/false);
  {
    Tracer::Span outer(&tracer, "run");
    Tracer::Span inner(&tracer, "level");
  }
  const TraceLog log = tracer.Log();
  EXPECT_FALSE(log.enabled);
  EXPECT_TRUE(log.events.empty());
  EXPECT_EQ(log.dropped, 0u);
}

TEST(Tracer, NullTracerSpanIsANoOp) {
  Tracer::Span span(nullptr, "run");  // must not crash
}

TEST(Tracer, SpansCloseInLifoOrderAndNestWellFormed) {
  Tracer tracer(/*enabled=*/true);
  {
    Tracer::Span run(&tracer, "run");
    {
      Tracer::Span level(&tracer, "level");
      Tracer::Span phase(&tracer, "judge");
    }
    EXPECT_EQ(tracer.open_spans(), 1u);
  }
  EXPECT_EQ(tracer.open_spans(), 0u);
  const TraceLog log = tracer.Log();
  ASSERT_EQ(log.events.size(), 3u);
  // Close order: children before parents.
  EXPECT_STREQ(log.events[0].name, "judge");
  EXPECT_STREQ(log.events[1].name, "level");
  EXPECT_STREQ(log.events[2].name, "run");
  EXPECT_EQ(log.events[0].depth, 2u);
  EXPECT_EQ(log.events[1].depth, 1u);
  EXPECT_EQ(log.events[2].depth, 0u);
  // Every child's interval lies inside its parent's (same steady clock).
  const TraceEvent& judge = log.events[0];
  const TraceEvent& level = log.events[1];
  const TraceEvent& run = log.events[2];
  EXPECT_LE(run.start_ns, level.start_ns);
  EXPECT_LE(level.start_ns, judge.start_ns);
  EXPECT_LE(judge.start_ns, judge.end_ns);
  EXPECT_LE(judge.end_ns, level.end_ns);
  EXPECT_LE(level.end_ns, run.end_ns);
}

TEST(Tracer, TimestampsAreMonotoneInCloseOrder) {
  Tracer tracer(/*enabled=*/true);
  for (int i = 0; i < 10; ++i) {
    Tracer::Span span(&tracer, "tick");
  }
  const TraceLog log = tracer.Log();
  ASSERT_EQ(log.events.size(), 10u);
  for (std::size_t i = 1; i < log.events.size(); ++i) {
    EXPECT_GE(log.events[i].end_ns, log.events[i - 1].end_ns);
    EXPECT_GE(log.events[i].start_ns, log.events[i - 1].start_ns);
  }
}

TEST(Tracer, RingDropsOldestAndCountsThem) {
  Tracer tracer(/*enabled=*/true, /*capacity=*/4);
  const char* names[] = {"s0", "s1", "s2", "s3", "s4", "s5"};
  for (const char* name : names) {
    Tracer::Span span(&tracer, name);
  }
  const TraceLog log = tracer.Log();
  EXPECT_TRUE(log.enabled);
  EXPECT_EQ(log.dropped, 2u);
  ASSERT_EQ(log.events.size(), 4u);
  // The survivors are the 4 most recent closes, oldest first.
  EXPECT_STREQ(log.events[0].name, "s2");
  EXPECT_STREQ(log.events[1].name, "s3");
  EXPECT_STREQ(log.events[2].name, "s4");
  EXPECT_STREQ(log.events[3].name, "s5");
}

TEST(Tracer, ZeroCapacityDisables) {
  Tracer tracer(/*enabled=*/true, /*capacity=*/0);
  EXPECT_FALSE(tracer.enabled());
  {
    Tracer::Span span(&tracer, "run");
  }
  EXPECT_TRUE(tracer.Log().events.empty());
}

TEST(TraceLog, ToJsonContainsEventsAndDropCount) {
  Tracer tracer(/*enabled=*/true, /*capacity=*/2);
  {
    Tracer::Span a(&tracer, "alpha");
  }
  {
    Tracer::Span b(&tracer, "beta");
  }
  {
    Tracer::Span c(&tracer, "gamma");
  }
  const std::string json = tracer.Log().ToJson();
  EXPECT_EQ(json.find("\"alpha\""), std::string::npos);  // dropped
  EXPECT_NE(json.find("\"beta\""), std::string::npos);
  EXPECT_NE(json.find("\"gamma\""), std::string::npos);
  EXPECT_NE(json.find("\"dropped\": 1"), std::string::npos);
}

class TraceEnvTest : public ::testing::Test {
 protected:
  void TearDown() override { unsetenv("CCS_TRACE"); }
};

TEST_F(TraceEnvTest, UnsetKeepsFallbacks) {
  unsetenv("CCS_TRACE");
  bool enabled = true;
  std::size_t capacity = 128;
  ResolveTraceFromEnv(enabled, capacity);
  EXPECT_TRUE(enabled);
  EXPECT_EQ(capacity, 128u);
}

TEST_F(TraceEnvTest, ZeroDisables) {
  setenv("CCS_TRACE", "0", 1);
  bool enabled = true;
  std::size_t capacity = 128;
  ResolveTraceFromEnv(enabled, capacity);
  EXPECT_FALSE(enabled);
}

TEST_F(TraceEnvTest, OneEnablesAtFallbackCapacity) {
  setenv("CCS_TRACE", "1", 1);
  bool enabled = false;
  std::size_t capacity = 128;
  ResolveTraceFromEnv(enabled, capacity);
  EXPECT_TRUE(enabled);
  EXPECT_EQ(capacity, 128u);
}

TEST_F(TraceEnvTest, IntegerSetsCapacity) {
  setenv("CCS_TRACE", "64", 1);
  bool enabled = false;
  std::size_t capacity = 128;
  ResolveTraceFromEnv(enabled, capacity);
  EXPECT_TRUE(enabled);
  EXPECT_EQ(capacity, 64u);
}

}  // namespace
}  // namespace ccs
