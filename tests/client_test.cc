// ccs::client retry contract tests: ONLY kUnavailable is retried (ERR
// frames, refused connects, severed transports), backoff is
// deterministic under a fixed seed, and a response deadline is NOT
// grounds for a retry. A scripted in-process fake daemon plays the
// hostile peer.

#include "client/client.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

namespace ccs {
namespace client {
namespace {

using std::chrono::milliseconds;

std::string TestSocketPath(const char* tag) {
  return "/tmp/ccs-client-test-" + std::to_string(::getpid()) + "-" + tag +
         ".sock";
}

// A scripted peer: serves one connection per script entry, reading one
// request line then sending the entry verbatim and closing. An empty
// entry means "hang up without replying"; the kHold sentinel means "go
// quiet but keep the connection open" (the slow-daemon case — only the
// client's own deadline can end that wait).
constexpr const char* kHold = "<hold>";

class FakeDaemon {
 public:
  FakeDaemon(const std::string& path, std::vector<std::string> script)
      : path_(path), script_(std::move(script)) {
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    EXPECT_GE(listen_fd_, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    ::unlink(path_.c_str());
    std::memcpy(addr.sun_path, path_.c_str(), path_.size() + 1);
    EXPECT_EQ(::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
                     sizeof(addr)),
              0);
    EXPECT_EQ(::listen(listen_fd_, 8), 0);
    serving_ = std::thread([this] { Serve(); });
  }

  ~FakeDaemon() {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    serving_.join();
    for (const int fd : held_) ::close(fd);
    ::unlink(path_.c_str());
  }

  // Request lines observed, in order, once serving finished.
  const std::vector<std::string>& requests() const { return requests_; }

 private:
  void Serve() {
    for (const std::string& reply : script_) {
      const int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd < 0) return;  // listener shut down: script abandoned
      std::string line;
      char byte = 0;
      while (::recv(fd, &byte, 1, 0) == 1 && byte != '\n') {
        line.push_back(byte);
      }
      requests_.push_back(line);
      if (reply == kHold) {
        held_.push_back(fd);
        continue;
      }
      if (!reply.empty()) {
        (void)::send(fd, reply.data(), reply.size(), MSG_NOSIGNAL);
      }
      ::close(fd);
    }
  }

  const std::string path_;
  const std::vector<std::string> script_;
  std::vector<std::string> requests_;
  std::vector<int> held_;
  int listen_fd_ = -1;
  std::thread serving_;
};

// Client wired for tests: no real sleeping, recorded backoff delays.
Client TestClient(const std::string& path,
                  std::vector<milliseconds>* delays,
                  std::size_t max_attempts = 5) {
  ClientOptions options;
  options.socket_path = path;
  options.poll_interval = milliseconds(2);
  options.backoff.max_attempts = max_attempts;
  options.backoff.seed = 42;
  return Client(options, nullptr,
                [delays](milliseconds d) { delays->push_back(d); });
}

TEST(BackoffTest, DeterministicUnderFixedSeed) {
  BackoffPolicy policy;
  policy.initial = milliseconds(20);
  policy.cap = milliseconds(1000);
  policy.seed = 7;
  std::uint64_t state_a = policy.seed;
  std::uint64_t state_b = policy.seed;
  for (std::size_t retry = 0; retry < 8; ++retry) {
    EXPECT_EQ(BackoffDelay(policy, retry, &state_a),
              BackoffDelay(policy, retry, &state_b))
        << "retry " << retry;
  }
}

TEST(BackoffTest, JitterStaysInsideHalfToFullExponentialWindow) {
  BackoffPolicy policy;
  policy.initial = milliseconds(20);
  policy.cap = milliseconds(1000);
  policy.seed = 99;
  std::uint64_t state = policy.seed;
  for (std::size_t retry = 0; retry < 12; ++retry) {
    std::int64_t base = 20;
    for (std::size_t i = 0; i < retry && base < 1000; ++i) base *= 2;
    if (base > 1000) base = 1000;
    const milliseconds delay = BackoffDelay(policy, retry, &state);
    EXPECT_GE(delay.count(), base / 2) << "retry " << retry;
    EXPECT_LE(delay.count(), base) << "retry " << retry;
  }
}

TEST(ClientTest, ParsesOkFrameWithBody) {
  const std::string path = TestSocketPath("ok");
  FakeDaemon daemon(path,
                    {"OK sets=2 termination=completed memo=miss\n"
                     "SET {1, 2}\nSET {3, 4}\nEND\n"});
  std::vector<milliseconds> delays;
  Client client = TestClient(path, &delays);
  auto response = client.Request("MINE query=all");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->header, "OK sets=2 termination=completed memo=miss");
  ASSERT_EQ(response->body.size(), 2u);
  EXPECT_EQ(response->body[0], "SET {1, 2}");
  EXPECT_EQ(response->body[1], "SET {3, 4}");
  EXPECT_EQ(response->attempts, 1u);
  EXPECT_TRUE(delays.empty());
}

TEST(ClientTest, ZeroAnswerFrameHasEmptyBody) {
  const std::string path = TestSocketPath("zero");
  FakeDaemon daemon(path,
                    {"OK sets=0 termination=completed memo=miss\nEND\n"});
  std::vector<milliseconds> delays;
  Client client = TestClient(path, &delays);
  auto response = client.Request("MINE support=0.999 query=all");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_TRUE(response->body.empty());
}

TEST(ClientTest, RetriesUnavailableFrameThenSucceeds) {
  const std::string path = TestSocketPath("retry");
  FakeDaemon daemon(path, {"ERR UNAVAILABLE queue full\nEND\n",
                           "ERR UNAVAILABLE queue full\nEND\n",
                           "OK pong\nEND\n"});
  std::vector<milliseconds> delays;
  Client client = TestClient(path, &delays);
  auto response = client.Request("PING");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->header, "OK pong");
  EXPECT_EQ(response->attempts, 3u);
  EXPECT_EQ(delays.size(), 2u);
  EXPECT_EQ(client.stats().attempts, 3u);
  EXPECT_EQ(client.stats().retries, 2u);
  // Every attempt re-sent the same request line.
  EXPECT_EQ(daemon.requests().size(), 3u);
}

TEST(ClientTest, DoesNotRetryInvalidArgument) {
  const std::string path = TestSocketPath("invalid");
  FakeDaemon daemon(path, {"ERR INVALID_ARGUMENT bad verb\nEND\n",
                           "OK pong\nEND\n"});
  std::vector<milliseconds> delays;
  Client client = TestClient(path, &delays);
  auto response = client.Request("GARBAGE");
  ASSERT_FALSE(response.ok());
  EXPECT_STREQ(StatusCodeName(response.status().code()),
               "INVALID_ARGUMENT");
  EXPECT_EQ(response.status().message(), "bad verb");
  // One attempt, no sleeps: a non-retryable code returns immediately.
  EXPECT_EQ(client.stats().attempts, 1u);
  EXPECT_TRUE(delays.empty());
}

TEST(ClientTest, TruncatedFrameIsRetriedAsUnavailable) {
  const std::string path = TestSocketPath("truncated");
  // First peer dies mid-frame (no END); the retry gets the full answer.
  FakeDaemon daemon(path, {"OK pong\nEN", "OK pong\nEND\n"});
  std::vector<milliseconds> delays;
  Client client = TestClient(path, &delays);
  auto response = client.Request("PING");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->attempts, 2u);
}

TEST(ClientTest, RefusedConnectRetriedUntilAttemptsExhausted) {
  // Nothing listens here at all.
  const std::string path = TestSocketPath("refused");
  ::unlink(path.c_str());
  std::vector<milliseconds> delays;
  Client client = TestClient(path, &delays, /*max_attempts=*/3);
  auto response = client.Request("PING");
  ASSERT_FALSE(response.ok());
  EXPECT_STREQ(StatusCodeName(response.status().code()), "UNAVAILABLE");
  EXPECT_EQ(client.stats().attempts, 3u);
  EXPECT_EQ(client.stats().retries, 2u);
  ASSERT_EQ(delays.size(), 2u);
  // The schedule is a pure function of the seed: replaying the same
  // configuration reproduces it delay for delay.
  std::vector<milliseconds> replay;
  Client again = TestClient(path, &replay, /*max_attempts=*/3);
  ASSERT_FALSE(again.Request("PING").ok());
  EXPECT_EQ(replay, delays);
}

TEST(ClientTest, ResponseDeadlineIsNotRetried) {
  const std::string path = TestSocketPath("deadline");
  // The peer reads the request then goes quiet without closing; only
  // the client's own deadline can end the wait, and a deadline must
  // surface to the caller rather than trigger a blind re-issue.
  FakeDaemon daemon(path, {kHold});
  ClientOptions options;
  options.socket_path = path;
  options.poll_interval = milliseconds(2);
  options.response_deadline = milliseconds(80);
  options.backoff.max_attempts = 5;
  std::vector<milliseconds> delays;
  Client client(options, nullptr,
                [&delays](milliseconds d) { delays.push_back(d); });
  auto response = client.Request("PING");
  ASSERT_FALSE(response.ok());
  EXPECT_STREQ(StatusCodeName(response.status().code()),
               "DEADLINE_EXCEEDED");
  EXPECT_EQ(client.stats().attempts, 1u);
  EXPECT_TRUE(delays.empty());
}

}  // namespace
}  // namespace client
}  // namespace ccs
