// Tests for the unconstrained BMS baseline against the oracle and its
// structural invariants (minimality, CT-support, correlation).

#include "core/bms.h"

#include <gtest/gtest.h>

#include "core/ct_builder.h"
#include "core/judge.h"
#include "core/oracle.h"
#include "test_util.h"

namespace ccs {
namespace {

MiningOptions SmallOptions() {
  MiningOptions options;
  options.significance = 0.9;
  options.min_support = 15;  // 5% of 300
  options.min_cell_fraction = 0.25;
  options.max_set_size = 5;
  return options;
}

class BmsOracleTest : public testing::TestWithParam<std::uint64_t> {};

TEST_P(BmsOracleTest, MatchesOracleMinimalCorrelated) {
  const TransactionDatabase db = testutil::SmallRandomDb(GetParam());
  const ItemCatalog catalog = testutil::SmallCatalog();
  const MiningOptions options = SmallOptions();
  const Oracle oracle(db, catalog, options);
  const MiningResult result = MineBms(db, options);
  EXPECT_EQ(result.answers, oracle.MinimalCorrelated());
}

INSTANTIATE_TEST_SUITE_P(Seeds, BmsOracleTest,
                         testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u,
                                         55u, 89u));

TEST(Bms, AnswersAreCorrelatedSupportedAndMinimal) {
  const TransactionDatabase db = testutil::SmallRandomDb(7);
  const MiningOptions options = SmallOptions();
  const MiningResult result = MineBms(db, options);
  ASSERT_FALSE(result.answers.empty());
  CorrelationJudge judge(options);
  ContingencyTableBuilder builder(db);
  ItemsetSet answers(result.answers.begin(), result.answers.end());
  for (const Itemset& s : result.answers) {
    const auto table = builder.Build(s);
    EXPECT_TRUE(judge.IsCtSupported(table)) << s.ToString();
    EXPECT_TRUE(judge.IsCorrelated(table)) << s.ToString();
    // No answer is a subset of another (an antichain).
    for (const Itemset& other : result.answers) {
      if (s == other) continue;
      EXPECT_FALSE(s.IsSubsetOf(other))
          << s.ToString() << " subset of " << other.ToString();
    }
  }
}

TEST(Bms, PlantedGroupsAreRecovered) {
  const TransactionDatabase db = testutil::SmallRandomDb(11);
  const MiningOptions options = SmallOptions();
  const MiningResult result = MineBms(db, options);
  // The planted group {0,1} co-occurs far above independence; it (and the
  // pairs within {2,3,4}) must be among the minimal correlated sets.
  EXPECT_TRUE(result.ContainsAnswer(Itemset{0, 1}));
  EXPECT_TRUE(result.ContainsAnswer(Itemset{2, 3}));
  EXPECT_TRUE(result.ContainsAnswer(Itemset{2, 4}));
  EXPECT_TRUE(result.ContainsAnswer(Itemset{3, 4}));
}

TEST(Bms, StatsCountTheWork) {
  const TransactionDatabase db = testutil::SmallRandomDb(3);
  const MiningOptions options = SmallOptions();
  const BmsRunOutput run = RunBms(db, options);
  // All 10 items are frequent at 5%; level 2 must consider all pairs.
  ASSERT_EQ(run.frequent_items.size(), 10u);
  ASSERT_GE(run.stats.levels.size(), 3u);
  EXPECT_EQ(run.stats.levels[2].candidates, 45u);
  EXPECT_EQ(run.stats.levels[2].tables_built, 45u);
  EXPECT_EQ(run.stats.levels[2].sig_added + run.stats.levels[2].notsig_added,
            run.stats.levels[2].ct_supported);
  EXPECT_GT(run.stats.TotalCandidates(), 0u);
  EXPECT_EQ(run.stats.TotalCandidates(), run.stats.TotalTablesBuilt());
  EXPECT_GE(run.stats.elapsed_seconds, 0.0);
}

TEST(Bms, RespectsMaxSetSize) {
  const TransactionDatabase db = testutil::SmallRandomDb(3);
  MiningOptions options = SmallOptions();
  options.max_set_size = 2;
  const MiningResult result = MineBms(db, options);
  for (const Itemset& s : result.answers) {
    EXPECT_LE(s.size(), 2u);
  }
  EXPECT_LE(result.stats.levels.size(), 3u);
}

TEST(Bms, HighSupportThresholdPrunesEverything) {
  const TransactionDatabase db = testutil::SmallRandomDb(3);
  MiningOptions options = SmallOptions();
  options.min_support = 1000;  // above the database size
  const BmsRunOutput run = RunBms(db, options);
  EXPECT_TRUE(run.frequent_items.empty());
  EXPECT_TRUE(run.sig.empty());
  EXPECT_EQ(run.stats.TotalCandidates(), 0u);
}

TEST(Bms, FullCellFractionRequiresEveryCell) {
  const TransactionDatabase db = testutil::SmallRandomDb(3);
  MiningOptions options = SmallOptions();
  options.min_cell_fraction = 1.0;
  options.min_support = 40;
  const MiningResult result = MineBms(db, options);
  CorrelationJudge judge(options);
  ContingencyTableBuilder builder(db);
  for (const Itemset& s : result.answers) {
    const auto table = builder.Build(s);
    for (std::uint32_t mask = 0; mask < table.num_cells(); ++mask) {
      EXPECT_GE(table.cell(mask), options.min_support) << s.ToString();
    }
  }
}

TEST(Bms, NotsigSetsAreSupportedAndUncorrelated) {
  const TransactionDatabase db = testutil::SmallRandomDb(9);
  const MiningOptions options = SmallOptions();
  const BmsRunOutput run = RunBms(db, options);
  CorrelationJudge judge(options);
  ContingencyTableBuilder builder(db);
  for (std::size_t k = 2; k < run.notsig_by_level.size(); ++k) {
    for (const Itemset& s : run.notsig_by_level[k]) {
      ASSERT_EQ(s.size(), k);
      const auto table = builder.Build(s);
      EXPECT_TRUE(judge.IsCtSupported(table));
      EXPECT_FALSE(judge.IsCorrelated(table));
    }
  }
  for (std::size_t k = 2; k < run.unsupported_by_level.size(); ++k) {
    for (const Itemset& s : run.unsupported_by_level[k]) {
      EXPECT_FALSE(judge.IsCtSupported(builder.Build(s)));
    }
  }
}

}  // namespace
}  // namespace ccs
