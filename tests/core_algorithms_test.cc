// The central correctness suite: every constrained algorithm is pinned to
// the brute-force oracle across a grid of (seed, constraint family), and
// the structural claims of Theorems 1 and 2 plus the Section 3.3 cost
// relations are verified as properties.

#include <gtest/gtest.h>

#include <algorithm>

#include "core/miner.h"
#include "core/oracle.h"
#include "test_util.h"

namespace ccs {
namespace {

MiningOptions SmallOptions() {
  MiningOptions options;
  options.significance = 0.9;
  options.min_support = 15;
  options.min_cell_fraction = 0.25;
  options.max_set_size = 5;
  return options;
}

struct GridCase {
  std::uint64_t seed;
  testutil::ConstraintCase constraints;
};

std::vector<GridCase> MakeGrid() {
  std::vector<GridCase> grid;
  for (std::uint64_t seed : {1u, 4u, 9u, 16u, 25u}) {
    for (auto& c : testutil::PaperConstraintCases()) {
      grid.push_back({seed, c});
    }
  }
  return grid;
}

class AlgorithmOracleTest : public testing::TestWithParam<GridCase> {
 protected:
  void SetUp() override {
    db_ = testutil::SmallRandomDb(GetParam().seed);
    catalog_ = testutil::SmallCatalog();
    options_ = SmallOptions();
    constraints_ = GetParam().constraints.make();
  }

  TransactionDatabase db_{1};
  ItemCatalog catalog_;
  MiningOptions options_;
  ConstraintSet constraints_;
};

TEST_P(AlgorithmOracleTest, ValidMinimalAlgorithmsMatchOracle) {
  const Oracle oracle(db_, catalog_, options_);
  const auto expected = oracle.ValidMinimal(constraints_);
  EXPECT_EQ(
      Mine(Algorithm::kBmsPlus, db_, catalog_, constraints_, options_).answers,
      expected);
  EXPECT_EQ(Mine(Algorithm::kBmsPlusPlus, db_, catalog_, constraints_,
                 options_)
                .answers,
            expected);
}

TEST_P(AlgorithmOracleTest, MinimalValidAlgorithmsMatchOracle) {
  const Oracle oracle(db_, catalog_, options_);
  const auto expected = oracle.MinimalValid(constraints_);
  EXPECT_EQ(
      Mine(Algorithm::kBmsStar, db_, catalog_, constraints_, options_).answers,
      expected);
  EXPECT_EQ(Mine(Algorithm::kBmsStarStar, db_, catalog_, constraints_,
                 options_)
                .answers,
            expected);
  EXPECT_EQ(Mine(Algorithm::kBmsStarStarOpt, db_, catalog_, constraints_,
                 options_)
                .answers,
            expected);
}

TEST_P(AlgorithmOracleTest, Theorem1ValidMinSubsetOfMinValid) {
  const Oracle oracle(db_, catalog_, options_);
  const auto valid_min = oracle.ValidMinimal(constraints_);
  const auto min_valid = oracle.MinimalValid(constraints_);
  // Part 1: VALID_MIN is always contained in MIN_VALID.
  for (const Itemset& s : valid_min) {
    EXPECT_TRUE(std::binary_search(min_valid.begin(), min_valid.end(), s))
        << s.ToString();
  }
  // Part 2: equality when every constraint is anti-monotone.
  if (GetParam().constraints.all_anti_monotone) {
    EXPECT_EQ(valid_min, min_valid);
  }
}

TEST_P(AlgorithmOracleTest, CostRelationsOfSection33) {
  const auto plus =
      Mine(Algorithm::kBmsPlus, db_, catalog_, constraints_, options_);
  const auto plus_plus =
      Mine(Algorithm::kBmsPlusPlus, db_, catalog_, constraints_, options_);
  // |BMS++| <= |BMS+| when no exemption is in play (anti-monotone-only
  // queries): pushing constraints only shrinks the explored region. With a
  // pushed monotone constraint the witness exemption can visit a few sets
  // above the correlation border that BMS+ never considers, so the paper's
  // relation is a strong trend, not a per-instance invariant.
  if (GetParam().constraints.all_anti_monotone) {
    EXPECT_LE(plus_plus.stats.TotalTablesBuilt(),
              plus.stats.TotalTablesBuilt());
  }
  const auto star_star =
      Mine(Algorithm::kBmsStarStar, db_, catalog_, constraints_, options_);
  const auto star_star_opt =
      Mine(Algorithm::kBmsStarStarOpt, db_, catalog_, constraints_, options_);
  // The fused variant never builds more tables than BMS**.
  EXPECT_LE(star_star_opt.stats.TotalTablesBuilt(),
            star_star.stats.TotalTablesBuilt());
  if (GetParam().constraints.all_anti_monotone) {
    // With only anti-monotone constraints BMS++ is the best of the four
    // (Section 3.3): in table-construction counts it is never beaten.
    const auto star =
        Mine(Algorithm::kBmsStar, db_, catalog_, constraints_, options_);
    EXPECT_LE(plus_plus.stats.TotalTablesBuilt(),
              star.stats.TotalTablesBuilt());
    EXPECT_LE(plus_plus.stats.TotalTablesBuilt(),
              star_star.stats.TotalTablesBuilt());
  }
}

TEST_P(AlgorithmOracleTest, AnswersAreSortedAntichainsSatisfyingC) {
  for (Algorithm a :
       {Algorithm::kBmsPlus, Algorithm::kBmsPlusPlus, Algorithm::kBmsStar,
        Algorithm::kBmsStarStar, Algorithm::kBmsStarStarOpt}) {
    const auto result = Mine(a, db_, catalog_, constraints_, options_);
    EXPECT_TRUE(
        std::is_sorted(result.answers.begin(), result.answers.end()))
        << AlgorithmName(a);
    for (const Itemset& s : result.answers) {
      EXPECT_TRUE(constraints_.TestAll(s.span(), catalog_))
          << AlgorithmName(a) << " " << s.ToString();
      for (const Itemset& other : result.answers) {
        if (s == other) continue;
        EXPECT_FALSE(s.IsSubsetOf(other)) << AlgorithmName(a);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, AlgorithmOracleTest, testing::ValuesIn(MakeGrid()),
    [](const testing::TestParamInfo<GridCase>& tp_info) {
      return "Seed" + std::to_string(tp_info.param.seed) + "_" +
             tp_info.param.constraints.name;
    });

// --- Threshold sweeps: the same pinning across statistical parameters ---

struct ThresholdCase {
  double significance;
  std::uint64_t min_support;
  double min_cell_fraction;
};

class ThresholdSweepTest : public testing::TestWithParam<ThresholdCase> {};

TEST_P(ThresholdSweepTest, AllAlgorithmsMatchOracle) {
  const auto& p = GetParam();
  const TransactionDatabase db = testutil::SmallRandomDb(42);
  const ItemCatalog catalog = testutil::SmallCatalog();
  MiningOptions options;
  options.significance = p.significance;
  options.min_support = p.min_support;
  options.min_cell_fraction = p.min_cell_fraction;
  options.max_set_size = 5;
  ConstraintSet constraints;
  constraints.Add(MinLe(3.0));
  constraints.Add(MaxLe(9.0));
  const Oracle oracle(db, catalog, options);
  const auto valid_min = oracle.ValidMinimal(constraints);
  const auto min_valid = oracle.MinimalValid(constraints);
  EXPECT_EQ(Mine(Algorithm::kBmsPlus, db, catalog, constraints, options)
                .answers,
            valid_min);
  EXPECT_EQ(Mine(Algorithm::kBmsPlusPlus, db, catalog, constraints, options)
                .answers,
            valid_min);
  EXPECT_EQ(Mine(Algorithm::kBmsStar, db, catalog, constraints, options)
                .answers,
            min_valid);
  EXPECT_EQ(Mine(Algorithm::kBmsStarStar, db, catalog, constraints, options)
                .answers,
            min_valid);
  EXPECT_EQ(
      Mine(Algorithm::kBmsStarStarOpt, db, catalog, constraints, options)
          .answers,
      min_valid);
}

INSTANTIATE_TEST_SUITE_P(
    Thresholds, ThresholdSweepTest,
    testing::Values(ThresholdCase{0.9, 15, 0.25},
                    ThresholdCase{0.95, 15, 0.25},
                    ThresholdCase{0.99, 15, 0.25},
                    ThresholdCase{0.9, 30, 0.25},
                    ThresholdCase{0.9, 60, 0.25},
                    ThresholdCase{0.9, 15, 0.5},
                    ThresholdCase{0.9, 15, 0.75},
                    ThresholdCase{0.5, 10, 0.25}));

// --- Facade-level behaviour ---

TEST(Miner, NamesRoundTrip) {
  for (Algorithm a : kAllAlgorithms) {
    const auto parsed = ParseAlgorithmName(AlgorithmName(a));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, a);
  }
  EXPECT_FALSE(ParseAlgorithmName("Apriori").has_value());
}

TEST(Miner, SemanticsClassification) {
  EXPECT_EQ(SemanticsOf(Algorithm::kBms), AnswerSemantics::kUnconstrained);
  EXPECT_EQ(SemanticsOf(Algorithm::kBmsPlus),
            AnswerSemantics::kValidMinimal);
  EXPECT_EQ(SemanticsOf(Algorithm::kBmsPlusPlus),
            AnswerSemantics::kValidMinimal);
  EXPECT_EQ(SemanticsOf(Algorithm::kBmsStar),
            AnswerSemantics::kMinimalValid);
  EXPECT_EQ(SemanticsOf(Algorithm::kBmsStarStar),
            AnswerSemantics::kMinimalValid);
  EXPECT_EQ(SemanticsOf(Algorithm::kBmsStarStarOpt),
            AnswerSemantics::kMinimalValid);
}

TEST(Miner, StarAlgorithmsRejectUnclassifiedConstraints) {
  const TransactionDatabase db = testutil::SmallRandomDb(1);
  const ItemCatalog catalog = testutil::SmallCatalog();
  const MiningOptions options = SmallOptions();
  ConstraintSet constraints;
  constraints.Add(AvgLe(4.0));
  EXPECT_DEATH(
      Mine(Algorithm::kBmsStar, db, catalog, constraints, options),
      "CCS_CHECK");
  EXPECT_DEATH(
      Mine(Algorithm::kBmsStarStar, db, catalog, constraints, options),
      "CCS_CHECK");
  EXPECT_DEATH(
      Mine(Algorithm::kBmsStarStarOpt, db, catalog, constraints, options),
      "CCS_CHECK");
}

TEST(Miner, ValidMinAlgorithmsAcceptAvgConstraints) {
  // Section 6: avg is neither monotone nor anti-monotone; VALID_MIN remains
  // well-defined and both algorithms must agree with the oracle.
  const TransactionDatabase db = testutil::SmallRandomDb(6);
  const ItemCatalog catalog = testutil::SmallCatalog();
  const MiningOptions options = SmallOptions();
  ConstraintSet constraints;
  constraints.Add(AvgLe(3.5));
  const Oracle oracle(db, catalog, options);
  const auto expected = oracle.ValidMinimal(constraints);
  EXPECT_EQ(
      Mine(Algorithm::kBmsPlus, db, catalog, constraints, options).answers,
      expected);
  EXPECT_EQ(
      Mine(Algorithm::kBmsPlusPlus, db, catalog, constraints, options)
          .answers,
      expected);
}

}  // namespace
}  // namespace ccs
