// Concurrent-session determinism harness (DESIGN.md §12): N sessions
// racing over ONE DatabaseHandle — across widths {1, 2, 8}, with the
// shared pair tier engaged — must each produce answers and deterministic
// counters bit-identical to a serial private MiningEngine. Also drives
// MiningService::HandleLine from many threads at once: every admitted
// response must be byte-identical, and overload must surface as
// kUnavailable, never as a crash or a wrong answer. Runs under TSan in
// the thread-sanitizer flavor.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "core/session.h"
#include "service/service.h"
#include "test_util.h"

namespace ccs {
namespace {

ConstraintSet HarnessConstraints() {
  ConstraintSet set;
  set.Add(MaxLe(30.0));
  set.Add(SumLe(60.0));
  set.Add(MinLe(12.0));
  return set;
}

MiningRequest HarnessRequest(const TransactionDatabase& db,
                             const ConstraintSet* constraints) {
  MiningRequest request;
  request.algorithm = Algorithm::kBmsStarStarOpt;
  request.options.significance = 0.9;
  request.options.min_support = db.num_transactions() / 20;
  request.options.min_cell_fraction = 0.25;
  request.options.max_set_size = 4;
  request.constraints = constraints;
  return request;
}

void ExpectSameCounters(const MiningStats& a, const MiningStats& b) {
  ASSERT_EQ(a.levels.size(), b.levels.size());
  for (std::size_t k = 0; k < a.levels.size(); ++k) {
    EXPECT_EQ(a.levels[k].candidates, b.levels[k].candidates) << k;
    EXPECT_EQ(a.levels[k].tables_built, b.levels[k].tables_built) << k;
    EXPECT_EQ(a.levels[k].sig_added, b.levels[k].sig_added) << k;
  }
}

TEST(ServiceConcurrencyTest, RacingSessionsMatchSerialEngine) {
  const TransactionDatabase db = testutil::SmallRandomDb(31, 12, 600);
  const ItemCatalog catalog = testutil::SmallCatalog(12);
  const ConstraintSet constraints = HarnessConstraints();
  const MiningRequest request = HarnessRequest(db, &constraints);

  // The baseline: a plain serial engine with its own private executor.
  MiningEngine engine(db, catalog);
  const MiningResult base = engine.Run(request);
  ASSERT_FALSE(base.answers.empty());

  HandleOptions handle_options;
  handle_options.pair_tier_budget_mib = 4;
  const DatabaseHandle handle =
      DatabaseHandle::Borrow(db, catalog, handle_options);

  // Waves of racing sessions: every width mix in flight simultaneously.
  const std::size_t kWidths[] = {1, 2, 8};
  constexpr int kSessionsPerWidth = 3;
  std::vector<MiningResult> results(std::size(kWidths) * kSessionsPerWidth);
  std::vector<std::thread> racers;
  racers.reserve(results.size());
  for (std::size_t w = 0; w < std::size(kWidths); ++w) {
    for (int s = 0; s < kSessionsPerWidth; ++s) {
      racers.emplace_back([&, w, s] {
        EngineOptions options;
        options.num_threads = kWidths[w];
        const MiningSession session(handle, options);
        results[w * kSessionsPerWidth + s] = session.Run(request);
      });
    }
  }
  for (std::thread& t : racers) t.join();

  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].answers, base.answers) << "racer " << i;
    ExpectSameCounters(base.stats, results[i].stats);
    EXPECT_EQ(results[i].termination, Termination::kCompleted);
  }
}

TEST(ServiceConcurrencyTest, ConcurrentRunsOnOneSessionAreIdentical) {
  const TransactionDatabase db = testutil::SmallRandomDb(32);
  const ItemCatalog catalog = testutil::SmallCatalog();
  const ConstraintSet constraints = HarnessConstraints();
  const MiningRequest request = HarnessRequest(db, &constraints);
  const DatabaseHandle handle = DatabaseHandle::Borrow(db, catalog);

  EngineOptions options;
  options.num_threads = 2;
  const MiningSession session(handle, options);
  const MiningResult base = session.Run(request);

  // Run() is const and leases per call: one session object, many threads.
  std::vector<MiningResult> results(6);
  std::vector<std::thread> racers;
  for (std::size_t i = 0; i < results.size(); ++i) {
    racers.emplace_back(
        [&, i] { results[i] = session.Run(request); });
  }
  for (std::thread& t : racers) t.join();
  for (const MiningResult& result : results) {
    EXPECT_EQ(result.answers, base.answers);
  }
}

TEST(ServiceConcurrencyTest, ConcurrentHandleLineIdenticalOrUnavailable) {
  service::ServiceOptions service_options;
  service_options.admission.max_concurrent = 2;
  service_options.admission.max_queued = 2;
  service::MiningService service(
      DatabaseHandle::Create(testutil::SmallRandomDb(33),
                             testutil::SmallCatalog()),
      service_options);

  // Distinct queries defeat the memo, so every request truly competes for
  // the 2+2 admission slots; 12 threads guarantee real overload.
  constexpr int kClients = 12;
  std::vector<std::string> responses(kClients);
  std::atomic<int> unavailable{0};
  std::vector<std::thread> clients;
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&, i] {
      const std::string request =
          "MINE support=" + std::to_string(0.05 + 0.0001 * (i % 3)) +
          " query=all";
      responses[i] = service.HandleLine(request);
      if (responses[i].find("ERR UNAVAILABLE") == 0) {
        unavailable.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& t : clients) t.join();

  // Group by request variant: all admitted responses of one variant are
  // byte-identical (modulo the memo field, which flips after the first).
  for (int i = 0; i < kClients; ++i) {
    ASSERT_TRUE(responses[i].rfind("OK ", 0) == 0 ||
                responses[i].rfind("ERR UNAVAILABLE", 0) == 0)
        << responses[i].substr(0, 60);
    if (responses[i].rfind("OK ", 0) != 0) continue;
    for (int j = i + 1; j < kClients; ++j) {
      if (j % 3 != i % 3 || responses[j].rfind("OK ", 0) != 0) continue;
      std::string a = responses[i];
      std::string b = responses[j];
      const auto normalize = [](std::string* r) {
        const std::size_t at = r->find("memo=hit");
        if (at != std::string::npos) r->replace(at, 8, "memo=miss");
      };
      normalize(&a);
      normalize(&b);
      EXPECT_EQ(a, b) << "clients " << i << " and " << j;
    }
  }
  // The service survived; subsequent requests still work.
  EXPECT_EQ(service.HandleLine("PING"), "OK pong\nEND\n");
}

}  // namespace
}  // namespace ccs
