// DatabaseHandle + MiningSession (DESIGN.md §12): the service-shaped API
// must be bit-identical to MiningEngine, epochs must be process-unique,
// the CCS_* environment overrides must resolve through the one audited
// ResolveEngineOptions helper with the documented precedence, and the
// shared k=2 pair tier must change performance counters only — never
// answers.

#include "core/session.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <set>
#include <vector>

#include "core/engine.h"
#include "core/engine_options.h"
#include "core/miner.h"
#include "test_util.h"
#include "util/executor.h"
#include "util/executor_pool.h"

namespace ccs {
namespace {

ConstraintSet SessionTestConstraints() {
  ConstraintSet set;
  set.Add(MaxLe(30.0));
  set.Add(SumLe(60.0));
  set.Add(MinLe(12.0));
  return set;
}

MiningRequest SessionTestRequest(const TransactionDatabase& db,
                                 const ConstraintSet* constraints) {
  MiningRequest request;
  request.algorithm = Algorithm::kBmsStarStarOpt;
  request.options.significance = 0.9;
  request.options.min_support = db.num_transactions() / 20;
  request.options.min_cell_fraction = 0.25;
  request.options.max_set_size = 4;
  request.constraints = constraints;
  return request;
}

void ExpectSameCounters(const MiningStats& a, const MiningStats& b) {
  ASSERT_EQ(a.levels.size(), b.levels.size());
  for (std::size_t k = 0; k < a.levels.size(); ++k) {
    EXPECT_EQ(a.levels[k].candidates, b.levels[k].candidates) << k;
    EXPECT_EQ(a.levels[k].tables_built, b.levels[k].tables_built) << k;
    EXPECT_EQ(a.levels[k].sig_added, b.levels[k].sig_added) << k;
    EXPECT_EQ(a.levels[k].notsig_added, b.levels[k].notsig_added) << k;
  }
}

// Scoped setenv/unsetenv so env-contract tests cannot leak state.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    ::setenv(name, value, /*overwrite=*/1);
  }
  ~ScopedEnv() { ::unsetenv(name_); }

 private:
  const char* name_;
};

TEST(MiningSessionTest, MatchesEngineForEveryAlgorithm) {
  const TransactionDatabase db = testutil::SmallRandomDb(11);
  const ItemCatalog catalog = testutil::SmallCatalog();
  const ConstraintSet constraints = SessionTestConstraints();
  const DatabaseHandle handle = DatabaseHandle::Borrow(db, catalog);
  for (const Algorithm algorithm :
       {Algorithm::kBmsPlusPlus, Algorithm::kBmsStarStar,
        Algorithm::kBmsStarStarOpt}) {
    MiningRequest request = SessionTestRequest(db, &constraints);
    request.algorithm = algorithm;
    MiningEngine engine(db, catalog);
    const MiningResult expected = engine.Run(request);
    const MiningSession session(handle);
    const MiningResult actual = session.Run(request);
    EXPECT_EQ(actual.answers, expected.answers);
    ExpectSameCounters(expected.stats, actual.stats);
  }
}

TEST(MiningSessionTest, RepeatedAndMultiWidthRunsAreIdentical) {
  const TransactionDatabase db = testutil::SmallRandomDb(12);
  const ItemCatalog catalog = testutil::SmallCatalog();
  const ConstraintSet constraints = SessionTestConstraints();
  const DatabaseHandle handle = DatabaseHandle::Borrow(db, catalog);
  const MiningRequest request = SessionTestRequest(db, &constraints);

  const MiningSession serial(handle);
  const MiningResult base = serial.Run(request);
  const MiningResult again = serial.Run(request);
  EXPECT_EQ(again.answers, base.answers);
  for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    EngineOptions options;
    options.num_threads = threads;
    const MiningSession wide(handle, options);
    const MiningResult parallel = wide.Run(request);
    EXPECT_EQ(parallel.answers, base.answers) << "threads=" << threads;
    ExpectSameCounters(base.stats, parallel.stats);
  }
}

TEST(DatabaseHandleTest, EpochsAreUniqueAndMonotone) {
  const TransactionDatabase db = testutil::SmallRandomDb(13);
  const ItemCatalog catalog = testutil::SmallCatalog();
  std::vector<std::uint64_t> epochs;
  std::uint64_t previous = 0;
  for (int i = 0; i < 4; ++i) {
    const DatabaseHandle handle = DatabaseHandle::Borrow(db, catalog);
    EXPECT_GT(handle.epoch(), previous);
    previous = handle.epoch();
    epochs.push_back(handle.epoch());
  }
  const DatabaseHandle owning = DatabaseHandle::Create(
      testutil::SmallRandomDb(13), testutil::SmallCatalog());
  EXPECT_GT(owning.epoch(), previous);
  epochs.push_back(owning.epoch());
  EXPECT_EQ(std::set<std::uint64_t>(epochs.begin(), epochs.end()).size(),
            epochs.size());
}

TEST(DatabaseHandleTest, CopiesShareEpochAndPayload) {
  const TransactionDatabase db = testutil::SmallRandomDb(14);
  const ItemCatalog catalog = testutil::SmallCatalog();
  const DatabaseHandle a = DatabaseHandle::Borrow(db, catalog);
  const DatabaseHandle b = a;  // NOLINT(performance-unnecessary-copy-initialization)
  EXPECT_EQ(a.epoch(), b.epoch());
  EXPECT_EQ(&a.database(), &b.database());
}

TEST(DatabaseHandleTest, PairTierChangesCountersNotAnswers) {
  const TransactionDatabase db = testutil::SmallRandomDb(15);
  const ItemCatalog catalog = testutil::SmallCatalog();
  const ConstraintSet constraints = SessionTestConstraints();
  const MiningRequest request = SessionTestRequest(db, &constraints);

  const DatabaseHandle bare = DatabaseHandle::Borrow(db, catalog);
  ASSERT_EQ(bare.pair_tier(), nullptr);
  HandleOptions with_tier;
  with_tier.pair_tier_budget_mib = 8;
  const DatabaseHandle tiered = DatabaseHandle::Borrow(db, catalog, with_tier);
  ASSERT_NE(tiered.pair_tier(), nullptr);

  const MiningResult cold = MiningSession(bare).Run(request);
  const MiningResult shared = MiningSession(tiered).Run(request);
  EXPECT_EQ(shared.answers, cold.answers);
  ExpectSameCounters(cold.stats, shared.stats);
  EXPECT_EQ(cold.stats.ct_cache_shared_hits, 0u);
  EXPECT_GT(shared.stats.ct_cache_shared_hits, 0u);

  // The tier count is deterministic: same request, same hits.
  const MiningResult again = MiningSession(tiered).Run(request);
  EXPECT_EQ(again.stats.ct_cache_shared_hits,
            shared.stats.ct_cache_shared_hits);
}

TEST(MiningSessionTest, SessionsShareAnExplicitPool) {
  const TransactionDatabase db = testutil::SmallRandomDb(16);
  const ItemCatalog catalog = testutil::SmallCatalog();
  const ConstraintSet constraints = SessionTestConstraints();
  const MiningRequest request = SessionTestRequest(db, &constraints);
  const DatabaseHandle handle = DatabaseHandle::Borrow(db, catalog);

  ExecutorPool pool;
  EngineOptions two_threads;
  two_threads.num_threads = 2;
  const MiningSession first(handle, two_threads, &pool);
  const MiningSession second(handle, two_threads, &pool);
  (void)first.Run(request);
  EXPECT_EQ(pool.created(), 1u);
  (void)second.Run(request);
  EXPECT_EQ(pool.created(), 1u);
  EXPECT_EQ(pool.reused(), 1u);
}

// The CCS_* env-override contract, pinned (DESIGN.md §12): these
// assertions define the precedence ResolveEngineOptions must keep.
TEST(ResolveEngineOptionsTest, DefaultsPassThroughWithoutEnv) {
  ::unsetenv("CCS_CT_CACHE");
  ::unsetenv("CCS_METRICS");
  ::unsetenv("CCS_TRACE");
  EngineOptions options;
  options.num_threads = 3;
  options.ct_cache = false;
  options.metrics = false;
  options.trace = true;
  options.trace_capacity = 99;
  const ResolvedEngineOptions resolved = ResolveEngineOptions(options);
  EXPECT_EQ(resolved.num_threads, 3u);
  EXPECT_FALSE(resolved.ct_cache.enabled);
  EXPECT_FALSE(resolved.metrics);
  EXPECT_TRUE(resolved.trace);
  EXPECT_EQ(resolved.trace_capacity, 99u);
  EXPECT_EQ(resolved.ct_cache.shared_pairs, nullptr);
}

TEST(ResolveEngineOptionsTest, ZeroThreadsResolvesToHardware) {
  EngineOptions options;
  options.num_threads = 0;
  EXPECT_EQ(ResolveEngineOptions(options).num_threads,
            ParallelExecutor::HardwareThreads());
}

TEST(ResolveEngineOptionsTest, CtCacheEnvOverridesField) {
  EngineOptions enabled;
  enabled.ct_cache = true;
  EngineOptions disabled;
  disabled.ct_cache = false;
  {
    const ScopedEnv env("CCS_CT_CACHE", "0");
    EXPECT_FALSE(ResolveEngineOptions(enabled).ct_cache.enabled);
  }
  {
    const ScopedEnv env("CCS_CT_CACHE", "1");
    EXPECT_TRUE(ResolveEngineOptions(disabled).ct_cache.enabled);
  }
  EXPECT_TRUE(ResolveEngineOptions(enabled).ct_cache.enabled);
  EXPECT_FALSE(ResolveEngineOptions(disabled).ct_cache.enabled);
}

TEST(ResolveEngineOptionsTest, MetricsEnvOverridesField) {
  EngineOptions on;
  on.metrics = true;
  {
    const ScopedEnv env("CCS_METRICS", "0");
    EXPECT_FALSE(ResolveEngineOptions(on).metrics);
  }
  EXPECT_TRUE(ResolveEngineOptions(on).metrics);
}

TEST(ResolveEngineOptionsTest, TraceEnvOverridesFieldAndCapacity) {
  EngineOptions off;
  off.trace = false;
  off.trace_capacity = 123;
  EngineOptions on;
  on.trace = true;
  {
    const ScopedEnv env("CCS_TRACE", "0");
    EXPECT_FALSE(ResolveEngineOptions(on).trace);
  }
  {
    const ScopedEnv env("CCS_TRACE", "1");
    const ResolvedEngineOptions resolved = ResolveEngineOptions(off);
    EXPECT_TRUE(resolved.trace);
    EXPECT_EQ(resolved.trace_capacity, 123u);  // "1" keeps the field
  }
  {
    const ScopedEnv env("CCS_TRACE", "512");
    const ResolvedEngineOptions resolved = ResolveEngineOptions(off);
    EXPECT_TRUE(resolved.trace);
    EXPECT_EQ(resolved.trace_capacity, 512u);
  }
}

// The deprecated Mine() shim must keep routing through the session API
// with identical answers (compiled with CCS_ALLOW_DEPRECATED).
TEST(MineShimTest, AgreesWithSession) {
  const TransactionDatabase db = testutil::SmallRandomDb(17);
  const ItemCatalog catalog = testutil::SmallCatalog();
  const ConstraintSet constraints = SessionTestConstraints();
  const MiningRequest request = SessionTestRequest(db, &constraints);
  const MiningResult via_session =
      MiningSession(DatabaseHandle::Borrow(db, catalog)).Run(request);
  const MiningResult via_shim =
      Mine(request.algorithm, db, catalog, constraints, request.options);
  EXPECT_EQ(via_shim.answers, via_session.answers);
}

}  // namespace
}  // namespace ccs
